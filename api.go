package ppm

import (
	"io"

	"ppm/internal/array"
	"ppm/internal/codes"
	"ppm/internal/core"
	"ppm/internal/cost"
	"ppm/internal/decode"
	"ppm/internal/fault"
	"ppm/internal/gf"
	"ppm/internal/kernel"
	"ppm/internal/pipeline"
	"ppm/internal/repair"
	"ppm/internal/stripe"
	"ppm/internal/tune"
)

// Code is an erasure-code instance exposed as a parity-check matrix over
// GF(2^w) plus its parity positions. SD, PMDS, LRC and RS all implement
// it; PPM plans and decodes any of them uniformly.
type Code = codes.Code

// Scenario is a failure pattern: the set of unreadable sector indices.
type Scenario = codes.Scenario

// Stripe is one stripe's worth of sector buffers (n strips x r rows).
type Stripe = stripe.Stripe

// Decoder runs PPM encode/decode against a bound code instance.
type Decoder = core.Decoder

// Option configures a Decoder.
type Option = core.Option

// Plan is a prepared decode: log table, partition, per-sub-matrix
// inverses and the chosen calculation sequences, plus the cost model.
type Plan = core.Plan

// Strategy selects the planning policy.
type Strategy = core.Strategy

// Planning strategies. StrategyAuto performs the paper's full cost
// optimisation (falling back to the whole-matrix MatrixFirst decode in
// the rare configurations where C2 < C4); StrategyPPM is the production
// fast path; the whole-matrix strategies are the traditional baselines.
const (
	StrategyAuto             = core.StrategyAuto
	StrategyPPM              = core.StrategyPPM
	StrategyPPMC3            = core.StrategyPPMMatrixFirstRest
	StrategyWholeNormal      = core.StrategyWholeNormal
	StrategyWholeMatrixFirst = core.StrategyWholeMatrixFirst
)

// Stats counts mult_XORs region operations across decodes — the paper's
// computational-cost unit. Attach one with WithStats to audit a decode
// against the C1..C4 model.
type Stats = kernel.Stats

// SD is a Sector-Disk code SD^{m,s}_{n,r}: n disks, r rows, the last m
// disks plus s extra sectors hold coding information.
type SD = codes.SD

// PMDS is a Partial-MDS code, evaluated through the SD construction as
// in the paper.
type PMDS = codes.PMDS

// LRC is a (k, l, g) Local Reconstruction Code: l local parities over
// balanced groups plus g global parities.
type LRC = codes.LRC

// RS is the symmetric-parity Reed-Solomon (Cauchy) baseline.
type RS = codes.RS

// LRCLocality is an LRC with (r, δ) locality: δ-1 local parities per
// group form a local MDS code, so up to δ-1 failures in a group repair
// locally — and PPM extracts them as one multi-row independent
// sub-matrix.
type LRCLocality = codes.LRCLocality

// EVENODD is the classic XOR-only RAID-6 code (Blaum et al. 1995),
// included as a symmetric-parity baseline.
type EVENODD = codes.EVENODD

// RDP is Row-Diagonal Parity (Corbett et al. 2004), the other classic
// XOR-only RAID-6 baseline.
type RDP = codes.RDP

// NewSD constructs an SD^{m,s}_{n,r} instance, choosing the word size
// and coding coefficients automatically.
func NewSD(n, r, m, s int) (*SD, error) { return codes.NewSD(n, r, m, s) }

// NewPMDS constructs a PMDS(m, s) instance on an n x r stripe.
func NewPMDS(n, r, m, s int) (*PMDS, error) { return codes.NewPMDS(n, r, m, s) }

// NewLRC constructs a (k, l, g) LRC instance.
func NewLRC(k, l, g int) (*LRC, error) { return codes.NewLRC(k, l, g) }

// NewRS constructs an (n, n-m) Reed-Solomon instance with r rows.
func NewRS(n, r, m int) (*RS, error) { return codes.NewRS(n, r, m) }

// NewLRCLocality constructs a (k, l, δ, g) locality LRC.
func NewLRCLocality(k, l, delta, g int) (*LRCLocality, error) {
	return codes.NewLRCLocality(k, l, delta, g)
}

// NewEVENODD constructs the EVENODD instance for prime p (n = p+2
// disks, r = p-1 rows).
func NewEVENODD(p int) (*EVENODD, error) { return codes.NewEVENODD(p) }

// NewRDP constructs the RDP instance for prime p (n = p+1 disks,
// r = p-1 rows).
func NewRDP(p int) (*RDP, error) { return codes.NewRDP(p) }

// BlockParallelDecode runs the related-work block-level parallelism
// baseline: the traditional whole-matrix computation with the byte
// ranges split across T workers. Same total computation as
// TraditionalDecode (cost C1); contrast with PPM's matrix-oriented
// partition, which reduces the computation to C4 as well.
func BlockParallelDecode(c Code, st *Stripe, sc Scenario, threads int, stats *Stats) error {
	return decode.DecodeBlockParallel(c, st, sc, threads, decode.Options{Stats: stats})
}

// NewScenario builds a validated failure scenario from sector indices.
func NewScenario(c Code, faulty []int) (Scenario, error) { return codes.NewScenario(c, faulty) }

// EncodingScenario returns the scenario whose erasures are the code's
// parity positions; decoding it is encoding.
func EncodingScenario(c Code) Scenario { return codes.EncodingScenario(c) }

// DataPositions returns the sector indices that hold user data.
func DataPositions(c Code) []int { return codes.DataPositions(c) }

// Decodable reports whether the failure pattern is recoverable by the
// code instance.
func Decodable(c Code, sc Scenario) bool { return codes.Decodable(c, sc) }

// CensusResult summarises a fault-tolerance census.
type CensusResult = codes.CensusResult

// Census measures the fraction of T-failure patterns the instance can
// decode, exhaustively when C(sectors, T) fits the pattern budget and
// by seeded sampling otherwise. For the Azure (12,2,2)-LRC this
// reproduces the published profile: 100% of 3-failure patterns, 85.55%
// ("86%") of 4-failure patterns.
func Census(c Code, t, maxPatterns int, seed int64) (CensusResult, error) {
	return codes.Census(c, t, maxPatterns, seed)
}

// NewStripe allocates an n x r stripe with the given sector size
// (a positive multiple of 4 bytes).
func NewStripe(n, r, sectorSize int) (*Stripe, error) { return stripe.New(n, r, sectorSize) }

// StripeForCode allocates a stripe matching the code's geometry with a
// total size as close to stripeBytes as alignment allows.
func StripeForCode(c Code, stripeBytes int) (*Stripe, error) { return stripe.ForCode(c, stripeBytes) }

// NewDecoder builds a PPM decoder for the code.
func NewDecoder(c Code, opts ...Option) *Decoder { return core.NewDecoder(c, opts...) }

// WithThreads sets the worker count T for the parallel phase (<= 0
// selects the paper's default min(4, cores)).
func WithThreads(t int) Option { return core.WithThreads(t) }

// WithStrategy overrides the planning strategy (default StrategyPPM).
func WithStrategy(s Strategy) Option { return core.WithStrategy(s) }

// WithStats attaches an operation counter shared across decodes.
func WithStats(s *Stats) Option { return core.WithStats(s) }

// WithPlanCache bounds the Decoder's built-in plan cache (on by
// default, capacity core.DefaultPlanCacheSize): Decode keeps up to
// capacity built plans, keyed by canonicalised failure pattern +
// strategy, so repeated decodes of the same pattern — a whole-disk
// rebuild decodes thousands of identically failed stripes — skip
// planning and run at DecodeWithPlan speed with no per-stripe
// allocations. capacity <= 0 disables caching.
func WithPlanCache(capacity int) Option { return core.WithPlanCache(capacity) }

// Backend selects the decoder's arithmetic engine.
type Backend = core.Backend

// Arithmetic back ends: table-driven GF(2^w) (default) or the
// Cauchy-RS bit-matrix XOR schedule of the paper's reference [8].
// A stripe must be encoded and decoded under the same back end.
const (
	BackendTable     = core.BackendTable
	BackendBitMatrix = core.BackendBitMatrix
)

// WithBackend selects the decoder's arithmetic engine.
func WithBackend(b Backend) Option { return core.WithBackend(b) }

// WithHybrid enables the hybrid executor (extension beyond the paper):
// serial plan phases are byte-range-chunked across the worker budget,
// so even p <= 1 partitions keep every core busy. Bytes and operation
// counts are identical to the standard executor's.
func WithHybrid(enabled bool) Option { return core.WithHybrid(enabled) }

// BuildPlan prepares a decode plan without touching data, for
// inspection, cost analysis or reuse across stripes.
func BuildPlan(c Code, sc Scenario, strategy Strategy) (*Plan, error) {
	return core.BuildPlan(c, sc, strategy)
}

// TraditionalDecode runs the serial whole-matrix baseline (Normal
// sequence, cost C1) — the method PPM is benchmarked against.
func TraditionalDecode(c Code, st *Stripe, sc Scenario, stats *Stats) error {
	return decode.Decode(c, st, sc, decode.Options{Stats: stats})
}

// TraditionalEncode encodes with the serial whole-matrix baseline.
func TraditionalEncode(c Code, st *Stripe, stats *Stats) error {
	return decode.Encode(c, st, decode.Options{Stats: stats})
}

// Verify checks H * B == 0 over the stripe: true iff the stripe holds a
// consistent codeword.
func Verify(c Code, st *Stripe) (bool, error) { return decode.Verify(c, st) }

// ScrubResult reports what a scrub found: a clean stripe, a located
// single corruption, or detected-but-ambiguous corruption.
type ScrubResult = decode.ScrubResult

// Scrub detects silent data corruption from the parity-check syndrome
// and localises it when exactly one sector is corrupted and the code's
// H columns make the explanation unique.
func Scrub(c Code, st *Stripe) (ScrubResult, error) { return decode.Scrub(c, st) }

// ScrubAndRepair scrubs and, when a single corrupted sector is located,
// recovers it in place as a one-erasure decode.
func ScrubAndRepair(c Code, st *Stripe, stats *Stats) (ScrubResult, error) {
	return decode.ScrubAndRepair(c, st, decode.Options{Stats: stats})
}

// PartialSelection lists which of a plan's sub-decodes a partial decode
// must run to materialise a set of wanted sectors.
type PartialSelection = core.PartialSelection

// DecodeSectors recovers only the wanted sectors of the scenario — the
// degraded-read path. PPM's partition makes this minimal: an LRC block
// costs one local-group decode; an SD sector costs its stripe row's
// sub-decode; only blocks in H_rest pull in the full closure.
func DecodeSectors(c Code, st *Stripe, sc Scenario, wanted []int, opts ...Option) error {
	return NewDecoder(c, opts...).DecodeSectors(st, sc, wanted)
}

// Updater implements the small-write path: patch the parity sectors
// affected by one data-sector overwrite instead of re-encoding the
// stripe (cost: the nonzero count of the generator column, e.g. 3
// region ops for an LRC(k,3,2) block vs a full re-encode).
type Updater = core.Updater

// NewUpdater derives and compiles the code's generator for in-place
// parity patching.
func NewUpdater(c Code) (*Updater, error) { return core.NewUpdater(c) }

// Array is a multi-stripe erasure-coded disk array with failure
// injection and PPM-driven whole-array reconstruction.
type Array = array.Array

// RepairStats summarises a whole-array reconstruction.
type RepairStats = array.RepairStats

// NewArray builds an encoded array of numStripes stripes with
// deterministic random data.
func NewArray(c Code, numStripes, sectorSize int, seed int64) (*Array, error) {
	return array.New(c, numStripes, sectorSize, seed)
}

// StreamConfig tunes the streaming multi-stripe pipeline: Depth bounds
// the stripes in flight (backpressure), Workers the compute shards on
// the persistent kernel pool (default: the core count), Threads the
// per-stripe parallel phase (default 1 — the pipeline parallelises
// across stripes). Auto fills unset fields from this host's calibrated
// tuning profile (see Autotune), calibrating one on first use.
type StreamConfig = pipeline.Config

// StreamResult reports a stream run: stripes drained and payload bytes
// moved (consumed on encode, written on decode).
type StreamResult = pipeline.Result

// StreamEngine is a reusable streaming pipeline bound to one code and
// one failure scenario: the plan is compiled once at construction and
// amortised over every stripe of every Run. Use NewStreamEngine for
// repeated streams or custom Source/Sink pairs; the EncodeStream /
// DecodeStream helpers cover the common one-shot reader/writer case.
type StreamEngine = pipeline.Engine

// StreamSource feeds stripes into a StreamEngine in index order.
type StreamSource = pipeline.Source

// StreamSink receives processed stripes in strict stripe order.
type StreamSink = pipeline.Sink

// StopStream is the sentinel a StreamSink's Drain returns to end a
// stream early without an error — the stopping stripe counts as
// drained, intake ceases, and Run reports success. DecodeStream uses it
// internally once the requested payload is satisfied.
var StopStream = pipeline.Stop

// StageStats snapshots a stream engine's (or pool's) per-stage stall
// counters: nanoseconds the fill stage waited for free slabs, compute
// shards waited for work, and the in-order drain waited on stripe
// completion — plus the stripes drained. The dominant counter names the
// bottleneck stage.
type StageStats = pipeline.StageStats

// StreamRetry configures bounded retries with jittered exponential
// backoff and optional per-attempt deadlines on a stream engine's fill
// and drain edges (StreamConfig.Retry). The zero value disables
// retries; a configured policy keeps the engine's 0 allocs/op steady
// state. Retry counts surface in StageStats. A deadline expiry is not
// retried at this level — the abandoned attempt may still touch the
// in-flight slab — so it surfaces as ErrStreamOpTimeout for the caller
// to restart with fresh buffers.
type StreamRetry = pipeline.RetryPolicy

// ErrStreamOpTimeout is wrapped into the error a stream run returns
// when a fill or drain attempt outlives StreamRetry.OpTimeout.
var ErrStreamOpTimeout = pipeline.ErrOpTimeout

// ErrEnginePoisoned is wrapped into run errors after a compute shard
// has died; a StreamPool replaces such engines at checkout instead of
// handing them out.
var ErrEnginePoisoned = pipeline.ErrEnginePoisoned

// SectorChecksums returns one CRC-32C (Castagnoli) checksum per sector
// of the stripe, in global sector order — the integrity row an archive
// records at encode time to catch silent corruption on read-back.
func SectorChecksums(st *Stripe) []uint32 { return fault.SectorChecksums(st) }

// VerifyStripeChecksums compares a stripe against a recorded checksum
// row and returns the global indices of corrupt sectors (nil when
// clean). Demote the returned indices to erasures and decode to heal.
func VerifyStripeChecksums(st *Stripe, sums []uint32) []int {
	return fault.VerifyStripe(st, sums, nil)
}

// StreamPool is a fixed set of stream engines serving many concurrent
// streams for one code + scenario pair: each Run checks an engine out,
// so up to Size streams overlap their store I/O (and compute, given
// cores) while excess callers queue — the admission bound.
type StreamPool = pipeline.Pool

// NewStreamPool builds a pool of size engines (size <= 0 selects the
// autotuned pool size under cfg.Auto, else the core count). With
// cfg.Workers unset, the engines divide the host's compute-shard budget
// between them.
func NewStreamPool(c Code, sc Scenario, sectorSize, size int, cfg StreamConfig) (*StreamPool, error) {
	return pipeline.NewPool(c, sc, sectorSize, size, cfg)
}

// TuneProfile is one host's calibrated knob settings: kernel tile size
// and fan-out threshold, pipeline depth and workers, and the serving
// pool size, with the measurements that chose them.
type TuneProfile = tune.Profile

// TuneOptions bounds an explicit Calibrate sweep; the zero value is the
// quick profile Autotune uses.
type TuneOptions = tune.Options

// Autotune returns this host's tuning profile — loading the one
// persisted under os.UserCacheDir()/ppm (override with PPM_TUNE_DIR),
// or calibrating and persisting a fresh one on first use — and installs
// its kernel knobs. StreamConfig{Auto: true} does the same lazily;
// PPM_TUNE=off disables both (Autotune then returns nil, nil).
func Autotune() (*TuneProfile, error) {
	p, err := tune.Get()
	if err != nil || p == nil {
		return nil, err
	}
	tune.Apply(p)
	return p, nil
}

// Calibrate runs the knob sweeps now, regardless of any persisted
// profile, and returns the winners without installing or saving them.
// Use tune-aware callers sparingly: Autotune is the cached entry point.
func Calibrate(o TuneOptions) (*TuneProfile, error) { return tune.Calibrate(o) }

// NewStreamEngine builds a reusable pipeline engine for one code +
// scenario pair (use EncodingScenario(c) for encoding). sectorSize > 0
// pre-allocates Depth stripe slabs; sectorSize == 0 builds a slab-less
// engine for batch sources that hand over caller-owned stripes. Close
// the engine when done.
func NewStreamEngine(c Code, sc Scenario, sectorSize int, cfg StreamConfig) (*StreamEngine, error) {
	return pipeline.New(c, sc, sectorSize, cfg)
}

// EncodeStream reads payload bytes from src, encodes them through the
// streaming pipeline — plan compiled once, Depth stripes in flight,
// stripe reads overlapping compute — and writes full stripe images
// (n*r sectors, row-major) to dst. The final stripe is zero-padded;
// StreamResult.Bytes is the payload size a later DecodeStream needs to
// trim it.
func EncodeStream(c Code, dst io.Writer, src io.Reader, sectorSize int, cfg StreamConfig) (StreamResult, error) {
	return pipeline.EncodeStream(c, dst, src, sectorSize, cfg)
}

// DecodeStream reads stripe images from src, recovers the scenario's
// faulty sectors in each (their bytes in the stream are ignored and
// reconstructed), and writes the recovered payload to dst, trimmed to
// payload bytes (negative payload emits everything, padding included).
// An empty scenario makes it an overlapped extract of an intact stream.
func DecodeStream(c Code, dst io.Writer, src io.Reader, sc Scenario, payload int64, sectorSize int, cfg StreamConfig) (StreamResult, error) {
	return pipeline.DecodeStream(c, dst, src, sc, payload, sectorSize, cfg)
}

// EncodeBatch encodes an in-memory batch of stripes in place through
// the pipeline: one compiled plan, stripes sharded across the worker
// pool, Depth in flight.
func EncodeBatch(c Code, stripes []*Stripe, cfg StreamConfig) error {
	return pipeline.Batch(c, codes.EncodingScenario(c), stripes, cfg)
}

// DecodeBatch decodes one failure scenario across an in-memory batch of
// stripes in place — the whole-disk rebuild shape: every stripe failed
// identically, one plan serves them all.
func DecodeBatch(c Code, sc Scenario, stripes []*Stripe, cfg StreamConfig) error {
	return pipeline.Batch(c, sc, stripes, cfg)
}

// FieldFor returns the word size w (8, 16 or 32) the library selects
// for a stripe with the given number of sectors — the paper's
// field-switching rule behind the jagged lines of Figures 8-10.
func FieldFor(sectors int) (int, error) {
	f, err := gf.FieldFor(sectors)
	if err != nil {
		return 0, err
	}
	return f.W(), nil
}

// RepairPlanner plans minimal-read repairs for one code instance:
// which survivors to read and which compiled steps recover a wanted
// sector set, LRU-cached per (scenario, wanted) pair.
type RepairPlanner = repair.Planner

// RepairPlan is a compiled minimal-read repair: its ReadCols/ReadDisks
// name exactly the survivor sectors a caller must supply before
// Execute (or ExecuteRange, for a byte sub-range) recovers the wanted
// sectors in place.
type RepairPlan = repair.Plan

// RepairCost scores a repair plan: survivor sectors read (the
// repair-bandwidth term, compared first) and mult_XORs (the
// computational tiebreak).
type RepairCost = cost.RepairCost

// NewRepairPlanner builds a repair planner for the code. Plan(sc,
// wanted) picks the cheapest survivor set per failure — an LRC local
// group over the global parities, a minimized parity-check row when
// one beats the partition.
func NewRepairPlanner(c Code) *RepairPlanner { return repair.NewPlanner(c) }

// DecodeSectorsRange recovers only the wanted sectors of the scenario,
// and only the byte range [lo, hi) of each — the degraded partial-read
// path. lo and hi must be word-aligned for the code's field.
func DecodeSectorsRange(c Code, st *Stripe, sc Scenario, wanted []int, lo, hi int, opts ...Option) error {
	return NewDecoder(c, opts...).DecodeSectorsRange(st, sc, wanted, lo, hi)
}
