// Package ppm is a Go implementation of the Partitioned and Parallel
// Matrix (PPM) algorithm from "PPM: A Partitioned and Parallel Matrix
// Algorithm to Accelerate Encoding/Decoding Process of Asymmetric Parity
// Erasure Codes" (Li et al., ICPP 2015), together with everything the
// algorithm runs on: GF(2^8/16/32) arithmetic, parity-check matrix
// algebra, and the SD, PMDS, LRC and RS code constructions the paper
// evaluates.
//
// # Background
//
// Erasure-coded storage systems recover lost sectors by the parity-check
// matrix method: extract the faulty columns of H into F and the
// surviving columns into S, invert F, and compute the lost blocks as
// BF = F^-1 * S * BS. For asymmetric parity codes (SD, PMDS, LRC) this
// traditional process is serial and wasteful: it treats all faulty
// blocks as one unit even when some of them — the independent faulty
// blocks — are recoverable from survivors alone.
//
// PPM partitions H into p independent sub-matrices plus a remainder,
// decodes the p sub-matrices on T worker goroutines, optimises each
// matrix-decode's calculation order (Normal vs MatrixFirst), and merges
// the recovered blocks into the remaining decode.
//
// # Quick start
//
//	code, err := ppm.NewSD(8, 16, 2, 2) // 8 disks, 16 rows, 2 coding disks, 2 coding sectors
//	st, err := ppm.StripeForCode(code, 32<<20)
//	st.FillDataRandom(1, ppm.DataPositions(code))
//
//	dec := ppm.NewDecoder(code, ppm.WithThreads(4))
//	err = dec.Encode(st) // compute parity
//
//	sc, err := code.WorstCaseScenario(rng, 1) // 2 dead disks + 2 bad sectors
//	st.Erase(sc.Faulty)
//	err = dec.Decode(st, sc) // parallel recovery
//
// # Repeated decodes
//
// A Decoder is built for the rebuild-shaped workload, where thousands
// of stripes fail with the same pattern. Three layers make the repeated
// decode allocation-free: a plan cache on the Decoder (on by default,
// see WithPlanCache) that maps each distinct failure pattern to its
// built plan, so Decode runs at DecodeWithPlan speed from the second
// stripe on; pooled kernel scratch and executor session state, reused
// across decodes instead of reallocated; and a persistent worker pool
// shared by all executors, replacing per-decode goroutine spawning.
// A Decoder is safe for concurrent use by multiple goroutines on
// distinct stripes.
//
// # Error propagation
//
// Every decode entry point — Decode, DecodeWithPlan, DecodeSectors,
// BlockParallelDecode — reports sub-decode failures as returned errors:
// a failing sub-decode is never silently dropped, and kernel-level
// shape violations are converted from panics into errors. When several
// parallel sub-decodes fail in one call, the error of the lowest group
// index is returned, deterministically. An attached Stats counter is
// never credited for work a failed sub-decode did not complete.
//
// See examples/ for runnable programs, DESIGN.md for the architecture,
// and EXPERIMENTS.md for the paper-figure reproductions.
package ppm
