// Smallwrite demonstrates the incremental parity-update path: in an
// erasure-coded system, overwriting one sector must keep the stripe a
// valid codeword. Re-encoding the whole stripe is the naive way; the
// Updater patches only the parity sectors whose equations cover the
// written sector, using the cached generator column.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"ppm"
)

func main() {
	code, err := ppm.NewSD(8, 16, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	st, err := ppm.StripeForCode(code, 8<<20)
	if err != nil {
		log.Fatal(err)
	}
	st.FillDataRandom(1, ppm.DataPositions(code))
	dec := ppm.NewDecoder(code, ppm.WithThreads(4))
	if err := dec.Encode(st); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s stripe of %.1f MB encoded\n", code.Name(), float64(st.TotalBytes())/1e6)

	u, err := ppm.NewUpdater(code)
	if err != nil {
		log.Fatal(err)
	}
	target := ppm.DataPositions(code)[5]
	cost, err := u.UpdateCost(target)
	if err != nil {
		log.Fatal(err)
	}
	// For SD the write cascades: the sector's own row parities change,
	// the s coding sectors change (they cover all data), and therefore
	// the disk parities of the rows holding those coding sectors change
	// too — the generator column captures the whole closure.
	fmt.Printf("overwriting sector %d touches %d parity sectors\n", target, cost)

	fresh := make([]byte, st.SectorSize())
	rand.New(rand.NewSource(2)).Read(fresh)

	var stats ppm.Stats
	start := time.Now()
	if err := u.Update(st, target, fresh, &stats); err != nil {
		log.Fatal(err)
	}
	updateTime := time.Since(start)

	ok, err := ppm.Verify(code, st)
	if err != nil || !ok {
		log.Fatalf("stripe invalid after update: ok=%v err=%v", ok, err)
	}
	fmt.Printf("incremental update: %v, %d mult_XORs; stripe still verifies\n", updateTime, stats.MultXORs())

	// Contrast with a full re-encode of the same write.
	start = time.Now()
	if err := dec.Encode(st); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full re-encode of the stripe: %v\n", time.Since(start))
}
