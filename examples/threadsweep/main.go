// Threadsweep measures one row of the paper's Figure 7 on the local
// machine: the improvement ratio of PPM over the traditional decode as
// the worker count T grows, for SD^{2,2}_{16,16} on a 16 MB stripe.
// On multi-core hosts the improvement climbs until T reaches the core
// count and then flattens, as in the paper; on a single core only the
// computational-cost reduction (C4 < C1) remains.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"time"

	"ppm"
)

const (
	stripeBytes = 16 << 20
	iterations  = 5
)

func main() {
	code, err := ppm.NewSD(16, 16, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	sc, err := code.WorstCaseScenario(rng, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on a %d MB stripe, %d cores available\n", code.Name(), stripeBytes>>20, runtime.NumCPU())

	st, err := ppm.StripeForCode(code, stripeBytes)
	if err != nil {
		log.Fatal(err)
	}
	st.FillDataRandom(1, ppm.DataPositions(code))
	if err := ppm.TraditionalEncode(code, st, nil); err != nil {
		log.Fatal(err)
	}

	tradSec := timeDecode(st, sc, func(s *ppm.Stripe) error {
		return ppm.TraditionalDecode(code, s, sc, nil)
	})
	fmt.Printf("traditional decode: %7.2f MB/s\n", mbps(st, tradSec))

	for _, t := range []int{1, 2, 4, 8} {
		dec := ppm.NewDecoder(code, ppm.WithThreads(t))
		sec := timeDecode(st, sc, func(s *ppm.Stripe) error { return dec.Decode(s, sc) })
		fmt.Printf("PPM T=%d:            %7.2f MB/s  improvement %+.2f%%\n",
			t, mbps(st, sec), 100*(tradSec/sec-1))
	}
}

func timeDecode(st *ppm.Stripe, sc ppm.Scenario, dec func(*ppm.Stripe) error) float64 {
	var total time.Duration
	for i := 0; i < iterations; i++ {
		work := st.Clone()
		work.Erase(sc.Faulty)
		start := time.Now()
		if err := dec(work); err != nil {
			log.Fatal(err)
		}
		total += time.Since(start)
	}
	return total.Seconds() / iterations
}

func mbps(st *ppm.Stripe, sec float64) float64 {
	return float64(st.TotalBytes()) / 1e6 / sec
}
