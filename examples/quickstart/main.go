// Quickstart: encode a stripe with an SD code, lose two disks plus two
// extra sectors, and recover everything with the PPM decoder.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ppm"
)

func main() {
	// SD^{2,2}_{8,16}: 8 disks, 16 sectors per strip, the last 2 disks
	// plus 2 extra sectors hold coding information.
	code, err := ppm.NewSD(8, 16, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("code: %s\n", code.Name())

	// A 4 MB stripe, filled with (deterministic) random user data.
	st, err := ppm.StripeForCode(code, 4<<20)
	if err != nil {
		log.Fatal(err)
	}
	st.FillDataRandom(1, ppm.DataPositions(code))

	// Encoding is the decode special case whose erasures are the parity
	// positions; PPM parallelises it over the stripe rows.
	dec := ppm.NewDecoder(code, ppm.WithThreads(4))
	if err := dec.Encode(st); err != nil {
		log.Fatal(err)
	}
	if ok, err := ppm.Verify(code, st); err != nil || !ok {
		log.Fatalf("parity check after encode: ok=%v err=%v", ok, err)
	}
	pristine := st.Clone()

	// Fail 2 whole disks and 2 more sectors (the paper's worst case).
	rng := rand.New(rand.NewSource(7))
	sc, err := code.WorstCaseScenario(rng, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failure: disks %v plus sectors, %d sectors lost\n", sc.FailedDisks, len(sc.Faulty))
	st.Erase(sc.Faulty)

	// Inspect what PPM will do before doing it.
	plan, err := ppm.BuildPlan(code, sc, ppm.StrategyAuto)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: p = %d parallel sub-decodes, cost %d mult_XORs (traditional: %d) -> %.1f%% cheaper\n",
		plan.Partition.P(), plan.Costs.C4, plan.Costs.C1,
		100*float64(plan.Costs.C1-plan.Costs.C4)/float64(plan.Costs.C1))

	// Recover.
	var stats ppm.Stats
	dec = ppm.NewDecoder(code, ppm.WithThreads(4), ppm.WithStats(&stats))
	if err := dec.Decode(st, sc); err != nil {
		log.Fatal(err)
	}
	if !st.Equal(pristine) {
		log.Fatal("recovered stripe differs from the original")
	}
	fmt.Printf("recovered all %d sectors in %d region operations; stripe verified byte-identical\n",
		len(sc.Faulty), stats.MultXORs())
}
