// Arrayrepair simulates the event the paper's introduction motivates:
// a disk array suffers simultaneous whole-disk failures plus scattered
// latent sector errors ("how today's storage systems actually fail",
// Plank et al. FAST'13), and the system rebuilds everything on line.
// Because every stripe loses the same columns when a disk dies, one PPM
// plan is built and reused across the array (the DecodeWithPlan fast
// path), and each stripe's independent sub-matrices decode in parallel.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ppm"
)

func main() {
	// SD^{2,2}_{8,16}: tolerates 2 dead disks + 2 bad sectors per stripe.
	code, err := ppm.NewSD(8, 16, 2, 2)
	if err != nil {
		log.Fatal(err)
	}

	const (
		stripes    = 64
		sectorSize = 8 << 10 // 8 KiB sectors -> 1 MiB strips, 64 MiB array
	)
	arr, err := ppm.NewArray(code, stripes, sectorSize, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("array: %d stripes of %s, %.0f MB total\n",
		arr.Stripes(), code.Name(), float64(arr.TotalBytes())/1e6)

	// Catastrophe: disks 2 and 5 die...
	if err := arr.FailDisks(2, 5); err != nil {
		log.Fatal(err)
	}
	// ...and a scrub finds latent sector errors on three other stripes.
	rng := rand.New(rand.NewSource(2))
	for _, idx := range []int{7, 20, 41} {
		var bad []int
		for len(bad) < 2 {
			s := rng.Intn(16 * 8)
			if s%8 != 2 && s%8 != 5 { // not on the already-dead disks
				bad = append(bad, s)
			}
		}
		if err := arr.FailSectors(idx, bad...); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("failure: disks 2 and 5 dead; latent sector errors on stripes 7, 20, 41")

	if ok, _ := arr.Verify(); ok {
		log.Fatal("verification should fail while degraded")
	}

	stats, err := arr.Repair(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rebuild: %s\n", stats)

	ok, err := arr.Verify()
	if err != nil || !ok {
		log.Fatalf("post-repair verification failed: ok=%v err=%v", ok, err)
	}
	if !arr.Intact() {
		log.Fatal("repaired bytes differ from the originals")
	}
	fmt.Println("post-repair parity check clean; all stripes byte-identical to the originals")
	fmt.Printf("plan reuse: %d distinct failure signatures -> %d plans for %d stripe decodes\n",
		stats.PlansBuilt, stats.PlansBuilt, stats.Stripes)
}
