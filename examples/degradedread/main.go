// Degradedread demonstrates the cloud scenario that motivates LRC codes
// (§I): a transiently unavailable block must be served by reconstruction
// — a degraded read. With a (12, 3, 2)-LRC, a single lost block is an
// independent faulty block recoverable from its 4-block local group;
// the same read under RS(17, 12) must touch all 12 surviving data
// blocks. The example measures both with the mult_XORs counter and then
// shows PPM recovering a multi-group failure in parallel.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ppm"
)

func main() {
	lrc, err := ppm.NewLRC(12, 3, 2)
	if err != nil {
		log.Fatal(err)
	}
	// RS with the same data width and total redundancy.
	rs, err := ppm.NewRS(17, 1, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LRC: %s (storage cost %.2f)\nRS:  %s\n\n", lrc.Name(), lrc.StorageCost(), rs.Name())

	const blockBytes = 1 << 20
	rng := rand.New(rand.NewSource(11))

	// --- Degraded read of one block. ---
	lost := lrc.DegradedReadScenario(rng)
	fmt.Printf("degraded read: block b%d is unavailable\n", lost.Faulty[0])

	lrcOps := decodeOnce(lrc, lost, blockBytes)
	rsLost, err := ppm.NewScenario(rs, lost.Faulty)
	if err != nil {
		log.Fatal(err)
	}
	rsOps := decodeOnce(rs, rsLost, blockBytes)
	fmt.Printf("  LRC local-group repair: %2d block reads (mult_XORs)\n", lrcOps)
	fmt.Printf("  RS repair:              %2d block reads (mult_XORs)\n", rsOps)
	fmt.Printf("  -> LRC touches %.1fx fewer blocks, the paper's degraded-read motivation\n\n",
		float64(rsOps)/float64(lrcOps))

	// --- Multi-group failure: PPM decodes the groups in parallel. ---
	sc, err := lrc.WorstCaseScenario(rng)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := ppm.BuildPlan(lrc, sc, ppm.StrategyAuto)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worst case: blocks %v lost (one per local group + one extra)\n", sc.Faulty)
	fmt.Printf("  PPM partition: p = %d independent local repairs + global merge\n", plan.Partition.P())
	fmt.Printf("  cost: C4 = %d vs traditional C1 = %d mult_XORs\n", plan.Costs.C4, plan.Costs.C1)

	st, err := ppm.StripeForCode(lrc, 17*blockBytes)
	if err != nil {
		log.Fatal(err)
	}
	st.FillDataRandom(1, ppm.DataPositions(lrc))
	dec := ppm.NewDecoder(lrc, ppm.WithThreads(4))
	if err := dec.Encode(st); err != nil {
		log.Fatal(err)
	}
	pristine := st.Clone()
	st.Erase(sc.Faulty)
	if err := dec.Decode(st, sc); err != nil {
		log.Fatal(err)
	}
	if !st.Equal(pristine) {
		log.Fatal("recovery mismatch")
	}
	fmt.Println("  recovered byte-identically")
}

// decodeOnce runs a real decode on real buffers and returns the
// measured mult_XORs count.
func decodeOnce(code ppm.Code, sc ppm.Scenario, blockBytes int) int64 {
	st, err := ppm.StripeForCode(code, code.NumStrips()*blockBytes)
	if err != nil {
		log.Fatal(err)
	}
	st.FillDataRandom(1, ppm.DataPositions(code))
	if err := ppm.TraditionalEncode(code, st, nil); err != nil {
		log.Fatal(err)
	}
	st.Erase(sc.Faulty)
	var stats ppm.Stats
	dec := ppm.NewDecoder(code, ppm.WithStats(&stats))
	if err := dec.Decode(st, sc); err != nil {
		log.Fatal(err)
	}
	return stats.MultXORs()
}
