// Paperwalkthrough reproduces the worked example of the paper's
// Figures 2 and 3: decoding SD^{1,1}_{4,4}(8|1,2) after losing sectors
// b2, b6, b10, b13 and b14 — first with the traditional whole-matrix
// method, then with PPM, printing every intermediate artifact the
// figures show (H, the log table, the partition, the four costs).
package main

import (
	"fmt"
	"log"

	"ppm"
)

func main() {
	code, err := ppm.NewSD(4, 4, 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== %s: the paper's worked example ===\n\n", code.Name())

	fmt.Println("Step 1: the parity-check matrix H (Figure 2). Rows 0-3 are the")
	fmt.Println("disk-parity equations (one per stripe row, coefficients a_0^c = 1);")
	fmt.Println("row 4 is the sector equation with coefficients a_1^c = 2^c:")
	fmt.Println()
	fmt.Print(code.ParityCheck().String())

	sc, err := ppm.NewScenario(code, []int{2, 6, 10, 13, 14})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfailure scenario: BF^T = [b2 b6 b10 b13 b14]\n\n")

	fmt.Println("--- Traditional decode (Figure 2) ---")
	trad, err := ppm.BuildPlan(code, sc, ppm.StrategyWholeNormal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(trad.Describe(true))

	fmt.Println("\n--- PPM decode (Figure 3) ---")
	plan, err := ppm.BuildPlan(code, sc, ppm.StrategyAuto)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan.Describe(true))

	// Run both against real data and confirm they agree.
	st, err := ppm.StripeForCode(code, 64<<10)
	if err != nil {
		log.Fatal(err)
	}
	st.FillDataRandom(1, ppm.DataPositions(code))
	if err := ppm.TraditionalEncode(code, st, nil); err != nil {
		log.Fatal(err)
	}
	pristine := st.Clone()

	var tradStats, ppmStats ppm.Stats
	tradSt := st.Clone()
	tradSt.Erase(sc.Faulty)
	if err := ppm.TraditionalDecode(code, tradSt, sc, &tradStats); err != nil {
		log.Fatal(err)
	}
	ppmSt := st.Clone()
	ppmSt.Erase(sc.Faulty)
	dec := ppm.NewDecoder(code, ppm.WithThreads(3), ppm.WithStats(&ppmStats))
	if err := dec.Decode(ppmSt, sc); err != nil {
		log.Fatal(err)
	}

	if !tradSt.Equal(pristine) || !ppmSt.Equal(pristine) {
		log.Fatal("a decoder failed to restore the stripe")
	}
	fmt.Printf("\nboth decoders restored the stripe byte-identically\n")
	fmt.Printf("measured cost: traditional %d mult_XORs (C1), PPM %d (C4) -> %.2f%% reduction, as in §III-B\n",
		tradStats.MultXORs(), ppmStats.MultXORs(),
		100*float64(tradStats.MultXORs()-ppmStats.MultXORs())/float64(tradStats.MultXORs()))
}
