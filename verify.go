package ppm

// The blank import installs the symbolic plan verifier's compile-time
// hooks into the xorplan compile cache and the repair planner, so any
// program built through the public API is proven against its source
// coefficient matrix before cache admission when PPM_VERIFY_PLANS=1
// (see internal/planverify). The gate is off by default; importing the
// hook costs nothing on the hot path.
import _ "ppm/internal/planverify"
