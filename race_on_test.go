//go:build race

package ppm

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
