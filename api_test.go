package ppm

import (
	"math/rand"
	"testing"
)

// TestPublicAPIRoundTrip drives the README quick-start path end to end:
// construct, encode, fail, decode, verify.
func TestPublicAPIRoundTrip(t *testing.T) {
	code, err := NewSD(8, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := StripeForCode(code, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	st.FillDataRandom(1, DataPositions(code))

	dec := NewDecoder(code, WithThreads(4))
	if err := dec.Encode(st); err != nil {
		t.Fatal(err)
	}
	ok, err := Verify(code, st)
	if err != nil || !ok {
		t.Fatalf("verify after encode: ok=%v err=%v", ok, err)
	}
	want := st.Clone()

	rng := rand.New(rand.NewSource(2))
	sc, err := code.WorstCaseScenario(rng, 1)
	if err != nil {
		t.Fatal(err)
	}
	st.Erase(sc.Faulty)
	if err := dec.Decode(st, sc); err != nil {
		t.Fatal(err)
	}
	if !st.Equal(want) {
		t.Fatal("decode did not restore the stripe")
	}
}

// TestPublicAPIAgainstTraditional checks that the exported baseline and
// PPM agree for every code constructor.
func TestPublicAPIAgainstTraditional(t *testing.T) {
	rng := rand.New(rand.NewSource(5))

	sd, err := NewSD(6, 6, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	pmds, err := NewPMDS(6, 6, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	lrc, err := NewLRC(12, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewRS(8, 4, 2)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		code Code
		gen  func() (Scenario, error)
	}{
		{sd, func() (Scenario, error) { return sd.WorstCaseScenario(rng, 1) }},
		{pmds, func() (Scenario, error) { return pmds.WorstCaseScenario(rng, 1) }},
		{lrc, func() (Scenario, error) { return lrc.WorstCaseScenario(rng) }},
		{rs, func() (Scenario, error) { return rs.WorstCaseScenario(rng) }},
	} {
		tc := tc
		t.Run(tc.code.Name(), func(t *testing.T) {
			st, err := StripeForCode(tc.code, 64<<10)
			if err != nil {
				t.Fatal(err)
			}
			st.FillDataRandom(7, DataPositions(tc.code))
			if err := TraditionalEncode(tc.code, st, nil); err != nil {
				t.Fatal(err)
			}
			want := st.Clone()

			sc, err := tc.gen()
			if err != nil {
				t.Fatal(err)
			}
			ppmSt := st.Clone()
			ppmSt.Scribble(1, sc.Faulty)
			if err := NewDecoder(tc.code).Decode(ppmSt, sc); err != nil {
				t.Fatal(err)
			}
			tradSt := st.Clone()
			tradSt.Scribble(1, sc.Faulty)
			if err := TraditionalDecode(tc.code, tradSt, sc, nil); err != nil {
				t.Fatal(err)
			}
			if !ppmSt.Equal(want) || !tradSt.Equal(want) {
				t.Fatal("recovery mismatch")
			}
		})
	}
}

// TestPublicAPIPlanInspection: plans expose the paper's cost model.
func TestPublicAPIPlanInspection(t *testing.T) {
	code, err := NewSD(8, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	sc, err := code.WorstCaseScenario(rng, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := BuildPlan(code, sc, StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	c := plan.Costs
	if c.C4 >= c.C1 {
		t.Fatalf("C4 = %d not below C1 = %d", c.C4, c.C1)
	}
	if plan.Partition.P() < 2 {
		t.Fatalf("p = %d; worst case should expose parallelism", plan.Partition.P())
	}
	// Stats audit: a PPM decode performs exactly Chosen mult_XORs.
	st, err := StripeForCode(code, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	st.FillDataRandom(1, DataPositions(code))
	if err := TraditionalEncode(code, st, nil); err != nil {
		t.Fatal(err)
	}
	st.Erase(sc.Faulty)
	var stats Stats
	dec := NewDecoder(code, WithStats(&stats), WithStrategy(StrategyPPM))
	if err := dec.Decode(st, sc); err != nil {
		t.Fatal(err)
	}
	ppmPlan, err := BuildPlan(code, sc, StrategyPPM)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MultXORs() != ppmPlan.Costs.Chosen {
		t.Fatalf("measured %d ops, plan predicts %d", stats.MultXORs(), ppmPlan.Costs.Chosen)
	}
}

func TestFieldForAPI(t *testing.T) {
	cases := []struct{ sectors, want int }{
		{64, 8}, {255, 8}, {256, 16}, {70000, 32},
	}
	for _, c := range cases {
		w, err := FieldFor(c.sectors)
		if err != nil {
			t.Fatal(err)
		}
		if w != c.want {
			t.Fatalf("FieldFor(%d) = %d, want %d", c.sectors, w, c.want)
		}
	}
	if _, err := FieldFor(-1); err == nil {
		t.Fatal("negative sectors accepted")
	}
}

func TestNewScenarioAPI(t *testing.T) {
	code, err := NewSD(6, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewScenario(code, []int{999}); err == nil {
		t.Fatal("out-of-range scenario accepted")
	}
	sc, err := NewScenario(code, []int{5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !Decodable(code, sc) {
		t.Fatal("two-sector scenario should be decodable")
	}
}

// TestChecksumAPIDetectsAndHeals exercises the public integrity surface:
// record checksums, flip a bit, locate the damage, heal it by decode.
func TestChecksumAPIDetectsAndHeals(t *testing.T) {
	code, err := NewSD(6, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := StripeForCode(code, 1<<18)
	if err != nil {
		t.Fatal(err)
	}
	st.FillDataRandom(3, DataPositions(code))
	dec := NewDecoder(code)
	if err := dec.Encode(st); err != nil {
		t.Fatal(err)
	}
	sums := SectorChecksums(st)
	if got := VerifyStripeChecksums(st, sums); got != nil {
		t.Fatalf("clean stripe reported corrupt sectors %v", got)
	}
	want := st.Clone()

	st.FlipBit(7, 11, 2)
	corrupt := VerifyStripeChecksums(st, sums)
	if len(corrupt) != 1 || corrupt[0] != 7 {
		t.Fatalf("corrupt sectors = %v, want [7]", corrupt)
	}
	st.Erase(corrupt)
	if err := dec.Decode(st, Scenario{Faulty: corrupt}); err != nil {
		t.Fatal(err)
	}
	if !st.Equal(want) {
		t.Fatal("healed stripe differs from the original")
	}
}

// TestStreamRetryAPI pins the retry surface: a configured StreamRetry
// on a StreamConfig survives a transient source fault, and the sentinel
// errors are exported and distinct.
func TestStreamRetryAPI(t *testing.T) {
	if ErrStreamOpTimeout == nil || ErrEnginePoisoned == nil {
		t.Fatal("sentinel errors must be non-nil")
	}
	cfg := StreamConfig{Depth: 2, Retry: StreamRetry{MaxAttempts: 3}}
	code, err := NewSD(6, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewStreamEngine(code, EncodingScenario(code), 512, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if got := eng.StageStats().FillRetries; got != 0 {
		t.Fatalf("fresh engine FillRetries = %d, want 0", got)
	}
}

// TestRepairAPIMinimalRead drives the exported repair surface: plan a
// single LRC failure, check the read set is the local group, execute,
// and patch one strip with the range-restricted partial decode.
func TestRepairAPIMinimalRead(t *testing.T) {
	code, err := NewLRC(12, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStripe(code.NumStrips(), code.NumRows(), 256)
	if err != nil {
		t.Fatal(err)
	}
	st.FillDataRandom(1, DataPositions(code))
	dec := NewDecoder(code)
	if err := dec.Encode(st); err != nil {
		t.Fatal(err)
	}
	want := st.Clone()

	sc, err := NewScenario(code, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	planner := NewRepairPlanner(code)
	plan, err := planner.Plan(sc, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Cost.ReadFraction(); got > 0.60 {
		t.Fatalf("ReadFraction = %.2f, want <= 0.60 (local-group repair)", got)
	}
	st.Scribble(2, sc.Faulty)
	if err := plan.Execute(st, nil); err != nil {
		t.Fatal(err)
	}
	if !st.Equal(want) {
		t.Fatal("repair plan did not restore the stripe")
	}

	// Range-restricted partial decode through the package-level helper.
	st.Scribble(3, sc.Faulty)
	if err := DecodeSectorsRange(code, st, sc, []int{3}, 64, 192); err != nil {
		t.Fatal(err)
	}
	for i := 64; i < 192; i++ {
		if st.Sector(3)[i] != want.Sector(3)[i] {
			t.Fatalf("byte %d of wanted sector not recovered", i)
		}
	}
}
