package ppm_test

import (
	"fmt"
	"log"

	"ppm"
)

// ExampleNewSD shows the basic encode → fail → decode → verify cycle.
func ExampleNewSD() {
	code, err := ppm.NewSD(6, 4, 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	st, err := ppm.StripeForCode(code, 64<<10)
	if err != nil {
		log.Fatal(err)
	}
	st.FillDataRandom(1, ppm.DataPositions(code))

	dec := ppm.NewDecoder(code, ppm.WithThreads(4))
	if err := dec.Encode(st); err != nil {
		log.Fatal(err)
	}
	pristine := st.Clone()

	// Lose both coding disks plus a data sector.
	sc, err := ppm.NewScenario(code, []int{0, 4, 5, 10, 11, 16, 17, 22, 23})
	if err != nil {
		log.Fatal(err)
	}
	st.Erase(sc.Faulty)
	if err := dec.Decode(st, sc); err != nil {
		log.Fatal(err)
	}
	fmt.Println("recovered:", st.Equal(pristine))
	// Output: recovered: true
}

// ExampleBuildPlan inspects the paper's worked example: the partition
// and the four calculation-sequence costs of §III-B.
func ExampleBuildPlan() {
	code, err := ppm.NewSD(4, 4, 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	sc, err := ppm.NewScenario(code, []int{2, 6, 10, 13, 14})
	if err != nil {
		log.Fatal(err)
	}
	plan, err := ppm.BuildPlan(code, sc, ppm.StrategyAuto)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("p=%d C1=%d C2=%d C3=%d C4=%d chosen=%d\n",
		plan.Partition.P(), plan.Costs.C1, plan.Costs.C2, plan.Costs.C3, plan.Costs.C4, plan.Costs.Chosen)
	// Output: p=3 C1=35 C2=31 C3=37 C4=29 chosen=29
}

// ExampleCensus reproduces the Azure LRC fault-tolerance profile.
func ExampleCensus() {
	lrc, err := ppm.NewLRC(12, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	res, err := ppm.Census(lrc, 4, 2000, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
	// Output: 4-failure census: 1557/1820 decodable (85.55%), exhaustive
}

// ExampleNewUpdater patches parity after a small write instead of
// re-encoding the stripe.
func ExampleNewUpdater() {
	code, err := ppm.NewLRC(12, 3, 2)
	if err != nil {
		log.Fatal(err)
	}
	st, err := ppm.StripeForCode(code, 68<<10)
	if err != nil {
		log.Fatal(err)
	}
	st.FillDataRandom(1, ppm.DataPositions(code))
	if err := ppm.TraditionalEncode(code, st, nil); err != nil {
		log.Fatal(err)
	}

	u, err := ppm.NewUpdater(code)
	if err != nil {
		log.Fatal(err)
	}
	cost, err := u.UpdateCost(7)
	if err != nil {
		log.Fatal(err)
	}
	fresh := make([]byte, st.SectorSize())
	if err := u.Update(st, 7, fresh, nil); err != nil {
		log.Fatal(err)
	}
	ok, err := ppm.Verify(code, st)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parities touched: %d, still a codeword: %v\n", cost, ok)
	// Output: parities touched: 3, still a codeword: true
}
