package ppm

// Cross-module integration sweep: every code family x every strategy x
// several thread counts, against randomized scenarios, checking byte
// equality with the pristine stripe and cost-model consistency on each
// decode. This is the widest net in the suite; -short trims it.

import (
	"fmt"
	"math/rand"
	"testing"
)

type sweepCase struct {
	name string
	code Code
	gen  func(rng *rand.Rand) (Scenario, error)
}

func sweepCases(t *testing.T) []sweepCase {
	t.Helper()
	sd1, err := NewSD(6, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	sd2, err := NewSD(9, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	sd3, err := NewSD(7, 6, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	pmds, err := NewPMDS(6, 6, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	lrc, err := NewLRC(12, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewRS(8, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	eo, err := NewEVENODD(5)
	if err != nil {
		t.Fatal(err)
	}
	rdp, err := NewRDP(7)
	if err != nil {
		t.Fatal(err)
	}
	lloc, err := NewLRCLocality(12, 3, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	return []sweepCase{
		{"sd-1-1", sd1, func(rng *rand.Rand) (Scenario, error) { return sd1.WorstCaseScenario(rng, 1) }},
		{"sd-2-2", sd2, func(rng *rand.Rand) (Scenario, error) { return sd2.WorstCaseScenario(rng, 1+rng.Intn(2)) }},
		{"sd-3-3", sd3, func(rng *rand.Rand) (Scenario, error) { return sd3.WorstCaseScenario(rng, 1+rng.Intn(3)) }},
		{"pmds", pmds, func(rng *rand.Rand) (Scenario, error) { return pmds.WorstCaseScenario(rng, 1) }},
		{"lrc", lrc, func(rng *rand.Rand) (Scenario, error) { return lrc.WorstCaseScenario(rng) }},
		{"lrc-degraded", lrc, func(rng *rand.Rand) (Scenario, error) { return lrc.DegradedReadScenario(rng), nil }},
		{"rs", rs, func(rng *rand.Rand) (Scenario, error) { return rs.WorstCaseScenario(rng) }},
		{"evenodd", eo, func(rng *rand.Rand) (Scenario, error) { return eo.WorstCaseScenario(rng) }},
		{"rdp", rdp, func(rng *rand.Rand) (Scenario, error) { return rdp.WorstCaseScenario(rng) }},
		{"lrc-locality", lloc, func(rng *rand.Rand) (Scenario, error) { return lloc.WorstCaseScenario(rng) }},
		{"lrc-locality-local", lloc, func(rng *rand.Rand) (Scenario, error) { return lloc.LocalScenario(rng, 2) }},
	}
}

func TestIntegrationSweep(t *testing.T) {
	trials := 6
	if testing.Short() {
		trials = 2
	}
	strategies := []Strategy{StrategyAuto, StrategyPPM, StrategyPPMC3, StrategyWholeNormal, StrategyWholeMatrixFirst}
	threadCounts := []int{1, 4}

	for _, cse := range sweepCases(t) {
		cse := cse
		t.Run(cse.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(cse.name)) * 97))
			st, err := StripeForCode(cse.code, 32<<10)
			if err != nil {
				t.Fatal(err)
			}
			st.FillDataRandom(1, DataPositions(cse.code))
			if err := TraditionalEncode(cse.code, st, nil); err != nil {
				t.Fatal(err)
			}
			pristine := st.Clone()

			for trial := 0; trial < trials; trial++ {
				sc, err := cse.gen(rng)
				if err != nil {
					t.Fatal(err)
				}
				for _, strat := range strategies {
					for _, threads := range threadCounts {
						label := fmt.Sprintf("trial=%d strat=%v T=%d faulty=%v", trial, strat, threads, sc.Faulty)
						work := pristine.Clone()
						work.Scribble(int64(trial), sc.Faulty)
						var stats Stats
						dec := NewDecoder(cse.code,
							WithStrategy(strat), WithThreads(threads), WithStats(&stats))
						if err := dec.Decode(work, sc); err != nil {
							t.Fatalf("%s: %v", label, err)
						}
						if !work.Equal(pristine) {
							t.Fatalf("%s: bytes differ after decode", label)
						}
						plan, err := BuildPlan(cse.code, sc, strat)
						if err != nil {
							t.Fatalf("%s: plan: %v", label, err)
						}
						if stats.MultXORs() != plan.Costs.Chosen {
							t.Fatalf("%s: measured %d ops, plan predicts %d",
								label, stats.MultXORs(), plan.Costs.Chosen)
						}
					}
				}
			}
		})
	}
}

// TestIntegrationSharedDecoderConcurrency: one Decoder used from many
// goroutines on distinct stripes (the documented contract).
func TestIntegrationSharedDecoderConcurrency(t *testing.T) {
	code, err := NewSD(8, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	sc, err := code.WorstCaseScenario(rng, 1)
	if err != nil {
		t.Fatal(err)
	}
	base, err := StripeForCode(code, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	base.FillDataRandom(1, DataPositions(code))
	if err := TraditionalEncode(code, base, nil); err != nil {
		t.Fatal(err)
	}

	dec := NewDecoder(code, WithThreads(2))
	plan, err := dec.Plan(sc)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			st := base.Clone()
			st.Scribble(int64(w), sc.Faulty)
			if err := dec.DecodeWithPlan(plan, st); err != nil {
				errs <- err
				return
			}
			if !st.Equal(base) {
				errs <- fmt.Errorf("worker %d: bytes differ", w)
				return
			}
			errs <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
