# Developer entry points. Everything is plain `go` underneath; the
# targets just encode the common invocations.

GO ?= go

.PHONY: all build test test-short race cover bench bench-kernel bench-pipeline bench-traffic bench-repair tune experiments paper fmt fmt-check vet lint verify-plans fuzz-smoke checkptr chaos check clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# One testing.B benchmark per paper figure plus kernel micro-benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Record the kernel-layer series: gf + kernel region benchmarks, 5 runs
# each (best sample kept), ref-vs-tiled and portable-vs-xorplan
# speedups -> BENCH_kernel.json plus a dated BENCH_history/ copy.
# Fails if any 128 KiB/8 MiB ref/tiled case drops below the 1.5x floor,
# or if no GF width reaches 2x for xorplan at a 128 KiB+ size.
bench-kernel:
	$(GO) run ./cmd/benchkernel -count 5 -o BENCH_kernel.json

# Record the streaming-pipeline series: serial loop vs pipeline at
# depths 1/2/4/8 across SD/LRC/RS, encode + rebuild, with outputs
# verified byte-identical per run -> BENCH_pipeline.json. Fails if any
# store-mode depth>=4 run is below 1.3x the serial loop's throughput.
bench-pipeline:
	$(GO) run ./cmd/benchpipeline -o BENCH_pipeline.json

# Record the simulated-traffic serving comparison: open-loop arrivals
# against a single fixed-default engine vs the autotuned engine pool,
# p50/p99/p999 request latency + aggregate GB/s -> BENCH_traffic.json.
# Fails if the pool is below 1.3x the single engine's throughput at the
# default 8-stream admission cap.
bench-traffic:
	$(GO) run ./cmd/benchpipeline -traffic -traffic-o BENCH_traffic.json

# Record the repair-planner series: minimal-read repair fractions and
# partial-vs-full decode timings per code, plus delta-parity-update
# speedups over full re-encode, with every case differential-checked
# byte-identical -> BENCH_repair.json plus a dated BENCH_history/ copy.
# Fails if an LRC single-failure repair reads more than 60% of the
# survivors, or a 128 KiB+ delta update is below 2x re-encode.
bench-repair:
	$(GO) run ./cmd/benchrepair -o BENCH_repair.json

# Calibrate (or show) this host's tuning profile.
tune:
	$(GO) run ./cmd/ppminspect -tune

# Regenerate the paper's figures at CI scale (minutes).
experiments:
	$(GO) run ./cmd/ppmbench -exp all

# Regenerate at the paper's scale: 32 MB stripes, 10 iterations, full grids.
paper:
	$(GO) run ./cmd/ppmbench -exp all -paper

# fmt rewrites in place; fmt-check only lists and fails, for CI.
fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# The repository's own analyzers: hot-path allocations, goroutine error
# routing, gf region-call contracts, stats accounting, no-copy types.
lint:
	$(GO) run ./cmd/ppmlint ./...

# Symbolically prove every compiled plan in the code zoo — XOR
# programs, set schedules, decode plans, repair plans and delta
# updaters — equal to their coefficient matrices, across all three
# kernel backends. Exits non-zero with an op-level diagnosis on the
# first unprovable plan.
verify-plans:
	$(GO) run ./cmd/ppmverify

# Short differential-fuzz burst over every fuzz target. Each target
# needs its own `go test -fuzz` invocation (the tool refuses multiple
# matches), so the list is explicit.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/gf -run=^$$ -fuzz=FuzzMulAgainstReference -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/gf -run=^$$ -fuzz=FuzzRegionOps -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/gf -run=^$$ -fuzz=FuzzFusedAgainstScalar -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/bitmatrix -run=^$$ -fuzz=FuzzExpandApply -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/xorplan -run=^$$ -fuzz=FuzzProgramVsScalar -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/planverify -run=^$$ -fuzz=FuzzVerifierVsDifferential -fuzztime=$(FUZZTIME)

# Pointer-safety instrumentation over the packages that sit on the
# Go/assembly boundary.
checkptr:
	$(GO) test -gcflags=all=-d=checkptr ./internal/gf ./internal/kernel ./internal/xorplan

# Fault storm: the end-to-end ppmfile chaos tests (missing disk +
# silent flip + transient errors + a permanently hung strip, recovered
# byte-identical) plus the harness chaos experiment over SD/LRC/RS.
# Every schedule spec is printed, so a failing run replays from the
# log; CHAOS_SEED varies the storm deterministically.
CHAOS_SEED ?= 1
chaos:
	$(GO) test ./cmd/ppmfile -run 'TestChaosDecodeStorm|TestScrubRebuildsMissingDisk|TestDecodeTornWriteCaught' -v
	$(GO) run ./cmd/ppmbench -exp chaos -seed $(CHAOS_SEED)

check: build fmt-check vet lint test race verify-plans

clean:
	$(GO) clean ./...
