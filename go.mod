module ppm

go 1.22
