package ppm

// Model-based stateful test: a stripe lives through a random sequence
// of small writes, silent corruptions + scrubs, and failures + decodes,
// while a mirror model tracks what the contents must be. After every
// operation the stripe must verify as a codeword and match the model.

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestStatefulRandomWalk(t *testing.T) {
	steps := 120
	if testing.Short() {
		steps = 30
	}
	rng := rand.New(rand.NewSource(424242))

	code, err := NewSD(6, 6, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := StripeForCode(code, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	st.FillDataRandom(1, DataPositions(code))
	dec := NewDecoder(code, WithThreads(3))
	if err := dec.Encode(st); err != nil {
		t.Fatal(err)
	}
	model := st.Clone() // the truth the stripe must always return to

	updater, err := NewUpdater(code)
	if err != nil {
		t.Fatal(err)
	}
	data := DataPositions(code)

	check := func(step int, op string) {
		t.Helper()
		ok, err := Verify(code, st)
		if err != nil {
			t.Fatalf("step %d (%s): verify error: %v", step, op, err)
		}
		if !ok {
			t.Fatalf("step %d (%s): stripe is not a codeword", step, op)
		}
		if !st.Equal(model) {
			t.Fatalf("step %d (%s): stripe diverged from the model", step, op)
		}
	}

	for step := 0; step < steps; step++ {
		switch rng.Intn(4) {
		case 0: // small write via the incremental updater
			idx := data[rng.Intn(len(data))]
			fresh := make([]byte, st.SectorSize())
			rng.Read(fresh)
			if err := updater.Update(st, idx, fresh, nil); err != nil {
				t.Fatalf("step %d: update: %v", step, err)
			}
			// The model gets the same write via a full re-encode.
			copy(model.Sector(idx), fresh)
			if err := TraditionalEncode(code, model, nil); err != nil {
				t.Fatal(err)
			}
			check(step, "update")

		case 1: // silent corruption, then scrub-and-repair
			victim := rng.Intn(code.NumStrips() * code.NumRows())
			st.Sector(victim)[rng.Intn(st.SectorSize())] ^= byte(1 + rng.Intn(255))
			res, err := ScrubAndRepair(code, st, nil)
			if err != nil {
				t.Fatalf("step %d: scrub: %v", step, err)
			}
			if !res.Located || res.Sector != victim {
				t.Fatalf("step %d: scrub result %+v, victim %d", step, res, victim)
			}
			check(step, "scrub")

		case 2: // worst-case failure, full PPM decode
			sc, err := code.WorstCaseScenario(rng, 1+rng.Intn(2))
			if err != nil {
				t.Fatalf("step %d: scenario: %v", step, err)
			}
			st.Scribble(int64(step), sc.Faulty)
			if err := dec.Decode(st, sc); err != nil {
				t.Fatalf("step %d: decode: %v", step, err)
			}
			check(step, "decode")

		case 3: // partial failure, degraded read of one sector, then full repair
			sc, err := code.WorstCaseScenario(rng, 1)
			if err != nil {
				t.Fatalf("step %d: scenario: %v", step, err)
			}
			st.Scribble(int64(step), sc.Faulty)
			want := sc.Faulty[rng.Intn(len(sc.Faulty))]
			if err := DecodeSectors(code, st, sc, []int{want}, WithThreads(2)); err != nil {
				t.Fatalf("step %d: partial decode: %v", step, err)
			}
			if !bytes.Equal(st.Sector(want), model.Sector(want)) {
				t.Fatalf("step %d: degraded read returned wrong bytes", step)
			}
			// Finish the repair so the invariant holds for the next step.
			if err := dec.Decode(st, sc); err != nil {
				t.Fatalf("step %d: full repair: %v", step, err)
			}
			check(step, "partial+repair")
		}
	}
}
