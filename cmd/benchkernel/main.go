// Command benchkernel records the kernel-layer benchmark series that
// `make bench-kernel` tracks across PRs.
//
// It runs the gf and kernel region benchmarks -count times each, keeps
// the best (minimum ns/op) sample per benchmark — the standard noise
// filter on shared machines — and writes BENCH_kernel.json. For every
// ref_*/tiled_* pair emitted by BenchmarkKernelRegions it records the
// speedup of the tiled+fused path over the pre-PR term-at-a-time sweep
// (gated at 1.5x for the 128 KiB+ cases), and for every
// portable_*/xorplan_* pair of BenchmarkKernelXorplan the speedup of
// the XOR-program backend over the no-GFNI table path (gated: at least
// one GF width must reach 2x at each 128 KiB+ size).
//
// Alongside the overwritten snapshot, every run appends a dated copy
// under BENCH_history/ so the series keeps a trajectory across PRs
// instead of only the latest point.
//
// Usage:
//
//	benchkernel [-count 5] [-benchtime 300ms] [-o BENCH_kernel.json] [-history BENCH_history]
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

type sample struct {
	NsOp float64 `json:"ns_op"`
	MBs  float64 `json:"mb_s,omitempty"`
}

type benchResult struct {
	Name    string   `json:"name"`
	Package string   `json:"package"`
	Samples []sample `json:"samples"`
	BestNs  float64  `json:"best_ns_op"`
	BestMBs float64  `json:"best_mb_s,omitempty"`
}

type pair struct {
	Case       string  `json:"case"` // e.g. "gf16_128KiB"
	RefNsOp    float64 `json:"ref_ns_op"`
	RefMBs     float64 `json:"ref_mb_s"`
	TiledNsOp  float64 `json:"tiled_ns_op"`
	TiledMBs   float64 `json:"tiled_mb_s"`
	Speedup    float64 `json:"speedup"`
	MeetsFloor bool    `json:"meets_1_5x"`
}

// xpair is one portable-vs-xorplan case of BenchmarkKernelXorplan:
// both arms run with the affine kernels off, so the speedup is what
// the XOR-program backend buys the no-GFNI hardware class.
type xpair struct {
	Case          string  `json:"case"` // e.g. "gf8_128KiB"
	PortableNsOp  float64 `json:"portable_ns_op"`
	PortableMBs   float64 `json:"portable_mb_s"`
	XorplanNsOp   float64 `json:"xorplan_ns_op"`
	XorplanMBs    float64 `json:"xorplan_mb_s"`
	Speedup       float64 `json:"speedup"`
	MeetsXorFloor bool    `json:"meets_2x"`
}

type report struct {
	Date         string        `json:"date"`
	GoVersion    string        `json:"go_version"`
	CPU          string        `json:"cpu,omitempty"`
	Count        int           `json:"count"`
	BenchTime    string        `json:"benchtime"`
	Pairs        []pair        `json:"kernel_regions_pairs"`
	XorplanPairs []xpair       `json:"xorplan_pairs"`
	Benchmarks   []benchResult `json:"benchmarks"`
}

func main() {
	var (
		count     = flag.Int("count", 5, "runs per benchmark (best sample kept)")
		benchtime = flag.String("benchtime", "300ms", "go test -benchtime value")
		out       = flag.String("o", "BENCH_kernel.json", "output file")
		history   = flag.String("history", "BENCH_history", "directory for dated report copies (empty disables)")
	)
	flag.Parse()

	rep := report{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Count:     *count,
		BenchTime: *benchtime,
	}
	results := map[string]*benchResult{}
	var order []string

	for _, run := range []struct{ pkg, pattern string }{
		{"./internal/gf", "BenchmarkMultXORs|BenchmarkMultiplierVsMultXORs"},
		{"./internal/kernel", "BenchmarkKernelRegions|BenchmarkKernelXorplan|BenchmarkKernelProductChain"},
	} {
		fmt.Fprintf(os.Stderr, "benchkernel: %s -bench '%s' -count=%d\n", run.pkg, run.pattern, *count)
		args := []string{
			"test", "-run", "^$",
			"-bench", run.pattern,
			"-count", strconv.Itoa(*count),
			"-benchtime", *benchtime,
			run.pkg,
		}
		cmd := exec.Command("go", args...)
		var buf bytes.Buffer
		cmd.Stdout = &buf
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "benchkernel: go %s: %v\n%s", strings.Join(args, " "), err, buf.String())
			os.Exit(1)
		}
		sc := bufio.NewScanner(&buf)
		for sc.Scan() {
			line := sc.Text()
			if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
				rep.CPU = cpu
				continue
			}
			name, s, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			r := results[name]
			if r == nil {
				r = &benchResult{Name: name, Package: strings.TrimPrefix(run.pkg, "./")}
				results[name] = r
				order = append(order, name)
			}
			r.Samples = append(r.Samples, s)
			if r.BestNs == 0 || s.NsOp < r.BestNs {
				r.BestNs = s.NsOp
			}
			if s.MBs > r.BestMBs {
				r.BestMBs = s.MBs
			}
		}
	}

	for _, name := range order {
		rep.Benchmarks = append(rep.Benchmarks, *results[name])
	}
	rep.Pairs = regionPairs(results)
	rep.XorplanPairs = xorplanPairs(results)

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchkernel: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchkernel: %v\n", err)
		os.Exit(1)
	}
	if *history != "" {
		if err := writeHistory(*history, rep.Date, data); err != nil {
			fmt.Fprintf(os.Stderr, "benchkernel: history: %v\n", err)
			os.Exit(1)
		}
	}

	fmt.Printf("%-14s %12s %12s %9s\n", "case", "ref MB/s", "tiled MB/s", "speedup")
	for _, p := range rep.Pairs {
		fmt.Printf("%-14s %12.1f %12.1f %8.2fx\n", p.Case, p.RefMBs, p.TiledMBs, p.Speedup)
	}
	fmt.Printf("%-14s %12s %12s %9s\n", "case", "table MB/s", "xorplan MB/s", "speedup")
	for _, p := range rep.XorplanPairs {
		fmt.Printf("%-14s %12.1f %12.1f %8.2fx\n", p.Case, p.PortableMBs, p.XorplanMBs, p.Speedup)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))

	for _, p := range rep.Pairs {
		if strings.Contains(p.Case, "128KiB") || strings.Contains(p.Case, "8MiB") {
			if !p.MeetsFloor {
				fmt.Fprintf(os.Stderr, "benchkernel: %s speedup %.2fx below the 1.5x floor\n", p.Case, p.Speedup)
				os.Exit(1)
			}
		}
	}
	// XOR-backend gate: at every 128 KiB+ size, at least one GF width
	// must reach the 2x floor over the no-GFNI table path.
	for _, size := range []string{"128KiB", "8MiB"} {
		seen, best := false, 0.0
		for _, p := range rep.XorplanPairs {
			if strings.HasSuffix(p.Case, "_"+size) {
				seen = true
				if p.Speedup > best {
					best = p.Speedup
				}
			}
		}
		if seen && best < 2.0 {
			fmt.Fprintf(os.Stderr, "benchkernel: best xorplan speedup at %s is %.2fx, below the 2x floor\n", size, best)
			os.Exit(1)
		}
	}
}

// writeHistory appends a dated copy of the report to dir, so the bench
// series keeps every recorded point, not just the latest overwrite.
func writeHistory(dir, date string, data []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	stamp := strings.NewReplacer(":", "", "-", "").Replace(date)
	return os.WriteFile(filepath.Join(dir, "BENCH_kernel-"+stamp+".json"), data, 0o644)
}

// parseBenchLine decodes one `go test -bench` result line:
//
//	BenchmarkKernelRegions/ref_gf8_4KiB-1   3270   101211 ns/op   647.52 MB/s
//
// The -P suffix (GOMAXPROCS) is stripped so counts merge across runs.
func parseBenchLine(line string) (name string, s sample, ok bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", sample{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", sample{}, false
	}
	name = fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", sample{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			s.NsOp = v
		case "MB/s":
			s.MBs = v
		}
	}
	return name, s, s.NsOp > 0
}

// regionPairs matches BenchmarkKernelRegions/ref_<case> with its
// tiled_<case> partner and computes the speedup from best ns/op.
func regionPairs(results map[string]*benchResult) []pair {
	const prefix = "BenchmarkKernelRegions/"
	var pairs []pair
	for name, ref := range results {
		c, ok := strings.CutPrefix(name, prefix+"ref_")
		if !ok {
			continue
		}
		tiled := results[prefix+"tiled_"+c]
		if tiled == nil || ref.BestNs == 0 || tiled.BestNs == 0 {
			continue
		}
		sp := ref.BestNs / tiled.BestNs
		pairs = append(pairs, pair{
			Case:       c,
			RefNsOp:    ref.BestNs,
			RefMBs:     ref.BestMBs,
			TiledNsOp:  tiled.BestNs,
			TiledMBs:   tiled.BestMBs,
			Speedup:    sp,
			MeetsFloor: sp >= 1.5,
		})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Case < pairs[j].Case })
	return pairs
}

// xorplanPairs matches BenchmarkKernelXorplan/portable_<case> with its
// xorplan_<case> partner and computes the speedup from best ns/op.
func xorplanPairs(results map[string]*benchResult) []xpair {
	const prefix = "BenchmarkKernelXorplan/"
	var pairs []xpair
	for name, portable := range results {
		c, ok := strings.CutPrefix(name, prefix+"portable_")
		if !ok {
			continue
		}
		xp := results[prefix+"xorplan_"+c]
		if xp == nil || portable.BestNs == 0 || xp.BestNs == 0 {
			continue
		}
		sp := portable.BestNs / xp.BestNs
		pairs = append(pairs, xpair{
			Case:          c,
			PortableNsOp:  portable.BestNs,
			PortableMBs:   portable.BestMBs,
			XorplanNsOp:   xp.BestNs,
			XorplanMBs:    xp.BestMBs,
			Speedup:       sp,
			MeetsXorFloor: sp >= 2.0,
		})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Case < pairs[j].Case })
	return pairs
}
