// Command benchkernel records the kernel-layer benchmark series that
// `make bench-kernel` tracks across PRs.
//
// It runs the gf and kernel region benchmarks -count times each, keeps
// the best (minimum ns/op) sample per benchmark — the standard noise
// filter on shared machines — and writes BENCH_kernel.json. For every
// ref_*/tiled_* pair emitted by BenchmarkKernelRegions it also records
// the speedup of the tiled+fused path over the pre-PR term-at-a-time
// sweep, which is the number the PR's acceptance gate reads.
//
// Usage:
//
//	benchkernel [-count 5] [-benchtime 300ms] [-o BENCH_kernel.json]
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

type sample struct {
	NsOp float64 `json:"ns_op"`
	MBs  float64 `json:"mb_s,omitempty"`
}

type benchResult struct {
	Name    string   `json:"name"`
	Package string   `json:"package"`
	Samples []sample `json:"samples"`
	BestNs  float64  `json:"best_ns_op"`
	BestMBs float64  `json:"best_mb_s,omitempty"`
}

type pair struct {
	Case       string  `json:"case"` // e.g. "gf16_128KiB"
	RefNsOp    float64 `json:"ref_ns_op"`
	RefMBs     float64 `json:"ref_mb_s"`
	TiledNsOp  float64 `json:"tiled_ns_op"`
	TiledMBs   float64 `json:"tiled_mb_s"`
	Speedup    float64 `json:"speedup"`
	MeetsFloor bool    `json:"meets_1_5x"`
}

type report struct {
	Date       string        `json:"date"`
	GoVersion  string        `json:"go_version"`
	CPU        string        `json:"cpu,omitempty"`
	Count      int           `json:"count"`
	BenchTime  string        `json:"benchtime"`
	Pairs      []pair        `json:"kernel_regions_pairs"`
	Benchmarks []benchResult `json:"benchmarks"`
}

func main() {
	var (
		count     = flag.Int("count", 5, "runs per benchmark (best sample kept)")
		benchtime = flag.String("benchtime", "300ms", "go test -benchtime value")
		out       = flag.String("o", "BENCH_kernel.json", "output file")
	)
	flag.Parse()

	rep := report{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Count:     *count,
		BenchTime: *benchtime,
	}
	results := map[string]*benchResult{}
	var order []string

	for _, run := range []struct{ pkg, pattern string }{
		{"./internal/gf", "BenchmarkMultXORs|BenchmarkMultiplierVsMultXORs"},
		{"./internal/kernel", "BenchmarkKernelRegions|BenchmarkKernelProductChain"},
	} {
		fmt.Fprintf(os.Stderr, "benchkernel: %s -bench '%s' -count=%d\n", run.pkg, run.pattern, *count)
		args := []string{
			"test", "-run", "^$",
			"-bench", run.pattern,
			"-count", strconv.Itoa(*count),
			"-benchtime", *benchtime,
			run.pkg,
		}
		cmd := exec.Command("go", args...)
		var buf bytes.Buffer
		cmd.Stdout = &buf
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "benchkernel: go %s: %v\n%s", strings.Join(args, " "), err, buf.String())
			os.Exit(1)
		}
		sc := bufio.NewScanner(&buf)
		for sc.Scan() {
			line := sc.Text()
			if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
				rep.CPU = cpu
				continue
			}
			name, s, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			r := results[name]
			if r == nil {
				r = &benchResult{Name: name, Package: strings.TrimPrefix(run.pkg, "./")}
				results[name] = r
				order = append(order, name)
			}
			r.Samples = append(r.Samples, s)
			if r.BestNs == 0 || s.NsOp < r.BestNs {
				r.BestNs = s.NsOp
			}
			if s.MBs > r.BestMBs {
				r.BestMBs = s.MBs
			}
		}
	}

	for _, name := range order {
		rep.Benchmarks = append(rep.Benchmarks, *results[name])
	}
	rep.Pairs = regionPairs(results)

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchkernel: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchkernel: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("%-14s %12s %12s %9s\n", "case", "ref MB/s", "tiled MB/s", "speedup")
	for _, p := range rep.Pairs {
		fmt.Printf("%-14s %12.1f %12.1f %8.2fx\n", p.Case, p.RefMBs, p.TiledMBs, p.Speedup)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))

	for _, p := range rep.Pairs {
		if strings.Contains(p.Case, "128KiB") || strings.Contains(p.Case, "8MiB") {
			if !p.MeetsFloor {
				fmt.Fprintf(os.Stderr, "benchkernel: %s speedup %.2fx below the 1.5x floor\n", p.Case, p.Speedup)
				os.Exit(1)
			}
		}
	}
}

// parseBenchLine decodes one `go test -bench` result line:
//
//	BenchmarkKernelRegions/ref_gf8_4KiB-1   3270   101211 ns/op   647.52 MB/s
//
// The -P suffix (GOMAXPROCS) is stripped so counts merge across runs.
func parseBenchLine(line string) (name string, s sample, ok bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", sample{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", sample{}, false
	}
	name = fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", sample{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			s.NsOp = v
		case "MB/s":
			s.MBs = v
		}
	}
	return name, s, s.NsOp > 0
}

// regionPairs matches BenchmarkKernelRegions/ref_<case> with its
// tiled_<case> partner and computes the speedup from best ns/op.
func regionPairs(results map[string]*benchResult) []pair {
	const prefix = "BenchmarkKernelRegions/"
	var pairs []pair
	for name, ref := range results {
		c, ok := strings.CutPrefix(name, prefix+"ref_")
		if !ok {
			continue
		}
		tiled := results[prefix+"tiled_"+c]
		if tiled == nil || ref.BestNs == 0 || tiled.BestNs == 0 {
			continue
		}
		sp := ref.BestNs / tiled.BestNs
		pairs = append(pairs, pair{
			Case:       c,
			RefNsOp:    ref.BestNs,
			RefMBs:     ref.BestMBs,
			TiledNsOp:  tiled.BestNs,
			TiledMBs:   tiled.BestMBs,
			Speedup:    sp,
			MeetsFloor: sp >= 1.5,
		})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Case < pairs[j].Case })
	return pairs
}
