// Command ppmverify runs the symbolic plan verifier over the standard
// code zoo: every decode plan, repair plan, xorplan XOR program,
// optimised bit-matrix schedule and delta-parity updater the production
// paths build, across every decodable single- and double-failure
// scenario (plus seeded random maximum-tolerance ones), proven
// algebraically equal to their source coefficient matrices.
//
// Usage:
//
//	ppmverify [-backends list] [-extra n] [-seed n] [-json] [-o file]
//
// Backends select the kernel configuration per sweep leg: "hardware"
// (GFNI affine kernels where the CPU has them), "portable" (table row
// kernels), "xorplan" (the forced XOR-program backend). The exit
// status is 1 when any finding is reported, so `make verify-plans`
// fails the build on an unprovable program; each finding pinpoints the
// artifact, the failed pass, and the offending op index.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ppm/internal/gf"
	"ppm/internal/kernel"
	"ppm/internal/planverify"
)

// leg is one backend configuration of the sweep.
type leg struct {
	name    string
	affine  bool
	xorplan kernel.XorplanMode
}

var legs = map[string]leg{
	"hardware": {name: "hardware", affine: true, xorplan: kernel.XorplanOff},
	"portable": {name: "portable", affine: false, xorplan: kernel.XorplanOff},
	"xorplan":  {name: "xorplan", affine: false, xorplan: kernel.XorplanOn},
}

// report is the JSON document -json emits (and -o uploads from CI).
type report struct {
	Backends []string                         `json:"backends"`
	Stats    map[string]planverify.SweepStats `json:"stats"`
	Findings []planverify.Finding             `json:"findings"`
}

func main() {
	backends := flag.String("backends", "hardware,portable,xorplan", "comma-separated sweep legs: hardware, portable, xorplan")
	extra := flag.Int("extra", 4, "random maximum-tolerance scenarios per code")
	seed := flag.Int64("seed", 1, "seed for the random scenarios")
	jsonOut := flag.Bool("json", false, "emit the findings report as JSON")
	outPath := flag.String("o", "", "write output to file instead of stdout")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "ppmverify: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppmverify: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		out = f
	}

	// Findings starts non-nil so a clean run encodes as [] not null.
	rep := report{Stats: make(map[string]planverify.SweepStats), Findings: []planverify.Finding{}}
	for _, name := range strings.Split(*backends, ",") {
		name = strings.TrimSpace(name)
		l, ok := legs[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "ppmverify: unknown backend %q (want hardware, portable or xorplan)\n", name)
			os.Exit(2)
		}
		zoo, err := planverify.StandardZoo()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ppmverify: building zoo: %v\n", err)
			os.Exit(2)
		}
		prevAffine := gf.SetAffineKernels(l.affine)
		prevMode := kernel.SetXorplanMode(l.xorplan)
		fs, stats := planverify.Sweep(zoo, *seed, *extra)
		label := l.name
		if l.affine && !gf.AffineKernels() {
			label += " (GFNI unavailable: ran portable kernels)"
		}
		kernel.SetXorplanMode(prevMode)
		gf.SetAffineKernels(prevAffine)
		rep.Backends = append(rep.Backends, label)
		rep.Stats[l.name] = stats
		for i := range fs {
			fs[i].Detail = fmt.Sprintf("backend=%s %s", l.name, fs[i].Detail)
		}
		rep.Findings = append(rep.Findings, fs...)
	}

	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "ppmverify: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range rep.Findings {
			fmt.Fprintln(out, f)
		}
		for _, b := range rep.Backends {
			name := strings.SplitN(b, " ", 2)[0]
			s := rep.Stats[name]
			fmt.Fprintf(out, "ppmverify: backend %s: proved %d plans, %d repairs, %d programs, %d schedules, %d updaters over %d scenarios\n",
				b, s.Plans, s.Repairs, s.Programs, s.Schedules, s.Updaters, s.Scenarios)
		}
	}
	if len(rep.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "ppmverify: %d finding(s)\n", len(rep.Findings))
		os.Exit(1)
	}
}
