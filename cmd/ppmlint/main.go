// Command ppmlint is the multichecker driver for the repository's
// static-analysis suite (internal/lint). It enforces the invariants
// the performance work depends on: allocation-free //ppm:hotpath
// regions, goroutine error routing in the concurrency packages,
// region-operation argument discipline, mult_XORs accounting, and
// no-copy session/arena types.
//
// Usage:
//
//	ppmlint [-checks list] [-list] [-json] [packages...]
//
// Packages default to ./... in the current directory. The exit status
// is 1 when any diagnostic is reported, so `make lint` fails the build
// on a violation; intentional deviations are suppressed in the source
// with `//ppm:allow(<analyzer>) <reason>` — the reason is mandatory.
// -json emits the diagnostics as a JSON array (one object per finding,
// with position, analyzer and message) for CI artifact consumers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ppm/internal/lint"
)

func main() {
	checks := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ppmlint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *checks != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*checks, ",") {
			name = strings.TrimSpace(name)
			a := lint.ByName(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "ppmlint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppmlint: %v\n", err)
		os.Exit(2)
	}
	diags := lint.RunAnalyzers(pkgs, analyzers)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{} // emit [] rather than null
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "ppmlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ppmlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
