package main

import (
	"fmt"
	"time"

	"ppm/internal/codes"
	"ppm/internal/pipeline"
	"ppm/internal/stripe"
	"ppm/internal/tune"
)

// inspectTune prints this host's tuning profile (loading the persisted
// one or calibrating a fresh one) and demonstrates the per-stage stall
// counters with a short latency-modelled stream: the dominant counter
// names the pipeline's bottleneck stage.
func inspectTune() error {
	path, err := tune.Path()
	if err != nil {
		return err
	}
	p, err := tune.Get()
	if err != nil {
		return err
	}
	if p == nil {
		fmt.Printf("autotuning disabled (%s=off)\n", tune.EnvDisable)
		return nil
	}
	fmt.Printf("profile: %s\n", p)
	fmt.Printf("path:    %s\n", path)
	fmt.Printf("scores:  tile %.0f MB/s, mem %.0f stripes/s, store %.0f stripes/s\n",
		p.Scores.TileMBs, p.Scores.MemStripesS, p.Scores.StoreStripesS)

	// Stall demonstration: a store-latency-bound rebuild stream through
	// an Auto engine. With the store on both edges the drain stage
	// spends most of its wait on completed-stripe writes, and the fill
	// stall shows the free-list backpressure from Depth.
	c, err := codes.NewSD(8, 16, 2, 2)
	if err != nil {
		return err
	}
	var faulty []int
	for row := 0; row < c.NumRows(); row++ {
		faulty = append(faulty, row*c.NumStrips(), row*c.NumStrips()+2)
	}
	sc, err := codes.NewScenario(c, faulty)
	if err != nil {
		return err
	}
	e, err := pipeline.New(c, sc, 4096, pipeline.Config{Auto: true})
	if err != nil {
		return err
	}
	defer e.Close()
	const stripes, lat = 24, 500 * time.Microsecond
	start := time.Now()
	if _, err := e.Run(&stallSource{count: stripes, lat: lat}, &stallSink{lat: lat}); err != nil {
		return err
	}
	elapsed := time.Since(start)
	s := e.StageStats()
	cfg := e.Config()
	fmt.Printf("\nstall demo: %d-stripe rebuild stream, %s store latency per edge, depth=%d workers=%d\n",
		stripes, lat, cfg.Depth, cfg.Workers)
	fmt.Printf("  elapsed %.1fms (serial store floor %.1fms)\n",
		float64(elapsed.Milliseconds()), float64((2 * stripes * lat).Milliseconds()))
	fmt.Printf("  fill stall    %6.1fms  (fill waiting for free slabs: drain backpressure)\n", float64(s.FillStallNs)/1e6)
	fmt.Printf("  compute stall %6.1fms  (shards waiting for stripes: fill-bound)\n", float64(s.ComputeStallNs)/1e6)
	fmt.Printf("  drain stall   %6.1fms  (in-order drain waiting on completion)\n", float64(s.DrainStallNs)/1e6)
	return nil
}

type stallSource struct {
	count int
	lat   time.Duration
}

func (s *stallSource) Next(idx int, slab *stripe.Stripe) (*stripe.Stripe, error) {
	if idx >= s.count {
		return nil, nil
	}
	time.Sleep(s.lat)
	return slab, nil
}

type stallSink struct{ lat time.Duration }

func (k *stallSink) Drain(int, *stripe.Stripe) error {
	time.Sleep(k.lat)
	return nil
}
