// Command ppminspect prints the internals PPM derives for a code
// instance and failure scenario: the parity-check matrix, the log
// table, the partition into independent sub-matrices, the C1..C4 cost
// model and the chosen calculation sequences — Figure 3 of the paper,
// for any configuration.
//
// Usage:
//
//	ppminspect -code sd -n 4 -r 4 -m 1 -s 1 -faulty 2,6,10,13,14 -v
//	ppminspect -code sd -n 8 -r 16 -m 2 -s 2 -worst -z 1
//	ppminspect -code lrc -k 12 -l 3 -g 2 -worst
//	ppminspect -code rs -n 8 -r 4 -m 2 -worst
//	ppminspect -code sd -n 8 -r 16 -m 2 -s 2 -encode
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"ppm/internal/codes"
	"ppm/internal/core"
)

func main() {
	var (
		kind   = flag.String("code", "sd", "code family: sd, pmds, lrc, lrcloc, rs, evenodd, rdp")
		n      = flag.Int("n", 4, "disks per stripe (sd/pmds/rs)")
		r      = flag.Int("r", 4, "rows per strip (sd/pmds/rs)")
		m      = flag.Int("m", 1, "coding disks (sd/pmds/rs)")
		s      = flag.Int("s", 1, "coding sectors (sd/pmds)")
		k      = flag.Int("k", 12, "data blocks (lrc)")
		l      = flag.Int("l", 2, "local groups (lrc/lrcloc)")
		g      = flag.Int("g", 2, "global parities (lrc/lrcloc)")
		delta  = flag.Int("delta", 3, "locality δ (lrcloc)")
		prime  = flag.Int("p", 5, "prime parameter (evenodd/rdp)")
		faulty = flag.String("faulty", "", "comma-separated faulty sector indices")
		worst  = flag.Bool("worst", false, "generate a worst-case scenario")
		z      = flag.Int("z", 1, "rows holding the extra sector failures (sd/pmds)")
		seed   = flag.Int64("seed", 1, "scenario RNG seed")
		enc    = flag.Bool("encode", false, "inspect the encoding plan instead")
		strat  = flag.String("strategy", "auto", "auto, ppm, ppm-c3, whole-normal, whole-matrix-first")
		v      = flag.Bool("v", false, "print the sub-matrices")
		showH  = flag.Bool("H", false, "print the full parity-check matrix")
		audit  = flag.Int("audit", 0, "run a fault-tolerance census up to this many simultaneous failures")
		budget = flag.Int("audit-budget", 20000, "max patterns per census level (samples beyond)")
		tuneFl = flag.Bool("tune", false, "print this host's tuning profile and a stage-stall demonstration")
	)
	flag.Parse()

	if *tuneFl {
		if err := inspectTune(); err != nil {
			fatal(err)
		}
		return
	}

	code, err := buildCode(*kind, *n, *r, *m, *s, *k, *l, *g, *delta, *prime)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("code: %s\n", code.Name())
	fmt.Printf("geometry: n=%d strips x r=%d rows, H is %s, parity positions %v\n",
		code.NumStrips(), code.NumRows(), code.ParityCheck().Dims(), code.ParityPositions())
	if *showH {
		fmt.Printf("H:\n%s", code.ParityCheck().String())
	}

	if *audit > 0 {
		fmt.Println("\nfault-tolerance census:")
		for t := 1; t <= *audit; t++ {
			res, err := codes.Census(code, t, *budget, *seed)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  %s\n", res)
		}
		return
	}

	sc, err := pickScenario(code, *faulty, *worst, *enc, *z, *seed)
	if err != nil {
		fatal(err)
	}

	strategy, err := parseStrategy(*strat)
	if err != nil {
		fatal(err)
	}
	plan, err := core.BuildPlan(code, sc, strategy)
	if err != nil {
		fatal(err)
	}
	fmt.Println()
	fmt.Print(plan.Describe(*v))
}

func buildCode(kind string, n, r, m, s, k, l, g, delta, prime int) (codes.Code, error) {
	switch kind {
	case "sd":
		return codes.NewSD(n, r, m, s)
	case "pmds":
		return codes.NewPMDS(n, r, m, s)
	case "lrc":
		return codes.NewLRC(k, l, g)
	case "lrcloc":
		return codes.NewLRCLocality(k, l, delta, g)
	case "rs":
		return codes.NewRS(n, r, m)
	case "evenodd":
		return codes.NewEVENODD(prime)
	case "rdp":
		return codes.NewRDP(prime)
	default:
		return nil, fmt.Errorf("unknown code family %q", kind)
	}
}

func pickScenario(code codes.Code, faulty string, worst, enc bool, z int, seed int64) (codes.Scenario, error) {
	switch {
	case enc:
		return codes.EncodingScenario(code), nil
	case faulty != "":
		var idx []int
		for _, part := range strings.Split(faulty, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return codes.Scenario{}, fmt.Errorf("bad -faulty entry %q: %v", part, err)
			}
			idx = append(idx, v)
		}
		return codes.NewScenario(code, idx)
	case worst:
		rng := rand.New(rand.NewSource(seed))
		switch c := code.(type) {
		case *codes.SD:
			return c.WorstCaseScenario(rng, z)
		case *codes.PMDS:
			return c.WorstCaseScenario(rng, z)
		case *codes.LRC:
			return c.WorstCaseScenario(rng)
		case *codes.LRCLocality:
			return c.WorstCaseScenario(rng)
		case *codes.RS:
			return c.WorstCaseScenario(rng)
		case *codes.EVENODD:
			return c.WorstCaseScenario(rng)
		case *codes.RDP:
			return c.WorstCaseScenario(rng)
		}
		return codes.Scenario{}, fmt.Errorf("no worst-case generator for %T", code)
	default:
		return codes.Scenario{}, fmt.Errorf("pick one of -faulty, -worst or -encode")
	}
}

func parseStrategy(s string) (core.Strategy, error) {
	switch s {
	case "auto":
		return core.StrategyAuto, nil
	case "ppm":
		return core.StrategyPPM, nil
	case "ppm-c3":
		return core.StrategyPPMMatrixFirstRest, nil
	case "whole-normal":
		return core.StrategyWholeNormal, nil
	case "whole-matrix-first":
		return core.StrategyWholeMatrixFirst, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ppminspect: %v\n", err)
	os.Exit(1)
}
