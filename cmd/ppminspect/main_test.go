package main

import (
	"testing"

	"ppm/internal/codes"
	"ppm/internal/core"
)

func TestBuildCode(t *testing.T) {
	cases := []struct {
		kind    string
		wantErr bool
	}{
		{"sd", false}, {"pmds", false}, {"lrc", false}, {"lrcloc", false},
		{"rs", false}, {"evenodd", false}, {"rdp", false},
		{"nope", true},
	}
	for _, c := range cases {
		code, err := buildCode(c.kind, 6, 4, 2, 1, 12, 2, 2, 3, 5)
		if c.wantErr {
			if err == nil {
				t.Errorf("kind %q accepted", c.kind)
			}
			continue
		}
		if err != nil {
			t.Errorf("kind %q: %v", c.kind, err)
			continue
		}
		if code.Name() == "" {
			t.Errorf("kind %q: empty name", c.kind)
		}
	}
}

func TestPickScenario(t *testing.T) {
	code, err := buildCode("sd", 4, 4, 1, 1, 0, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Explicit faulty list.
	sc, err := pickScenario(code, "2, 6,10", false, false, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Faulty) != 3 || sc.Faulty[0] != 2 {
		t.Fatalf("scenario %v", sc.Faulty)
	}
	// Bad entry.
	if _, err := pickScenario(code, "2,x", false, false, 1, 1); err == nil {
		t.Error("garbage -faulty accepted")
	}
	// Worst case.
	sc, err = pickScenario(code, "", true, false, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Faulty) != 5 {
		t.Fatalf("worst case %v", sc.Faulty)
	}
	// Encoding.
	sc, err = pickScenario(code, "", false, true, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Faulty) != len(code.ParityPositions()) {
		t.Fatal("encode scenario wrong")
	}
	// None selected.
	if _, err := pickScenario(code, "", false, false, 1, 1); err == nil {
		t.Error("no scenario selector accepted")
	}
}

func TestPickScenarioWorstPerFamily(t *testing.T) {
	for _, kind := range []string{"pmds", "lrc", "lrcloc", "rs", "evenodd", "rdp"} {
		code, err := buildCode(kind, 6, 4, 2, 1, 12, 2, 2, 3, 5)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := pickScenario(code, "", true, false, 1, 3)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(sc.Faulty) == 0 || !codes.Decodable(code, sc) {
			t.Fatalf("%s: bad worst case %v", kind, sc.Faulty)
		}
	}
}

func TestParseStrategy(t *testing.T) {
	cases := map[string]core.Strategy{
		"auto":               core.StrategyAuto,
		"ppm":                core.StrategyPPM,
		"ppm-c3":             core.StrategyPPMMatrixFirstRest,
		"whole-normal":       core.StrategyWholeNormal,
		"whole-matrix-first": core.StrategyWholeMatrixFirst,
	}
	for s, want := range cases {
		got, err := parseStrategy(s)
		if err != nil || got != want {
			t.Errorf("parseStrategy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := parseStrategy("bogus"); err == nil {
		t.Error("bogus strategy accepted")
	}
}
