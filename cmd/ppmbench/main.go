// Command ppmbench regenerates the paper's evaluation figures.
//
// Usage:
//
//	ppmbench -list
//	ppmbench -exp fig7
//	ppmbench -exp all -paper          # the paper's 32 MB / 10-iteration setup
//	ppmbench -exp fig9 -stripe 8388608 -iters 5 -threads 4 -seed 7 -full
//
// Output is one tab-separated table per experiment, with the series the
// corresponding figure plots. EXPERIMENTS.md records a reference run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"ppm/internal/harness"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (fig4..fig11, headline, all)")
		list    = flag.Bool("list", false, "list experiments and exit")
		stripe  = flag.Int("stripe", 0, "stripe size in bytes (default per config)")
		iters   = flag.Int("iters", 0, "iterations per measurement")
		threads = flag.Int("threads", 0, "PPM worker count T (0 = min(4, cores))")
		seed    = flag.Int64("seed", 1, "scenario RNG seed")
		full    = flag.Bool("full", false, "full parameter grids (slower)")
		paper   = flag.Bool("paper", false, "the paper's measurement setup (32 MB stripes, 10 iterations, full grids)")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range harness.Registry() {
			fmt.Printf("  %-9s %s\n", e.ID, e.Title)
		}
		fmt.Println("  all       run everything")
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	cfg := harness.DefaultConfig()
	if *paper {
		cfg = harness.PaperConfig()
	}
	if *stripe > 0 {
		cfg.StripeBytes = *stripe
	}
	if *iters > 0 {
		cfg.Iterations = *iters
	}
	cfg.Threads = *threads
	cfg.Seed = *seed
	if *full {
		cfg.Quick = false
	}

	fmt.Printf("# host: %d cores (GOMAXPROCS %d); stripe %d bytes, %d iterations, T=%d, seed %d\n",
		runtime.NumCPU(), runtime.GOMAXPROCS(0), cfg.StripeBytes, cfg.Iterations, cfg.Threads, cfg.Seed)

	var toRun []harness.Experiment
	if *exp == "all" {
		toRun = harness.Registry()
	} else {
		e, ok := harness.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "ppmbench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		toRun = []harness.Experiment{e}
	}

	for _, e := range toRun {
		fmt.Printf("\n== %s: %s ==\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "ppmbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("# %s finished in %v\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
