// Command benchrepair records the repair-planner benchmark series that
// `make bench-repair` tracks across PRs.
//
// It measures three things and writes BENCH_repair.json:
//
//   - Minimal-read repair: for each code/failure case, the fraction of
//     the surviving stripe a single-sector repair actually reads
//     (plan.Cost.ReadFraction) and the wall-clock speedup of the
//     partial repair plan over a full-stripe decode. Gate: every LRC
//     single-failure case must read at most 60% of the survivors.
//   - Delta parity updates: the speedup of Updater.Update (read-
//     modify-write of one data strip) over a full re-encode, across
//     strip sizes. Gate: at least 2x at every 128 KiB+ strip size.
//   - Byte-identity: a differential sweep re-runs every repair case
//     against the full decoder on random stripes and fails the run if
//     any byte differs, so a fast-but-wrong plan can never pass.
//
// Alongside the overwritten snapshot, every run appends a dated copy
// under BENCH_history/ so the series keeps a trajectory across PRs.
//
// Usage:
//
//	benchrepair [-count 5] [-benchtime 200ms] [-trials 24] [-o BENCH_repair.json] [-history BENCH_history]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"ppm/internal/codes"
	"ppm/internal/core"
	"ppm/internal/repair"
	"ppm/internal/stripe"
)

type repairCase struct {
	Case         string  `json:"case"`
	Code         string  `json:"code"`
	Faulty       []int   `json:"faulty"`
	ReadSectors  int     `json:"read_sectors"`
	FullSectors  int     `json:"full_read_sectors"`
	ReadFraction float64 `json:"read_fraction"`
	MultXORs     int64   `json:"mult_xors"`
	PartialNsOp  float64 `json:"partial_ns_op"`
	FullNsOp     float64 `json:"full_ns_op"`
	Speedup      float64 `json:"speedup"`
	LRCGated     bool    `json:"lrc_single_failure"`
	MeetsRead    bool    `json:"meets_60pct_read"`
}

type deltaCase struct {
	Case         string  `json:"case"`
	SectorBytes  int     `json:"sector_bytes"`
	DeltaNsOp    float64 `json:"delta_ns_op"`
	ReencodeNsOp float64 `json:"reencode_ns_op"`
	Speedup      float64 `json:"speedup"`
	Gated        bool    `json:"gated_128kib_plus"`
	MeetsFloor   bool    `json:"meets_2x"`
}

type report struct {
	Date          string       `json:"date"`
	GoVersion     string       `json:"go_version"`
	Count         int          `json:"count"`
	BenchTime     string       `json:"benchtime"`
	Repair        []repairCase `json:"repair_cases"`
	Delta         []deltaCase  `json:"delta_cases"`
	Trials        int          `json:"differential_trials"`
	ByteIdentical bool         `json:"byte_identical"`
}

// config is one code/failure geometry the series tracks. The bench
// sector size is small — read fractions are geometry, not throughput,
// and the partial-vs-full timing ratio is stable across sizes.
type config struct {
	name     string
	code     codes.Code
	faulty   []int
	lrcGated bool // counts toward the 60% single-failure LRC gate
}

const benchSector = 16 << 10

func buildConfigs() ([]config, error) {
	lrc, err := codes.NewLRC(12, 2, 2)
	if err != nil {
		return nil, err
	}
	rs, err := codes.NewRS(10, 1, 4)
	if err != nil {
		return nil, err
	}
	sd, err := codes.NewSD(8, 4, 2, 2)
	if err != nil {
		return nil, err
	}
	return []config{
		{"lrc12_2_2_data", lrc, []int{3}, true},
		{"lrc12_2_2_local_parity", lrc, []int{12}, true},
		{"lrc12_2_2_global_parity", lrc, []int{14}, false},
		{"rs10_1_4_data", rs, []int{0}, false},
		{"sd8_4_2_2_sector", sd, []int{5}, false},
	}, nil
}

func main() {
	var (
		count     = flag.Int("count", 5, "timing reps per case (best kept)")
		benchtime = flag.Duration("benchtime", 200*time.Millisecond, "minimum measuring window per rep")
		trials    = flag.Int("trials", 24, "differential byte-identity trials per case")
		out       = flag.String("o", "BENCH_repair.json", "output file")
		history   = flag.String("history", "BENCH_history", "directory for dated report copies (empty disables)")
	)
	flag.Parse()

	rep := report{
		Date:          time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		Count:         *count,
		BenchTime:     benchtime.String(),
		Trials:        *trials,
		ByteIdentical: true,
	}

	cfgs, err := buildConfigs()
	if err != nil {
		fatal(err)
	}
	for _, cfg := range cfgs {
		rc, err := runRepairCase(cfg, *count, *benchtime, *trials, &rep.ByteIdentical)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", cfg.name, err))
		}
		rep.Repair = append(rep.Repair, rc)
	}
	for _, size := range []int{4 << 10, 128 << 10, 512 << 10} {
		dc, err := runDeltaCase(size, *count, *benchtime)
		if err != nil {
			fatal(fmt.Errorf("delta %d: %w", size, err))
		}
		rep.Delta = append(rep.Delta, dc)
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	if *history != "" {
		if err := writeHistory(*history, rep.Date, data); err != nil {
			fatal(fmt.Errorf("history: %w", err))
		}
	}

	fmt.Printf("%-24s %10s %10s %9s\n", "case", "read", "mult_xors", "speedup")
	for _, c := range rep.Repair {
		fmt.Printf("%-24s %9.1f%% %10d %8.2fx\n", c.Case, 100*c.ReadFraction, c.MultXORs, c.Speedup)
	}
	fmt.Printf("%-24s %10s %10s %9s\n", "delta", "delta ns", "reenc ns", "speedup")
	for _, c := range rep.Delta {
		fmt.Printf("%-24s %10.0f %10.0f %8.2fx\n", c.Case, c.DeltaNsOp, c.ReencodeNsOp, c.Speedup)
	}
	fmt.Printf("wrote %s (%d repair cases, %d delta cases, byte_identical=%v)\n",
		*out, len(rep.Repair), len(rep.Delta), rep.ByteIdentical)

	failed := false
	for _, c := range rep.Repair {
		if c.LRCGated && !c.MeetsRead {
			fmt.Fprintf(os.Stderr, "benchrepair: %s reads %.1f%% of survivors, above the 60%% floor\n",
				c.Case, 100*c.ReadFraction)
			failed = true
		}
	}
	for _, c := range rep.Delta {
		if c.Gated && !c.MeetsFloor {
			fmt.Fprintf(os.Stderr, "benchrepair: %s delta speedup %.2fx below the 2x floor\n",
				c.Case, c.Speedup)
			failed = true
		}
	}
	if !rep.ByteIdentical {
		fmt.Fprintln(os.Stderr, "benchrepair: differential sweep found a partial decode that differs from the full decoder")
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// runRepairCase plans the case's failure, times the partial plan
// against a full-stripe decode, and differential-checks byte identity
// over random stripes.
func runRepairCase(cfg config, count int, benchtime time.Duration, trials int, identical *bool) (repairCase, error) {
	c := cfg.code
	sc, err := codes.NewScenario(c, cfg.faulty)
	if err != nil {
		return repairCase{}, err
	}
	planner := repair.NewPlanner(c)
	plan, err := planner.Plan(sc, cfg.faulty)
	if err != nil {
		return repairCase{}, err
	}
	dec := core.NewDecoder(c)
	fullPlan, err := dec.Plan(sc)
	if err != nil {
		return repairCase{}, err
	}

	st, err := stripe.New(c.NumStrips(), c.NumRows(), benchSector)
	if err != nil {
		return repairCase{}, err
	}
	st.FillDataRandom(1, codes.DataPositions(c))
	if err := dec.Encode(st); err != nil {
		return repairCase{}, err
	}
	orig := st.Clone()

	partialNs := timeIt(count, benchtime, func() error {
		st.Scribble(2, sc.Faulty)
		return plan.Execute(st, nil)
	})
	fullNs := timeIt(count, benchtime, func() error {
		st.Scribble(2, sc.Faulty)
		return dec.DecodeWithPlan(fullPlan, st)
	})

	// Differential sweep: the partial plan must reproduce the full
	// decoder byte-for-byte on fresh random stripes.
	for trial := 0; trial < trials; trial++ {
		st.FillDataRandom(int64(trial)*7+3, codes.DataPositions(c))
		if err := dec.Encode(st); err != nil {
			return repairCase{}, err
		}
		orig = st.Clone()
		st.Scribble(int64(trial)+11, sc.Faulty)
		if err := plan.Execute(st, nil); err != nil {
			return repairCase{}, err
		}
		for _, w := range plan.Wanted {
			if !bytes.Equal(st.Sector(w), orig.Sector(w)) {
				*identical = false
			}
		}
	}

	rc := repairCase{
		Case:         cfg.name,
		Code:         c.Name(),
		Faulty:       cfg.faulty,
		ReadSectors:  plan.Cost.ReadSectors,
		FullSectors:  plan.Cost.FullReadSectors,
		ReadFraction: plan.Cost.ReadFraction(),
		MultXORs:     plan.Cost.MultXORs,
		PartialNsOp:  partialNs,
		FullNsOp:     fullNs,
		Speedup:      fullNs / partialNs,
		LRCGated:     cfg.lrcGated,
	}
	rc.MeetsRead = rc.ReadFraction <= 0.60
	return rc, nil
}

// runDeltaCase times a one-strip delta parity update against a full
// re-encode of the same stripe at the given strip (sector) size.
func runDeltaCase(sectorBytes, count int, benchtime time.Duration) (deltaCase, error) {
	c, err := codes.NewLRC(12, 2, 2)
	if err != nil {
		return deltaCase{}, err
	}
	planner := repair.NewPlanner(c)
	upd, err := planner.Updater()
	if err != nil {
		return deltaCase{}, err
	}
	dec := core.NewDecoder(c)

	st, err := stripe.New(c.NumStrips(), c.NumRows(), sectorBytes)
	if err != nil {
		return deltaCase{}, err
	}
	st.FillDataRandom(1, codes.DataPositions(c))
	if err := dec.Encode(st); err != nil {
		return deltaCase{}, err
	}

	const dataIdx = 3
	newContent := make([]byte, sectorBytes)
	for i := range newContent {
		newContent[i] = byte(i * 131)
	}

	deltaNs := timeIt(count, benchtime, func() error {
		return upd.Update(st, dataIdx, newContent, nil)
	})
	reencNs := timeIt(count, benchtime, func() error {
		copy(st.Sector(dataIdx), newContent)
		return dec.Encode(st)
	})

	dc := deltaCase{
		Case:         fmt.Sprintf("lrc12_2_2_%dKiB", sectorBytes>>10),
		SectorBytes:  sectorBytes,
		DeltaNsOp:    deltaNs,
		ReencodeNsOp: reencNs,
		Speedup:      reencNs / deltaNs,
		Gated:        sectorBytes >= 128<<10,
	}
	dc.MeetsFloor = dc.Speedup >= 2.0
	return dc, nil
}

// timeIt runs fn in count reps, each at least benchtime long, and
// returns the best (minimum) ns/op — the standard noise filter.
func timeIt(count int, benchtime time.Duration, fn func() error) float64 {
	if err := fn(); err != nil { // warm caches; surface errors once
		fatal(err)
	}
	best := 0.0
	for rep := 0; rep < count; rep++ {
		iters := 0
		start := time.Now()
		for time.Since(start) < benchtime {
			if err := fn(); err != nil {
				fatal(err)
			}
			iters++
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(iters)
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// writeHistory appends a dated copy of the report to dir, so the bench
// series keeps every recorded point, not just the latest overwrite.
func writeHistory(dir, date string, data []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	stamp := strings.NewReplacer(":", "", "-", "").Replace(date)
	return os.WriteFile(filepath.Join(dir, "BENCH_repair-"+stamp+".json"), data, 0o644)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchrepair: %v\n", err)
	os.Exit(1)
}
