package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"ppm/internal/codes"
	"ppm/internal/fault"
	"ppm/internal/gf"
	"ppm/internal/stripe"
)

// checksumAlgo is the only checksum algorithm ppmfile writes; the
// manifest field exists so a future algorithm can be versioned in.
const checksumAlgo = "crc32c"

// manifest describes an encoded shard directory.
type manifest struct {
	N          int      `json:"n"`
	R          int      `json:"r"`
	M          int      `json:"m"`
	S          int      `json:"s"`
	Word       int      `json:"word"`
	Coeffs     []uint32 `json:"coeffs"`
	SectorSize int      `json:"sector_size"`
	Stripes    int      `json:"stripes"`
	FileSize   int64    `json:"file_size"`
	FileName   string   `json:"file_name"`
	// ChecksumAlgo names the per-sector checksum algorithm ("crc32c");
	// empty on pre-checksum archives, which decode and scrub still
	// accept (they just cannot detect silent corruption by checksum).
	ChecksumAlgo string `json:"checksum_algo,omitempty"`
	// Checksums[idx] holds stripe idx's per-sector checksums in global
	// (row-major) sector order — the reference for degraded reads and
	// the self-healing scrub.
	Checksums [][]uint32 `json:"checksums,omitempty"`
}

const manifestName = "manifest.json"

func diskFileName(j int) string { return fmt.Sprintf("disk_%02d.strip", j) }

func writeManifest(dir string, mf manifest) error {
	data, err := json.MarshalIndent(mf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, manifestName), append(data, '\n'), 0o644)
}

func readManifest(dir string) (manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return manifest{}, fmt.Errorf("reading manifest: %w", err)
	}
	var mf manifest
	if err := json.Unmarshal(data, &mf); err != nil {
		return manifest{}, fmt.Errorf("parsing manifest: %w", err)
	}
	if mf.N < 2 || mf.R < 1 || mf.SectorSize < 4 || mf.Stripes < 1 || mf.FileSize < 0 {
		return manifest{}, fmt.Errorf("manifest is inconsistent: %+v", mf)
	}
	if mf.M < 0 || mf.S < 0 {
		return manifest{}, fmt.Errorf("manifest is inconsistent: m=%d s=%d", mf.M, mf.S)
	}
	if _, err := gf.ForWord(mf.Word); err != nil {
		return manifest{}, fmt.Errorf("manifest names an unsupported field: %w", err)
	}
	if len(mf.Coeffs) != mf.M+mf.S {
		return manifest{}, fmt.Errorf("manifest has %d coding coefficients, want m+s = %d",
			len(mf.Coeffs), mf.M+mf.S)
	}
	if mf.ChecksumAlgo != "" && mf.ChecksumAlgo != checksumAlgo {
		return manifest{}, fmt.Errorf("manifest uses unsupported checksum algorithm %q", mf.ChecksumAlgo)
	}
	if len(mf.Checksums) > 0 {
		if len(mf.Checksums) != mf.Stripes {
			return manifest{}, fmt.Errorf("manifest has checksum rows for %d stripes, want %d",
				len(mf.Checksums), mf.Stripes)
		}
		for idx, row := range mf.Checksums {
			if len(row) != mf.N*mf.R {
				return manifest{}, fmt.Errorf("stripe %d checksum row has %d entries, want n*r = %d",
					idx, len(row), mf.N*mf.R)
			}
		}
	}
	return mf, nil
}

// codeFromManifest rebuilds the exact SD instance used at encode time
// (same field and coefficients, so parity bytes match).
func codeFromManifest(mf manifest) (*codes.SD, error) {
	f, err := gf.ForWord(mf.Word)
	if err != nil {
		return nil, err
	}
	return codes.NewSDWithCoefficients(mf.N, mf.R, mf.M, mf.S, f, mf.Coeffs)
}

// diskStore reads and writes the per-disk strip files for one stripe at
// a time. Strip file layout: stripe 0's r sectors, then stripe 1's, ...
type diskStore struct {
	dir string
	mf  manifest
	fh  []*os.File // index by disk; nil when missing/unreadable
	buf []byte     // one strip of scratch, reused across stripes
}

// openStore opens every strip file and allocates the store's single
// strip-sized scratch buffer. readStripe and writeStripe share it, so a
// store must not serve reads and writes from different goroutines at
// once — the ppmfile commands either only read (decode fill stage,
// verify, scrub) or only write (encode drain stage) through it.
func openStore(dir string, mf manifest, write bool) (*diskStore, error) {
	ds := &diskStore{
		dir: dir, mf: mf,
		fh:  make([]*os.File, mf.N),
		buf: make([]byte, mf.R*mf.SectorSize),
	}
	for j := 0; j < mf.N; j++ {
		path := filepath.Join(dir, diskFileName(j))
		var f *os.File
		var err error
		if write {
			f, err = os.Create(path)
		} else {
			f, err = os.Open(path)
		}
		if err != nil {
			if write {
				ds.Close()
				return nil, err
			}
			continue // missing disk: recoverable at decode time
		}
		ds.fh[j] = f
	}
	return ds, nil
}

// missingDisks lists disks whose strip file could not be opened.
func (ds *diskStore) missingDisks() []int {
	var missing []int
	for j, f := range ds.fh {
		if f == nil {
			missing = append(missing, j)
		}
	}
	return missing
}

// StripError wraps a strip-level I/O failure with the disk and stripe
// it hit, plus the operation — the context the retry layer and the
// degraded-read log classify and report on. Its Transient method
// forwards the wrapped error's classification (fault.IsTransient), so
// an injected transient read error stays retryable through the wrap
// while a missing disk stays permanent.
type StripError struct {
	Disk   int
	Stripe int
	Op     string // "read" or "write"
	Err    error
}

func (e *StripError) Error() string {
	return fmt.Sprintf("disk %d stripe %d: %s: %v", e.Disk, e.Stripe, e.Op, e.Err)
}

func (e *StripError) Unwrap() error { return e.Err }

// Transient reports whether the underlying failure is worth retrying.
func (e *StripError) Transient() bool { return fault.IsTransient(e.Err) }

// errDiskMissing is the permanent failure a read against an unopened
// disk surfaces: retrying cannot help, only erasure demotion can.
var errDiskMissing = fmt.Errorf("disk missing")

// stripBytes is the per-stripe byte count of one disk's strip.
func (ds *diskStore) stripBytes() int { return ds.mf.R * ds.mf.SectorSize }

// Disks, StripBytes, ReadStrip and WriteStrip implement fault.Store, so
// a diskStore plugs straight into the fault layer: fault.NewFaultyStore
// wraps it for injection and fault.Healer degraded-reads through it.

// Disks returns the disk (strip-per-stripe) count.
func (ds *diskStore) Disks() int { return ds.mf.N }

// StripBytes returns the per-stripe strip size in bytes.
func (ds *diskStore) StripBytes() int { return ds.stripBytes() }

// ReadStrip reads stripe idx's strip on one disk into dst.
func (ds *diskStore) ReadStrip(idx, disk int, dst []byte) error {
	if disk < 0 || disk >= len(ds.fh) {
		return &StripError{Disk: disk, Stripe: idx, Op: "read", Err: fmt.Errorf("disk out of range")}
	}
	f := ds.fh[disk]
	if f == nil {
		return &StripError{Disk: disk, Stripe: idx, Op: "read", Err: errDiskMissing}
	}
	if _, err := f.ReadAt(dst[:ds.stripBytes()], int64(idx)*int64(ds.stripBytes())); err != nil {
		return &StripError{Disk: disk, Stripe: idx, Op: "read", Err: err}
	}
	return nil
}

// WriteStrip writes stripe idx's strip on one disk from src.
func (ds *diskStore) WriteStrip(idx, disk int, src []byte) error {
	if disk < 0 || disk >= len(ds.fh) {
		return &StripError{Disk: disk, Stripe: idx, Op: "write", Err: fmt.Errorf("disk out of range")}
	}
	f := ds.fh[disk]
	if f == nil {
		return &StripError{Disk: disk, Stripe: idx, Op: "write", Err: errDiskMissing}
	}
	if _, err := f.WriteAt(src[:ds.stripBytes()], int64(idx)*int64(ds.stripBytes())); err != nil {
		return &StripError{Disk: disk, Stripe: idx, Op: "write", Err: err}
	}
	return nil
}

// readStripe loads stripe number idx into st; missing disks' sectors
// are left zeroed.
func (ds *diskStore) readStripe(idx int, st *stripe.Stripe) error {
	for j, f := range ds.fh {
		if f == nil {
			continue
		}
		if err := ds.ReadStrip(idx, j, ds.buf); err != nil {
			return err
		}
		for i := 0; i < ds.mf.R; i++ {
			copy(st.SectorAt(i, j), ds.buf[i*ds.mf.SectorSize:(i+1)*ds.mf.SectorSize])
		}
	}
	return nil
}

// writeStripe writes stripe idx from st to every open strip file.
func (ds *diskStore) writeStripe(idx int, st *stripe.Stripe) error {
	for j, f := range ds.fh {
		if f == nil {
			continue
		}
		for i := 0; i < ds.mf.R; i++ {
			copy(ds.buf[i*ds.mf.SectorSize:(i+1)*ds.mf.SectorSize], st.SectorAt(i, j))
		}
		if err := ds.WriteStrip(idx, j, ds.buf); err != nil {
			return err
		}
	}
	return nil
}

func (ds *diskStore) Close() {
	for _, f := range ds.fh {
		if f != nil {
			f.Close()
		}
	}
}
