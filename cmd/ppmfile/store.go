package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"ppm/internal/codes"
	"ppm/internal/gf"
	"ppm/internal/stripe"
)

// manifest describes an encoded shard directory.
type manifest struct {
	N          int      `json:"n"`
	R          int      `json:"r"`
	M          int      `json:"m"`
	S          int      `json:"s"`
	Word       int      `json:"word"`
	Coeffs     []uint32 `json:"coeffs"`
	SectorSize int      `json:"sector_size"`
	Stripes    int      `json:"stripes"`
	FileSize   int64    `json:"file_size"`
	FileName   string   `json:"file_name"`
}

const manifestName = "manifest.json"

func diskFileName(j int) string { return fmt.Sprintf("disk_%02d.strip", j) }

func writeManifest(dir string, mf manifest) error {
	data, err := json.MarshalIndent(mf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, manifestName), append(data, '\n'), 0o644)
}

func readManifest(dir string) (manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return manifest{}, fmt.Errorf("reading manifest: %w", err)
	}
	var mf manifest
	if err := json.Unmarshal(data, &mf); err != nil {
		return manifest{}, fmt.Errorf("parsing manifest: %w", err)
	}
	if mf.N < 2 || mf.R < 1 || mf.SectorSize < 4 || mf.Stripes < 1 || mf.FileSize < 0 {
		return manifest{}, fmt.Errorf("manifest is inconsistent: %+v", mf)
	}
	if mf.M < 0 || mf.S < 0 {
		return manifest{}, fmt.Errorf("manifest is inconsistent: m=%d s=%d", mf.M, mf.S)
	}
	if _, err := gf.ForWord(mf.Word); err != nil {
		return manifest{}, fmt.Errorf("manifest names an unsupported field: %w", err)
	}
	if len(mf.Coeffs) != mf.M+mf.S {
		return manifest{}, fmt.Errorf("manifest has %d coding coefficients, want m+s = %d",
			len(mf.Coeffs), mf.M+mf.S)
	}
	return mf, nil
}

// codeFromManifest rebuilds the exact SD instance used at encode time
// (same field and coefficients, so parity bytes match).
func codeFromManifest(mf manifest) (*codes.SD, error) {
	f, err := gf.ForWord(mf.Word)
	if err != nil {
		return nil, err
	}
	return codes.NewSDWithCoefficients(mf.N, mf.R, mf.M, mf.S, f, mf.Coeffs)
}

// diskStore reads and writes the per-disk strip files for one stripe at
// a time. Strip file layout: stripe 0's r sectors, then stripe 1's, ...
type diskStore struct {
	dir string
	mf  manifest
	fh  []*os.File // index by disk; nil when missing/unreadable
	buf []byte     // one strip of scratch, reused across stripes
}

// openStore opens every strip file and allocates the store's single
// strip-sized scratch buffer. readStripe and writeStripe share it, so a
// store must not serve reads and writes from different goroutines at
// once — the ppmfile commands either only read (decode fill stage,
// verify, scrub) or only write (encode drain stage) through it.
func openStore(dir string, mf manifest, write bool) (*diskStore, error) {
	ds := &diskStore{
		dir: dir, mf: mf,
		fh:  make([]*os.File, mf.N),
		buf: make([]byte, mf.R*mf.SectorSize),
	}
	for j := 0; j < mf.N; j++ {
		path := filepath.Join(dir, diskFileName(j))
		var f *os.File
		var err error
		if write {
			f, err = os.Create(path)
		} else {
			f, err = os.Open(path)
		}
		if err != nil {
			if write {
				ds.Close()
				return nil, err
			}
			continue // missing disk: recoverable at decode time
		}
		ds.fh[j] = f
	}
	return ds, nil
}

// missingDisks lists disks whose strip file could not be opened.
func (ds *diskStore) missingDisks() []int {
	var missing []int
	for j, f := range ds.fh {
		if f == nil {
			missing = append(missing, j)
		}
	}
	return missing
}

// stripBytes is the per-stripe byte count of one disk's strip.
func (ds *diskStore) stripBytes() int { return ds.mf.R * ds.mf.SectorSize }

// readStripe loads stripe number idx into st; missing disks' sectors
// are left zeroed.
func (ds *diskStore) readStripe(idx int, st *stripe.Stripe) error {
	buf := ds.buf
	for j, f := range ds.fh {
		if f == nil {
			continue
		}
		if _, err := f.ReadAt(buf, int64(idx)*int64(ds.stripBytes())); err != nil {
			return fmt.Errorf("disk %d stripe %d: %w", j, idx, err)
		}
		for i := 0; i < ds.mf.R; i++ {
			copy(st.SectorAt(i, j), buf[i*ds.mf.SectorSize:(i+1)*ds.mf.SectorSize])
		}
	}
	return nil
}

// writeStripe appends stripe idx from st to every open strip file.
func (ds *diskStore) writeStripe(idx int, st *stripe.Stripe) error {
	buf := ds.buf
	for j, f := range ds.fh {
		if f == nil {
			continue
		}
		for i := 0; i < ds.mf.R; i++ {
			copy(buf[i*ds.mf.SectorSize:(i+1)*ds.mf.SectorSize], st.SectorAt(i, j))
		}
		if _, err := f.WriteAt(buf, int64(idx)*int64(ds.stripBytes())); err != nil {
			return fmt.Errorf("disk %d stripe %d: %w", j, idx, err)
		}
	}
	return nil
}

func (ds *diskStore) Close() {
	for _, f := range ds.fh {
		if f != nil {
			f.Close()
		}
	}
}
