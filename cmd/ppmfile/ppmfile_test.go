package main

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func writeInput(t *testing.T, dir string, size int) (string, []byte) {
	t.Helper()
	data := make([]byte, size)
	rand.New(rand.NewSource(1)).Read(data)
	path := filepath.Join(dir, "input.bin")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path, data
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	mf := manifest{
		N: 8, R: 16, M: 2, S: 2, Word: 8,
		Coeffs:     []uint32{1, 2, 4, 8},
		SectorSize: 4096, Stripes: 3, FileSize: 12345, FileName: "x.bin",
	}
	if err := writeManifest(dir, mf); err != nil {
		t.Fatal(err)
	}
	got, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != mf.N || got.FileSize != mf.FileSize || len(got.Coeffs) != 4 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if _, err := codeFromManifest(got); err != nil {
		t.Fatal(err)
	}
}

func TestReadManifestRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	if _, err := readManifest(dir); err == nil {
		t.Error("missing manifest accepted")
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readManifest(dir); err == nil {
		t.Error("corrupt manifest accepted")
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(`{"n":0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readManifest(dir); err == nil {
		t.Error("inconsistent manifest accepted")
	}
}

// TestEncodeDecodeRoundTrip: encode a file, delete m disks, decode, and
// compare byte-for-byte; then verify the repaired directory.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	work := t.TempDir()
	in, data := writeInput(t, work, 300_000)
	shards := filepath.Join(work, "shards")
	out := filepath.Join(work, "restored.bin")

	if err := runEncode([]string{"-in", in, "-dir", shards, "-n", "6", "-r", "8", "-m", "2", "-s", "1", "-sector", "1024"}); err != nil {
		t.Fatalf("encode: %v", err)
	}
	for _, j := range []int{1, 4} {
		if err := os.Remove(filepath.Join(shards, diskFileName(j))); err != nil {
			t.Fatal(err)
		}
	}
	if err := runDecode([]string{"-dir", shards, "-out", out}); err != nil {
		t.Fatalf("decode: %v", err)
	}
	restored, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(restored, data) {
		t.Fatal("restored file differs from the original")
	}
	// Repair rewrote the strip files; the directory must verify clean.
	if err := runVerify([]string{"-dir", shards}); err != nil {
		t.Fatalf("verify after repair: %v", err)
	}
}

func TestDecodeWithoutFailures(t *testing.T) {
	work := t.TempDir()
	in, data := writeInput(t, work, 10_000)
	shards := filepath.Join(work, "shards")
	out := filepath.Join(work, "plain.bin")
	if err := runEncode([]string{"-in", in, "-dir", shards, "-n", "5", "-r", "4", "-m", "1", "-s", "1", "-sector", "512"}); err != nil {
		t.Fatal(err)
	}
	if err := runDecode([]string{"-dir", shards, "-out", out}); err != nil {
		t.Fatal(err)
	}
	restored, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(restored, data) {
		t.Fatal("lossless path corrupted the file")
	}
}

func TestDecodeTooManyMissing(t *testing.T) {
	work := t.TempDir()
	in, _ := writeInput(t, work, 5_000)
	shards := filepath.Join(work, "shards")
	if err := runEncode([]string{"-in", in, "-dir", shards, "-n", "5", "-r", "4", "-m", "1", "-s", "1", "-sector", "512"}); err != nil {
		t.Fatal(err)
	}
	for _, j := range []int{0, 1} {
		if err := os.Remove(filepath.Join(shards, diskFileName(j))); err != nil {
			t.Fatal(err)
		}
	}
	if err := runDecode([]string{"-dir", shards, "-out", filepath.Join(work, "x")}); err == nil {
		t.Fatal("2 missing disks accepted by an m=1 code")
	}
}

// TestVerifyChecksumOnlyAndParityFallback: checksummed archives verify
// on CRC-32C alone (no decode), and pre-checksum archives — the
// manifest's checksum rows stripped — still get the full parity-check
// path, including corruption detection.
func TestVerifyChecksumOnlyAndParityFallback(t *testing.T) {
	work := t.TempDir()
	in, _ := writeInput(t, work, 20_000)
	shards := filepath.Join(work, "shards")
	if err := runEncode([]string{"-in", in, "-dir", shards, "-n", "5", "-r", "4", "-m", "1", "-s", "1", "-sector", "512"}); err != nil {
		t.Fatal(err)
	}
	// Checksummed path.
	if err := runVerify([]string{"-dir", shards}); err != nil {
		t.Fatalf("checksummed verify failed on a clean dir: %v", err)
	}
	// Strip the checksum rows: a pre-checksum archive.
	mf, err := readManifest(shards)
	if err != nil {
		t.Fatal(err)
	}
	mf.Checksums = nil
	mf.ChecksumAlgo = ""
	if err := writeManifest(shards, mf); err != nil {
		t.Fatal(err)
	}
	if err := runVerify([]string{"-dir", shards}); err != nil {
		t.Fatalf("parity-fallback verify failed on a clean dir: %v", err)
	}
	// Corruption must still be caught by the parity path.
	path := filepath.Join(shards, diskFileName(1))
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[60] ^= 0x08
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runVerify([]string{"-dir", shards}); err == nil {
		t.Fatal("parity-fallback verify missed a flipped bit")
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	work := t.TempDir()
	in, _ := writeInput(t, work, 20_000)
	shards := filepath.Join(work, "shards")
	if err := runEncode([]string{"-in", in, "-dir", shards, "-n", "5", "-r", "4", "-m", "1", "-s", "1", "-sector", "512"}); err != nil {
		t.Fatal(err)
	}
	if err := runVerify([]string{"-dir", shards}); err != nil {
		t.Fatalf("clean dir failed verify: %v", err)
	}
	// Flip one bit in one strip file.
	path := filepath.Join(shards, diskFileName(2))
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[100] ^= 0x40
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runVerify([]string{"-dir", shards}); err == nil {
		t.Fatal("verify missed a flipped bit")
	}
}

func TestEncodeArgValidation(t *testing.T) {
	if err := runEncode([]string{"-in", "", "-dir", ""}); err == nil {
		t.Error("missing args accepted")
	}
	if err := runEncode([]string{"-in", "x", "-dir", "y", "-sector", "7"}); err == nil {
		t.Error("unaligned sector accepted")
	}
	if err := runDecode([]string{"-dir", ""}); err == nil {
		t.Error("decode without dir accepted")
	}
	if err := runVerify([]string{"-dir", ""}); err == nil {
		t.Error("verify without dir accepted")
	}
}

func TestScrubLocatesAndRepairs(t *testing.T) {
	work := t.TempDir()
	in, data := writeInput(t, work, 50_000)
	shards := filepath.Join(work, "shards")
	if err := runEncode([]string{"-in", in, "-dir", shards, "-n", "6", "-r", "4", "-m", "2", "-s", "1", "-sector", "512"}); err != nil {
		t.Fatal(err)
	}
	// Flip one bit deep inside a strip file: silent corruption.
	path := filepath.Join(shards, diskFileName(3))
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[700] ^= 0x08
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runScrub([]string{"-dir", shards}); err != nil {
		t.Fatalf("report-only scrub errored: %v", err)
	}
	if err := runScrub([]string{"-dir", shards, "-repair"}); err != nil {
		t.Fatalf("repair scrub: %v", err)
	}
	if err := runVerify([]string{"-dir", shards}); err != nil {
		t.Fatalf("verify after scrub repair: %v", err)
	}
	// The restored archive still matches the original payload.
	out := filepath.Join(work, "restored.bin")
	if err := runDecode([]string{"-dir", shards, "-out", out}); err != nil {
		t.Fatal(err)
	}
	restored, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(restored, data) {
		t.Fatal("payload changed")
	}
}

func TestScrubCleanDirectory(t *testing.T) {
	work := t.TempDir()
	in, _ := writeInput(t, work, 9_000)
	shards := filepath.Join(work, "shards")
	if err := runEncode([]string{"-in", in, "-dir", shards, "-n", "5", "-r", "4", "-m", "1", "-s", "1", "-sector", "512"}); err != nil {
		t.Fatal(err)
	}
	if err := runScrub([]string{"-dir", shards}); err != nil {
		t.Fatalf("clean scrub errored: %v", err)
	}
}

// TestManifestHardening: readManifest rejects coefficient counts that
// disagree with m+s and field word sizes the library doesn't support.
func TestManifestHardening(t *testing.T) {
	base := manifest{
		N: 8, R: 16, M: 2, S: 2, Word: 8,
		Coeffs:     []uint32{1, 2, 4, 8},
		SectorSize: 4096, Stripes: 3, FileSize: 12345, FileName: "x.bin",
	}
	cases := []struct {
		name   string
		mutate func(mf *manifest)
	}{
		{"short coeffs", func(mf *manifest) { mf.Coeffs = mf.Coeffs[:2] }},
		{"long coeffs", func(mf *manifest) { mf.Coeffs = append(mf.Coeffs, 16) }},
		{"negative m", func(mf *manifest) { mf.M = -1 }},
		{"word 7", func(mf *manifest) { mf.Word = 7 }},
		{"word 0", func(mf *manifest) { mf.Word = 0 }},
		{"word 64", func(mf *manifest) { mf.Word = 64 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			mf := base
			mf.Coeffs = append([]uint32(nil), base.Coeffs...)
			tc.mutate(&mf)
			if err := writeManifest(dir, mf); err != nil {
				t.Fatal(err)
			}
			if _, err := readManifest(dir); err == nil {
				t.Fatalf("manifest with %s accepted", tc.name)
			}
		})
	}
	// The unmutated manifest must still pass.
	dir := t.TempDir()
	if err := writeManifest(dir, base); err != nil {
		t.Fatal(err)
	}
	if _, err := readManifest(dir); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
}

// TestPipelinedRoundTripManyStripes drives the pipelined encode/decode
// through enough stripes to keep several in flight, with a payload that
// ends mid-stripe (non-stripe-aligned tail), and checks the restored
// bytes and the repaired directory.
func TestPipelinedRoundTripManyStripes(t *testing.T) {
	work := t.TempDir()
	// n=6 m=2 data disks=4 (plus s=1 coding sector), r=4, sector=512:
	// payload per stripe = (4*4-1)*512 = 7680 bytes; 10 stripes minus a
	// ragged tail.
	size := 7680*10 - 1234
	in, data := writeInput(t, work, size)
	shards := filepath.Join(work, "shards")
	out := filepath.Join(work, "restored.bin")

	if err := runEncode([]string{"-in", in, "-dir", shards,
		"-n", "6", "-r", "4", "-m", "2", "-s", "1", "-sector", "512", "-depth", "4"}); err != nil {
		t.Fatalf("encode: %v", err)
	}
	mf, err := readManifest(shards)
	if err != nil {
		t.Fatal(err)
	}
	if mf.Stripes < 8 {
		t.Fatalf("test needs >=8 stripes in flight, got %d", mf.Stripes)
	}
	for _, j := range []int{0, 3} {
		if err := os.Remove(filepath.Join(shards, diskFileName(j))); err != nil {
			t.Fatal(err)
		}
	}
	if err := runDecode([]string{"-dir", shards, "-out", out, "-depth", "4"}); err != nil {
		t.Fatalf("decode: %v", err)
	}
	restored, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(restored, data) {
		t.Fatal("restored file differs from the original")
	}
	if err := runVerify([]string{"-dir", shards}); err != nil {
		t.Fatalf("verify after repair: %v", err)
	}
}

// TestEncodeEmptyFile: a zero-byte input still produces a decodable
// one-stripe archive.
func TestEncodeEmptyFile(t *testing.T) {
	work := t.TempDir()
	in := filepath.Join(work, "empty.bin")
	if err := os.WriteFile(in, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	shards := filepath.Join(work, "shards")
	out := filepath.Join(work, "restored.bin")
	if err := runEncode([]string{"-in", in, "-dir", shards,
		"-n", "5", "-r", "4", "-m", "1", "-s", "1", "-sector", "512"}); err != nil {
		t.Fatal(err)
	}
	if err := runDecode([]string{"-dir", shards, "-out", out}); err != nil {
		t.Fatal(err)
	}
	restored, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 0 {
		t.Fatalf("restored %d bytes from an empty input", len(restored))
	}
}

// flipDiskByte flips one byte of a strip file in place: silent on-disk
// corruption for the checksum layer to catch.
func flipDiskByte(t *testing.T, shards string, disk int, off int64) {
	t.Helper()
	f, err := os.OpenFile(filepath.Join(shards, diskFileName(disk)), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x5A
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

// TestChaosDecodeStorm is the end-to-end fault storm: an archive with a
// deleted disk, silent on-disk corruption, and an injected schedule of
// transient read errors, a latency spike and a permanently hung strip
// must still decode byte-identically — the transient errors retried
// away, the hung strip demoted at its op deadline and re-decoded, and
// the corruption caught by checksum. The whole storm must resolve
// within the configured deadlines, not wall-clock hours.
func TestChaosDecodeStorm(t *testing.T) {
	work := t.TempDir()
	// n=6 r=4 m=2 s=1, 512-byte sectors: 15 data sectors (7680 B)/stripe.
	size := 7680*8 - 100
	in, data := writeInput(t, work, size)
	shards := filepath.Join(work, "shards")
	out := filepath.Join(work, "restored.bin")
	if err := runEncode([]string{"-in", in, "-dir", shards,
		"-n", "6", "-r", "4", "-m", "2", "-s", "1", "-sector", "512"}); err != nil {
		t.Fatalf("encode: %v", err)
	}

	// Damage: disk 1 gone entirely (baseline erasure), a silent bit flip
	// on disk 2 inside stripe 5 (on-disk, caught by checksum), plus the
	// injected schedule below: two transient read errors on stripe 2
	// disk 0, a permanent hang on stripe 3 disk 3 (demoted at the
	// deadline), a latency spike, and an in-flight bit flip on stripe 4
	// disk 2.
	if err := os.Remove(filepath.Join(shards, diskFileName(1))); err != nil {
		t.Fatal(err)
	}
	stripBytes := int64(4 * 512)
	flipDiskByte(t, shards, 2, 5*stripBytes+123)

	start := time.Now()
	if err := runDecode([]string{"-dir", shards, "-out", out,
		"-retries", "4", "-op-timeout", "150ms",
		"-faults", "seed=7,read@2.0x2,hang@3.3x-1/1h,lat@6.4/5ms,flip@4.2"}); err != nil {
		t.Fatalf("chaos decode: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("chaos decode took %v; deadlines should bound the storm", elapsed)
	}
	restored, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(restored, data) {
		t.Fatal("payload not byte-identical after the fault storm")
	}
	// Decode repaired the missing disk; the directory must verify clean
	// (checksums and parity) — the in-flight faults never hit the disk.
	if err := runVerify([]string{"-dir", shards}); err == nil {
		t.Fatal("verify should still flag the on-disk flip on disk 2 (decode repairs erasures, not silent corruption)")
	}
	// The self-healing scrub fixes the remaining silent corruption.
	if err := runScrub([]string{"-dir", shards, "-repair"}); err != nil {
		t.Fatalf("scrub -repair: %v", err)
	}
	if err := runVerify([]string{"-dir", shards}); err != nil {
		t.Fatalf("verify after scrub: %v", err)
	}
}

// TestScrubRebuildsMissingDisk: the checksum-era scrub is a full
// self-healing pass — with a disk deleted and a silent flip on another,
// scrub -repair rebuilds both in place and the archive then verifies
// clean and round-trips.
func TestScrubRebuildsMissingDisk(t *testing.T) {
	work := t.TempDir()
	in, data := writeInput(t, work, 40_000)
	shards := filepath.Join(work, "shards")
	if err := runEncode([]string{"-in", in, "-dir", shards,
		"-n", "6", "-r", "4", "-m", "2", "-s", "1", "-sector", "512"}); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(shards, diskFileName(4))); err != nil {
		t.Fatal(err)
	}
	flipDiskByte(t, shards, 0, 300)

	if err := runScrub([]string{"-dir", shards, "-repair", "-rate", "64"}); err != nil {
		t.Fatalf("scrub -repair: %v", err)
	}
	if err := runVerify([]string{"-dir", shards}); err != nil {
		t.Fatalf("verify after rebuild: %v", err)
	}
	out := filepath.Join(work, "restored.bin")
	if err := runDecode([]string{"-dir", shards, "-out", out}); err != nil {
		t.Fatal(err)
	}
	restored, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(restored, data) {
		t.Fatal("payload changed after scrub rebuild")
	}
}

// TestDecodeTornWriteCaught: a torn write at encode time persists a
// half-garbage strip while reporting success — the checksummed decode
// must catch it and still restore the exact payload.
func TestDecodeTornWriteCaught(t *testing.T) {
	work := t.TempDir()
	in, data := writeInput(t, work, 30_000)
	shards := filepath.Join(work, "shards")
	if err := runEncode([]string{"-in", in, "-dir", shards,
		"-n", "6", "-r", "4", "-m", "2", "-s", "1", "-sector", "512",
		"-faults", "seed=3,torn@1.5"}); err != nil {
		t.Fatalf("encode with torn write: %v", err)
	}
	// The damage is silent: verify flags it, decode heals around it.
	if err := runVerify([]string{"-dir", shards}); err == nil {
		t.Fatal("verify missed the torn write")
	}
	out := filepath.Join(work, "restored.bin")
	if err := runDecode([]string{"-dir", shards, "-out", out}); err != nil {
		t.Fatalf("decode around torn write: %v", err)
	}
	restored, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(restored, data) {
		t.Fatal("payload not byte-identical after torn write")
	}
}
