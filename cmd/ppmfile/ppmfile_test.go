package main

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func writeInput(t *testing.T, dir string, size int) (string, []byte) {
	t.Helper()
	data := make([]byte, size)
	rand.New(rand.NewSource(1)).Read(data)
	path := filepath.Join(dir, "input.bin")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path, data
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	mf := manifest{
		N: 8, R: 16, M: 2, S: 2, Word: 8,
		Coeffs:     []uint32{1, 2, 4, 8},
		SectorSize: 4096, Stripes: 3, FileSize: 12345, FileName: "x.bin",
	}
	if err := writeManifest(dir, mf); err != nil {
		t.Fatal(err)
	}
	got, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != mf.N || got.FileSize != mf.FileSize || len(got.Coeffs) != 4 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if _, err := codeFromManifest(got); err != nil {
		t.Fatal(err)
	}
}

func TestReadManifestRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	if _, err := readManifest(dir); err == nil {
		t.Error("missing manifest accepted")
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readManifest(dir); err == nil {
		t.Error("corrupt manifest accepted")
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(`{"n":0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readManifest(dir); err == nil {
		t.Error("inconsistent manifest accepted")
	}
}

// TestEncodeDecodeRoundTrip: encode a file, delete m disks, decode, and
// compare byte-for-byte; then verify the repaired directory.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	work := t.TempDir()
	in, data := writeInput(t, work, 300_000)
	shards := filepath.Join(work, "shards")
	out := filepath.Join(work, "restored.bin")

	if err := runEncode([]string{"-in", in, "-dir", shards, "-n", "6", "-r", "8", "-m", "2", "-s", "1", "-sector", "1024"}); err != nil {
		t.Fatalf("encode: %v", err)
	}
	for _, j := range []int{1, 4} {
		if err := os.Remove(filepath.Join(shards, diskFileName(j))); err != nil {
			t.Fatal(err)
		}
	}
	if err := runDecode([]string{"-dir", shards, "-out", out}); err != nil {
		t.Fatalf("decode: %v", err)
	}
	restored, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(restored, data) {
		t.Fatal("restored file differs from the original")
	}
	// Repair rewrote the strip files; the directory must verify clean.
	if err := runVerify([]string{"-dir", shards}); err != nil {
		t.Fatalf("verify after repair: %v", err)
	}
}

func TestDecodeWithoutFailures(t *testing.T) {
	work := t.TempDir()
	in, data := writeInput(t, work, 10_000)
	shards := filepath.Join(work, "shards")
	out := filepath.Join(work, "plain.bin")
	if err := runEncode([]string{"-in", in, "-dir", shards, "-n", "5", "-r", "4", "-m", "1", "-s", "1", "-sector", "512"}); err != nil {
		t.Fatal(err)
	}
	if err := runDecode([]string{"-dir", shards, "-out", out}); err != nil {
		t.Fatal(err)
	}
	restored, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(restored, data) {
		t.Fatal("lossless path corrupted the file")
	}
}

func TestDecodeTooManyMissing(t *testing.T) {
	work := t.TempDir()
	in, _ := writeInput(t, work, 5_000)
	shards := filepath.Join(work, "shards")
	if err := runEncode([]string{"-in", in, "-dir", shards, "-n", "5", "-r", "4", "-m", "1", "-s", "1", "-sector", "512"}); err != nil {
		t.Fatal(err)
	}
	for _, j := range []int{0, 1} {
		if err := os.Remove(filepath.Join(shards, diskFileName(j))); err != nil {
			t.Fatal(err)
		}
	}
	if err := runDecode([]string{"-dir", shards, "-out", filepath.Join(work, "x")}); err == nil {
		t.Fatal("2 missing disks accepted by an m=1 code")
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	work := t.TempDir()
	in, _ := writeInput(t, work, 20_000)
	shards := filepath.Join(work, "shards")
	if err := runEncode([]string{"-in", in, "-dir", shards, "-n", "5", "-r", "4", "-m", "1", "-s", "1", "-sector", "512"}); err != nil {
		t.Fatal(err)
	}
	if err := runVerify([]string{"-dir", shards}); err != nil {
		t.Fatalf("clean dir failed verify: %v", err)
	}
	// Flip one bit in one strip file.
	path := filepath.Join(shards, diskFileName(2))
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[100] ^= 0x40
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runVerify([]string{"-dir", shards}); err == nil {
		t.Fatal("verify missed a flipped bit")
	}
}

func TestEncodeArgValidation(t *testing.T) {
	if err := runEncode([]string{"-in", "", "-dir", ""}); err == nil {
		t.Error("missing args accepted")
	}
	if err := runEncode([]string{"-in", "x", "-dir", "y", "-sector", "7"}); err == nil {
		t.Error("unaligned sector accepted")
	}
	if err := runDecode([]string{"-dir", ""}); err == nil {
		t.Error("decode without dir accepted")
	}
	if err := runVerify([]string{"-dir", ""}); err == nil {
		t.Error("verify without dir accepted")
	}
}

func TestScrubLocatesAndRepairs(t *testing.T) {
	work := t.TempDir()
	in, data := writeInput(t, work, 50_000)
	shards := filepath.Join(work, "shards")
	if err := runEncode([]string{"-in", in, "-dir", shards, "-n", "6", "-r", "4", "-m", "2", "-s", "1", "-sector", "512"}); err != nil {
		t.Fatal(err)
	}
	// Flip one bit deep inside a strip file: silent corruption.
	path := filepath.Join(shards, diskFileName(3))
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[700] ^= 0x08
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runScrub([]string{"-dir", shards}); err != nil {
		t.Fatalf("report-only scrub errored: %v", err)
	}
	if err := runScrub([]string{"-dir", shards, "-repair"}); err != nil {
		t.Fatalf("repair scrub: %v", err)
	}
	if err := runVerify([]string{"-dir", shards}); err != nil {
		t.Fatalf("verify after scrub repair: %v", err)
	}
	// The restored archive still matches the original payload.
	out := filepath.Join(work, "restored.bin")
	if err := runDecode([]string{"-dir", shards, "-out", out}); err != nil {
		t.Fatal(err)
	}
	restored, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(restored, data) {
		t.Fatal("payload changed")
	}
}

func TestScrubCleanDirectory(t *testing.T) {
	work := t.TempDir()
	in, _ := writeInput(t, work, 9_000)
	shards := filepath.Join(work, "shards")
	if err := runEncode([]string{"-in", in, "-dir", shards, "-n", "5", "-r", "4", "-m", "1", "-s", "1", "-sector", "512"}); err != nil {
		t.Fatal(err)
	}
	if err := runScrub([]string{"-dir", shards}); err != nil {
		t.Fatalf("clean scrub errored: %v", err)
	}
}

// TestManifestHardening: readManifest rejects coefficient counts that
// disagree with m+s and field word sizes the library doesn't support.
func TestManifestHardening(t *testing.T) {
	base := manifest{
		N: 8, R: 16, M: 2, S: 2, Word: 8,
		Coeffs:     []uint32{1, 2, 4, 8},
		SectorSize: 4096, Stripes: 3, FileSize: 12345, FileName: "x.bin",
	}
	cases := []struct {
		name   string
		mutate func(mf *manifest)
	}{
		{"short coeffs", func(mf *manifest) { mf.Coeffs = mf.Coeffs[:2] }},
		{"long coeffs", func(mf *manifest) { mf.Coeffs = append(mf.Coeffs, 16) }},
		{"negative m", func(mf *manifest) { mf.M = -1 }},
		{"word 7", func(mf *manifest) { mf.Word = 7 }},
		{"word 0", func(mf *manifest) { mf.Word = 0 }},
		{"word 64", func(mf *manifest) { mf.Word = 64 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			mf := base
			mf.Coeffs = append([]uint32(nil), base.Coeffs...)
			tc.mutate(&mf)
			if err := writeManifest(dir, mf); err != nil {
				t.Fatal(err)
			}
			if _, err := readManifest(dir); err == nil {
				t.Fatalf("manifest with %s accepted", tc.name)
			}
		})
	}
	// The unmutated manifest must still pass.
	dir := t.TempDir()
	if err := writeManifest(dir, base); err != nil {
		t.Fatal(err)
	}
	if _, err := readManifest(dir); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
}

// TestPipelinedRoundTripManyStripes drives the pipelined encode/decode
// through enough stripes to keep several in flight, with a payload that
// ends mid-stripe (non-stripe-aligned tail), and checks the restored
// bytes and the repaired directory.
func TestPipelinedRoundTripManyStripes(t *testing.T) {
	work := t.TempDir()
	// n=6 m=2 data disks=4 (plus s=1 coding sector), r=4, sector=512:
	// payload per stripe = (4*4-1)*512 = 7680 bytes; 10 stripes minus a
	// ragged tail.
	size := 7680*10 - 1234
	in, data := writeInput(t, work, size)
	shards := filepath.Join(work, "shards")
	out := filepath.Join(work, "restored.bin")

	if err := runEncode([]string{"-in", in, "-dir", shards,
		"-n", "6", "-r", "4", "-m", "2", "-s", "1", "-sector", "512", "-depth", "4"}); err != nil {
		t.Fatalf("encode: %v", err)
	}
	mf, err := readManifest(shards)
	if err != nil {
		t.Fatal(err)
	}
	if mf.Stripes < 8 {
		t.Fatalf("test needs >=8 stripes in flight, got %d", mf.Stripes)
	}
	for _, j := range []int{0, 3} {
		if err := os.Remove(filepath.Join(shards, diskFileName(j))); err != nil {
			t.Fatal(err)
		}
	}
	if err := runDecode([]string{"-dir", shards, "-out", out, "-depth", "4"}); err != nil {
		t.Fatalf("decode: %v", err)
	}
	restored, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(restored, data) {
		t.Fatal("restored file differs from the original")
	}
	if err := runVerify([]string{"-dir", shards}); err != nil {
		t.Fatalf("verify after repair: %v", err)
	}
}

// TestEncodeEmptyFile: a zero-byte input still produces a decodable
// one-stripe archive.
func TestEncodeEmptyFile(t *testing.T) {
	work := t.TempDir()
	in := filepath.Join(work, "empty.bin")
	if err := os.WriteFile(in, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	shards := filepath.Join(work, "shards")
	out := filepath.Join(work, "restored.bin")
	if err := runEncode([]string{"-in", in, "-dir", shards,
		"-n", "5", "-r", "4", "-m", "1", "-s", "1", "-sector", "512"}); err != nil {
		t.Fatal(err)
	}
	if err := runDecode([]string{"-dir", shards, "-out", out}); err != nil {
		t.Fatal(err)
	}
	restored, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 0 {
		t.Fatalf("restored %d bytes from an empty input", len(restored))
	}
}
