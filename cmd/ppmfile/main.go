// Command ppmfile is a small archival tool built on the library: it
// shards a file across n simulated disks with an SD code and rebuilds
// lost disks with PPM — the single-machine disk-plus-sector fault
// tolerance scenario that motivates SD/PMDS codes.
//
// Usage:
//
//	ppmfile encode -in data.bin -dir shards -n 8 -r 16 -m 2 -s 2
//	rm shards/disk_03.strip shards/disk_05.strip   # lose two disks
//	ppmfile decode -dir shards -out restored.bin
//	ppmfile verify -dir shards
//	ppmfile scrub -dir shards -repair          # locate & fix silent corruption
//
// Each disk j becomes one file disk_<j>.strip holding its sectors in
// stripe order; manifest.json records the geometry plus per-sector
// CRC-32C checksums. Encode and decode stream the file through the
// multi-stripe pipeline: one compiled plan serves every stripe and
// -depth stripes are in flight, so strip-file I/O overlaps the GF
// compute. Decode reads through a healer — bounded retries for
// transient strip faults, checksum verification, and demotion of
// unreadable or corrupt strips to erasures — and scrub is the
// rate-limitable background version of the same loop, rebuilding
// damage (missing disks included) in place with -repair. The -faults
// flag injects a deterministic fault schedule for testing.
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "encode":
		err = runEncode(os.Args[2:])
	case "decode":
		err = runDecode(os.Args[2:])
	case "verify":
		err = runVerify(os.Args[2:])
	case "scrub":
		err = runScrub(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ppmfile: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  ppmfile encode -in FILE -dir DIR [-n 8 -r 16 -m 2 -s 2 -sector 4096 -depth 4]
  ppmfile decode -dir DIR -out FILE [-depth 4 -threads 1 -retries 3 -op-timeout 0]
  ppmfile verify -dir DIR
  ppmfile scrub  -dir DIR [-repair -rate MiB/s -retries 3 -op-timeout 0]

decode and scrub retry transient strip faults (-retries attempts, each
bounded by -op-timeout), verify the manifest's CRC-32C sector checksums,
and demote unreadable or corrupt strips to erasures for re-decode;
scrub -repair additionally rebuilds damaged or missing strip files in
place. The -faults flag (all commands but verify) injects a
deterministic fault schedule for chaos testing.`)
	os.Exit(2)
}
