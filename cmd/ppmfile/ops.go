package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ppm/internal/codes"
	"ppm/internal/decode"
	"ppm/internal/pipeline"
	"ppm/internal/stripe"
)

func runEncode(args []string) error {
	fs := flag.NewFlagSet("encode", flag.ExitOnError)
	in := fs.String("in", "", "input file")
	dir := fs.String("dir", "", "output shard directory")
	n := fs.Int("n", 8, "disks")
	r := fs.Int("r", 16, "rows per strip")
	m := fs.Int("m", 2, "coding disks")
	s := fs.Int("s", 2, "coding sectors")
	sector := fs.Int("sector", 4096, "sector size in bytes")
	threads := fs.Int("threads", 0, "per-stripe PPM workers (0 = 1; the pipeline parallelises across stripes)")
	depth := fs.Int("depth", pipeline.DefaultDepth, "stripes in flight (pipeline depth)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *dir == "" {
		return fmt.Errorf("encode needs -in and -dir")
	}
	if *sector < 4 || *sector%4 != 0 {
		return fmt.Errorf("sector size must be a positive multiple of 4")
	}

	sd, err := codes.NewSD(*n, *r, *m, *s)
	if err != nil {
		return err
	}
	inFile, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer inFile.Close()
	info, err := inFile.Stat()
	if err != nil {
		return err
	}
	size := info.Size()
	dataPositions := codes.DataPositions(sd)
	payloadPerStripe := int64(len(dataPositions)) * int64(*sector)
	stripes := int((size + payloadPerStripe - 1) / payloadPerStripe)
	if stripes == 0 {
		stripes = 1
	}

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	mf := manifest{
		N: *n, R: *r, M: *m, S: *s,
		Word:       sd.Field().W(),
		Coeffs:     sd.Coefficients(),
		SectorSize: *sector,
		Stripes:    stripes,
		FileSize:   size,
		FileName:   filepath.Base(*in),
	}
	if err := writeManifest(*dir, mf); err != nil {
		return err
	}
	ds, err := openStore(*dir, mf, true)
	if err != nil {
		return err
	}
	defer ds.Close()

	// Stream the file through the pipeline: the encode plan is compiled
	// once, file reads for stripe i+1 overlap the encode of stripe i,
	// and -depth stripes are in flight against the strip store.
	eng, err := pipeline.New(sd, codes.EncodingScenario(sd), *sector,
		pipeline.Config{Depth: *depth, Threads: *threads})
	if err != nil {
		return err
	}
	defer eng.Close()
	src := &payloadSource{r: inFile, dataPos: dataPositions, stripes: stripes}
	if _, err := eng.Run(src, &storeSink{ds: ds}); err != nil {
		return err
	}
	fmt.Printf("encoded %d bytes as %s: %d stripes x %d disks (%d-byte sectors), tolerates %d disk + %d sector failures per stripe\n",
		size, sd.Name(), stripes, *n, *sector, *m, *s)
	return nil
}

func runDecode(args []string) error {
	fs := flag.NewFlagSet("decode", flag.ExitOnError)
	dir := fs.String("dir", "", "shard directory")
	out := fs.String("out", "", "output file (default: the original name in the current directory)")
	threads := fs.Int("threads", 0, "per-stripe PPM workers (0 = 1; the pipeline parallelises across stripes)")
	depth := fs.Int("depth", pipeline.DefaultDepth, "stripes in flight (pipeline depth)")
	repair := fs.Bool("repair", true, "rewrite missing strip files after recovery")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("decode needs -dir")
	}
	mf, err := readManifest(*dir)
	if err != nil {
		return err
	}
	sd, err := codeFromManifest(mf)
	if err != nil {
		return err
	}
	ds, err := openStore(*dir, mf, false)
	if err != nil {
		return err
	}
	defer ds.Close()

	missing := ds.missingDisks()
	if len(missing) > mf.M {
		return fmt.Errorf("%d disks missing (%v); %s tolerates only %d", len(missing), missing, sd.Name(), mf.M)
	}
	var sc codes.Scenario
	if len(missing) > 0 {
		var faulty []int
		for i := 0; i < mf.R; i++ {
			for _, j := range missing {
				faulty = append(faulty, i*mf.N+j)
			}
		}
		sc, err = codes.NewScenario(sd, faulty)
		if err != nil {
			return err
		}
		fmt.Printf("recovering disks %v with PPM\n", missing)
	}

	if *out == "" {
		*out = mf.FileName
	}
	outFile, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer outFile.Close()

	// Re-create missing strip files when repairing.
	var repairFiles map[int]*os.File
	if *repair && len(missing) > 0 {
		repairFiles = make(map[int]*os.File, len(missing))
		for _, j := range missing {
			f, err := os.Create(filepath.Join(*dir, diskFileName(j)))
			if err != nil {
				return err
			}
			defer f.Close()
			repairFiles[j] = f
		}
	}

	// All stripes fail identically (whole disks), so the pipeline's
	// once-compiled plan serves every stripe; strip reads for stripe i+1
	// overlap the recovery of stripe i. An empty scenario (nothing
	// missing) runs the same pipeline as a pure extract pass.
	eng, err := pipeline.New(sd, sc, mf.SectorSize,
		pipeline.Config{Depth: *depth, Threads: *threads})
	if err != nil {
		return err
	}
	defer eng.Close()
	sink := &restoreSink{
		out:       outFile,
		dataPos:   codes.DataPositions(sd),
		remaining: mf.FileSize,
		repair:    repairFiles,
		mf:        mf,
	}
	if _, err := eng.Run(&storeSource{ds: ds, stripes: mf.Stripes}, sink); err != nil {
		return err
	}
	if sink.remaining != 0 {
		return fmt.Errorf("short archive: %d bytes unaccounted for", sink.remaining)
	}
	fmt.Printf("restored %q (%d bytes)\n", *out, mf.FileSize)
	if len(repairFiles) > 0 {
		fmt.Printf("repaired %d strip file(s)\n", len(repairFiles))
	}
	return nil
}

func runVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	dir := fs.String("dir", "", "shard directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("verify needs -dir")
	}
	mf, err := readManifest(*dir)
	if err != nil {
		return err
	}
	sd, err := codeFromManifest(mf)
	if err != nil {
		return err
	}
	ds, err := openStore(*dir, mf, false)
	if err != nil {
		return err
	}
	defer ds.Close()
	if missing := ds.missingDisks(); len(missing) > 0 {
		return fmt.Errorf("disks %v missing; run decode to repair first", missing)
	}
	st, err := stripe.New(mf.N, mf.R, mf.SectorSize)
	if err != nil {
		return err
	}
	for idx := 0; idx < mf.Stripes; idx++ {
		if err := ds.readStripe(idx, st); err != nil {
			return err
		}
		ok, err := decode.Verify(sd, st)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("stripe %d fails the parity check (silent corruption)", idx)
		}
	}
	fmt.Printf("all %d stripes verify clean under %s\n", mf.Stripes, sd.Name())
	return nil
}

// runScrub walks every stripe looking for silent corruption (sectors
// that read back wrong bytes without an I/O error), localising and
// optionally repairing single-sector damage via the parity-check
// syndrome.
func runScrub(args []string) error {
	fs := flag.NewFlagSet("scrub", flag.ExitOnError)
	dir := fs.String("dir", "", "shard directory")
	repair := fs.Bool("repair", false, "repair located corruption in place")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("scrub needs -dir")
	}
	mf, err := readManifest(*dir)
	if err != nil {
		return err
	}
	sd, err := codeFromManifest(mf)
	if err != nil {
		return err
	}
	ds, err := openStore(*dir, mf, false)
	if err != nil {
		return err
	}
	defer ds.Close()
	if missing := ds.missingDisks(); len(missing) > 0 {
		return fmt.Errorf("disks %v missing; scrub handles corruption, decode handles erasures", missing)
	}
	st, err := stripe.New(mf.N, mf.R, mf.SectorSize)
	if err != nil {
		return err
	}
	clean, located, ambiguous := 0, 0, 0
	for idx := 0; idx < mf.Stripes; idx++ {
		if err := ds.readStripe(idx, st); err != nil {
			return err
		}
		res, err := decode.Scrub(sd, st)
		if err != nil {
			return err
		}
		switch {
		case res.Clean:
			clean++
		case res.Located:
			located++
			fmt.Printf("stripe %d: silent corruption located at sector %d (row %d, disk %d)\n",
				idx, res.Sector, res.Sector/mf.N, res.Sector%mf.N)
			if *repair {
				if _, err := decode.ScrubAndRepair(sd, st, decode.Options{}); err != nil {
					return err
				}
				if err := writeBackStripe(*dir, ds, idx, st); err != nil {
					return err
				}
				fmt.Printf("stripe %d: repaired and written back\n", idx)
			}
		default:
			ambiguous++
			fmt.Printf("stripe %d: corruption detected but not localisable (multiple sectors?)\n", idx)
		}
	}
	fmt.Printf("scrub complete: %d clean, %d located, %d ambiguous of %d stripes\n",
		clean, located, ambiguous, mf.Stripes)
	if ambiguous > 0 {
		return fmt.Errorf("%d stripe(s) need manual attention", ambiguous)
	}
	return nil
}

// writeBackStripe rewrites one stripe's sectors into the strip files.
func writeBackStripe(dir string, ds *diskStore, idx int, st *stripe.Stripe) error {
	buf := make([]byte, ds.stripBytes())
	for j := 0; j < ds.mf.N; j++ {
		f, err := os.OpenFile(filepath.Join(dir, diskFileName(j)), os.O_WRONLY, 0)
		if err != nil {
			return err
		}
		for i := 0; i < ds.mf.R; i++ {
			copy(buf[i*ds.mf.SectorSize:(i+1)*ds.mf.SectorSize], st.SectorAt(i, j))
		}
		if _, err := f.WriteAt(buf, int64(idx)*int64(ds.stripBytes())); err != nil {
			f.Close()
			return err
		}
		f.Close()
	}
	return nil
}
