package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ppm/internal/codes"
	"ppm/internal/core"
	"ppm/internal/decode"
	"ppm/internal/stripe"
)

func runEncode(args []string) error {
	fs := flag.NewFlagSet("encode", flag.ExitOnError)
	in := fs.String("in", "", "input file")
	dir := fs.String("dir", "", "output shard directory")
	n := fs.Int("n", 8, "disks")
	r := fs.Int("r", 16, "rows per strip")
	m := fs.Int("m", 2, "coding disks")
	s := fs.Int("s", 2, "coding sectors")
	sector := fs.Int("sector", 4096, "sector size in bytes")
	threads := fs.Int("threads", 0, "PPM workers (0 = min(4, cores))")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *dir == "" {
		return fmt.Errorf("encode needs -in and -dir")
	}
	if *sector < 4 || *sector%4 != 0 {
		return fmt.Errorf("sector size must be a positive multiple of 4")
	}

	sd, err := codes.NewSD(*n, *r, *m, *s)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	dataPositions := codes.DataPositions(sd)
	payloadPerStripe := len(dataPositions) * *sector
	stripes := (len(data) + payloadPerStripe - 1) / payloadPerStripe
	if stripes == 0 {
		stripes = 1
	}

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	mf := manifest{
		N: *n, R: *r, M: *m, S: *s,
		Word:       sd.Field().W(),
		Coeffs:     sd.Coefficients(),
		SectorSize: *sector,
		Stripes:    stripes,
		FileSize:   int64(len(data)),
		FileName:   filepath.Base(*in),
	}
	if err := writeManifest(*dir, mf); err != nil {
		return err
	}
	ds, err := openStore(*dir, mf, true)
	if err != nil {
		return err
	}
	defer ds.Close()

	st, err := stripe.New(*n, *r, *sector)
	if err != nil {
		return err
	}
	enc := core.NewDecoder(sd, core.WithThreads(*threads))
	offset := 0
	for idx := 0; idx < stripes; idx++ {
		// Lay the file bytes into the data sectors, zero-padding the tail.
		for _, pos := range dataPositions {
			sec := st.Sector(pos)
			nCopied := copy(sec, data[min(offset, len(data)):])
			for b := nCopied; b < len(sec); b++ {
				sec[b] = 0
			}
			offset += len(sec)
		}
		if err := enc.Encode(st); err != nil {
			return fmt.Errorf("stripe %d: %w", idx, err)
		}
		if err := ds.writeStripe(idx, st); err != nil {
			return err
		}
	}
	fmt.Printf("encoded %d bytes as %s: %d stripes x %d disks (%d-byte sectors), tolerates %d disk + %d sector failures per stripe\n",
		len(data), sd.Name(), stripes, *n, *sector, *m, *s)
	return nil
}

func runDecode(args []string) error {
	fs := flag.NewFlagSet("decode", flag.ExitOnError)
	dir := fs.String("dir", "", "shard directory")
	out := fs.String("out", "", "output file (default: the original name in the current directory)")
	threads := fs.Int("threads", 0, "PPM workers (0 = min(4, cores))")
	repair := fs.Bool("repair", true, "rewrite missing strip files after recovery")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("decode needs -dir")
	}
	mf, err := readManifest(*dir)
	if err != nil {
		return err
	}
	sd, err := codeFromManifest(mf)
	if err != nil {
		return err
	}
	ds, err := openStore(*dir, mf, false)
	if err != nil {
		return err
	}
	defer ds.Close()

	missing := ds.missingDisks()
	if len(missing) > mf.M {
		return fmt.Errorf("%d disks missing (%v); %s tolerates only %d", len(missing), missing, sd.Name(), mf.M)
	}
	var sc codes.Scenario
	if len(missing) > 0 {
		var faulty []int
		for i := 0; i < mf.R; i++ {
			for _, j := range missing {
				faulty = append(faulty, i*mf.N+j)
			}
		}
		sc, err = codes.NewScenario(sd, faulty)
		if err != nil {
			return err
		}
		fmt.Printf("recovering disks %v with PPM\n", missing)
	}

	if *out == "" {
		*out = mf.FileName
	}
	outFile, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer outFile.Close()

	// Re-create missing strip files when repairing.
	var repairFiles map[int]*os.File
	if *repair && len(missing) > 0 {
		repairFiles = make(map[int]*os.File, len(missing))
		for _, j := range missing {
			f, err := os.Create(filepath.Join(*dir, diskFileName(j)))
			if err != nil {
				return err
			}
			defer f.Close()
			repairFiles[j] = f
		}
	}

	dec := core.NewDecoder(sd, core.WithThreads(*threads))
	var plan *core.Plan
	if len(sc.Faulty) > 0 {
		// All stripes fail identically (whole disks), so one plan serves
		// every stripe — the DecodeWithPlan fast path.
		plan, err = dec.Plan(sc)
		if err != nil {
			return err
		}
	}

	st, err := stripe.New(mf.N, mf.R, mf.SectorSize)
	if err != nil {
		return err
	}
	dataPositions := codes.DataPositions(sd)
	remaining := mf.FileSize
	for idx := 0; idx < mf.Stripes; idx++ {
		if err := ds.readStripe(idx, st); err != nil {
			return err
		}
		if plan != nil {
			if err := dec.DecodeWithPlan(plan, st); err != nil {
				return fmt.Errorf("stripe %d: %w", idx, err)
			}
			for j, f := range repairFiles {
				buf := make([]byte, ds.stripBytes())
				for i := 0; i < mf.R; i++ {
					copy(buf[i*mf.SectorSize:(i+1)*mf.SectorSize], st.SectorAt(i, j))
				}
				if _, err := f.WriteAt(buf, int64(idx)*int64(ds.stripBytes())); err != nil {
					return err
				}
			}
		}
		for _, pos := range dataPositions {
			if remaining <= 0 {
				break
			}
			sec := st.Sector(pos)
			chunk := int64(len(sec))
			if chunk > remaining {
				chunk = remaining
			}
			if _, err := outFile.Write(sec[:chunk]); err != nil {
				return err
			}
			remaining -= chunk
		}
	}
	if remaining != 0 {
		return fmt.Errorf("short archive: %d bytes unaccounted for", remaining)
	}
	fmt.Printf("restored %q (%d bytes)\n", *out, mf.FileSize)
	if len(repairFiles) > 0 {
		fmt.Printf("repaired %d strip file(s)\n", len(repairFiles))
	}
	return nil
}

func runVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	dir := fs.String("dir", "", "shard directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("verify needs -dir")
	}
	mf, err := readManifest(*dir)
	if err != nil {
		return err
	}
	sd, err := codeFromManifest(mf)
	if err != nil {
		return err
	}
	ds, err := openStore(*dir, mf, false)
	if err != nil {
		return err
	}
	defer ds.Close()
	if missing := ds.missingDisks(); len(missing) > 0 {
		return fmt.Errorf("disks %v missing; run decode to repair first", missing)
	}
	st, err := stripe.New(mf.N, mf.R, mf.SectorSize)
	if err != nil {
		return err
	}
	for idx := 0; idx < mf.Stripes; idx++ {
		if err := ds.readStripe(idx, st); err != nil {
			return err
		}
		ok, err := decode.Verify(sd, st)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("stripe %d fails the parity check (silent corruption)", idx)
		}
	}
	fmt.Printf("all %d stripes verify clean under %s\n", mf.Stripes, sd.Name())
	return nil
}

// runScrub walks every stripe looking for silent corruption (sectors
// that read back wrong bytes without an I/O error), localising and
// optionally repairing single-sector damage via the parity-check
// syndrome.
func runScrub(args []string) error {
	fs := flag.NewFlagSet("scrub", flag.ExitOnError)
	dir := fs.String("dir", "", "shard directory")
	repair := fs.Bool("repair", false, "repair located corruption in place")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("scrub needs -dir")
	}
	mf, err := readManifest(*dir)
	if err != nil {
		return err
	}
	sd, err := codeFromManifest(mf)
	if err != nil {
		return err
	}
	ds, err := openStore(*dir, mf, false)
	if err != nil {
		return err
	}
	defer ds.Close()
	if missing := ds.missingDisks(); len(missing) > 0 {
		return fmt.Errorf("disks %v missing; scrub handles corruption, decode handles erasures", missing)
	}
	st, err := stripe.New(mf.N, mf.R, mf.SectorSize)
	if err != nil {
		return err
	}
	clean, located, ambiguous := 0, 0, 0
	for idx := 0; idx < mf.Stripes; idx++ {
		if err := ds.readStripe(idx, st); err != nil {
			return err
		}
		res, err := decode.Scrub(sd, st)
		if err != nil {
			return err
		}
		switch {
		case res.Clean:
			clean++
		case res.Located:
			located++
			fmt.Printf("stripe %d: silent corruption located at sector %d (row %d, disk %d)\n",
				idx, res.Sector, res.Sector/mf.N, res.Sector%mf.N)
			if *repair {
				if _, err := decode.ScrubAndRepair(sd, st, decode.Options{}); err != nil {
					return err
				}
				if err := writeBackStripe(*dir, ds, idx, st); err != nil {
					return err
				}
				fmt.Printf("stripe %d: repaired and written back\n", idx)
			}
		default:
			ambiguous++
			fmt.Printf("stripe %d: corruption detected but not localisable (multiple sectors?)\n", idx)
		}
	}
	fmt.Printf("scrub complete: %d clean, %d located, %d ambiguous of %d stripes\n",
		clean, located, ambiguous, mf.Stripes)
	if ambiguous > 0 {
		return fmt.Errorf("%d stripe(s) need manual attention", ambiguous)
	}
	return nil
}

// writeBackStripe rewrites one stripe's sectors into the strip files.
func writeBackStripe(dir string, ds *diskStore, idx int, st *stripe.Stripe) error {
	for j := 0; j < ds.mf.N; j++ {
		f, err := os.OpenFile(filepath.Join(dir, diskFileName(j)), os.O_WRONLY, 0)
		if err != nil {
			return err
		}
		buf := make([]byte, ds.stripBytes())
		for i := 0; i < ds.mf.R; i++ {
			copy(buf[i*ds.mf.SectorSize:(i+1)*ds.mf.SectorSize], st.SectorAt(i, j))
		}
		if _, err := f.WriteAt(buf, int64(idx)*int64(ds.stripBytes())); err != nil {
			f.Close()
			return err
		}
		f.Close()
	}
	return nil
}
