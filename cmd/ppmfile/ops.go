package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"ppm/internal/codes"
	"ppm/internal/decode"
	"ppm/internal/fault"
	"ppm/internal/pipeline"
	"ppm/internal/stripe"
)

// wrapFaults parses a -faults spec and wraps the store with the
// resulting injection schedule; an empty spec is a no-op. The schedule
// is printed so a failing chaos run can be replayed exactly.
func wrapFaults(store fault.Store, spec string) (fault.Store, *fault.Schedule, error) {
	if spec == "" {
		return store, nil, nil
	}
	sched, err := fault.ParseSpec(spec)
	if err != nil {
		return nil, nil, fmt.Errorf("parsing -faults: %w", err)
	}
	fmt.Printf("fault injection active: %s\n", sched)
	return fault.NewFaultyStore(store, sched), sched, nil
}

// retryPolicy builds the strip-read retry policy from the shared
// -retries / -op-timeout flags.
func retryPolicy(retries int, opTimeout time.Duration) fault.Policy {
	p := fault.DefaultPolicy()
	p.MaxAttempts = retries
	p.OpTimeout = opTimeout
	return p
}

func runEncode(args []string) error {
	fs := flag.NewFlagSet("encode", flag.ExitOnError)
	in := fs.String("in", "", "input file")
	dir := fs.String("dir", "", "output shard directory")
	n := fs.Int("n", 8, "disks")
	r := fs.Int("r", 16, "rows per strip")
	m := fs.Int("m", 2, "coding disks")
	s := fs.Int("s", 2, "coding sectors")
	sector := fs.Int("sector", 4096, "sector size in bytes")
	threads := fs.Int("threads", 0, "per-stripe PPM workers (0 = 1; the pipeline parallelises across stripes)")
	depth := fs.Int("depth", pipeline.DefaultDepth, "stripes in flight (pipeline depth)")
	faults := fs.String("faults", "", "fault-injection spec (testing; see internal/fault.ParseSpec)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *dir == "" {
		return fmt.Errorf("encode needs -in and -dir")
	}
	if *sector < 4 || *sector%4 != 0 {
		return fmt.Errorf("sector size must be a positive multiple of 4")
	}

	sd, err := codes.NewSD(*n, *r, *m, *s)
	if err != nil {
		return err
	}
	inFile, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer inFile.Close()
	info, err := inFile.Stat()
	if err != nil {
		return err
	}
	size := info.Size()
	dataPositions := codes.DataPositions(sd)
	payloadPerStripe := int64(len(dataPositions)) * int64(*sector)
	stripes := int((size + payloadPerStripe - 1) / payloadPerStripe)
	if stripes == 0 {
		stripes = 1
	}

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	mf := manifest{
		N: *n, R: *r, M: *m, S: *s,
		Word:       sd.Field().W(),
		Coeffs:     sd.Coefficients(),
		SectorSize: *sector,
		Stripes:    stripes,
		FileSize:   size,
		FileName:   filepath.Base(*in),
	}
	if err := writeManifest(*dir, mf); err != nil {
		return err
	}
	ds, err := openStore(*dir, mf, true)
	if err != nil {
		return err
	}
	defer ds.Close()
	store, _, err := wrapFaults(ds, *faults)
	if err != nil {
		return err
	}

	// Stream the file through the pipeline: the encode plan is compiled
	// once, file reads for stripe i+1 overlap the encode of stripe i,
	// and -depth stripes are in flight against the strip store.
	eng, err := pipeline.New(sd, codes.EncodingScenario(sd), *sector,
		pipeline.Config{Depth: *depth, Threads: *threads})
	if err != nil {
		return err
	}
	defer eng.Close()
	src := &payloadSource{r: inFile, dataPos: dataPositions, stripes: stripes}
	sink := &storeSink{store: store, mf: mf}
	if _, err := eng.Run(src, sink); err != nil {
		return err
	}
	// Rewrite the manifest with the per-sector checksums the drain stage
	// recorded: from here on, reads can tell silent corruption from
	// clean data and demote it to an erasure.
	mf.ChecksumAlgo = checksumAlgo
	mf.Checksums = sink.sums
	if err := writeManifest(*dir, mf); err != nil {
		return fmt.Errorf("recording checksums: %w", err)
	}
	fmt.Printf("encoded %d bytes as %s: %d stripes x %d disks (%d-byte sectors), tolerates %d disk + %d sector failures per stripe; %s sector checksums recorded\n",
		size, sd.Name(), stripes, *n, *sector, *m, *s, checksumAlgo)
	return nil
}

func runDecode(args []string) error {
	fs := flag.NewFlagSet("decode", flag.ExitOnError)
	dir := fs.String("dir", "", "shard directory")
	out := fs.String("out", "", "output file (default: the original name in the current directory)")
	threads := fs.Int("threads", 0, "per-stripe PPM workers (0 = 1; the pipeline parallelises across stripes)")
	depth := fs.Int("depth", pipeline.DefaultDepth, "stripes in flight (pipeline depth)")
	repair := fs.Bool("repair", true, "rewrite missing strip files after recovery")
	retries := fs.Int("retries", 3, "max read attempts per strip before demoting it to an erasure")
	opTimeout := fs.Duration("op-timeout", 0, "per-attempt strip read deadline (0 = unbounded); a hung strip is demoted at the deadline")
	faults := fs.String("faults", "", "fault-injection spec (testing; see internal/fault.ParseSpec)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("decode needs -dir")
	}
	mf, err := readManifest(*dir)
	if err != nil {
		return err
	}
	sd, err := codeFromManifest(mf)
	if err != nil {
		return err
	}
	ds, err := openStore(*dir, mf, false)
	if err != nil {
		return err
	}
	defer ds.Close()

	missing := ds.missingDisks()
	if len(missing) > mf.M {
		return fmt.Errorf("%d disks missing (%v); %s tolerates only %d", len(missing), missing, sd.Name(), mf.M)
	}
	var sc codes.Scenario
	if len(missing) > 0 {
		var faulty []int
		for i := 0; i < mf.R; i++ {
			for _, j := range missing {
				faulty = append(faulty, i*mf.N+j)
			}
		}
		sc, err = codes.NewScenario(sd, faulty)
		if err != nil {
			return err
		}
		fmt.Printf("recovering disks %v with PPM\n", missing)
	}

	if *out == "" {
		*out = mf.FileName
	}
	outFile, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer outFile.Close()

	// Re-create missing strip files when repairing.
	var repairFiles map[int]*os.File
	if *repair && len(missing) > 0 {
		repairFiles = make(map[int]*os.File, len(missing))
		for _, j := range missing {
			f, err := os.Create(filepath.Join(*dir, diskFileName(j)))
			if err != nil {
				return err
			}
			defer f.Close()
			repairFiles[j] = f
		}
	}

	// All stripes fail identically (whole disks), so the pipeline's
	// once-compiled plan serves every stripe; strip reads for stripe i+1
	// overlap the recovery of stripe i. An empty scenario (nothing
	// missing) runs the same pipeline as a pure extract pass.
	eng, err := pipeline.New(sd, sc, mf.SectorSize,
		pipeline.Config{Depth: *depth, Threads: *threads})
	if err != nil {
		return err
	}
	defer eng.Close()
	sink := &restoreSink{
		out:       outFile,
		dataPos:   codes.DataPositions(sd),
		remaining: mf.FileSize,
		repair:    repairFiles,
		mf:        mf,
	}
	// The fill stage reads through a Healer: bounded retries around
	// transient strip faults, per-sector checksum verification, and
	// demotion to erasure (plus an inline re-decode) for anything that
	// cannot be read clean — the baseline missing disks stay with the
	// engine's once-compiled plan.
	store, _, err := wrapFaults(ds, *faults)
	if err != nil {
		return err
	}
	healer := &fault.Healer{
		Code:     sd,
		Store:    store,
		Sums:     mf.Checksums,
		Baseline: sc,
		Policy:   retryPolicy(*retries, *opTimeout),
		Logf: func(format string, a ...any) {
			fmt.Printf("degraded read: "+format+"\n", a...)
		},
	}
	src := &healSource{h: healer, stripes: mf.Stripes, eng: eng, ctx: context.Background()}
	if _, err := eng.Run(src, sink); err != nil {
		return err
	}
	if sink.remaining != 0 {
		return fmt.Errorf("short archive: %d bytes unaccounted for", sink.remaining)
	}
	fmt.Printf("restored %q (%d bytes)\n", *out, mf.FileSize)
	if hs := healer.Stats; hs.Retries+hs.DemotedStrips+hs.CorruptSectors > 0 {
		fmt.Printf("degraded read summary: %d retries, %d strips demoted, %d corrupt sectors, %d stripes healed\n",
			hs.Retries, hs.DemotedStrips, hs.CorruptSectors, hs.Healed)
	}
	if len(repairFiles) > 0 {
		fmt.Printf("repaired %d strip file(s)\n", len(repairFiles))
	}
	return nil
}

func runVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	dir := fs.String("dir", "", "shard directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("verify needs -dir")
	}
	mf, err := readManifest(*dir)
	if err != nil {
		return err
	}
	sd, err := codeFromManifest(mf)
	if err != nil {
		return err
	}
	ds, err := openStore(*dir, mf, false)
	if err != nil {
		return err
	}
	defer ds.Close()
	if missing := ds.missingDisks(); len(missing) > 0 {
		return fmt.Errorf("disks %v missing; run decode to repair first", missing)
	}
	st, err := stripe.New(mf.N, mf.R, mf.SectorSize)
	if err != nil {
		return err
	}
	checksummed := 0
	for idx := 0; idx < mf.Stripes; idx++ {
		if err := ds.readStripe(idx, st); err != nil {
			return err
		}
		// Checksummed archives verify on CRC-32C alone: the sums were
		// recorded over the encoded sectors, so they pin parity as well
		// as data, localise damage to a sector, and cost zero decode
		// work — no GF products, no plan. Only pre-checksum archives
		// fall back to the full parity-check decode.
		if idx < len(mf.Checksums) && mf.Checksums[idx] != nil {
			if bad := fault.VerifyStripe(st, mf.Checksums[idx], nil); len(bad) > 0 {
				return fmt.Errorf("stripe %d fails checksum verification at sector(s) %v; run scrub -repair", idx, bad)
			}
			checksummed++
			continue
		}
		ok, err := decode.Verify(sd, st)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("stripe %d fails the parity check (silent corruption)", idx)
		}
	}
	if checksummed == mf.Stripes {
		fmt.Printf("all %d stripes verify clean under %s (checksum-only, no decode)\n", mf.Stripes, sd.Name())
	} else {
		fmt.Printf("all %d stripes verify clean under %s (%d checksummed, %d parity-checked)\n",
			mf.Stripes, sd.Name(), checksummed, mf.Stripes-checksummed)
	}
	return nil
}

// runScrub is the self-healing background pass: it walks every stripe
// looking for silent corruption, missing disks and unreadable strips,
// and (with -repair) rebuilds the damage in place.
//
// Archives with recorded checksums take the checksum path: each stripe
// is degraded-read through a fault.Healer — bounded retries, checksum
// verification, erasure demotion and an inline re-decode — so any
// damage the code tolerates (including whole missing disks) leaves the
// healer as correct bytes ready to write back. Pre-checksum archives
// fall back to the parity-syndrome scrub, which can localise and fix
// single-sector damage but cannot rebuild erasures.
//
// -rate bounds the read bandwidth (MiB/s) so a background scrub does
// not starve foreground traffic.
func runScrub(args []string) error {
	fs := flag.NewFlagSet("scrub", flag.ExitOnError)
	dir := fs.String("dir", "", "shard directory")
	repair := fs.Bool("repair", false, "repair located corruption (and rebuild missing disks) in place")
	rate := fs.Float64("rate", 0, "read-rate limit in MiB/s (0 = unlimited)")
	retries := fs.Int("retries", 3, "max read attempts per strip before demoting it to an erasure")
	opTimeout := fs.Duration("op-timeout", 0, "per-attempt strip read deadline (0 = unbounded)")
	faults := fs.String("faults", "", "fault-injection spec (testing; see internal/fault.ParseSpec)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("scrub needs -dir")
	}
	mf, err := readManifest(*dir)
	if err != nil {
		return err
	}
	sd, err := codeFromManifest(mf)
	if err != nil {
		return err
	}
	ds, err := openStore(*dir, mf, false)
	if err != nil {
		return err
	}
	defer ds.Close()
	if len(mf.Checksums) == 0 {
		// Pre-checksum archive: parity-syndrome scrub only.
		if missing := ds.missingDisks(); len(missing) > 0 {
			return fmt.Errorf("disks %v missing; this archive has no checksums, so scrub cannot rebuild them — run decode", missing)
		}
		return scrubSyndrome(*dir, mf, sd, ds, *repair)
	}
	return scrubChecksummed(*dir, mf, sd, ds, scrubConfig{
		repair: *repair, rateMiB: *rate,
		policy: retryPolicy(*retries, *opTimeout),
		faults: *faults,
	})
}

type scrubConfig struct {
	repair  bool
	rateMiB float64
	policy  fault.Policy
	faults  string
}

// rateLimiter paces a scan to a byte rate with simple catch-up sleeps.
type rateLimiter struct {
	bytesPerSec float64
	start       time.Time
	bytes       int64
}

func (l *rateLimiter) pace(n int) {
	if l.bytesPerSec <= 0 {
		return
	}
	if l.start.IsZero() {
		l.start = time.Now()
	}
	l.bytes += int64(n)
	budget := time.Duration(float64(l.bytes) / l.bytesPerSec * float64(time.Second))
	if sleep := budget - time.Since(l.start); sleep > 0 {
		time.Sleep(sleep)
	}
}

// scrubChecksummed is the checksum-era scrub+rebuild loop.
func scrubChecksummed(dir string, mf manifest, sd *codes.SD, ds *diskStore, cfg scrubConfig) error {
	missing := ds.missingDisks()
	if len(missing) > mf.M {
		return fmt.Errorf("%d disks missing (%v); %s tolerates only %d", len(missing), missing, sd.Name(), mf.M)
	}
	if len(missing) > 0 {
		fmt.Printf("scrub: disks %v missing", missing)
		if cfg.repair {
			fmt.Printf("; rebuilding")
		}
		fmt.Println()
	}
	store, _, err := wrapFaults(ds, cfg.faults)
	if err != nil {
		return err
	}
	// An empty baseline makes the healer treat *every* unreadable strip
	// (missing disks included) as damage to demote and re-decode — the
	// scrub wants fully healed stripes to write back, not zeroed
	// placeholders for a downstream decoder.
	healer := &fault.Healer{
		Code:   sd,
		Store:  store,
		Sums:   mf.Checksums,
		Policy: cfg.policy,
		Logf: func(format string, a ...any) {
			fmt.Printf("scrub: "+format+"\n", a...)
		},
	}
	st, err := stripe.New(mf.N, mf.R, mf.SectorSize)
	if err != nil {
		return err
	}
	limiter := &rateLimiter{bytesPerSec: cfg.rateMiB * (1 << 20)}
	stripeBytes := mf.N * ds.stripBytes()
	repaired := 0
	ctx := context.Background()
	for idx := 0; idx < mf.Stripes; idx++ {
		before := healer.Stats
		if err := healer.ReadStripe(ctx, idx, st); err != nil {
			return fmt.Errorf("scrub: stripe %d is unrecoverable: %w", idx, err)
		}
		damaged := healer.Stats.DemotedStrips > before.DemotedStrips ||
			healer.Stats.CorruptSectors > before.CorruptSectors
		if damaged && cfg.repair {
			if err := writeBackStripe(dir, ds, idx, st); err != nil {
				return fmt.Errorf("scrub: writing healed stripe %d back: %w", idx, err)
			}
			repaired++
		}
		limiter.pace(stripeBytes)
	}
	hs := healer.Stats
	fmt.Printf("scrub complete: %d stripes scanned, %d retries, %d strips demoted, %d corrupt sectors, %d stripes healed",
		hs.Stripes, hs.Retries, hs.DemotedStrips, hs.CorruptSectors, hs.Healed)
	if cfg.repair {
		fmt.Printf(", %d written back", repaired)
	}
	fmt.Println()
	if hs.Healed > 0 && !cfg.repair {
		fmt.Println("damage found; re-run with -repair to write the healed stripes back")
	}
	return nil
}

// scrubSyndrome is the legacy parity-syndrome scrub for archives
// encoded before per-sector checksums existed.
func scrubSyndrome(dir string, mf manifest, sd *codes.SD, ds *diskStore, repair bool) error {
	st, err := stripe.New(mf.N, mf.R, mf.SectorSize)
	if err != nil {
		return err
	}
	clean, located, ambiguous := 0, 0, 0
	for idx := 0; idx < mf.Stripes; idx++ {
		if err := ds.readStripe(idx, st); err != nil {
			return err
		}
		res, err := decode.Scrub(sd, st)
		if err != nil {
			return err
		}
		switch {
		case res.Clean:
			clean++
		case res.Located:
			located++
			fmt.Printf("stripe %d: silent corruption located at sector %d (row %d, disk %d)\n",
				idx, res.Sector, res.Sector/mf.N, res.Sector%mf.N)
			if repair {
				if _, err := decode.ScrubAndRepair(sd, st, decode.Options{}); err != nil {
					return err
				}
				if err := writeBackStripe(dir, ds, idx, st); err != nil {
					return err
				}
				fmt.Printf("stripe %d: repaired and written back\n", idx)
			}
		default:
			ambiguous++
			fmt.Printf("stripe %d: corruption detected but not localisable (multiple sectors?)\n", idx)
		}
	}
	fmt.Printf("scrub complete: %d clean, %d located, %d ambiguous of %d stripes\n",
		clean, located, ambiguous, mf.Stripes)
	if ambiguous > 0 {
		return fmt.Errorf("%d stripe(s) need manual attention", ambiguous)
	}
	return nil
}

// writeBackStripe rewrites one stripe's sectors into the strip files,
// creating any missing strip file (a rebuilt disk) on the way.
func writeBackStripe(dir string, ds *diskStore, idx int, st *stripe.Stripe) error {
	buf := make([]byte, ds.stripBytes())
	for j := 0; j < ds.mf.N; j++ {
		f, err := os.OpenFile(filepath.Join(dir, diskFileName(j)), os.O_WRONLY|os.O_CREATE, 0o644)
		if err != nil {
			return err
		}
		for i := 0; i < ds.mf.R; i++ {
			copy(buf[i*ds.mf.SectorSize:(i+1)*ds.mf.SectorSize], st.SectorAt(i, j))
		}
		if _, err := f.WriteAt(buf, int64(idx)*int64(ds.stripBytes())); err != nil {
			f.Close()
			return err
		}
		f.Close()
	}
	return nil
}
