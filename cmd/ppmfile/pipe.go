package main

import (
	"context"
	"fmt"
	"io"
	"os"

	"ppm/internal/fault"
	"ppm/internal/pipeline"
	"ppm/internal/stripe"
)

// The ppmfile commands drive the streaming pipeline with these adapters:
// a payload source that lays file bytes into stripe data sectors, a
// strip-store sink/source pair over the per-disk files, and a restore
// sink that writes the recovered payload plus any repaired strips.
// Source methods run on the pipeline's fill goroutine and sink methods
// on the drain goroutine, so each adapter owns its own scratch buffer.

// payloadSource produces exactly `stripes` stripes, laying the reader's
// bytes into the data sectors in index order and zero-padding the tail
// (an empty file still yields one zeroed stripe, matching the manifest).
type payloadSource struct {
	r       io.Reader
	dataPos []int
	stripes int
	eof     bool
}

func (s *payloadSource) Next(idx int, slab *stripe.Stripe) (*stripe.Stripe, error) {
	if idx >= s.stripes {
		return nil, nil
	}
	for _, pos := range s.dataPos {
		sec := slab.Sector(pos)
		if s.eof {
			clear(sec)
			continue
		}
		n, err := io.ReadFull(s.r, sec)
		switch err {
		case nil:
		case io.EOF, io.ErrUnexpectedEOF:
			s.eof = true
			clear(sec[n:])
		default:
			return nil, err
		}
	}
	return slab, nil
}

// storeSink writes encoded stripes strip by strip through a fault.Store
// (the raw diskStore, or a fault-injecting wrapper around it), recording
// each stripe's per-sector checksum row for the manifest as it goes.
// Drain runs strictly in stripe order, so sums[idx] lines up by append.
type storeSink struct {
	store fault.Store
	mf    manifest
	buf   []byte
	sums  [][]uint32
}

func (k *storeSink) Drain(idx int, st *stripe.Stripe) error {
	if k.buf == nil {
		k.buf = make([]byte, k.store.StripBytes())
	}
	sector := k.mf.SectorSize
	for j := 0; j < k.mf.N; j++ {
		for i := 0; i < k.mf.R; i++ {
			copy(k.buf[i*sector:(i+1)*sector], st.SectorAt(i, j))
		}
		if err := k.store.WriteStrip(idx, j, k.buf); err != nil {
			return err
		}
	}
	k.sums = append(k.sums, fault.SectorChecksums(st))
	return nil
}

// storeSource reads stripes back from the strip files (missing disks'
// sectors stay zeroed for the decoder to recover). It is the raw,
// non-healing read path; decode uses healSource instead.
type storeSource struct {
	ds      *diskStore
	stripes int
}

func (s *storeSource) Next(idx int, slab *stripe.Stripe) (*stripe.Stripe, error) {
	if idx >= s.stripes {
		return nil, nil
	}
	if err := s.ds.readStripe(idx, slab); err != nil {
		return nil, err
	}
	return slab, nil
}

// healSource feeds the decode pipeline through a fault.Healer: each
// stripe is read with bounded retries, checksum-verified, and damage
// beyond the baseline (missing disks) is demoted to an erasure and
// re-decoded before the stripe enters the pipeline. Detected corruption
// is forwarded to the engine's StageStats corruption counter.
type healSource struct {
	h       *fault.Healer
	stripes int
	eng     *pipeline.Engine
	ctx     context.Context
	seen    int64 // corruption events already forwarded to eng
}

func (s *healSource) Next(idx int, slab *stripe.Stripe) (*stripe.Stripe, error) {
	if idx >= s.stripes {
		return nil, nil
	}
	if err := s.h.ReadStripe(s.ctx, idx, slab); err != nil {
		return nil, err
	}
	if s.eng != nil {
		now := s.h.Stats.CorruptSectors + s.h.Stats.DemotedStrips
		s.eng.RecordCorruption(int(now - s.seen))
		s.seen = now
	}
	return slab, nil
}

// restoreSink writes the recovered payload to the output file, trimmed
// to the original size, and rebuilds missing strip files in place.
type restoreSink struct {
	out       io.Writer
	dataPos   []int
	remaining int64
	repair    map[int]*os.File // disk -> replacement strip file
	mf        manifest
	buf       []byte // one strip of scratch for repair writes
}

func (k *restoreSink) Drain(idx int, st *stripe.Stripe) error {
	stripBytes := k.mf.R * k.mf.SectorSize
	for j, f := range k.repair {
		if k.buf == nil {
			k.buf = make([]byte, stripBytes)
		}
		for i := 0; i < k.mf.R; i++ {
			copy(k.buf[i*k.mf.SectorSize:(i+1)*k.mf.SectorSize], st.SectorAt(i, j))
		}
		if _, err := f.WriteAt(k.buf, int64(idx)*int64(stripBytes)); err != nil {
			return fmt.Errorf("rebuilding disk %d: %w", j, err)
		}
	}
	for _, pos := range k.dataPos {
		if k.remaining <= 0 {
			return nil
		}
		sec := st.Sector(pos)
		if int64(len(sec)) > k.remaining {
			sec = sec[:k.remaining]
		}
		n, err := k.out.Write(sec)
		k.remaining -= int64(n)
		if err != nil {
			return err
		}
	}
	return nil
}
