package main

import (
	"fmt"
	"io"
	"os"

	"ppm/internal/stripe"
)

// The ppmfile commands drive the streaming pipeline with these adapters:
// a payload source that lays file bytes into stripe data sectors, a
// strip-store sink/source pair over the per-disk files, and a restore
// sink that writes the recovered payload plus any repaired strips.
// Source methods run on the pipeline's fill goroutine and sink methods
// on the drain goroutine, so each adapter owns its own scratch buffer.

// payloadSource produces exactly `stripes` stripes, laying the reader's
// bytes into the data sectors in index order and zero-padding the tail
// (an empty file still yields one zeroed stripe, matching the manifest).
type payloadSource struct {
	r       io.Reader
	dataPos []int
	stripes int
	eof     bool
}

func (s *payloadSource) Next(idx int, slab *stripe.Stripe) (*stripe.Stripe, error) {
	if idx >= s.stripes {
		return nil, nil
	}
	for _, pos := range s.dataPos {
		sec := slab.Sector(pos)
		if s.eof {
			clear(sec)
			continue
		}
		n, err := io.ReadFull(s.r, sec)
		switch err {
		case nil:
		case io.EOF, io.ErrUnexpectedEOF:
			s.eof = true
			clear(sec[n:])
		default:
			return nil, err
		}
	}
	return slab, nil
}

// storeSink writes encoded stripes to the strip files.
type storeSink struct{ ds *diskStore }

func (k *storeSink) Drain(idx int, st *stripe.Stripe) error {
	return k.ds.writeStripe(idx, st)
}

// storeSource reads stripes back from the strip files (missing disks'
// sectors stay zeroed for the decoder to recover).
type storeSource struct {
	ds      *diskStore
	stripes int
}

func (s *storeSource) Next(idx int, slab *stripe.Stripe) (*stripe.Stripe, error) {
	if idx >= s.stripes {
		return nil, nil
	}
	if err := s.ds.readStripe(idx, slab); err != nil {
		return nil, err
	}
	return slab, nil
}

// restoreSink writes the recovered payload to the output file, trimmed
// to the original size, and rebuilds missing strip files in place.
type restoreSink struct {
	out       io.Writer
	dataPos   []int
	remaining int64
	repair    map[int]*os.File // disk -> replacement strip file
	mf        manifest
	buf       []byte // one strip of scratch for repair writes
}

func (k *restoreSink) Drain(idx int, st *stripe.Stripe) error {
	stripBytes := k.mf.R * k.mf.SectorSize
	for j, f := range k.repair {
		if k.buf == nil {
			k.buf = make([]byte, stripBytes)
		}
		for i := 0; i < k.mf.R; i++ {
			copy(k.buf[i*k.mf.SectorSize:(i+1)*k.mf.SectorSize], st.SectorAt(i, j))
		}
		if _, err := f.WriteAt(k.buf, int64(idx)*int64(stripBytes)); err != nil {
			return fmt.Errorf("rebuilding disk %d: %w", j, err)
		}
	}
	for _, pos := range k.dataPos {
		if k.remaining <= 0 {
			return nil
		}
		sec := st.Sector(pos)
		if int64(len(sec)) > k.remaining {
			sec = sec[:k.remaining]
		}
		n, err := k.out.Write(sec)
		k.remaining -= int64(n)
		if err != nil {
			return err
		}
	}
	return nil
}
