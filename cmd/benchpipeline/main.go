// Command benchpipeline records the multi-stripe pipeline series that
// `make bench-pipeline` tracks across PRs: stripes/s and MB/s for the
// fixed serial per-stripe loop vs the streaming pipeline at 1/2/4/8
// in-flight stripes, across an SD, an LRC and an RS instance, for
// encode and for a two-disk rebuild.
//
// Two storage models run per instance:
//
//   - "mem": source and sink are plain memory copies. This isolates the
//     compute path; on a single-core host the depths tie with serial
//     (there is no second core to shard stripes onto) and the series is
//     informational.
//   - "store": the source and sink sleep a fixed per-stripe latency,
//     modelling a seek/queue-dominated strip store. The pipeline
//     overlaps the read of stripe i+1 and the write of stripe i-1 with
//     the compute of stripe i, so depth>=2 hides one of the two
//     latencies per stripe deterministically, on any core count. This
//     is the series the acceptance gate reads: every store-mode
//     pipeline run at depth>=4 must reach 1.3x the serial loop's
//     throughput, or the command exits 1.
//
// Every run's output is verified byte-identical against the serial
// path's output before its timing is recorded.
//
// Usage:
//
//	benchpipeline [-iters 3] [-payload 4194304] [-lat 1ms] [-gate 1.3] [-o BENCH_pipeline.json]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"ppm/internal/codes"
	"ppm/internal/pipeline"
	"ppm/internal/stripe"
)

type entry struct {
	Instance   string  `json:"instance"`
	Mode       string  `json:"mode"` // "mem" (informational) or "store" (gated)
	Op         string  `json:"op"`   // "encode" or "rebuild"
	Path       string  `json:"path"` // "serial" or "pipeline"
	Depth      int     `json:"depth,omitempty"`
	BestNs     float64 `json:"best_ns"`
	StripesS   float64 `json:"stripes_per_s"`
	MBs        float64 `json:"mb_s"`
	Speedup    float64 `json:"speedup_vs_serial,omitempty"`
	Gated      bool    `json:"gated,omitempty"`
	MeetsFloor bool    `json:"meets_1_3x,omitempty"`
}

type report struct {
	Date         string  `json:"date"`
	GoVersion    string  `json:"go_version"`
	NumCPU       int     `json:"num_cpu"`
	Iters        int     `json:"iters"`
	PayloadBytes int     `json:"payload_bytes"`
	StoreLatency string  `json:"store_latency_per_stripe"`
	GateFloor    float64 `json:"gate_floor"`
	Verified     bool    `json:"outputs_verified_vs_serial"`
	Entries      []entry `json:"entries"`
}

// latency is the simulated per-stripe store cost, paid once per stripe
// read on the fill side and once per stripe write on the drain side.
type latency time.Duration

func (l latency) pay() {
	if l > 0 {
		time.Sleep(time.Duration(l))
	}
}

// encSource lays payload bytes into the slab's data sectors,
// zero-padding past the end, exactly `stripes` stripes.
type encSource struct {
	payload []byte
	data    []int
	stripes int
	off     int
	lat     latency
}

func (s *encSource) Next(idx int, slab *stripe.Stripe) (*stripe.Stripe, error) {
	if idx >= s.stripes {
		return nil, nil
	}
	s.lat.pay()
	for _, pos := range s.data {
		sec := slab.Sector(pos)
		n := copy(sec, s.payload[s.off:])
		clear(sec[n:])
		s.off += n
	}
	return slab, nil
}

// imgSink stores full stripe images at their index offset.
type imgSink struct {
	img         []byte
	stripeBytes int
	sector      int
	lat         latency
}

func (k *imgSink) Drain(idx int, st *stripe.Stripe) error {
	k.lat.pay()
	off := idx * k.stripeBytes
	for i := 0; i < st.TotalSectors(); i++ {
		copy(k.img[off+i*k.sector:], st.Sector(i))
	}
	return nil
}

// imgSource loads full stripe images by index.
type imgSource struct {
	img         []byte
	stripeBytes int
	sector      int
	stripes     int
	lat         latency
}

func (s *imgSource) Next(idx int, slab *stripe.Stripe) (*stripe.Stripe, error) {
	if idx >= s.stripes {
		return nil, nil
	}
	s.lat.pay()
	off := idx * s.stripeBytes
	for i := 0; i < slab.TotalSectors(); i++ {
		copy(slab.Sector(i), s.img[off+i*s.sector:off+(i+1)*s.sector])
	}
	return slab, nil
}

// paySink writes recovered data bytes into out until it is full.
type paySink struct {
	out  []byte
	data []int
	off  int
	lat  latency
}

func (k *paySink) Drain(_ int, st *stripe.Stripe) error {
	k.lat.pay()
	for _, pos := range k.data {
		n := copy(k.out[k.off:], st.Sector(pos))
		k.off += n
	}
	return nil
}

type instance struct {
	name    string
	c       codes.Code
	sc      codes.Scenario // two-disk rebuild scenario
	sector  int
	stripes int
	payload []byte
	golden  []byte // serial-encoded image of payload
	corrupt []byte // golden with the scenario's sectors scribbled
}

const sectorSize = 4096

func buildInstances(payloadBytes int) ([]*instance, error) {
	sd, err := codes.NewSD(8, 16, 2, 2)
	if err != nil {
		return nil, err
	}
	lrc, err := codes.NewLRC(12, 2, 2)
	if err != nil {
		return nil, err
	}
	rs, err := codes.NewRS(10, 16, 2)
	if err != nil {
		return nil, err
	}
	var out []*instance
	for _, it := range []struct {
		name string
		c    codes.Code
	}{
		{"SD(8,16,2,2)", sd}, {"LRC(12,2,2)", lrc}, {"RS(10,16,2)", rs},
	} {
		c := it.c
		var faulty []int
		for row := 0; row < c.NumRows(); row++ {
			for _, d := range []int{0, 2} {
				faulty = append(faulty, row*c.NumStrips()+d)
			}
		}
		sc, err := codes.NewScenario(c, faulty)
		if err != nil {
			return nil, fmt.Errorf("%s rebuild scenario: %w", it.name, err)
		}
		perStripe := len(codes.DataPositions(c)) * sectorSize
		ins := &instance{
			name:    it.name,
			c:       c,
			sc:      sc,
			sector:  sectorSize,
			stripes: (payloadBytes + perStripe - 1) / perStripe,
			payload: make([]byte, payloadBytes),
		}
		rand.New(rand.NewSource(int64(len(it.name)))).Read(ins.payload)
		out = append(out, ins)
	}
	return out, nil
}

func (ins *instance) stripeBytes() int {
	return ins.c.NumStrips() * ins.c.NumRows() * ins.sector
}

// runEncode encodes the payload into a fresh image. depth 0 selects the
// serial loop.
func (ins *instance) runEncode(depth int, lat latency) ([]byte, time.Duration, error) {
	img := make([]byte, ins.stripes*ins.stripeBytes())
	src := &encSource{payload: ins.payload, data: codes.DataPositions(ins.c), stripes: ins.stripes, lat: lat}
	sink := &imgSink{img: img, stripeBytes: ins.stripeBytes(), sector: ins.sector, lat: lat}
	sc := codes.EncodingScenario(ins.c)
	start := time.Now()
	var err error
	if depth == 0 {
		_, err = pipeline.Serial(ins.c, sc, ins.sector, pipeline.Config{}, src, sink)
	} else {
		var eng *pipeline.Engine
		eng, err = pipeline.New(ins.c, sc, ins.sector, pipeline.Config{Depth: depth})
		if err == nil {
			_, err = eng.Run(src, sink)
			eng.Close()
		}
	}
	return img, time.Since(start), err
}

// runRebuild decodes the corrupted image back into a payload buffer.
func (ins *instance) runRebuild(depth int, lat latency) ([]byte, time.Duration, error) {
	out := make([]byte, len(ins.payload))
	src := &imgSource{img: ins.corrupt, stripeBytes: ins.stripeBytes(), sector: ins.sector, stripes: ins.stripes, lat: lat}
	sink := &paySink{out: out, data: codes.DataPositions(ins.c), lat: lat}
	start := time.Now()
	var err error
	if depth == 0 {
		_, err = pipeline.Serial(ins.c, ins.sc, ins.sector, pipeline.Config{}, src, sink)
	} else {
		var eng *pipeline.Engine
		eng, err = pipeline.New(ins.c, ins.sc, ins.sector, pipeline.Config{Depth: depth})
		if err == nil {
			_, err = eng.Run(src, sink)
			eng.Close()
		}
	}
	return out, time.Since(start), err
}

func main() {
	var (
		iters   = flag.Int("iters", 3, "timed runs per series point (best kept)")
		payload = flag.Int("payload", 4<<20+12345, "payload bytes per instance (>= 1 MiB, non-stripe-aligned by default)")
		lat     = flag.Duration("lat", time.Millisecond, "store-mode per-stripe latency, paid per read and per write")
		gate    = flag.Float64("gate", 1.3, "store-mode depth>=4 speedup floor")
		out     = flag.String("o", "BENCH_pipeline.json", "output file")

		traffic         = flag.Bool("traffic", false, "run the simulated-traffic serving comparison instead of the depth series")
		trafficDuration = flag.Duration("traffic-duration", 5*time.Second, "traffic: open-loop arrival window")
		trafficRate     = flag.Float64("traffic-rate", 480, "traffic: mean arrivals per second (default overloads the single engine)")
		trafficStreams  = flag.Int("traffic-streams", 8, "traffic: admission cap on concurrent requests")
		trafficStripes  = flag.Int("traffic-stripes", 4, "traffic: stripes per request object")
		trafficLat      = flag.Duration("traffic-lat", time.Millisecond, "traffic: store latency per stripe, per edge")
		trafficSeed     = flag.Int64("traffic-seed", 1, "traffic: arrival-schedule seed")
		trafficGate     = flag.Float64("traffic-gate", 1.3, "traffic: pool-vs-single aggregate throughput floor (gated at >= 4 streams)")
		trafficOut      = flag.String("traffic-o", "BENCH_traffic.json", "traffic: output file")

		history = flag.String("history", "BENCH_history", "directory for dated report copies (empty disables)")
	)
	flag.Parse()
	if *traffic {
		os.Exit(trafficMain(trafficOptions{
			duration: *trafficDuration,
			rate:     *trafficRate,
			streams:  *trafficStreams,
			stripes:  *trafficStripes,
			lat:      *trafficLat,
			seed:     *trafficSeed,
			gate:     *trafficGate,
			out:      *trafficOut,
			history:  *history,
		}))
	}
	if *payload < 1<<20 {
		fmt.Fprintln(os.Stderr, "benchpipeline: -payload must be at least 1 MiB for the gate to be meaningful")
		os.Exit(1)
	}

	instances, err := buildInstances(*payload)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchpipeline: %v\n", err)
		os.Exit(1)
	}

	rep := report{
		Date:         time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		NumCPU:       runtime.NumCPU(),
		Iters:        *iters,
		PayloadBytes: *payload,
		StoreLatency: lat.String(),
		GateFloor:    *gate,
		Verified:     true,
	}

	// Golden outputs from the zero-latency serial path; every later run
	// must reproduce them byte for byte.
	for _, ins := range instances {
		img, _, err := ins.runEncode(0, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchpipeline: %s golden encode: %v\n", ins.name, err)
			os.Exit(1)
		}
		ins.golden = img
		ins.corrupt = append([]byte(nil), img...)
		sb := ins.stripeBytes()
		for idx := 0; idx < ins.stripes; idx++ {
			for _, f := range ins.sc.Faulty {
				off := idx*sb + f*ins.sector
				rand.New(rand.NewSource(int64(off))).Read(ins.corrupt[off : off+ins.sector])
			}
		}
	}

	fmt.Printf("%-13s %-6s %-8s %-12s %10s %9s %8s\n",
		"instance", "mode", "op", "path", "stripes/s", "MB/s", "speedup")
	var gateFailures []string
	for _, ins := range instances {
		totalBytes := float64(ins.stripes * ins.stripeBytes())
		for _, mode := range []struct {
			name string
			lat  latency
		}{
			{"mem", 0}, {"store", latency(*lat)},
		} {
			for _, op := range []struct {
				name string
				run  func(depth int, lat latency) ([]byte, time.Duration, error)
				want []byte
			}{
				{"encode", ins.runEncode, nil}, // want bound below (golden set above)
				{"rebuild", ins.runRebuild, ins.payload},
			} {
				want := op.want
				if want == nil {
					want = ins.golden
				}
				serialNs := 0.0
				for _, depth := range []int{0, 1, 2, 4, 8} {
					best := time.Duration(0)
					for i := -1; i < *iters; i++ { // one warm-up pass
						got, elapsed, err := op.run(depth, mode.lat)
						if err != nil {
							fmt.Fprintf(os.Stderr, "benchpipeline: %s/%s/%s d=%d: %v\n",
								ins.name, mode.name, op.name, depth, err)
							os.Exit(1)
						}
						if !bytes.Equal(got, want) {
							fmt.Fprintf(os.Stderr, "benchpipeline: %s/%s/%s d=%d: output differs from the serial path\n",
								ins.name, mode.name, op.name, depth)
							os.Exit(1)
						}
						if i >= 0 && (best == 0 || elapsed < best) {
							best = elapsed
						}
					}
					e := entry{
						Instance: ins.name,
						Mode:     mode.name,
						Op:       op.name,
						Depth:    depth,
						BestNs:   float64(best.Nanoseconds()),
						StripesS: float64(ins.stripes) / best.Seconds(),
						MBs:      totalBytes / 1e6 / best.Seconds(),
					}
					if depth == 0 {
						e.Path, e.Depth = "serial", 0
						serialNs = e.BestNs
					} else {
						e.Path = "pipeline"
						e.Speedup = serialNs / e.BestNs
						e.Gated = mode.name == "store" && depth >= 4
						e.MeetsFloor = e.Speedup >= *gate
						if e.Gated && !e.MeetsFloor {
							gateFailures = append(gateFailures, fmt.Sprintf(
								"%s/%s d=%d: %.2fx < %.2fx", ins.name, op.name, depth, e.Speedup, *gate))
						}
					}
					rep.Entries = append(rep.Entries, e)
					label := e.Path
					if e.Path == "pipeline" {
						label = fmt.Sprintf("pipeline d=%d", depth)
					}
					sp := "-"
					if e.Path == "pipeline" {
						sp = fmt.Sprintf("%.2fx", e.Speedup)
					}
					fmt.Printf("%-13s %-6s %-8s %-12s %10.1f %9.1f %8s\n",
						ins.name, mode.name, op.name, label, e.StripesS, e.MBs, sp)
				}
			}
		}
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchpipeline: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchpipeline: %v\n", err)
		os.Exit(1)
	}
	if *history != "" {
		if err := writeHistory(*history, "BENCH_pipeline", rep.Date, append(data, '\n')); err != nil {
			fmt.Fprintf(os.Stderr, "benchpipeline: history: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Printf("wrote %s (%d entries)\n", *out, len(rep.Entries))

	if len(gateFailures) > 0 {
		for _, f := range gateFailures {
			fmt.Fprintf(os.Stderr, "benchpipeline: store-mode gate failure: %s\n", f)
		}
		os.Exit(1)
	}
}

// writeHistory appends a dated copy of a report to dir, mirroring the
// benchkernel convention, so both pipeline series keep a trajectory
// across PRs instead of only the latest overwrite.
func writeHistory(dir, prefix, date string, data []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	stamp := strings.NewReplacer(":", "", "-", "").Replace(date)
	return os.WriteFile(filepath.Join(dir, prefix+"-"+stamp+".json"), data, 0o644)
}
