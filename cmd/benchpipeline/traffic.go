// Simulated-traffic mode: open-loop request arrivals against two
// serving configurations — a single fixed-default engine (requests
// serialise head-to-tail) and an autotuned engine pool (up to PoolSize
// streams overlap their store waits). Each request is a store-backed
// rebuild decode of a fixed multi-stripe object; latency is measured
// from the *scheduled* arrival, so queueing delay under overload is
// visible in the percentiles, and every response is verified against
// the golden payload before it counts.
//
// The arrival schedule is deterministic (seeded exponential
// interarrivals) and identical for both configurations; the default
// rate deliberately exceeds the single engine's service capacity so the
// comparison measures capacity, not idle time. The aggregate-throughput
// ratio gates the run: with an admission cap of >= 4 concurrent
// streams, the autotuned pool must reach `-traffic-gate` (default
// 1.3x) the single engine's aggregate GB/s, or the command exits 1.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"ppm/internal/codes"
	"ppm/internal/pipeline"
	"ppm/internal/tune"
)

type trafficOptions struct {
	duration time.Duration // arrival window
	rate     float64       // mean arrivals per second
	streams  int           // admission cap: concurrent requests in service
	stripes  int           // stripes per request object
	lat      time.Duration // simulated store latency per stripe, per edge
	seed     int64         // arrival-schedule seed
	gate     float64       // pool-vs-single aggregate throughput floor
	out      string        // report path
	history  string        // dated-copy directory (empty disables)
}

type trafficConfigResult struct {
	Name      string  `json:"name"`
	Engines   int     `json:"engines"`
	Depth     int     `json:"depth"`
	Workers   int     `json:"workers"`
	Requests  int     `json:"requests"`
	MakespanS float64 `json:"makespan_s"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	P999Ms    float64 `json:"p999_ms"`
	GBs       float64 `json:"aggregate_gb_s"`

	Stages pipeline.StageStats `json:"stages"`
}

type trafficReport struct {
	Date         string  `json:"date"`
	GoVersion    string  `json:"go_version"`
	NumCPU       int     `json:"num_cpu"`
	Instance     string  `json:"instance"`
	DurationS    float64 `json:"duration_s"`
	RateRps      float64 `json:"rate_rps"`
	Streams      int     `json:"streams"`
	ReqStripes   int     `json:"request_stripes"`
	ReqBytes     int     `json:"request_bytes"`
	StoreLatency string  `json:"store_latency_per_stripe"`
	Seed         int64   `json:"seed"`
	GateFloor    float64 `json:"gate_floor"`
	Gated        bool    `json:"gated"`
	Verified     bool    `json:"responses_verified"`

	Profile *tune.Profile         `json:"tune_profile,omitempty"`
	Configs []trafficConfigResult `json:"configs"`
	Speedup float64               `json:"pool_vs_single_speedup"`
}

// arrivalSchedule returns the deterministic open-loop offsets: seeded
// exponential interarrivals at the mean rate, within the window.
func arrivalSchedule(o trafficOptions) []time.Duration {
	rng := rand.New(rand.NewSource(o.seed))
	var out []time.Duration
	t := time.Duration(0)
	for {
		t += time.Duration(rng.ExpFloat64() * float64(time.Second) / o.rate)
		if t >= o.duration {
			return out
		}
		out = append(out, t)
	}
}

// serveFunc drives one request's stripes through a serving
// configuration.
type serveFunc func(src pipeline.Source, sink pipeline.Sink) error

// runTrafficConfig replays the arrival schedule against serve and
// reports the latency distribution and aggregate throughput.
func runTrafficConfig(ins *instance, o trafficOptions, arrivals []time.Duration, serve serveFunc) (trafficConfigResult, error) {
	sem := make(chan struct{}, o.streams)
	lats := make([]time.Duration, len(arrivals))
	errs := make([]error, len(arrivals))
	var wg sync.WaitGroup
	start := time.Now()
	for i, off := range arrivals {
		time.Sleep(time.Until(start.Add(off)))
		wg.Add(1)
		go func(i int, sched time.Time) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out := make([]byte, len(ins.payload))
			src := &imgSource{img: ins.corrupt, stripeBytes: ins.stripeBytes(), sector: ins.sector,
				stripes: o.stripes, lat: latency(o.lat)}
			sink := &paySink{out: out, data: codes.DataPositions(ins.c), lat: latency(o.lat)}
			if errs[i] = serve(src, sink); errs[i] != nil {
				return
			}
			lats[i] = time.Since(sched)
			if !bytes.Equal(out, ins.payload) {
				errs[i] = errors.New("response payload differs from golden")
			}
		}(i, start.Add(off))
	}
	wg.Wait()
	makespan := time.Since(start)
	for i, err := range errs {
		if err != nil {
			return trafficConfigResult{}, fmt.Errorf("request %d: %w", i, err)
		}
	}

	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	pct := func(p float64) float64 {
		if len(sorted) == 0 {
			return 0
		}
		idx := int(p * float64(len(sorted)-1))
		return float64(sorted[idx]) / 1e6
	}
	reqBytes := o.stripes * ins.stripeBytes()
	return trafficConfigResult{
		Requests:  len(arrivals),
		MakespanS: makespan.Seconds(),
		P50Ms:     pct(0.50),
		P99Ms:     pct(0.99),
		P999Ms:    pct(0.999),
		GBs:       float64(len(arrivals)) * float64(reqBytes) / 1e9 / makespan.Seconds(),
	}, nil
}

// trafficInstance builds the request object: an SD rebuild of
// `stripes` stripes with golden payload and corrupted image prepared.
func trafficInstance(stripes int) (*instance, error) {
	instances, err := buildInstances(1) // stripe counts are overridden below
	if err != nil {
		return nil, err
	}
	ins := instances[0] // SD(8,16,2,2), the paper's lead configuration
	perStripe := len(codes.DataPositions(ins.c)) * ins.sector
	ins.stripes = stripes
	ins.payload = make([]byte, stripes*perStripe)
	rand.New(rand.NewSource(42)).Read(ins.payload)

	img, _, err := ins.runEncode(0, 0)
	if err != nil {
		return nil, fmt.Errorf("golden encode: %w", err)
	}
	ins.golden = img
	ins.corrupt = append([]byte(nil), img...)
	sb := ins.stripeBytes()
	for idx := 0; idx < ins.stripes; idx++ {
		for _, f := range ins.sc.Faulty {
			off := idx*sb + f*ins.sector
			rand.New(rand.NewSource(int64(off))).Read(ins.corrupt[off : off+ins.sector])
		}
	}
	return ins, nil
}

// trafficMain runs the simulated-traffic comparison and returns the
// process exit code.
func trafficMain(o trafficOptions) int {
	ins, err := trafficInstance(o.stripes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchpipeline: traffic: %v\n", err)
		return 1
	}
	arrivals := arrivalSchedule(o)
	if len(arrivals) == 0 {
		fmt.Fprintln(os.Stderr, "benchpipeline: traffic: schedule is empty (raise -traffic-rate or -traffic-duration)")
		return 1
	}

	rep := trafficReport{
		Date:         time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		NumCPU:       runtime.NumCPU(),
		Instance:     ins.name,
		DurationS:    o.duration.Seconds(),
		RateRps:      o.rate,
		Streams:      o.streams,
		ReqStripes:   o.stripes,
		ReqBytes:     o.stripes * ins.stripeBytes(),
		StoreLatency: o.lat.String(),
		Seed:         o.seed,
		GateFloor:    o.gate,
		Gated:        o.streams >= 4,
		Verified:     true,
	}

	// Configuration A: one fixed-default engine; concurrent requests
	// serialise on it (the Engine contract), so the admission cap buys
	// nothing — this is the baseline a naive server runs.
	single, err := pipeline.New(ins.c, ins.sc, ins.sector, pipeline.Config{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchpipeline: traffic: %v\n", err)
		return 1
	}
	var mu sync.Mutex
	singleRes, err := runTrafficConfig(ins, o, arrivals, func(src pipeline.Source, sink pipeline.Sink) error {
		mu.Lock()
		defer mu.Unlock()
		_, err := single.Run(src, sink)
		return err
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchpipeline: traffic: single-default: %v\n", err)
		return 1
	}
	singleRes.Name = "single-default"
	singleRes.Engines = 1
	singleRes.Depth = single.Config().Depth
	singleRes.Workers = single.Config().Workers
	singleRes.Stages = single.StageStats()
	single.Close()

	// Configuration B: the autotuned pool — calibrated knobs, PoolSize
	// engines, store waits overlapping across checked-out engines.
	rep.Profile, err = tune.Get()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchpipeline: traffic: calibrate: %v\n", err)
		return 1
	}
	pool, err := pipeline.NewPool(ins.c, ins.sc, ins.sector, 0, pipeline.Config{Auto: true})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchpipeline: traffic: %v\n", err)
		return 1
	}
	poolRes, err := runTrafficConfig(ins, o, arrivals, func(src pipeline.Source, sink pipeline.Sink) error {
		_, err := pool.Run(src, sink)
		return err
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchpipeline: traffic: pool-autotuned: %v\n", err)
		return 1
	}
	poolRes.Name = "pool-autotuned"
	poolRes.Engines = pool.Size()
	poolRes.Depth = pool.Config().Depth
	poolRes.Workers = pool.Config().Workers
	poolRes.Stages = pool.StageStats()
	pool.Close()

	rep.Configs = []trafficConfigResult{singleRes, poolRes}
	rep.Speedup = poolRes.GBs / singleRes.GBs

	fmt.Printf("traffic: %s, %d requests over %.1fs (rate %.0f/s, %d streams, %d stripes/req, store %s)\n",
		ins.name, len(arrivals), o.duration.Seconds(), o.rate, o.streams, o.stripes, o.lat)
	for _, r := range rep.Configs {
		fmt.Printf("  %-15s engines=%d depth=%d workers=%d  p50=%7.1fms p99=%7.1fms p999=%7.1fms  %.3f GB/s (makespan %.1fs)\n",
			r.Name, r.Engines, r.Depth, r.Workers, r.P50Ms, r.P99Ms, r.P999Ms, r.GBs, r.MakespanS)
	}
	fmt.Printf("  pool-vs-single speedup: %.2fx (gate %.2fx, %s)\n",
		rep.Speedup, o.gate, map[bool]string{true: "gated", false: "informational"}[rep.Gated])

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchpipeline: traffic: %v\n", err)
		return 1
	}
	if err := os.WriteFile(o.out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchpipeline: traffic: %v\n", err)
		return 1
	}
	if o.history != "" {
		if err := writeHistory(o.history, "BENCH_traffic", rep.Date, append(data, '\n')); err != nil {
			fmt.Fprintf(os.Stderr, "benchpipeline: traffic: history: %v\n", err)
			return 1
		}
	}
	fmt.Printf("wrote %s\n", o.out)

	if rep.Gated && rep.Speedup < o.gate {
		fmt.Fprintf(os.Stderr, "benchpipeline: traffic gate failure: pool %.2fx single < %.2fx floor\n",
			rep.Speedup, o.gate)
		return 1
	}
	return 0
}
