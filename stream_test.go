package ppm

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

// streamCodes returns one instance per family the stream API supports.
func streamCodes(t *testing.T) map[string]Code {
	t.Helper()
	sd, err := NewSD(6, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	lrc, err := NewLRC(6, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewRS(8, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Code{"sd": sd, "lrc": lrc, "rs": rs}
}

// streamScenario builds a two-disk-loss scenario for the code.
func streamScenario(t *testing.T, c Code, disks []int) Scenario {
	t.Helper()
	var faulty []int
	for row := 0; row < c.NumRows(); row++ {
		for _, d := range disks {
			faulty = append(faulty, row*c.NumStrips()+d)
		}
	}
	sc, err := NewScenario(c, faulty)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestStreamRoundTripAcrossCodes pins the public stream API: encode a
// payload with a non-stripe-aligned tail, scribble two disks' bytes in
// every stripe image, decode, and require the exact payload back — for
// SD, LRC and RS alike.
func TestStreamRoundTripAcrossCodes(t *testing.T) {
	const sector = 256
	for name, c := range streamCodes(t) {
		t.Run(name, func(t *testing.T) {
			perStripe := len(DataPositions(c)) * sector
			data := make([]byte, perStripe*9+perStripe/3)
			rand.New(rand.NewSource(11)).Read(data)

			var enc bytes.Buffer
			res, err := EncodeStream(c, &enc, bytes.NewReader(data), sector, StreamConfig{Depth: 4})
			if err != nil {
				t.Fatal(err)
			}
			if res.Bytes != int64(len(data)) || res.Stripes != 10 {
				t.Fatalf("encode consumed %d bytes over %d stripes, want %d over 10", res.Bytes, res.Stripes, len(data))
			}

			sc := streamScenario(t, c, []int{0, 2})
			images := enc.Bytes()
			stripeBytes := c.NumStrips() * c.NumRows() * sector
			for off := 0; off < len(images); off += stripeBytes {
				for _, f := range sc.Faulty {
					rand.New(rand.NewSource(int64(off + f))).Read(images[off+f*sector : off+(f+1)*sector])
				}
			}

			var dec bytes.Buffer
			if _, err := DecodeStream(c, &dec, bytes.NewReader(images), sc, int64(len(data)), sector, StreamConfig{Depth: 4}); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(dec.Bytes(), data) {
				t.Fatal("decoded payload differs from the original")
			}
		})
	}
}

// TestBatchMatchesDecoder: EncodeBatch/DecodeBatch produce exactly what
// the per-stripe Decoder produces.
func TestBatchMatchesDecoder(t *testing.T) {
	sd, err := NewSD(8, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	const stripes = 6
	batch := make([]*Stripe, stripes)
	want := make([]*Stripe, stripes)
	for i := range batch {
		st, err := NewStripe(sd.NumStrips(), sd.NumRows(), 512)
		if err != nil {
			t.Fatal(err)
		}
		st.FillDataRandom(int64(i), DataPositions(sd))
		batch[i] = st
		want[i] = st.Clone()
		if err := TraditionalEncode(sd, want[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := EncodeBatch(sd, batch, StreamConfig{Depth: 3}); err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		if !batch[i].Equal(want[i]) {
			t.Fatalf("batch stripe %d differs from the Decoder's encode", i)
		}
	}

	sc := streamScenario(t, sd, []int{1, 5})
	for i, st := range batch {
		st.Scribble(int64(50+i), sc.Faulty)
	}
	if err := DecodeBatch(sd, sc, batch, StreamConfig{Depth: 3}); err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		if !batch[i].Equal(want[i]) {
			t.Fatalf("batch-decoded stripe %d differs from the original", i)
		}
	}
}

// TestConcurrentStreamCodecs runs EncodeStream and DecodeStream
// concurrently on a shared code instance — the -race check for the
// public stream API.
func TestConcurrentStreamCodecs(t *testing.T) {
	sd, err := NewSD(6, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	const sector = 128
	perStripe := len(DataPositions(sd)) * sector
	data := make([]byte, perStripe*5)
	rand.New(rand.NewSource(3)).Read(data)

	var ref bytes.Buffer
	if _, err := EncodeStream(sd, &ref, bytes.NewReader(data), sector, StreamConfig{Depth: 2}); err != nil {
		t.Fatal(err)
	}
	images := ref.Bytes()
	sc := streamScenario(t, sd, []int{3})

	var wg sync.WaitGroup
	errs := make([]error, 6)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				var buf bytes.Buffer
				_, err := EncodeStream(sd, &buf, bytes.NewReader(data), sector, StreamConfig{Depth: 3, Workers: 2})
				if err == nil && !bytes.Equal(buf.Bytes(), images) {
					err = errTestMismatch
				}
				errs[g] = err
			} else {
				var buf bytes.Buffer
				_, err := DecodeStream(sd, &buf, bytes.NewReader(images), sc, int64(len(data)), sector, StreamConfig{Depth: 3, Workers: 2})
				if err == nil && !bytes.Equal(buf.Bytes(), data) {
					err = errTestMismatch
				}
				errs[g] = err
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

var errTestMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "stream output mismatch" }
