// hotalloc: functions (or single statements) annotated //ppm:hotpath
// are steady-state hot paths — the compiled decode, the kernel tile
// loop, the pipeline compute stage. The repository's 0 allocs/op
// regression tests depend on these paths staying allocation-free, so
// hotalloc rejects every construct that allocates (or is overwhelmingly
// likely to): make/new/append, map and slice composite literals,
// taking the address of a composite literal, fmt.* calls, conversions
// that box a concrete value into an interface, goroutine launches, and
// closures that capture variables (per-iteration allocations when the
// captured variable belongs to an enclosing loop).

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc is the hot-path allocation analyzer.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "forbid allocations, fmt calls, interface boxing and capturing closures inside //ppm:hotpath regions",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil && FuncAnnotated(fd, "hotpath") {
				checkHotRegion(pass, fd.Body)
			}
		}
		for _, stmt := range annotatedStmts(pass.Fset, file, "hotpath") {
			checkHotRegion(pass, stmt)
		}
	}
}

// checkHotRegion walks one annotated region and reports allocating
// constructs. Nested function literals are walked too: an allocation
// inside a closure that the hot path calls is still an allocation.
func checkHotRegion(pass *Pass, root ast.Node) {
	// Record the span of every for/range statement in the region so
	// closures can be checked for loop-variable capture.
	type loopSpan struct{ pos, end token.Pos }
	var loops []loopSpan
	ast.Inspect(root, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, loopSpan{n.Pos(), n.End()})
		}
		return true
	})
	capturesLoopVar := func(fl *ast.FuncLit) bool {
		found := false
		ast.Inspect(fl, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || found {
				return !found
			}
			obj := pass.Info.Uses[id]
			if obj == nil || obj.Pos() == token.NoPos {
				return true
			}
			// A loop variable is declared inside a loop's span but
			// outside this closure.
			if obj.Pos() >= fl.Pos() && obj.Pos() < fl.End() {
				return true
			}
			for _, l := range loops {
				if obj.Pos() >= l.pos && obj.Pos() < l.end && fl.Pos() > obj.Pos() {
					found = true
					return false
				}
			}
			return true
		})
		return found
	}

	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "hot path launches a goroutine; move the fan-out outside the //ppm:hotpath region")
		case *ast.FuncLit:
			if capturesLoopVar(n) {
				pass.Reportf(n.Pos(), "closure captures a loop variable: one allocation per iteration in a hot path")
			}
		case *ast.CompositeLit:
			switch pass.Info.Types[n].Type.Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates in a hot path")
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates in a hot path")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&composite literal allocates in a hot path")
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, n)
		}
		return true
	})
}

// checkHotCall flags allocating builtins, fmt.* calls and arguments
// boxed into interface parameters.
func checkHotCall(pass *Pass, call *ast.CallExpr) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := pass.Info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "make allocates in a hot path; use a pooled or preallocated buffer")
				return
			case "new":
				pass.Reportf(call.Pos(), "new allocates in a hot path; use a pooled or preallocated value")
				return
			case "append":
				pass.Reportf(call.Pos(), "append may grow its backing array in a hot path; reserve capacity outside the region")
				return
			}
		}
	case *ast.SelectorExpr:
		if pkgName, ok := pass.Info.Uses[identOf(fun.X)].(*types.PkgName); ok && pkgName.Imported().Path() == "fmt" {
			pass.Reportf(call.Pos(), "fmt.%s allocates and boxes in a hot path", fun.Sel.Name)
			return
		}
	}
	// Conversion to an interface type boxes the operand.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if at := pass.Info.Types[call.Args[0]].Type; at != nil && !types.IsInterface(at) {
				pass.Reportf(call.Pos(), "conversion boxes %s into an interface in a hot path", at)
			}
		}
		return
	}
	// Concrete arguments passed to interface parameters box too. panic
	// is deliberately included: its argument boxes, and a panic in a
	// hot region belongs behind a guard outside it (or a suppression
	// explaining why the cold branch is acceptable).
	sig := callSignature(pass.Info, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // passing an existing slice through ...
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := pass.Info.Types[arg].Type
		if at == nil || types.IsInterface(at) || isUntypedNil(pass.Info, arg) {
			continue
		}
		pass.Reportf(arg.Pos(), "argument boxes %s into interface %s in a hot path", at, pt)
	}
}

// callSignature returns the signature of the called function, including
// the builtin panic (whose parameter is any).
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "panic" {
				any := types.Universe.Lookup("any").Type()
				return types.NewSignatureType(nil, nil, nil,
					types.NewTuple(types.NewVar(token.NoPos, nil, "v", any)), nil, false)
			}
			return nil
		}
	}
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

func isUntypedNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

func identOf(e ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(e).(*ast.Ident)
	return id
}
