// regionargs: argument discipline at region-operation call sites. The
// gf kernels compute dst[i] ^= a*src[i] in word-sized strides and are
// memory-unsafe by construction on aliased or misaligned slices: an
// overlapping dst/src silently corrupts data (the asm kernels read
// ahead of their writes), and a region length that is not a multiple of
// the field's word size would split a word across the boundary. The
// analyzer rejects what it can prove at the call site: syntactically
// aliasing dst/src expressions, constant-length slice arguments whose
// dst and src lengths differ, and — where the receiver's field type is
// statically concrete — constant lengths that are not a multiple of
// that field's word size.

package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// RegionArgs is the region-operation call-site analyzer.
var RegionArgs = &Analyzer{
	Name: "regionargs",
	Doc:  "gf region operations must get non-aliasing, length-matched, word-aligned dst/src arguments",
	Run:  runRegionArgs,
}

// regionOps maps gf method names to the indices of their dst and src
// arguments (srcIdx < 0: the sources are a [][]byte whose elements are
// checked individually when the argument is a slice literal).
var regionOps = map[string]struct{ dst, src int }{
	"MultXORs":      {0, 1},
	"MulRegion":     {0, 1},
	"MultXORsMulti": {0, -1},
	"MultXOR":       {0, -1}, // gf.Multiplier / gf.RowKernel
}

// wordBytesOf maps a concrete gf field implementation (by type name)
// to its word size in bytes. Fixture stubs use the same names.
var wordBytesOf = map[string]int{"field8": 1, "field16": 2, "field32": 4}

func runRegionArgs(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkRegionCall(pass, call)
			return true
		})
	}
}

// isGFMethod reports whether the call is a method from a package named
// gf (the real internal/gf or a fixture stub), returning the method
// name.
func isGFMethod(pass *Pass, call *ast.CallExpr) (string, *ast.SelectorExpr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", nil, false
	}
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "gf" {
		return "", nil, false
	}
	if _, ok := regionOps[fn.Name()]; !ok {
		return "", nil, false
	}
	return fn.Name(), sel, true
}

func checkRegionCall(pass *Pass, call *ast.CallExpr) {
	name, sel, ok := isGFMethod(pass, call)
	if !ok {
		return
	}
	op := regionOps[name]
	if op.dst >= len(call.Args) {
		return
	}
	dst := call.Args[op.dst]

	var srcs []ast.Expr
	if op.src >= 0 {
		if op.src < len(call.Args) {
			srcs = append(srcs, call.Args[op.src])
		}
	} else if len(call.Args) > 1 {
		// The sources argument is a [][]byte; its elements are only
		// checkable when spelled as a slice literal at the call site.
		if lit, ok := ast.Unparen(call.Args[1]).(*ast.CompositeLit); ok {
			srcs = append(srcs, lit.Elts...)
		}
	}

	for _, src := range srcs {
		checkAliasing(pass, name, dst, src)
		checkConstLengths(pass, name, dst, src)
	}
	if wb, ok := receiverWordBytes(pass, sel); ok {
		for _, arg := range append([]ast.Expr{dst}, srcs...) {
			if n, known := constSliceLen(pass, arg); known && n%int64(wb) != 0 {
				pass.Reportf(arg.Pos(), "%s region length %d is not a multiple of the field word size (%d bytes); derive lengths from Field.WordBytes", name, n, wb)
			}
		}
	}
}

// checkAliasing flags dst/src arguments that are provably the same
// memory: syntactically identical expressions, or slice expressions of
// the same base with overlapping constant ranges.
func checkAliasing(pass *Pass, name string, dst, src ast.Expr) {
	if exprKey(dst) == "nil" || exprKey(src) == "nil" {
		return // nil regions are empty: every op is a no-op on them
	}
	ds, dOK := ast.Unparen(dst).(*ast.SliceExpr)
	ss, sOK := ast.Unparen(src).(*ast.SliceExpr)
	if dOK && sOK && exprEqual(ds.X, ss.X) {
		dLo, dHi, dConst := constSliceBounds(pass, ds)
		sLo, sHi, sConst := constSliceBounds(pass, ss)
		if dConst && sConst && (dLo >= sHi || sLo >= dHi) {
			return // disjoint constant ranges of the same base: fine
		}
		pass.Reportf(src.Pos(), "%s dst and src may alias (both slice %s); region operations require non-overlapping regions", name, exprString(pass, ds.X))
		return
	}
	if exprEqual(dst, src) {
		pass.Reportf(src.Pos(), "%s dst and src alias (%s); region operations require non-overlapping regions", name, exprString(pass, dst))
	}
}

// checkConstLengths flags dst/src pairs whose lengths are both known
// constants and differ.
func checkConstLengths(pass *Pass, name string, dst, src ast.Expr) {
	dn, dOK := constSliceLen(pass, dst)
	sn, sOK := constSliceLen(pass, src)
	if dOK && sOK && dn != sn {
		pass.Reportf(src.Pos(), "%s dst length %d != src length %d; regions must be equal-length", name, dn, sn)
	}
}

// receiverWordBytes resolves the static word size of the method
// receiver when its concrete field type is known.
func receiverWordBytes(pass *Pass, sel *ast.SelectorExpr) (int, bool) {
	tv, ok := pass.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return 0, false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return 0, false
	}
	wb, ok := wordBytesOf[named.Obj().Name()]
	return wb, ok
}

// constSliceLen returns the length of arg when it is provable at the
// call site: a slice expression with constant bounds, or a make with a
// constant length.
func constSliceLen(pass *Pass, arg ast.Expr) (int64, bool) {
	switch e := ast.Unparen(arg).(type) {
	case *ast.SliceExpr:
		lo, hi, ok := constSliceBounds(pass, e)
		if !ok {
			return 0, false
		}
		return hi - lo, true
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "make" && len(e.Args) >= 2 {
				if n, ok := constInt(pass, e.Args[1]); ok {
					return n, true
				}
			}
		}
	}
	return 0, false
}

// constSliceBounds returns the constant bounds of a slice expression
// (lo defaults to 0; an open high bound is never constant).
func constSliceBounds(pass *Pass, e *ast.SliceExpr) (lo, hi int64, ok bool) {
	if e.Low == nil {
		lo = 0
	} else if lo, ok = constInt(pass, e.Low); !ok {
		return 0, 0, false
	}
	if e.High == nil {
		return 0, 0, false
	}
	hi, ok = constInt(pass, e.High)
	return lo, hi, ok
}

func constInt(pass *Pass, e ast.Expr) (int64, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	return constant.Int64Val(constant.ToInt(tv.Value))
}

// exprEqual reports whether two expressions are syntactically
// identical (same structure and identifiers) — the conservative
// "provably the same memory" test.
func exprEqual(a, b ast.Expr) bool {
	return exprKey(a) != "" && exprKey(a) == exprKey(b)
}

// exprKey renders a restricted expression grammar (identifiers,
// selectors, index expressions with literal or identifier indices) to a
// comparable string; anything more dynamic renders as "" (not
// comparable, never flagged).
func exprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		x := exprKey(e.X)
		if x == "" {
			return ""
		}
		return x + "." + e.Sel.Name
	case *ast.IndexExpr:
		x, i := exprKey(e.X), exprKey(e.Index)
		if x == "" || i == "" {
			return ""
		}
		return x + "[" + i + "]"
	case *ast.BasicLit:
		return e.Value
	}
	return ""
}

func exprString(pass *Pass, e ast.Expr) string {
	if k := exprKey(e); k != "" {
		return k
	}
	return "expression"
}
