// statsaccount: the figure-regeneration contract. Every nonzero
// coefficient applied to a region is exactly one mult_XORs() — the
// paper's unit of computational cost — and the experiment harness
// compares measured Stats.MultXORs counts against the analytic C1..C4
// formulas. A region-op call path that forgets to tick the counter
// silently skews every regenerated figure, so any function outside
// internal/gf that calls the field primitives directly must either
// account for them (a Stats.AddMultXORs call in the same body) or be
// annotated //ppm:counted <why> naming the caller that accounts.

package lint

import (
	"go/ast"
	"strings"
)

// StatsAccount is the mult_XORs accounting analyzer.
var StatsAccount = &Analyzer{
	Name:  "statsaccount",
	Doc:   "region-op call paths must tick Stats.MultXORs once per paper-cost unit or be annotated //ppm:counted",
	Match: statsAccountMatch,
	Run:   runStatsAccount,
}

// statsAccountMatch skips the gf and xorplan packages themselves (they
// implement the primitives) — everything else that reaches them is in
// scope.
func statsAccountMatch(pkgPath string) bool {
	base := pathBase(pkgPath)
	return base != "gf" && !strings.HasSuffix(base, "gf_test") &&
		base != "xorplan" && !strings.HasSuffix(base, "xorplan_test")
}

func runStatsAccount(pass *Pass) {
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue // tests assert counts; they do not produce figures
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkStatsAccounting(pass, fd)
		}
	}
}

func checkStatsAccounting(pass *Pass, fd *ast.FuncDecl) {
	var firstOp ast.Node
	opName := ""
	accounts := 0
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := regionOpCall(pass, call); ok {
			if firstOp == nil {
				firstOp, opName = call, name
			}
			return true
		}
		if fn := calleeFunc(pass.Info, call); fn != nil && fn.Name() == "AddMultXORs" {
			accounts++
		}
		return true
	})
	if firstOp == nil {
		return
	}
	if accounts == 0 && !FuncAnnotated(fd, "counted") {
		pass.Reportf(firstOp.Pos(),
			"%s performs region operations (%s) without ticking Stats.MultXORs; add stats.AddMultXORs in this function or annotate it //ppm:counted <who accounts>",
			fd.Name.Name, opName)
	}
}

// regionOpCall reports whether the call is a region primitive in scope
// for accounting: a gf region method, or an xorplan compiled-program
// run (each executes the full per-coefficient XOR work of its matrix,
// so a caller owes the same Stats.MultXORs tick the kernels would).
func regionOpCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	if name, _, ok := isGFMethod(pass, call); ok {
		return name, true
	}
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "xorplan" {
		return "", false
	}
	switch fn.Name() {
	case "RunOverwrite", "RunAccumulate":
		return fn.Name(), true
	}
	return "", false
}

// isTestFile reports whether the file is a _test.go file.
func isTestFile(pass *Pass, file *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go")
}
