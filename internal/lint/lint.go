// Package lint is the repository's static-analysis suite: a set of
// analyzers that machine-check the invariants the performance work of
// the last PRs depends on — allocation-free hot paths, goroutine error
// routing, region-operation argument discipline, mult_XORs accounting,
// and no-copy session/arena types.
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// shape (Analyzer, Pass, Diagnostic) but is built entirely on the
// standard library: packages are enumerated with `go list -deps -test
// -export -json`, parsed with go/parser, and type-checked with
// go/types against the compiler's export data, so the suite needs no
// network access and no third-party modules. cmd/ppmlint is the
// multichecker driver; `make lint` wires it into `make check`.
//
// # Annotations
//
// The analyzers understand four comment annotations:
//
//	//ppm:hotpath            — the function (or the single statement the
//	                           comment precedes) is a steady-state hot
//	                           path: hotalloc forbids allocations in it.
//	//ppm:counted <why>      — the function performs region operations
//	                           whose mult_XORs cost is accounted by its
//	                           callers; statsaccount accepts it.
//	//ppm:nocopy             — the type must never be copied by value
//	                           even if it holds no lock field today.
//	//ppm:allow(<name>) why  — suppress analyzer <name> on this line or
//	                           the line below. The reason is mandatory.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //ppm:allow(<name>) suppressions.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Match restricts the analyzer to packages it applies to; nil means
	// every package. It receives the package's import path.
	Match func(pkgPath string) bool
	// Run reports diagnostics for one package through the pass.
	Run func(*Pass)
}

// A Pass is one analyzer applied to one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	// Path is the package's import path as listed (fixture packages use
	// their testdata-relative path).
	Path string
	Info *types.Info

	pkg    *Package
	report func(Diagnostic)
}

// A Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos unless a //ppm:allow(<analyzer>)
// suppression covers that line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if p.pkg != nil && p.pkg.allowed(p.Analyzer.Name, position) {
		return
	}
	p.report(Diagnostic{Pos: position, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// allowRe matches //ppm:allow(name1,name2) optional reason.
var allowRe = regexp.MustCompile(`^//ppm:allow\(([\w,\s]+)\)\s*(.*)$`)

// suppression is one parsed //ppm:allow comment.
type suppression struct {
	names  []string
	reason string
	file   string
	line   int
}

// collectSuppressions parses every //ppm:allow comment in the files.
// Suppressions without a reason are themselves diagnosed by the driver
// (the annotation contract: intentional deviations carry their why).
func collectSuppressions(fset *token.FileSet, files []*ast.File) []suppression {
	var out []suppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				s := suppression{reason: strings.TrimSpace(m[2]), file: pos.Filename, line: pos.Line}
				for _, n := range strings.Split(m[1], ",") {
					if n = strings.TrimSpace(n); n != "" {
						s.names = append(s.names, n)
					}
				}
				out = append(out, s)
			}
		}
	}
	return out
}

// allowed reports whether analyzer name is suppressed at position: a
// //ppm:allow comment on the same line, or alone on the line above.
func (pkg *Package) allowed(name string, pos token.Position) bool {
	for _, s := range pkg.suppressions {
		if s.file != pos.Filename {
			continue
		}
		if s.line != pos.Line && s.line != pos.Line-1 {
			continue
		}
		for _, n := range s.names {
			if n == name {
				return true
			}
		}
	}
	return false
}

// hasAnnotation reports whether the comment group contains a line
// //ppm:<name> (with optional trailing text).
func hasAnnotation(cg *ast.CommentGroup, name string) bool {
	if cg == nil {
		return false
	}
	prefix := "//ppm:" + name
	for _, c := range cg.List {
		t := c.Text
		if t == prefix || strings.HasPrefix(t, prefix+" ") || strings.HasPrefix(t, prefix+"\t") {
			return true
		}
	}
	return false
}

// FuncAnnotated reports whether the function declaration carries the
// //ppm:<name> annotation in its doc comment.
func FuncAnnotated(decl *ast.FuncDecl, name string) bool {
	return hasAnnotation(decl.Doc, name)
}

// annotatedStmts returns the statements (and their enclosing file) that
// a //ppm:<name> comment immediately precedes, for block-scoped
// annotations like marking just the steady-state loop of a function.
func annotatedStmts(fset *token.FileSet, file *ast.File, name string) []ast.Stmt {
	prefix := "//ppm:" + name
	lines := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			t := c.Text
			if t == prefix || strings.HasPrefix(t, prefix+" ") || strings.HasPrefix(t, prefix+"\t") {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	if len(lines) == 0 {
		return nil
	}
	var out []ast.Stmt
	ast.Inspect(file, func(n ast.Node) bool {
		s, ok := n.(ast.Stmt)
		if !ok {
			return true
		}
		// A function body's `{` sits on the line after a func-doc
		// annotation; that case belongs to FuncAnnotated, and counting
		// it here would analyze the same body twice.
		if _, isBody := s.(*ast.BlockStmt); isBody {
			return true
		}
		if lines[fset.Position(s.Pos()).Line-1] {
			out = append(out, s)
		}
		return true
	})
	return out
}

// TypeAnnotated reports whether the type spec (or its enclosing GenDecl)
// carries //ppm:<name>.
func typeAnnotated(decl *ast.GenDecl, spec *ast.TypeSpec, name string) bool {
	return hasAnnotation(spec.Doc, name) || hasAnnotation(spec.Comment, name) ||
		(decl != nil && len(decl.Specs) == 1 && hasAnnotation(decl.Doc, name))
}

// RunAnalyzers applies every analyzer to every package and returns the
// diagnostics sorted by position. Reason-less //ppm:allow comments are
// reported as "allow" diagnostics: a suppression must say why.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, s := range pkg.suppressions {
			if s.reason == "" {
				diags = append(diags, Diagnostic{
					Pos:      token.Position{Filename: s.file, Line: s.line, Column: 1},
					Analyzer: "allow",
					Message:  "//ppm:allow suppression is missing its reason",
				})
			}
		}
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Path:     pkg.Path,
				Info:     pkg.Info,
				pkg:      pkg,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return diags
}

// pathBase returns the last element of an import path.
func pathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// calleeFunc resolves the *types.Func a call invokes (method or
// function), or nil for builtins, conversions and func-valued exprs.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
