// Fixture loading and `// want` expectation checking: a small offline
// reimplementation of x/tools' analysistest. Fixture packages live in
// GOPATH-style trees under testdata/src; imports with a single path
// element (like "gf") resolve to sibling fixture directories and are
// type-checked from source, everything else resolves to standard
// library export data produced by one `go list -deps -export` call.

package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// fixtureLoader type-checks packages rooted at a testdata/src tree.
type fixtureLoader struct {
	root string // testdata/src
	fset *token.FileSet

	mu    sync.Mutex
	cache map[string]*Package // fixture path -> package

	stdOnce sync.Once
	stdErr  error
	stdImp  types.Importer
}

// newFixtureLoader returns a loader for fixture packages under root.
func newFixtureLoader(root string) *fixtureLoader {
	return &fixtureLoader{root: root, fset: token.NewFileSet(), cache: map[string]*Package{}}
}

// LoadFixture type-checks the fixture package at rel (a path relative
// to the loader's testdata/src root, e.g. "errflow/kernel").
func (l *fixtureLoader) load(rel string) (*Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.loadLocked(rel)
}

func (l *fixtureLoader) loadLocked(rel string) (*Package, error) {
	if p, ok := l.cache[rel]; ok {
		return p, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint fixture %s: %v", rel, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint fixture %s: no go files", rel)
	}
	pkg, info, err := typeCheck(l.fset, rel, files, fixtureImporter{l})
	if err != nil {
		return nil, fmt.Errorf("lint fixture %s: %v", rel, err)
	}
	p := &Package{
		Path:         rel,
		Dir:          dir,
		Fset:         l.fset,
		Files:        files,
		Types:        pkg,
		Info:         info,
		suppressions: collectSuppressions(l.fset, files),
	}
	l.cache[rel] = p
	return p, nil
}

// std returns an importer over standard-library export data, built
// lazily with one `go list -deps -export -json std` invocation.
func (l *fixtureLoader) std() (types.Importer, error) {
	l.stdOnce.Do(func() {
		cmd := exec.Command("go", "list", "-deps", "-export", "-json=ImportPath,Export", "std")
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			l.stdErr = fmt.Errorf("lint: go list std failed: %v\n%s", err, stderr.String())
			return
		}
		exports := map[string]string{}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				l.stdErr = err
				return
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
		l.stdImp = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
			f, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(f)
		})
	})
	return l.stdImp, l.stdErr
}

// fixtureImporter resolves single-element import paths to sibling
// fixture packages and everything else to the standard library.
type fixtureImporter struct{ l *fixtureLoader }

func (fi fixtureImporter) Import(path string) (*types.Package, error) {
	if !strings.Contains(path, ".") {
		if st, err := os.Stat(filepath.Join(fi.l.root, filepath.FromSlash(path))); err == nil && st.IsDir() {
			p, err := fi.l.loadLocked(path)
			if err != nil {
				return nil, err
			}
			return p.Types, nil
		}
	}
	std, err := fi.l.std()
	if err != nil {
		return nil, err
	}
	return std.Import(path)
}

// wantRe matches one quoted expectation in a `// want` comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one `// want "re"` entry.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// collectWants parses `// want "re" ["re" ...]` comments from the
// package's files.
func collectWants(pkg *Package) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "// want ")
				if i < 0 {
					if i = strings.Index(text, "//want "); i < 0 {
						continue
					}
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(text[i:], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}

// TestingT is the subset of *testing.T the fixture runner needs.
type TestingT interface {
	Helper()
	Errorf(format string, args ...interface{})
	Fatalf(format string, args ...interface{})
}

// RunFixture loads the fixture package at rel under testdata/src (taken
// relative to dir) and checks the analyzer's diagnostics against the
// package's `// want "re"` comments, analysistest-style: every
// diagnostic must match a want on its line, and every want must be
// matched by a diagnostic.
func RunFixture(t TestingT, dir string, a *Analyzer, rel string) {
	t.Helper()
	l := newFixtureLoader(filepath.Join(dir, "testdata", "src"))
	pkg, err := l.load(rel)
	if err != nil {
		t.Fatalf("%v", err)
	}
	if a.Match != nil && !a.Match(pkg.Path) {
		t.Fatalf("analyzer %s does not match fixture package %s; fix the fixture path", a.Name, pkg.Path)
	}
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	wants, err := collectWants(pkg)
	if err != nil {
		t.Fatalf("%v", err)
	}
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	sort.Slice(wants, func(i, j int) bool { return wants[i].line < wants[j].line })
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}
