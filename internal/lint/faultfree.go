// faultfree: //ppm:hotpath regions are the steady-state inner loops —
// the compiled decode, the pipeline compute stage, the pool checkout.
// The fault-injection substrate (ppm/internal/fault) wraps the system
// from outside: stores, sources and sinks at the fill/drain boundary.
// If injection hooks leak into a hot region, the "measured" path is no
// longer the production path — every benchmark and 0 allocs/op claim
// silently includes injection overhead, and a schedule left enabled
// could fire in a latency-critical loop. faultfree rejects any
// reference into the fault package from an annotated region.

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// FaultFree is the hot-path fault-injection exclusion analyzer.
var FaultFree = &Analyzer{
	Name: "faultfree",
	Doc:  "forbid references to the fault-injection package inside //ppm:hotpath regions",
	Run:  runFaultFree,
}

// isFaultPkg reports whether an import path names the fault-injection
// package: the real module path, or the bare single-element path the
// fixture stub resolves to.
func isFaultPkg(path string) bool {
	return path == "fault" || path == "ppm/internal/fault" || strings.HasSuffix(path, "/internal/fault")
}

func runFaultFree(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil && FuncAnnotated(fd, "hotpath") {
				checkFaultFree(pass, fd.Body)
			}
		}
		for _, stmt := range annotatedStmts(pass.Fset, file, "hotpath") {
			checkFaultFree(pass, stmt)
		}
	}
}

// checkFaultFree walks one annotated region and reports every use that
// resolves into the fault package: qualified references (fault.X),
// methods and fields of fault-declared types, and dot-imported or
// aliased names. Each selector reports once, at the expression.
func checkFaultFree(pass *Pass, root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if pn, ok := pass.Info.Uses[identOf(n.X)].(*types.PkgName); ok && isFaultPkg(pn.Imported().Path()) {
				pass.Reportf(n.Pos(), "hot path references %s.%s; fault injection belongs outside //ppm:hotpath regions, at the fill/drain boundary", pathBase(pn.Imported().Path()), n.Sel.Name)
				return false
			}
			if obj := pass.Info.Uses[n.Sel]; obj != nil && obj.Pkg() != nil && isFaultPkg(obj.Pkg().Path()) {
				pass.Reportf(n.Pos(), "hot path uses %s from the fault-injection package; fault injection belongs outside //ppm:hotpath regions", n.Sel.Name)
				return false
			}
		case *ast.Ident:
			obj := pass.Info.Uses[n]
			if obj == nil || obj.Pkg() == nil || !isFaultPkg(obj.Pkg().Path()) {
				return true
			}
			pass.Reportf(n.Pos(), "hot path uses %s from the fault-injection package; fault injection belongs outside //ppm:hotpath regions", n.Name)
		}
		return true
	})
}
