// errflow: the concurrency layer's error contract. Every goroutine
// launched in internal/kernel, internal/decode, internal/pipeline and
// internal/array must route failures back to a joiner — the worker
// pool's lowest-index error slot, a buffered error channel, or an error
// slice indexed by task. The analyzer rejects the ways that contract
// has historically been broken: `go f()` where f returns an error
// nobody can see, `_ =` discards and bare call statements that drop an
// error inside a goroutine, and naked panics in goroutine bodies that
// no recovery wrapper converts into a task error.

package lint

import (
	"go/ast"
	"go/types"
)

// ErrFlow is the goroutine error-routing analyzer.
var ErrFlow = &Analyzer{
	Name:  "errflow",
	Doc:   "goroutines in the concurrency packages must route errors to a joiner; no discards, no naked panics",
	Match: errFlowMatch,
	Run:   runErrFlow,
}

// errFlowScope is the set of packages (by final path element) whose
// goroutines carry the pool's error contract.
var errFlowScope = map[string]bool{"kernel": true, "decode": true, "pipeline": true, "array": true}

func errFlowMatch(pkgPath string) bool { return errFlowScope[pathBase(pkgPath)] }

func runErrFlow(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(pass, gs)
			return true
		})
	}
}

func checkGoStmt(pass *Pass, gs *ast.GoStmt) {
	// `go f(...)` on a function with error results: the results are
	// irretrievably discarded.
	if fl, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		checkGoroutineBody(pass, fl)
		return
	}
	if sig := callSignature(pass.Info, gs.Call); sig != nil && signatureReturnsError(sig) {
		name := "function"
		if fn := calleeFunc(pass.Info, gs.Call); fn != nil {
			name = fn.Name()
		}
		pass.Reportf(gs.Pos(), "go statement discards the error result of %s; wrap it and route the error into a channel or error slot", name)
	}
}

// checkGoroutineBody walks a go-launched function literal for dropped
// errors and unrecovered panics.
func checkGoroutineBody(pass *Pass, fl *ast.FuncLit) {
	recovered := bodyHasRecover(pass, fl.Body)
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // nested closures are not themselves goroutine bodies
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name != "_" {
					continue
				}
				// _ = expr with a single error-typed RHS, or the error
				// position of a multi-value call.
				if errorValueAt(pass.Info, n, i) {
					pass.Reportf(n.Pos(), "goroutine discards an error with _ =; route it into a channel or error slot")
					break
				}
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if sig := callSignature(pass.Info, call); sig != nil && signatureReturnsError(sig) {
					name := "call"
					if fn := calleeFunc(pass.Info, call); fn != nil {
						name = fn.Name()
					}
					pass.Reportf(n.Pos(), "goroutine drops the error result of %s; route it into a channel or error slot", name)
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" && !recovered {
					pass.Reportf(n.Pos(), "naked panic in a goroutine; run the work through the pool's recovery wrapper (kernel.Workers) or recover and route the error")
				}
			}
		}
		return true
	})
}

// bodyHasRecover reports whether the body defers a function that calls
// recover(), i.e. carries its own panic-to-error wrapper.
func bodyHasRecover(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeferStmt)
		if !ok || found {
			return !found
		}
		ast.Inspect(ds.Call, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "recover" {
					found = true
					return false
				}
			}
			return !found
		})
		return !found
	})
	return found
}

// signatureReturnsError reports whether any result of sig is an error.
func signatureReturnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return true
		}
	}
	return false
}

// errorValueAt reports whether position i of the assignment's RHS
// produces an error value.
func errorValueAt(info *types.Info, n *ast.AssignStmt, i int) bool {
	if len(n.Rhs) == len(n.Lhs) {
		return isErrorType(info.Types[n.Rhs[i]].Type)
	}
	// Multi-value: one call on the RHS; find result i.
	if len(n.Rhs) != 1 {
		return false
	}
	call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok && i < tuple.Len() {
		return isErrorType(tuple.At(i).Type())
	}
	return false
}
