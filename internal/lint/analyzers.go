package lint

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{HotAlloc, FaultFree, ErrFlow, RegionArgs, StatsAccount, NoCopyLock}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
