package lint

import (
	"strings"
	"testing"
)

// TestRepositoryIsLintClean runs the full suite over the module — the
// same invocation `make lint` performs — and requires zero findings.
// This keeps `go test ./...` sufficient to catch an invariant
// violation even where ppmlint is not wired into the workflow.
func TestRepositoryIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module load is slow; run without -short")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; loader is dropping targets", len(pkgs))
	}
	diags := RunAnalyzers(pkgs, All())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestLoadIncludesTestFiles pins that the loader folds in-package
// _test.go files into the analyzed package: the error contract must
// hold in bench/harness test code too.
func TestLoadIncludesTestFiles(t *testing.T) {
	if testing.Short() {
		t.Skip("module load is slow; run without -short")
	}
	pkgs, err := Load("../..", "./internal/kernel")
	if err != nil {
		t.Fatalf("loading kernel: %v", err)
	}
	found := false
	for _, p := range pkgs {
		for _, f := range p.Files {
			if strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
				found = true
			}
		}
	}
	if !found {
		t.Error("no _test.go files loaded for internal/kernel")
	}
}
