package lint

import "testing"

// Each analyzer runs against its fixture package under testdata/src,
// analysistest-style: `// want "re"` comments mark the lines that must
// be flagged, everything else must stay silent. Every fixture carries
// at least one flagged and one clean case.

func TestHotAllocFixture(t *testing.T) {
	RunFixture(t, ".", HotAlloc, "hotalloc/a")
}

func TestHotAllocXorplanFixture(t *testing.T) {
	RunFixture(t, ".", HotAlloc, "hotalloc/xp")
}

func TestHotAllocRepairFixture(t *testing.T) {
	RunFixture(t, ".", HotAlloc, "hotalloc/repair")
}

func TestFaultFreeFixture(t *testing.T) {
	RunFixture(t, ".", FaultFree, "faultfree/a")
}

func TestErrFlowFixture(t *testing.T) {
	RunFixture(t, ".", ErrFlow, "errflow/kernel")
}

func TestRegionArgsFixture(t *testing.T) {
	RunFixture(t, ".", RegionArgs, "regionargs/a")
}

func TestStatsAccountFixture(t *testing.T) {
	RunFixture(t, ".", StatsAccount, "statsaccount/a")
}

func TestStatsAccountXorplanFixture(t *testing.T) {
	RunFixture(t, ".", StatsAccount, "statsaccount/xp")
}

func TestStatsAccountRepairFixture(t *testing.T) {
	RunFixture(t, ".", StatsAccount, "statsaccount/repair")
}

// TestStatsAccountScope pins the implementing packages out of scope:
// gf and xorplan provide the primitives, everyone else accounts them.
func TestStatsAccountScope(t *testing.T) {
	for path, want := range map[string]bool{
		"ppm/internal/kernel":  true,
		"ppm/internal/core":    true,
		"ppm/internal/repair":  true,
		"ppm/internal/gf":      false,
		"ppm/internal/xorplan": false,
	} {
		if got := statsAccountMatch(path); got != want {
			t.Errorf("statsAccountMatch(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestNoCopyLockFixture(t *testing.T) {
	RunFixture(t, ".", NoCopyLock, "nocopylock/a")
}

func TestByName(t *testing.T) {
	for _, a := range All() {
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not return the analyzer", a.Name)
		}
	}
	if ByName("nonexistent") != nil {
		t.Error("ByName(nonexistent) should be nil")
	}
}

// TestErrFlowScope pins the package scope: the error contract covers
// the concurrency packages, not the whole module.
func TestErrFlowScope(t *testing.T) {
	for path, want := range map[string]bool{
		"ppm/internal/kernel":   true,
		"ppm/internal/decode":   true,
		"ppm/internal/pipeline": true,
		"ppm/internal/array":    true,
		"ppm/internal/gf":       false,
		"ppm/internal/harness":  false,
	} {
		if got := errFlowMatch(path); got != want {
			t.Errorf("errFlowMatch(%q) = %v, want %v", path, got, want)
		}
	}
}
