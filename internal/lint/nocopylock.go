// nocopylock: `go vet`'s copylocks, extended to the repository's
// session and arena types. The executor sessions, pooled scratch
// buffers, view arenas and pipeline engine circulate through
// sync.Pools and free lists under the assumption that exactly one
// owner holds each value; copying one by value silently forks its
// backing state (or its internal mutex/atomic), which is exactly the
// class of bug the race detector only catches when the copy happens to
// race. A type is no-copy when it (transitively, by value) contains a
// sync or atomic synchronization primitive, a field named noCopy, or
// carries the //ppm:nocopy annotation; the analyzer rejects by-value
// receivers, parameters, results, assignments, range copies and call
// arguments of such types.

package lint

import (
	"go/ast"
	"go/types"
)

// NoCopyLock is the no-copy type analyzer.
var NoCopyLock = &Analyzer{
	Name: "nocopylock",
	Doc:  "session/arena and lock-bearing types must not be copied by value",
	Run:  runNoCopyLock,
}

func runNoCopyLock(pass *Pass) {
	annotated := annotatedNoCopyTypes(pass)
	seen := map[types.Type]bool{}
	isNoCopy := func(t types.Type) bool { return isNoCopyType(t, annotated, seen, 0) }

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFieldListCopies(pass, n.Recv, isNoCopy, "receiver")
				if n.Type.Params != nil {
					checkFieldListCopies(pass, n.Type.Params, isNoCopy, "parameter")
				}
				if n.Type.Results != nil {
					checkFieldListCopies(pass, n.Type.Results, isNoCopy, "result")
				}
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					checkValueCopy(pass, rhs, isNoCopy)
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					checkValueCopy(pass, v, isNoCopy)
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					// A `:=` range value var is a defined ident: its type
					// lives in Info.Defs, which TypeOf consults.
					if t := pass.Info.TypeOf(n.Value); t != nil && isNoCopy(t) {
						pass.Reportf(n.Value.Pos(), "range copies %s by value; iterate with the index or use pointers", t)
					}
				}
			case *ast.CallExpr:
				checkCallArgCopies(pass, n, isNoCopy)
			}
			return true
		})
	}
}

// annotatedNoCopyTypes collects the named types the package marks
// //ppm:nocopy.
func annotatedNoCopyTypes(pass *Pass) map[*types.TypeName]bool {
	out := map[*types.TypeName]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !typeAnnotated(gd, ts, "nocopy") {
					continue
				}
				if tn, ok := pass.Info.Defs[ts.Name].(*types.TypeName); ok {
					out[tn] = true
				}
			}
		}
	}
	return out
}

// isNoCopyType reports whether t must not be copied by value: an
// annotated type, a sync/atomic primitive, a struct with a noCopy
// field, or a struct containing (by value) any of those.
func isNoCopyType(t types.Type, annotated map[*types.TypeName]bool, seen map[types.Type]bool, depth int) bool {
	if t == nil || depth > 10 || seen[t] {
		return false
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if annotated[obj] {
			return true
		}
		if pkg := obj.Pkg(); pkg != nil {
			switch pkg.Path() {
			case "sync":
				switch obj.Name() {
				case "Mutex", "RWMutex", "WaitGroup", "Cond", "Pool", "Map", "Once":
					return true
				}
			case "sync/atomic":
				return true // every sync/atomic type is no-copy
			}
		}
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	seen[t] = true
	defer delete(seen, t)
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "noCopy" {
			return true
		}
		if isNoCopyType(f.Type(), annotated, seen, depth+1) {
			return true
		}
	}
	return false
}

// checkFieldListCopies flags by-value declarations of no-copy types.
func checkFieldListCopies(pass *Pass, fl *ast.FieldList, isNoCopy func(types.Type) bool, kind string) {
	if fl == nil {
		return
	}
	for _, f := range fl.List {
		t := pass.Info.Types[f.Type].Type
		if t == nil {
			continue
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if isNoCopy(t) {
			pass.Reportf(f.Type.Pos(), "%s passes %s by value; use a pointer", kind, t)
		}
	}
}

// checkValueCopy flags RHS expressions that copy a no-copy value:
// dereferences, plain identifier/selector/index reads. Composite
// literals and function calls construct fresh values and are allowed.
func checkValueCopy(pass *Pass, rhs ast.Expr, isNoCopy func(types.Type) bool) {
	e := ast.Unparen(rhs)
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		t := pass.Info.Types[e].Type
		if t != nil && isNoCopy(t) {
			pass.Reportf(rhs.Pos(), "assignment copies %s by value; use a pointer", t)
		}
	}
}

// checkCallArgCopies flags no-copy values passed by value as call
// arguments.
func checkCallArgCopies(pass *Pass, call *ast.CallExpr, isNoCopy func(types.Type) bool) {
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	for _, arg := range call.Args {
		e := ast.Unparen(arg)
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		default:
			continue
		}
		tv, ok := pass.Info.Types[e]
		if !ok || tv.IsType() {
			continue // type argument (new(T), make(T, ...)), not a value
		}
		t := tv.Type
		if t == nil {
			continue
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if isNoCopy(t) {
			pass.Reportf(arg.Pos(), "call copies %s by value; pass a pointer", t)
		}
	}
}
