// Package loading for the lint suite. Instead of depending on
// golang.org/x/tools/go/packages (unavailable offline), Load shells out
// to `go list -deps -test -export -json`, which both enumerates the
// module's packages and compiles export data for every dependency into
// the build cache. Each target package is then parsed with go/parser
// and type-checked with go/types using an importer that reads that
// export data — the exact information the compiler itself uses, with no
// network and no re-typechecking of dependencies from source.

package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	suppressions []suppression
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath   string
	Dir          string
	Name         string
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	ForTest      string
	DepOnly      bool
	Standard     bool
	Incomplete   bool
	Error        *struct{ Err string }
}

// Load lists the patterns in dir and returns every matched module
// package type-checked with its in-package test files, plus a separate
// package per external (_test) test package. Dependencies resolve
// through compiler export data, so Load works fully offline.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-test", "-export", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list failed: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		// Targets are the module packages the patterns matched: not
		// dependency-only, not the synthesized ".test" mains, and not
		// the test-augmented variants (their files are folded into the
		// base package below).
		if !p.DepOnly && !p.Standard && p.ForTest == "" && !strings.HasSuffix(p.ImportPath, ".test") {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", t.ImportPath, t.Error.Err)
		}
		base, err := checkPackage(fset, t.ImportPath, t.Dir,
			append(append([]string{}, t.GoFiles...), t.TestGoFiles...), exports, t.ImportPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, base)
		if len(t.XTestGoFiles) > 0 {
			xt, err := checkPackage(fset, t.ImportPath+"_test", t.Dir, t.XTestGoFiles, exports, t.ImportPath)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, xt)
		}
	}
	return pkgs, nil
}

// checkPackage parses and type-checks one set of files as the package
// at path. basePath is the non-test import path; imports of it (from an
// external test package) resolve to the test-augmented export data when
// present, so _test helpers defined in in-package test files type-check.
func checkPackage(fset *token.FileSet, path, dir string, fileNames []string, exports map[string]string, basePath string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	lookup := func(ipath string) (io.ReadCloser, error) {
		// Prefer the test-augmented variant for imports of the package
		// under test from its external test package.
		if ipath != basePath {
			if f, ok := exports[ipath]; ok {
				return os.Open(f)
			}
			return nil, fmt.Errorf("no export data for %q", ipath)
		}
		if f, ok := exports[ipath+" ["+basePath+".test]"]; ok {
			return os.Open(f)
		}
		if f, ok := exports[ipath]; ok {
			return os.Open(f)
		}
		return nil, fmt.Errorf("no export data for %q", ipath)
	}
	pkg, info, err := typeCheck(fset, path, files, importer.ForCompiler(fset, "gc", lookup))
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	return &Package{
		Path:         path,
		Dir:          dir,
		Fset:         fset,
		Files:        files,
		Types:        pkg,
		Info:         info,
		suppressions: collectSuppressions(fset, files),
	}, nil
}

// typeCheck runs go/types over the files with full use/def/selection
// information recorded.
func typeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}
