// Package a is the faultfree fixture: references into the fault
// package flagged inside //ppm:hotpath regions, and the same
// references accepted outside them.
package a

import (
	"fault"

	fj "fault"
)

// inj lives at package scope; declarations outside hot regions are the
// supported pattern (wrap at setup time, injection-free steady state).
var inj fault.Injector

// hot is a steady-state loop: no fault hooks allowed inside.
//
//ppm:hotpath
func hot(errs []error) int {
	n := 0
	for _, err := range errs {
		if fault.IsTransient(err) { // want "hot path references fault\.IsTransient"
			n++
		}
	}
	if fj.IsTransient(nil) { // want "hot path references fault\.IsTransient"
		n++
	}
	inj.Fire()     // want "hot path uses Fire from the fault-injection package"
	if inj.Armed { // want "hot path uses Armed from the fault-injection package"
		n++
	}
	return n
}

// cold performs the same operations without the annotation: no
// diagnostics.
func cold(err error) bool {
	inj.Fire()
	return fault.IsTransient(err)
}

// stmtLevel exercises the statement-scoped annotation: only the marked
// statement is checked.
func stmtLevel(err error) bool {
	armed := inj.Armed
	//ppm:hotpath
	if fault.IsTransient(err) { // want "hot path references fault\.IsTransient"
		inj.Fire() // want "hot path uses Fire from the fault-injection package"
	}
	return armed
}

// suppressed shows a documented deviation.
//
//ppm:hotpath
func suppressed(err error) bool {
	//ppm:allow(faultfree) cold error-exit branch; classification happens once per failure, not per stripe
	return fault.IsTransient(err)
}
