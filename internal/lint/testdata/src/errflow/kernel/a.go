// Package kernel is the errflow fixture: goroutines in the concurrency
// packages must route their errors to a joiner.
package kernel

import "errors"

var errBoom = errors.New("boom")

func fallible() error { return errBoom }

func twoResults() (int, error) { return 0, errBoom }

// launchDirect drops the error of a directly launched function.
func launchDirect() {
	go fallible() // want "go statement discards the error result of fallible"
}

// launchDiscards drops errors inside the goroutine body.
func launchDiscards() {
	go func() {
		_ = fallible()      // want "goroutine discards an error with _ ="
		fallible()          // want "goroutine drops the error result of fallible"
		_, _ = twoResults() // want "goroutine discards an error with _ ="
	}()
}

// launchPanics panics with no recovery wrapper.
func launchPanics() {
	go func() {
		panic("boom") // want "naked panic in a goroutine"
	}()
}

// launchRouted is the clean pattern: errors land in a buffered channel
// and panics are recovered into it.
func launchRouted() error {
	errc := make(chan error, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				errc <- errBoom
			}
		}()
		errc <- fallible()
	}()
	return <-errc
}

// launchSlotted is the pool pattern: each task writes its own slot.
func launchSlotted() []error {
	errs := make([]error, 2)
	done := make(chan struct{})
	go func() {
		errs[0] = fallible()
		close(done)
	}()
	<-done
	return errs
}

// launchAllowed documents an intentional drop.
func launchAllowed() {
	go func() {
		//ppm:allow(errflow) fire-and-forget cache warm-up; failure only costs latency
		_ = fallible()
	}()
}
