// Package a is the nocopylock fixture: lock-bearing and annotated
// session/arena types must not be copied by value.
package a

import "sync"

// guarded embeds a mutex: no-copy by construction.
type guarded struct {
	mu sync.Mutex
	n  int
}

// session is an arena-style type with no lock field; the annotation
// makes it no-copy.
//
//ppm:nocopy
type session struct {
	views [][]byte
}

// wrapper contains a no-copy struct by value: transitively no-copy.
type wrapper struct {
	g guarded
}

func byValueParam(g guarded) int { // want "parameter passes .*a.guarded by value"
	return g.n
}

func byValueReturn(p *guarded) guarded { // want "result passes .*a.guarded by value"
	g := *p // want "assignment copies .*a.guarded by value"
	return g
}

func (s session) byValueReceiver() int { // want "receiver passes .*a.session by value"
	return len(s.views)
}

func assignment(p *session) {
	s := *p // want "assignment copies .*a.session by value"
	_ = s   // want "assignment copies .*a.session by value"
	q := p  // pointer copy: clean
	_ = q
}

func rangeCopy(ws []wrapper) int {
	total := 0
	for _, w := range ws { // want "range copies .*a.wrapper by value"
		total += w.g.n
	}
	for i := range ws { // index iteration: clean
		total += ws[i].g.n
	}
	return total
}

func callCopy(g guarded, use func(interface{})) { // want "parameter passes .*a.guarded by value"
	use(g) // want "call copies .*a.guarded by value"
}

func construction() *session {
	// Composite literals construct fresh values: clean.
	s := session{views: make([][]byte, 4)}
	return &s
}

func pointers(p *guarded) *guarded {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p
}
