// Package a is the statsaccount fixture: functions that reach the gf
// region primitives must account mult_XORs or declare who does.
package a

import "gf"

// Stats mirrors the kernel's operation counter shape.
type Stats struct{ n int64 }

// AddMultXORs records n operations.
func (s *Stats) AddMultXORs(n int64) { s.n += n }

// accounted ticks the counter in the same body: clean.
func accounted(f gf.Field, dst, src []byte, stats *Stats) {
	f.MultXORs(dst, src, 3)
	stats.AddMultXORs(1)
}

// unaccounted performs a region op and never ticks: flagged.
func unaccounted(f gf.Field, dst, src []byte) {
	f.MultXORs(dst, src, 3) // want "unaccounted performs region operations .MultXORs. without ticking Stats.MultXORs"
}

// counted delegates accounting to its caller, and says so.
//
//ppm:counted accounted-by-caller: the driver adds the full row NNZ once
func counted(f gf.Field, dst []byte, srcs [][]byte, consts []uint32) {
	f.MultXORsMulti(dst, srcs, consts)
}

// noOps never touches a region primitive: out of scope.
func noOps(stats *Stats) {
	stats.AddMultXORs(0)
}
