// Package xp is the statsaccount fixture for the XOR-program backend:
// running a compiled program does the same paper-cost work as the gf
// kernels it replaces, so callers owe the same accounting.
package xp

import "xorplan"

// Stats mirrors the kernel's operation counter shape.
type Stats struct{ n int64 }

// AddMultXORs records n operations.
func (s *Stats) AddMultXORs(n int64) { s.n += n }

// accounted ticks the counter in the same body: clean.
func accounted(p *xorplan.Program, in, out [][]byte, stats *Stats, nnz int64) {
	p.RunOverwrite(in, out, 0, len(out[0]))
	stats.AddMultXORs(nnz)
}

// unaccounted runs a program and never ticks: flagged.
func unaccounted(p *xorplan.Program, in, out [][]byte) {
	p.RunAccumulate(in, out, 0, len(out[0])) // want "unaccounted performs region operations .RunAccumulate. without ticking Stats.MultXORs"
}

// counted delegates accounting to its caller, and says so.
//
//ppm:counted accounted-by-caller: Apply adds the matrix NNZ once per application
func counted(p *xorplan.Program, in, out [][]byte, lo, hi int) {
	p.RunOverwrite(in, out, lo, hi)
}

// noOps never runs a program: out of scope.
func noOps(stats *Stats) {
	stats.AddMultXORs(0)
}
