// Package repair is the statsaccount fixture for the repair planner:
// plan execution delegates accounting to the compiled kernel product,
// but any step that reaches the gf region primitives directly — a
// minimized-row substitution or a delta parity patch — owes the same
// Stats.MultXORs tick the kernels would make.
package repair

import "gf"

// Stats mirrors the kernel's operation counter shape.
type Stats struct{ n int64 }

// AddMultXORs records n operations.
func (s *Stats) AddMultXORs(n int64) { s.n += n }

// deltaPatch folds one parity coefficient into the delta and ticks in
// the same body: clean.
func deltaPatch(f gf.Field, parity, delta []byte, c uint32, stats *Stats) {
	f.MultXORs(parity, delta, c)
	stats.AddMultXORs(1)
}

// substituteRow folds survivor contributions and never ticks: flagged.
func substituteRow(f gf.Field, out []byte, in [][]byte, coeffs []uint32) {
	for i := range in {
		f.MultXORs(out, in[i], coeffs[i]) // want "substituteRow performs region operations .MultXORs. without ticking Stats.MultXORs"
	}
}

// applyStep delegates accounting to the compiled product it stands in
// for, and says so.
//
//ppm:counted accounted-by-kernel: CompiledProductRange ticks the step NNZ internally
func applyStep(f gf.Field, out []byte, in [][]byte, coeffs []uint32) {
	f.MultXORsMulti(out, in, coeffs)
}

// planOnly scores candidate rows without touching a region: out of
// scope.
func planOnly(stats *Stats) {
	stats.AddMultXORs(0)
}
