// Package xorplan is a fixture stub mirroring the compiled XOR-program
// runner in the real internal/xorplan: the statsaccount analyzer
// matches its Run* entry points by package and method name, the same
// way it matches the gf region primitives.
package xorplan

// Program is the stub compiled XOR program.
type Program struct{}

// RunOverwrite executes the program over [lo,hi), overwriting out.
func (p *Program) RunOverwrite(in, out [][]byte, lo, hi int) {}

// RunAccumulate executes the program over [lo,hi), XORing into out.
func (p *Program) RunAccumulate(in, out [][]byte, lo, hi int) {}
