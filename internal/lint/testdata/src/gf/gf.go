// Package gf is a fixture stub mirroring the shape of the real
// internal/gf package: the analyzers match region operations by
// package name and method name, so fixtures exercise them against this
// stub without importing the real module.
package gf

// Field is the stub field interface.
type Field interface {
	WordBytes() int
	MultXORs(dst, src []byte, a uint32)
	MultXORsMulti(dst []byte, srcs [][]byte, consts []uint32)
	MulRegion(dst, src []byte, a uint32)
}

type field16 struct{}

func (field16) WordBytes() int                                           { return 2 }
func (field16) MultXORs(dst, src []byte, a uint32)                       {}
func (field16) MultXORsMulti(dst []byte, srcs [][]byte, consts []uint32) {}
func (field16) MulRegion(dst, src []byte, a uint32)                      {}

// New16 exposes the concrete 16-bit stub field.
func New16() *field16 { return &field16{} }

// RowKernel mirrors the fused row kernel interface.
type RowKernel interface {
	MultXOR(dst []byte, srcs [][]byte)
}
