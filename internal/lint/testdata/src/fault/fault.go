// Package fault is a fixture stub mirroring the shape of the real
// internal/fault package: the faultfree analyzer matches references by
// import path, so fixtures exercise it against this stub without
// importing the real module.
package fault

// IsTransient is the stub of the retry classifier.
func IsTransient(err error) bool { return err != nil }

// Injector is the stub of a per-strip fault injector.
type Injector struct {
	// Armed is the stub of a schedule toggle.
	Armed bool
}

// Fire is the stub of the injection hook.
func (Injector) Fire() {}
