// Package repair is the hotalloc fixture for the repair executor
// idiom: the annotated per-step loop must stay allocation-free by
// reslicing a pooled view arena, while the un-annotated plan builder
// is free to allocate — plans are built once and cached.
package repair

// plan mirrors the shape of a compiled repair plan.
type plan struct{ nviews, sector int }

type runState struct {
	views [][]byte
}

// execute is the cold entry point: arena setup allocates here, outside
// any //ppm:hotpath region, and the pool amortizes it across runs.
func (p *plan) execute(in, out [][]byte, lo, hi int) {
	st := &runState{views: make([][]byte, 0, p.nviews)}
	p.run(st, in, out, lo, hi)
}

// run is the hot loop: taking column views by reslicing the pooled
// arena is fine, growing it is not.
//
//ppm:hotpath
func (p *plan) run(st *runState, in, out [][]byte, lo, hi int) {
	views := st.views[:len(in)]
	for i := range in {
		views[i] = in[i][lo:hi:hi]
	}
	for i := range out {
		copy(out[i][lo:hi], views[i%len(views)])
	}
}

// badRun rebuilds its view arena per step inside the hot region:
// flagged.
//
//ppm:hotpath
func (p *plan) badRun(st *runState, in [][]byte, lo, hi int) {
	st.views = make([][]byte, len(in)) // want "make allocates in a hot path"
	for i := range in {
		st.views = append(st.views, in[i][lo:hi]) // want "append may grow"
	}
}
