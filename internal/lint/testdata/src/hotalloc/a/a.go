// Package a is the hotalloc fixture: flagged allocation constructs in
// //ppm:hotpath regions, and the same constructs unflagged outside
// them.
package a

import "fmt"

var sink interface{}

// hot is a hot path with every forbidden construct.
//
//ppm:hotpath
func hot(dst []byte, srcs [][]byte) {
	buf := make([]byte, 64) // want "make allocates in a hot path"
	buf = append(buf, 1)    // want "append may grow"
	m := map[int]int{}      // want "map literal allocates"
	_ = m
	s := []int{1, 2} // want "slice literal allocates"
	_ = s
	p := &point{1, 2} // want "&composite literal allocates"
	_ = p
	fmt.Println(len(buf))        // want "fmt.Println allocates"
	sink = point{3, 4}           // no report: plain assignment, conversion rules cover calls
	take(point{5, 6})            // want "argument boxes"
	_ = interface{}(point{7, 8}) // want "conversion boxes"
	for i := range srcs {
		f := func() int { return i } // want "closure captures a loop variable"
		_ = f()
	}
	go work() // want "launches a goroutine"
}

// cold performs the same operations without the annotation: no
// diagnostics.
func cold() {
	buf := make([]byte, 64)
	buf = append(buf, 1)
	fmt.Println(len(buf))
}

// stmtLevel exercises the statement-scoped annotation: only the marked
// loop is checked.
func stmtLevel(n int) int {
	extra := make([]int, 4)
	total := 0
	//ppm:hotpath
	for i := 0; i < n; i++ {
		total += len(make([]byte, 8)) // want "make allocates in a hot path"
	}
	return total + len(extra)
}

// suppressed shows a documented deviation.
//
//ppm:hotpath
func suppressed() []byte {
	//ppm:allow(hotalloc) one-time warm-up allocation, amortized across the run
	return make([]byte, 1024)
}

type point struct{ x, y int }

func take(v interface{}) { sink = v }

func work() {}
