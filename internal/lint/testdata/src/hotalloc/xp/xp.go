// Package xp is the hotalloc fixture for the XOR-program executor
// idiom: the annotated run loop must stay allocation-free by reslicing
// pooled backing storage, while the un-annotated exported wrapper is
// free to validate and panic (panic boxes its argument, so it lives
// outside the hot region).
package xp

// program mirrors the shape of a compiled XOR program's executor.
type program struct{ nslots, tile int }

type runState struct {
	backing []byte
	slots   [][]byte
}

// RunOverwrite is the cold entry point: shape checks and their boxing
// panics stay here, outside any //ppm:hotpath region.
func (p *program) RunOverwrite(in, out [][]byte, lo, hi int) {
	if lo < 0 || hi < lo {
		panic("xorplan: bad range")
	}
	st := &runState{backing: make([]byte, p.nslots*p.tile)}
	p.run(st, in, out, lo, hi)
}

// run is the hot loop: reslicing pooled backing is fine, growing it is
// not.
//
//ppm:hotpath
func (p *program) run(st *runState, in, out [][]byte, lo, hi int) {
	for s := 0; s < p.nslots; s++ {
		o := s * p.tile
		st.slots[s] = st.backing[o : o+p.tile : o+p.tile]
	}
	for t := lo; t < hi; t += p.tile {
		_ = st.slots[0][0]
	}
}

// badRun regrows its arena per call inside the hot region: flagged.
//
//ppm:hotpath
func (p *program) badRun(st *runState, lo, hi int) {
	st.backing = make([]byte, p.nslots*p.tile) // want "make allocates in a hot path"
	for t := lo; t < hi; t += p.tile {
		st.slots = append(st.slots, st.backing[t:t+p.tile]) // want "append may grow"
	}
}
