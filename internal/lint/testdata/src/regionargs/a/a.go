// Package a is the regionargs fixture: provable aliasing, length and
// word-size violations at gf region-operation call sites.
package a

import "gf"

var f16 = gf.New16()

func aliasing(buf, other []byte, f gf.Field) {
	f.MultXORs(buf, buf, 3)                                    // want "dst and src alias"
	f.MulRegion(buf, buf, 3)                                   // want "dst and src alias"
	f.MultXORs(buf[0:64], buf[32:96], 3)                       // want "dst and src may alias"
	f.MultXORs(buf[0:64], buf[64:128], 3)                      // disjoint constant ranges: clean
	f.MultXORs(buf, other, 3)                                  // distinct identifiers: clean
	f.MultXORsMulti(buf, [][]byte{other, buf}, []uint32{1, 2}) // want "dst and src alias"
}

func lengths(buf, other []byte, f gf.Field) {
	f.MultXORs(buf[0:64], other[0:32], 3)  // want "dst length 64 != src length 32"
	f.MultXORs(buf[0:64], other[32:96], 3) // equal constant lengths: clean
}

func wordSize(buf, other []byte) {
	f16.MultXORs(buf[0:7], other[8:15], 3)   // want "length 7 is not a multiple" "length 7 is not a multiple"
	f16.MultXORs(buf[0:8], other[8:16], 3)   // multiple of 2: clean
	f16.MultXORs(make([]byte, 10), other, 3) // multiple of 2: clean
	f16.MultXORs(make([]byte, 9), other, 3)  // want "length 9 is not a multiple"
}

func throughInterface(buf, other []byte, f gf.Field) {
	// Word size is unknowable through the interface: never flagged.
	f.MultXORs(buf[0:7], other[0:7], 3)
}
