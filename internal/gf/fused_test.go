package gf

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

// refMultiXOR is the scalar reference for the fused path: one
// word-at-a-time Field.Mul accumulation per nonzero constant, the
// definition MultXORsMulti must match bit for bit.
func refMultiXOR(f Field, dst []byte, srcs [][]byte, consts []uint32) {
	wb := f.WordBytes()
	for k, a := range consts {
		if a == 0 {
			continue
		}
		for i := 0; i+wb <= len(dst); i += wb {
			w := readWord(srcs[k][i:], wb)
			putWord(dst[i:], wb, readWord(dst[i:], wb)^f.Mul(a, w))
		}
	}
}

func readWord(b []byte, wb int) uint32 {
	switch wb {
	case 1:
		return uint32(b[0])
	case 2:
		return uint32(binary.LittleEndian.Uint16(b))
	default:
		return binary.LittleEndian.Uint32(b)
	}
}

func putWord(b []byte, wb int, w uint32) {
	switch wb {
	case 1:
		b[0] = byte(w)
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(w))
	default:
		binary.LittleEndian.PutUint32(b, w)
	}
}

func randConsts(rng *rand.Rand, f Field, n int) []uint32 {
	mask := uint32(f.Order() - 1)
	consts := make([]uint32, n)
	for i := range consts {
		switch rng.Intn(5) {
		case 0:
			consts[i] = 0 // must be skipped
		case 1:
			consts[i] = 1 // plain-XOR lane
		default:
			consts[i] = rng.Uint32() & mask
		}
	}
	return consts
}

func randSrcs(rng *rand.Rand, n, size int) [][]byte {
	srcs := make([][]byte, n)
	for i := range srcs {
		srcs[i] = make([]byte, size)
		rng.Read(srcs[i])
	}
	return srcs
}

// TestMultXORsMultiMatchesScalar: the fused pass equals the scalar
// per-term reference for every field, across term counts that exercise
// batching (beyond maxFusedTerms) and region lengths that exercise the
// scalar tails (0, a single word, 8-byte-loop remainders, and the
// 64-byte affine prefix plus its tail). Runs on both kernel paths.
func TestMultXORsMultiMatchesScalar(t *testing.T) {
	forBothKernelPaths(t, testMultXORsMultiMatchesScalar)
}

func testMultXORsMultiMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for _, f := range []Field{GF8, GF16, GF32} {
		wb := f.WordBytes()
		sizes := []int{0, wb, 8, 8 + wb, 24, 56 + wb, 256, 248 + wb}
		for _, terms := range []int{1, 2, 3, maxFusedTerms, maxFusedTerms + 1, 2*maxFusedTerms + 3} {
			for _, size := range sizes {
				consts := randConsts(rng, f, terms)
				srcs := randSrcs(rng, terms, size)
				dst := make([]byte, size)
				rng.Read(dst)
				want := append([]byte(nil), dst...)

				f.MultXORsMulti(dst, srcs, consts)
				refMultiXOR(f, want, srcs, consts)
				for i := range dst {
					if dst[i] != want[i] {
						t.Fatalf("GF%d terms=%d size=%d: byte %d = %#x want %#x",
							f.W(), terms, size, i, dst[i], want[i])
					}
				}
			}
		}
	}
}

// TestCompileRowMatchesMulti: the compiled row kernel computes the same
// result as the on-the-fly fused call, skips zero coefficients
// (tolerating nil sources in those lanes), and reports the nonzero term
// count. Runs on both kernel paths.
func TestCompileRowMatchesMulti(t *testing.T) {
	forBothKernelPaths(t, testCompileRowMatchesMulti)
}

func testCompileRowMatchesMulti(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	for _, f := range []Field{GF8, GF16, GF32} {
		size := 40 * f.WordBytes()
		consts := randConsts(rng, f, 9)
		consts[0], consts[4], consts[8] = 0, 0, 0
		srcs := randSrcs(rng, 9, size)
		srcs[0], srcs[4], srcs[8] = nil, nil, nil // zero lanes must never be touched

		kern := CompileRow(f, consts)
		nz := 0
		for _, a := range consts {
			if a != 0 {
				nz++
			}
		}
		if kern.Terms() != nz {
			t.Fatalf("GF%d: Terms() = %d, want %d", f.W(), kern.Terms(), nz)
		}

		dst := make([]byte, size)
		rng.Read(dst)
		want := append([]byte(nil), dst...)
		kern.MultXOR(dst, srcs)

		for k, a := range consts {
			if a == 0 {
				continue
			}
			f.MultXORs(want, srcs[k], a)
		}
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("GF%d: byte %d = %#x want %#x", f.W(), i, dst[i], want[i])
			}
		}
	}
}

// TestMultXORsMultiAccumulates: two fused calls accumulate like four
// single-term calls — the ^= contract.
func TestMultXORsMultiAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	f := GF16
	srcs := randSrcs(rng, 2, 32)
	consts := []uint32{0x1234, 0x00FF}
	fused := make([]byte, 32)
	f.MultXORsMulti(fused, srcs, consts)
	f.MultXORsMulti(fused, srcs, consts)
	for i, b := range fused {
		if b != 0 {
			t.Fatalf("double apply did not cancel at byte %d: %#x", i, b)
		}
	}
}

// TestMultXORsMultiMismatchPanics: srcs/consts length disagreement is a
// programming error and must panic, for every field and for compiled
// rows.
func TestMultXORsMultiMismatchPanics(t *testing.T) {
	for _, f := range []Field{GF8, GF16, GF32} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("GF%d: mismatched srcs/consts did not panic", f.W())
				}
			}()
			f.MultXORsMulti(make([]byte, 8), make([][]byte, 2), []uint32{1})
		}()
	}
	kern := CompileRow(GF8, []uint32{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("compiled row with wrong src count did not panic")
		}
	}()
	kern.MultXOR(make([]byte, 8), make([][]byte, 3))
}

// FuzzFusedAgainstScalar drives the fused path with arbitrary constants
// and buffer contents and cross-checks the scalar reference on all
// three fields (the buffer is truncated to each field's word multiple),
// exercising both the affine and the portable table kernels.
func FuzzFusedAgainstScalar(f *testing.F) {
	f.Add(uint32(2), uint32(3), uint32(0x1001), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add(uint32(0), uint32(1), uint32(0xFFFFFFFF), make([]byte, 40))
	f.Add(uint32(0x8001), uint32(0xDEAD), uint32(0xBEEF), []byte{0xFF})
	f.Add(uint32(7), uint32(0x1F0F), uint32(0xA5A5A5A5), make([]byte, 200))

	f.Fuzz(func(t *testing.T, a, b, c uint32, data []byte) {
		for _, affine := range []bool{true, false} {
			prev := SetAffineKernels(affine)
			for _, field := range []Field{GF8, GF16, GF32} {
				wb := field.WordBytes()
				n := len(data) - len(data)%wb
				if n == 0 {
					continue
				}
				mask := uint32(field.Order() - 1)
				consts := []uint32{a & mask, b & mask, c & mask}
				srcs := [][]byte{data[:n], make([]byte, n), make([]byte, n)}
				for i := 0; i < n; i++ {
					srcs[1][i] = byte(i * 7)
					srcs[2][i] = data[n-1-i]
				}
				dst := make([]byte, n)
				copy(dst, data[:n])
				want := append([]byte(nil), dst...)

				field.MultXORsMulti(dst, srcs, consts)
				refMultiXOR(field, want, srcs, consts)
				for i := range dst {
					if dst[i] != want[i] {
						t.Fatalf("GF%d affine=%v: byte %d = %#x want %#x",
							field.W(), affine, i, dst[i], want[i])
					}
				}
			}
			SetAffineKernels(prev)
		}
	})
}
