package gf

import (
	"bytes"
	"testing"
)

// FuzzMulAgainstReference cross-checks every field's multiply against a
// shift-and-add reference for arbitrary operands. (Runs its seed corpus
// under plain `go test`; explore with `go test -fuzz FuzzMul`.)
func FuzzMulAgainstReference(f *testing.F) {
	f.Add(uint32(2), uint32(3))
	f.Add(uint32(0xFF), uint32(0x1D))
	f.Add(uint32(0xFFFF), uint32(0x100B))
	f.Add(uint32(0xFFFFFFFF), uint32(0x400007))

	ref := func(a, b uint32, w int, poly uint32) uint32 {
		var p uint32
		high := uint32(1) << uint(w-1)
		mask := uint32(0xFFFFFFFF)
		if w < 32 {
			mask = (1 << uint(w)) - 1
		}
		a &= mask
		b &= mask
		for b != 0 {
			if b&1 != 0 {
				p ^= a
			}
			b >>= 1
			carry := a&high != 0
			a = (a << 1) & mask
			if carry {
				a ^= poly
			}
		}
		return p
	}

	f.Fuzz(func(t *testing.T, x, y uint32) {
		if got, want := GF8.Mul(x&0xFF, y&0xFF), ref(x, y, 8, poly8&0xFF); got != want {
			t.Fatalf("GF8(%#x,%#x) = %#x want %#x", x&0xFF, y&0xFF, got, want)
		}
		if got, want := GF16.Mul(x&0xFFFF, y&0xFFFF), ref(x, y, 16, poly16&0xFFFF); got != want {
			t.Fatalf("GF16(%#x,%#x) = %#x want %#x", x&0xFFFF, y&0xFFFF, got, want)
		}
		if got, want := GF32.Mul(x, y), ref(x, y, 32, poly32low); got != want {
			t.Fatalf("GF32(%#x,%#x) = %#x want %#x", x, y, got, want)
		}
	})
}

// FuzzRegionOps checks MultXORs against scalar multiplication on
// arbitrary buffers and constants for the widest field.
func FuzzRegionOps(f *testing.F) {
	f.Add(uint32(7), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint32(0xDEADBEEF), bytes.Repeat([]byte{0xAB}, 64))

	f.Fuzz(func(t *testing.T, a uint32, data []byte) {
		n := len(data) &^ 3
		if n == 0 {
			return
		}
		src := data[:n]
		dst := make([]byte, n)
		GF32.MultXORs(dst, src, a)
		for i := 0; i < n; i += 4 {
			word := uint32(src[i]) | uint32(src[i+1])<<8 | uint32(src[i+2])<<16 | uint32(src[i+3])<<24
			want := GF32.Mul(a, word)
			got := uint32(dst[i]) | uint32(dst[i+1])<<8 | uint32(dst[i+2])<<16 | uint32(dst[i+3])<<24
			if got != want {
				t.Fatalf("word %d: got %#x want %#x", i/4, got, want)
			}
		}
	})
}
