//go:build amd64

package gf

import "os"

// affineSupported reports hardware support for the GF2P8AFFINEQB
// region kernels: GFNI plus the AVX-512 subsets they use (F for the
// 512-bit forms, BW/VBMI for VPERMB) and an OS that saves the full
// ZMM + opmask state.
var affineSupported = detectAffine()

// useAffine gates the affine kernels at run time. PPM_NO_GFNI=1 forces
// the portable table kernels, which is how the differential tests
// exercise both paths on capable hardware.
var useAffine = affineSupported && os.Getenv("PPM_NO_GFNI") == ""

// vectorISA is the widest vector-XOR ISA the CPU and OS support; see
// vec.go for the levels and VectorISALevel for the public accessor.
var vectorISA = detectVectorISA()

// cpuidex and xgetbv0 are implemented in cpu_amd64.s.
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

// detectVectorISA probes for the plain vector-XOR levels: AVX-512
// (F + BW, full ZMM/opmask state OS-saved) or AVX2 (YMM state
// OS-saved). Unlike detectAffine it requires no GFNI or VBMI — VPXOR
// predates them by a decade of hardware.
func detectVectorISA() int {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return VecNone
	}
	_, _, c1, _ := cpuidex(1, 0)
	if c1&(1<<27) == 0 { // OSXSAVE: XGETBV available and OS uses XSAVE
		return VecNone
	}
	_, ebx, _, _ := cpuidex(7, 0)
	xlo, _ := xgetbv0()
	const (
		avx2     = 1 << 5
		avx512f  = 1 << 16
		avx512bw = 1 << 30
	)
	if ebx&avx512f != 0 && ebx&avx512bw != 0 && xlo&0xE6 == 0xE6 {
		return VecAVX512
	}
	// XCR0: SSE (1) and AVX (2) state must be OS-enabled for YMM use.
	if ebx&avx2 != 0 && xlo&0x6 == 0x6 {
		return VecAVX2
	}
	return VecNone
}

func detectAffine() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuidex(1, 0)
	if c1&(1<<27) == 0 { // OSXSAVE: XGETBV available and OS uses XSAVE
		return false
	}
	_, ebx, ecx, _ := cpuidex(7, 0)
	const (
		avx512f  = 1 << 16
		avx512bw = 1 << 30
	)
	if ebx&avx512f == 0 || ebx&avx512bw == 0 {
		return false
	}
	const (
		avx512vbmi = 1 << 1
		gfni       = 1 << 8
	)
	if ecx&avx512vbmi == 0 || ecx&gfni == 0 {
		return false
	}
	// XCR0: SSE (1), AVX (2), opmask (5), ZMM0-15 high halves (6),
	// ZMM16-31 (7) must all be OS-enabled.
	xlo, _ := xgetbv0()
	return xlo&0xE6 == 0xE6
}
