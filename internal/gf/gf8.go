package gf

// GF(2^8) with polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D).
//
// Scalar arithmetic uses log/exp tables. Region arithmetic uses the full
// 64 KiB product table: MultXORs slices out the 256-byte row for the
// constant and does one lookup + XOR per byte. This is the table-driven
// stand-in for the paper's SSE shuffle kernel (see DESIGN.md §2).

const poly8 = 0x11D

// GF8 is the GF(2^8) field instance.
var GF8 Field = newField8()

type field8 struct {
	log  [256]uint16 // log[0] unused
	exp  [512]uint8  // doubled to skip the mod (255) in Mul
	prod []uint8     // 256*256 flat product table, prod[a<<8|b] = a*b
	muls [256]multiplier8
}

func newField8() *field8 {
	f := &field8{prod: make([]uint8, 256*256)}
	x := 1
	for i := 0; i < 255; i++ {
		f.exp[i] = uint8(x)
		f.exp[i+255] = uint8(x)
		f.log[x] = uint16(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= poly8
		}
	}
	for a := 1; a < 256; a++ {
		row := f.prod[a<<8 : a<<8+256]
		la := f.log[a]
		for b := 1; b < 256; b++ {
			row[b] = f.exp[la+f.log[b]]
		}
	}
	// All 256 bound multipliers exist up front (each is just a header
	// over the product table plus its affine matrix), so MultiplierFor
	// never allocates at w=8.
	for a := 2; a < 256; a++ {
		f.muls[a] = multiplier8{
			a:   uint32(a),
			row: f.prod[a<<8 : a<<8+256],
			aff: affineMat8(f, uint32(a)),
		}
	}
	return f
}

func (f *field8) W() int         { return 8 }
func (f *field8) WordBytes() int { return 1 }
func (f *field8) Order() uint64  { return 256 }

func (f *field8) Add(a, b uint32) uint32 { return a ^ b }

func (f *field8) Mul(a, b uint32) uint32 {
	return uint32(f.prod[(a&0xFF)<<8|(b&0xFF)])
}

func (f *field8) Inv(a uint32) uint32 {
	if a == 0 {
		panic("gf: inverse of zero in GF(2^8)")
	}
	return uint32(f.exp[255-f.log[a&0xFF]])
}

func (f *field8) Div(a, b uint32) uint32 {
	if b == 0 {
		panic("gf: division by zero in GF(2^8)")
	}
	if a == 0 {
		return 0
	}
	return uint32(f.exp[f.log[a&0xFF]+255-f.log[b&0xFF]])
}

func (f *field8) Exp(a uint32, n int) uint32 {
	return expBySquaring(f, a, n)
}

//ppm:hotpath
func (f *field8) MultXORs(dst, src []byte, a uint32) {
	checkRegions(dst, src, 1)
	switch a & 0xFF {
	case 0:
		return
	case 1:
		xorRegion(dst, src)
		return
	}
	row := f.prod[(a&0xFF)<<8 : (a&0xFF)<<8+256]
	n := len(dst) &^ 3
	for i := 0; i < n; i += 4 {
		d := dst[i : i+4 : i+4]
		s := src[i : i+4 : i+4]
		d[0] ^= row[s[0]]
		d[1] ^= row[s[1]]
		d[2] ^= row[s[2]]
		d[3] ^= row[s[3]]
	}
	for i := n; i < len(dst); i++ {
		dst[i] ^= row[src[i]]
	}
}

//ppm:hotpath
func (f *field8) MulRegion(dst, src []byte, a uint32) {
	checkRegions(dst, src, 1)
	switch a & 0xFF {
	case 0:
		zeroRegion(dst)
		return
	case 1:
		copyRegion(dst, src)
		return
	}
	row := f.prod[(a&0xFF)<<8 : (a&0xFF)<<8+256]
	for i := range dst {
		dst[i] = row[src[i]]
	}
}

// expBySquaring raises a to the n-th power in any Field. Shared by all
// word sizes; n < 0 is rejected because the codes only use nonnegative
// column exponents.
func expBySquaring(f Field, a uint32, n int) uint32 {
	if n < 0 {
		panic("gf: negative exponent")
	}
	result := uint32(1)
	base := a
	for n > 0 {
		if n&1 == 1 {
			result = f.Mul(result, base)
		}
		base = f.Mul(base, base)
		n >>= 1
	}
	return result
}
