//go:build amd64

package gf

// Assembly region kernels (affine_amd64.s). n must be positive and a
// multiple of 64; callers peel the sub-64-byte tail onto the portable
// kernels.
func gf8AffineXorAsm(dst, src *byte, n int, mat uint64)
func gf16AffineXorAsm(dst, src *byte, n int, mats *[2][8]uint64)
func gf32AffineXorAsm(dst, src *byte, n int, mats *[4][8]uint64)
