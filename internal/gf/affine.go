package gf

// Affine lowering of constant multiplication.
//
// Multiplication by a fixed constant a is GF(2)-linear on the w-bit
// word: every output bit is an XOR of input bits. Splitting the w×w
// bit matrix into 8×8 byte blocks A_ij (output byte i from input byte
// j) turns one region multiply into a handful of byte-wise affine
// transforms — exactly the operation the GF2P8AFFINEQB instruction
// evaluates 64 bytes at a time. The builders here encode those blocks
// in the instruction's matrix format; affine_amd64.s consumes them.
// The encoding is portable Go so every platform can build and test it;
// only the consumption is amd64-specific.
//
// GF2P8AFFINEQB matrix format: the 64-bit operand holds 8 row bytes,
// byte 7-t describing output bit t; bit s of that row selects input
// bit s. (Verified against scalar Mul by TestAffineBlocksMatchScalar
// and the differential fuzz target.)

// AffineKernels reports whether the GF2P8AFFINEQB region kernels are
// active: the CPU and OS support them and PPM_NO_GFNI is unset.
func AffineKernels() bool { return useAffine }

// SetAffineKernels enables or disables the affine region kernels and
// returns the previous setting. Enabling is ignored on hardware
// without GFNI/AVX-512 support; the intended uses are benchmarking the
// portable kernels on capable hardware and restoring the detected
// default afterwards:
//
//	defer gf.SetAffineKernels(gf.SetAffineKernels(false))
//
// The switch is not synchronized — do not call it concurrently with
// region operations.
func SetAffineKernels(on bool) (prev bool) {
	prev = useAffine
	useAffine = on && affineSupported
	return prev
}

// mulColumns returns the products a·x^b for b in [0, w): column b of
// the multiplication-by-a bit matrix.
func mulColumns(f Field, a uint32) []uint64 {
	w := f.W()
	cols := make([]uint64, w)
	for b := 0; b < w; b++ {
		cols[b] = uint64(f.Mul(a, uint32(1)<<uint(b)))
	}
	return cols
}

// affineBlock encodes byte block (i, j) of the bit matrix whose
// columns are cols: output bit t of byte i depends on input bit s of
// byte j iff bit 8i+t of cols[8j+s] is set.
func affineBlock(cols []uint64, i, j int) uint64 {
	var q uint64
	for t := 0; t < 8; t++ {
		var row uint64
		for s := 0; s < 8; s++ {
			if cols[8*j+s]>>(uint(8*i+t))&1 != 0 {
				row |= 1 << uint(s)
			}
		}
		q |= row << uint(8*(7-t))
	}
	return q
}

// affineMat8 encodes GF(2^8) multiplication by a as a single affine
// matrix: one GF2P8AFFINEQB covers the whole byte stream.
func affineMat8(f Field, a uint32) uint64 {
	return affineBlock(mulColumns(f, a), 0, 0)
}

// affineMats16 encodes GF(2^16) multiplication by a for the planar
// kernel in affine_amd64.s: the kernel splits each 64-byte vector into
// a low-byte plane (first 32 bytes) and a high-byte plane, so
// mats[0] pairs the in-place blocks [A00 ×4 | A11 ×4] and mats[1] the
// cross blocks [A01 ×4 | A10 ×4] applied to the plane-swapped vector.
func affineMats16(f Field, a uint32) *[2][8]uint64 {
	cols := mulColumns(f, a)
	var m [2][8]uint64
	a00 := affineBlock(cols, 0, 0)
	a01 := affineBlock(cols, 0, 1)
	a10 := affineBlock(cols, 1, 0)
	a11 := affineBlock(cols, 1, 1)
	for k := 0; k < 4; k++ {
		m[0][k] = a00
		m[0][4+k] = a11
		m[1][k] = a01
		m[1][4+k] = a10
	}
	return &m
}

// affineMats32 encodes GF(2^32) multiplication by a for the planar
// kernel: plane i (a 16-byte lane holding byte i of 16 words) sits in
// matrix qwords 2i and 2i+1, and rotation r of the planes pairs plane
// i with input byte (i+r)&3, so mats[r] holds A_{i,(i+r)&3} there.
func affineMats32(f Field, a uint32) *[4][8]uint64 {
	cols := mulColumns(f, a)
	var m [4][8]uint64
	for r := 0; r < 4; r++ {
		for i := 0; i < 4; i++ {
			blk := affineBlock(cols, i, (i+r)&3)
			m[r][2*i] = blk
			m[r][2*i+1] = blk
		}
	}
	return &m
}
