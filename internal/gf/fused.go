package gf

import (
	"encoding/binary"
	"fmt"
)

// Fused region kernels: apply a whole row of coefficients in one pass.
//
// The paper's cost unit is the single-term region operation
// mult_XORs(dst, src, a), and every figure counts those. But executing a
// row of r nonzero coefficients as r independent MultXORs calls loads
// and stores the destination region r times — at multi-megabyte region
// sizes the destination traffic dominates. The fused form streams each
// 64-bit word of dst through *all* of the row's coefficients before
// storing it, so dst is read and written once per row:
//
//	dst traffic:  2*r region passes  ->  2 region passes
//	src traffic:  r passes (unchanged)
//
// This is the operation-fusion idea of Uezato ("Accelerating XOR-based
// Erasure Coding using Program Optimization Techniques", SC'21) applied
// to the table-driven GF kernels. The logical mult_XORs count is
// unchanged: one fused row pass performs exactly the same r region
// operations, and the kernel's Stats still count r.
//
// Two entry points:
//
//   - Field.MultXORsMulti(dst, srcs, consts): resolves each constant's
//     lookup tables on the fly (memoized per field, so resolution is a
//     cache hit after first use). Zero constants are skipped.
//   - CompileRow(f, consts): pre-resolves the tables once, for plans
//     that apply the same row thousands of times. The returned RowKernel
//     is immutable and safe for concurrent use.
//
// Both batch terms in groups of maxFusedTerms so the per-term table
// pointers live in fixed-size stack arrays — no per-call allocation.

// maxFusedTerms is the batch width of the fused loops: a row with more
// nonzero terms reloads dst once per batch, which still divides the
// destination traffic by up to maxFusedTerms compared with the
// term-at-a-time path.
const maxFusedTerms = 16

// RowKernel is a row of coefficients compiled against its lookup
// tables: MultXOR computes dst[i] ^= Σ_k consts[k] * srcs[k][i] with
// every table resolved at compile time. A RowKernel is immutable and
// safe for concurrent use.
type RowKernel interface {
	// Terms returns the number of nonzero coefficients the row applies —
	// the mult_XORs cost of one MultXOR call.
	Terms() int
	// MultXOR applies the row: dst[i] ^= Σ_k a_k * srcs[k][i].
	// len(srcs) must equal the length of the consts slice the row was
	// compiled from; sources at zero-coefficient positions are ignored
	// (and may be nil).
	MultXOR(dst []byte, srcs [][]byte)
}

// CompileRow lowers one coefficient row over the field. Zero constants
// are skipped at compile time; the fused apply touches only the nonzero
// positions of srcs.
func CompileRow(f Field, consts []uint32) RowKernel {
	switch ff := f.(type) {
	case *field8:
		r := &rowKernel8{n: len(consts)}
		for j, a := range consts {
			a &= 0xFF
			switch {
			case a == 0:
			case a == 1:
				r.terms = append(r.terms, term8{idx: j})
			default:
				m := &ff.muls[a]
				r.terms = append(r.terms, term8{idx: j, row: m.row, aff: m.aff})
			}
		}
		return r
	case *field16:
		r := &rowKernel16{n: len(consts)}
		for j, a := range consts {
			a &= 0xFFFF
			switch {
			case a == 0:
			case a == 1:
				r.terms = append(r.terms, term16{idx: j})
			default:
				m := ff.multiplier(a)
				r.terms = append(r.terms, term16{idx: j, t: m.t, aff: m.aff})
			}
		}
		return r
	case field32:
		r := &rowKernel32{n: len(consts)}
		for j, a := range consts {
			switch {
			case a == 0:
			case a == 1:
				r.terms = append(r.terms, term32{idx: j})
			default:
				m := ff.multiplier(a)
				r.terms = append(r.terms, term32{idx: j, t: m.t, aff: m.aff})
			}
		}
		return r
	default:
		// Unknown Field implementation: term-at-a-time fallback.
		r := &rowKernelGeneric{f: f, n: len(consts)}
		for j, a := range consts {
			if a != 0 {
				r.idx = append(r.idx, j)
				r.consts = append(r.consts, a)
			}
		}
		return r
	}
}

// checkFused validates the srcs/consts pairing shared by the fused
// entry points.
func checkFused(nsrcs, nconsts int) {
	if nsrcs != nconsts {
		panic(fmt.Sprintf("gf: fused row has %d sources for %d coefficients", nsrcs, nconsts))
	}
}

// --- GF(2^8) ---

type term8 struct {
	idx int
	row []uint8 // nil: coefficient 1 (plain XOR)
	aff uint64  // affine matrix for the constant
}

type rowKernel8 struct {
	terms []term8
	n     int
}

func (r *rowKernel8) Terms() int { return len(r.terms) }

//ppm:hotpath
func (r *rowKernel8) MultXOR(dst []byte, srcs [][]byte) {
	checkFused(len(srcs), r.n)
	var xs, ts [maxFusedTerms][]byte
	var rows [maxFusedTerms][]uint8
	var affs [maxFusedTerms]uint64
	for i := 0; i < len(r.terms); {
		nx, nt := 0, 0
		for ; i < len(r.terms) && nx+nt < maxFusedTerms; i++ {
			t := r.terms[i]
			s := srcs[t.idx]
			checkRegions(dst, s, 1)
			if t.row == nil {
				xs[nx] = s
				nx++
			} else {
				ts[nt] = s
				rows[nt] = t.row
				affs[nt] = t.aff
				nt++
			}
		}
		fuse8(dst, xs[:nx], ts[:nt], rows[:nt], affs[:nt])
	}
}

//ppm:hotpath
func (f *field8) MultXORsMulti(dst []byte, srcs [][]byte, consts []uint32) {
	checkFused(len(srcs), len(consts))
	var xs, ts [maxFusedTerms][]byte
	var rows [maxFusedTerms][]uint8
	var affs [maxFusedTerms]uint64
	for j := 0; j < len(consts); {
		nx, nt := 0, 0
		for ; j < len(consts) && nx+nt < maxFusedTerms; j++ {
			a := consts[j] & 0xFF
			if a == 0 {
				continue
			}
			s := srcs[j]
			checkRegions(dst, s, 1)
			if a == 1 {
				xs[nx] = s
				nx++
			} else {
				m := &f.muls[a]
				ts[nt] = s
				rows[nt] = m.row
				affs[nt] = m.aff
				nt++
			}
		}
		fuse8(dst, xs[:nx], ts[:nt], rows[:nt], affs[:nt])
	}
}

// fuse8 applies one batch of GF(2^8) terms. With the affine kernels
// available, multiplied terms run one GF2P8AFFINEQB sweep each over the
// 64-byte-aligned prefix — inside the cache-blocked drivers dst stays
// resident across those sweeps — and the table core handles the tail
// plus the fused coefficient-1 XOR pass.
//
//ppm:hotpath
func fuse8(dst []byte, xs, ts [][]byte, rows [][]uint8, affs []uint64) {
	if len(xs) == 0 && len(ts) == 0 {
		return
	}
	if useAffine && len(dst) >= 64 && len(ts) > 0 {
		n64 := len(dst) &^ 63
		for k, s := range ts {
			gf8AffineXorAsm(&dst[0], &s[0], n64, affs[k])
		}
		if n64 < len(dst) {
			for k := range ts {
				ts[k] = ts[k][n64:]
			}
			fuse8Tables(dst[n64:], nil, ts, rows)
		}
		if len(xs) > 0 {
			fuse8Tables(dst, xs, nil, nil)
		}
		return
	}
	fuse8Tables(dst, xs, ts, rows)
}

// fuse8Tables is the portable GF(2^8) fused core:
// dst ^= Σ xs[k] ^ Σ rows[k][ts[k]], eight bytes per destination
// load/store, scalar tail for the last len(dst) % 8 bytes.
//
//ppm:hotpath
func fuse8Tables(dst []byte, xs, ts [][]byte, rows [][]uint8) {
	if len(xs) == 0 && len(ts) == 0 {
		return
	}
	n := len(dst) &^ 7
	for i := 0; i < n; i += 8 {
		acc := binary.LittleEndian.Uint64(dst[i:])
		for _, s := range xs {
			acc ^= binary.LittleEndian.Uint64(s[i:])
		}
		for k, s := range ts {
			row := rows[k]
			v := binary.LittleEndian.Uint64(s[i:])
			acc ^= uint64(row[v&0xFF]) |
				uint64(row[v>>8&0xFF])<<8 |
				uint64(row[v>>16&0xFF])<<16 |
				uint64(row[v>>24&0xFF])<<24 |
				uint64(row[v>>32&0xFF])<<32 |
				uint64(row[v>>40&0xFF])<<40 |
				uint64(row[v>>48&0xFF])<<48 |
				uint64(row[v>>56])<<56
		}
		binary.LittleEndian.PutUint64(dst[i:], acc)
	}
	for i := n; i < len(dst); i++ {
		b := dst[i]
		for _, s := range xs {
			b ^= s[i]
		}
		for k, s := range ts {
			b ^= rows[k][s[i]]
		}
		dst[i] = b
	}
}

// --- GF(2^16) ---

type term16 struct {
	idx int
	t   *[2][256]uint16 // nil: coefficient 1
	aff *[2][8]uint64
}

type rowKernel16 struct {
	terms []term16
	n     int
}

func (r *rowKernel16) Terms() int { return len(r.terms) }

//ppm:hotpath
func (r *rowKernel16) MultXOR(dst []byte, srcs [][]byte) {
	checkFused(len(srcs), r.n)
	var xs, ts [maxFusedTerms][]byte
	var tabs [maxFusedTerms]*[2][256]uint16
	var affs [maxFusedTerms]*[2][8]uint64
	for i := 0; i < len(r.terms); {
		nx, nt := 0, 0
		for ; i < len(r.terms) && nx+nt < maxFusedTerms; i++ {
			t := r.terms[i]
			s := srcs[t.idx]
			checkRegions(dst, s, 2)
			if t.t == nil {
				xs[nx] = s
				nx++
			} else {
				ts[nt] = s
				tabs[nt] = t.t
				affs[nt] = t.aff
				nt++
			}
		}
		fuse16(dst, xs[:nx], ts[:nt], tabs[:nt], affs[:nt])
	}
}

//ppm:hotpath
func (f *field16) MultXORsMulti(dst []byte, srcs [][]byte, consts []uint32) {
	checkFused(len(srcs), len(consts))
	var xs, ts [maxFusedTerms][]byte
	var tabs [maxFusedTerms]*[2][256]uint16
	var affs [maxFusedTerms]*[2][8]uint64
	for j := 0; j < len(consts); {
		nx, nt := 0, 0
		for ; j < len(consts) && nx+nt < maxFusedTerms; j++ {
			a := consts[j] & 0xFFFF
			if a == 0 {
				continue
			}
			s := srcs[j]
			checkRegions(dst, s, 2)
			if a == 1 {
				xs[nx] = s
				nx++
			} else {
				m := f.multiplier(a)
				ts[nt] = s
				tabs[nt] = m.t
				affs[nt] = m.aff
				nt++
			}
		}
		fuse16(dst, xs[:nx], ts[:nt], tabs[:nt], affs[:nt])
	}
}

// fuse16 applies one batch of GF(2^16) terms, preferring the planar
// affine kernel for multiplied terms (see fuse8 for the structure).
//
//ppm:hotpath
func fuse16(dst []byte, xs, ts [][]byte, tabs []*[2][256]uint16, affs []*[2][8]uint64) {
	if len(xs) == 0 && len(ts) == 0 {
		return
	}
	if useAffine && len(dst) >= 64 && len(ts) > 0 {
		n64 := len(dst) &^ 63
		for k, s := range ts {
			gf16AffineXorAsm(&dst[0], &s[0], n64, affs[k])
		}
		if n64 < len(dst) {
			for k := range ts {
				ts[k] = ts[k][n64:]
			}
			fuse16Tables(dst[n64:], nil, ts, tabs)
		}
		if len(xs) > 0 {
			fuse16Tables(dst, xs, nil, nil)
		}
		return
	}
	fuse16Tables(dst, xs, ts, tabs)
}

// fuse16Tables is the portable GF(2^16) fused core: four 16-bit
// symbols per destination load/store, scalar 2-byte-word tail for
// region lengths that are not a multiple of 8.
//
//ppm:hotpath
func fuse16Tables(dst []byte, xs, ts [][]byte, tabs []*[2][256]uint16) {
	if len(xs) == 0 && len(ts) == 0 {
		return
	}
	n := len(dst) &^ 7
	for i := 0; i < n; i += 8 {
		acc := binary.LittleEndian.Uint64(dst[i:])
		for _, s := range xs {
			acc ^= binary.LittleEndian.Uint64(s[i:])
		}
		for k, s := range ts {
			t := tabs[k]
			v := binary.LittleEndian.Uint64(s[i:])
			acc ^= uint64(t[0][v&0xFF]^t[1][v>>8&0xFF]) |
				uint64(t[0][v>>16&0xFF]^t[1][v>>24&0xFF])<<16 |
				uint64(t[0][v>>32&0xFF]^t[1][v>>40&0xFF])<<32 |
				uint64(t[0][v>>48&0xFF]^t[1][v>>56])<<48
		}
		binary.LittleEndian.PutUint64(dst[i:], acc)
	}
	for i := n; i+2 <= len(dst); i += 2 {
		w := binary.LittleEndian.Uint16(dst[i:])
		for _, s := range xs {
			w ^= binary.LittleEndian.Uint16(s[i:])
		}
		for k, s := range ts {
			t := tabs[k]
			v := binary.LittleEndian.Uint16(s[i:])
			w ^= t[0][v&0xFF] ^ t[1][v>>8]
		}
		binary.LittleEndian.PutUint16(dst[i:], w)
	}
}

// --- GF(2^32) ---

type term32 struct {
	idx int
	t   *[4][256]uint32 // nil: coefficient 1
	aff *[4][8]uint64
}

type rowKernel32 struct {
	terms []term32
	n     int
}

func (r *rowKernel32) Terms() int { return len(r.terms) }

//ppm:hotpath
func (r *rowKernel32) MultXOR(dst []byte, srcs [][]byte) {
	checkFused(len(srcs), r.n)
	var xs, ts [maxFusedTerms][]byte
	var tabs [maxFusedTerms]*[4][256]uint32
	var affs [maxFusedTerms]*[4][8]uint64
	for i := 0; i < len(r.terms); {
		nx, nt := 0, 0
		for ; i < len(r.terms) && nx+nt < maxFusedTerms; i++ {
			t := r.terms[i]
			s := srcs[t.idx]
			checkRegions(dst, s, 4)
			if t.t == nil {
				xs[nx] = s
				nx++
			} else {
				ts[nt] = s
				tabs[nt] = t.t
				affs[nt] = t.aff
				nt++
			}
		}
		fuse32(dst, xs[:nx], ts[:nt], tabs[:nt], affs[:nt])
	}
}

//ppm:hotpath
func (f field32) MultXORsMulti(dst []byte, srcs [][]byte, consts []uint32) {
	checkFused(len(srcs), len(consts))
	var xs, ts [maxFusedTerms][]byte
	var tabs [maxFusedTerms]*[4][256]uint32
	var affs [maxFusedTerms]*[4][8]uint64
	for j := 0; j < len(consts); {
		nx, nt := 0, 0
		for ; j < len(consts) && nx+nt < maxFusedTerms; j++ {
			a := consts[j]
			if a == 0 {
				continue
			}
			s := srcs[j]
			checkRegions(dst, s, 4)
			if a == 1 {
				xs[nx] = s
				nx++
			} else {
				m := f.multiplier(a)
				ts[nt] = s
				tabs[nt] = m.t
				affs[nt] = m.aff
				nt++
			}
		}
		fuse32(dst, xs[:nx], ts[:nt], tabs[:nt], affs[:nt])
	}
}

// fuse32 applies one batch of GF(2^32) terms, preferring the planar
// affine kernel for multiplied terms (see fuse8 for the structure).
//
//ppm:hotpath
func fuse32(dst []byte, xs, ts [][]byte, tabs []*[4][256]uint32, affs []*[4][8]uint64) {
	if len(xs) == 0 && len(ts) == 0 {
		return
	}
	if useAffine && len(dst) >= 64 && len(ts) > 0 {
		n64 := len(dst) &^ 63
		for k, s := range ts {
			gf32AffineXorAsm(&dst[0], &s[0], n64, affs[k])
		}
		if n64 < len(dst) {
			for k := range ts {
				ts[k] = ts[k][n64:]
			}
			fuse32Tables(dst[n64:], nil, ts, tabs)
		}
		if len(xs) > 0 {
			fuse32Tables(dst, xs, nil, nil)
		}
		return
	}
	fuse32Tables(dst, xs, ts, tabs)
}

// fuse32Tables is the portable GF(2^32) fused core: two 32-bit symbols
// per destination load/store, scalar 4-byte-word tail.
//
//ppm:hotpath
func fuse32Tables(dst []byte, xs, ts [][]byte, tabs []*[4][256]uint32) {
	if len(xs) == 0 && len(ts) == 0 {
		return
	}
	n := len(dst) &^ 7
	for i := 0; i < n; i += 8 {
		acc := binary.LittleEndian.Uint64(dst[i:])
		for _, s := range xs {
			acc ^= binary.LittleEndian.Uint64(s[i:])
		}
		for k, s := range ts {
			t := tabs[k]
			v := binary.LittleEndian.Uint64(s[i:])
			lo := t[0][v&0xFF] ^ t[1][v>>8&0xFF] ^ t[2][v>>16&0xFF] ^ t[3][v>>24&0xFF]
			hi := t[0][v>>32&0xFF] ^ t[1][v>>40&0xFF] ^ t[2][v>>48&0xFF] ^ t[3][v>>56]
			acc ^= uint64(lo) | uint64(hi)<<32
		}
		binary.LittleEndian.PutUint64(dst[i:], acc)
	}
	for i := n; i+4 <= len(dst); i += 4 {
		w := binary.LittleEndian.Uint32(dst[i:])
		for _, s := range xs {
			w ^= binary.LittleEndian.Uint32(s[i:])
		}
		for k, s := range ts {
			t := tabs[k]
			v := binary.LittleEndian.Uint32(s[i:])
			w ^= t[0][v&0xFF] ^ t[1][(v>>8)&0xFF] ^ t[2][(v>>16)&0xFF] ^ t[3][v>>24]
		}
		binary.LittleEndian.PutUint32(dst[i:], w)
	}
}

// --- generic fallback ---

type rowKernelGeneric struct {
	f      Field
	idx    []int
	consts []uint32
	n      int
}

func (r *rowKernelGeneric) Terms() int { return len(r.idx) }

//ppm:hotpath
func (r *rowKernelGeneric) MultXOR(dst []byte, srcs [][]byte) {
	checkFused(len(srcs), r.n)
	for k, j := range r.idx {
		r.f.MultXORs(dst, srcs[j], r.consts[k])
	}
}
