// Package gf implements arithmetic over the Galois fields GF(2^8),
// GF(2^16) and GF(2^32) that the PPM paper's erasure codes are defined
// over, together with the bulk region operation mult_XORs that the paper
// uses as its unit of computational cost.
//
// All three fields use the standard irreducible polynomials from Plank's
// GF-Complete library so that coefficient tables published for SD codes
// (e.g. SD^{2,2}_{6,4}(8|1,42,26,61)) remain meaningful here:
//
//	w = 8:  x^8  + x^4  + x^3 + x^2 + 1        (0x11D)
//	w = 16: x^16 + x^12 + x^3 + x   + 1        (0x1100B)
//	w = 32: x^32 + x^22 + x^2 + x   + 1        (0x100400007, stored as 0x400007)
//
// The region operation MultXORs(dst, src, a) multiplies every w-bit word
// of src by the constant a and XOR-sums the products into dst. One call
// per nonzero matrix coefficient is exactly the paper's mult_XORs()
// operation, so counting calls reproduces the cost figures C1..C4.
package gf

import (
	"fmt"
)

// Field is w-bit Galois field arithmetic. Scalar values are carried in
// uint32 regardless of w; callers must keep them inside the field
// (values < 2^w). Implementations are safe for concurrent use: all
// mutable state is built once at package init or per call.
type Field interface {
	// W returns the word size in bits (8, 16 or 32).
	W() int
	// WordBytes returns the word size in bytes (1, 2 or 4).
	WordBytes() int
	// Order returns the number of elements in the field as a uint64
	// (2^w), usable for iteration bounds without overflow at w=32.
	Order() uint64

	// Add returns a + b (XOR; identical to subtraction).
	Add(a, b uint32) uint32
	// Mul returns the field product a * b.
	Mul(a, b uint32) uint32
	// Inv returns the multiplicative inverse of a. Inv(0) panics: a zero
	// pivot must be handled by the caller (matrix inversion treats it as
	// a singularity, never as data).
	Inv(a uint32) uint32
	// Div returns a / b. Div by zero panics, as Inv does.
	Div(a, b uint32) uint32
	// Exp returns a raised to the n-th power (n >= 0). Exp(a, 0) == 1
	// for every a, including 0, matching the convention the SD
	// construction relies on (a_0 = 1 gives all-ones rows).
	Exp(a uint32, n int) uint32

	// MultXORs computes dst[i] ^= a * src[i] over w-bit words. It is the
	// paper's mult_XORs(d0, d1, a) primitive. Both slices must have the
	// same length, a multiple of WordBytes. a == 0 is a no-op (callers
	// normally skip zero coefficients; the kernel's operation counter
	// only counts nonzero ones).
	MultXORs(dst, src []byte, a uint32)
	// MultXORsMulti is the fused form of a whole coefficient row:
	// dst[i] ^= Σ_k consts[k] * srcs[k][i], with dst loaded and stored
	// once per batch of terms instead of once per term (see fused.go).
	// len(srcs) must equal len(consts); zero constants are skipped and
	// their source slots ignored. Semantically identical to calling
	// MultXORs once per nonzero constant — and it counts as that many
	// mult_XORs operations.
	MultXORsMulti(dst []byte, srcs [][]byte, consts []uint32)
	// MulRegion computes dst[i] = a * src[i] (overwrite, no XOR).
	MulRegion(dst, src []byte, a uint32)
}

// Supported word sizes in increasing order.
var wordSizes = []int{8, 16, 32}

// ForWord returns the field with the given word size (8, 16 or 32).
func ForWord(w int) (Field, error) {
	switch w {
	case 8:
		return GF8, nil
	case 16:
		return GF16, nil
	case 32:
		return GF32, nil
	}
	return nil, fmt.Errorf("gf: unsupported word size %d (want 8, 16 or 32)", w)
}

// MustForWord is ForWord for compile-time-known word sizes.
func MustForWord(w int) Field {
	f, err := ForWord(w)
	if err != nil {
		panic(err)
	}
	return f
}

// FieldFor returns the smallest supported field whose nonzero-element
// count can index `columns` distinct powers, i.e. columns <= 2^w - 1.
// This mirrors the paper's switching between GF(2^8), GF(2^16) and
// GF(2^32) as n*r grows (the "jagged lines" of Figures 8-10): each
// parity-check column c carries a coefficient a^c, and the powers of a
// primitive element are distinct only up to the multiplicative order
// 2^w - 1.
func FieldFor(columns int) (Field, error) {
	if columns < 0 {
		return nil, fmt.Errorf("gf: negative column count %d", columns)
	}
	for _, w := range wordSizes {
		if uint64(columns) <= (uint64(1)<<uint(w))-1 {
			return MustForWord(w), nil
		}
	}
	return nil, fmt.Errorf("gf: %d columns exceed GF(2^32) capacity", columns)
}

// checkRegions validates a region-op argument pair.
func checkRegions(dst, src []byte, wordBytes int) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("gf: region length mismatch: dst=%d src=%d", len(dst), len(src)))
	}
	if len(dst)%wordBytes != 0 {
		panic(fmt.Sprintf("gf: region length %d is not a multiple of the %d-byte word", len(dst), wordBytes))
	}
}

// xorRegion is the shared a==1 fast path: dst ^= src, eight bytes at a
// time. Region lengths are word-multiples, so the tail loop handles at
// most 7 bytes.
func xorRegion(dst, src []byte) {
	n := len(dst) &^ 7
	for i := 0; i < n; i += 8 {
		d := dst[i : i+8 : i+8]
		s := src[i : i+8 : i+8]
		d[0] ^= s[0]
		d[1] ^= s[1]
		d[2] ^= s[2]
		d[3] ^= s[3]
		d[4] ^= s[4]
		d[5] ^= s[5]
		d[6] ^= s[6]
		d[7] ^= s[7]
	}
	for i := n; i < len(dst); i++ {
		dst[i] ^= src[i]
	}
}

// copyRegion is the MulRegion a==1 fast path.
func copyRegion(dst, src []byte) {
	copy(dst, src)
}

// zeroRegion clears dst (MulRegion with a == 0).
func zeroRegion(dst []byte) {
	for i := range dst {
		dst[i] = 0
	}
}
