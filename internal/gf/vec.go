package gf

// Vector-XOR ISA levels, as detected at process start. The xorplan
// backend's fused XOR kernels dispatch on this: plain 64-bit word XOR,
// 256-bit VPXOR, or 512-bit VPXORQ sweeps. Detection lives here so
// xorplan shares the one CPUID/XGETBV probe with the affine kernels
// instead of growing a second copy of the assembly.
const (
	// VecNone means no usable vector XOR: portable 64-bit word sweeps.
	VecNone = 0
	// VecAVX2 means 256-bit VPXOR with OS-saved YMM state.
	VecAVX2 = 1
	// VecAVX512 means 512-bit VPXORQ with OS-saved ZMM state.
	VecAVX512 = 2
)

// VectorISALevel reports the widest vector-XOR ISA the CPU and OS
// support: VecAVX512, VecAVX2 or VecNone. It reflects hardware only;
// run-time opt-outs (PPM_NO_VEC) are the consumer's business.
func VectorISALevel() int { return vectorISA }
