package gf

import (
	"fmt"
	"math/rand"
	"testing"
)

// Micro-benchmarks for the mult_XORs primitive. Throughput here bounds
// every encode/decode number in the repository, the way GF-Complete's
// SIMD kernels bounded the paper's.

func benchMultXORs(b *testing.B, f Field, size int) {
	rng := rand.New(rand.NewSource(42))
	src := make([]byte, size)
	dst := make([]byte, size)
	rng.Read(src)
	rng.Read(dst)
	a := uint32(0x53) & uint32((f.Order()-1)&0xFFFFFFFF)
	if a <= 1 {
		a = 2
	}
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MultXORs(dst, src, a)
	}
}

func BenchmarkMultXORsGF8_4KiB(b *testing.B)    { benchMultXORs(b, GF8, 4096) }
func BenchmarkMultXORsGF8_128KiB(b *testing.B)  { benchMultXORs(b, GF8, 128<<10) }
func BenchmarkMultXORsGF16_4KiB(b *testing.B)   { benchMultXORs(b, GF16, 4096) }
func BenchmarkMultXORsGF16_128KiB(b *testing.B) { benchMultXORs(b, GF16, 128<<10) }
func BenchmarkMultXORsGF32_4KiB(b *testing.B)   { benchMultXORs(b, GF32, 4096) }
func BenchmarkMultXORsGF32_128KiB(b *testing.B) { benchMultXORs(b, GF32, 128<<10) }

func BenchmarkXORRegion128KiB(b *testing.B) {
	src := make([]byte, 128<<10)
	dst := make([]byte, 128<<10)
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		GF8.MultXORs(dst, src, 1)
	}
}

// BenchmarkGF32TableMemo shows what the split-table memo buys at w=32:
// "rebuilt" is the seed behaviour (1024 scalar carry-less multiplies per
// region op, dominating small regions), "memoized" is the shipped path
// where every constant's tables are built once and shared.
func BenchmarkGF32TableMemo(b *testing.B) {
	rng := rand.New(rand.NewSource(43))
	const a = 0x2B5F17D3
	for _, size := range []int{4096, 128 << 10} {
		src := make([]byte, size)
		dst := make([]byte, size)
		rng.Read(src)
		rng.Read(dst)
		f := GF32.(field32)
		b.Run(fmt.Sprintf("rebuilt_%dKiB", size>>10), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				multXOR32(f.splitTables32(a), dst, src)
			}
		})
		b.Run(fmt.Sprintf("memoized_%dKiB", size>>10), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				f.MultXORs(dst, src, a)
			}
		})
	}
}

func BenchmarkScalarMul(b *testing.B) {
	for _, tf := range testFields {
		tf := tf
		b.Run(tf.name, func(b *testing.B) {
			var acc uint32 = 1
			for i := 0; i < b.N; i++ {
				acc = tf.f.Mul(acc|1, 0x35&tf.mask|1)
			}
			sink = acc
		})
	}
}

var sink uint32
