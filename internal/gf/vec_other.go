//go:build !amd64

package gf

// No vector-XOR kernels off amd64: the portable 64-bit sweeps are the
// only backend.
const vectorISA = VecNone
