package gf

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestMultiplierMatchesMultXORs: every multiplier agrees with the
// field-level region op for random constants and data.
func TestMultiplierMatchesMultXORs(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	for _, tf := range testFields {
		tf := tf
		t.Run(tf.name, func(t *testing.T) {
			n := 64 * tf.f.WordBytes()
			for trial := 0; trial < 20; trial++ {
				a := rng.Uint32() & tf.mask
				src := randRegion(rng, n)
				want := randRegion(rng, n)
				got := append([]byte(nil), want...)

				tf.f.MultXORs(want, src, a)
				m := MultiplierFor(tf.f, a)
				if m.Coefficient() != a {
					t.Fatalf("Coefficient() = %d, want %d", m.Coefficient(), a)
				}
				m.MultXOR(got, src)
				if !bytes.Equal(got, want) {
					t.Fatalf("a=%#x: multiplier disagrees with MultXORs", a)
				}
			}
		})
	}
}

func TestMultiplierSpecialConstants(t *testing.T) {
	rng := rand.New(rand.NewSource(142))
	for _, tf := range testFields {
		n := 16 * tf.f.WordBytes()
		src := randRegion(rng, n)
		dst := randRegion(rng, n)
		before := append([]byte(nil), dst...)

		MultiplierFor(tf.f, 0).MultXOR(dst, src)
		if !bytes.Equal(dst, before) {
			t.Fatalf("%s: zero multiplier modified dst", tf.name)
		}
		MultiplierFor(tf.f, 1).MultXOR(dst, src)
		for i := range dst {
			if dst[i] != before[i]^src[i] {
				t.Fatalf("%s: one multiplier is not XOR", tf.name)
			}
		}
	}
}

// TestMultiplierConcurrent: a shared multiplier is safe under
// concurrent use on disjoint regions (the PPM executor does this).
func TestMultiplierConcurrent(t *testing.T) {
	m := MultiplierFor(GF16, 0x1234)
	src := make([]byte, 1024)
	rand.New(rand.NewSource(143)).Read(src)
	done := make(chan []byte, 8)
	for g := 0; g < 8; g++ {
		go func() {
			dst := make([]byte, 1024)
			m.MultXOR(dst, src)
			done <- dst
		}()
	}
	first := <-done
	for g := 1; g < 8; g++ {
		if !bytes.Equal(first, <-done) {
			t.Fatal("concurrent multiplier results diverged")
		}
	}
}

func BenchmarkMultiplierVsMultXORs(b *testing.B) {
	src := make([]byte, 4096)
	dst := make([]byte, 4096)
	rand.New(rand.NewSource(144)).Read(src)
	b.Run("GF16-fresh-tables", func(b *testing.B) {
		b.SetBytes(4096)
		for i := 0; i < b.N; i++ {
			GF16.MultXORs(dst, src, 0x1234)
		}
	})
	b.Run("GF16-compiled", func(b *testing.B) {
		m := MultiplierFor(GF16, 0x1234)
		b.SetBytes(4096)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.MultXOR(dst, src)
		}
	})
	b.Run("GF32-fresh-tables", func(b *testing.B) {
		b.SetBytes(4096)
		for i := 0; i < b.N; i++ {
			GF32.MultXORs(dst, src, 0x12345678)
		}
	})
	b.Run("GF32-compiled", func(b *testing.B) {
		m := MultiplierFor(GF32, 0x12345678)
		b.SetBytes(4096)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.MultXOR(dst, src)
		}
	})
}
