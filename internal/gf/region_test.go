package gf

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

// regionWords reads a region as a slice of uint32 words for the field's
// word size, so scalar and region implementations can be compared.
func regionWords(f Field, region []byte) []uint32 {
	wb := f.WordBytes()
	out := make([]uint32, len(region)/wb)
	for i := range out {
		switch wb {
		case 1:
			out[i] = uint32(region[i])
		case 2:
			out[i] = uint32(binary.LittleEndian.Uint16(region[i*2:]))
		case 4:
			out[i] = binary.LittleEndian.Uint32(region[i*4:])
		}
	}
	return out
}

func randRegion(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// TestMultXORsMatchesScalar checks dst ^= a*src word-by-word against the
// scalar Mul, across sizes that exercise the unrolled loops and tails.
func TestMultXORsMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tf := range testFields {
		tf := tf
		t.Run(tf.name, func(t *testing.T) {
			wb := tf.f.WordBytes()
			for _, words := range []int{1, 2, 3, 7, 8, 16, 63, 128, 1000} {
				n := words * wb
				for trial := 0; trial < 5; trial++ {
					a := rng.Uint32() & tf.mask
					src := randRegion(rng, n)
					dst := randRegion(rng, n)
					origDst := regionWords(tf.f, dst)
					srcWords := regionWords(tf.f, src)

					tf.f.MultXORs(dst, src, a)

					got := regionWords(tf.f, dst)
					for i := range got {
						want := origDst[i] ^ tf.f.Mul(a, srcWords[i])
						if got[i] != want {
							t.Fatalf("a=%#x words=%d word %d: got %#x want %#x",
								a, words, i, got[i], want)
						}
					}
				}
			}
		})
	}
}

// TestMulRegionMatchesScalar checks dst = a*src word-by-word.
func TestMulRegionMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, tf := range testFields {
		tf := tf
		t.Run(tf.name, func(t *testing.T) {
			wb := tf.f.WordBytes()
			for _, words := range []int{1, 5, 64, 513} {
				n := words * wb
				a := rng.Uint32() & tf.mask
				src := randRegion(rng, n)
				dst := make([]byte, n)
				srcWords := regionWords(tf.f, src)

				tf.f.MulRegion(dst, src, a)

				got := regionWords(tf.f, dst)
				for i := range got {
					if want := tf.f.Mul(a, srcWords[i]); got[i] != want {
						t.Fatalf("a=%#x word %d: got %#x want %#x", a, i, got[i], want)
					}
				}
			}
		})
	}
}

func TestMultXORsSpecialConstants(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, tf := range testFields {
		tf := tf
		t.Run(tf.name, func(t *testing.T) {
			n := 64 * tf.f.WordBytes()
			src := randRegion(rng, n)
			dst := randRegion(rng, n)

			// a == 0 leaves dst untouched.
			before := append([]byte(nil), dst...)
			tf.f.MultXORs(dst, src, 0)
			if !bytes.Equal(dst, before) {
				t.Error("MultXORs with a=0 modified dst")
			}

			// a == 1 is plain XOR.
			tf.f.MultXORs(dst, src, 1)
			for i := range dst {
				if dst[i] != before[i]^src[i] {
					t.Fatalf("MultXORs a=1 byte %d: got %#x want %#x", i, dst[i], before[i]^src[i])
				}
			}

			// Applying the same MultXORs twice cancels (characteristic 2).
			tf.f.MultXORs(dst, src, 1)
			if !bytes.Equal(dst, before) {
				t.Error("double MultXORs did not cancel")
			}
		})
	}
}

func TestMulRegionSpecialConstants(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, tf := range testFields {
		tf := tf
		t.Run(tf.name, func(t *testing.T) {
			n := 32 * tf.f.WordBytes()
			src := randRegion(rng, n)
			dst := randRegion(rng, n)

			tf.f.MulRegion(dst, src, 1)
			if !bytes.Equal(dst, src) {
				t.Error("MulRegion a=1 is not copy")
			}
			tf.f.MulRegion(dst, src, 0)
			if !bytes.Equal(dst, make([]byte, n)) {
				t.Error("MulRegion a=0 is not zero")
			}
		})
	}
}

// TestRegionLinearity: a*(x ^ y) == a*x ^ a*y at region level.
func TestRegionLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, tf := range testFields {
		tf := tf
		t.Run(tf.name, func(t *testing.T) {
			n := 48 * tf.f.WordBytes()
			a := rng.Uint32() & tf.mask
			x := randRegion(rng, n)
			y := randRegion(rng, n)

			xy := make([]byte, n)
			for i := range xy {
				xy[i] = x[i] ^ y[i]
			}
			left := make([]byte, n)
			tf.f.MultXORs(left, xy, a)

			right := make([]byte, n)
			tf.f.MultXORs(right, x, a)
			tf.f.MultXORs(right, y, a)

			if !bytes.Equal(left, right) {
				t.Errorf("region op not linear for a=%#x", a)
			}
		})
	}
}

func TestRegionLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched region lengths did not panic")
		}
	}()
	//ppm:allow(regionargs) deliberately mismatched lengths: this test asserts the panic
	GF8.MultXORs(make([]byte, 8), make([]byte, 9), 3)
}

func TestRegionWordAlignmentPanics(t *testing.T) {
	for _, tf := range []struct {
		name string
		f    Field
	}{{"GF16", GF16}, {"GF32", GF32}} {
		tf := tf
		t.Run(tf.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("unaligned region did not panic")
				}
			}()
			n := tf.f.WordBytes()*4 + 1
			tf.f.MultXORs(make([]byte, n), make([]byte, n), 3)
		})
	}
}

func TestEmptyRegionsAreNoOps(t *testing.T) {
	for _, tf := range testFields {
		tf.f.MultXORs(nil, nil, 7)
		tf.f.MulRegion(nil, nil, 7)
	}
}
