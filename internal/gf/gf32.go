package gf

import (
	"encoding/binary"
	"math/bits"
	"sync"
	"sync/atomic"
)

// GF(2^32) with polynomial x^32 + x^22 + x^2 + x + 1 (0x100400007).
//
// No log table fits in memory at w=32, so scalar multiplication is a
// shift-and-add carry-less multiply followed by polynomial reduction,
// and inversion uses Fermat's little theorem (a^(2^32 - 2)). Region
// arithmetic builds four 256-entry split tables per constant, one per
// byte lane of the 32-bit word.

// poly32low is the reducing polynomial without the implicit x^32 term.
const poly32low = 0x00400007

// GF32 is the GF(2^32) field instance.
var GF32 Field = field32{}

type field32 struct{}

func (field32) W() int         { return 32 }
func (field32) WordBytes() int { return 4 }
func (field32) Order() uint64  { return 1 << 32 }

func (field32) Add(a, b uint32) uint32 { return a ^ b }

// clmul32 is the 32x32 -> 64 bit carry-less product.
func clmul32(a, b uint32) uint64 {
	var r uint64
	bb := uint64(b)
	for a != 0 {
		i := bits.TrailingZeros32(a)
		r ^= bb << uint(i)
		a &= a - 1
	}
	return r
}

// reduce64 folds a 64-bit carry-less product back into GF(2^32).
func reduce64(p uint64) uint32 {
	// Repeatedly replace x^32 with the low polynomial terms. Two passes
	// suffice: the first pass's contribution has degree < 23 + 32.
	for p>>32 != 0 {
		hi := p >> 32
		p = (p & 0xFFFFFFFF) ^ clmul32(uint32(hi), poly32low)
	}
	return uint32(p)
}

func (f field32) Mul(a, b uint32) uint32 {
	if a == 0 || b == 0 {
		return 0
	}
	return reduce64(clmul32(a, b))
}

func (f field32) Inv(a uint32) uint32 {
	if a == 0 {
		panic("gf: inverse of zero in GF(2^32)")
	}
	// a^(2^32 - 2) = a^(0xFFFFFFFE); addition-chain via square-and-multiply.
	result := uint32(1)
	base := a
	e := uint64(0xFFFFFFFE)
	for e > 0 {
		if e&1 == 1 {
			result = f.Mul(result, base)
		}
		base = f.Mul(base, base)
		e >>= 1
	}
	return result
}

func (f field32) Div(a, b uint32) uint32 {
	if b == 0 {
		panic("gf: division by zero in GF(2^32)")
	}
	if a == 0 {
		return 0
	}
	return f.Mul(a, f.Inv(b))
}

func (f field32) Exp(a uint32, n int) uint32 {
	return expBySquaring(f, a, n)
}

// splitTables32 builds four per-constant lanes:
// t[j][b] = a * (b << 8j). 1024 scalar carry-less multiplies — the
// dominant cost of a region op when rebuilt per call, which is why the
// tables are memoized (see tables below).
func (f field32) splitTables32(a uint32) *[4][256]uint32 {
	t := new([4][256]uint32)
	for j := 0; j < 4; j++ {
		shift := uint(8 * j)
		for b := 1; b < 256; b++ {
			t[j][b] = f.Mul(a, uint32(b)<<shift)
		}
	}
	return t
}

// No log table fits in memory at w=32, but a decode touches only the
// handful of constants its matrices hold, so the bound multiplier (and
// its split tables) is memoized per constant: the first region op for a
// constant pays the 1024 scalar multiplies, every later
// MultXORs/MulRegion call — and every MultiplierFor and fused-row
// compile — shares the same immutable multiplier. The memo is bounded:
// past maxTables32 distinct constants (4 KiB each), further tables are
// built per call without being retained, so adversarial constant churn
// cannot grow memory without bound.
const maxTables32 = 4096

var (
	mults32      sync.Map // uint32 -> *multiplier32, read-only once stored
	mults32Count atomic.Int32
)

// multiplier returns the memoized bound multiplier for a (a > 1).
func (f field32) multiplier(a uint32) *multiplier32 {
	if v, ok := mults32.Load(a); ok {
		return v.(*multiplier32)
	}
	m := &multiplier32{a: a, t: f.splitTables32(a), aff: affineMats32(f, a)}
	if mults32Count.Load() >= maxTables32 {
		return m
	}
	if v, loaded := mults32.LoadOrStore(a, m); loaded {
		return v.(*multiplier32)
	}
	mults32Count.Add(1)
	return m
}

// tables returns the memoized split tables for a, building them on
// first use.
func (f field32) tables(a uint32) *[4][256]uint32 {
	return f.multiplier(a).t
}

// multXOR32 is the region loop over prebuilt tables: dst[i] ^= a*src[i].
func multXOR32(t *[4][256]uint32, dst, src []byte) {
	for i := 0; i+4 <= len(dst); i += 4 {
		w := binary.LittleEndian.Uint32(src[i:])
		p := t[0][w&0xFF] ^ t[1][(w>>8)&0xFF] ^ t[2][(w>>16)&0xFF] ^ t[3][w>>24]
		binary.LittleEndian.PutUint32(dst[i:], binary.LittleEndian.Uint32(dst[i:])^p)
	}
}

//ppm:hotpath
func (f field32) MultXORs(dst, src []byte, a uint32) {
	checkRegions(dst, src, 4)
	switch a {
	case 0:
		return
	case 1:
		xorRegion(dst, src)
		return
	}
	multXOR32(f.tables(a), dst, src)
}

//ppm:hotpath
func (f field32) MulRegion(dst, src []byte, a uint32) {
	checkRegions(dst, src, 4)
	switch a {
	case 0:
		zeroRegion(dst)
		return
	case 1:
		copyRegion(dst, src)
		return
	}
	t := f.tables(a)
	for i := 0; i+4 <= len(dst); i += 4 {
		w := binary.LittleEndian.Uint32(src[i:])
		binary.LittleEndian.PutUint32(dst[i:], t[0][w&0xFF]^t[1][(w>>8)&0xFF]^t[2][(w>>16)&0xFF]^t[3][w>>24])
	}
}
