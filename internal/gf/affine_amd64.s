//go:build amd64

#include "textflag.h"

// GF2P8AFFINEQB region kernels. Each processes n bytes (n > 0, n a
// multiple of 64) of dst ^= a*src with the constant's multiplication
// matrix pre-encoded by the builders in affine.go. Word lanes are
// little-endian, matching the portable kernels.
//
// GF(2^16) and GF(2^32) words mix bytes, but GF2P8AFFINEQB transforms
// each byte with the matrix of its own qword lane. The kernels
// therefore VPERMB each 64-byte vector into planar form — all bytes of
// word-lane position i grouped together — so one matrix vector applies
// the right 8×8 block everywhere, then permute back. Block A_ij
// (output byte i from input byte j) is applied by aligning plane j
// with plane position i (half-swap at w=16, 128-bit lane rotation at
// w=32) under a matrix vector holding A_ij in plane i's qwords.

// Planarizing permutation for GF(2^16): low bytes of the 32 words to
// bytes 0..31, high bytes to bytes 32..63.
DATA p16<>+0x00(SB)/8, $0x0e0c0a0806040200
DATA p16<>+0x08(SB)/8, $0x1e1c1a1816141210
DATA p16<>+0x10(SB)/8, $0x2e2c2a2826242220
DATA p16<>+0x18(SB)/8, $0x3e3c3a3836343230
DATA p16<>+0x20(SB)/8, $0x0f0d0b0907050301
DATA p16<>+0x28(SB)/8, $0x1f1d1b1917151311
DATA p16<>+0x30(SB)/8, $0x2f2d2b2927252321
DATA p16<>+0x38(SB)/8, $0x3f3d3b3937353331
GLOBL p16<>(SB), RODATA|NOPTR, $64

// Inverse: byte 2k <- k, byte 2k+1 <- 32+k.
DATA p16i<>+0x00(SB)/8, $0x2303220221012000
DATA p16i<>+0x08(SB)/8, $0x2707260625052404
DATA p16i<>+0x10(SB)/8, $0x2b0b2a0a29092808
DATA p16i<>+0x18(SB)/8, $0x2f0f2e0e2d0d2c0c
DATA p16i<>+0x20(SB)/8, $0x3313321231113010
DATA p16i<>+0x28(SB)/8, $0x3717361635153414
DATA p16i<>+0x30(SB)/8, $0x3b1b3a1a39193818
DATA p16i<>+0x38(SB)/8, $0x3f1f3e1e3d1d3c1c
GLOBL p16i<>(SB), RODATA|NOPTR, $64

// Planarizing permutation for GF(2^32): byte j of each of the 16 words
// to 16-byte plane j.
DATA p32<>+0x00(SB)/8, $0x1c1814100c080400
DATA p32<>+0x08(SB)/8, $0x3c3834302c282420
DATA p32<>+0x10(SB)/8, $0x1d1915110d090501
DATA p32<>+0x18(SB)/8, $0x3d3935312d292521
DATA p32<>+0x20(SB)/8, $0x1e1a16120e0a0602
DATA p32<>+0x28(SB)/8, $0x3e3a36322e2a2622
DATA p32<>+0x30(SB)/8, $0x1f1b17130f0b0703
DATA p32<>+0x38(SB)/8, $0x3f3b37332f2b2723
GLOBL p32<>(SB), RODATA|NOPTR, $64

// Inverse: byte 4k+j <- 16j+k.
DATA p32i<>+0x00(SB)/8, $0x3121110130201000
DATA p32i<>+0x08(SB)/8, $0x3323130332221202
DATA p32i<>+0x10(SB)/8, $0x3525150534241404
DATA p32i<>+0x18(SB)/8, $0x3727170736261606
DATA p32i<>+0x20(SB)/8, $0x3929190938281808
DATA p32i<>+0x28(SB)/8, $0x3b2b1b0b3a2a1a0a
DATA p32i<>+0x30(SB)/8, $0x3d2d1d0d3c2c1c0c
DATA p32i<>+0x38(SB)/8, $0x3f2f1f0f3e2e1e0e
GLOBL p32i<>(SB), RODATA|NOPTR, $64

// func gf8AffineXorAsm(dst, src *byte, n int, mat uint64)
// Bytes transform independently at w=8: one affine per vector.
TEXT ·gf8AffineXorAsm(SB), NOSPLIT, $0-32
	MOVQ         dst+0(FP), DI
	MOVQ         src+8(FP), SI
	MOVQ         n+16(FP), CX
	VPBROADCASTQ mat+24(FP), Z1

loop8:
	VMOVDQU64      (SI), Z0
	VGF2P8AFFINEQB $0, Z1, Z0, Z2
	VPXORQ         (DI), Z2, Z2
	VMOVDQU64      Z2, (DI)
	ADDQ           $64, SI
	ADDQ           $64, DI
	SUBQ           $64, CX
	JNE            loop8
	VZEROUPPER
	RET

// func gf16AffineXorAsm(dst, src *byte, n int, mats *[2][8]uint64)
TEXT ·gf16AffineXorAsm(SB), NOSPLIT, $0-32
	MOVQ      dst+0(FP), DI
	MOVQ      src+8(FP), SI
	MOVQ      n+16(FP), CX
	MOVQ      mats+24(FP), DX
	VMOVDQU64 p16<>(SB), Z5
	VMOVDQU64 p16i<>(SB), Z6
	VMOVDQU64 (DX), Z7             // [A00 ×4 | A11 ×4]
	VMOVDQU64 64(DX), Z8           // [A01 ×4 | A10 ×4]

loop16:
	VMOVDQU64      (SI), Z0
	VPERMB         Z0, Z5, Z1      // planar: lo plane | hi plane
	VSHUFI64X2     $0x4E, Z1, Z1, Z2 // planes swapped
	VGF2P8AFFINEQB $0, Z7, Z1, Z3
	VGF2P8AFFINEQB $0, Z8, Z2, Z4
	VPXORQ         Z3, Z4, Z3
	VPERMB         Z3, Z6, Z3      // back to interleaved
	VPXORQ         (DI), Z3, Z3
	VMOVDQU64      Z3, (DI)
	ADDQ           $64, SI
	ADDQ           $64, DI
	SUBQ           $64, CX
	JNE            loop16
	VZEROUPPER
	RET

// func gf32AffineXorAsm(dst, src *byte, n int, mats *[4][8]uint64)
TEXT ·gf32AffineXorAsm(SB), NOSPLIT, $0-32
	MOVQ      dst+0(FP), DI
	MOVQ      src+8(FP), SI
	MOVQ      n+16(FP), CX
	MOVQ      mats+24(FP), DX
	VMOVDQU64 p32<>(SB), Z5
	VMOVDQU64 p32i<>(SB), Z6
	VMOVDQU64 (DX), Z7             // A_{i,i} in plane i
	VMOVDQU64 64(DX), Z8           // A_{i,(i+1)&3}
	VMOVDQU64 128(DX), Z9          // A_{i,(i+2)&3}
	VMOVDQU64 192(DX), Z10         // A_{i,(i+3)&3}

loop32:
	VMOVDQU64      (SI), Z0
	VPERMB         Z0, Z5, Z1      // planar: plane i at 128-bit lane i
	VGF2P8AFFINEQB $0, Z7, Z1, Z2
	VSHUFI32X4     $0x39, Z1, Z1, Z3 // lane i <- plane (i+1)&3
	VGF2P8AFFINEQB $0, Z8, Z3, Z4
	VPXORQ         Z4, Z2, Z2
	VSHUFI32X4     $0x4E, Z1, Z1, Z3 // lane i <- plane (i+2)&3
	VGF2P8AFFINEQB $0, Z9, Z3, Z4
	VPXORQ         Z4, Z2, Z2
	VSHUFI32X4     $0x93, Z1, Z1, Z3 // lane i <- plane (i+3)&3
	VGF2P8AFFINEQB $0, Z10, Z3, Z4
	VPXORQ         Z4, Z2, Z2
	VPERMB         Z2, Z6, Z2      // back to interleaved
	VPXORQ         (DI), Z2, Z2
	VMOVDQU64      Z2, (DI)
	ADDQ           $64, SI
	ADDQ           $64, DI
	SUBQ           $64, CX
	JNE            loop32
	VZEROUPPER
	RET
