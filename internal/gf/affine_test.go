package gf

import (
	"math/bits"
	"math/rand"
	"testing"
)

// forBothKernelPaths runs fn once with the affine kernels active (when
// the host supports them) and once forced onto the portable table
// kernels, so every differential test pins both implementations.
func forBothKernelPaths(t *testing.T, fn func(t *testing.T)) {
	t.Run("affine", func(t *testing.T) {
		if !AffineKernels() {
			t.Skip("affine kernels unavailable on this host")
		}
		fn(t)
	})
	t.Run("tables", func(t *testing.T) {
		defer SetAffineKernels(SetAffineKernels(false))
		fn(t)
	})
}

// applyAffineByte evaluates one encoded 8×8 matrix qword the way
// GF2P8AFFINEQB does: output bit t is the parity of row byte 7-t ANDed
// with the input.
func applyAffineByte(q uint64, b byte) byte {
	var out byte
	for t := 0; t < 8; t++ {
		row := byte(q >> uint(8*(7-t)))
		if bits.OnesCount8(row&b)%2 == 1 {
			out |= 1 << uint(t)
		}
	}
	return out
}

// TestAffineBlocksMatchScalar validates the matrix encoding itself, on
// every platform: evaluating the encoded 8×8 blocks in scalar Go must
// reproduce Field.Mul for all three fields.
func TestAffineBlocksMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(408))
	for _, f := range []Field{GF8, GF16, GF32} {
		wb := f.WordBytes()
		mask := uint32(f.Order() - 1)
		for trial := 0; trial < 25; trial++ {
			a := rng.Uint32() & mask
			if a <= 1 {
				a = 2
			}
			cols := mulColumns(f, a)
			for wt := 0; wt < 20; wt++ {
				w := rng.Uint32() & mask
				want := f.Mul(a, w)
				var got uint32
				for i := 0; i < wb; i++ {
					var ob byte
					for j := 0; j < wb; j++ {
						ob ^= applyAffineByte(affineBlock(cols, i, j), byte(w>>uint(8*j)))
					}
					got |= uint32(ob) << uint(8*i)
				}
				if got != want {
					t.Fatalf("GF%d: affine blocks give %#x * %#x = %#x, want %#x",
						f.W(), a, w, got, want)
				}
			}
		}
	}
}

// TestMultiplierMatchesScalar: the bound multiplier's region op equals
// the word-at-a-time scalar product on both kernel paths, across
// lengths straddling the 64-byte vector width and its scalar tails.
func TestMultiplierMatchesScalar(t *testing.T) {
	forBothKernelPaths(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(409))
		for _, f := range []Field{GF8, GF16, GF32} {
			wb := f.WordBytes()
			mask := uint32(f.Order() - 1)
			sizes := []int{wb, 56, 64, 64 + wb, 120, 128, 192 + wb, 1024 + 8 + wb}
			for _, size := range sizes {
				size -= size % wb
				a := rng.Uint32() & mask
				if a <= 1 {
					a = 3
				}
				src := make([]byte, size)
				rng.Read(src)
				dst := make([]byte, size)
				rng.Read(dst)
				want := append([]byte(nil), dst...)

				MultiplierFor(f, a).MultXOR(dst, src)
				for i := 0; i+wb <= len(want); i += wb {
					w := readWord(src[i:], wb)
					putWord(want[i:], wb, readWord(want[i:], wb)^f.Mul(a, w))
				}
				for i := range dst {
					if dst[i] != want[i] {
						t.Fatalf("GF%d a=%#x size=%d: byte %d = %#x want %#x",
							f.W(), a, size, i, dst[i], want[i])
					}
				}
			}
		}
	})
}
