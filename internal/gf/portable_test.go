package gf

import (
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestPortablePathParity pins the portable table kernels against the
// hardware path on the same inputs. On GFNI-capable amd64 this is a
// true differential test between the two implementations; elsewhere
// both runs take the portable path and the test degenerates to a
// self-consistency check, which is still what CI's PPM_NO_GFNI=1 lane
// expects to see exercised.
func TestPortablePathParity(t *testing.T) {
	const n = 1 << 12
	src := make([]byte, n)
	src2 := make([]byte, n)
	for i := range src {
		src[i] = byte(i*131 + 7)
		src2[i] = byte(i * 29)
	}

	run := func(affine bool) map[string][]byte {
		defer SetAffineKernels(SetAffineKernels(affine))
		out := map[string][]byte{}
		for _, field := range []Field{GF8, GF16, GF32} {
			mask := uint32(field.Order() - 1)
			for _, c := range []uint32{1, 2, 0x1D & mask, mask} {
				key := fmt.Sprintf("GF%d/c=%#x", field.W(), c)

				dst := make([]byte, n)
				field.MultXORs(dst, src, c)
				out[key+"/multxors"] = dst

				dst = make([]byte, n)
				field.MulRegion(dst, src, c)
				out[key+"/mulregion"] = dst

				dst = make([]byte, n)
				field.MultXORsMulti(dst, [][]byte{src, src2}, []uint32{c, (c * 3) & mask})
				out[key+"/multi"] = dst
			}
		}
		return out
	}

	portable := run(false)
	hardware := run(true) // no-op flip on hardware without GFNI
	for key, want := range portable {
		got := hardware[key]
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: portable and active paths disagree at byte %d: %#x vs %#x",
					key, i, want[i], got[i])
			}
		}
	}
}

// TestNoGFNIEnvDisablesAffine re-executes the test binary with
// PPM_NO_GFNI=1 and checks that the affine kernels come up disabled —
// the knob CI's portable lane relies on is an init-time decision, so
// it needs a fresh process to observe.
func TestNoGFNIEnvDisablesAffine(t *testing.T) {
	if os.Getenv("PPM_GF_AFFINE_PROBE") == "1" {
		fmt.Printf("affine=%v\n", AffineKernels())
		return
	}
	exe, err := os.Executable()
	if err != nil {
		t.Skipf("cannot locate test binary: %v", err)
	}
	cmd := exec.Command(exe, "-test.run=TestNoGFNIEnvDisablesAffine", "-test.v")
	cmd.Env = append(os.Environ(), "PPM_GF_AFFINE_PROBE=1", "PPM_NO_GFNI=1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("probe process failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "affine=false") {
		t.Errorf("PPM_NO_GFNI=1 did not disable affine kernels:\n%s", out)
	}
}
