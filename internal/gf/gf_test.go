package gf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// fields under test, with a mask restricting random values to the field.
var testFields = []struct {
	name string
	f    Field
	mask uint32
}{
	{"GF8", GF8, 0xFF},
	{"GF16", GF16, 0xFFFF},
	{"GF32", GF32, 0xFFFFFFFF},
}

func quickCfg(seed int64) *quick.Config {
	return &quick.Config{
		MaxCount: 500,
		Rand:     rand.New(rand.NewSource(seed)),
	}
}

func TestForWord(t *testing.T) {
	for _, w := range []int{8, 16, 32} {
		f, err := ForWord(w)
		if err != nil {
			t.Fatalf("ForWord(%d): %v", w, err)
		}
		if f.W() != w {
			t.Errorf("ForWord(%d).W() = %d", w, f.W())
		}
		if f.WordBytes() != w/8 {
			t.Errorf("ForWord(%d).WordBytes() = %d", w, f.WordBytes())
		}
	}
	for _, w := range []int{0, 1, 4, 7, 9, 24, 64, -8} {
		if _, err := ForWord(w); err == nil {
			t.Errorf("ForWord(%d) should fail", w)
		}
	}
}

func TestMustForWordPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustForWord(9) did not panic")
		}
	}()
	MustForWord(9)
}

func TestFieldFor(t *testing.T) {
	cases := []struct {
		columns int
		wantW   int
	}{
		{0, 8}, {1, 8}, {16, 8}, {255, 8},
		{256, 16}, {576, 16}, {65535, 16},
		{65536, 32}, {1 << 20, 32},
	}
	for _, c := range cases {
		f, err := FieldFor(c.columns)
		if err != nil {
			t.Fatalf("FieldFor(%d): %v", c.columns, err)
		}
		if f.W() != c.wantW {
			t.Errorf("FieldFor(%d).W() = %d, want %d", c.columns, f.W(), c.wantW)
		}
	}
	if _, err := FieldFor(-1); err == nil {
		t.Error("FieldFor(-1) should fail")
	}
}

func TestMulIdentityAndZero(t *testing.T) {
	for _, tf := range testFields {
		tf := tf
		t.Run(tf.name, func(t *testing.T) {
			prop := func(x uint32) bool {
				a := x & tf.mask
				return tf.f.Mul(a, 1) == a &&
					tf.f.Mul(1, a) == a &&
					tf.f.Mul(a, 0) == 0 &&
					tf.f.Mul(0, a) == 0
			}
			if err := quick.Check(prop, quickCfg(1)); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestMulCommutative(t *testing.T) {
	for _, tf := range testFields {
		tf := tf
		t.Run(tf.name, func(t *testing.T) {
			prop := func(x, y uint32) bool {
				a, b := x&tf.mask, y&tf.mask
				return tf.f.Mul(a, b) == tf.f.Mul(b, a)
			}
			if err := quick.Check(prop, quickCfg(2)); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestMulAssociative(t *testing.T) {
	for _, tf := range testFields {
		tf := tf
		t.Run(tf.name, func(t *testing.T) {
			prop := func(x, y, z uint32) bool {
				a, b, c := x&tf.mask, y&tf.mask, z&tf.mask
				return tf.f.Mul(tf.f.Mul(a, b), c) == tf.f.Mul(a, tf.f.Mul(b, c))
			}
			if err := quick.Check(prop, quickCfg(3)); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestDistributive(t *testing.T) {
	for _, tf := range testFields {
		tf := tf
		t.Run(tf.name, func(t *testing.T) {
			prop := func(x, y, z uint32) bool {
				a, b, c := x&tf.mask, y&tf.mask, z&tf.mask
				return tf.f.Mul(a, tf.f.Add(b, c)) == tf.f.Add(tf.f.Mul(a, b), tf.f.Mul(a, c))
			}
			if err := quick.Check(prop, quickCfg(4)); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestInverse(t *testing.T) {
	for _, tf := range testFields {
		tf := tf
		t.Run(tf.name, func(t *testing.T) {
			prop := func(x uint32) bool {
				a := x & tf.mask
				if a == 0 {
					return true
				}
				inv := tf.f.Inv(a)
				return tf.f.Mul(a, inv) == 1 && tf.f.Mul(inv, a) == 1
			}
			if err := quick.Check(prop, quickCfg(5)); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestInverseExhaustiveGF8(t *testing.T) {
	for a := uint32(1); a < 256; a++ {
		if got := GF8.Mul(a, GF8.Inv(a)); got != 1 {
			t.Fatalf("GF8: %d * %d^-1 = %d", a, a, got)
		}
	}
}

func TestDiv(t *testing.T) {
	for _, tf := range testFields {
		tf := tf
		t.Run(tf.name, func(t *testing.T) {
			prop := func(x, y uint32) bool {
				a, b := x&tf.mask, y&tf.mask
				if b == 0 {
					return true
				}
				q := tf.f.Div(a, b)
				return tf.f.Mul(q, b) == a
			}
			if err := quick.Check(prop, quickCfg(6)); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestInvZeroPanics(t *testing.T) {
	for _, tf := range testFields {
		tf := tf
		t.Run(tf.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("Inv(0) did not panic")
				}
			}()
			tf.f.Inv(0)
		})
	}
}

func TestDivZeroPanics(t *testing.T) {
	for _, tf := range testFields {
		tf := tf
		t.Run(tf.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("Div(x, 0) did not panic")
				}
			}()
			tf.f.Div(3, 0)
		})
	}
}

func TestExp(t *testing.T) {
	for _, tf := range testFields {
		tf := tf
		t.Run(tf.name, func(t *testing.T) {
			// Exp(a, 0) == 1 for all a, including zero.
			if got := tf.f.Exp(0, 0); got != 1 {
				t.Errorf("Exp(0, 0) = %d, want 1", got)
			}
			if got := tf.f.Exp(0, 5); got != 0 {
				t.Errorf("Exp(0, 5) = %d, want 0", got)
			}
			// Exp matches repeated Mul.
			prop := func(x uint32, nRaw uint8) bool {
				a := x & tf.mask
				n := int(nRaw % 40)
				want := uint32(1)
				for i := 0; i < n; i++ {
					want = tf.f.Mul(want, a)
				}
				return tf.f.Exp(a, n) == want
			}
			if err := quick.Check(prop, quickCfg(7)); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestExpNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(a, -1) did not panic")
		}
	}()
	GF8.Exp(2, -1)
}

// TestPowersDistinct verifies the property FieldFor relies on: the
// powers 2^0 .. 2^(2^w - 2) are all distinct (2 is primitive for the
// chosen polynomials at w=8 and w=16).
func TestPowersDistinct(t *testing.T) {
	for _, tf := range []struct {
		name  string
		f     Field
		order int
	}{{"GF8", GF8, 255}, {"GF16", GF16, 65535}} {
		tf := tf
		t.Run(tf.name, func(t *testing.T) {
			seen := make(map[uint32]int, tf.order)
			x := uint32(1)
			for i := 0; i < tf.order; i++ {
				if prev, dup := seen[x]; dup {
					t.Fatalf("2^%d == 2^%d == %d", i, prev, x)
				}
				seen[x] = i
				x = tf.f.Mul(x, 2)
			}
			if x != 1 {
				t.Fatalf("2^%d = %d, want 1 (order of 2 must be %d)", tf.order, x, tf.order)
			}
		})
	}
}

// TestGF8KnownProducts pins a few products against hand-computed values
// for polynomial 0x11D so a table-generation bug cannot silently pass
// the axiom tests (which would also hold for a wrong polynomial).
func TestGF8KnownProducts(t *testing.T) {
	cases := []struct{ a, b, want uint32 }{
		{2, 2, 4},
		{2, 128, 29}, // 0x80*2 = 0x100 -> ^0x11D = 0x1D
		{3, 3, 5},    // (x+1)^2 = x^2+1
	}
	for _, c := range cases {
		if got := GF8.Mul(c.a, c.b); got != c.want {
			t.Errorf("GF8.Mul(%#x, %#x) = %#x, want %#x", c.a, c.b, got, c.want)
		}
	}
	// Exhaustive comparison against a shift-and-add reference multiply.
	mulRef := func(a, b uint32) uint32 {
		var p uint32
		for b != 0 {
			if b&1 != 0 {
				p ^= a
			}
			b >>= 1
			a <<= 1
			if a&0x100 != 0 {
				a ^= poly8
			}
		}
		return p
	}
	for a := uint32(0); a < 256; a++ {
		for b := uint32(0); b < 256; b++ {
			if got, want := GF8.Mul(a, b), mulRef(a, b); got != want {
				t.Fatalf("GF8.Mul(%d, %d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

// TestGF16KnownProducts pins products for polynomial 0x1100B.
func TestGF16KnownProducts(t *testing.T) {
	cases := []struct{ a, b, want uint32 }{
		{2, 0x8000, 0x100B},
		{0x8000, 0x8000, 0x8EFA}, // verified against shift-and-add reference below
	}
	// Cross-check the second case with an independent bit-by-bit multiply.
	mulRef := func(a, b uint32) uint32 {
		var p uint32
		for b != 0 {
			if b&1 != 0 {
				p ^= a
			}
			b >>= 1
			a <<= 1
			if a&0x10000 != 0 {
				a ^= poly16
			}
		}
		return p
	}
	for _, c := range cases {
		if ref := mulRef(c.a, c.b); ref != c.want {
			t.Fatalf("reference GF16 mul(%#x,%#x) = %#x, test case wants %#x: fix the test",
				c.a, c.b, ref, c.want)
		}
		if got := GF16.Mul(c.a, c.b); got != c.want {
			t.Errorf("GF16.Mul(%#x, %#x) = %#x, want %#x", c.a, c.b, got, c.want)
		}
	}
}

// TestGF16MatchesReference compares the log/exp implementation against a
// shift-and-add reference on random values.
func TestGF16MatchesReference(t *testing.T) {
	mulRef := func(a, b uint32) uint32 {
		var p uint32
		for b != 0 {
			if b&1 != 0 {
				p ^= a
			}
			b >>= 1
			a <<= 1
			if a&0x10000 != 0 {
				a ^= poly16
			}
		}
		return p
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 2000; i++ {
		a := uint32(rng.Intn(1 << 16))
		b := uint32(rng.Intn(1 << 16))
		if got, want := GF16.Mul(a, b), mulRef(a, b); got != want {
			t.Fatalf("GF16.Mul(%#x, %#x) = %#x, want %#x", a, b, got, want)
		}
	}
}

// TestGF32MatchesReference compares clmul+reduce against shift-and-add.
func TestGF32MatchesReference(t *testing.T) {
	mulRef := func(a, b uint32) uint32 {
		var p uint32
		for b != 0 {
			if b&1 != 0 {
				p ^= a
			}
			b >>= 1
			carry := a&0x80000000 != 0
			a <<= 1
			if carry {
				a ^= poly32low
			}
		}
		return p
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		a := rng.Uint32()
		b := rng.Uint32()
		if got, want := GF32.Mul(a, b), mulRef(a, b); got != want {
			t.Fatalf("GF32.Mul(%#x, %#x) = %#x, want %#x", a, b, got, want)
		}
	}
}

// TestInverseExhaustiveGF16 checks every nonzero inverse in GF(2^16);
// at 65535 multiplies this is still fast and removes any reliance on
// sampling for the log/exp symmetry.
func TestInverseExhaustiveGF16(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive field scan")
	}
	for a := uint32(1); a < 1<<16; a++ {
		if got := GF16.Mul(a, GF16.Inv(a)); got != 1 {
			t.Fatalf("GF16: %d * %d^-1 = %d", a, a, got)
		}
	}
}
