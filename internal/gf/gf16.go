package gf

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
)

// GF(2^16) with polynomial x^16 + x^12 + x^3 + x + 1 (0x1100B).
//
// Scalar arithmetic uses 64 K log/exp tables. Region arithmetic builds
// two 256-entry split tables for the constant (product of a with the low
// byte and with the high byte of each word) so the inner loop is two
// lookups + XOR per 16-bit word.

const poly16 = 0x1100B

// GF16 is the GF(2^16) field instance.
var GF16 Field = newField16()

type field16 struct {
	log [1 << 16]uint32 // log[0] unused
	exp [1 << 17]uint16 // doubled to skip mod (65535)
}

func newField16() *field16 {
	f := &field16{}
	x := 1
	for i := 0; i < 65535; i++ {
		f.exp[i] = uint16(x)
		f.exp[i+65535] = uint16(x)
		f.log[x] = uint32(i)
		x <<= 1
		if x&0x10000 != 0 {
			x ^= poly16
		}
	}
	return f
}

func (f *field16) W() int         { return 16 }
func (f *field16) WordBytes() int { return 2 }
func (f *field16) Order() uint64  { return 1 << 16 }

func (f *field16) Add(a, b uint32) uint32 { return a ^ b }

func (f *field16) Mul(a, b uint32) uint32 {
	a &= 0xFFFF
	b &= 0xFFFF
	if a == 0 || b == 0 {
		return 0
	}
	return uint32(f.exp[f.log[a]+f.log[b]])
}

func (f *field16) Inv(a uint32) uint32 {
	a &= 0xFFFF
	if a == 0 {
		panic("gf: inverse of zero in GF(2^16)")
	}
	return uint32(f.exp[65535-f.log[a]])
}

func (f *field16) Div(a, b uint32) uint32 {
	a &= 0xFFFF
	b &= 0xFFFF
	if b == 0 {
		panic("gf: division by zero in GF(2^16)")
	}
	if a == 0 {
		return 0
	}
	return uint32(f.exp[f.log[a]+65535-f.log[b]])
}

func (f *field16) Exp(a uint32, n int) uint32 {
	return expBySquaring(f, a, n)
}

// splitTables16 builds the two per-constant lookup tables:
// t[0][b] = a * b, t[1][b] = a * (b << 8). The 512 scalar multiplies
// amortise over region sizes of hundreds of bytes and up, which is the
// regime the paper measures (sectors are >= 512 bytes, §II-B footnote).
func (f *field16) splitTables16(a uint32) *[2][256]uint16 {
	t := new([2][256]uint16)
	for b := 1; b < 256; b++ {
		t[0][b] = uint16(f.Mul(a, uint32(b)))
		t[1][b] = uint16(f.Mul(a, uint32(b)<<8))
	}
	return t
}

// A decode touches only the handful of constants its matrices hold, so
// the split tables are memoized per constant exactly like GF(2^32)'s:
// the first region op for a constant pays the 512 scalar multiplies,
// every later MultXORs / MultiplierFor / fused-row compile shares the
// same immutable multiplier. Bounded at maxTables16 distinct constants
// (1 KiB each); past the bound further tables are built per call
// without being retained.
const maxTables16 = 4096

var (
	mults16      sync.Map // uint32 -> *multiplier16, read-only once stored
	mults16Count atomic.Int32
)

// multiplier returns the memoized bound multiplier for a (a > 1).
func (f *field16) multiplier(a uint32) *multiplier16 {
	if v, ok := mults16.Load(a); ok {
		return v.(*multiplier16)
	}
	m := &multiplier16{a: a, t: f.splitTables16(a), aff: affineMats16(f, a)}
	if mults16Count.Load() >= maxTables16 {
		return m
	}
	if v, loaded := mults16.LoadOrStore(a, m); loaded {
		return v.(*multiplier16)
	}
	mults16Count.Add(1)
	return m
}

// tables16 returns the memoized split tables for a (a > 1).
func (f *field16) tables16(a uint32) *[2][256]uint16 {
	return f.multiplier(a).t
}

//ppm:hotpath
func (f *field16) MultXORs(dst, src []byte, a uint32) {
	checkRegions(dst, src, 2)
	switch a & 0xFFFF {
	case 0:
		return
	case 1:
		xorRegion(dst, src)
		return
	}
	f.multiplier(a&0xFFFF).MultXOR(dst, src)
}

//ppm:hotpath
func (f *field16) MulRegion(dst, src []byte, a uint32) {
	checkRegions(dst, src, 2)
	switch a & 0xFFFF {
	case 0:
		zeroRegion(dst)
		return
	case 1:
		copyRegion(dst, src)
		return
	}
	t := f.tables16(a & 0xFFFF)
	for i := 0; i+2 <= len(dst); i += 2 {
		w := binary.LittleEndian.Uint16(src[i:])
		binary.LittleEndian.PutUint16(dst[i:], t[0][w&0xFF]^t[1][w>>8])
	}
}
