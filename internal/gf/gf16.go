package gf

import "encoding/binary"

// GF(2^16) with polynomial x^16 + x^12 + x^3 + x + 1 (0x1100B).
//
// Scalar arithmetic uses 64 K log/exp tables. Region arithmetic builds
// two 256-entry split tables for the constant (product of a with the low
// byte and with the high byte of each word) so the inner loop is two
// lookups + XOR per 16-bit word.

const poly16 = 0x1100B

// GF16 is the GF(2^16) field instance.
var GF16 Field = newField16()

type field16 struct {
	log [1 << 16]uint32 // log[0] unused
	exp [1 << 17]uint16 // doubled to skip mod (65535)
}

func newField16() *field16 {
	f := &field16{}
	x := 1
	for i := 0; i < 65535; i++ {
		f.exp[i] = uint16(x)
		f.exp[i+65535] = uint16(x)
		f.log[x] = uint32(i)
		x <<= 1
		if x&0x10000 != 0 {
			x ^= poly16
		}
	}
	return f
}

func (f *field16) W() int         { return 16 }
func (f *field16) WordBytes() int { return 2 }
func (f *field16) Order() uint64  { return 1 << 16 }

func (f *field16) Add(a, b uint32) uint32 { return a ^ b }

func (f *field16) Mul(a, b uint32) uint32 {
	a &= 0xFFFF
	b &= 0xFFFF
	if a == 0 || b == 0 {
		return 0
	}
	return uint32(f.exp[f.log[a]+f.log[b]])
}

func (f *field16) Inv(a uint32) uint32 {
	a &= 0xFFFF
	if a == 0 {
		panic("gf: inverse of zero in GF(2^16)")
	}
	return uint32(f.exp[65535-f.log[a]])
}

func (f *field16) Div(a, b uint32) uint32 {
	a &= 0xFFFF
	b &= 0xFFFF
	if b == 0 {
		panic("gf: division by zero in GF(2^16)")
	}
	if a == 0 {
		return 0
	}
	return uint32(f.exp[f.log[a]+65535-f.log[b]])
}

func (f *field16) Exp(a uint32, n int) uint32 {
	return expBySquaring(f, a, n)
}

// splitTables16 builds the two per-constant lookup tables:
// lo[b] = a * b, hi[b] = a * (b << 8). The 512 scalar multiplies
// amortise over region sizes of hundreds of bytes and up, which is the
// regime the paper measures (sectors are >= 512 bytes, §II-B footnote).
func (f *field16) splitTables16(a uint32) (lo, hi [256]uint16) {
	for b := 1; b < 256; b++ {
		lo[b] = uint16(f.Mul(a, uint32(b)))
		hi[b] = uint16(f.Mul(a, uint32(b)<<8))
	}
	return lo, hi
}

func (f *field16) MultXORs(dst, src []byte, a uint32) {
	checkRegions(dst, src, 2)
	switch a & 0xFFFF {
	case 0:
		return
	case 1:
		xorRegion(dst, src)
		return
	}
	lo, hi := f.splitTables16(a)
	for i := 0; i+2 <= len(dst); i += 2 {
		w := binary.LittleEndian.Uint16(src[i:])
		p := lo[w&0xFF] ^ hi[w>>8]
		binary.LittleEndian.PutUint16(dst[i:], binary.LittleEndian.Uint16(dst[i:])^p)
	}
}

func (f *field16) MulRegion(dst, src []byte, a uint32) {
	checkRegions(dst, src, 2)
	switch a & 0xFFFF {
	case 0:
		zeroRegion(dst)
		return
	case 1:
		copyRegion(dst, src)
		return
	}
	lo, hi := f.splitTables16(a)
	for i := 0; i+2 <= len(dst); i += 2 {
		w := binary.LittleEndian.Uint16(src[i:])
		binary.LittleEndian.PutUint16(dst[i:], lo[w&0xFF]^hi[w>>8])
	}
}
