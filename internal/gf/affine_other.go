//go:build !amd64

package gf

// No affine kernels off amd64: useAffine can never be switched on, so
// the stubs below are unreachable.
const affineSupported = false

var useAffine = false

func gf8AffineXorAsm(dst, src *byte, n int, mat uint64)          { panic("gf: no affine kernel") }
func gf16AffineXorAsm(dst, src *byte, n int, mats *[2][8]uint64) { panic("gf: no affine kernel") }
func gf32AffineXorAsm(dst, src *byte, n int, mats *[4][8]uint64) { panic("gf: no affine kernel") }
