package gf

import "encoding/binary"

// Multiplier is a constant bound to its lookup tables: repeated region
// operations with the same coefficient skip the per-call table build
// that MultXORs pays (512 scalar multiplies at w=16, 1024 at w=32).
// The kernel compiles decode plans into multipliers so that repeated
// decodes — and even a single decode whose matrix repeats coefficients,
// like SD's all-ones rows — amortise table construction.
//
// MultiplierFor is memoized per field (eagerly for GF(2^8), in bounded
// per-constant caches for GF(2^16) and GF(2^32)), so calling it in a
// hot path costs a cache lookup, not a table build or an allocation.
//
// A Multiplier is immutable and safe for concurrent use.
type Multiplier interface {
	// Coefficient returns the bound constant.
	Coefficient() uint32
	// MultXOR computes dst[i] ^= a * src[i] over w-bit words, exactly
	// like Field.MultXORs with the bound constant.
	MultXOR(dst, src []byte)
}

// Shared a <= 1 multipliers, one per word size, so the trivial cases
// never allocate an interface box.
var trivialMults = [3][2]Multiplier{
	{trivialMultiplier{a: 0, wb: 1}, trivialMultiplier{a: 1, wb: 1}},
	{trivialMultiplier{a: 0, wb: 2}, trivialMultiplier{a: 1, wb: 2}},
	{trivialMultiplier{a: 0, wb: 4}, trivialMultiplier{a: 1, wb: 4}},
}

// MultiplierFor returns a Multiplier bound to the constant a in the
// given field. Equal (field, constant) pairs share one multiplier
// while the per-field memo has capacity, so pointer comparison can be
// used to confirm sharing in tests.
func MultiplierFor(f Field, a uint32) Multiplier {
	switch ff := f.(type) {
	case *field8:
		a &= 0xFF
		if a <= 1 {
			return trivialMults[0][a]
		}
		return &ff.muls[a]
	case *field16:
		a &= 0xFFFF
		if a <= 1 {
			return trivialMults[1][a]
		}
		return ff.multiplier(a)
	case field32:
		if a <= 1 {
			return trivialMults[2][a]
		}
		return ff.multiplier(a)
	default:
		// Unknown Field implementation: fall back to the generic call.
		return genericMultiplier{f: f, a: a}
	}
}

// trivialMultiplier handles a == 0 (no-op) and a == 1 (plain XOR).
type trivialMultiplier struct {
	a  uint32
	wb int
}

func (m trivialMultiplier) Coefficient() uint32 { return m.a }

//ppm:hotpath
func (m trivialMultiplier) MultXOR(dst, src []byte) {
	checkRegions(dst, src, m.wb)
	if m.a == 0 {
		return
	}
	xorRegion(dst, src)
}

type multiplier8 struct {
	a   uint32
	row []uint8
	aff uint64
}

func (m *multiplier8) Coefficient() uint32 { return m.a }

//ppm:hotpath
func (m *multiplier8) MultXOR(dst, src []byte) {
	checkRegions(dst, src, 1)
	if useAffine && len(dst) >= 64 {
		n64 := len(dst) &^ 63
		gf8AffineXorAsm(&dst[0], &src[0], n64, m.aff)
		if n64 == len(dst) {
			return
		}
		dst, src = dst[n64:], src[n64:]
	}
	row := m.row
	n := len(dst) &^ 3
	for i := 0; i < n; i += 4 {
		d := dst[i : i+4 : i+4]
		s := src[i : i+4 : i+4]
		d[0] ^= row[s[0]]
		d[1] ^= row[s[1]]
		d[2] ^= row[s[2]]
		d[3] ^= row[s[3]]
	}
	for i := n; i < len(dst); i++ {
		dst[i] ^= row[src[i]]
	}
}

type multiplier16 struct {
	a   uint32
	t   *[2][256]uint16
	aff *[2][8]uint64
}

func (m *multiplier16) Coefficient() uint32 { return m.a }

//ppm:hotpath
func (m *multiplier16) MultXOR(dst, src []byte) {
	checkRegions(dst, src, 2)
	if useAffine && len(dst) >= 64 {
		n64 := len(dst) &^ 63
		gf16AffineXorAsm(&dst[0], &src[0], n64, m.aff)
		if n64 == len(dst) {
			return
		}
		dst, src = dst[n64:], src[n64:]
	}
	t := m.t
	// Main loop: four 16-bit symbols per 64-bit load/store.
	n := len(dst) &^ 7
	for i := 0; i < n; i += 8 {
		s := binary.LittleEndian.Uint64(src[i:])
		p := uint64(t[0][s&0xFF]^t[1][s>>8&0xFF]) |
			uint64(t[0][s>>16&0xFF]^t[1][s>>24&0xFF])<<16 |
			uint64(t[0][s>>32&0xFF]^t[1][s>>40&0xFF])<<32 |
			uint64(t[0][s>>48&0xFF]^t[1][s>>56])<<48
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^p)
	}
	for i := n; i+2 <= len(dst); i += 2 {
		w := binary.LittleEndian.Uint16(src[i:])
		p := t[0][w&0xFF] ^ t[1][w>>8]
		binary.LittleEndian.PutUint16(dst[i:], binary.LittleEndian.Uint16(dst[i:])^p)
	}
}

type multiplier32 struct {
	a   uint32
	t   *[4][256]uint32
	aff *[4][8]uint64
}

func (m *multiplier32) Coefficient() uint32 { return m.a }

//ppm:hotpath
func (m *multiplier32) MultXOR(dst, src []byte) {
	checkRegions(dst, src, 4)
	if useAffine && len(dst) >= 64 {
		n64 := len(dst) &^ 63
		gf32AffineXorAsm(&dst[0], &src[0], n64, m.aff)
		if n64 == len(dst) {
			return
		}
		dst, src = dst[n64:], src[n64:]
	}
	// Main loop: two 32-bit symbols per 64-bit load/store.
	n := len(dst) &^ 7
	for i := 0; i < n; i += 8 {
		s := binary.LittleEndian.Uint64(src[i:])
		lo := m.t[0][s&0xFF] ^ m.t[1][s>>8&0xFF] ^ m.t[2][s>>16&0xFF] ^ m.t[3][s>>24&0xFF]
		hi := m.t[0][s>>32&0xFF] ^ m.t[1][s>>40&0xFF] ^ m.t[2][s>>48&0xFF] ^ m.t[3][s>>56]
		p := uint64(lo) | uint64(hi)<<32
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^p)
	}
	for i := n; i+4 <= len(dst); i += 4 {
		w := binary.LittleEndian.Uint32(src[i:])
		p := m.t[0][w&0xFF] ^ m.t[1][(w>>8)&0xFF] ^ m.t[2][(w>>16)&0xFF] ^ m.t[3][w>>24]
		binary.LittleEndian.PutUint32(dst[i:], binary.LittleEndian.Uint32(dst[i:])^p)
	}
}

type genericMultiplier struct {
	f Field
	a uint32
}

func (m genericMultiplier) Coefficient() uint32     { return m.a }
func (m genericMultiplier) MultXOR(dst, src []byte) { m.f.MultXORs(dst, src, m.a) }
