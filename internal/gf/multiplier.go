package gf

import "encoding/binary"

// Multiplier is a constant bound to its lookup tables: repeated region
// operations with the same coefficient skip the per-call table build
// that MultXORs pays (512 scalar multiplies at w=16, 1024 at w=32).
// The kernel compiles decode plans into multipliers so that repeated
// decodes — and even a single decode whose matrix repeats coefficients,
// like SD's all-ones rows — amortise table construction.
//
// A Multiplier is immutable and safe for concurrent use.
type Multiplier interface {
	// Coefficient returns the bound constant.
	Coefficient() uint32
	// MultXOR computes dst[i] ^= a * src[i] over w-bit words, exactly
	// like Field.MultXORs with the bound constant.
	MultXOR(dst, src []byte)
}

// MultiplierFor returns a Multiplier bound to the constant a in the
// given field.
func MultiplierFor(f Field, a uint32) Multiplier {
	switch ff := f.(type) {
	case *field8:
		a &= 0xFF
		if a <= 1 {
			return trivialMultiplier{a: a, wb: 1}
		}
		return &multiplier8{a: a, row: ff.prod[a<<8 : a<<8+256]}
	case *field16:
		a &= 0xFFFF
		if a <= 1 {
			return trivialMultiplier{a: a, wb: 2}
		}
		m := &multiplier16{a: a}
		m.lo, m.hi = ff.splitTables16(a)
		return m
	case field32:
		if a <= 1 {
			return trivialMultiplier{a: a, wb: 4}
		}
		// Shares the field's memoized tables: compiling a plan that
		// repeats a constant — or recompiling across plans — never
		// rebuilds them.
		return &multiplier32{a: a, t: ff.tables(a)}
	default:
		// Unknown Field implementation: fall back to the generic call.
		return genericMultiplier{f: f, a: a}
	}
}

// trivialMultiplier handles a == 0 (no-op) and a == 1 (plain XOR).
type trivialMultiplier struct {
	a  uint32
	wb int
}

func (m trivialMultiplier) Coefficient() uint32 { return m.a }

func (m trivialMultiplier) MultXOR(dst, src []byte) {
	checkRegions(dst, src, m.wb)
	if m.a == 0 {
		return
	}
	xorRegion(dst, src)
}

type multiplier8 struct {
	a   uint32
	row []uint8
}

func (m *multiplier8) Coefficient() uint32 { return m.a }

func (m *multiplier8) MultXOR(dst, src []byte) {
	checkRegions(dst, src, 1)
	row := m.row
	n := len(dst) &^ 3
	for i := 0; i < n; i += 4 {
		d := dst[i : i+4 : i+4]
		s := src[i : i+4 : i+4]
		d[0] ^= row[s[0]]
		d[1] ^= row[s[1]]
		d[2] ^= row[s[2]]
		d[3] ^= row[s[3]]
	}
	for i := n; i < len(dst); i++ {
		dst[i] ^= row[src[i]]
	}
}

type multiplier16 struct {
	a      uint32
	lo, hi [256]uint16
}

func (m *multiplier16) Coefficient() uint32 { return m.a }

func (m *multiplier16) MultXOR(dst, src []byte) {
	checkRegions(dst, src, 2)
	// Main loop: four 16-bit symbols per 64-bit load/store.
	n := len(dst) &^ 7
	for i := 0; i < n; i += 8 {
		s := binary.LittleEndian.Uint64(src[i:])
		p := uint64(m.lo[s&0xFF]^m.hi[s>>8&0xFF]) |
			uint64(m.lo[s>>16&0xFF]^m.hi[s>>24&0xFF])<<16 |
			uint64(m.lo[s>>32&0xFF]^m.hi[s>>40&0xFF])<<32 |
			uint64(m.lo[s>>48&0xFF]^m.hi[s>>56])<<48
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^p)
	}
	for i := n; i+2 <= len(dst); i += 2 {
		w := binary.LittleEndian.Uint16(src[i:])
		p := m.lo[w&0xFF] ^ m.hi[w>>8]
		binary.LittleEndian.PutUint16(dst[i:], binary.LittleEndian.Uint16(dst[i:])^p)
	}
}

type multiplier32 struct {
	a uint32
	t *[4][256]uint32
}

func (m *multiplier32) Coefficient() uint32 { return m.a }

func (m *multiplier32) MultXOR(dst, src []byte) {
	checkRegions(dst, src, 4)
	// Main loop: two 32-bit symbols per 64-bit load/store.
	n := len(dst) &^ 7
	for i := 0; i < n; i += 8 {
		s := binary.LittleEndian.Uint64(src[i:])
		lo := m.t[0][s&0xFF] ^ m.t[1][s>>8&0xFF] ^ m.t[2][s>>16&0xFF] ^ m.t[3][s>>24&0xFF]
		hi := m.t[0][s>>32&0xFF] ^ m.t[1][s>>40&0xFF] ^ m.t[2][s>>48&0xFF] ^ m.t[3][s>>56]
		p := uint64(lo) | uint64(hi)<<32
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^p)
	}
	for i := n; i+4 <= len(dst); i += 4 {
		w := binary.LittleEndian.Uint32(src[i:])
		p := m.t[0][w&0xFF] ^ m.t[1][(w>>8)&0xFF] ^ m.t[2][(w>>16)&0xFF] ^ m.t[3][w>>24]
		binary.LittleEndian.PutUint32(dst[i:], binary.LittleEndian.Uint32(dst[i:])^p)
	}
}

type genericMultiplier struct {
	f Field
	a uint32
}

func (m genericMultiplier) Coefficient() uint32     { return m.a }
func (m genericMultiplier) MultXOR(dst, src []byte) { m.f.MultXORs(dst, src, m.a) }
