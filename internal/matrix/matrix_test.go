package matrix

import (
	"math/rand"
	"testing"

	"ppm/internal/gf"
)

// randomMatrix fills an r x c matrix with uniform entries (zero allowed).
func randomMatrix(rng *rand.Rand, f gf.Field, r, c int) *Matrix {
	m := New(f, r, c)
	mask := uint32((f.Order() - 1) & 0xFFFFFFFF)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.Uint32()&mask)
		}
	}
	return m
}

// randomInvertible generates a random nonsingular n x n matrix by
// rejection sampling (overwhelmingly likely to succeed quickly).
func randomInvertible(rng *rand.Rand, f gf.Field, n int) *Matrix {
	for {
		m := randomMatrix(rng, f, n, n)
		if m.Invertible() {
			return m
		}
	}
}

func TestNewAndAccessors(t *testing.T) {
	m := New(gf.GF8, 3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("dims = %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	if m.Field() != gf.GF8 {
		t.Fatal("wrong field")
	}
	if !m.IsZero() {
		t.Fatal("new matrix not zero")
	}
	m.Set(2, 3, 7)
	if m.At(2, 3) != 7 {
		t.Fatalf("At(2,3) = %d, want 7", m.At(2, 3))
	}
	if m.NNZ() != 1 {
		t.Fatalf("NNZ = %d, want 1", m.NNZ())
	}
}

func TestNewNegativeDimsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 2) did not panic")
		}
	}()
	New(gf.GF8, -1, 2)
}

func TestAtOutOfRangePanics(t *testing.T) {
	m := New(gf.GF8, 2, 2)
	for _, ij := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		ij := ij
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d,%d) did not panic", ij[0], ij[1])
				}
			}()
			m.At(ij[0], ij[1])
		}()
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows(gf.GF8, [][]uint32{
		{1, 2, 3},
		{4, 5, 6},
	})
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("dims = %s", m.Dims())
	}
	if m.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %d", m.At(1, 2))
	}
	empty := FromRows(gf.GF8, nil)
	if empty.Rows() != 0 || empty.Cols() != 0 {
		t.Fatal("FromRows(nil) not empty")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows(gf.GF8, [][]uint32{{1, 2}, {3}})
}

func TestIdentity(t *testing.T) {
	id := Identity(gf.GF16, 5)
	if !id.IsIdentity() {
		t.Fatal("Identity(5) fails IsIdentity")
	}
	if id.NNZ() != 5 {
		t.Fatalf("NNZ = %d, want 5", id.NNZ())
	}
	if New(gf.GF16, 2, 3).IsIdentity() {
		t.Fatal("non-square matrix passes IsIdentity")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := FromRows(gf.GF8, [][]uint32{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
	if !m.Equal(m.Clone()) {
		t.Fatal("clone not equal to original")
	}
}

func TestEqual(t *testing.T) {
	a := FromRows(gf.GF8, [][]uint32{{1, 2}})
	b := FromRows(gf.GF8, [][]uint32{{1, 2}})
	c := FromRows(gf.GF8, [][]uint32{{1, 3}})
	d := FromRows(gf.GF8, [][]uint32{{1}, {2}})
	if !a.Equal(b) {
		t.Error("equal matrices compare unequal")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Error("unequal matrices compare equal")
	}
}

func TestColumnIsZero(t *testing.T) {
	m := FromRows(gf.GF8, [][]uint32{
		{0, 1, 0},
		{0, 2, 0},
	})
	if !m.ColumnIsZero(0) || m.ColumnIsZero(1) || !m.ColumnIsZero(2) {
		t.Fatal("ColumnIsZero wrong")
	}
}

func TestRowView(t *testing.T) {
	m := FromRows(gf.GF8, [][]uint32{{1, 2, 3}, {4, 5, 6}})
	r := m.Row(1)
	if len(r) != 3 || r[0] != 4 || r[2] != 6 {
		t.Fatalf("Row(1) = %v", r)
	}
}

func TestNNZRandomAgainstCount(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		m := randomMatrix(rng, gf.GF8, 1+rng.Intn(10), 1+rng.Intn(10))
		count := 0
		for i := 0; i < m.Rows(); i++ {
			for j := 0; j < m.Cols(); j++ {
				if m.At(i, j) != 0 {
					count++
				}
			}
		}
		if m.NNZ() != count {
			t.Fatalf("NNZ = %d, count = %d", m.NNZ(), count)
		}
	}
}
