package matrix

import (
	"math/rand"
	"reflect"
	"testing"

	"ppm/internal/gf"
)

func TestSelectColumns(t *testing.T) {
	m := FromRows(gf.GF8, [][]uint32{
		{1, 2, 3, 4},
		{5, 6, 7, 8},
	})
	s := m.SelectColumns([]int{3, 1})
	want := FromRows(gf.GF8, [][]uint32{
		{4, 2},
		{8, 6},
	})
	if !s.Equal(want) {
		t.Fatalf("got\n%vwant\n%v", s, want)
	}
	if got := m.SelectColumns(nil); got.Cols() != 0 || got.Rows() != 2 {
		t.Fatalf("empty selection dims = %s", got.Dims())
	}
}

func TestSelectColumnsOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range column did not panic")
		}
	}()
	New(gf.GF8, 2, 2).SelectColumns([]int{2})
}

func TestSelectRows(t *testing.T) {
	m := FromRows(gf.GF8, [][]uint32{
		{1, 2},
		{3, 4},
		{5, 6},
	})
	s := m.SelectRows([]int{2, 0})
	want := FromRows(gf.GF8, [][]uint32{
		{5, 6},
		{1, 2},
	})
	if !s.Equal(want) {
		t.Fatalf("got\n%vwant\n%v", s, want)
	}
}

func TestSelectRowsOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range row did not panic")
		}
	}()
	New(gf.GF8, 2, 2).SelectRows([]int{-1})
}

func TestNonzeroColumns(t *testing.T) {
	m := FromRows(gf.GF8, [][]uint32{
		{0, 1, 0, 2},
		{0, 0, 0, 3},
	})
	if got := m.NonzeroColumns(); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Fatalf("NonzeroColumns = %v", got)
	}
	if got := New(gf.GF8, 2, 3).NonzeroColumns(); got != nil {
		t.Fatalf("all-zero matrix NonzeroColumns = %v", got)
	}
}

func TestSplitColumns(t *testing.T) {
	m := FromRows(gf.GF8, [][]uint32{
		{10, 11, 12, 13, 14},
	})
	faulty := map[int]bool{1: true, 4: true}
	sel, rest, selCols, restCols := m.SplitColumns(func(c int) bool { return faulty[c] })
	if !reflect.DeepEqual(selCols, []int{1, 4}) || !reflect.DeepEqual(restCols, []int{0, 2, 3}) {
		t.Fatalf("split cols = %v / %v", selCols, restCols)
	}
	if sel.At(0, 0) != 11 || sel.At(0, 1) != 14 {
		t.Fatalf("sel = %v", sel)
	}
	if rest.At(0, 0) != 10 || rest.At(0, 2) != 13 {
		t.Fatalf("rest = %v", rest)
	}
}

// TestSplitReassemble: selecting complementary column sets preserves all
// entries (F plus S account for every column of H, Step 2 of §II-B).
func TestSplitReassemble(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	m := randomMatrix(rng, gf.GF8, 5, 9)
	isSel := func(c int) bool { return c%3 == 0 }
	sel, rest, selCols, restCols := m.SplitColumns(isSel)
	if sel.Cols()+rest.Cols() != m.Cols() {
		t.Fatal("column counts do not add up")
	}
	for j, c := range selCols {
		for i := 0; i < m.Rows(); i++ {
			if sel.At(i, j) != m.At(i, c) {
				t.Fatal("sel entry mismatch")
			}
		}
	}
	for j, c := range restCols {
		for i := 0; i < m.Rows(); i++ {
			if rest.At(i, j) != m.At(i, c) {
				t.Fatal("rest entry mismatch")
			}
		}
	}
}
