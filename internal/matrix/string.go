package matrix

import (
	"fmt"
	"strings"
)

// String renders the matrix in aligned decimal, the way the paper's
// figures print H, F and S. Large matrices are rendered in full; the
// inspect tool truncates for display instead.
func (m *Matrix) String() string {
	if m.rows == 0 || m.cols == 0 {
		return fmt.Sprintf("[%dx%d]", m.rows, m.cols)
	}
	width := 1
	for _, v := range m.data {
		if w := len(fmt.Sprintf("%d", v)); w > width {
			width = w
		}
	}
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		b.WriteString("| ")
		for j := 0; j < m.cols; j++ {
			fmt.Fprintf(&b, "%*d ", width, m.data[i*m.cols+j])
		}
		b.WriteString("|\n")
	}
	return b.String()
}

// Dims returns a compact "RxC" description.
func (m *Matrix) Dims() string {
	return fmt.Sprintf("%dx%d", m.rows, m.cols)
}
