package matrix

import "fmt"

// SelectColumns returns the sub-matrix made of the given columns, in the
// given order. This is Step 2 of the decoding process: the faulty-block
// columns become F, the surviving-block columns become S.
func (m *Matrix) SelectColumns(cols []int) *Matrix {
	s := New(m.field, m.rows, len(cols))
	for j, c := range cols {
		if c < 0 || c >= m.cols {
			panic(fmt.Sprintf("matrix: column %d out of range [0,%d)", c, m.cols))
		}
		for i := 0; i < m.rows; i++ {
			s.data[i*s.cols+j] = m.data[i*m.cols+c]
		}
	}
	return s
}

// SelectRows returns the sub-matrix made of the given rows, in order.
// This is the partition operation of PPM Step 2: independent sub-matrix
// rows are extracted from H.
func (m *Matrix) SelectRows(rows []int) *Matrix {
	s := New(m.field, len(rows), m.cols)
	for i, r := range rows {
		if r < 0 || r >= m.rows {
			panic(fmt.Sprintf("matrix: row %d out of range [0,%d)", r, m.rows))
		}
		copy(s.data[i*s.cols:(i+1)*s.cols], m.data[r*m.cols:(r+1)*m.cols])
	}
	return s
}

// NonzeroColumns returns the indices of columns that contain at least
// one nonzero entry. The paper notes that partitioning creates all-zero
// columns in sub-matrices and that those are dropped ("all sub-matrices
// do not include the all zero columns", §III-A).
func (m *Matrix) NonzeroColumns() []int {
	var cols []int
	for j := 0; j < m.cols; j++ {
		if !m.ColumnIsZero(j) {
			cols = append(cols, j)
		}
	}
	return cols
}

// SplitColumns partitions the columns of m into (selected, rest) by a
// membership predicate over column indices, preserving order. Used to
// derive F (faulty columns) and S (surviving columns) in one pass.
func (m *Matrix) SplitColumns(selected func(col int) bool) (sel, rest *Matrix, selCols, restCols []int) {
	for j := 0; j < m.cols; j++ {
		if selected(j) {
			selCols = append(selCols, j)
		} else {
			restCols = append(restCols, j)
		}
	}
	return m.SelectColumns(selCols), m.SelectColumns(restCols), selCols, restCols
}
