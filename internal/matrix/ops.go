package matrix

import "fmt"

// Mul returns the matrix product m * o. The scalar cost of matrix-matrix
// products is negligible next to matrix-times-block-region products
// (paper §II-B footnote 2), so no cost accounting happens here.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.cols != o.rows {
		panic(fmt.Sprintf("matrix: cannot multiply %dx%d by %dx%d", m.rows, m.cols, o.rows, o.cols))
	}
	if m.field != o.field {
		panic("matrix: mixed fields in Mul")
	}
	f := m.field
	p := New(f, m.rows, o.cols)
	for i := 0; i < m.rows; i++ {
		mi := m.data[i*m.cols : (i+1)*m.cols]
		pi := p.data[i*o.cols : (i+1)*o.cols]
		for k, a := range mi {
			if a == 0 {
				continue
			}
			ok := o.data[k*o.cols : (k+1)*o.cols]
			if a == 1 {
				for j, b := range ok {
					pi[j] ^= b
				}
				continue
			}
			for j, b := range ok {
				if b != 0 {
					pi[j] ^= f.Mul(a, b)
				}
			}
		}
	}
	return p
}

// Add returns the entrywise sum (XOR) m + o.
func (m *Matrix) Add(o *Matrix) *Matrix {
	if m.rows != o.rows || m.cols != o.cols {
		panic(fmt.Sprintf("matrix: cannot add %dx%d and %dx%d", m.rows, m.cols, o.rows, o.cols))
	}
	s := New(m.field, m.rows, m.cols)
	for i, v := range m.data {
		s.data[i] = v ^ o.data[i]
	}
	return s
}

// MulVec multiplies m by a column vector of field scalars (used in tests
// to check H*B = 0 relations on scalar words).
func (m *Matrix) MulVec(v []uint32) []uint32 {
	if len(v) != m.cols {
		panic(fmt.Sprintf("matrix: vector length %d, want %d", len(v), m.cols))
	}
	f := m.field
	out := make([]uint32, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var acc uint32
		for j, a := range row {
			if a != 0 && v[j] != 0 {
				acc ^= f.Mul(a, v[j])
			}
		}
		out[i] = acc
	}
	return out
}

// Transpose returns the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := New(m.field, m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// IsIdentity reports whether m is a square identity matrix.
func (m *Matrix) IsIdentity() bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			want := uint32(0)
			if i == j {
				want = 1
			}
			if m.data[i*m.cols+j] != want {
				return false
			}
		}
	}
	return true
}

// Rank returns the rank of m, computed on a scratch copy by Gaussian
// elimination.
func (m *Matrix) Rank() int {
	a := m.Clone()
	f := a.field
	rank := 0
	for col := 0; col < a.cols && rank < a.rows; col++ {
		// Find a pivot at or below `rank` in this column.
		pivot := -1
		for i := rank; i < a.rows; i++ {
			if a.data[i*a.cols+col] != 0 {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		a.swapRows(rank, pivot)
		pv := a.data[rank*a.cols+col]
		inv := f.Inv(pv)
		a.scaleRow(rank, inv)
		for i := rank + 1; i < a.rows; i++ {
			if c := a.data[i*a.cols+col]; c != 0 {
				a.addScaledRow(i, rank, c)
			}
		}
		rank++
	}
	return rank
}

func (m *Matrix) swapRows(i, j int) {
	if i == j {
		return
	}
	ri := m.data[i*m.cols : (i+1)*m.cols]
	rj := m.data[j*m.cols : (j+1)*m.cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// scaleRow multiplies row i by the scalar a.
func (m *Matrix) scaleRow(i int, a uint32) {
	row := m.data[i*m.cols : (i+1)*m.cols]
	for k, v := range row {
		if v != 0 {
			row[k] = m.field.Mul(v, a)
		}
	}
}

// addScaledRow does row_i ^= a * row_j.
func (m *Matrix) addScaledRow(i, j int, a uint32) {
	ri := m.data[i*m.cols : (i+1)*m.cols]
	rj := m.data[j*m.cols : (j+1)*m.cols]
	if a == 1 {
		for k, v := range rj {
			ri[k] ^= v
		}
		return
	}
	for k, v := range rj {
		if v != 0 {
			ri[k] ^= m.field.Mul(a, v)
		}
	}
}
