package matrix

import (
	"errors"
	"fmt"
)

// ErrSingular is returned by Invert when the matrix has no inverse.
// For a decoder this means the failure pattern is not recoverable by
// this code instance (or the coding coefficients are unsuitable).
var ErrSingular = errors.New("matrix: singular matrix")

// Invert returns m^-1 using Gauss–Jordan elimination with row pivoting,
// or ErrSingular. m is not modified. This implements Step 3 of the
// traditional decoding process and Step 3.2 of PPM.
func (m *Matrix) Invert() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("matrix: cannot invert non-square %dx%d matrix", m.rows, m.cols)
	}
	n := m.rows
	a := m.Clone()
	inv := Identity(m.field, n)
	f := m.field

	for col := 0; col < n; col++ {
		// Pivot: first nonzero at or below the diagonal.
		pivot := -1
		for i := col; i < n; i++ {
			if a.data[i*n+col] != 0 {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			return nil, ErrSingular
		}
		a.swapRows(col, pivot)
		inv.swapRows(col, pivot)

		if pv := a.data[col*n+col]; pv != 1 {
			s := f.Inv(pv)
			a.scaleRow(col, s)
			inv.scaleRow(col, s)
		}
		for i := 0; i < n; i++ {
			if i == col {
				continue
			}
			if c := a.data[i*n+col]; c != 0 {
				a.addScaledRow(i, col, c)
				inv.addScaledRow(i, col, c)
			}
		}
	}
	return inv, nil
}

// Invertible reports whether m is square and nonsingular.
func (m *Matrix) Invertible() bool {
	if m.rows != m.cols {
		return false
	}
	return m.Rank() == m.rows
}

// PivotRows returns indices of rows of m forming a square invertible
// basis: exactly m.Cols() rows whose restriction to all columns has full
// rank. It is used when a decode is over-determined (fewer erasures than
// parity-check rows, e.g. LRC degraded reads): the decoder keeps only
// the selected equations so F becomes square. Rows are chosen greedily
// in order, so equations earlier in H (for LRC: the cheap local rows)
// are preferred over later ones (the dense global rows) — which is also
// what minimises u(S) for the surviving part.
func (m *Matrix) PivotRows() ([]int, error) {
	want := m.cols
	if m.rows < want {
		return nil, ErrSingular
	}
	f := m.field
	var chosen []int
	// reduced holds the chosen rows after forward elimination, and
	// pivotCol[i] the leading column of reduced row i.
	var reduced [][]uint32
	var pivotCol []int
	for r := 0; r < m.rows && len(chosen) < want; r++ {
		row := append([]uint32(nil), m.Row(r)...)
		for i, pc := range pivotCol {
			if row[pc] != 0 {
				c := f.Div(row[pc], reduced[i][pc])
				for k := range row {
					if reduced[i][k] != 0 {
						row[k] ^= f.Mul(c, reduced[i][k])
					}
				}
			}
		}
		lead := -1
		for k, v := range row {
			if v != 0 {
				lead = k
				break
			}
		}
		if lead < 0 {
			continue // linearly dependent on the chosen rows
		}
		chosen = append(chosen, r)
		reduced = append(reduced, row)
		pivotCol = append(pivotCol, lead)
	}
	if len(chosen) != want {
		return nil, ErrSingular
	}
	return chosen, nil
}
