// Package matrix implements dense matrix algebra over GF(2^w) for the
// parity-check method: construction, multiplication, Gauss–Jordan
// inversion, row/column extraction and the nonzero count u(M) that the
// PPM paper's cost model C1..C4 is defined on.
package matrix

import (
	"fmt"

	"ppm/internal/gf"
)

// Matrix is a dense rows x cols matrix with entries in the field.
// Entries are stored row-major. The zero Matrix is not usable; build
// with New or one of the derivation helpers.
type Matrix struct {
	rows, cols int
	data       []uint32
	field      gf.Field
}

// New returns a zero-filled rows x cols matrix over the field.
func New(field gf.Field, rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{
		rows:  rows,
		cols:  cols,
		data:  make([]uint32, rows*cols),
		field: field,
	}
}

// FromRows builds a matrix from row slices (all the same length).
// Intended for tests and worked examples.
func FromRows(field gf.Field, rows [][]uint32) *Matrix {
	if len(rows) == 0 {
		return New(field, 0, 0)
	}
	m := New(field, len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic(fmt.Sprintf("matrix: row %d has %d entries, want %d", i, len(r), m.cols))
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(field gf.Field, n int) *Matrix {
	m := New(field, n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the row count.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Matrix) Cols() int { return m.cols }

// Field returns the field the entries live in.
func (m *Matrix) Field() gf.Field { return m.field }

// At returns the entry at row i, column j.
func (m *Matrix) At(i, j int) uint32 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the entry at row i, column j.
func (m *Matrix) Set(i, j int, v uint32) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Row returns a read-only view of row i. Callers must not modify it.
func (m *Matrix) Row(i int) []uint32 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of range [0,%d)", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols : (i+1)*m.cols]
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.field, m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Equal reports whether two matrices have identical shape and entries.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i, v := range m.data {
		if o.data[i] != v {
			return false
		}
	}
	return true
}

// NNZ returns u(M), the number of nonzero coefficients. One nonzero
// coefficient costs exactly one mult_XORs() in a matrix-times-blocks
// product, which is why the paper's C1..C4 are sums of NNZ values.
func (m *Matrix) NNZ() int {
	n := 0
	for _, v := range m.data {
		if v != 0 {
			n++
		}
	}
	return n
}

// IsZero reports whether every entry is zero.
func (m *Matrix) IsZero() bool { return m.NNZ() == 0 }

// ColumnIsZero reports whether column j is entirely zero.
func (m *Matrix) ColumnIsZero(j int) bool {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: column %d out of range [0,%d)", j, m.cols))
	}
	for i := 0; i < m.rows; i++ {
		if m.data[i*m.cols+j] != 0 {
			return false
		}
	}
	return true
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}
