package matrix

import (
	"math/rand"
	"testing"

	"ppm/internal/gf"
)

var opsFields = []struct {
	name string
	f    gf.Field
}{
	{"GF8", gf.GF8},
	{"GF16", gf.GF16},
	{"GF32", gf.GF32},
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, tf := range opsFields {
		tf := tf
		t.Run(tf.name, func(t *testing.T) {
			m := randomMatrix(rng, tf.f, 4, 6)
			left := Identity(tf.f, 4).Mul(m)
			right := m.Mul(Identity(tf.f, 6))
			if !left.Equal(m) || !right.Equal(m) {
				t.Fatal("identity multiplication changed the matrix")
			}
		})
	}
}

func TestMulAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, tf := range opsFields {
		tf := tf
		t.Run(tf.name, func(t *testing.T) {
			for trial := 0; trial < 10; trial++ {
				a := randomMatrix(rng, tf.f, 3, 4)
				b := randomMatrix(rng, tf.f, 4, 5)
				c := randomMatrix(rng, tf.f, 5, 2)
				if !a.Mul(b).Mul(c).Equal(a.Mul(b.Mul(c))) {
					t.Fatal("matrix multiplication not associative")
				}
			}
		})
	}
}

func TestMulDistributesOverAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 10; trial++ {
		a := randomMatrix(rng, gf.GF8, 3, 4)
		b := randomMatrix(rng, gf.GF8, 4, 5)
		c := randomMatrix(rng, gf.GF8, 4, 5)
		if !a.Mul(b.Add(c)).Equal(a.Mul(b).Add(a.Mul(c))) {
			t.Fatal("A(B+C) != AB + AC")
		}
	}
}

func TestMulKnownValues(t *testing.T) {
	// Over GF(2^8): [1 2; 3 4] * [5; 6] with XOR addition.
	a := FromRows(gf.GF8, [][]uint32{{1, 2}, {3, 4}})
	b := FromRows(gf.GF8, [][]uint32{{5}, {6}})
	got := a.Mul(b)
	f := gf.GF8
	want := FromRows(gf.GF8, [][]uint32{
		{f.Mul(1, 5) ^ f.Mul(2, 6)},
		{f.Mul(3, 5) ^ f.Mul(4, 6)},
	})
	if !got.Equal(want) {
		t.Fatalf("got\n%vwant\n%v", got, want)
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	New(gf.GF8, 2, 3).Mul(New(gf.GF8, 2, 3))
}

func TestMulMixedFieldsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mixed fields did not panic")
		}
	}()
	New(gf.GF8, 2, 3).Mul(New(gf.GF16, 3, 2))
}

func TestAddSelfIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	m := randomMatrix(rng, gf.GF16, 5, 5)
	if !m.Add(m).IsZero() {
		t.Fatal("M + M != 0 in characteristic 2")
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows(gf.GF8, [][]uint32{{1, 1, 0}, {0, 2, 3}})
	v := []uint32{7, 9, 11}
	got := a.MulVec(v)
	f := gf.GF8
	want := []uint32{7 ^ 9, f.Mul(2, 9) ^ f.Mul(3, 11)}
	if got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("MulVec = %v, want %v", got, want)
	}
}

func TestMulVecAgreesWithMul(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	m := randomMatrix(rng, gf.GF8, 4, 6)
	v := make([]uint32, 6)
	for i := range v {
		v[i] = uint32(rng.Intn(256))
	}
	col := New(gf.GF8, 6, 1)
	for i, x := range v {
		col.Set(i, 0, x)
	}
	prod := m.Mul(col)
	vec := m.MulVec(v)
	for i := range vec {
		if prod.At(i, 0) != vec[i] {
			t.Fatalf("row %d: Mul=%d MulVec=%d", i, prod.At(i, 0), vec[i])
		}
	}
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	m := randomMatrix(rng, gf.GF8, 3, 5)
	tr := m.Transpose()
	if tr.Rows() != 5 || tr.Cols() != 3 {
		t.Fatalf("transpose dims %s", tr.Dims())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatal("transpose entry mismatch")
			}
		}
	}
	if !tr.Transpose().Equal(m) {
		t.Fatal("double transpose != original")
	}
}

func TestRank(t *testing.T) {
	if got := Identity(gf.GF8, 4).Rank(); got != 4 {
		t.Fatalf("rank(I4) = %d", got)
	}
	if got := New(gf.GF8, 3, 5).Rank(); got != 0 {
		t.Fatalf("rank(0) = %d", got)
	}
	// Duplicate rows reduce rank.
	m := FromRows(gf.GF8, [][]uint32{
		{1, 2, 3},
		{1, 2, 3},
		{0, 1, 0},
	})
	if got := m.Rank(); got != 2 {
		t.Fatalf("rank = %d, want 2", got)
	}
}

func TestRankOfProductBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 10; trial++ {
		a := randomMatrix(rng, gf.GF8, 4, 3)
		b := randomMatrix(rng, gf.GF8, 3, 5)
		p := a.Mul(b)
		if p.Rank() > 3 {
			t.Fatalf("rank(AB) = %d > 3", p.Rank())
		}
	}
}

func TestStringRendering(t *testing.T) {
	m := FromRows(gf.GF8, [][]uint32{{1, 22}, {3, 4}})
	s := m.String()
	if s == "" {
		t.Fatal("empty rendering")
	}
	if New(gf.GF8, 0, 3).String() != "[0x3]" {
		t.Fatalf("empty-matrix rendering = %q", New(gf.GF8, 0, 3).String())
	}
}
