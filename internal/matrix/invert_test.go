package matrix

import (
	"errors"
	"math/rand"
	"testing"

	"ppm/internal/gf"
)

func TestInvertIdentity(t *testing.T) {
	for _, tf := range opsFields {
		id := Identity(tf.f, 6)
		inv, err := id.Invert()
		if err != nil {
			t.Fatalf("%s: %v", tf.name, err)
		}
		if !inv.IsIdentity() {
			t.Fatalf("%s: inverse of I is not I", tf.name)
		}
	}
}

func TestInvertRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, tf := range opsFields {
		tf := tf
		t.Run(tf.name, func(t *testing.T) {
			for _, n := range []int{1, 2, 3, 5, 8, 16} {
				m := randomInvertible(rng, tf.f, n)
				inv, err := m.Invert()
				if err != nil {
					t.Fatalf("n=%d: %v", n, err)
				}
				if !m.Mul(inv).IsIdentity() {
					t.Fatalf("n=%d: A * A^-1 != I", n)
				}
				if !inv.Mul(m).IsIdentity() {
					t.Fatalf("n=%d: A^-1 * A != I", n)
				}
			}
		})
	}
}

func TestInvertSingular(t *testing.T) {
	// Row 1 = 2 * row 0 over GF(2^8).
	f := gf.GF8
	m := FromRows(f, [][]uint32{
		{1, 2, 3},
		{2, 4, 6},
		{0, 0, 5},
	})
	if _, err := m.Invert(); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
	if m.Invertible() {
		t.Fatal("singular matrix reported invertible")
	}
	zero := New(f, 3, 3)
	if _, err := zero.Invert(); !errors.Is(err, ErrSingular) {
		t.Fatalf("zero matrix err = %v", err)
	}
}

func TestInvertNonSquare(t *testing.T) {
	if _, err := New(gf.GF8, 2, 3).Invert(); err == nil {
		t.Fatal("non-square Invert did not error")
	}
	if New(gf.GF8, 2, 3).Invertible() {
		t.Fatal("non-square matrix reported invertible")
	}
}

func TestInvertDoesNotModifyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := randomInvertible(rng, gf.GF8, 5)
	before := m.Clone()
	if _, err := m.Invert(); err != nil {
		t.Fatal(err)
	}
	if !m.Equal(before) {
		t.Fatal("Invert modified its receiver")
	}
}

func TestInvertInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	m := randomInvertible(rng, gf.GF16, 6)
	inv, err := m.Invert()
	if err != nil {
		t.Fatal(err)
	}
	back, err := inv.Invert()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(m) {
		t.Fatal("(A^-1)^-1 != A")
	}
}

// TestCauchyAlwaysInvertible pins the property the RS baseline relies
// on: every square Cauchy matrix over a field is invertible.
func TestCauchyAlwaysInvertible(t *testing.T) {
	f := gf.GF8
	for _, n := range []int{1, 2, 3, 4, 6} {
		c := New(f, n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				// x_i = i, y_j = n + j: disjoint sets, so x_i + y_j != 0.
				c.Set(i, j, f.Inv(uint32(i)^uint32(n+j)))
			}
		}
		if !c.Invertible() {
			t.Fatalf("Cauchy %dx%d not invertible", n, n)
		}
	}
}

// TestInverseProductNNZ reproduces the paper's §II-B observation on the
// worked example's matrices: u(F^-1 * S) can differ from u(F^-1) + u(S),
// which is exactly why calculation order matters.
func TestInverseProductNNZ(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	diffSeen := false
	for trial := 0; trial < 50 && !diffSeen; trial++ {
		fM := randomInvertible(rng, gf.GF8, 4)
		s := randomMatrix(rng, gf.GF8, 4, 7)
		inv, err := fM.Invert()
		if err != nil {
			t.Fatal(err)
		}
		if inv.Mul(s).NNZ() != inv.NNZ()+s.NNZ() {
			diffSeen = true
		}
	}
	if !diffSeen {
		t.Fatal("never observed u(F^-1 S) != u(F^-1)+u(S); NNZ logic suspect")
	}
}

func TestPivotRows(t *testing.T) {
	f := gf.GF8
	// 4 rows, 2 columns; row 1 duplicates row 0.
	m := FromRows(f, [][]uint32{
		{1, 2},
		{1, 2},
		{0, 3},
		{5, 0},
	})
	rows, err := m.PivotRows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0] != 0 || rows[1] != 2 {
		t.Fatalf("rows = %v, want greedy [0 2]", rows)
	}
	if !m.SelectRows(rows).Invertible() {
		t.Fatal("selected rows not invertible")
	}
}

func TestPivotRowsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 30; trial++ {
		cols := 1 + rng.Intn(5)
		rows := cols + rng.Intn(4)
		// Build a full-column-rank matrix: random invertible square
		// stacked with random extra rows, then shuffled.
		sq := randomInvertible(rng, gf.GF8, cols)
		m := New(gf.GF8, rows, cols)
		perm := rng.Perm(rows)
		for i := 0; i < cols; i++ {
			for j := 0; j < cols; j++ {
				m.Set(perm[i], j, sq.At(i, j))
			}
		}
		for i := cols; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(perm[i], j, uint32(rng.Intn(256)))
			}
		}
		idx, err := m.PivotRows()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(idx) != cols || !m.SelectRows(idx).Invertible() {
			t.Fatalf("trial %d: bad pivot rows %v", trial, idx)
		}
	}
}

func TestPivotRowsSingular(t *testing.T) {
	// Rank-deficient: both rows proportional.
	m := FromRows(gf.GF8, [][]uint32{
		{1, 2},
		{2, 4},
		{3, 6},
	})
	if _, err := m.PivotRows(); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
	// Fewer rows than columns.
	if _, err := New(gf.GF8, 1, 3).PivotRows(); !errors.Is(err, ErrSingular) {
		t.Fatal("short matrix accepted")
	}
}
