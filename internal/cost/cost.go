// Package cost implements the §III-B computational-cost analysis: the
// paper's closed-form expressions for C1..C4 on SD worst-case failures,
// exact cost evaluation by nonzero counting on real parity-check
// matrices, and the series generators behind Figures 4-6.
package cost

import (
	"fmt"
	"math/rand"

	"ppm/internal/codes"
	"ppm/internal/core"
)

// Costs4 carries the four §III-B calculation-sequence costs.
type Costs4 struct {
	C1, C2, C3, C4 int64
}

// Ratio4 returns C2/C1, C3/C1, C4/C1, the quantities Figures 4-6 plot.
func (c Costs4) Ratio4() (r2, r3, r4 float64) {
	c1 := float64(c.C1)
	return float64(c.C2) / c1, float64(c.C3) / c1, float64(c.C4) / c1
}

// ClosedForm evaluates the paper's closed-form cost expressions for an
// SD worst case with m failed disks and s extra sector failures in z
// rows:
//
//	C1 = n·r·(m+s) + m·(m·r+s)·(z−1) + m²·(r−z)
//	C2 = (n·r−(m·r+s))·(m·z+s) + m·(n−m)·(r−z)
//	C3 = (n·r−(m+s))·(m·z+s) + m·(n−m)·(r−z)
//	C4 = n·r·(m+s) + m·(m·z+s)·(z−1) − m²·(r−z)
//
// The paper derived these "by the simulation results ... (print the
// number of non-zero elements in each matrix and sum them)", i.e. they
// are empirical fits to a particular instance family; the exact counts
// from Exact are the ground truth this library's tests verify the plan
// costs against (they match the formulas on the paper's worked example).
func ClosedForm(n, r, m, s, z int) Costs4 {
	N, R, M, S, Z := int64(n), int64(r), int64(m), int64(s), int64(z)
	return Costs4{
		C1: N*R*(M+S) + M*(M*R+S)*(Z-1) + M*M*(R-Z),
		C2: (N*R-(M*R+S))*(M*Z+S) + M*(N-M)*(R-Z),
		C3: (N*R-(M+S))*(M*Z+S) + M*(N-M)*(R-Z),
		C4: N*R*(M+S) + M*(M*Z+S)*(Z-1) - M*M*(R-Z),
	}
}

// ClosedFormReduction returns the paper's cost reduction C1 - C4 =
// m²·(z+1)·(r−z). (The paper prints the last factor once as (r−1) and
// once as (r−z); the worked example has z = 1 where they coincide, and
// the ClosedForm expressions above give (r−z)·(z+1)·m² + m·(z−1)·(m·r −
// m·z) exactly; this helper returns C1−C4 computed from ClosedForm so it
// is always self-consistent.)
func ClosedFormReduction(n, r, m, s, z int) int64 {
	c := ClosedForm(n, r, m, s, z)
	return c.C1 - c.C4
}

// Exact evaluates the four costs for a concrete code instance and
// scenario by building an Auto plan (which counts nonzeros on the real
// matrices).
func Exact(c codes.Code, sc codes.Scenario) (Costs4, error) {
	plan, err := core.BuildPlan(c, sc, core.StrategyAuto)
	if err != nil {
		return Costs4{}, err
	}
	return Costs4{
		C1: plan.Costs.C1,
		C2: plan.Costs.C2,
		C3: plan.Costs.C3,
		C4: plan.Costs.C4,
	}, nil
}

// ExactSDWorstCase draws a decodable SD worst-case scenario with the
// seeded RNG and returns its exact costs.
func ExactSDWorstCase(sd *codes.SD, z int, seed int64) (Costs4, codes.Scenario, error) {
	rng := rand.New(rand.NewSource(seed))
	sc, err := sd.WorstCaseScenario(rng, z)
	if err != nil {
		return Costs4{}, codes.Scenario{}, err
	}
	c4, err := Exact(sd, sc)
	return c4, sc, err
}

// Point is one x/y series sample for the figure generators.
type Point struct {
	N              int
	R2, R3, R4     float64
	C1, C2, C3, C4 int64
}

// SweepN evaluates exact cost ratios over a range of n for fixed r, m,
// s, z — one curve of Figure 4 (z=1) or Figure 5 (z up to s).
func SweepN(nLo, nHi, step, r, m, s, z int, seed int64) ([]Point, error) {
	var pts []Point
	for n := nLo; n <= nHi; n += step {
		if m >= n {
			continue
		}
		sd, err := codes.NewSD(n, r, m, s)
		if err != nil {
			return nil, fmt.Errorf("cost: n=%d: %w", n, err)
		}
		c4, _, err := ExactSDWorstCase(sd, z, seed+int64(n))
		if err != nil {
			return nil, fmt.Errorf("cost: n=%d: %w", n, err)
		}
		r2, r3, r4 := c4.Ratio4()
		pts = append(pts, Point{N: n, R2: r2, R3: r3, R4: r4, C1: c4.C1, C2: c4.C2, C3: c4.C3, C4: c4.C4})
	}
	return pts, nil
}
