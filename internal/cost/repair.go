package cost

// Repair-bandwidth cost model (extension beyond the paper). The §III-B
// analysis minimises mult_XORs; on a real array the dominant repair
// cost is bytes read off surviving disks (the repair-bandwidth lens of
// product-matrix regenerating codes, arXiv:1412.3022). A repair plan is
// therefore scored lexicographically: survivor sectors read first,
// predicted mult_XORs as the tiebreak — equivalently the product
// bytes-read × mult_XORs when either factor ties.
type RepairCost struct {
	// ReadSectors is the number of distinct survivor sectors the plan
	// reads from the array (recovered intermediates are not re-read).
	ReadSectors int `json:"read_sectors"`
	// FullReadSectors is what a full-stripe decode reads: every
	// surviving sector of the stripe.
	FullReadSectors int `json:"full_read_sectors"`
	// MultXORs is the plan's predicted operation count (the paper's
	// nonzero-sum metric, identical to kernel.Stats accounting).
	MultXORs int64 `json:"mult_xors"`
}

// ReadFraction is bytes read relative to a full-stripe decode; the LRC
// single-failure repair gate requires <= 0.60 here.
func (c RepairCost) ReadFraction() float64 {
	if c.FullReadSectors == 0 {
		return 0
	}
	return float64(c.ReadSectors) / float64(c.FullReadSectors)
}

// Score is the combined bytes-read × mult_XORs figure of merit (lower
// is better). Candidate survivor sets are compared by Less, which
// breaks score ties toward fewer bytes read.
func (c RepairCost) Score() float64 {
	return float64(c.ReadSectors) * float64(c.MultXORs)
}

// Less orders candidate repair plans: fewer survivor sectors wins, and
// an equal read footprint falls back to the mult_XORs count.
func (c RepairCost) Less(o RepairCost) bool {
	if c.ReadSectors != o.ReadSectors {
		return c.ReadSectors < o.ReadSectors
	}
	return c.MultXORs < o.MultXORs
}
