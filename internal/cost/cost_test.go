package cost

import (
	"math"
	"testing"

	"ppm/internal/codes"
	"ppm/internal/gf"
)

// TestClosedFormPaperExample pins the formulas to the worked example's
// published numbers (§II-B / §III-B).
func TestClosedFormPaperExample(t *testing.T) {
	c := ClosedForm(4, 4, 1, 1, 1)
	if c.C1 != 35 || c.C2 != 31 || c.C3 != 37 || c.C4 != 29 {
		t.Fatalf("closed form = %+v, paper says 35/31/37/29", c)
	}
	if red := ClosedFormReduction(4, 4, 1, 1, 1); red != 6 {
		t.Fatalf("C1-C4 = %d, want 6 (m²(z+1)(r-1) with m=1,z=1,r=4)", red)
	}
}

// TestExactMatchesClosedFormExactly: configurations where the instance
// family matches the paper's structural assumptions reproduce the
// closed forms to the operation.
func TestExactMatchesClosedFormExactly(t *testing.T) {
	sd, err := codes.NewSDWithCoefficients(4, 4, 1, 1, gf.GF8, []uint32{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := codes.NewScenario(sd, []int{2, 6, 10, 13, 14})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Exact(sd, sc)
	if err != nil {
		t.Fatal(err)
	}
	if exact != ClosedForm(4, 4, 1, 1, 1) {
		t.Fatalf("exact = %+v, closed = %+v", exact, ClosedForm(4, 4, 1, 1, 1))
	}
}

// TestExactTracksClosedForm: across the paper's parameter grid the exact
// counts track the closed forms within a small tolerance (deviations
// come from accidental zero coefficients in F^-1·S products and from
// sector failures landing on coding-sector rows).
func TestExactTracksClosedForm(t *testing.T) {
	if testing.Short() {
		t.Skip("parameter sweep")
	}
	for _, cfg := range []struct{ n, r, m, s, z int }{
		{6, 16, 1, 1, 1}, {6, 16, 2, 2, 1}, {6, 16, 2, 2, 2},
		{8, 16, 3, 3, 2}, {11, 16, 2, 3, 3}, {16, 16, 1, 2, 1},
		{21, 8, 3, 1, 1}, {24, 16, 2, 1, 1},
	} {
		sd, err := codes.NewSD(cfg.n, cfg.r, cfg.m, cfg.s)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		exact, _, err := ExactSDWorstCase(sd, cfg.z, 42)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		cf := ClosedForm(cfg.n, cfg.r, cfg.m, cfg.s, cfg.z)
		check := func(name string, got, want int64) {
			if want == 0 {
				t.Fatalf("%+v: closed-form %s is zero", cfg, name)
			}
			if dev := math.Abs(float64(got-want)) / float64(want); dev > 0.03 {
				t.Errorf("%+v: %s exact %d vs closed %d (%.1f%% off)", cfg, name, got, want, dev*100)
			}
		}
		check("C1", exact.C1, cf.C1)
		check("C2", exact.C2, cf.C2)
		check("C3", exact.C3, cf.C3)
		check("C4", exact.C4, cf.C4)
	}
}

// TestC4AlwaysBeatsC1: the paper's headline analytic claim, C4 < C1 for
// every configuration in the studied range.
func TestC4AlwaysBeatsC1(t *testing.T) {
	for n := 4; n <= 24; n += 5 {
		for r := 4; r <= 24; r += 5 {
			for m := 1; m <= 3 && m < n; m++ {
				for s := 1; s <= 3; s++ {
					for z := 1; z <= s && z <= r; z++ {
						c := ClosedForm(n, r, m, s, z)
						if c.C4 >= c.C1 {
							t.Fatalf("n=%d r=%d m=%d s=%d z=%d: C4=%d >= C1=%d", n, r, m, s, z, c.C4, c.C1)
						}
						if c.C2 >= c.C3 {
							t.Fatalf("n=%d r=%d m=%d s=%d z=%d: C3=%d <= C2=%d (paper: C3-C2 > 0)", n, r, m, s, z, c.C3, c.C2)
						}
					}
				}
			}
		}
	}
}

// TestC4RatioShrinksWithR reproduces Figure 6's observation: C4/C1
// decreases as r increases.
func TestC4RatioShrinksWithR(t *testing.T) {
	prev := math.Inf(1)
	for r := 4; r <= 24; r += 4 {
		c := ClosedForm(16, r, 2, 3, 1)
		_, _, r4 := c.Ratio4()
		if r4 >= prev {
			t.Fatalf("r=%d: C4/C1 = %.4f did not decrease (prev %.4f)", r, r4, prev)
		}
		prev = r4
	}
}

// TestC4RatioShrinksWithZ reproduces Figure 5: C4/C1 decreases as z
// grows (s=3, r=16).
func TestC4RatioShrinksWithZ(t *testing.T) {
	prev := math.Inf(1)
	for z := 1; z <= 3; z++ {
		c := ClosedForm(16, 16, 2, 3, z)
		_, _, r4 := c.Ratio4()
		if r4 >= prev {
			t.Fatalf("z=%d: C4/C1 = %.4f did not decrease (prev %.4f)", z, r4, prev)
		}
		prev = r4
	}
}

// TestC4RatioGrowsWithN reproduces Figure 4's observation: C4/C1 grows
// with n.
func TestC4RatioGrowsWithN(t *testing.T) {
	prev := 0.0
	for n := 6; n <= 24; n += 6 {
		c := ClosedForm(n, 16, 2, 2, 1)
		_, _, r4 := c.Ratio4()
		if r4 <= prev {
			t.Fatalf("n=%d: C4/C1 = %.4f did not increase (prev %.4f)", n, r4, prev)
		}
		prev = r4
	}
}

// TestSweepN drives the Figure 4 series generator end to end.
func TestSweepN(t *testing.T) {
	pts, err := SweepN(6, 11, 5, 8, 2, 2, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.R4 <= 0 || p.R4 >= 1 {
			t.Fatalf("n=%d: C4/C1 = %.4f out of (0,1)", p.N, p.R4)
		}
		if p.C1 <= 0 {
			t.Fatalf("n=%d: C1 = %d", p.N, p.C1)
		}
	}
}

// TestPaperAverageC4Ratio reproduces the §III-B aggregate: over the
// Figure 4 grid (r=16, z=1, n in 6..24, m,s in 1..3) the average C4/C1
// is about 85.78%, ranging from roughly 48% to 98%.
func TestPaperAverageC4Ratio(t *testing.T) {
	sum, count := 0.0, 0
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, m := range []int{1, 2, 3} {
		for _, s := range []int{1, 2, 3} {
			for n := 6; n <= 24; n++ {
				c := ClosedForm(n, 16, m, s, 1)
				_, _, r4 := c.Ratio4()
				sum += r4
				count++
				lo = math.Min(lo, r4)
				hi = math.Max(hi, r4)
			}
		}
	}
	avg := sum / float64(count)
	if avg < 0.82 || avg > 0.90 {
		t.Fatalf("average C4/C1 = %.4f, paper says 85.78%%", avg)
	}
	if lo < 0.44 || lo > 0.55 {
		t.Fatalf("min C4/C1 = %.4f, paper says 47.97%%", lo)
	}
	if hi < 0.95 || hi > 1.0 {
		t.Fatalf("max C4/C1 = %.4f, paper says 98.06%%", hi)
	}
}
