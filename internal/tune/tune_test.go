package tune

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"ppm/internal/kernel"
	"ppm/internal/pipeline"
)

// withKernelKnobs restores the process-wide kernel knobs after a test
// that Applies profiles.
func withKernelKnobs(t *testing.T) {
	t.Helper()
	tile, fanout := kernel.TileSize(), kernel.FanoutMinBytes()
	t.Cleanup(func() {
		kernel.SetTileSize(tile)
		kernel.SetFanoutMinBytes(fanout)
	})
}

// testProfile is a deterministic profile valid for the current host.
func testProfile() *Profile {
	return &Profile{
		Version:        Version,
		Created:        "2026-08-08T00:00:00Z",
		Host:           hostInfo(),
		TileBytes:      16 << 10,
		FanoutMinBytes: 1 << 20,
		Depth:          7,
		Workers:        1,
		PoolSize:       3,
		Scores:         Scores{TileMBs: 123.5, MemStripesS: 456.25, StoreStripesS: 78.125},
	}
}

// TestProfileRoundTrip pins the persistence format: Save then Load
// returns the identical profile, at the documented per-host path.
func TestProfileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	t.Setenv(EnvDir, dir)

	want := testProfile()
	if err := Save(want); err != nil {
		t.Fatal(err)
	}
	path, err := Path()
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(path) != dir {
		t.Errorf("profile path %s not under %s", path, dir)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("profile file: %v", err)
	}
	got, err := Load()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip changed the profile:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestLoadRejectsForeignProfile: a profile calibrated on a different
// host shape (or schema) does not serve this process.
func TestLoadRejectsForeignProfile(t *testing.T) {
	t.Setenv(EnvDir, t.TempDir())
	p := testProfile()
	p.Host.NumCPU++ // a different machine
	if err := Save(p); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(); err == nil {
		t.Fatal("Load accepted a foreign-host profile")
	}

	p = testProfile()
	p.Version = Version + 1
	if err := Save(p); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(); err == nil {
		t.Fatal("Load accepted a foreign-schema profile")
	}
}

// TestAutoAppliesProfile: a persisted profile flows through
// pipeline.Config{Auto: true} into both the kernel knobs and the
// resolved engine/pool configuration.
func TestAutoAppliesProfile(t *testing.T) {
	withKernelKnobs(t)
	t.Setenv(EnvDir, t.TempDir())
	want := testProfile()
	if err := Save(want); err != nil {
		t.Fatal(err)
	}
	resetForTest()
	defer resetForTest()

	c, sc, err := calCode(4)
	if err != nil {
		t.Fatal(err)
	}
	e, err := pipeline.New(c, sc, 64, pipeline.Config{Auto: true})
	if err != nil {
		t.Fatal(err)
	}
	got := e.Config()
	e.Close()
	if got.Depth != want.Depth || got.Workers != want.Workers {
		t.Errorf("auto engine resolved Depth=%d Workers=%d, want %d/%d",
			got.Depth, got.Workers, want.Depth, want.Workers)
	}
	if kernel.TileSize() != want.TileBytes {
		t.Errorf("tile size %d after Auto, want %d", kernel.TileSize(), want.TileBytes)
	}
	if kernel.FanoutMinBytes() != want.FanoutMinBytes {
		t.Errorf("fan-out threshold %d after Auto, want %d", kernel.FanoutMinBytes(), want.FanoutMinBytes)
	}

	// Pool size 0 under Auto selects the profile's pool size; explicit
	// config fields always beat the profile.
	p, err := pipeline.NewPool(c, sc, 64, 0, pipeline.Config{Auto: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != want.PoolSize {
		t.Errorf("auto pool size %d, want %d", p.Size(), want.PoolSize)
	}
	p.Close()

	e2, err := pipeline.New(c, sc, 64, pipeline.Config{Auto: true, Depth: 12, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	got2 := e2.Config()
	e2.Close()
	if got2.Depth != 12 || got2.Workers != 2 {
		t.Errorf("explicit fields lost to the profile: Depth=%d Workers=%d", got2.Depth, got2.Workers)
	}
}

// TestAutoDisabled: PPM_TUNE=off bypasses loading and calibration —
// Auto configs resolve to the static defaults.
func TestAutoDisabled(t *testing.T) {
	t.Setenv(EnvDir, t.TempDir())
	t.Setenv(EnvDisable, "off")
	resetForTest()
	defer resetForTest()

	if p, err := Get(); p != nil || err != nil {
		t.Fatalf("disabled Get = (%v, %v), want (nil, nil)", p, err)
	}
	c, sc, err := calCode(4)
	if err != nil {
		t.Fatal(err)
	}
	e, err := pipeline.New(c, sc, 64, pipeline.Config{Auto: true})
	if err != nil {
		t.Fatal(err)
	}
	got := e.Config()
	e.Close()
	def, err := pipeline.New(c, sc, 64, pipeline.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := def.Config()
	def.Close()
	if got.Depth != want.Depth || got.Workers != want.Workers {
		t.Errorf("disabled Auto resolved Depth=%d Workers=%d, static default is %d/%d",
			got.Depth, got.Workers, want.Depth, want.Workers)
	}
}

// TestGetCalibratesAndPersists: first Get on a fresh cache calibrates
// and writes the profile; later processes (simulated by dropping the
// memo) load the persisted file rather than recalibrating.
func TestGetCalibratesAndPersists(t *testing.T) {
	withKernelKnobs(t)
	dir := t.TempDir()
	t.Setenv(EnvDir, dir)
	t.Setenv(EnvDisable, "")
	resetForTest()
	defer resetForTest()

	p, err := Get()
	if err != nil {
		t.Fatal(err)
	}
	if p == nil || !p.matchesHost() {
		t.Fatalf("Get calibrated an invalid profile: %+v", p)
	}
	path, err := Path()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("Get did not persist the profile: %v", err)
	}

	// Mark the persisted file distinctively; a second Get in a "new
	// process" must return the marked file, not a fresh calibration.
	p.Depth = 31
	if err := Save(p); err != nil {
		t.Fatal(err)
	}
	resetForTest()
	p2, err := Get()
	if err != nil {
		t.Fatal(err)
	}
	if p2.Depth != 31 {
		t.Errorf("second Get recalibrated (Depth=%d) instead of loading the persisted profile", p2.Depth)
	}
}

// TestCalibrateDeterministicShape: with a pinned clock and a reduced
// sweep, Calibrate fills every field the pipeline needs, restores the
// kernel knobs it swept, and stamps the injected time.
func TestCalibrateDeterministicShape(t *testing.T) {
	withKernelKnobs(t)
	prevNow := now
	fixed := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	now = func() time.Time { return fixed }
	defer func() { now = prevNow }()

	tileBefore, fanoutBefore := kernel.TileSize(), kernel.FanoutMinBytes()
	p, err := Calibrate(Options{
		Tiles:        []int{16 << 10, 32 << 10},
		TileSector:   32 << 10,
		FanoutSector: 256 << 10,
		Iters:        1,
		MemStripes:   4,
		MemSector:    2 << 10,
		StoreLatency: 100 * time.Microsecond,
		StoreStripes: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Created != "2026-08-08T12:00:00Z" {
		t.Errorf("Created = %q, want the injected clock", p.Created)
	}
	if !p.matchesHost() {
		t.Errorf("calibrated profile does not match its own host: %+v", p)
	}
	if p.Scores.TileMBs <= 0 || p.Scores.MemStripesS <= 0 || p.Scores.StoreStripesS <= 0 {
		t.Errorf("scores not recorded: %+v", p.Scores)
	}
	if kernel.TileSize() != tileBefore || kernel.FanoutMinBytes() != fanoutBefore {
		t.Errorf("Calibrate leaked kernel knobs: tile %d fanout %d", kernel.TileSize(), kernel.FanoutMinBytes())
	}
	// The JSON form round-trips losslessly (the persistence contract).
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Profile
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, p) {
		t.Errorf("JSON round trip changed the profile")
	}
}
