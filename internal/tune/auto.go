package tune

import (
	"os"
	"sync"

	"ppm/internal/pipeline"
)

// The pipeline.Config.Auto seam: importing this package registers Get
// as the resolver, so an Auto engine/pool transparently loads (or, on
// first use per host, calibrates and persists) the profile and runs
// with its knobs. PPM_TUNE=off short-circuits everything.

func init() {
	pipeline.RegisterAutoTuner(autoConfig)
	pipeline.RegisterAutoPoolSize(func() int {
		p, err := Get()
		if err != nil || p == nil {
			return 0
		}
		return p.PoolSize
	})
}

func disabled() bool {
	v := os.Getenv(EnvDisable)
	return v == "off" || v == "0"
}

var (
	mu       sync.Mutex
	memoized bool
	memoProf *Profile
	memoErr  error
)

// Get returns the host profile, loading the persisted one when it
// matches this host and otherwise calibrating and saving a fresh one.
// The result is memoized for the process; a disabled tuner
// (PPM_TUNE=off) returns (nil, nil) and Auto configs fall back to the
// static defaults. Calibration takes a few hundred milliseconds — the
// cost is paid once per host, not per engine.
func Get() (*Profile, error) {
	if disabled() {
		return nil, nil
	}
	mu.Lock()
	defer mu.Unlock()
	if memoized {
		return memoProf, memoErr
	}
	p, err := Load()
	if err != nil {
		p, err = Calibrate(Options{})
		if err == nil {
			// A read-only cache dir degrades to per-process calibration;
			// the profile still serves this process.
			_ = Save(p)
		}
	}
	memoized, memoProf, memoErr = true, p, err
	return p, err
}

// resetForTest drops the memoized profile so tests can swap
// PPM_TUNE_DIR between cases.
func resetForTest() {
	mu.Lock()
	memoized, memoProf, memoErr = false, nil, nil
	mu.Unlock()
}

// autoConfig is the pipeline resolver: apply the profile's kernel
// knobs and fill the unset pipeline knobs.
func autoConfig(cfg pipeline.Config) pipeline.Config {
	p, err := Get()
	if err != nil || p == nil {
		return cfg
	}
	Apply(p)
	if cfg.Depth <= 0 {
		cfg.Depth = p.Depth
	}
	if cfg.Workers <= 0 {
		cfg.Workers = p.Workers
	}
	return cfg
}
