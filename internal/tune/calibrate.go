package tune

import (
	"fmt"
	"runtime"
	"time"

	"ppm/internal/codes"
	"ppm/internal/core"
	"ppm/internal/kernel"
	"ppm/internal/pipeline"
	"ppm/internal/stripe"
	"ppm/internal/xorplan"
)

// Options bounds a calibration run. The zero value is the quick
// profile New/Get uses (a few hundred milliseconds on a laptop core);
// benchmarks that can afford longer sweeps raise Iters and the
// payload knobs.
type Options struct {
	// Tiles are the tile-size candidates (default 8/16/32/64/128 KiB).
	Tiles []int
	// TileSector is the sector size of the tile-sweep stripe (default
	// 256 KiB — big enough that cache blocking decides the sweep).
	TileSector int
	// Fanouts are the fan-out threshold candidates (default 256 KiB –
	// 2 MiB; the sweep is skipped on single-core hosts, where fan-out
	// never engages usefully).
	Fanouts []int
	// FanoutSector is the sector size of the fan-out sweep stripe
	// (default 2 MiB, so every candidate threshold is crossed).
	FanoutSector int
	// XorplanArenas are the XOR-program arena-budget candidates
	// (default 64 KiB – 1 MiB). The sweep only runs when the xorplan
	// backend is active (kernel.XorplanActive).
	XorplanArenas []int
	// Iters is the timed runs per candidate, best kept (default 2,
	// plus one warm-up).
	Iters int
	// MemStripes is the batch length of the in-memory worker sweep
	// (default 32).
	MemStripes int
	// MemSector is the sector size of the worker/depth sweeps (default
	// 4 KiB — the serving shape).
	MemSector int
	// StoreLatency is the simulated per-stripe store latency of the
	// depth sweep, paid on fill and on drain (default 200µs).
	StoreLatency time.Duration
	// StoreStripes is the stream length of the depth sweep (default 24).
	StoreStripes int
}

func (o *Options) defaults() {
	if len(o.Tiles) == 0 {
		o.Tiles = []int{8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10}
	}
	if o.TileSector <= 0 {
		o.TileSector = 256 << 10
	}
	if len(o.Fanouts) == 0 {
		o.Fanouts = []int{256 << 10, 512 << 10, 1 << 20, 2 << 20}
	}
	if o.FanoutSector <= 0 {
		o.FanoutSector = 2 << 20
	}
	if len(o.XorplanArenas) == 0 {
		o.XorplanArenas = []int{64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20}
	}
	if o.Iters <= 0 {
		o.Iters = 2
	}
	if o.MemStripes <= 0 {
		o.MemStripes = 32
	}
	if o.MemSector <= 0 {
		o.MemSector = 4 << 10
	}
	if o.StoreLatency <= 0 {
		o.StoreLatency = 200 * time.Microsecond
	}
	if o.StoreStripes <= 0 {
		o.StoreStripes = 24
	}
}

// calCode builds the calibration workload: an RS(10, r, 2) instance
// with a two-disk rebuild scenario — the repair shape the pipeline
// exists for, dense enough that the kernels dominate.
func calCode(r int) (codes.Code, codes.Scenario, error) {
	c, err := codes.NewRS(10, r, 2)
	if err != nil {
		return nil, codes.Scenario{}, err
	}
	var faulty []int
	for row := 0; row < c.NumRows(); row++ {
		for _, d := range []int{0, 2} {
			faulty = append(faulty, row*c.NumStrips()+d)
		}
	}
	sc, err := codes.NewScenario(c, faulty)
	if err != nil {
		return nil, codes.Scenario{}, err
	}
	return c, sc, nil
}

// bestOf times f Iters times (plus a warm-up) and returns the best.
func bestOf(iters int, f func() error) (time.Duration, error) {
	var best time.Duration
	for i := -1; i < iters; i++ {
		t0 := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		if d := time.Since(t0); i >= 0 && (best == 0 || d < best) {
			best = d
		}
	}
	return best, nil
}

// Calibrate sweeps the knob space on this host and returns the winning
// profile. It temporarily moves the process-wide kernel knobs during
// the sweeps and restores them on return; use Apply (or Config.Auto)
// to install the winners. Budget with the default Options: a few
// hundred milliseconds.
func Calibrate(o Options) (*Profile, error) {
	o.defaults()
	p := &Profile{
		Version: Version,
		Created: now().UTC().Format(time.RFC3339),
		Host:    hostInfo(),
	}

	prevTile, prevFanout := kernel.TileSize(), kernel.FanoutMinBytes()
	prevArena := xorplan.ArenaBudget()
	defer func() {
		kernel.SetTileSize(prevTile)
		kernel.SetFanoutMinBytes(prevFanout)
		xorplan.SetArenaBudget(prevArena)
	}()

	if err := sweepTile(o, p); err != nil {
		return nil, fmt.Errorf("tune: tile sweep: %w", err)
	}
	if err := sweepXorplanArena(o, p); err != nil {
		return nil, fmt.Errorf("tune: xorplan arena sweep: %w", err)
	}
	if err := sweepFanout(o, p); err != nil {
		return nil, fmt.Errorf("tune: fan-out sweep: %w", err)
	}
	if err := sweepWorkers(o, p); err != nil {
		return nil, fmt.Errorf("tune: worker sweep: %w", err)
	}
	if err := sweepDepth(o, p); err != nil {
		return nil, fmt.Errorf("tune: depth sweep: %w", err)
	}

	// Pool size for many-stream serving: enough engines that store I/O
	// overlaps across streams even when cores are scarce (engines
	// waiting on a simulated or real store release their P), bounded so
	// slab memory stays modest on very wide hosts.
	p.PoolSize = runtime.NumCPU()
	if p.PoolSize < 4 {
		p.PoolSize = 4
	}
	if p.PoolSize > 16 {
		p.PoolSize = 16
	}
	return p, nil
}

// sweepTile times a kernel-bound rebuild decode (large sectors, plan
// prebuilt) at each tile-size candidate.
func sweepTile(o Options, p *Profile) error {
	c, sc, err := calCode(4)
	if err != nil {
		return err
	}
	st, err := stripe.New(c.NumStrips(), c.NumRows(), o.TileSector)
	if err != nil {
		return err
	}
	st.FillRandom(1)
	plan, err := core.BuildPlan(c, sc, core.StrategyPPM)
	if err != nil {
		return err
	}
	dec := core.NewDecoder(c, core.WithThreads(1))
	bytesPerDecode := float64(len(sc.Faulty)) * float64(o.TileSector)

	var bestTile int
	var bestD time.Duration
	for _, tile := range o.Tiles {
		kernel.SetTileSize(tile)
		d, err := bestOf(o.Iters, func() error { return dec.DecodeWithPlan(plan, st) })
		if err != nil {
			return err
		}
		if bestD == 0 || d < bestD {
			bestD, bestTile = d, tile
		}
	}
	p.TileBytes = bestTile
	p.Scores.TileMBs = bytesPerDecode / 1e6 / bestD.Seconds()
	return nil
}

// sweepXorplanArena times the same kernel-bound rebuild at each
// XOR-program arena budget. Programs read the budget per run, so one
// prebuilt plan serves every candidate. Skipped (budget recorded as 0)
// when the xorplan backend is inactive — the knob then changes nothing.
func sweepXorplanArena(o Options, p *Profile) error {
	if !kernel.XorplanActive() {
		p.XorplanArenaBytes = 0
		return nil
	}
	kernel.SetTileSize(p.TileBytes)
	c, sc, err := calCode(4)
	if err != nil {
		return err
	}
	st, err := stripe.New(c.NumStrips(), c.NumRows(), o.TileSector)
	if err != nil {
		return err
	}
	st.FillRandom(3)
	plan, err := core.BuildPlan(c, sc, core.StrategyPPM)
	if err != nil {
		return err
	}
	dec := core.NewDecoder(c, core.WithThreads(1))
	bytesPerDecode := float64(len(sc.Faulty)) * float64(o.TileSector)

	var bestArena int
	var bestD time.Duration
	for _, arena := range o.XorplanArenas {
		xorplan.SetArenaBudget(arena)
		d, err := bestOf(o.Iters, func() error { return dec.DecodeWithPlan(plan, st) })
		if err != nil {
			return err
		}
		if bestD == 0 || d < bestD {
			bestD, bestArena = d, arena
		}
	}
	p.XorplanArenaBytes = bestArena
	p.Scores.XorplanMBs = bytesPerDecode / 1e6 / bestD.Seconds()
	return nil
}

// sweepFanout times a large-region decode at each fan-out threshold.
// On a single-core host the fan-out arm cannot overlap anything, so
// the sweep is skipped and the default threshold recorded.
func sweepFanout(o Options, p *Profile) error {
	kernel.SetTileSize(p.TileBytes)
	if runtime.NumCPU() == 1 {
		p.FanoutMinBytes = kernel.FanoutMinBytes()
		return nil
	}
	c, sc, err := calCode(1)
	if err != nil {
		return err
	}
	st, err := stripe.New(c.NumStrips(), c.NumRows(), o.FanoutSector)
	if err != nil {
		return err
	}
	st.FillRandom(2)
	plan, err := core.BuildPlan(c, sc, core.StrategyPPM)
	if err != nil {
		return err
	}
	dec := core.NewDecoder(c, core.WithThreads(1))

	var bestFanout int
	var bestD time.Duration
	for _, fo := range o.Fanouts {
		kernel.SetFanoutMinBytes(fo)
		d, err := bestOf(o.Iters, func() error { return dec.DecodeWithPlan(plan, st) })
		if err != nil {
			return err
		}
		if bestD == 0 || d < bestD {
			bestD, bestFanout = d, fo
		}
	}
	p.FanoutMinBytes = bestFanout
	return nil
}

// sweepWorkers times an in-memory batch rebuild at each compute-shard
// count — pure cross-stripe compute scaling, no I/O in the loop.
func sweepWorkers(o Options, p *Profile) error {
	kernel.SetTileSize(p.TileBytes)
	kernel.SetFanoutMinBytes(p.FanoutMinBytes)
	c, sc, err := calCode(4)
	if err != nil {
		return err
	}
	batch := make([]*stripe.Stripe, o.MemStripes)
	for i := range batch {
		st, err := stripe.New(c.NumStrips(), c.NumRows(), o.MemSector)
		if err != nil {
			return err
		}
		st.FillRandom(int64(i))
		batch[i] = st
	}
	var src pipeline.Source = pipeline.SliceSource(batch)

	candidates := workerCandidates(runtime.NumCPU())
	var bestW int
	var bestD time.Duration
	for _, w := range candidates {
		depth := 2 * w
		if depth < pipeline.DefaultDepth {
			depth = pipeline.DefaultDepth
		}
		e, err := pipeline.New(c, sc, 0, pipeline.Config{Depth: depth, Workers: w})
		if err != nil {
			return err
		}
		d, err := bestOf(o.Iters, func() error {
			_, err := e.Run(src, pipeline.NopSink{})
			return err
		})
		e.Close()
		if err != nil {
			return err
		}
		if bestD == 0 || d < bestD {
			bestD, bestW = d, w
		}
	}
	p.Workers = bestW
	p.Scores.MemStripesS = float64(o.MemStripes) / bestD.Seconds()
	return nil
}

// workerCandidates is 1, the powers of two below ncpu, and ncpu.
func workerCandidates(ncpu int) []int {
	var out []int
	for w := 1; w < ncpu; w *= 2 {
		out = append(out, w)
	}
	return append(out, ncpu)
}

// latSource / latSink model a seek-dominated strip store: a fixed
// sleep per stripe on each edge, releasing the P exactly like blocking
// I/O, so the depth sweep measures overlap rather than compute.
type latSource struct {
	stripes int
	lat     time.Duration
}

func (s *latSource) Next(idx int, slab *stripe.Stripe) (*stripe.Stripe, error) {
	if idx >= s.stripes {
		return nil, nil
	}
	time.Sleep(s.lat)
	return slab, nil
}

type latSink struct{ lat time.Duration }

func (k *latSink) Drain(int, *stripe.Stripe) error {
	time.Sleep(k.lat)
	return nil
}

// sweepDepth times a latency-modelled stream at each queue depth, with
// the winning worker count fixed — depth is the I/O-overlap knob, and
// the sweep measures it against a store model instead of inheriting
// the compute sweep's preference for shallow queues.
func sweepDepth(o Options, p *Profile) error {
	c, sc, err := calCode(4)
	if err != nil {
		return err
	}
	candidates := depthCandidates(p.Workers)
	var bestDepth int
	var bestD time.Duration
	for _, depth := range candidates {
		e, err := pipeline.New(c, sc, o.MemSector, pipeline.Config{Depth: depth, Workers: p.Workers})
		if err != nil {
			return err
		}
		src := &latSource{stripes: o.StoreStripes, lat: o.StoreLatency}
		sink := &latSink{lat: o.StoreLatency}
		d, err := bestOf(o.Iters, func() error {
			_, err := e.Run(src, sink)
			return err
		})
		e.Close()
		if err != nil {
			return err
		}
		if bestD == 0 || d < bestD {
			bestD, bestDepth = d, depth
		}
	}
	p.Depth = bestDepth
	p.Scores.StoreStripesS = float64(o.StoreStripes) / bestD.Seconds()
	return nil
}

// depthCandidates is w, 2w, 4w clamped to [2, 32], plus the static
// default, deduplicated and ascending (ties in the sweep go to the
// earlier — smaller — depth).
func depthCandidates(w int) []int {
	seen := map[int]bool{}
	var out []int
	add := func(d int) {
		if d < 2 {
			d = 2
		}
		if d > 32 {
			d = 32
		}
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	add(pipeline.DefaultDepth)
	add(w)
	add(2 * w)
	add(4 * w)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
