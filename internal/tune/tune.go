// Package tune is the host calibration autotuner for the streaming
// pipeline and the kernel's cache-blocking knobs.
//
// The repository exposes a small knob space that the defaults can only
// guess at: the kernel tile size (L2 geometry), the worker fan-out
// threshold (dispatch cost vs core count), and the pipeline's Depth
// (I/O in flight) and Workers (compute shards). Following the
// program-optimization view of XOR-EC tuning (Uezato, arXiv:2108.02692
// — schedule/tile/parallelism choices are a searched space, not
// constants), Calibrate measures each knob on the host with short
// sweeps, picks the winners, and persists them as a Profile in a JSON
// cache (os.UserCacheDir()/ppm, overridable with PPM_TUNE_DIR).
//
// Get loads the cached profile — or calibrates and saves one on first
// use — and memoizes it for the process. Importing this package
// registers it as the resolver behind pipeline.Config{Auto: true}, so
// engines and pools pick the calibrated knobs up transparently; the
// root ppm package imports it, and PPM_TUNE=off disables the whole
// path.
package tune

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"ppm/internal/gf"
	"ppm/internal/kernel"
	"ppm/internal/xorplan"
)

// Version is the profile schema version; profiles with another version
// (or recorded on a host with a different core count) are recalibrated.
// v2 added the xorplan arena-budget knob.
const Version = 2

// EnvDir overrides the profile cache directory; EnvDisable ("off" or
// "0") disables autotuning entirely — Auto configs fall back to the
// static defaults.
const (
	EnvDir     = "PPM_TUNE_DIR"
	EnvDisable = "PPM_TUNE"
)

// Host identifies the machine a profile was calibrated on.
type Host struct {
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	GOARCH     string `json:"goarch"`
	// GFNI reports whether the GF2P8AFFINEQB kernels were active during
	// calibration; a profile tuned with them is stale without them.
	GFNI bool `json:"gfni"`
}

// Scores records the winning measurements, for inspection and for
// judging whether a recalibration moved anything.
type Scores struct {
	// TileMBs is the kernel decode throughput at the winning tile size.
	TileMBs float64 `json:"tile_mb_s"`
	// MemStripesS is the in-memory pipeline throughput at the winning
	// worker count.
	MemStripesS float64 `json:"mem_stripes_s"`
	// StoreStripesS is the latency-modelled pipeline throughput at the
	// winning depth.
	StoreStripesS float64 `json:"store_stripes_s"`
	// XorplanMBs is the decode throughput at the winning XOR-program
	// arena budget (zero when the backend was inactive at calibration).
	XorplanMBs float64 `json:"xorplan_mb_s,omitempty"`
}

// Profile is one host's calibrated knob settings. Apply installs the
// process-wide kernel knobs; the pipeline fields feed Config.Auto.
type Profile struct {
	Version int    `json:"version"`
	Created string `json:"created"` // RFC3339
	Host    Host   `json:"host"`

	// TileBytes is the kernel cache-blocking tile size.
	TileBytes int `json:"tile_bytes"`
	// FanoutMinBytes is the region size at which one apply fans tiles
	// across the worker pool.
	FanoutMinBytes int `json:"fanout_min_bytes"`
	// Depth is the pipeline queue depth (stripes in flight).
	Depth int `json:"depth"`
	// Workers is the pipeline compute shard count.
	Workers int `json:"workers"`
	// PoolSize is the engine count for many-stream serving pools.
	PoolSize int `json:"pool_size"`
	// XorplanArenaBytes is the XOR-program temp-arena budget
	// (xorplan.SetArenaBudget); zero means the sweep was skipped because
	// the backend was inactive, and the default budget stands.
	XorplanArenaBytes int `json:"xorplan_arena_bytes,omitempty"`

	Scores Scores `json:"scores"`
}

// hostInfo snapshots the current host.
func hostInfo() Host {
	return Host{
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		GFNI:       gf.AffineKernels(),
	}
}

// matchesHost reports whether the profile can serve this process: same
// schema, same core count, same kernel flavour.
func (p *Profile) matchesHost() bool {
	h := hostInfo()
	return p.Version == Version &&
		p.Host.NumCPU == h.NumCPU &&
		p.Host.GOARCH == h.GOARCH &&
		p.Host.GFNI == h.GFNI &&
		p.TileBytes > 0 && p.Depth > 0 && p.Workers > 0 && p.PoolSize > 0
}

// Apply installs the profile's process-wide kernel knobs (tile size and
// fan-out threshold). The pipeline knobs travel through Config.Auto or
// explicit Config fields; Apply does not touch them.
func Apply(p *Profile) {
	if p == nil {
		return
	}
	kernel.SetTileSize(p.TileBytes)
	kernel.SetFanoutMinBytes(p.FanoutMinBytes)
	if p.XorplanArenaBytes > 0 {
		xorplan.SetArenaBudget(p.XorplanArenaBytes)
	}
}

// Dir returns the profile cache directory: PPM_TUNE_DIR, or the user
// cache dir's ppm subdirectory.
func Dir() (string, error) {
	if d := os.Getenv(EnvDir); d != "" {
		return d, nil
	}
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("tune: no cache dir (set %s): %w", EnvDir, err)
	}
	return filepath.Join(base, "ppm"), nil
}

// Path returns the profile file path for this host.
func Path() (string, error) {
	dir, err := Dir()
	if err != nil {
		return "", err
	}
	return filepath.Join(dir, fmt.Sprintf("tune-%s-%dcpu.json", runtime.GOARCH, runtime.NumCPU())), nil
}

// Load reads this host's persisted profile. A missing file returns
// os.ErrNotExist; a profile from another schema version or host shape
// is an error too, so callers fall through to Calibrate.
func Load() (*Profile, error) {
	path, err := Path()
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("tune: %s: %w", path, err)
	}
	if !p.matchesHost() {
		return nil, fmt.Errorf("tune: %s was calibrated for a different host or schema", path)
	}
	return &p, nil
}

// Save persists the profile for this host, creating the cache dir as
// needed. The write goes through a temp file + rename so a concurrent
// reader never sees a torn profile.
func Save(p *Profile) error {
	path, err := Path()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// String summarises the profile on one line.
func (p *Profile) String() string {
	return fmt.Sprintf("tile=%dKiB fanout>=%dKiB depth=%d workers=%d pool=%d (ncpu=%d gfni=%v %s)",
		p.TileBytes>>10, p.FanoutMinBytes>>10, p.Depth, p.Workers, p.PoolSize,
		p.Host.NumCPU, p.Host.GFNI, p.Created)
}

// now is a test seam for Created stamps.
var now = time.Now
