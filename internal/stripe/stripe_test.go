package stripe

import (
	"bytes"
	"testing"

	"ppm/internal/codes"
	"ppm/internal/gf"
)

func TestNewGeometry(t *testing.T) {
	st, err := New(4, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if st.N() != 4 || st.R() != 4 || st.SectorSize() != 64 {
		t.Fatal("geometry wrong")
	}
	if st.TotalSectors() != 16 || st.TotalBytes() != 16*64 {
		t.Fatal("totals wrong")
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct{ n, r, size int }{
		{0, 4, 64}, {4, 0, 64}, {4, 4, 0}, {4, 4, 3}, {4, 4, 62},
	}
	for _, c := range cases {
		if _, err := New(c.n, c.r, c.size); err == nil {
			t.Errorf("New(%d,%d,%d) accepted", c.n, c.r, c.size)
		}
	}
}

func TestSectorAddressing(t *testing.T) {
	st, _ := New(4, 3, 8)
	st.SectorAt(2, 1)[0] = 0xAB
	// Global index = row*n + disk = 2*4 + 1 = 9.
	if st.Sector(9)[0] != 0xAB {
		t.Fatal("SectorAt and Sector disagree")
	}
	secs := st.Sectors([]int{9, 0})
	if secs[0][0] != 0xAB || len(secs) != 2 {
		t.Fatal("Sectors view wrong")
	}
}

func TestSectorOutOfRangePanics(t *testing.T) {
	st, _ := New(2, 2, 8)
	for _, f := range []func(){
		func() { st.Sector(4) },
		func() { st.Sector(-1) },
		func() { st.SectorAt(2, 0) },
		func() { st.SectorAt(0, 2) },
	} {
		f := f
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access did not panic")
				}
			}()
			f()
		}()
	}
}

func TestFillRandomDeterministic(t *testing.T) {
	a, _ := New(3, 3, 16)
	b, _ := New(3, 3, 16)
	a.FillRandom(7)
	b.FillRandom(7)
	if !a.Equal(b) {
		t.Fatal("same seed produced different stripes")
	}
	b.FillRandom(8)
	if a.Equal(b) {
		t.Fatal("different seeds produced identical stripes")
	}
}

func TestCloneAndEqual(t *testing.T) {
	a, _ := New(3, 2, 8)
	a.FillRandom(1)
	c := a.Clone()
	if !a.Equal(c) {
		t.Fatal("clone differs")
	}
	c.Sector(0)[0] ^= 0xFF
	if a.Equal(c) {
		t.Fatal("clone shares storage")
	}
	d, _ := New(3, 2, 12)
	if a.Equal(d) {
		t.Fatal("different geometry equal")
	}
}

func TestEraseAndScribble(t *testing.T) {
	st, _ := New(2, 2, 8)
	st.FillRandom(3)
	orig := st.Clone()

	st.Erase([]int{1, 2})
	if !bytes.Equal(st.Sector(1), make([]byte, 8)) {
		t.Fatal("Erase did not zero")
	}
	if !bytes.Equal(st.Sector(0), orig.Sector(0)) {
		t.Fatal("Erase touched other sectors")
	}

	st.Scribble(9, []int{0})
	if bytes.Equal(st.Sector(0), orig.Sector(0)) {
		t.Fatal("Scribble left sector intact")
	}
}

func TestFillDataRandom(t *testing.T) {
	st, _ := New(2, 2, 8)
	st.FillRandom(5)
	st.FillDataRandom(6, []int{0, 1})
	if bytes.Equal(st.Sector(0), make([]byte, 8)) {
		t.Fatal("data sector not filled")
	}
	if !bytes.Equal(st.Sector(3), make([]byte, 8)) {
		t.Fatal("non-data sector not zeroed")
	}
}

func TestForCode(t *testing.T) {
	sd, err := codes.NewSDWithCoefficients(4, 4, 1, 1, gf.GF8, []uint32{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	st, err := ForCode(sd, 16*1024)
	if err != nil {
		t.Fatal(err)
	}
	if st.N() != 4 || st.R() != 4 {
		t.Fatal("geometry mismatch")
	}
	if st.SectorSize() != 1024 {
		t.Fatalf("sector size = %d, want 1024", st.SectorSize())
	}
	// Tiny stripe budgets still get minimum aligned sectors.
	st, err = ForCode(sd, 10)
	if err != nil {
		t.Fatal(err)
	}
	if st.SectorSize() != 4 {
		t.Fatalf("minimum sector size = %d, want 4", st.SectorSize())
	}
}

// TestScribbleAlwaysDiffers pins Scribble's guarantee: a scribbled
// sector never keeps its previous contents, even when it already holds
// the exact bytes the seeded rng would produce (the double-scribble
// trap that would let corrupt-then-recover tests pass vacuously).
func TestScribbleAlwaysDiffers(t *testing.T) {
	st, err := New(4, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	positions := []int{0, 3, 5}
	st.Scribble(42, positions)
	snapshot := st.Clone()
	// Same seed, same positions: the rng reproduces the sector stream
	// exactly, so only the difference guarantee can change the bytes.
	st.Scribble(42, positions)
	for _, p := range positions {
		if bytes.Equal(st.Sector(p), snapshot.Sector(p)) {
			t.Errorf("sector %d unchanged after re-scribble with the same seed", p)
		}
	}
}

// TestFlipBit pins the minimal-corruption helper: exactly one bit of
// exactly one sector changes.
func TestFlipBit(t *testing.T) {
	st, err := New(4, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	st.FillRandom(9)
	before := st.Clone()
	st.FlipBit(5, 3, 6)
	for p := 0; p < st.TotalSectors(); p++ {
		a, b := st.Sector(p), before.Sector(p)
		if p != 5 {
			if !bytes.Equal(a, b) {
				t.Fatalf("sector %d changed", p)
			}
			continue
		}
		diff := 0
		for i := range a {
			diff += popcount(a[i] ^ b[i])
		}
		if diff != 1 {
			t.Fatalf("FlipBit changed %d bits, want 1", diff)
		}
		if a[3]^b[3] != 1<<6 {
			t.Fatalf("wrong bit flipped: %02x", a[3]^b[3])
		}
	}
}

func popcount(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}
