// Package stripe provides the data substrate: one stripe of n strips by
// r rows of fixed-size sectors, with helpers for filling, corrupting and
// comparing sector contents. The decoders operate on these buffers via
// the gf region primitives; the layout convention matches the paper —
// sector index i*n + j is stripe row i, disk j.
package stripe

import (
	"bytes"
	"fmt"
	"math/rand"

	"ppm/internal/codes"
)

// Stripe is one stripe's worth of sector buffers.
type Stripe struct {
	n, r       int
	sectorSize int
	sectors    [][]byte
}

// New allocates a stripe of n strips by r rows with the given sector
// size in bytes. The sector size must be a positive multiple of 4 so
// that regions are word-aligned for every supported field.
func New(n, r, sectorSize int) (*Stripe, error) {
	if n < 1 || r < 1 {
		return nil, fmt.Errorf("stripe: invalid geometry n=%d r=%d", n, r)
	}
	if sectorSize < 4 || sectorSize%4 != 0 {
		return nil, fmt.Errorf("stripe: sector size %d must be a positive multiple of 4", sectorSize)
	}
	// One backing allocation, sliced per sector (HPC-friendly layout).
	backing := make([]byte, n*r*sectorSize)
	sectors := make([][]byte, n*r)
	for i := range sectors {
		sectors[i] = backing[i*sectorSize : (i+1)*sectorSize : (i+1)*sectorSize]
	}
	return &Stripe{n: n, r: r, sectorSize: sectorSize, sectors: sectors}, nil
}

// ForCode allocates a stripe matching a code's geometry whose total size
// is as close to stripeBytes as alignment allows. This mirrors the
// paper's experiments, which are parameterised by total stripe size
// (e.g. 32 MB across n*r sectors).
func ForCode(c codes.Code, stripeBytes int) (*Stripe, error) {
	total := codes.TotalSectors(c)
	if total == 0 {
		return nil, fmt.Errorf("stripe: code %s has no sectors", c.Name())
	}
	sector := stripeBytes / total
	sector -= sector % 4
	if sector < 4 {
		sector = 4
	}
	return New(c.NumStrips(), c.NumRows(), sector)
}

// N returns the number of strips (disks).
func (st *Stripe) N() int { return st.n }

// R returns the number of rows per strip.
func (st *Stripe) R() int { return st.r }

// SectorSize returns the sector size in bytes.
func (st *Stripe) SectorSize() int { return st.sectorSize }

// TotalSectors returns n*r.
func (st *Stripe) TotalSectors() int { return st.n * st.r }

// TotalBytes returns the stripe's payload size.
func (st *Stripe) TotalBytes() int { return st.n * st.r * st.sectorSize }

// Sector returns the buffer for global sector index idx (row-major).
// The returned slice aliases the stripe; writes modify the stripe.
func (st *Stripe) Sector(idx int) []byte {
	if idx < 0 || idx >= len(st.sectors) {
		panic(fmt.Sprintf("stripe: sector %d out of range [0,%d)", idx, len(st.sectors)))
	}
	return st.sectors[idx]
}

// SectorAt returns the buffer at stripe row i, disk j.
func (st *Stripe) SectorAt(row, disk int) []byte {
	if row < 0 || row >= st.r || disk < 0 || disk >= st.n {
		panic(fmt.Sprintf("stripe: sector (%d,%d) out of range %dx%d", row, disk, st.r, st.n))
	}
	return st.sectors[row*st.n+disk]
}

// Sectors returns views of the requested global indices, in order.
func (st *Stripe) Sectors(idx []int) [][]byte {
	out := make([][]byte, len(idx))
	for i, j := range idx {
		out[i] = st.Sector(j)
	}
	return out
}

// FillRandom fills every sector with deterministic pseudo-random bytes.
func (st *Stripe) FillRandom(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, sec := range st.sectors {
		rng.Read(sec)
	}
}

// FillDataRandom fills only the given (data) positions, zeroing the
// rest; use before encoding so parity starts cleared.
func (st *Stripe) FillDataRandom(seed int64, dataPositions []int) {
	rng := rand.New(rand.NewSource(seed))
	for i := range st.sectors {
		for j := range st.sectors[i] {
			st.sectors[i][j] = 0
		}
	}
	for _, idx := range dataPositions {
		rng.Read(st.Sector(idx))
	}
}

// Clone returns a deep copy of the stripe.
func (st *Stripe) Clone() *Stripe {
	c, err := New(st.n, st.r, st.sectorSize)
	if err != nil {
		panic(err) // geometry already validated
	}
	for i := range st.sectors {
		copy(c.sectors[i], st.sectors[i])
	}
	return c
}

// Equal reports whether two stripes have identical geometry and content.
func (st *Stripe) Equal(o *Stripe) bool {
	if st.n != o.n || st.r != o.r || st.sectorSize != o.sectorSize {
		return false
	}
	for i := range st.sectors {
		if !bytes.Equal(st.sectors[i], o.sectors[i]) {
			return false
		}
	}
	return true
}

// Erase simulates losing the given sectors: their contents are zeroed,
// the way a decoder's scratch view of unreadable sectors starts out.
func (st *Stripe) Erase(positions []int) {
	for _, idx := range positions {
		sec := st.Sector(idx)
		for i := range sec {
			sec[i] = 0
		}
	}
}

// Scribble overwrites the given sectors with garbage derived from the
// seed — stronger than Erase for round-trip tests, since a decoder that
// "recovers" by leaving buffers alone will be caught. Every scribbled
// sector is guaranteed to differ from its previous contents: if the rng
// happens to reproduce a sector byte for byte (certain for sectors that
// already held that stream, possible for any), its first byte is
// flipped, so "corrupt then recover" tests can never pass vacuously.
func (st *Stripe) Scribble(seed int64, positions []int) {
	rng := rand.New(rand.NewSource(seed))
	prev := make([]byte, st.sectorSize)
	for _, idx := range positions {
		sec := st.Sector(idx)
		copy(prev, sec)
		rng.Read(sec)
		if bytes.Equal(sec, prev) {
			sec[0] ^= 0xFF
		}
	}
}

// FlipBit flips one chosen bit of one sector — the minimal guaranteed
// silent corruption, for checksum and scrub tests that need damage
// smaller and more targeted than Scribble's whole-sector garbage.
func (st *Stripe) FlipBit(position, byteOff, bit int) {
	st.Sector(position)[byteOff] ^= 1 << (bit & 7)
}
