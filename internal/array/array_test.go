package array

import (
	"testing"

	"ppm/internal/codes"
)

func newTestArray(t *testing.T, stripes int) (*Array, *codes.SD) {
	t.Helper()
	sd, err := codes.NewSD(6, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(sd, stripes, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	return a, sd
}

func TestNewArrayEncodesCleanly(t *testing.T) {
	a, _ := newTestArray(t, 4)
	if a.Stripes() != 4 {
		t.Fatalf("stripes = %d", a.Stripes())
	}
	ok, err := a.Verify()
	if err != nil || !ok {
		t.Fatalf("fresh array fails verification: ok=%v err=%v", ok, err)
	}
	if !a.Intact() || a.Degraded() {
		t.Fatal("fresh array state wrong")
	}
	if a.TotalBytes() != 4*6*8*64 {
		t.Fatalf("TotalBytes = %d", a.TotalBytes())
	}
}

func TestDiskFailureRepair(t *testing.T) {
	a, _ := newTestArray(t, 6)
	if err := a.FailDisks(1, 4); err != nil {
		t.Fatal(err)
	}
	if !a.Degraded() || a.Intact() {
		t.Fatal("failure not reflected")
	}
	stats, err := a.Repair(2)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Intact() {
		t.Fatal("repair did not restore the original bytes")
	}
	if a.Degraded() {
		t.Fatal("repair left the array degraded")
	}
	if stats.Stripes != 6 {
		t.Fatalf("repaired %d stripes, want 6", stats.Stripes)
	}
	// All stripes share the failure signature: exactly one plan.
	if stats.PlansBuilt != 1 {
		t.Fatalf("built %d plans, want 1 (identical disk-failure signature)", stats.PlansBuilt)
	}
	if stats.BytesRepaired != int64(6*2*8*64) {
		t.Fatalf("bytes repaired = %d", stats.BytesRepaired)
	}
	if stats.MultXORs <= 0 || stats.String() == "" {
		t.Fatal("stats incomplete")
	}
}

func TestMixedDiskAndSectorRepair(t *testing.T) {
	a, _ := newTestArray(t, 5)
	if err := a.FailDisks(0); err != nil {
		t.Fatal(err)
	}
	// Stripe 2 additionally loses two sectors on surviving disks
	// (columns 1 and 2 of rows 0 and 1).
	if err := a.FailSectors(2, 1, 8); err != nil {
		t.Fatal(err)
	}
	stats, err := a.Repair(4)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Intact() {
		t.Fatal("repair did not restore the original bytes")
	}
	// Two signatures: disk-only and disk+sectors.
	if stats.PlansBuilt != 2 {
		t.Fatalf("built %d plans, want 2", stats.PlansBuilt)
	}
}

func TestSectorOnlyRepair(t *testing.T) {
	a, _ := newTestArray(t, 3)
	if err := a.FailSectors(1, 7); err != nil {
		t.Fatal(err)
	}
	stats, err := a.Repair(1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Stripes != 1 {
		t.Fatalf("repaired %d stripes, want 1", stats.Stripes)
	}
	if !a.Intact() {
		t.Fatal("sector repair wrong")
	}
}

func TestRepairNothing(t *testing.T) {
	a, _ := newTestArray(t, 2)
	stats, err := a.Repair(4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Stripes != 0 || stats.PlansBuilt != 0 {
		t.Fatalf("no-op repair did work: %+v", stats)
	}
}

func TestFailureValidation(t *testing.T) {
	a, _ := newTestArray(t, 2)
	if err := a.FailDisks(9); err == nil {
		t.Error("out-of-range disk accepted")
	}
	if err := a.FailDisks(1); err != nil {
		t.Fatal(err)
	}
	if err := a.FailDisks(1); err == nil {
		t.Error("double disk failure accepted")
	}
	if err := a.FailSectors(5, 0); err == nil {
		t.Error("out-of-range stripe accepted")
	}
	if err := a.FailSectors(0, 999); err == nil {
		t.Error("out-of-range sector accepted")
	}
}

func TestRepairBeyondTolerance(t *testing.T) {
	a, _ := newTestArray(t, 2)
	// m = 2 disks tolerated; failing 3 must be refused at repair time.
	if err := a.FailDisks(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Repair(2); err == nil {
		t.Fatal("3-disk failure repaired by an m=2 code")
	}
}

func TestNewValidation(t *testing.T) {
	sd, err := codes.NewSD(4, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(sd, 0, 64, 1); err == nil {
		t.Error("zero stripes accepted")
	}
	if _, err := New(sd, 1, 3, 1); err == nil {
		t.Error("unaligned sector size accepted")
	}
}

func TestRepairParallelMatchesSerial(t *testing.T) {
	build := func() *Array {
		a, _ := newTestArray(t, 8)
		if err := a.FailDisks(0, 3); err != nil {
			t.Fatal(err)
		}
		if err := a.FailSectors(4, 1, 2); err != nil {
			t.Fatal(err)
		}
		return a
	}
	serial := build()
	sStats, err := serial.Repair(2)
	if err != nil {
		t.Fatal(err)
	}
	parallel := build()
	pStats, err := parallel.RepairParallel(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Intact() || !parallel.Intact() {
		t.Fatal("repairs incomplete")
	}
	if sStats.MultXORs != pStats.MultXORs || sStats.Stripes != pStats.Stripes ||
		sStats.BytesRepaired != pStats.BytesRepaired || sStats.PlansBuilt != pStats.PlansBuilt {
		t.Fatalf("stats diverge: serial %+v parallel %+v", sStats, pStats)
	}
}

func TestRepairParallelNoFailures(t *testing.T) {
	a, _ := newTestArray(t, 2)
	stats, err := a.RepairParallel(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Stripes != 0 {
		t.Fatalf("no-op parallel repair did work: %+v", stats)
	}
}

func TestRepairParallelSingleWorkerDelegates(t *testing.T) {
	a, _ := newTestArray(t, 3)
	if err := a.FailDisks(2); err != nil {
		t.Fatal(err)
	}
	stats, err := a.RepairParallel(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Stripes != 3 || !a.Intact() {
		t.Fatalf("delegated repair wrong: %+v", stats)
	}
}
