// Package array simulates an erasure-coded disk array: many stripes
// over one code instance, with disk- and sector-level failure injection
// and PPM-driven reconstruction. It is the substrate behind the
// array-repair example and models the on-line recovery setting the
// paper's related work targets (fast failure recovery in redundant
// arrays, §V [39][40]): when a disk dies, every stripe loses the same
// columns, so one PPM plan is built and reused across the whole array.
package array

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"ppm/internal/codes"
	"ppm/internal/core"
	"ppm/internal/decode"
	"ppm/internal/kernel"
	"ppm/internal/stripe"
)

// Array is a set of stripes encoded with one code.
type Array struct {
	code       codes.Code
	stripes    []*stripe.Stripe
	pristine   []*stripe.Stripe // reference copies for verification in tests
	failedDisk map[int]bool
	// extra sector failures: stripe index -> sorted sector indices
	extra map[int][]int
}

// New builds an array of numStripes stripes with deterministic random
// data, encoded with the traditional encoder (the array's steady state
// predates any PPM decision).
func New(c codes.Code, numStripes, sectorSize int, seed int64) (*Array, error) {
	if numStripes < 1 {
		return nil, fmt.Errorf("array: need at least one stripe")
	}
	a := &Array{
		code:       c,
		failedDisk: make(map[int]bool),
		extra:      make(map[int][]int),
	}
	for i := 0; i < numStripes; i++ {
		st, err := stripe.New(c.NumStrips(), c.NumRows(), sectorSize)
		if err != nil {
			return nil, err
		}
		st.FillDataRandom(seed+int64(i), codes.DataPositions(c))
		if err := decode.Encode(c, st, decode.Options{}); err != nil {
			return nil, fmt.Errorf("array: encoding stripe %d: %w", i, err)
		}
		a.stripes = append(a.stripes, st)
		a.pristine = append(a.pristine, st.Clone())
	}
	return a, nil
}

// Code returns the array's code instance.
func (a *Array) Code() codes.Code { return a.code }

// Stripes returns the stripe count.
func (a *Array) Stripes() int { return len(a.stripes) }

// TotalBytes returns the array's payload size.
func (a *Array) TotalBytes() int {
	return len(a.stripes) * a.stripes[0].TotalBytes()
}

// FailDisks marks whole disks as failed: the affected sectors of every
// stripe are scribbled over (a rebuilt replacement drive starts with
// garbage, not zeros).
func (a *Array) FailDisks(disks ...int) error {
	for _, d := range disks {
		if d < 0 || d >= a.code.NumStrips() {
			return fmt.Errorf("array: disk %d out of range [0,%d)", d, a.code.NumStrips())
		}
		if a.failedDisk[d] {
			return fmt.Errorf("array: disk %d already failed", d)
		}
		a.failedDisk[d] = true
	}
	for i, st := range a.stripes {
		var sectors []int
		for _, d := range disks {
			for row := 0; row < a.code.NumRows(); row++ {
				sectors = append(sectors, row*a.code.NumStrips()+d)
			}
		}
		st.Scribble(int64(1000+i), sectors)
	}
	return nil
}

// FailSectors injects latent sector errors into one stripe.
func (a *Array) FailSectors(stripeIdx int, sectors ...int) error {
	if stripeIdx < 0 || stripeIdx >= len(a.stripes) {
		return fmt.Errorf("array: stripe %d out of range", stripeIdx)
	}
	total := codes.TotalSectors(a.code)
	seen := map[int]bool{}
	for _, s := range a.extra[stripeIdx] {
		seen[s] = true
	}
	for _, s := range sectors {
		if s < 0 || s >= total {
			return fmt.Errorf("array: sector %d out of range", s)
		}
		if !seen[s] {
			a.extra[stripeIdx] = append(a.extra[stripeIdx], s)
			seen[s] = true
		}
	}
	sort.Ints(a.extra[stripeIdx])
	a.stripes[stripeIdx].Scribble(int64(2000+stripeIdx), sectors)
	return nil
}

// Degraded reports whether any failure is outstanding.
func (a *Array) Degraded() bool {
	return len(a.failedDisk) > 0 || len(a.extra) > 0
}

// RepairStats summarises a whole-array reconstruction.
type RepairStats struct {
	Stripes       int
	BytesRepaired int64
	MultXORs      int64
	Elapsed       time.Duration
	PlansBuilt    int
}

// ThroughputMBps is repaired bytes per second of rebuild.
func (s RepairStats) ThroughputMBps() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.BytesRepaired) / 1e6 / s.Elapsed.Seconds()
}

// String renders a one-line summary.
func (s RepairStats) String() string {
	return fmt.Sprintf("repaired %d stripes (%.1f MB) in %v: %.1f MB/s, %d mult_XORs, %d plan(s)",
		s.Stripes, float64(s.BytesRepaired)/1e6, s.Elapsed.Round(time.Millisecond),
		s.ThroughputMBps(), s.MultXORs, s.PlansBuilt)
}

// Repair reconstructs every failed sector in the array with PPM. Plan
// reuse rides the Decoder's built-in plan cache: stripes that lost only
// the failed disks share a single cached plan (the overwhelmingly
// common case), while stripes with extra sector errors get their own
// cache entries. The steady-state stripe decode is allocation-free —
// one plan, pooled scratch, persistent workers.
func (a *Array) Repair(threads int) (RepairStats, error) {
	var stats RepairStats
	if !a.Degraded() {
		return stats, nil
	}
	disks := a.failedDisks()
	var diskSectors []int
	for _, d := range disks {
		for row := 0; row < a.code.NumRows(); row++ {
			diskSectors = append(diskSectors, row*a.code.NumStrips()+d)
		}
	}

	var opCounter kernel.Stats
	dec := core.NewDecoder(a.code, core.WithThreads(threads), core.WithStats(&opCounter))
	start := time.Now()
	for i, st := range a.stripes {
		faulty := append([]int(nil), diskSectors...)
		faulty = append(faulty, a.extra[i]...)
		if len(faulty) == 0 {
			continue
		}
		sc, err := codes.NewScenario(a.code, faulty)
		if err != nil {
			return stats, fmt.Errorf("array: stripe %d: %w", i, err)
		}
		if err := dec.Decode(st, sc); err != nil {
			return stats, fmt.Errorf("array: stripe %d: %w", i, err)
		}
		stats.Stripes++
		stats.BytesRepaired += int64(len(sc.Faulty) * st.SectorSize())
	}
	stats.Elapsed = time.Since(start)
	stats.MultXORs = opCounter.MultXORs()
	_, misses := dec.PlanCacheStats()
	stats.PlansBuilt = int(misses)

	a.failedDisk = make(map[int]bool)
	a.extra = make(map[int][]int)
	return stats, nil
}

// Verify checks H*B = 0 on every stripe.
func (a *Array) Verify() (bool, error) {
	for i, st := range a.stripes {
		ok, err := decode.Verify(a.code, st)
		if err != nil {
			return false, fmt.Errorf("array: stripe %d: %w", i, err)
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// Intact reports whether the array content matches what was originally
// encoded, byte for byte. For tests and demos.
func (a *Array) Intact() bool {
	for i, st := range a.stripes {
		if !st.Equal(a.pristine[i]) {
			return false
		}
	}
	return true
}

func (a *Array) failedDisks() []int {
	var disks []int
	for d := range a.failedDisk {
		disks = append(disks, d)
	}
	sort.Ints(disks)
	return disks
}

func signature(faulty []int) string {
	parts := make([]string, len(faulty))
	for i, f := range faulty {
		parts[i] = fmt.Sprintf("%d", f)
	}
	return strings.Join(parts, ",")
}

// RepairParallel is Repair with stripe-level parallelism: distinct
// stripes decode on distinct goroutines (each itself running PPM's
// intra-stripe parallel phase with the given threads). Stripe decodes
// are independent — they touch disjoint buffers — so this composes the
// two parallelism levels the way a real rebuild would.
func (a *Array) RepairParallel(stripeWorkers, threads int) (RepairStats, error) {
	if stripeWorkers <= 1 {
		return a.Repair(threads)
	}
	var stats RepairStats
	if !a.Degraded() {
		return stats, nil
	}
	disks := a.failedDisks()
	var diskSectors []int
	for _, d := range disks {
		for row := 0; row < a.code.NumRows(); row++ {
			diskSectors = append(diskSectors, row*a.code.NumStrips()+d)
		}
	}

	var opCounter kernel.Stats
	dec := core.NewDecoder(a.code, core.WithThreads(threads), core.WithStats(&opCounter))

	// Pre-build plans serially (they are shared read-only afterwards).
	type job struct {
		idx  int
		plan *core.Plan
		n    int
	}
	plans := make(map[string]*core.Plan)
	var jobs []job
	for i := range a.stripes {
		faulty := append([]int(nil), diskSectors...)
		faulty = append(faulty, a.extra[i]...)
		if len(faulty) == 0 {
			continue
		}
		sc, err := codes.NewScenario(a.code, faulty)
		if err != nil {
			return stats, fmt.Errorf("array: stripe %d: %w", i, err)
		}
		key := signature(sc.Faulty)
		plan, ok := plans[key]
		if !ok {
			plan, err = dec.Plan(sc)
			if err != nil {
				return stats, fmt.Errorf("array: stripe %d unrecoverable: %w", i, err)
			}
			plans[key] = plan
			stats.PlansBuilt++
		}
		jobs = append(jobs, job{idx: i, plan: plan, n: len(sc.Faulty)})
	}

	start := time.Now()
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, stripeWorkers)
	for ji, j := range jobs {
		ji, j := ji, j
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[ji] = dec.DecodeWithPlan(j.plan, a.stripes[j.idx])
		}()
	}
	wg.Wait()
	for ji, err := range errs {
		if err != nil {
			return stats, fmt.Errorf("array: stripe %d: %w", jobs[ji].idx, err)
		}
	}
	stats.Elapsed = time.Since(start)
	stats.MultXORs = opCounter.MultXORs()
	for _, j := range jobs {
		stats.Stripes++
		stats.BytesRepaired += int64(j.n * a.stripes[j.idx].SectorSize())
	}
	a.failedDisk = make(map[int]bool)
	a.extra = make(map[int][]int)
	return stats, nil
}
