package core

import (
	"fmt"
	"strings"

	"ppm/internal/matrix"
)

// Group is one independent sub-matrix H_i of the partition: Rows are the
// row indices extracted from H and FaultyCols the f faulty blocks the
// group recovers. len(Rows) == len(FaultyCols) == f, and every
// coefficient of the group's rows at those columns is nonzero.
type Group struct {
	Rows       []int
	FaultyCols []int
}

// Partition is the result of PPM Step 2: p independent groups that can
// be decoded in parallel, plus the rows and faulty columns of the
// remaining sub-matrix H_rest.
type Partition struct {
	Groups     []Group
	RestRows   []int
	RestFaulty []int
}

// P returns the degree of parallelism p (§III-C).
func (pt *Partition) P() int { return len(pt.Groups) }

// Case classifies the partition per §III-C.
//   - 1: p == 0, no parallelism (H_rest == H)
//   - 2: p == 1, a single independent sub-matrix
//   - 31: 1 < p, H_rest empty (all faulty blocks independent by groups)
//   - 32: 1 < p, H_rest non-empty (the common case)
//   - 4: every faulty block independent, maximum parallelism
func (pt *Partition) Case() int {
	switch {
	case pt.P() == 0:
		return 1
	case pt.P() == 1:
		return 2
	case len(pt.RestFaulty) == 0 && pt.allSingleton():
		return 4
	case len(pt.RestFaulty) == 0:
		return 31
	default:
		return 32
	}
}

func (pt *Partition) allSingleton() bool {
	for _, g := range pt.Groups {
		if len(g.FaultyCols) != 1 {
			return false
		}
	}
	return true
}

// BuildPartition implements the §III-A independence exploitation on a
// log table. For each row with t_i == 1 the faulty block is independent
// and the row becomes a singleton group; for t_i == f > 1, f rows with
// identical l_i form a group recovering those f blocks together.
//
// Two refinements the paper leaves implicit are made explicit here:
//
//   - Column disjointness. A group is only extracted if its faulty
//     columns are disjoint from every previously extracted group's, so
//     that parallel sub-decodes never write the same block. (In the
//     paper's SD/LRC patterns groups are naturally disjoint — stripe
//     rows and local groups do not share sectors.)
//   - Surplus rows. If more than f rows share the same l_i, the first f
//     are extracted and the surplus goes to H_rest, keeping F_i square.
func BuildPartition(lt *LogTable, faulty []int) *Partition {
	pt := &Partition{}
	claimed := make(map[int]bool, len(faulty))
	usedRow := make(map[int]bool, len(lt.Rows))

	// Bucket rows by identical l_i, preserving first-appearance order.
	type bucket struct {
		l    []int
		rows []int
	}
	var order []string
	buckets := make(map[string]*bucket)
	for _, lr := range lt.Rows {
		if lr.T == 0 {
			continue // row touches no faulty block; it stays in H_rest
		}
		k := lr.key()
		b, ok := buckets[k]
		if !ok {
			b = &bucket{l: lr.L}
			buckets[k] = b
			order = append(order, k)
		}
		b.rows = append(b.rows, lr.Row)
	}

	for _, k := range order {
		b := buckets[k]
		f := len(b.l)
		if len(b.rows) < f {
			continue // under-determined alone; resolved in H_rest
		}
		disjoint := true
		for _, col := range b.l {
			if claimed[col] {
				disjoint = false
				break
			}
		}
		if !disjoint {
			continue
		}
		g := Group{
			Rows:       append([]int(nil), b.rows[:f]...),
			FaultyCols: append([]int(nil), b.l...),
		}
		for _, col := range g.FaultyCols {
			claimed[col] = true
		}
		for _, r := range g.Rows {
			usedRow[r] = true
		}
		pt.Groups = append(pt.Groups, g)
	}

	for _, lr := range lt.Rows {
		// Rows with t_i == 0 have zero coefficients in every faulty
		// column; they contribute nothing to F_rest and are dropped.
		if !usedRow[lr.Row] && lr.T > 0 {
			pt.RestRows = append(pt.RestRows, lr.Row)
		}
	}
	for _, col := range faulty {
		if !claimed[col] {
			pt.RestFaulty = append(pt.RestFaulty, col)
		}
	}
	return pt
}

// demote moves a group's rows and columns back into H_rest. The plan
// builder uses it when a group's F_i turns out singular — its blocks are
// then recovered by the remaining decode instead, preserving
// correctness at the price of parallelism.
func (pt *Partition) demote(i int) {
	g := pt.Groups[i]
	pt.Groups = append(pt.Groups[:i], pt.Groups[i+1:]...)
	pt.RestRows = append(pt.RestRows, g.Rows...)
	pt.RestFaulty = append(pt.RestFaulty, g.FaultyCols...)
	sortInts(pt.RestRows)
	sortInts(pt.RestFaulty)
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// SubMatrix extracts the group's H_i from H with all-zero columns
// dropped, returning the matrix and the global indices of its columns.
func (g Group) SubMatrix(h *matrix.Matrix) (*matrix.Matrix, []int) {
	sub := h.SelectRows(g.Rows)
	cols := sub.NonzeroColumns()
	return sub.SelectColumns(cols), cols
}

// String renders the partition in Figure 3's vocabulary.
func (pt *Partition) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "p = %d (case %d)\n", pt.P(), pt.Case())
	for i, g := range pt.Groups {
		fmt.Fprintf(&b, "H%d: rows %v -> blocks %v\n", i, g.Rows, g.FaultyCols)
	}
	if len(pt.RestRows) > 0 {
		fmt.Fprintf(&b, "Hrest: rows %v -> blocks %v\n", pt.RestRows, pt.RestFaulty)
	} else {
		b.WriteString("Hrest: NULL\n")
	}
	return b.String()
}
