package core

import (
	"fmt"
	"runtime"
	"sync"

	"ppm/internal/gf"
	"ppm/internal/kernel"
	"ppm/internal/stripe"
)

// Execute runs a plan against a stripe: Step 3 fans the p independent
// sub-decodes over T worker goroutines, Step 4 merges the recovered
// blocks into the remaining decode. threads <= 0 selects the paper's
// default T = min(4, cores); the effective T never exceeds p ("we also
// restrain the number of threads T (T <= p)", §III-C).
func Execute(p *Plan, st *stripe.Stripe, field gf.Field, threads int, stats *kernel.Stats) error {
	if p == nil {
		return fmt.Errorf("core: nil plan")
	}
	if p.Whole != nil {
		return runSubDecode(&p.Whole.SubDecode, st, field, stats)
	}
	if len(p.Groups) == 0 && p.Rest == nil {
		return nil // nothing faulty
	}

	t := effectiveThreads(threads, len(p.Groups))
	switch {
	case len(p.Groups) == 0:
		// Case 1: no independent sub-matrix; only the remaining decode.
	case t <= 1 || len(p.Groups) == 1:
		// Case 2 (or single worker): decode groups serially.
		for i := range p.Groups {
			if err := runSubDecode(&p.Groups[i], st, field, stats); err != nil {
				return err
			}
		}
	default:
		// Case 3/4: thread (g mod T) processes group g, as in
		// Algorithm 1. Workers pick up a fixed stride of groups.
		var wg sync.WaitGroup
		errs := make([]error, t)
		for w := 0; w < t; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for g := w; g < len(p.Groups); g += t {
					if err := runSubDecode(&p.Groups[g], st, field, stats); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}

	if p.Rest != nil {
		return runSubDecode(p.Rest, st, field, stats)
	}
	return nil
}

// DefaultThreads is the paper's thread policy: min(4, core count).
func DefaultThreads() int {
	if c := runtime.NumCPU(); c < 4 {
		return c
	}
	return 4
}

func effectiveThreads(threads, p int) int {
	t := threads
	if t <= 0 {
		t = DefaultThreads()
	}
	if t > p {
		t = p
	}
	if t < 1 {
		t = 1
	}
	return t
}

// runSubDecode performs one matrix-decoding operation (Step 3.3 or
// Step 4): writes the recovered faulty blocks into the stripe. The
// compiled fast path is used when the plan was lowered (always, for
// plans from BuildPlan); the matrix path remains as the fallback for
// hand-assembled sub-decodes in tests.
func runSubDecode(sd *SubDecode, st *stripe.Stripe, field gf.Field, stats *kernel.Stats) error {
	out := st.Sectors(sd.FaultyCols)
	in := st.Sectors(sd.SurvivorCols)
	if sd.cG != nil || sd.cFinv != nil {
		kernel.CompiledProduct(sd.cFinv, sd.cS, sd.cG, in, out, nil, sd.Seq, stats)
		return nil
	}
	kernel.Product(field, sd.Finv, sd.S, in, out, nil, sd.Seq, stats)
	return nil
}
