package core

import (
	"fmt"
	"runtime"

	"ppm/internal/gf"
	"ppm/internal/kernel"
	"ppm/internal/stripe"
)

// Execute runs a plan against a stripe: Step 3 fans the p independent
// sub-decodes over T workers of the persistent kernel pool, Step 4
// merges the recovered blocks into the remaining decode. threads <= 0
// selects the paper's default T = min(4, cores); the effective T never
// exceeds p ("we also restrain the number of threads T (T <= p)",
// §III-C).
//
// Error contract: if any sub-decode fails, Execute returns the error of
// the lowest-indexed failing group (then the remaining decode's),
// deterministically — concurrent failures are never dropped. The
// per-decode state (sector views, error slots, Normal-sequence scratch)
// comes from pools, so repeated executions of one plan allocate
// nothing per stripe.
func Execute(p *Plan, st *stripe.Stripe, field gf.Field, threads int, stats *kernel.Stats) (err error) {
	if p == nil {
		return fmt.Errorf("core: nil plan")
	}
	// View preparation dereferences the plan's column lists; a malformed
	// plan surfaces as an error, like every other executor failure.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: execute failed: %v", r)
		}
	}()
	s := getSession()
	defer s.release()
	s.reserveViews(viewCount(p))

	if p.Whole != nil {
		in := s.sectorViews(st, p.Whole.SurvivorCols)
		out := s.sectorViews(st, p.Whole.FaultyCols)
		return applySubDecode(&p.Whole.SubDecode, field, in, out, stats)
	}
	if len(p.Groups) == 0 && p.Rest == nil {
		return nil // nothing faulty
	}

	// Prepare every group's views serially; the views alias the stripe,
	// so filling them before the fan-out costs pointer writes only.
	s.reservePairs(len(p.Groups))
	for i := range p.Groups {
		s.ins[i] = s.sectorViews(st, p.Groups[i].SurvivorCols)
		s.outs[i] = s.sectorViews(st, p.Groups[i].FaultyCols)
	}

	t := effectiveThreads(threads, len(p.Groups))
	switch {
	case len(p.Groups) == 0:
		// Case 1: no independent sub-matrix; only the remaining decode.
	case t <= 1 || len(p.Groups) == 1:
		// Case 2 (or single worker): decode groups serially.
		for i := range p.Groups {
			if err := applySubDecode(&p.Groups[i], field, s.ins[i], s.outs[i], stats); err != nil {
				return err
			}
		}
	default:
		// Case 3/4: thread (g mod T) processes group g, as in
		// Algorithm 1. Workers pick up a fixed stride of groups on the
		// persistent pool; each group's outcome lands in its own slot
		// and the lowest-indexed failure wins.
		errs := s.errSlots(len(p.Groups))
		//ppm:hotpath
		poolErr := kernel.DefaultWorkers().Run(t, func(w int) error {
			for g := w; g < len(p.Groups); g += t {
				if err := applySubDecode(&p.Groups[g], field, s.ins[g], s.outs[g], stats); err != nil {
					errs[g] = err
					return err
				}
			}
			return nil
		})
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		if poolErr != nil {
			return poolErr
		}
	}

	if p.Rest != nil {
		in := s.sectorViews(st, p.Rest.SurvivorCols)
		out := s.sectorViews(st, p.Rest.FaultyCols)
		return applySubDecode(p.Rest, field, in, out, stats)
	}
	return nil
}

// DefaultThreads is the paper's thread policy: min(4, core count).
func DefaultThreads() int {
	if c := runtime.NumCPU(); c < 4 {
		return c
	}
	return 4
}

func effectiveThreads(threads, p int) int {
	t := threads
	if t <= 0 {
		t = DefaultThreads()
	}
	if t > p {
		t = p
	}
	if t < 1 {
		t = 1
	}
	return t
}

// runSubDecode performs one matrix-decoding operation (Step 3.3 or
// Step 4): writes the recovered faulty blocks into the stripe. The
// compiled fast path is used when the plan was lowered (always, for
// plans from BuildPlan); the matrix path remains as the fallback for
// hand-assembled sub-decodes in tests. Failures — including
// out-of-range column lists and kernel shape panics — are returned as
// errors.
func runSubDecode(sd *SubDecode, st *stripe.Stripe, field gf.Field, stats *kernel.Stats) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: sub-decode failed: %v", r)
		}
	}()
	out := st.Sectors(sd.FaultyCols)
	in := st.Sectors(sd.SurvivorCols)
	return applySubDecode(sd, field, in, out, stats)
}
