package core_test

// External-package hook running the symbolic plan verifier over the
// core planner's output (planverify imports core, so this lives in
// core_test): every strategy's plan for a spread of scenarios on each
// code family must prove out, and so must every delta-parity updater.

import (
	"testing"

	"ppm/internal/codes"
	"ppm/internal/core"
	"ppm/internal/planverify"
)

func verifyCodes(t *testing.T) []codes.Code {
	t.Helper()
	var out []codes.Code
	for i := range codes.PublishedSD {
		c, err := codes.NewPublishedSD(i)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, c)
	}
	lrc, err := codes.NewLRC(10, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := codes.NewRS(8, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	return append(out, lrc, rs)
}

// TestBuiltPlansVerifySymbolically proves every strategy's plan for
// the encoding scenario and a two-erasure scenario on each code.
func TestBuiltPlansVerifySymbolically(t *testing.T) {
	strategies := []core.Strategy{
		core.StrategyAuto, core.StrategyPPM, core.StrategyPPMMatrixFirstRest,
		core.StrategyWholeNormal, core.StrategyWholeMatrixFirst,
	}
	for _, c := range verifyCodes(t) {
		scenarios := []codes.Scenario{codes.EncodingScenario(c)}
		if sc, err := codes.NewScenario(c, []int{0, codes.TotalSectors(c) - 1}); err == nil && codes.Decodable(c, sc) {
			scenarios = append(scenarios, sc)
		}
		for _, sc := range scenarios {
			for _, strat := range strategies {
				plan, err := core.BuildPlan(c, sc, strat)
				if err != nil {
					t.Fatalf("%s %v %v: %v", c.Name(), sc.Faulty, strat, err)
				}
				for _, f := range planverify.VerifyDecodePlan(c, plan) {
					t.Errorf("%s faulty=%v %v: %s", c.Name(), sc.Faulty, strat, f)
				}
			}
		}
	}
}

// TestUpdatersVerifySymbolically proves each code's delta-parity
// updater keeps every patched stripe a codeword.
func TestUpdatersVerifySymbolically(t *testing.T) {
	for _, c := range verifyCodes(t) {
		u, err := core.NewUpdater(c)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		for _, f := range planverify.VerifyUpdater(c, u) {
			t.Errorf("%s: %s", c.Name(), f)
		}
	}
}
