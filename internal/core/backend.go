package core

import (
	"fmt"

	"ppm/internal/bitmatrix"
	"ppm/internal/gf"
	"ppm/internal/kernel"
	"ppm/internal/stripe"
)

// Backend selects the arithmetic engine a Decoder's sub-decodes run on.
type Backend int

const (
	// BackendTable is the default: table-driven GF(2^w) region
	// multiplication over word-interleaved sectors (GF-Complete style).
	BackendTable Backend = iota
	// BackendBitMatrix is the Cauchy-RS XOR-schedule engine of the
	// paper's reference [8] (Jerasure style): coefficients expand to
	// binary matrices and sectors are interpreted as w bit-packets.
	//
	// The two back ends produce different parity bytes for the same
	// data (word-interleaved vs bit-packetised symbol layouts), so a
	// stripe must be encoded and decoded under the same back end.
	// Sector sizes must be divisible by w for the packet split.
	BackendBitMatrix
)

// String names the backend.
func (b Backend) String() string {
	switch b {
	case BackendTable:
		return "table"
	case BackendBitMatrix:
		return "bitmatrix"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// WithBackend selects the arithmetic engine (default BackendTable).
func WithBackend(b Backend) Option {
	return func(d *Decoder) { d.backend = b }
}

// bmForms caches the bit-matrix expansions of a sub-decode, built
// lazily per plan the first time the bit-matrix backend executes it.
type bmForms struct {
	g, finv, s *bitmatrix.BitMatrix
}

// lowerBitMatrix expands the matrices the sub-decode's sequence needs.
func (sd *SubDecode) lowerBitMatrix(f gf.Field) *bmForms {
	forms := &bmForms{}
	if sd.Seq == kernel.MatrixFirst {
		forms.g = bitmatrix.Expand(f, sd.G)
		return forms
	}
	forms.finv = bitmatrix.Expand(f, sd.Finv)
	forms.s = bitmatrix.Expand(f, sd.S)
	return forms
}

// runSubDecodeBitMatrix performs one matrix-decoding operation on the
// packet layout. Stats are credited with the same logical mult_XORs
// count as the table backend (one per nonzero coefficient), keeping the
// cost model backend-independent.
func runSubDecodeBitMatrix(sd *SubDecode, forms *bmForms, st *stripe.Stripe, w int, stats *kernel.Stats) error {
	if st.SectorSize()%w != 0 {
		return fmt.Errorf("core: sector size %d not divisible by w=%d for the bit-matrix backend", st.SectorSize(), w)
	}
	in := packetize(st.Sectors(sd.SurvivorCols), w)
	out := packetize(st.Sectors(sd.FaultyCols), w)

	switch sd.Seq {
	case kernel.MatrixFirst:
		zeroPackets(out)
		forms.g.Apply(in, out)
	case kernel.Normal:
		scratch := bitmatrix.AllocPackets(len(out), st.SectorSize()/w)
		forms.s.Apply(in, scratch)
		zeroPackets(out)
		forms.finv.Apply(scratch, out)
	default:
		return fmt.Errorf("core: unknown sequence %v", sd.Seq)
	}
	stats.AddMultXORs(sd.ops())
	return nil
}

// packetize splits each region into w equal packets, concatenated in
// region order (region r's packets occupy indices r*w .. r*w+w-1).
func packetize(regions [][]byte, w int) [][]byte {
	out := make([][]byte, 0, len(regions)*w)
	for _, reg := range regions {
		plen := len(reg) / w
		for i := 0; i < w; i++ {
			out = append(out, reg[i*plen:(i+1)*plen:(i+1)*plen])
		}
	}
	return out
}

func zeroPackets(packets [][]byte) {
	for _, p := range packets {
		for i := range p {
			p[i] = 0
		}
	}
}

// executeBitMatrix runs a plan entirely on the bit-matrix backend.
// Parallel structure mirrors Execute. Bit-matrix lowering happens per
// execution: plans are shared immutably across goroutines, so caching
// the expansion on the SubDecode would need synchronisation; the
// expansion costs one scalar multiply per coefficient bit-column, which
// is noise next to the packet XORs it steers.
func executeBitMatrix(d *Decoder, plan *Plan, st *stripe.Stripe) error {
	w := d.code.Field().W()
	run := func(sd *SubDecode) error {
		return runSubDecodeBitMatrix(sd, sd.lowerBitMatrix(d.code.Field()), st, w, d.stats)
	}
	if plan.Whole != nil {
		return run(&plan.Whole.SubDecode)
	}
	if len(plan.Groups) == 0 && plan.Rest == nil {
		return nil
	}
	t := effectiveThreads(d.threads, len(plan.Groups))
	if t <= 1 || len(plan.Groups) <= 1 {
		for i := range plan.Groups {
			if err := run(&plan.Groups[i]); err != nil {
				return err
			}
		}
	} else {
		// Stride the groups over t workers of the persistent pool; the
		// error from the lowest group index wins.
		errs := make([]error, len(plan.Groups))
		poolErr := kernel.DefaultWorkers().Run(t, func(w int) error {
			for g := w; g < len(plan.Groups); g += t {
				if err := run(&plan.Groups[g]); err != nil {
					errs[g] = err
					return err
				}
			}
			return nil
		})
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		if poolErr != nil {
			return poolErr
		}
	}
	if plan.Rest != nil {
		return run(plan.Rest)
	}
	return nil
}
