package core

import (
	"container/list"
	"strconv"
	"sync"

	"ppm/internal/codes"
)

// DefaultPlanCacheSize is the plan-cache bound a Decoder starts with.
// A rebuild workload sees a handful of distinct failure signatures (one
// per dead-disk pattern plus a few latent-sector variants), so a small
// LRU holds the entire working set; the bound only matters for
// adversarial scenario churn.
const DefaultPlanCacheSize = 64

// planCache is an LRU of built plans keyed by canonicalised failure
// pattern + strategy. Plans are immutable after BuildPlan, so one
// cached plan may execute on any number of goroutines concurrently;
// the cache itself is mutex-guarded and safe for concurrent Decode
// calls. Lookups with a byte key avoid allocating on the hit path.
type planCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element
	lru      list.List // Front is most recently used; values are *planEntry
	hits     int64
	misses   int64
}

type planEntry struct {
	key  string
	plan *Plan
}

func newPlanCache(capacity int) *planCache {
	return &planCache{
		capacity: capacity,
		entries:  make(map[string]*list.Element, capacity),
	}
}

// planKey canonicalises a failure pattern + strategy into a byte key.
// Scenario.Faulty is sorted (codes.NewScenario and the generators
// guarantee it), so equal patterns render equal keys.
func planKey(buf []byte, sc codes.Scenario, strategy Strategy) []byte {
	buf = strconv.AppendInt(buf, int64(strategy), 10)
	for _, f := range sc.Faulty {
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(f), 10)
	}
	return buf
}

// get returns the cached plan for the key, or nil.
func (c *planCache) get(key []byte) *Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	if elem, ok := c.entries[string(key)]; ok {
		c.lru.MoveToFront(elem)
		c.hits++
		return elem.Value.(*planEntry).plan
	}
	c.misses++
	return nil
}

// put stores a freshly built plan, evicting the least recently used
// entry when full.
func (c *planCache) put(key []byte, plan *Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if elem, ok := c.entries[string(key)]; ok {
		// A concurrent miss built the same plan; keep the newer one.
		elem.Value.(*planEntry).plan = plan
		c.lru.MoveToFront(elem)
		return
	}
	for c.lru.Len() >= c.capacity {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*planEntry).key)
	}
	k := string(key)
	c.entries[k] = c.lru.PushFront(&planEntry{key: k, plan: plan})
}

// stats returns the hit/miss counters. Misses count lookups that did
// not find a plan — i.e. the number of plans Decode had to build.
func (c *planCache) stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
