package core

import (
	"math/rand"
	"testing"

	"ppm/internal/codes"
	"ppm/internal/kernel"
)

// TestHybridMatchesStandard: hybrid execution recovers the same bytes
// with the same logical operation count across code families and plan
// shapes (p = 0, p = 1, case 3.2, whole-matrix fallbacks).
func TestHybridMatchesStandard(t *testing.T) {
	rng := rand.New(rand.NewSource(801))

	sd, err := codes.NewSD(8, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	rdp, err := codes.NewRDP(5) // p = 1 shape for double disk failures
	if err != nil {
		t.Fatal(err)
	}
	eo, err := codes.NewEVENODD(5) // p = 0 shape
	if err != nil {
		t.Fatal(err)
	}

	type tc struct {
		code codes.Code
		gen  func() (codes.Scenario, error)
	}
	cases := []tc{
		{sd, func() (codes.Scenario, error) { return sd.WorstCaseScenario(rng, 1) }},
		{rdp, func() (codes.Scenario, error) { return rdp.WorstCaseScenario(rng) }},
		{eo, func() (codes.Scenario, error) { return eo.WorstCaseScenario(rng) }},
	}
	for _, cse := range cases {
		cse := cse
		t.Run(cse.code.Name(), func(t *testing.T) {
			st := encodedStripe(t, cse.code, 64, 802)
			want := st.Clone()
			for _, strat := range []Strategy{StrategyPPM, StrategyWholeNormal} {
				sc, err := cse.gen()
				if err != nil {
					t.Fatal(err)
				}
				plan, err := BuildPlan(cse.code, sc, strat)
				if err != nil {
					t.Fatal(err)
				}

				std := st.Clone()
				std.Scribble(1, sc.Faulty)
				var stdStats kernel.Stats
				if err := Execute(plan, std, cse.code.Field(), 4, &stdStats); err != nil {
					t.Fatal(err)
				}

				hyb := st.Clone()
				hyb.Scribble(1, sc.Faulty)
				var hybStats kernel.Stats
				if err := ExecuteHybrid(plan, hyb, cse.code.Field(), 4, &hybStats); err != nil {
					t.Fatal(err)
				}

				if !std.Equal(want) || !hyb.Equal(want) {
					t.Fatalf("%v: recovery mismatch", strat)
				}
				if stdStats.MultXORs() != hybStats.MultXORs() {
					t.Fatalf("%v: std ops %d != hybrid ops %d", strat, stdStats.MultXORs(), hybStats.MultXORs())
				}
			}
		})
	}
}

// TestHybridDecoderOption drives WithHybrid through the Decoder.
func TestHybridDecoderOption(t *testing.T) {
	sd := paperSD(t)
	sc := paperScenario(t, sd)
	st := encodedStripe(t, sd, 64, 803)
	want := st.Clone()
	st.Scribble(9, sc.Faulty)
	var stats kernel.Stats
	dec := NewDecoder(sd, WithHybrid(true), WithThreads(3), WithStats(&stats))
	if err := dec.Decode(st, sc); err != nil {
		t.Fatal(err)
	}
	if !st.Equal(want) {
		t.Fatal("hybrid decoder wrong")
	}
	if stats.MultXORs() != 29 { // the worked example's C4
		t.Fatalf("ops = %d, want 29", stats.MultXORs())
	}
}

// TestHybridTinySectors: chunking degenerates gracefully when a sector
// holds fewer words than there are workers.
func TestHybridTinySectors(t *testing.T) {
	sd := paperSD(t)
	sc := paperScenario(t, sd)
	st := encodedStripe(t, sd, 4, 804) // one word per sector
	want := st.Clone()
	st.Scribble(2, sc.Faulty)
	dec := NewDecoder(sd, WithHybrid(true), WithThreads(8))
	if err := dec.Decode(st, sc); err != nil {
		t.Fatal(err)
	}
	if !st.Equal(want) {
		t.Fatal("tiny-sector hybrid decode wrong")
	}
}

func TestHybridNilPlan(t *testing.T) {
	sd := paperSD(t)
	if err := ExecuteHybrid(nil, nil, sd.Field(), 2, nil); err == nil {
		t.Fatal("nil plan accepted")
	}
}

// TestHybridEmptyPlan: nothing faulty, nothing touched.
func TestHybridEmptyPlan(t *testing.T) {
	sd := paperSD(t)
	plan, err := BuildPlan(sd, codes.Scenario{}, StrategyPPM)
	if err != nil {
		t.Fatal(err)
	}
	st := encodedStripe(t, sd, 64, 805)
	want := st.Clone()
	if err := ExecuteHybrid(plan, st, sd.Field(), 4, nil); err != nil {
		t.Fatal(err)
	}
	if !st.Equal(want) {
		t.Fatal("empty hybrid plan touched the stripe")
	}
}

// TestHybridFewGroupsManyWorkers: 1 < p < T exercises the surplus-
// sharing branch (each group chunked across its worker share).
func TestHybridFewGroupsManyWorkers(t *testing.T) {
	sd, err := codes.NewSD(6, 2, 2, 1) // r=2 -> at most 2 groups
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(806))
	sc, err := sd.WorstCaseScenario(rng, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := encodedStripe(t, sd, 64, 807)
	want := st.Clone()
	st.Scribble(3, sc.Faulty)
	plan, err := BuildPlan(sd, sc, StrategyPPM)
	if err != nil {
		t.Fatal(err)
	}
	var stats kernel.Stats
	if err := ExecuteHybrid(plan, st, sd.Field(), 8, &stats); err != nil {
		t.Fatal(err)
	}
	if !st.Equal(want) {
		t.Fatal("surplus-worker hybrid decode wrong")
	}
	if stats.MultXORs() != plan.Costs.Chosen {
		t.Fatalf("ops %d != chosen %d", stats.MultXORs(), plan.Costs.Chosen)
	}
}
