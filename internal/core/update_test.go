package core

import (
	"math/rand"
	"testing"

	"ppm/internal/codes"
	"ppm/internal/decode"
	"ppm/internal/kernel"
)

// TestUpdateKeepsCodeword: after a small write, H*B = 0 still holds and
// the stripe equals a from-scratch re-encode of the new data.
func TestUpdateKeepsCodeword(t *testing.T) {
	rng := rand.New(rand.NewSource(811))

	sd, err := codes.NewSD(6, 6, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	lrc, err := codes.NewLRC(12, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []codes.Code{sd, lrc} {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			st := encodedStripe(t, c, 32, 812)
			u, err := NewUpdater(c)
			if err != nil {
				t.Fatal(err)
			}
			dataPositions := codes.DataPositions(c)
			for trial := 0; trial < 5; trial++ {
				idx := dataPositions[rng.Intn(len(dataPositions))]
				fresh := make([]byte, st.SectorSize())
				rng.Read(fresh)
				if err := u.Update(st, idx, fresh, nil); err != nil {
					t.Fatal(err)
				}
				ok, err := decode.Verify(c, st)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Fatalf("trial %d: stripe invalid after update", trial)
				}
			}
			// Cross-check against a full re-encode of the same data.
			reencoded := st.Clone()
			if err := decode.Encode(c, reencoded, decode.Options{}); err != nil {
				t.Fatal(err)
			}
			if !st.Equal(reencoded) {
				t.Fatal("updated stripe differs from a fresh encode")
			}
		})
	}
}

// TestUpdateCostStructure: the update touches exactly the parities that
// cover the sector — for LRC(12,3,2) that is 1 local + 2 globals = 3.
func TestUpdateCostStructure(t *testing.T) {
	lrc, err := codes.NewLRC(12, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUpdater(lrc)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 12; d++ {
		cost, err := u.UpdateCost(d)
		if err != nil {
			t.Fatal(err)
		}
		if cost != 3 {
			t.Fatalf("block %d: update cost %d, want 3 (local + 2 globals)", d, cost)
		}
	}
	// Measured ops match the declared cost.
	st := encodedStripe(t, lrc, 32, 813)
	fresh := make([]byte, st.SectorSize())
	var stats kernel.Stats
	if err := u.Update(st, 5, fresh, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.MultXORs() != 3 {
		t.Fatalf("measured %d ops, want 3", stats.MultXORs())
	}
	// The update is far cheaper than a full re-encode: u(G) for this
	// instance is k per local group summed + dense global rows.
	plan, err := BuildPlan(lrc, codes.EncodingScenario(lrc), StrategyWholeMatrixFirst)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Costs.C2 <= 3 {
		t.Fatalf("full encode cost %d suspiciously low", plan.Costs.C2)
	}
}

func TestUpdateValidation(t *testing.T) {
	sd := paperSD(t)
	u, err := NewUpdater(sd)
	if err != nil {
		t.Fatal(err)
	}
	st := encodedStripe(t, sd, 32, 814)
	fresh := make([]byte, st.SectorSize())

	// Parity sectors cannot be "updated".
	if err := u.Update(st, sd.ParityPositions()[0], fresh, nil); err == nil {
		t.Error("parity update accepted")
	}
	if _, err := u.UpdateCost(sd.ParityPositions()[0]); err == nil {
		t.Error("parity UpdateCost accepted")
	}
	// Wrong content size.
	if err := u.Update(st, 0, fresh[:8], nil); err == nil {
		t.Error("short content accepted")
	}
	// Wrong geometry.
	other := encodedStripe(t, mustSD(t, 6, 6, 2, 2), 32, 815)
	if err := u.Update(other, 0, make([]byte, other.SectorSize()), nil); err == nil {
		t.Error("mismatched stripe accepted")
	}
}

func mustSD(t *testing.T, n, r, m, s int) *codes.SD {
	t.Helper()
	sd, err := codes.NewSD(n, r, m, s)
	if err != nil {
		t.Fatal(err)
	}
	return sd
}

// TestUpdateThenDecode: a stripe maintained by small writes is fully
// recoverable afterwards.
func TestUpdateThenDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(816))
	sd := mustSD(t, 8, 8, 2, 2)
	st := encodedStripe(t, sd, 32, 817)
	u, err := NewUpdater(sd)
	if err != nil {
		t.Fatal(err)
	}
	dataPositions := codes.DataPositions(sd)
	for trial := 0; trial < 10; trial++ {
		idx := dataPositions[rng.Intn(len(dataPositions))]
		fresh := make([]byte, st.SectorSize())
		rng.Read(fresh)
		if err := u.Update(st, idx, fresh, nil); err != nil {
			t.Fatal(err)
		}
	}
	want := st.Clone()
	sc, err := sd.WorstCaseScenario(rng, 1)
	if err != nil {
		t.Fatal(err)
	}
	st.Scribble(1, sc.Faulty)
	if err := NewDecoder(sd, WithThreads(4)).Decode(st, sc); err != nil {
		t.Fatal(err)
	}
	if !st.Equal(want) {
		t.Fatal("decode after updates wrong")
	}
}
