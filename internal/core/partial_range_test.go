package core

import (
	"bytes"
	"testing"

	"ppm/internal/codes"
)

// TestDecodeSectorsRangeMatchesFull: chunked range-restricted degraded
// reads reassemble to exactly the full-sector partial decode.
func TestDecodeSectorsRangeMatchesFull(t *testing.T) {
	sd := paperSD(t)
	sc := paperScenario(t, sd)
	full := encodedStripe(t, sd, 256, 423)
	want := full.Clone()
	full.Scribble(9, sc.Faulty)
	chunked := full.Clone()

	wanted := []int{2}
	dec := NewDecoder(sd)
	if err := dec.DecodeSectors(full, sc, wanted); err != nil {
		t.Fatal(err)
	}
	wb := sd.Field().WordBytes()
	for lo := 0; lo < 256; {
		hi := lo + 16*wb
		if hi > 256 {
			hi = 256
		}
		if err := dec.DecodeSectorsRange(chunked, sc, wanted, lo, hi); err != nil {
			t.Fatal(err)
		}
		lo = hi
	}
	if !bytes.Equal(full.Sector(2), want.Sector(2)) {
		t.Fatal("full-range partial decode wrong")
	}
	if !bytes.Equal(chunked.Sector(2), full.Sector(2)) {
		t.Fatal("chunked partial decode differs from full-range")
	}
}

// TestDecodeSectorsRangeValidation rejects unaligned and out-of-bounds
// ranges.
func TestDecodeSectorsRangeValidation(t *testing.T) {
	sd := paperSD(t)
	sc := paperScenario(t, sd)
	st := encodedStripe(t, sd, 64, 5)
	dec := NewDecoder(sd)
	if err := dec.DecodeSectorsRange(st, sc, []int{2}, 0, 65); err == nil {
		t.Fatal("out-of-bounds hi accepted")
	}
	if err := dec.DecodeSectorsRange(st, sc, []int{2}, 8, 8); err == nil {
		t.Fatal("empty range accepted")
	}
	if sd.Field().WordBytes() > 1 {
		if err := dec.DecodeSectorsRange(st, sc, []int{2}, 1, 64); err == nil {
			t.Fatal("unaligned lo accepted")
		}
	}
}

// TestDecodeSectorsRangeAllocFree: with the plan and selection caches
// warm, the range-restricted degraded read allocates nothing per call.
func TestDecodeSectorsRangeAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool deliberately drops items; alloc counts are meaningless")
	}
	lrc, err := codes.NewLRC(12, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := codes.NewScenario(lrc, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	st := encodedStripe(t, lrc, 4096, 77)
	dec := NewDecoder(lrc)
	wanted := []int{3}
	if err := dec.DecodeSectorsRange(st, sc, wanted, 0, 4096); err != nil { // warm caches + pools
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := dec.DecodeSectorsRange(st, sc, wanted, 0, 4096); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeSectorsRange allocates %.1f per run, want 0", allocs)
	}
}
