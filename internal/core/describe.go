package core

import (
	"fmt"
	"strings"
)

// Describe renders a plan the way Figure 3 walks through the worked
// example: log table, partition, per-group matrices and costs. Used by
// cmd/ppminspect and the paper-walkthrough example.
func (p *Plan) Describe(verbose bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario: faulty sectors %v\n", p.Scenario.Faulty)
	if len(p.Scenario.FailedDisks) > 0 {
		fmt.Fprintf(&b, "          failed disks %v, z = %d\n", p.Scenario.FailedDisks, p.Scenario.Z)
	}
	fmt.Fprintf(&b, "strategy: %v\n", p.Costs.Strategy)

	if p.LogTable != nil {
		b.WriteString("\nlog table (Step 2):\n")
		b.WriteString(p.LogTable.String())
	}
	if p.Partition != nil {
		b.WriteString("\npartition:\n")
		b.WriteString(p.Partition.String())
	}
	b.WriteString("\ncosts (mult_XORs per stripe):\n")
	costLine := func(name string, v int64, chosen bool) {
		marker := ""
		if chosen {
			marker = "  <- chosen"
		}
		if v == CostUnknown {
			fmt.Fprintf(&b, "  %s: not evaluated\n", name)
			return
		}
		fmt.Fprintf(&b, "  %s = %d%s\n", name, v, marker)
	}
	c := p.Costs
	costLine("C1 (whole, normal)", c.C1, c.Strategy == StrategyWholeNormal)
	costLine("C2 (whole, matrix-first)", c.C2, c.Strategy == StrategyWholeMatrixFirst)
	costLine("C3 (ppm, matrix-first rest)", c.C3, c.Strategy == StrategyPPMMatrixFirstRest)
	costLine("C4 (ppm, normal rest)", c.C4, c.Strategy == StrategyPPM)
	if c.C1 != CostUnknown && c.C4 != CostUnknown && c.C1 > 0 {
		fmt.Fprintf(&b, "  reduction (C1-C4)/C1 = %.2f%%\n", 100*float64(c.C1-c.C4)/float64(c.C1))
	}

	if verbose {
		for i := range p.Groups {
			g := &p.Groups[i]
			fmt.Fprintf(&b, "\nH%d (%v): recover %v from %v\n", i, g.Seq, g.FaultyCols, g.SurvivorCols)
			fmt.Fprintf(&b, "F%d^-1:\n%s", i, g.Finv.String())
			fmt.Fprintf(&b, "F%d^-1 * S%d:\n%s", i, i, g.G.String())
		}
		if p.Rest != nil {
			fmt.Fprintf(&b, "\nHrest (%v): recover %v from %v\n", p.Rest.Seq, p.Rest.FaultyCols, p.Rest.SurvivorCols)
			fmt.Fprintf(&b, "Frest^-1:\n%s", p.Rest.Finv.String())
			fmt.Fprintf(&b, "Srest:\n%s", p.Rest.S.String())
		}
		if p.Whole != nil {
			fmt.Fprintf(&b, "\nwhole-matrix decode (%v): recover %v\n", p.Whole.Seq, p.Whole.FaultyCols)
			fmt.Fprintf(&b, "F^-1:\n%s", p.Whole.Finv.String())
		}
	}
	return b.String()
}
