package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"ppm/internal/codes"
	"ppm/internal/kernel"
	"ppm/internal/stripe"
)

// TestDecoderConcurrentStripes: one Decoder, many goroutines, distinct
// stripes with the same failure pattern — the whole-disk-rebuild shape.
// All goroutines share the plan cache, the scratch pool, the session
// pool and the worker pool; -race flags any mis-shared state.
func TestDecoderConcurrentStripes(t *testing.T) {
	sd := paperSD(t)
	sc := paperScenario(t, sd)
	dec := NewDecoder(sd, WithThreads(4))

	const goroutines = 8
	const decodesEach = 6
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < decodesEach; i++ {
				st := encodedStripe(t, sd, 128, int64(100*g+i))
				want := st.Clone()
				st.Scribble(int64(g*31+i), sc.Faulty)
				if err := dec.Decode(st, sc); err != nil {
					errs[g] = err
					return
				}
				if !st.Equal(want) {
					errs[g] = fmt.Errorf("goroutine %d decode %d: wrong bytes", g, i)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := dec.PlanCacheStats()
	if hits+misses != goroutines*decodesEach {
		t.Fatalf("cache saw %d lookups, want %d", hits+misses, goroutines*decodesEach)
	}
	// Concurrent first-decodes may each build the plan once, but the
	// steady state must be hits: at least one per goroutine after warmup.
	if hits < goroutines*decodesEach-goroutines {
		t.Fatalf("only %d cache hits across %d decodes (misses %d)", hits, goroutines*decodesEach, misses)
	}
}

// TestDecoderConcurrentScenarios: goroutines decode DIFFERENT failure
// patterns through one Decoder, hammering concurrent cache insertion
// and eviction.
func TestDecoderConcurrentScenarios(t *testing.T) {
	sd := paperSD(t)
	// A deliberately tiny cache forces eviction under concurrency.
	dec := NewDecoder(sd, WithThreads(2), WithPlanCache(3))

	rng := rand.New(rand.NewSource(42))
	type case_ struct {
		sc codes.Scenario
		st *stripe.Stripe
	}
	var cases []case_
	for len(cases) < 6 {
		sc, err := sd.WorstCaseScenario(rng, 1)
		if err != nil {
			t.Fatal(err)
		}
		st := encodedStripe(t, sd, 64, int64(len(cases)))
		cases = append(cases, case_{sc, st})
	}

	var wg sync.WaitGroup
	errs := make([]error, len(cases)*4)
	for w := 0; w < len(errs); w++ {
		w := w
		c := cases[w%len(cases)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				st := c.st.Clone()
				st.Scribble(int64(w+i), c.sc.Faulty)
				if err := dec.Decode(st, c.sc); err != nil {
					errs[w] = err
					return
				}
				if !st.Equal(c.st) {
					errs[w] = fmt.Errorf("worker %d: wrong bytes", w)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestSharedStatsAcrossParallelDecodes: a Stats counter shared by
// parallel decodes must total exactly decodes x plan cost — atomically,
// with no lost updates under -race.
func TestSharedStatsAcrossParallelDecodes(t *testing.T) {
	sd := paperSD(t)
	sc := paperScenario(t, sd)
	var stats kernel.Stats
	dec := NewDecoder(sd, WithThreads(4), WithStats(&stats))

	plan, err := dec.Plan(sc)
	if err != nil {
		t.Fatal(err)
	}
	perDecode := plan.Costs.Chosen

	const goroutines = 6
	const decodesEach = 5
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < decodesEach; i++ {
				st := encodedStripe(t, sd, 64, int64(10*g+i))
				st.Scribble(int64(g+i), sc.Faulty)
				if err := dec.Decode(st, sc); err != nil {
					errs[g] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	want := perDecode * goroutines * decodesEach
	if got := stats.MultXORs(); got != want {
		t.Fatalf("shared stats counted %d mult_XORs, want %d (%d decodes x %d)",
			got, want, goroutines*decodesEach, perDecode)
	}
}

// TestPlanCacheEvictionBound: the cache never holds more than its
// capacity and keeps serving correct plans across evictions.
func TestPlanCacheEvictionBound(t *testing.T) {
	sd := paperSD(t)
	dec := NewDecoder(sd, WithPlanCache(2))
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 12; i++ {
		sc, err := sd.WorstCaseScenario(rng, 1)
		if err != nil {
			t.Fatal(err)
		}
		st := encodedStripe(t, sd, 64, int64(i))
		want := st.Clone()
		st.Scribble(int64(i), sc.Faulty)
		if err := dec.Decode(st, sc); err != nil {
			t.Fatal(err)
		}
		if !st.Equal(want) {
			t.Fatalf("decode %d: wrong bytes after eviction churn", i)
		}
	}
	if dec.cache.lru.Len() > 2 {
		t.Fatalf("cache holds %d entries, capacity 2", dec.cache.lru.Len())
	}
}
