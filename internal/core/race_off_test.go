//go:build !race

package core

// raceEnabled reports whether the race detector instruments this build.
// Allocation-count assertions are skipped under -race: the detector
// makes sync.Pool deliberately drop items to expose misuse, so pooled
// paths legitimately allocate there.
const raceEnabled = false
