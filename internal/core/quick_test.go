package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ppm/internal/codes"
	"ppm/internal/decode"
	"ppm/internal/gf"
	"ppm/internal/kernel"
	"ppm/internal/matrix"
)

// faultySetFromMask converts a 16-bit mask into sector indices for the
// paper's 4x4 instance.
func faultySetFromMask(mask uint16) []int {
	var faulty []int
	for i := 0; i < 16; i++ {
		if mask&(1<<i) != 0 {
			faulty = append(faulty, i)
		}
	}
	return faulty
}

// TestQuickPPMMatchesTraditional: for arbitrary decodable failure sets
// on the worked-example instance, PPM and the traditional decoder
// recover identical bytes, and PPM's measured operation count equals
// the plan's predicted cost.
func TestQuickPPMMatchesTraditional(t *testing.T) {
	sd := paperSD(t)
	base := encodedStripe(t, sd, 32, 501)

	prop := func(mask uint16, scribbleSeed int64) bool {
		faulty := faultySetFromMask(mask)
		if len(faulty) > 5 {
			return true // beyond any code's reach; covered elsewhere
		}
		sc, err := codes.NewScenario(sd, faulty)
		if err != nil {
			return false
		}
		if !codes.Decodable(sd, sc) {
			// Both pipelines must refuse.
			_, errP := BuildPlan(sd, sc, StrategyPPM)
			errT := decode.Decode(sd, base.Clone(), sc, decode.Options{})
			return errP != nil && errT != nil
		}

		ppmSt := base.Clone()
		ppmSt.Scribble(scribbleSeed, sc.Faulty)
		var stats kernel.Stats
		dec := NewDecoder(sd, WithThreads(3), WithStats(&stats))
		if err := dec.Decode(ppmSt, sc); err != nil {
			return false
		}

		tradSt := base.Clone()
		tradSt.Scribble(scribbleSeed, sc.Faulty)
		if err := decode.Decode(sd, tradSt, sc, decode.Options{}); err != nil {
			return false
		}

		if !ppmSt.Equal(base) || !tradSt.Equal(base) {
			return false
		}
		plan, err := BuildPlan(sd, sc, StrategyPPM)
		if err != nil {
			return false
		}
		return stats.MultXORs() == plan.Costs.Chosen
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(502))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickPartitionInvariants: for random parity-check matrices and
// failure sets, the partition always satisfies its structural contract.
func TestQuickPartitionInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(503))

	prop := func(rowsRaw, colsRaw uint8, mask uint16, density uint8) bool {
		rows := 1 + int(rowsRaw%8)
		cols := 2 + int(colsRaw%10)
		h := matrix.New(gf.GF8, rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if rng.Intn(100) < 30+int(density%50) {
					h.Set(i, j, uint32(1+rng.Intn(255)))
				}
			}
		}
		var faulty []int
		for j := 0; j < cols; j++ {
			if mask&(1<<j) != 0 {
				faulty = append(faulty, j)
			}
		}
		lt := BuildLogTable(h, faulty)
		pt := BuildPartition(lt, faulty)

		// 1. Groups are square: |rows| == |faulty columns|.
		// 2. Group faulty columns are pairwise disjoint.
		// 3. No row appears twice (across groups and rest).
		// 4. Group columns plus rest columns partition the faulty set.
		// 5. Every group coefficient at its faulty columns is nonzero.
		seenCols := map[int]bool{}
		seenRows := map[int]bool{}
		for _, g := range pt.Groups {
			if len(g.Rows) != len(g.FaultyCols) {
				return false
			}
			for _, c := range g.FaultyCols {
				if seenCols[c] {
					return false
				}
				seenCols[c] = true
			}
			for _, r := range g.Rows {
				if seenRows[r] {
					return false
				}
				seenRows[r] = true
				for _, c := range g.FaultyCols {
					if h.At(r, c) == 0 {
						return false
					}
				}
			}
		}
		for _, r := range pt.RestRows {
			if seenRows[r] {
				return false
			}
			seenRows[r] = true
		}
		for _, c := range pt.RestFaulty {
			if seenCols[c] {
				return false
			}
			seenCols[c] = true
		}
		if len(seenCols) != len(faulty) {
			return false
		}
		for _, c := range faulty {
			if !seenCols[c] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(504))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickLogTableInvariants: t_i always equals |l_i|, l_i is sorted
// and a subset of the faulty set, and every listed column really is
// nonzero in that row.
func TestQuickLogTableInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	prop := func(mask uint16) bool {
		rows := 1 + rng.Intn(6)
		cols := 1 + rng.Intn(12)
		h := matrix.New(gf.GF8, rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if rng.Intn(2) == 0 {
					h.Set(i, j, uint32(1+rng.Intn(255)))
				}
			}
		}
		var faulty []int
		for j := 0; j < cols; j++ {
			if mask&(1<<j) != 0 {
				faulty = append(faulty, j)
			}
		}
		lt := BuildLogTable(h, faulty)
		if len(lt.Rows) != rows {
			return false
		}
		inFaulty := map[int]bool{}
		for _, c := range faulty {
			inFaulty[c] = true
		}
		for i, lr := range lt.Rows {
			if lr.Row != i || lr.T != len(lr.L) {
				return false
			}
			prev := -1
			for _, c := range lr.L {
				if c <= prev || !inFaulty[c] || h.At(i, c) == 0 {
					return false
				}
				prev = c
			}
			// Completeness: every nonzero faulty-column entry is listed.
			count := 0
			for _, c := range faulty {
				if h.At(i, c) != 0 {
					count++
				}
			}
			if count != lr.T {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(506))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
