package core

import (
	"fmt"
	"sync"

	"ppm/internal/gf"
	"ppm/internal/kernel"
	"ppm/internal/stripe"
)

// execSession is the reusable per-decode state of the standard
// executor: an arena of sector-view slice headers, the per-group
// in/out view pairs, and the per-group error slots. Sessions circulate
// through a sync.Pool, so the repeated-decode path — one plan executed
// against thousands of stripes during a whole-disk rebuild — allocates
// nothing per stripe beyond the worker pool's fixed dispatch state.
//
// A session is owned by exactly one Execute call; the stripe views it
// holds are cleared on release so the pool never pins stripe buffers.
//
//ppm:nocopy
type execSession struct {
	views [][]byte
	used  int
	ins   [][][]byte
	outs  [][][]byte
	errs  []error
}

var sessionPool = sync.Pool{New: func() interface{} { return new(execSession) }}

func getSession() *execSession {
	s := sessionPool.Get().(*execSession)
	s.used = 0
	return s
}

func (s *execSession) release() {
	for i := range s.views {
		s.views[i] = nil // do not pin stripe buffers in the pool
	}
	sessionPool.Put(s)
}

// reserveViews sizes the arena for n sector views.
func (s *execSession) reserveViews(n int) {
	if cap(s.views) < n {
		s.views = make([][]byte, n)
	}
	s.views = s.views[:n]
	s.used = 0
}

// sectorViews takes len(cols) views from the arena and fills them with
// the stripe's sector buffers.
func (s *execSession) sectorViews(st *stripe.Stripe, cols []int) [][]byte {
	v := s.views[s.used : s.used+len(cols) : s.used+len(cols)]
	s.used += len(cols)
	for i, c := range cols {
		v[i] = st.Sector(c)
	}
	return v
}

// reservePairs sizes the per-group in/out tables.
func (s *execSession) reservePairs(n int) {
	if cap(s.ins) < n {
		s.ins = make([][][]byte, n)
		s.outs = make([][][]byte, n)
	}
	s.ins = s.ins[:n]
	s.outs = s.outs[:n]
}

// errSlots returns n cleared error slots.
func (s *execSession) errSlots(n int) []error {
	if cap(s.errs) < n {
		s.errs = make([]error, n)
	}
	s.errs = s.errs[:n]
	for i := range s.errs {
		s.errs[i] = nil
	}
	return s.errs
}

// viewCount returns the number of sector views a plan's execution
// needs, so a session can reserve its arena in one step.
func viewCount(p *Plan) int {
	if p.Whole != nil {
		return len(p.Whole.FaultyCols) + len(p.Whole.SurvivorCols)
	}
	n := 0
	for i := range p.Groups {
		n += len(p.Groups[i].FaultyCols) + len(p.Groups[i].SurvivorCols)
	}
	if p.Rest != nil {
		n += len(p.Rest.FaultyCols) + len(p.Rest.SurvivorCols)
	}
	return n
}

// validate checks the sub-decode's matrices against the view counts the
// executor is about to apply them to, so a malformed or hand-assembled
// sub-decode surfaces as a returned error instead of a kernel panic.
func (sd *SubDecode) validate(inN, outN int) error {
	var rows, cols int
	switch {
	case sd.Seq == kernel.MatrixFirst && sd.cG != nil:
		rows, cols = sd.cG.Rows(), sd.cG.Cols()
	case sd.Seq == kernel.MatrixFirst && sd.G != nil:
		rows, cols = sd.G.Rows(), sd.G.Cols()
	case sd.Seq == kernel.MatrixFirst:
		return fmt.Errorf("core: sub-decode has no matrix-first product")
	case sd.cFinv != nil && sd.cS != nil:
		if sd.cFinv.Rows() != sd.cFinv.Cols() || sd.cFinv.Cols() != sd.cS.Rows() {
			return fmt.Errorf("core: sub-decode F^-1 %dx%d does not chain to S %dx%d",
				sd.cFinv.Rows(), sd.cFinv.Cols(), sd.cS.Rows(), sd.cS.Cols())
		}
		rows, cols = sd.cS.Rows(), sd.cS.Cols()
	case sd.Finv != nil && sd.S != nil:
		if sd.Finv.Rows() != sd.Finv.Cols() || sd.Finv.Cols() != sd.S.Rows() {
			return fmt.Errorf("core: sub-decode F^-1 %s does not chain to S %s", sd.Finv.Dims(), sd.S.Dims())
		}
		rows, cols = sd.S.Rows(), sd.S.Cols()
	default:
		return fmt.Errorf("core: sub-decode has no matrices for the normal sequence")
	}
	if rows != outN || cols != inN {
		return fmt.Errorf("core: sub-decode matrix is %dx%d against %d survivors, %d faulty", rows, cols, inN, outN)
	}
	return nil
}

// applySubDecode runs one sub-decode's kernel product on prepared
// views. Shape mismatches and kernel panics come back as errors — the
// executors' contract is that a failing sub-decode is always reported,
// never dropped and never allowed to kill the process.
//
//ppm:hotpath
func applySubDecode(sd *SubDecode, field gf.Field, in, out [][]byte, stats *kernel.Stats) (err error) {
	defer func() {
		if r := recover(); r != nil {
			//ppm:allow(hotalloc) panic recovery: this branch is the cold failure path
			err = fmt.Errorf("core: sub-decode failed: %v", r)
		}
	}()
	if verr := sd.validate(len(in), len(out)); verr != nil {
		return verr
	}
	if sd.cG != nil || sd.cFinv != nil {
		kernel.CompiledProduct(sd.cFinv, sd.cS, sd.cG, in, out, nil, sd.Seq, stats)
	} else {
		kernel.Product(field, sd.Finv, sd.S, in, out, nil, sd.Seq, stats)
	}
	return nil
}

// applySubDecodeRange runs one sub-decode over the [lo, hi) byte
// sub-range of the prepared views, serially — the per-chunk body of the
// hybrid executor's byte-range fan-out. Compiled plans go through the
// allocation-free tiled range product; the matrix fallback (only
// hand-assembled sub-decodes in tests reach it) slices the views.
//
//ppm:hotpath
func applySubDecodeRange(sd *SubDecode, field gf.Field, in, out [][]byte, lo, hi int, stats *kernel.Stats) (err error) {
	defer func() {
		if r := recover(); r != nil {
			//ppm:allow(hotalloc) panic recovery: this branch is the cold failure path
			err = fmt.Errorf("core: sub-decode failed: %v", r)
		}
	}()
	if verr := sd.validate(len(in), len(out)); verr != nil {
		return verr
	}
	if sd.cG != nil || sd.cFinv != nil {
		kernel.CompiledProductRange(sd.cFinv, sd.cS, sd.cG, in, out, nil, sd.Seq, lo, hi, stats)
	} else {
		cin := kernel.SliceRegions(in, lo, hi)
		cout := kernel.SliceRegions(out, lo, hi)
		kernel.Product(field, sd.Finv, sd.S, cin, cout, nil, sd.Seq, stats)
	}
	return nil
}
