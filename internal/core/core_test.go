package core

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"ppm/internal/codes"
	"ppm/internal/decode"
	"ppm/internal/gf"
	"ppm/internal/kernel"
	"ppm/internal/matrix"
	"ppm/internal/stripe"
)

func paperSD(t *testing.T) *codes.SD {
	t.Helper()
	sd, err := codes.NewSDWithCoefficients(4, 4, 1, 1, gf.GF8, []uint32{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	return sd
}

func paperScenario(t *testing.T, sd *codes.SD) codes.Scenario {
	t.Helper()
	sc, err := codes.NewScenario(sd, []int{2, 6, 10, 13, 14})
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func encodedStripe(t *testing.T, c codes.Code, sectorSize int, seed int64) *stripe.Stripe {
	t.Helper()
	st, err := stripe.New(c.NumStrips(), c.NumRows(), sectorSize)
	if err != nil {
		t.Fatal(err)
	}
	st.FillDataRandom(seed, codes.DataPositions(c))
	if err := decode.Encode(c, st, decode.Options{}); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return st
}

// TestLogTablePaperExample pins the log table of Figure 3.
func TestLogTablePaperExample(t *testing.T) {
	sd := paperSD(t)
	sc := paperScenario(t, sd)
	lt := BuildLogTable(sd.ParityCheck(), sc.Faulty)
	want := []LogRow{
		{Row: 0, T: 1, L: []int{2}},
		{Row: 1, T: 1, L: []int{6}},
		{Row: 2, T: 1, L: []int{10}},
		{Row: 3, T: 2, L: []int{13, 14}},
		{Row: 4, T: 5, L: []int{2, 6, 10, 13, 14}},
	}
	if len(lt.Rows) != len(want) {
		t.Fatalf("log table has %d rows", len(lt.Rows))
	}
	for i, w := range want {
		if lt.Rows[i].Row != w.Row || lt.Rows[i].T != w.T || !reflect.DeepEqual(lt.Rows[i].L, w.L) {
			t.Fatalf("row %d = %+v, want %+v", i, lt.Rows[i], w)
		}
	}
	if lt.String() == "" {
		t.Fatal("empty log table rendering")
	}
}

// TestPartitionPaperExample pins the Figure 3 partition: three singleton
// groups for b2, b6, b10; rows 3 and 4 form H_rest recovering b13, b14;
// p = 3, the paper's common case 3.2.
func TestPartitionPaperExample(t *testing.T) {
	sd := paperSD(t)
	sc := paperScenario(t, sd)
	lt := BuildLogTable(sd.ParityCheck(), sc.Faulty)
	pt := BuildPartition(lt, sc.Faulty)

	if pt.P() != 3 {
		t.Fatalf("p = %d, want 3", pt.P())
	}
	wantGroups := []Group{
		{Rows: []int{0}, FaultyCols: []int{2}},
		{Rows: []int{1}, FaultyCols: []int{6}},
		{Rows: []int{2}, FaultyCols: []int{10}},
	}
	for i, w := range wantGroups {
		if !reflect.DeepEqual(pt.Groups[i], w) {
			t.Fatalf("group %d = %+v, want %+v", i, pt.Groups[i], w)
		}
	}
	if !reflect.DeepEqual(pt.RestRows, []int{3, 4}) {
		t.Fatalf("rest rows = %v", pt.RestRows)
	}
	if !reflect.DeepEqual(pt.RestFaulty, []int{13, 14}) {
		t.Fatalf("rest faulty = %v", pt.RestFaulty)
	}
	if pt.Case() != 32 {
		t.Fatalf("case = %d, want 32", pt.Case())
	}
	if pt.String() == "" {
		t.Fatal("empty partition rendering")
	}
}

// TestCostsPaperExample pins all four §III-B costs of the worked
// example: C1 = 35, C2 = 31, C3 = 37, C4 = 29, reduction 17.14%.
func TestCostsPaperExample(t *testing.T) {
	sd := paperSD(t)
	sc := paperScenario(t, sd)
	plan, err := BuildPlan(sd, sc, StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	c := plan.Costs
	if c.C1 != 35 || c.C2 != 31 || c.C3 != 37 || c.C4 != 29 {
		t.Fatalf("C1..C4 = %d %d %d %d, paper says 35 31 37 29", c.C1, c.C2, c.C3, c.C4)
	}
	// C4 < C2 here, so Auto resolves to PPM and the chosen cost is C4.
	if c.Strategy != StrategyPPM || c.Chosen != 29 {
		t.Fatalf("chosen = %d via %v, want 29 via ppm", c.Chosen, c.Strategy)
	}
	// Reduction (C1-C4)/C1 = 6/35 = 17.14%.
	if reduction := float64(c.C1-c.C4) / float64(c.C1); reduction < 0.171 || reduction > 0.172 {
		t.Fatalf("reduction = %.4f, want 0.1714", reduction)
	}
}

// TestExecuteMatchesChosenCost: the executor's measured mult_XORs equal
// the plan's predicted cost for every strategy.
func TestExecuteMatchesChosenCost(t *testing.T) {
	sd := paperSD(t)
	sc := paperScenario(t, sd)
	st := encodedStripe(t, sd, 64, 201)
	for _, strat := range []Strategy{
		StrategyPPM, StrategyPPMMatrixFirstRest, StrategyWholeNormal, StrategyWholeMatrixFirst, StrategyAuto,
	} {
		plan, err := BuildPlan(sd, sc, strat)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		damaged := st.Clone()
		damaged.Scribble(7, sc.Faulty)
		var stats kernel.Stats
		if err := Execute(plan, damaged, sd.Field(), 4, &stats); err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if stats.MultXORs() != plan.Costs.Chosen {
			t.Fatalf("%v: measured %d ops, plan predicted %d", strat, stats.MultXORs(), plan.Costs.Chosen)
		}
		if !damaged.Equal(st) {
			t.Fatalf("%v: wrong recovery", strat)
		}
	}
}

// TestPPMEqualsTraditional: for random worst-case scenarios across code
// families, PPM recovers exactly what the traditional decoder recovers.
func TestPPMEqualsTraditional(t *testing.T) {
	rng := rand.New(rand.NewSource(202))

	sd, err := codes.NewSD(8, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	lrc, err := codes.NewLRC(12, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := codes.NewRS(8, 4, 3)
	if err != nil {
		t.Fatal(err)
	}

	type gen func() (codes.Scenario, error)
	cases := []struct {
		code codes.Code
		gen  gen
	}{
		{sd, func() (codes.Scenario, error) { return sd.WorstCaseScenario(rng, 1+rng.Intn(2)) }},
		{lrc, func() (codes.Scenario, error) { return lrc.WorstCaseScenario(rng) }},
		{rs, func() (codes.Scenario, error) { return rs.WorstCaseScenario(rng) }},
	}
	for _, cse := range cases {
		cse := cse
		t.Run(cse.code.Name(), func(t *testing.T) {
			st := encodedStripe(t, cse.code, 32, 203)
			want := st.Clone()
			dec := NewDecoder(cse.code, WithThreads(4))
			for trial := 0; trial < 8; trial++ {
				sc, err := cse.gen()
				if err != nil {
					t.Fatal(err)
				}
				ppmSt := st.Clone()
				ppmSt.Scribble(int64(trial), sc.Faulty)
				if err := dec.Decode(ppmSt, sc); err != nil {
					t.Fatalf("ppm: %v", err)
				}
				tradSt := st.Clone()
				tradSt.Scribble(int64(trial), sc.Faulty)
				if err := decode.Decode(cse.code, tradSt, sc, decode.Options{}); err != nil {
					t.Fatalf("traditional: %v", err)
				}
				if !ppmSt.Equal(want) || !tradSt.Equal(want) {
					t.Fatalf("trial %d: recovery mismatch", trial)
				}
			}
		})
	}
}

// TestThreadCountInvariance: the recovered data is identical for every
// worker count (Figure 7 varies T; only speed may change, never bytes).
func TestThreadCountInvariance(t *testing.T) {
	sd, err := codes.NewSD(9, 8, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(204))
	sc, err := sd.WorstCaseScenario(rng, 2)
	if err != nil {
		t.Fatal(err)
	}
	st := encodedStripe(t, sd, 32, 205)
	want := st.Clone()
	for _, threads := range []int{1, 2, 3, 4, 8, 16, 0} {
		dec := NewDecoder(sd, WithThreads(threads))
		damaged := st.Clone()
		damaged.Scribble(42, sc.Faulty)
		if err := dec.Decode(damaged, sc); err != nil {
			t.Fatalf("T=%d: %v", threads, err)
		}
		if !damaged.Equal(want) {
			t.Fatalf("T=%d: wrong recovery", threads)
		}
	}
}

// TestEncodeParallelism: for SD, encoding has p = r - z_c independent
// groups, where z_c is the number of stripe rows holding coding sectors
// (the paper's "p is equal to r - z" feature, §IV).
func TestEncodeParallelism(t *testing.T) {
	sd, err := codes.NewSD(8, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := BuildPlan(sd, codes.EncodingScenario(sd), StrategyPPM)
	if err != nil {
		t.Fatal(err)
	}
	// s=2 coding sectors fit in the last row: z_c = 1, p = r - 1 = 7.
	if plan.Partition.P() != 7 {
		t.Fatalf("encode p = %d, want 7", plan.Partition.P())
	}
}

func TestEncoderRoundTrip(t *testing.T) {
	sd, err := codes.NewSD(6, 6, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := stripe.New(6, 6, 32)
	if err != nil {
		t.Fatal(err)
	}
	st.FillDataRandom(301, codes.DataPositions(sd))
	dec := NewDecoder(sd, WithThreads(4))
	if err := dec.Encode(st); err != nil {
		t.Fatal(err)
	}
	ok, err := decode.Verify(sd, st)
	if err != nil || !ok {
		t.Fatalf("PPM-encoded stripe fails parity check: ok=%v err=%v", ok, err)
	}
	// And PPM encode must agree byte-for-byte with traditional encode.
	st2, err := stripe.New(6, 6, 32)
	if err != nil {
		t.Fatal(err)
	}
	st2.FillDataRandom(301, codes.DataPositions(sd))
	if err := decode.Encode(sd, st2, decode.Options{}); err != nil {
		t.Fatal(err)
	}
	if !st.Equal(st2) {
		t.Fatal("PPM and traditional encodes differ")
	}
}

func TestPlanReuse(t *testing.T) {
	sd := paperSD(t)
	sc := paperScenario(t, sd)
	dec := NewDecoder(sd)
	plan, err := dec.Plan(sc)
	if err != nil {
		t.Fatal(err)
	}
	base := encodedStripe(t, sd, 64, 302)
	for trial := 0; trial < 3; trial++ {
		st := encodedStripe(t, sd, 64, int64(400+trial))
		want := st.Clone()
		st.Scribble(int64(trial), sc.Faulty)
		if err := dec.DecodeWithPlan(plan, st); err != nil {
			t.Fatal(err)
		}
		if !st.Equal(want) {
			t.Fatalf("trial %d: plan reuse decoded wrongly", trial)
		}
	}
	_ = base
}

func TestEmptyScenarioPlan(t *testing.T) {
	sd := paperSD(t)
	plan, err := BuildPlan(sd, codes.Scenario{}, StrategyPPM)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Costs.Chosen != 0 {
		t.Fatal("empty plan has nonzero cost")
	}
	st := encodedStripe(t, sd, 64, 303)
	want := st.Clone()
	if err := Execute(plan, st, sd.Field(), 4, nil); err != nil {
		t.Fatal(err)
	}
	if !st.Equal(want) {
		t.Fatal("empty plan modified the stripe")
	}
}

func TestUnrecoverablePlan(t *testing.T) {
	sd := paperSD(t)
	sc, err := codes.NewScenario(sd, []int{0, 1, 2, 4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{StrategyPPM, StrategyWholeNormal, StrategyAuto} {
		if _, err := BuildPlan(sd, sc, strat); !errors.Is(err, ErrUnrecoverable) {
			t.Fatalf("%v: err = %v, want ErrUnrecoverable", strat, err)
		}
	}
}

// singularGroupCode is a synthetic code whose log table produces a group
// with a singular F_i (two identical rows sharing l = {0,1}), forcing
// the demotion path.
type singularGroupCode struct {
	h *matrix.Matrix
}

func (c *singularGroupCode) Name() string                { return "singular-group" }
func (c *singularGroupCode) Field() gf.Field             { return gf.GF8 }
func (c *singularGroupCode) NumStrips() int              { return 4 }
func (c *singularGroupCode) NumRows() int                { return 1 }
func (c *singularGroupCode) ParityCheck() *matrix.Matrix { return c.h }
func (c *singularGroupCode) ParityPositions() []int      { return []int{1, 2, 3} }

func TestGroupDemotionOnSingularF(t *testing.T) {
	// Rows 0 and 1 are proportional on the faulty columns {0,1}, so the
	// candidate group's F is singular. Row 2 breaks the tie; the decode
	// must fall back to H_rest and still succeed.
	h := matrix.FromRows(gf.GF8, [][]uint32{
		{1, 1, 1, 0},
		{2, 2, 0, 1},
		{1, 2, 1, 1},
	})
	c := &singularGroupCode{h: h}
	sc := codes.Scenario{Faulty: []int{0, 1}}

	plan, err := BuildPlan(c, sc, StrategyPPM)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Groups) != 0 {
		t.Fatalf("expected demotion to leave 0 groups, got %d", len(plan.Groups))
	}
	if plan.Rest == nil {
		t.Fatal("rest missing after demotion")
	}

	// Execute against data satisfying H*B = 0. Build a codeword by
	// scalar solving for sectors {1,2,3} given sector 0.
	st, err := stripe.New(4, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	st.FillDataRandom(99, []int{0})
	if err := decode.Encode(c, st, decode.Options{}); err != nil {
		t.Fatal(err)
	}
	want := st.Clone()
	st.Scribble(5, sc.Faulty)
	if err := Execute(plan, st, c.Field(), 2, nil); err != nil {
		t.Fatal(err)
	}
	if !st.Equal(want) {
		t.Fatal("demoted plan decoded wrongly")
	}
}

func TestStrategyStrings(t *testing.T) {
	for _, s := range []Strategy{StrategyAuto, StrategyPPM, StrategyPPMMatrixFirstRest, StrategyWholeNormal, StrategyWholeMatrixFirst, Strategy(42)} {
		if s.String() == "" {
			t.Fatalf("empty name for %d", int(s))
		}
	}
}

func TestDefaultThreads(t *testing.T) {
	if got := DefaultThreads(); got < 1 || got > 4 {
		t.Fatalf("DefaultThreads = %d", got)
	}
}

func TestDecoderGeometryMismatch(t *testing.T) {
	sd := paperSD(t)
	dec := NewDecoder(sd)
	st, err := stripe.New(5, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.Decode(st, codes.Scenario{Faulty: []int{0}}); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}

// TestPartitionSurplusRows: more rows sharing l than |l| — the surplus
// goes to H_rest and F_i stays square.
func TestPartitionSurplusRows(t *testing.T) {
	h := matrix.FromRows(gf.GF8, [][]uint32{
		{1, 1, 0},
		{1, 2, 0},
		{1, 3, 0},
		{0, 1, 1},
	})
	lt := BuildLogTable(h, []int{0, 1})
	pt := BuildPartition(lt, []int{0, 1})
	if pt.P() != 1 {
		t.Fatalf("p = %d, want 1", pt.P())
	}
	if len(pt.Groups[0].Rows) != 2 {
		t.Fatalf("group rows = %v, want first 2", pt.Groups[0].Rows)
	}
	if !reflect.DeepEqual(pt.RestRows, []int{2, 3}) {
		t.Fatalf("rest rows = %v", pt.RestRows)
	}
	if len(pt.RestFaulty) != 0 {
		t.Fatalf("rest faulty = %v, want none", pt.RestFaulty)
	}
}

// TestPartitionOverlapGoesToRest: a second group overlapping an already
// claimed column must not be extracted (no write races in Step 3).
func TestPartitionOverlapGoesToRest(t *testing.T) {
	h := matrix.FromRows(gf.GF8, [][]uint32{
		{1, 0, 1, 0}, // l = {0}
		{1, 1, 0, 1}, // l = {0,1}: overlaps claimed column 0
		{2, 3, 0, 1}, // l = {0,1}
	})
	faulty := []int{0, 1}
	lt := BuildLogTable(h, faulty)
	pt := BuildPartition(lt, faulty)
	if pt.P() != 1 || !reflect.DeepEqual(pt.Groups[0].FaultyCols, []int{0}) {
		t.Fatalf("partition = %+v", pt)
	}
	if !reflect.DeepEqual(pt.RestFaulty, []int{1}) {
		t.Fatalf("rest faulty = %v", pt.RestFaulty)
	}
	if !reflect.DeepEqual(pt.RestRows, []int{1, 2}) {
		t.Fatalf("rest rows = %v", pt.RestRows)
	}
}

// TestPartitionCases exercises the §III-C case taxonomy.
func TestPartitionCases(t *testing.T) {
	// Case 1: p = 0 — the rows touch distinct faulty sets and no set
	// gathers enough rows to form a group.
	h := matrix.FromRows(gf.GF8, [][]uint32{
		{1, 1, 0},
		{1, 0, 1},
	})
	pt := BuildPartition(BuildLogTable(h, []int{0, 1, 2}), []int{0, 1, 2})
	if pt.Case() != 1 {
		t.Fatalf("case = %d, want 1", pt.Case())
	}

	// Case 2: p = 1.
	h = matrix.FromRows(gf.GF8, [][]uint32{
		{1, 0, 1},
		{1, 1, 1},
	})
	pt = BuildPartition(BuildLogTable(h, []int{0, 1}), []int{0, 1})
	if pt.Case() != 2 {
		t.Fatalf("case = %d, want 2", pt.Case())
	}

	// Case 4: every faulty block independent and H_rest empty.
	h = matrix.FromRows(gf.GF8, [][]uint32{
		{1, 0, 1},
		{0, 1, 1},
	})
	pt = BuildPartition(BuildLogTable(h, []int{0, 1}), []int{0, 1})
	if pt.Case() != 4 {
		t.Fatalf("case = %d, want 4", pt.Case())
	}

	// Case 3.1: groups of size > 1, H_rest empty.
	h = matrix.FromRows(gf.GF8, [][]uint32{
		{1, 1, 0, 0, 1},
		{1, 2, 0, 0, 1},
		{0, 0, 1, 1, 1},
		{0, 0, 1, 2, 1},
	})
	pt = BuildPartition(BuildLogTable(h, []int{0, 1, 2, 3}), []int{0, 1, 2, 3})
	if pt.Case() != 31 {
		t.Fatalf("case = %d, want 31", pt.Case())
	}
}

// TestAutoFallsBackToWholeMatrixFirst: the paper observes that in ~5%
// of configurations (small n, large m) C2 < C4 and the optimiser should
// keep the whole matrix with the MatrixFirst sequence. The Figure 4
// grid puts SD n=6, m=3, s=3 in that region (C2/C1 = 0.57 < C4/C1 =
// 0.62); Auto must resolve to the C2 plan there.
func TestAutoFallsBackToWholeMatrixFirst(t *testing.T) {
	sd, err := codes.NewSD(6, 16, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(701))
	sc, err := sd.WorstCaseScenario(rng, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := BuildPlan(sd, sc, StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Costs.C2 >= plan.Costs.C4 {
		t.Fatalf("expected C2 < C4 at n=6 m=3 s=3, got C2=%d C4=%d", plan.Costs.C2, plan.Costs.C4)
	}
	if plan.Costs.Strategy != StrategyWholeMatrixFirst {
		t.Fatalf("Auto resolved to %v, want whole-matrix-first", plan.Costs.Strategy)
	}
	if plan.Whole == nil || len(plan.Groups) != 0 {
		t.Fatal("fallback plan should be a whole-matrix plan")
	}
	// And it must still decode correctly.
	st := encodedStripe(t, sd, 32, 702)
	want := st.Clone()
	st.Scribble(3, sc.Faulty)
	var stats kernel.Stats
	if err := Execute(plan, st, sd.Field(), 4, &stats); err != nil {
		t.Fatal(err)
	}
	if !st.Equal(want) {
		t.Fatal("fallback plan decoded wrongly")
	}
	if stats.MultXORs() != plan.Costs.C2 {
		t.Fatalf("measured %d ops, want C2 = %d", stats.MultXORs(), plan.Costs.C2)
	}
}

// TestPlanDescribe drives the Figure 3 rendering used by ppminspect.
func TestPlanDescribe(t *testing.T) {
	sd := paperSD(t)
	sc := paperScenario(t, sd)
	plan, err := BuildPlan(sd, sc, StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	out := plan.Describe(true)
	for _, want := range []string{
		"log table", "p = 3 (case 32)", "C1 (whole, normal) = 35",
		"C4 (ppm, normal rest) = 29", "<- chosen", "17.14%",
		"Hrest", "F0^-1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Describe missing %q:\n%s", want, out)
		}
	}
	// Whole-matrix plans render their own section.
	whole, err := BuildPlan(sd, sc, StrategyWholeNormal)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(whole.Describe(true), "whole-matrix decode") {
		t.Fatal("whole-matrix Describe incomplete")
	}
}

// TestLocalityLRCMultiRowGroups: the (r, δ) locality LRC exercises the
// log table's f > 1 group rule — δ-1 = 2 failures in a group are
// extracted as one independent 2x2 sub-matrix built from the group's
// two local parity rows.
func TestLocalityLRCMultiRowGroups(t *testing.T) {
	lrc, err := codes.NewLRCLocality(12, 3, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(901))
	sc, err := lrc.WorstCaseScenario(rng)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := BuildPlan(lrc, sc, StrategyPPM)
	if err != nil {
		t.Fatal(err)
	}
	// Two groups lost exactly δ-1 = 2 blocks: extracted as f = 2
	// groups; the third group (3 failures) goes to H_rest.
	multiRow := 0
	for _, g := range plan.Partition.Groups {
		if len(g.Rows) == 2 && len(g.FaultyCols) == 2 {
			multiRow++
		}
	}
	if multiRow != 2 {
		t.Fatalf("partition %s: want two f=2 groups", plan.Partition)
	}
	if len(plan.Partition.RestFaulty) != 3 {
		t.Fatalf("rest faulty = %v, want the 3-failure group", plan.Partition.RestFaulty)
	}

	// And the decode is correct end to end.
	st := encodedStripe(t, lrc, 32, 902)
	want := st.Clone()
	st.Scribble(1, sc.Faulty)
	var stats kernel.Stats
	dec := NewDecoder(lrc, WithThreads(3), WithStats(&stats))
	if err := dec.Decode(st, sc); err != nil {
		t.Fatal(err)
	}
	if !st.Equal(want) {
		t.Fatal("locality LRC decode wrong")
	}
	if stats.MultXORs() != plan.Costs.Chosen {
		t.Fatalf("ops %d != chosen %d", stats.MultXORs(), plan.Costs.Chosen)
	}
}
