package core

import (
	"bytes"
	"math/rand"
	"testing"

	"ppm/internal/codes"
	"ppm/internal/kernel"
)

// TestPartialDecodeGroupOnly: reading a block recovered by an
// independent sub-matrix runs only that sub-decode (the Figure 3
// example: reading b2 costs u(G0) = 4, not C4 = 29).
func TestPartialDecodeGroupOnly(t *testing.T) {
	sd := paperSD(t)
	sc := paperScenario(t, sd)
	st := encodedStripe(t, sd, 64, 821)
	want := st.Clone()
	st.Scribble(5, sc.Faulty)

	plan, err := BuildPlan(sd, sc, StrategyPPM)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := plan.SelectPartial([]int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.GroupIdx) != 1 || sel.NeedRest {
		t.Fatalf("selection = %+v, want one group and no rest", sel)
	}
	if sel.Ops != 4 { // G0 is 1x4 (b2 from the 3 survivors of row 0... plus)
		t.Logf("selection ops = %d", sel.Ops)
	}

	var stats kernel.Stats
	if err := ExecutePartial(plan, st, sd.Field(), 2, &stats, []int{2}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(st.Sector(2), want.Sector(2)) {
		t.Fatal("wanted sector not recovered")
	}
	// The untouched faulty sectors must still hold scribble, proving the
	// partial decode really skipped their sub-decodes.
	if bytes.Equal(st.Sector(13), want.Sector(13)) {
		t.Fatal("rest sector was decoded although not wanted")
	}
	if stats.MultXORs() != sel.Ops {
		t.Fatalf("measured %d ops, selection predicted %d", stats.MultXORs(), sel.Ops)
	}
	if stats.MultXORs() >= plan.Costs.Chosen {
		t.Fatalf("partial decode cost %d not below full C4 %d", stats.MultXORs(), plan.Costs.Chosen)
	}
}

// TestPartialDecodeRestClosure: reading a rest block pulls in every
// group feeding H_rest (in the worked example: all three groups + rest,
// i.e. the full plan).
func TestPartialDecodeRestClosure(t *testing.T) {
	sd := paperSD(t)
	sc := paperScenario(t, sd)
	plan, err := BuildPlan(sd, sc, StrategyPPM)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := plan.SelectPartial([]int{13})
	if err != nil {
		t.Fatal(err)
	}
	if !sel.NeedRest || len(sel.GroupIdx) != 3 {
		t.Fatalf("selection = %+v, want rest + all 3 groups", sel)
	}
	if sel.Ops != plan.Costs.Chosen {
		t.Fatalf("closure ops %d != C4 %d", sel.Ops, plan.Costs.Chosen)
	}

	st := encodedStripe(t, sd, 64, 822)
	want := st.Clone()
	st.Scribble(5, sc.Faulty)
	if err := ExecutePartial(plan, st, sd.Field(), 3, nil, []int{13}); err != nil {
		t.Fatal(err)
	}
	if !st.Equal(want) {
		t.Fatal("full-closure partial decode should equal full decode here")
	}
}

// TestPartialDecodeLRCDegradedRead: with one failure per local group,
// reading one lost block decodes exactly one group.
func TestPartialDecodeLRCDegradedRead(t *testing.T) {
	lrc, err := codes.NewLRC(12, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// One failure in each of the 4 groups: blocks 0, 3, 6, 9.
	sc, err := codes.NewScenario(lrc, []int{0, 3, 6, 9})
	if err != nil {
		t.Fatal(err)
	}
	st := encodedStripe(t, lrc, 64, 823)
	want := st.Clone()
	st.Scribble(5, sc.Faulty)

	var stats kernel.Stats
	dec := NewDecoder(lrc, WithStats(&stats))
	if err := dec.DecodeSectors(st, sc, []int{6}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(st.Sector(6), want.Sector(6)) {
		t.Fatal("degraded read wrong")
	}
	// Group size is 3, so the read costs exactly 3 region ops
	// (the two surviving group members plus the local parity).
	if stats.MultXORs() != 3 {
		t.Fatalf("degraded read cost %d, want 3", stats.MultXORs())
	}
	// Other groups' blocks remain scribbled.
	if bytes.Equal(st.Sector(0), want.Sector(0)) {
		t.Fatal("unrelated group was decoded")
	}
}

// TestPartialDecodeHealthyWanted: wanting a readable sector is a no-op.
func TestPartialDecodeHealthyWanted(t *testing.T) {
	sd := paperSD(t)
	sc := paperScenario(t, sd)
	plan, err := BuildPlan(sd, sc, StrategyPPM)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := plan.SelectPartial([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.GroupIdx) != 0 || sel.NeedRest || sel.Ops != 0 {
		t.Fatalf("selection for healthy sectors = %+v", sel)
	}
}

// TestPartialDecodeWholePlan: whole-matrix plans run fully.
func TestPartialDecodeWholePlan(t *testing.T) {
	sd := paperSD(t)
	sc := paperScenario(t, sd)
	plan, err := BuildPlan(sd, sc, StrategyWholeNormal)
	if err != nil {
		t.Fatal(err)
	}
	st := encodedStripe(t, sd, 64, 824)
	want := st.Clone()
	st.Scribble(5, sc.Faulty)
	if err := ExecutePartial(plan, st, sd.Field(), 2, nil, []int{2}); err != nil {
		t.Fatal(err)
	}
	if !st.Equal(want) {
		t.Fatal("whole-matrix partial decode must decode everything")
	}
}

// TestPartialDecodeRandomConsistency: for random wanted subsets, every
// wanted faulty sector is recovered correctly.
func TestPartialDecodeRandomConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(825))
	sd, err := codes.NewSD(8, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	st := encodedStripe(t, sd, 32, 826)
	want := st.Clone()
	for trial := 0; trial < 10; trial++ {
		sc, err := sd.WorstCaseScenario(rng, 1)
		if err != nil {
			t.Fatal(err)
		}
		wanted := []int{sc.Faulty[rng.Intn(len(sc.Faulty))], sc.Faulty[rng.Intn(len(sc.Faulty))]}
		work := st.Clone()
		work.Scribble(int64(trial), sc.Faulty)
		dec := NewDecoder(sd, WithThreads(3))
		if err := dec.DecodeSectors(work, sc, wanted); err != nil {
			t.Fatal(err)
		}
		for _, wIdx := range wanted {
			if !bytes.Equal(work.Sector(wIdx), want.Sector(wIdx)) {
				t.Fatalf("trial %d: wanted sector %d wrong", trial, wIdx)
			}
		}
	}
}
