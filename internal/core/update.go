package core

import (
	"fmt"
	"sync"

	"ppm/internal/codes"
	"ppm/internal/gf"
	"ppm/internal/kernel"
	"ppm/internal/stripe"
)

// Updater implements the small-write path (extension beyond the paper):
// when one data sector changes, only the parity sectors whose encoding
// equations involve it need touching. From the encode plan's generator
// G (parity = G * data, the MatrixFirst product of the encoding
// scenario), an update of data sector j is
//
//	parity_i ^= G[i][j] * (old_j XOR new_j)   for every i with G[i][j] != 0
//
// which costs one mult_XORs per nonzero of G's column j — for LRC that
// is the sector's local parity plus the g globals; for SD the m disk
// parities of its stripe row plus the s sector parities. A full
// re-encode would cost u(G).
type Updater struct {
	code   codes.Code
	field  gf.Field
	parity []int // G's row order (global sector indices)
	data   []int // G's column order (global sector indices)
	dataAt map[int]int
	// column j of G, compiled: the multipliers to apply to each parity.
	columns [][]updateTerm
}

type updateTerm struct {
	parityRow int
	mult      gf.Multiplier
}

// NewUpdater derives and compiles the generator for the code.
func NewUpdater(c codes.Code) (*Updater, error) {
	sub, err := buildWholeSubDecode(c, codes.EncodingScenario(c))
	if err != nil {
		return nil, fmt.Errorf("core: deriving generator: %w", err)
	}
	u := &Updater{
		code:   c,
		field:  c.Field(),
		parity: sub.FaultyCols,
		data:   sub.SurvivorCols,
		dataAt: make(map[int]int, len(sub.SurvivorCols)),
	}
	for j, col := range u.data {
		u.dataAt[col] = j
	}
	g := sub.G
	u.columns = make([][]updateTerm, len(u.data))
	for j := range u.data {
		for i := 0; i < g.Rows(); i++ {
			if a := g.At(i, j); a != 0 {
				u.columns[j] = append(u.columns[j], updateTerm{
					parityRow: i,
					mult:      gf.MultiplierFor(u.field, a),
				})
			}
		}
	}
	return u, nil
}

// UpdateCost returns the number of mult_XORs an update of the given
// data sector performs (the nonzero count of G's column).
func (u *Updater) UpdateCost(dataIdx int) (int, error) {
	j, ok := u.dataAt[dataIdx]
	if !ok {
		return 0, fmt.Errorf("core: sector %d is not a data sector", dataIdx)
	}
	return len(u.columns[j]), nil
}

// UpdateTerm is one parity patch of a delta update, exported for the
// symbolic plan verifier: updating data sector j by delta applies
// parity[Parity] ^= Coeff * delta.
type UpdateTerm struct {
	// Parity is the global sector index of the patched parity.
	Parity int
	// Coeff is the GF coefficient the delta is multiplied by.
	Coeff uint32
}

// DataSectors returns the data sector indices the updater accepts, in
// G's column order. The returned slice is a copy.
func (u *Updater) DataSectors() []int { return append([]int(nil), u.data...) }

// Terms returns the compiled delta-update column for the given data
// sector: the (parity sector, coefficient) pairs UpdateRange applies.
// The verifier proves H · (e_j + Σ Coeff·e_Parity) = 0 from these —
// i.e. that a delta-patched stripe stays a codeword.
func (u *Updater) Terms(dataIdx int) ([]UpdateTerm, error) {
	j, ok := u.dataAt[dataIdx]
	if !ok {
		return nil, fmt.Errorf("core: sector %d is not a data sector", dataIdx)
	}
	terms := make([]UpdateTerm, len(u.columns[j]))
	for i, t := range u.columns[j] {
		terms[i] = UpdateTerm{Parity: u.parity[t.parityRow], Coeff: t.mult.Coefficient()}
	}
	return terms, nil
}

// deltaPool recycles the old⊕new scratch region, so the repeated
// small-write path — thousands of strip overwrites against the same
// code — allocates nothing per update.
var deltaPool = sync.Pool{New: func() interface{} { return new([]byte) }}

// Update overwrites data sector dataIdx of an encoded stripe with
// newContent and patches every affected parity sector in place, leaving
// the stripe a valid codeword. newContent must have the stripe's sector
// size.
func (u *Updater) Update(st *stripe.Stripe, dataIdx int, newContent []byte, stats *kernel.Stats) error {
	return u.UpdateRange(st, dataIdx, newContent, 0, st.SectorSize(), stats)
}

// UpdateRange patches only the [lo, hi) byte sub-range of data sector
// dataIdx: newContent holds the hi-lo replacement bytes, and the same
// sub-range of every affected parity sector is delta-updated. lo and
// hi must be multiples of the field word size. Allocation-free at
// steady state (the delta scratch circulates through a pool).
func (u *Updater) UpdateRange(st *stripe.Stripe, dataIdx int, newContent []byte, lo, hi int, stats *kernel.Stats) error {
	if st.N() != u.code.NumStrips() || st.R() != u.code.NumRows() {
		return fmt.Errorf("core: stripe %dx%d does not match code %s", st.N(), st.R(), u.code.Name())
	}
	wb := u.field.WordBytes()
	if lo < 0 || hi > st.SectorSize() || lo >= hi {
		return fmt.Errorf("core: byte range [%d,%d) outside sector size %d", lo, hi, st.SectorSize())
	}
	if lo%wb != 0 || hi%wb != 0 {
		return fmt.Errorf("core: byte range [%d,%d) not aligned to the %d-byte GF word", lo, hi, wb)
	}
	if len(newContent) != hi-lo {
		return fmt.Errorf("core: new content is %d bytes, range [%d,%d) needs %d", len(newContent), lo, hi, hi-lo)
	}
	j, ok := u.dataAt[dataIdx]
	if !ok {
		return fmt.Errorf("core: sector %d is not a data sector", dataIdx)
	}

	old := st.Sector(dataIdx)[lo:hi]
	bp := deltaPool.Get().(*[]byte)
	if cap(*bp) < len(old) {
		*bp = make([]byte, len(old))
	}
	delta := (*bp)[:len(old)]
	for i := range delta {
		delta[i] = old[i] ^ newContent[i]
	}
	var ops int64
	for _, term := range u.columns[j] {
		term.mult.MultXOR(st.Sector(u.parity[term.parityRow])[lo:hi], delta)
		ops++
	}
	copy(old, newContent)
	deltaPool.Put(bp)
	stats.AddMultXORs(ops)
	return nil
}
