package core

import (
	"testing"

	"ppm/internal/kernel"
	"ppm/internal/xorplan"
)

// TestDecodeXorplanForcedReusesCompiledPrograms decodes repeated
// stripes with the XOR-program backend forced: the bytes must round
// trip, the decoder's plan cache must serve the repeats, and — because
// compiled matrices live on cached plans and xorplan memoizes by
// matrix — no new XOR programs may be compiled after the first decode.
func TestDecodeXorplanForcedReusesCompiledPrograms(t *testing.T) {
	defer kernel.SetXorplanMode(kernel.SetXorplanMode(kernel.XorplanOn))
	sd := paperSD(t)
	sc := paperScenario(t, sd)
	dec := NewDecoder(sd)

	decodeOne := func(seed int64) {
		st := encodedStripe(t, sd, 128, seed)
		want := st.Clone()
		st.Scribble(seed, sc.Faulty)
		if err := dec.Decode(st, sc); err != nil {
			t.Fatalf("decode seed %d: %v", seed, err)
		}
		if !st.Equal(want) {
			t.Fatalf("decode seed %d: wrong bytes with xorplan backend", seed)
		}
	}

	decodeOne(1)
	_, missesAfterFirst := xorplan.CacheStats()
	decodeOne(2)
	decodeOne(3)

	if hits, misses := dec.PlanCacheStats(); hits < 2 {
		t.Errorf("plan cache served %d hits / %d misses over 3 identical-pattern decodes, want >= 2 hits", hits, misses)
	}
	if _, misses := xorplan.CacheStats(); misses != missesAfterFirst {
		t.Errorf("repeat decodes recompiled XOR programs: misses %d -> %d", missesAfterFirst, misses)
	}
}
