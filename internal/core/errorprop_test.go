package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"ppm/internal/codes"
	"ppm/internal/gf"
	"ppm/internal/kernel"
	"ppm/internal/matrix"
)

// breakSub swaps the group's effective product matrix for one with
// 1+extra surplus columns — a failing stub sub-decode. Distinct `extra`
// values give distinct validation messages, so tests can assert WHICH
// group's failure won the race. Returns the expected error text.
func breakSub(field gf.Field, sub *SubDecode, extra int) string {
	var bad *matrix.Matrix
	if sub.Seq == kernel.MatrixFirst {
		bad = matrix.New(field, sub.G.Rows(), sub.G.Cols()+1+extra)
		sub.G = bad
		sub.cG = kernel.Compile(field, bad)
	} else {
		bad = matrix.New(field, sub.S.Rows(), sub.S.Cols()+1+extra)
		sub.S = bad
		sub.cS = kernel.Compile(field, bad)
	}
	return fmt.Sprintf("core: sub-decode matrix is %dx%d against %d survivors, %d faulty",
		bad.Rows(), bad.Cols(), len(sub.SurvivorCols), len(sub.FaultyCols))
}

// brokenPlan builds a valid PPM plan with at least minGroups groups,
// then sabotages the groups listed in `breaks`. Returns the expected
// error message per broken group index.
func brokenPlan(t *testing.T, minGroups int, breaks ...int) (*Plan, *codes.SD, codes.Scenario, map[int]string) {
	t.Helper()
	sd, err := codes.NewSD(8, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(901))
	for trial := 0; trial < 50; trial++ {
		sc, err := sd.WorstCaseScenario(rng, 1)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := BuildPlan(sd, sc, StrategyPPM)
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.Groups) < minGroups {
			continue
		}
		msgs := make(map[int]string, len(breaks))
		for k, g := range breaks {
			msgs[g] = breakSub(sd.Field(), &plan.Groups[g], k)
		}
		return plan, sd, sc, msgs
	}
	t.Fatalf("no scenario with >= %d groups found", minGroups)
	return nil, nil, codes.Scenario{}, nil
}

// TestExecuteSerialPropagatesStubError: the serial group loop stops at
// the first failing sub-decode.
func TestExecuteSerialPropagatesStubError(t *testing.T) {
	plan, sd, sc, msgs := brokenPlan(t, 3, 1)
	st := encodedStripe(t, sd, 64, 902)
	st.Scribble(1, sc.Faulty)
	err := Execute(plan, st, sd.Field(), 1, nil)
	if err == nil || err.Error() != msgs[1] {
		t.Fatalf("got %v, want %q", err, msgs[1])
	}
}

// TestExecuteParallelPropagatesLowestGroupError: with several groups
// failing on concurrent workers, the lowest group index's error is
// returned — deterministically, every run.
func TestExecuteParallelPropagatesLowestGroupError(t *testing.T) {
	plan, sd, sc, msgs := brokenPlan(t, 4, 3, 1)
	st := encodedStripe(t, sd, 64, 903)
	for trial := 0; trial < 20; trial++ {
		damaged := st.Clone()
		damaged.Scribble(int64(trial), sc.Faulty)
		err := Execute(plan, damaged, sd.Field(), 4, nil)
		if err == nil || err.Error() != msgs[1] {
			t.Fatalf("trial %d: got %v, want group 1's error %q", trial, err, msgs[1])
		}
	}
}

// TestHybridStridePropagatesLowestGroupError is the regression test for
// the `_ = runSubDecode(...)` bug: the hybrid stride loop
// (len(Groups) >= t) used to discard sub-decode errors entirely.
func TestHybridStridePropagatesLowestGroupError(t *testing.T) {
	plan, sd, sc, msgs := brokenPlan(t, 4, 2, 3)
	st := encodedStripe(t, sd, 64, 904)
	for trial := 0; trial < 20; trial++ {
		damaged := st.Clone()
		damaged.Scribble(int64(trial), sc.Faulty)
		// t=2 <= len(Groups) drives the stride branch.
		err := ExecuteHybrid(plan, damaged, sd.Field(), 2, nil)
		if err == nil || err.Error() != msgs[2] {
			t.Fatalf("trial %d: got %v, want group 2's error %q", trial, err, msgs[2])
		}
	}
}

// TestHybridSurplusSharePropagatesError is the regression test for the
// second discarded error site: the surplus-share branch (fewer groups
// than workers) used to drop chunked sub-decode failures.
func TestHybridSurplusSharePropagatesError(t *testing.T) {
	plan, sd, sc, msgs := brokenPlan(t, 2, 1)
	plan.Groups = plan.Groups[:2] // force 1 < p < T
	plan.Rest = nil
	st := encodedStripe(t, sd, 64, 905)
	st.Scribble(1, sc.Faulty)
	err := ExecuteHybrid(plan, st, sd.Field(), 8, nil)
	if err == nil || err.Error() != msgs[1] {
		t.Fatalf("got %v, want group 1's error %q", err, msgs[1])
	}
}

// TestHybridChunkedPropagatesError: a failing single-group plan (the
// byte-range-chunked path) reports the error from its chunks.
func TestHybridChunkedPropagatesError(t *testing.T) {
	plan, sd, sc, msgs := brokenPlan(t, 1, 0)
	plan.Groups = plan.Groups[:1]
	plan.Rest = nil
	st := encodedStripe(t, sd, 64, 906)
	st.Scribble(1, sc.Faulty)
	err := ExecuteHybrid(plan, st, sd.Field(), 4, nil)
	if err == nil || err.Error() != msgs[0] {
		t.Fatalf("got %v, want %q", err, msgs[0])
	}
}

// TestExecuteOutOfRangeColumnsBecomeErrors: a sub-decode whose column
// list exceeds the stripe surfaces as an error, not a panic.
func TestExecuteOutOfRangeColumnsBecomeErrors(t *testing.T) {
	plan, sd, sc, _ := brokenPlan(t, 2)
	st := encodedStripe(t, sd, 64, 907)
	st.Scribble(1, sc.Faulty)
	plan.Groups[0].FaultyCols = append([]int(nil), plan.Groups[0].FaultyCols...)
	plan.Groups[0].FaultyCols[0] = st.TotalSectors() + 5
	if err := Execute(plan, st, sd.Field(), 4, nil); err == nil ||
		!strings.Contains(err.Error(), "core: execute failed") {
		t.Fatalf("out-of-range columns not surfaced: %v", err)
	}
	if err := ExecuteHybrid(plan, st, sd.Field(), 2, nil); err == nil {
		t.Fatal("hybrid: out-of-range columns not surfaced")
	}
}

// TestStatsUntouchedOnFailedChunkedDecode: the chunked runner must not
// credit mult_XORs for a sub-decode that failed.
func TestStatsUntouchedOnFailedChunkedDecode(t *testing.T) {
	plan, sd, sc, _ := brokenPlan(t, 1, 0)
	plan.Groups = plan.Groups[:1]
	plan.Rest = nil
	st := encodedStripe(t, sd, 64, 908)
	st.Scribble(1, sc.Faulty)
	var stats kernel.Stats
	if err := ExecuteHybrid(plan, st, sd.Field(), 4, &stats); err == nil {
		t.Fatal("expected error")
	}
	if got := stats.MultXORs(); got != 0 {
		t.Fatalf("failed chunked decode credited %d mult_XORs", got)
	}
}
