package core

import (
	"fmt"

	"ppm/internal/codes"
	"ppm/internal/kernel"
	"ppm/internal/stripe"
)

// Decoder binds a code instance to PPM execution options. A Decoder is
// safe for concurrent use by multiple goroutines on distinct stripes:
// the plan cache is mutex-guarded, cached plans are immutable, and the
// executors draw their per-decode scratch state from pools.
type Decoder struct {
	code     codes.Code
	threads  int
	strategy Strategy
	stats    *kernel.Stats
	hybrid   bool
	backend  Backend
	cacheCap int
	cache    *planCache
	partials *partialCache
}

// Option configures a Decoder.
type Option func(*Decoder)

// WithThreads sets the worker count T for the parallel phase.
// t <= 0 selects the paper's default min(4, cores).
func WithThreads(t int) Option {
	return func(d *Decoder) { d.threads = t }
}

// WithStrategy overrides the planning strategy (default StrategyPPM).
func WithStrategy(s Strategy) Option {
	return func(d *Decoder) { d.strategy = s }
}

// WithStats attaches an operation counter shared across decodes.
func WithStats(s *kernel.Stats) Option {
	return func(d *Decoder) { d.stats = s }
}

// WithHybrid enables the hybrid executor (extension beyond the paper):
// serial phases — H_rest, whole-matrix fallbacks, single-group plans —
// are byte-range-chunked across the worker budget, so cases 1 and 2 of
// §III-C still use every core. Recovered bytes and operation counts are
// identical to the standard executor's.
func WithHybrid(enabled bool) Option {
	return func(d *Decoder) { d.hybrid = enabled }
}

// WithPlanCache bounds the Decoder's built-in plan cache: Decode keeps
// up to capacity built plans, keyed by failure pattern + strategy, so
// repeated decodes of the same pattern (a whole-disk rebuild decodes
// thousands of stripes that failed identically) skip planning entirely
// and run at DecodeWithPlan speed. capacity <= 0 disables the cache
// and restores plan-per-call behaviour. The default is
// DefaultPlanCacheSize.
func WithPlanCache(capacity int) Option {
	return func(d *Decoder) { d.cacheCap = capacity }
}

// NewDecoder builds a PPM decoder for the code. The plan cache is on
// by default (see WithPlanCache).
func NewDecoder(c codes.Code, opts ...Option) *Decoder {
	d := &Decoder{code: c, strategy: StrategyPPM, cacheCap: DefaultPlanCacheSize}
	for _, o := range opts {
		o(d)
	}
	if d.cacheCap > 0 {
		d.cache = newPlanCache(d.cacheCap)
		d.partials = newPartialCache(d.cacheCap)
	}
	return d
}

// Code returns the bound code instance.
func (d *Decoder) Code() codes.Code { return d.code }

// Plan prepares (and returns) the decode plan for a scenario without
// touching any data, for inspection or reuse across stripes.
func (d *Decoder) Plan(sc codes.Scenario) (*Plan, error) {
	return BuildPlan(d.code, sc, d.strategy)
}

// Decode recovers the scenario's faulty sectors of st in place: plan,
// parallel phase, merge phase. With the plan cache enabled (the
// default) the plan is built once per distinct failure pattern and
// every later Decode of that pattern runs at DecodeWithPlan speed.
func (d *Decoder) Decode(st *stripe.Stripe, sc codes.Scenario) error {
	if err := d.checkGeometry(st); err != nil {
		return err
	}
	plan, err := d.planFor(sc)
	if err != nil {
		return err
	}
	return d.execute(plan, st)
}

// planFor returns the plan for the scenario, consulting the cache when
// enabled. Concurrent first-decodes of the same pattern may build the
// plan more than once; plans are idempotent, so the duplicates are
// merely discarded.
func (d *Decoder) planFor(sc codes.Scenario) (*Plan, error) {
	if d.cache == nil {
		return BuildPlan(d.code, sc, d.strategy)
	}
	var arr [96]byte
	key := planKey(arr[:0], sc, d.strategy)
	if plan := d.cache.get(key); plan != nil {
		return plan, nil
	}
	plan, err := BuildPlan(d.code, sc, d.strategy)
	if err != nil {
		return nil, err
	}
	d.cache.put(key, plan)
	return plan, nil
}

// PlanCacheStats reports the plan cache's hit and miss counters since
// the Decoder was built (both zero when the cache is disabled). Misses
// equal the number of plans Decode built.
func (d *Decoder) PlanCacheStats() (hits, misses int64) {
	if d.cache == nil {
		return 0, 0
	}
	return d.cache.stats()
}

// DecodeWithPlan runs a previously built plan against a stripe —
// the repeated-decode fast path (one stripe after another fails the
// same way when a whole disk dies).
func (d *Decoder) DecodeWithPlan(plan *Plan, st *stripe.Stripe) error {
	if err := d.checkGeometry(st); err != nil {
		return err
	}
	return d.execute(plan, st)
}

// execute dispatches to the configured executor.
func (d *Decoder) execute(plan *Plan, st *stripe.Stripe) error {
	if d.backend == BackendBitMatrix {
		return executeBitMatrix(d, plan, st)
	}
	if d.hybrid {
		return ExecuteHybrid(plan, st, d.code.Field(), d.threads, d.stats)
	}
	return Execute(plan, st, d.code.Field(), d.threads, d.stats)
}

// Encode computes all parity sectors from the data sectors, as the
// decode special case whose erasures are the parity positions. For SD
// codes this parallelises over the stripe rows that hold no coding
// sector (p = r - z rows, §IV).
func (d *Decoder) Encode(st *stripe.Stripe) error {
	return d.Decode(st, codes.EncodingScenario(d.code))
}

func (d *Decoder) checkGeometry(st *stripe.Stripe) error {
	if st.N() != d.code.NumStrips() || st.R() != d.code.NumRows() {
		return fmt.Errorf("core: stripe %dx%d does not match code %s (%dx%d)",
			st.N(), st.R(), d.code.Name(), d.code.NumStrips(), d.code.NumRows())
	}
	if st.SectorSize()%d.code.Field().WordBytes() != 0 {
		return fmt.Errorf("core: sector size %d not a multiple of GF(2^%d) words",
			st.SectorSize(), d.code.Field().W())
	}
	return nil
}
