package core

import (
	"errors"
	"fmt"

	"ppm/internal/codes"
	"ppm/internal/gf"
	"ppm/internal/kernel"
	"ppm/internal/matrix"
)

// Strategy selects how a decode is planned.
type Strategy int

const (
	// StrategyAuto performs the paper's full §III-B optimisation: it
	// evaluates the exact costs C1..C4 and picks whole-matrix
	// MatrixFirst when C2 < C4 (the ~5% of configurations where the
	// partition does not pay off) and PPM otherwise.
	StrategyAuto Strategy = iota
	// StrategyPPM always partitions: independent groups with the
	// MatrixFirst sequence, H_rest with Normal — the C4 plan. This is
	// the production fast path: it never inverts the whole F matrix.
	StrategyPPM
	// StrategyPPMMatrixFirstRest is the C3 plan (groups and H_rest both
	// MatrixFirst); the paper shows it is never optimal, and it exists
	// here for the ablation benchmarks.
	StrategyPPMMatrixFirstRest
	// StrategyWholeNormal is the traditional serial decode with the
	// Normal sequence — the C1 baseline.
	StrategyWholeNormal
	// StrategyWholeMatrixFirst is the traditional decode with the
	// MatrixFirst sequence — the C2 generator-matrix method.
	StrategyWholeMatrixFirst
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategyPPM:
		return "ppm"
	case StrategyPPMMatrixFirstRest:
		return "ppm-c3"
	case StrategyWholeNormal:
		return "whole-normal"
	case StrategyWholeMatrixFirst:
		return "whole-matrix-first"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// CostUnknown marks a cost that the chosen strategy did not need to
// evaluate (computing C1/C2 requires inverting the whole F matrix, which
// the PPM fast path deliberately avoids).
const CostUnknown = -1

// Costs is the §III-B cost model for one scenario, in mult_XORs per
// stripe. Chosen is the predicted cost of the plan actually built; the
// executor's measured operation count must equal it (tested).
type Costs struct {
	C1, C2, C3, C4 int64
	Chosen         int64
	Strategy       Strategy
}

// SubDecode is one matrix-decoding operation of a plan: recover the
// FaultyCols blocks from the SurvivorCols blocks. Depending on Seq the
// executor applies G (MatrixFirst) or S then Finv (Normal).
type SubDecode struct {
	FaultyCols   []int
	SurvivorCols []int
	Finv         *matrix.Matrix
	S            *matrix.Matrix
	G            *matrix.Matrix
	Seq          kernel.Sequence

	// Compiled forms of the matrices the chosen sequence uses, lowered
	// once at plan time so repeated decodes skip per-call lookup-table
	// construction (see kernel.CompiledMatrix).
	cFinv, cS, cG *kernel.CompiledMatrix
}

// compile lowers the matrices the chosen sequence will apply.
func (sd *SubDecode) compile(f gf.Field) {
	if sd.Seq == kernel.MatrixFirst {
		sd.cG = kernel.Compile(f, sd.G)
		return
	}
	sd.cFinv = kernel.Compile(f, sd.Finv)
	sd.cS = kernel.Compile(f, sd.S)
}

// ops returns the predicted mult_XORs of executing this sub-decode.
func (sd *SubDecode) ops() int64 {
	if sd == nil {
		return 0
	}
	if sd.Seq == kernel.MatrixFirst {
		return int64(sd.G.NNZ())
	}
	return int64(sd.Finv.NNZ() + sd.S.NNZ())
}

// Plan is a fully prepared decode: all sub-matrices extracted, inverted
// and (for MatrixFirst) pre-multiplied. Executing a plan touches only
// block regions.
type Plan struct {
	Scenario  codes.Scenario
	LogTable  *LogTable
	Partition *Partition
	// Groups are the p parallel sub-decodes (Step 3); empty for
	// whole-matrix strategies.
	Groups []SubDecode
	// Rest is the merging sub-decode (Step 4); nil when H_rest is NULL
	// or a whole-matrix strategy is used.
	Rest *SubDecode
	// Whole is the single serial sub-decode of the traditional method;
	// nil for PPM strategies.
	Whole *WholePlan
	Costs Costs
}

// WholePlan wraps the whole-matrix sub-decode so that a nil check
// distinguishes "traditional plan" from "PPM plan".
type WholePlan struct {
	SubDecode
}

// ErrUnrecoverable reports a failure pattern beyond the code's reach.
var ErrUnrecoverable = errors.New("core: failure pattern is unrecoverable")

// BuildPlan runs PPM Steps 1-2 plus the sequence optimisation and
// returns an executable plan. The scenario's faulty list must be sorted
// (codes.NewScenario and the generators guarantee this).
func BuildPlan(c codes.Code, sc codes.Scenario, strategy Strategy) (*Plan, error) {
	h := c.ParityCheck()
	plan := &Plan{Scenario: sc}
	plan.Costs = Costs{C1: CostUnknown, C2: CostUnknown, C3: CostUnknown, C4: CostUnknown}

	if len(sc.Faulty) == 0 {
		plan.Costs.Strategy = strategy
		plan.Costs.Chosen = 0
		return plan, nil
	}
	if len(sc.Faulty) > h.Rows() {
		return nil, fmt.Errorf("%w: %d erasures, %d parity-check rows", ErrUnrecoverable, len(sc.Faulty), h.Rows())
	}

	needWhole := strategy == StrategyAuto || strategy == StrategyWholeNormal || strategy == StrategyWholeMatrixFirst
	var whole *SubDecode
	if needWhole {
		var err error
		whole, err = buildWholeSubDecode(c, sc)
		if err != nil {
			return nil, err
		}
		plan.Costs.C1 = int64(whole.Finv.NNZ() + whole.S.NNZ())
		plan.Costs.C2 = int64(whole.G.NNZ())
	}

	needPPM := strategy != StrategyWholeNormal && strategy != StrategyWholeMatrixFirst
	if needPPM {
		if err := buildPPMSubDecodes(c, sc, plan); err != nil {
			return nil, err
		}
		groupOps := int64(0)
		for i := range plan.Groups {
			groupOps += plan.Groups[i].ops()
		}
		restC3, restC4 := int64(0), int64(0)
		if plan.Rest != nil {
			restC3 = int64(plan.Rest.G.NNZ())
			restC4 = int64(plan.Rest.Finv.NNZ() + plan.Rest.S.NNZ())
		}
		plan.Costs.C3 = groupOps + restC3
		plan.Costs.C4 = groupOps + restC4
	}

	// Resolve the strategy.
	resolved := strategy
	if strategy == StrategyAuto {
		if plan.Costs.C2 < plan.Costs.C4 {
			resolved = StrategyWholeMatrixFirst
		} else {
			resolved = StrategyPPM
		}
	}
	plan.Costs.Strategy = resolved

	switch resolved {
	case StrategyPPM:
		if plan.Rest != nil {
			plan.Rest.Seq = kernel.Normal
		}
		plan.Costs.Chosen = plan.Costs.C4
	case StrategyPPMMatrixFirstRest:
		if plan.Rest != nil {
			plan.Rest.Seq = kernel.MatrixFirst
		}
		plan.Costs.Chosen = plan.Costs.C3
	case StrategyWholeNormal:
		whole.Seq = kernel.Normal
		plan.Whole = &WholePlan{SubDecode: *whole}
		plan.Groups, plan.Rest, plan.Partition, plan.LogTable = nil, nil, nil, nil
		plan.Costs.Chosen = plan.Costs.C1
	case StrategyWholeMatrixFirst:
		whole.Seq = kernel.MatrixFirst
		plan.Whole = &WholePlan{SubDecode: *whole}
		plan.Groups, plan.Rest, plan.Partition, plan.LogTable = nil, nil, nil, nil
		plan.Costs.Chosen = plan.Costs.C2
	default:
		return nil, fmt.Errorf("core: unknown strategy %v", strategy)
	}

	// Lower the plan's matrices into compiled multiplier form.
	f := c.Field()
	for i := range plan.Groups {
		plan.Groups[i].compile(f)
	}
	if plan.Rest != nil {
		plan.Rest.compile(f)
	}
	if plan.Whole != nil {
		plan.Whole.compile(f)
	}
	return plan, nil
}

// buildWholeSubDecode prepares the traditional Steps 2-3 on the full H.
func buildWholeSubDecode(c codes.Code, sc codes.Scenario) (*SubDecode, error) {
	h := c.ParityCheck()
	faulty := sc.FaultySet()
	fM, sM, fCols, sCols := h.SplitColumns(func(col int) bool { return faulty[col] })
	if fM.Rows() > fM.Cols() {
		rows, err := fM.PivotRows()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrUnrecoverable, err)
		}
		fM = fM.SelectRows(rows)
		sM = sM.SelectRows(rows)
	}
	finv, err := fM.Invert()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnrecoverable, err)
	}
	return &SubDecode{
		FaultyCols:   fCols,
		SurvivorCols: sCols,
		Finv:         finv,
		S:            sM,
		G:            finv.Mul(sM),
	}, nil
}

// buildPPMSubDecodes performs Steps 1-2 (log table, partition) and
// prepares each group's and H_rest's matrices (Steps 3.1-3.2). A group
// whose F_i is singular is demoted into H_rest rather than failing the
// decode.
func buildPPMSubDecodes(c codes.Code, sc codes.Scenario, plan *Plan) error {
	h := c.ParityCheck()
	plan.LogTable = BuildLogTable(h, sc.Faulty)
	plan.Partition = BuildPartition(plan.LogTable, sc.Faulty)

	for i := 0; i < len(plan.Partition.Groups); {
		g := plan.Partition.Groups[i]
		sub, err := buildGroupSubDecode(h, g)
		if err != nil {
			plan.Partition.demote(i)
			plan.Groups = plan.Groups[:0]
			i = 0 // restart: demotion changed H_rest and group indices
			continue
		}
		plan.Groups = append(plan.Groups, *sub)
		i++
	}

	if len(plan.Partition.RestFaulty) > 0 {
		rest, err := buildRestSubDecode(h, plan.Partition)
		if err != nil {
			return err
		}
		plan.Rest = rest
	}
	return nil
}

// buildGroupSubDecode prepares one independent sub-matrix H_i: F_i from
// the group's faulty columns, S_i from its surviving nonzero columns,
// MatrixFirst product G_i = F_i^-1 * S_i (the paper proves MatrixFirst
// is always cheaper for groups, since every F_i/S_i entry is nonzero).
func buildGroupSubDecode(h *matrix.Matrix, g Group) (*SubDecode, error) {
	sub := h.SelectRows(g.Rows)
	faulty := make(map[int]bool, len(g.FaultyCols))
	for _, col := range g.FaultyCols {
		faulty[col] = true
	}
	var survivors []int
	for _, col := range sub.NonzeroColumns() {
		if !faulty[col] {
			survivors = append(survivors, col)
		}
	}
	fM := sub.SelectColumns(g.FaultyCols)
	sM := sub.SelectColumns(survivors)
	finv, err := fM.Invert()
	if err != nil {
		return nil, err
	}
	return &SubDecode{
		FaultyCols:   g.FaultyCols,
		SurvivorCols: survivors,
		Finv:         finv,
		S:            sM,
		G:            finv.Mul(sM),
		Seq:          kernel.MatrixFirst,
	}, nil
}

// buildRestSubDecode prepares H_rest (Step 4): F_rest over the still-
// missing blocks, S_rest over every other nonzero column — including the
// blocks the groups recover in Step 3, which are survivors by the time
// the merge runs.
func buildRestSubDecode(h *matrix.Matrix, pt *Partition) (*SubDecode, error) {
	sub := h.SelectRows(pt.RestRows)
	faulty := make(map[int]bool, len(pt.RestFaulty))
	for _, col := range pt.RestFaulty {
		faulty[col] = true
	}
	fM := sub.SelectColumns(pt.RestFaulty)
	if fM.Rows() < fM.Cols() {
		return nil, fmt.Errorf("%w: H_rest has %d equations for %d unknowns", ErrUnrecoverable, fM.Rows(), fM.Cols())
	}
	rowSel := make([]int, sub.Rows())
	for i := range rowSel {
		rowSel[i] = i
	}
	if fM.Rows() > fM.Cols() {
		rows, err := fM.PivotRows()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrUnrecoverable, err)
		}
		rowSel = rows
		fM = fM.SelectRows(rows)
	}
	reduced := sub.SelectRows(rowSel)
	var survivors []int
	for _, col := range reduced.NonzeroColumns() {
		if !faulty[col] {
			survivors = append(survivors, col)
		}
	}
	sM := reduced.SelectColumns(survivors)
	finv, err := fM.Invert()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnrecoverable, err)
	}
	return &SubDecode{
		FaultyCols:   pt.RestFaulty,
		SurvivorCols: survivors,
		Finv:         finv,
		S:            sM,
		G:            finv.Mul(sM),
		Seq:          kernel.Normal,
	}, nil
}
