// Package core implements the paper's contribution: the Partitioned and
// Parallel Matrix (PPM) algorithm. A decode is planned in three steps —
// build the log table (§III-A), partition H into p independent
// sub-matrices plus a remaining sub-matrix, and choose the calculation
// sequence with the lowest computational cost (§III-B) — and executed by
// decoding the independent sub-matrices on T worker goroutines before
// merging the recovered blocks into the remaining decode (§III-C/D).
package core

import (
	"fmt"
	"strings"

	"ppm/internal/matrix"
)

// LogRow is one row (i, t_i, l_i) of the log table: for row i of H,
// T counts the nonzero coefficients that fall in faulty columns and L
// lists those column indices in ascending order.
type LogRow struct {
	Row int
	T   int
	L   []int
}

// LogTable is the §III-A data structure driving the partition. It has
// one entry per row of H.
type LogTable struct {
	Rows []LogRow
}

// BuildLogTable scans H against the faulty column set. faulty must be
// sorted ascending (codes.Scenario guarantees it).
func BuildLogTable(h *matrix.Matrix, faulty []int) *LogTable {
	lt := &LogTable{Rows: make([]LogRow, h.Rows())}
	for i := 0; i < h.Rows(); i++ {
		row := h.Row(i)
		lr := LogRow{Row: i}
		for _, col := range faulty {
			if row[col] != 0 {
				lr.L = append(lr.L, col)
			}
		}
		lr.T = len(lr.L)
		lt.Rows[i] = lr
	}
	return lt
}

// key renders l_i as a map key for grouping rows with identical lists.
func (lr LogRow) key() string {
	parts := make([]string, len(lr.L))
	for i, c := range lr.L {
		parts[i] = fmt.Sprintf("%d", c)
	}
	return strings.Join(parts, ",")
}

// String renders the table the way Figure 3 prints it.
func (lt *LogTable) String() string {
	var b strings.Builder
	b.WriteString("i   ti  li\n")
	for _, lr := range lt.Rows {
		fmt.Fprintf(&b, "%-3d %-3d (%s)\n", lr.Row, lr.T, lr.key())
	}
	return b.String()
}
