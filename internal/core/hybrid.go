package core

import (
	"fmt"

	"ppm/internal/gf"
	"ppm/internal/kernel"
	"ppm/internal/stripe"
)

// Hybrid execution (extension beyond the paper). PPM's weakness is its
// serial tail: when p <= 1 (§III-C cases 1-2) or when H_rest dominates,
// workers idle while one matrix decode runs. The hybrid executor keeps
// the paper's matrix-oriented partition for the parallel phase and adds
// the related-work byte-range splitting to every *serial* sub-decode
// (H_rest, the whole-matrix fallback, and single-group plans), so a
// multi-core host is busy in both phases. Costs are unchanged — the
// same mult_XORs are performed, just spread across workers — and the
// stats contract still counts one operation per nonzero coefficient.

// runSubDecodeChunked runs one sub-decode with its byte range split
// over `workers` chunks on the persistent pool. workers <= 1 falls back
// to the serial run. A failing chunk aborts with that chunk's error
// (lowest chunk index wins) and leaves the operation count untouched.
func runSubDecodeChunked(sd *SubDecode, st *stripe.Stripe, field gf.Field, workers int, stats *kernel.Stats) (err error) {
	if workers <= 1 {
		return runSubDecode(sd, st, field, stats)
	}
	// Tile-aligned chunk boundaries (when the range is large enough)
	// keep the byte-range split composed with the kernel's cache
	// blocking instead of shearing tiles across workers.
	chunks := kernel.ChunkRangesAligned(st.SectorSize(), workers, field.WordBytes())
	if len(chunks) <= 1 {
		return runSubDecode(sd, st, field, stats)
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: sub-decode failed: %v", r)
		}
	}()
	out := st.Sectors(sd.FaultyCols)
	in := st.Sectors(sd.SurvivorCols)
	err = kernel.DefaultWorkers().Run(len(chunks), func(i int) error {
		ch := chunks[i]
		// Per-chunk stats are discarded; the logical operation count
		// is added once below.
		return applySubDecodeRange(sd, field, in, out, ch[0], ch[1], nil)
	})
	if err != nil {
		return err
	}
	stats.AddMultXORs(sd.ops())
	return nil
}

// ExecuteHybrid runs a plan with the hybrid policy: parallel groups as
// in Execute, serial phases chunked over the worker budget. Like
// Execute, a failing sub-decode is reported, not dropped: the error
// from the lowest-indexed failing group wins, then the remaining
// decode's.
func ExecuteHybrid(p *Plan, st *stripe.Stripe, field gf.Field, threads int, stats *kernel.Stats) error {
	if p == nil {
		return fmt.Errorf("core: nil plan")
	}
	t := threads
	if t <= 0 {
		t = DefaultThreads()
	}
	if p.Whole != nil {
		return runSubDecodeChunked(&p.Whole.SubDecode, st, field, t, stats)
	}
	if len(p.Groups) == 0 && p.Rest == nil {
		return nil
	}

	switch {
	case len(p.Groups) == 0:
		// Case 1: only the remaining decode; chunk it below.
	case len(p.Groups) == 1:
		// Case 2: one group; chunk it instead of running it alone.
		if err := runSubDecodeChunked(&p.Groups[0], st, field, t, stats); err != nil {
			return err
		}
	case len(p.Groups) >= t:
		// Enough groups to keep every worker on whole sub-decodes.
		// Each group's outcome lands in its own slot so the error from
		// the lowest group index is returned deterministically.
		errs := make([]error, len(p.Groups))
		poolErr := kernel.DefaultWorkers().Run(t, func(w int) error {
			for g := w; g < len(p.Groups); g += t {
				if err := runSubDecode(&p.Groups[g], st, field, stats); err != nil {
					errs[g] = err
					return err
				}
			}
			return nil
		})
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		if poolErr != nil {
			return poolErr
		}
	default:
		// Fewer groups than workers: give each group a slice of the
		// surplus and chunk its byte range across that share.
		share := t / len(p.Groups)
		extra := t % len(p.Groups)
		errs := make([]error, len(p.Groups))
		poolErr := kernel.DefaultWorkers().Run(len(p.Groups), func(g int) error {
			workers := share
			if g < extra {
				workers++
			}
			if err := runSubDecodeChunked(&p.Groups[g], st, field, workers, stats); err != nil {
				errs[g] = err
				return err
			}
			return nil
		})
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		if poolErr != nil {
			return poolErr
		}
	}

	if p.Rest != nil {
		return runSubDecodeChunked(p.Rest, st, field, t, stats)
	}
	return nil
}
