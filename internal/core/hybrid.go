package core

import (
	"fmt"
	"sync"

	"ppm/internal/gf"
	"ppm/internal/kernel"
	"ppm/internal/stripe"
)

// Hybrid execution (extension beyond the paper). PPM's weakness is its
// serial tail: when p <= 1 (§III-C cases 1-2) or when H_rest dominates,
// workers idle while one matrix decode runs. The hybrid executor keeps
// the paper's matrix-oriented partition for the parallel phase and adds
// the related-work byte-range splitting to every *serial* sub-decode
// (H_rest, the whole-matrix fallback, and single-group plans), so a
// multi-core host is busy in both phases. Costs are unchanged — the
// same mult_XORs are performed, just spread across workers — and the
// stats contract still counts one operation per nonzero coefficient.

// runSubDecodeChunked runs one sub-decode with its byte range split
// over `workers` goroutines. workers <= 1 falls back to the serial run.
func runSubDecodeChunked(sd *SubDecode, st *stripe.Stripe, field gf.Field, workers int, stats *kernel.Stats) error {
	if workers <= 1 {
		return runSubDecode(sd, st, field, stats)
	}
	out := st.Sectors(sd.FaultyCols)
	in := st.Sectors(sd.SurvivorCols)
	chunks := kernel.ChunkRanges(st.SectorSize(), workers, field.WordBytes())
	if len(chunks) <= 1 {
		return runSubDecode(sd, st, field, stats)
	}
	var wg sync.WaitGroup
	for _, ch := range chunks {
		ch := ch
		wg.Add(1)
		go func() {
			defer wg.Done()
			cin := kernel.SliceRegions(in, ch[0], ch[1])
			cout := kernel.SliceRegions(out, ch[0], ch[1])
			// Per-chunk stats are discarded; the logical operation count
			// is added once below.
			if sd.cG != nil || sd.cFinv != nil {
				kernel.CompiledProduct(sd.cFinv, sd.cS, sd.cG, cin, cout, nil, sd.Seq, nil)
			} else {
				kernel.Product(field, sd.Finv, sd.S, cin, cout, nil, sd.Seq, nil)
			}
		}()
	}
	wg.Wait()
	stats.AddMultXORs(sd.ops())
	return nil
}

// ExecuteHybrid runs a plan with the hybrid policy: parallel groups as
// in Execute, serial phases chunked over the worker budget.
func ExecuteHybrid(p *Plan, st *stripe.Stripe, field gf.Field, threads int, stats *kernel.Stats) error {
	if p == nil {
		return fmt.Errorf("core: nil plan")
	}
	t := threads
	if t <= 0 {
		t = DefaultThreads()
	}
	if p.Whole != nil {
		return runSubDecodeChunked(&p.Whole.SubDecode, st, field, t, stats)
	}
	if len(p.Groups) == 0 && p.Rest == nil {
		return nil
	}

	switch {
	case len(p.Groups) == 0:
		// Case 1: only the remaining decode; chunk it below.
	case len(p.Groups) == 1:
		// Case 2: one group; chunk it instead of running it alone.
		if err := runSubDecodeChunked(&p.Groups[0], st, field, t, stats); err != nil {
			return err
		}
	case len(p.Groups) >= t:
		// Enough groups to keep every worker on whole sub-decodes.
		var wg sync.WaitGroup
		for w := 0; w < t; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for g := w; g < len(p.Groups); g += t {
					_ = runSubDecode(&p.Groups[g], st, field, stats)
				}
			}(w)
		}
		wg.Wait()
	default:
		// Fewer groups than workers: give each group a slice of the
		// surplus and chunk its byte range across that share.
		share := t / len(p.Groups)
		extra := t % len(p.Groups)
		var wg sync.WaitGroup
		for g := range p.Groups {
			g := g
			workers := share
			if g < extra {
				workers++
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				_ = runSubDecodeChunked(&p.Groups[g], st, field, workers, stats)
			}()
		}
		wg.Wait()
	}

	if p.Rest != nil {
		return runSubDecodeChunked(p.Rest, st, field, t, stats)
	}
	return nil
}
