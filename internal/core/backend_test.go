package core

import (
	"math/rand"
	"testing"

	"ppm/internal/codes"
	"ppm/internal/kernel"
	"ppm/internal/stripe"
)

// TestBitMatrixBackendRoundTrip: encode and decode entirely on the
// XOR-schedule backend; data must survive the full worst case, for both
// GF(2^8) and GF(2^16) instances.
func TestBitMatrixBackendRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(831))
	for _, geometry := range []struct{ n, r, m, s int }{
		{6, 6, 2, 2},   // GF(2^8)
		{16, 16, 2, 1}, // GF(2^16)
	} {
		sd, err := codes.NewSD(geometry.n, geometry.r, geometry.m, geometry.s)
		if err != nil {
			t.Fatal(err)
		}
		// Sector size divisible by every supported w.
		st, err := stripe.New(geometry.n, geometry.r, 64)
		if err != nil {
			t.Fatal(err)
		}
		st.FillDataRandom(1, codes.DataPositions(sd))

		dec := NewDecoder(sd, WithBackend(BackendBitMatrix), WithThreads(3))
		if err := dec.Encode(st); err != nil {
			t.Fatal(err)
		}
		pristine := st.Clone()

		sc, err := sd.WorstCaseScenario(rng, 1)
		if err != nil {
			t.Fatal(err)
		}
		st.Scribble(2, sc.Faulty)
		var stats kernel.Stats
		dec = NewDecoder(sd, WithBackend(BackendBitMatrix), WithThreads(3), WithStats(&stats))
		if err := dec.Decode(st, sc); err != nil {
			t.Fatal(err)
		}
		if !st.Equal(pristine) {
			t.Fatalf("%s: bit-matrix decode did not restore the stripe", sd.Name())
		}
		plan, err := BuildPlan(sd, sc, StrategyPPM)
		if err != nil {
			t.Fatal(err)
		}
		if stats.MultXORs() != plan.Costs.Chosen {
			t.Fatalf("%s: logical ops %d != chosen %d", sd.Name(), stats.MultXORs(), plan.Costs.Chosen)
		}
	}
}

// TestBitMatrixBackendAllStrategies: every strategy decodes correctly
// under the packet layout, including Normal-sequence sub-decodes.
func TestBitMatrixBackendAllStrategies(t *testing.T) {
	sd := paperSD(t)
	sc := paperScenario(t, sd)
	st, err := stripe.New(4, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	st.FillDataRandom(1, codes.DataPositions(sd))
	enc := NewDecoder(sd, WithBackend(BackendBitMatrix))
	if err := enc.Encode(st); err != nil {
		t.Fatal(err)
	}
	pristine := st.Clone()
	for _, strat := range []Strategy{StrategyPPM, StrategyPPMMatrixFirstRest, StrategyWholeNormal, StrategyWholeMatrixFirst} {
		work := pristine.Clone()
		work.Scribble(int64(strat), sc.Faulty)
		dec := NewDecoder(sd, WithBackend(BackendBitMatrix), WithStrategy(strat))
		if err := dec.Decode(work, sc); err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if !work.Equal(pristine) {
			t.Fatalf("%v: wrong recovery", strat)
		}
	}
}

// TestBitMatrixBackendLayoutDiffers: the two back ends intentionally
// produce different parity bytes for the same data (different symbol
// layouts) — mixing them must be caught by the parity check.
func TestBitMatrixBackendLayoutDiffers(t *testing.T) {
	sd := paperSD(t)
	a, err := stripe.New(4, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	a.FillDataRandom(7, codes.DataPositions(sd))
	b := a.Clone()

	if err := NewDecoder(sd).Encode(a); err != nil {
		t.Fatal(err)
	}
	if err := NewDecoder(sd, WithBackend(BackendBitMatrix)).Encode(b); err != nil {
		t.Fatal(err)
	}
	if a.Equal(b) {
		t.Fatal("table and bit-matrix encodes agree byte-for-byte; layouts should differ")
	}
}

// TestBitMatrixBackendAlignment: sector sizes not divisible by w are
// rejected, not silently mis-split.
func TestBitMatrixBackendAlignment(t *testing.T) {
	sd, err := codes.NewSD(16, 16, 1, 1) // GF(2^16): needs size % 16 == 0
	if err != nil {
		t.Fatal(err)
	}
	st, err := stripe.New(16, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	st.FillDataRandom(1, codes.DataPositions(sd))
	dec := NewDecoder(sd, WithBackend(BackendBitMatrix))
	if err := dec.Encode(st); err == nil {
		t.Fatal("misaligned sector size accepted by the bit-matrix backend")
	}
}

func TestBackendString(t *testing.T) {
	if BackendTable.String() != "table" || BackendBitMatrix.String() != "bitmatrix" {
		t.Fatal("backend names wrong")
	}
	if Backend(9).String() == "" {
		t.Fatal("unknown backend renders empty")
	}
}

// TestBackendHybridPrecedence: when both WithBackend(BackendBitMatrix)
// and WithHybrid are set, the bit-matrix engine takes precedence (it
// has its own parallel structure); the decode stays correct.
func TestBackendHybridPrecedence(t *testing.T) {
	sd := paperSD(t)
	sc := paperScenario(t, sd)
	st, err := stripe.New(4, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	st.FillDataRandom(1, codes.DataPositions(sd))
	dec := NewDecoder(sd, WithBackend(BackendBitMatrix), WithHybrid(true), WithThreads(4))
	if err := dec.Encode(st); err != nil {
		t.Fatal(err)
	}
	pristine := st.Clone()
	st.Scribble(1, sc.Faulty)
	if err := dec.Decode(st, sc); err != nil {
		t.Fatal(err)
	}
	if !st.Equal(pristine) {
		t.Fatal("combined options decoded wrongly")
	}
}
