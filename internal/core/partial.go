package core

import (
	"fmt"

	"ppm/internal/codes"

	"ppm/internal/gf"
	"ppm/internal/kernel"
	"ppm/internal/stripe"
)

// Partial decoding (extension). A degraded read needs one block, not
// every lost block in the stripe; the paper's partition makes the
// minimal work explicit: a wanted block recovered by an independent
// sub-matrix needs only that sub-decode, while a block in H_rest needs
// H_rest plus the groups whose outputs H_rest consumes as survivors.
// For an LRC degraded read this collapses to the single local-group
// decode — the core of the code family's design — without any special
// casing.

// PartialSelection lists which sub-decodes of a plan a partial decode
// must execute to materialise the wanted sectors.
type PartialSelection struct {
	// GroupIdx are indices into Plan.Groups, in execution order.
	GroupIdx []int
	// NeedRest marks whether the remaining decode must run.
	NeedRest bool
	// Ops is the predicted mult_XORs of the selection.
	Ops int64
}

// SelectPartial computes the minimal sub-decode closure for the wanted
// sectors. Wanted sectors that are not faulty in the plan's scenario
// are ignored (they are readable as-is). Whole-matrix plans always
// execute fully.
func (p *Plan) SelectPartial(wanted []int) (PartialSelection, error) {
	var sel PartialSelection
	if p.Whole != nil {
		sel.NeedRest = false
		sel.Ops = p.Whole.ops()
		return sel, nil
	}
	faultyWanted := make(map[int]bool)
	inScenario := make(map[int]bool, len(p.Scenario.Faulty))
	for _, c := range p.Scenario.Faulty {
		inScenario[c] = true
	}
	for _, w := range wanted {
		if inScenario[w] {
			faultyWanted[w] = true
		}
	}
	if len(faultyWanted) == 0 {
		return sel, nil
	}

	needGroup := make([]bool, len(p.Groups))
	if p.Rest != nil {
		for _, c := range p.Rest.FaultyCols {
			if faultyWanted[c] {
				sel.NeedRest = true
				break
			}
		}
	}
	// Groups holding wanted blocks directly.
	for gi := range p.Groups {
		for _, c := range p.Groups[gi].FaultyCols {
			if faultyWanted[c] {
				needGroup[gi] = true
				break
			}
		}
	}
	// H_rest consumes recovered group outputs as survivors: pull in
	// every group whose faulty columns feed it.
	if sel.NeedRest {
		restSurvivor := make(map[int]bool, len(p.Rest.SurvivorCols))
		for _, c := range p.Rest.SurvivorCols {
			restSurvivor[c] = true
		}
		for gi := range p.Groups {
			if needGroup[gi] {
				continue
			}
			for _, c := range p.Groups[gi].FaultyCols {
				if restSurvivor[c] {
					needGroup[gi] = true
					break
				}
			}
		}
	}
	for gi, need := range needGroup {
		if need {
			sel.GroupIdx = append(sel.GroupIdx, gi)
			sel.Ops += p.Groups[gi].ops()
		}
	}
	if sel.NeedRest {
		sel.Ops += p.Rest.ops()
	}
	if len(sel.GroupIdx) == 0 && !sel.NeedRest {
		return sel, fmt.Errorf("core: wanted sectors %v are faulty but belong to no sub-decode (plan inconsistent)", wanted)
	}
	return sel, nil
}

// ExecutePartial runs only the selected sub-decodes. On return the
// wanted sectors hold recovered content; other faulty sectors may or
// may not have been recovered (those in executed groups were).
func ExecutePartial(p *Plan, st *stripe.Stripe, field gf.Field, threads int, stats *kernel.Stats, wanted []int) error {
	if p == nil {
		return fmt.Errorf("core: nil plan")
	}
	if p.Whole != nil {
		return runSubDecode(&p.Whole.SubDecode, st, field, stats)
	}
	sel, err := p.SelectPartial(wanted)
	if err != nil {
		return err
	}
	t := effectiveThreads(threads, len(sel.GroupIdx))
	if t <= 1 || len(sel.GroupIdx) <= 1 {
		for _, gi := range sel.GroupIdx {
			if err := runSubDecode(&p.Groups[gi], st, field, stats); err != nil {
				return err
			}
		}
	} else {
		// Stride the selected groups over t workers of the persistent
		// pool; the error from the lowest selected index wins.
		errs := make([]error, len(sel.GroupIdx))
		poolErr := kernel.DefaultWorkers().Run(t, func(w int) error {
			for i := w; i < len(sel.GroupIdx); i += t {
				if err := runSubDecode(&p.Groups[sel.GroupIdx[i]], st, field, stats); err != nil {
					errs[i] = err
					return err
				}
			}
			return nil
		})
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		if poolErr != nil {
			return poolErr
		}
	}
	if sel.NeedRest {
		return runSubDecode(p.Rest, st, field, stats)
	}
	return nil
}

// DecodeSectors recovers only the listed sectors of the scenario — the
// degraded-read path. The remaining faulty sectors are left as they
// are unless their sub-decodes were needed anyway.
func (d *Decoder) DecodeSectors(st *stripe.Stripe, sc codes.Scenario, wanted []int) error {
	if err := d.checkGeometry(st); err != nil {
		return err
	}
	plan, err := d.planFor(sc)
	if err != nil {
		return err
	}
	return ExecutePartial(plan, st, d.code.Field(), d.threads, d.stats, wanted)
}
