package core

import (
	"container/list"
	"fmt"
	"strconv"
	"sync"

	"ppm/internal/codes"

	"ppm/internal/gf"
	"ppm/internal/kernel"
	"ppm/internal/stripe"
)

// Partial decoding (extension). A degraded read needs one block, not
// every lost block in the stripe; the paper's partition makes the
// minimal work explicit: a wanted block recovered by an independent
// sub-matrix needs only that sub-decode, while a block in H_rest needs
// H_rest plus the groups whose outputs H_rest consumes as survivors.
// For an LRC degraded read this collapses to the single local-group
// decode — the core of the code family's design — without any special
// casing.

// PartialSelection lists which sub-decodes of a plan a partial decode
// must execute to materialise the wanted sectors.
type PartialSelection struct {
	// GroupIdx are indices into Plan.Groups, in execution order.
	GroupIdx []int
	// NeedRest marks whether the remaining decode must run.
	NeedRest bool
	// Ops is the predicted mult_XORs of the selection.
	Ops int64
}

// SelectPartial computes the minimal sub-decode closure for the wanted
// sectors. Wanted sectors that are not faulty in the plan's scenario
// are ignored (they are readable as-is). Whole-matrix plans always
// execute fully.
func (p *Plan) SelectPartial(wanted []int) (PartialSelection, error) {
	var sel PartialSelection
	if p.Whole != nil {
		sel.NeedRest = false
		sel.Ops = p.Whole.ops()
		return sel, nil
	}
	faultyWanted := make(map[int]bool)
	inScenario := make(map[int]bool, len(p.Scenario.Faulty))
	for _, c := range p.Scenario.Faulty {
		inScenario[c] = true
	}
	for _, w := range wanted {
		if inScenario[w] {
			faultyWanted[w] = true
		}
	}
	if len(faultyWanted) == 0 {
		return sel, nil
	}

	needGroup := make([]bool, len(p.Groups))
	if p.Rest != nil {
		for _, c := range p.Rest.FaultyCols {
			if faultyWanted[c] {
				sel.NeedRest = true
				break
			}
		}
	}
	// Groups holding wanted blocks directly.
	for gi := range p.Groups {
		for _, c := range p.Groups[gi].FaultyCols {
			if faultyWanted[c] {
				needGroup[gi] = true
				break
			}
		}
	}
	// H_rest consumes recovered group outputs as survivors: pull in
	// every group whose faulty columns feed it.
	if sel.NeedRest {
		restSurvivor := make(map[int]bool, len(p.Rest.SurvivorCols))
		for _, c := range p.Rest.SurvivorCols {
			restSurvivor[c] = true
		}
		for gi := range p.Groups {
			if needGroup[gi] {
				continue
			}
			for _, c := range p.Groups[gi].FaultyCols {
				if restSurvivor[c] {
					needGroup[gi] = true
					break
				}
			}
		}
	}
	for gi, need := range needGroup {
		if need {
			sel.GroupIdx = append(sel.GroupIdx, gi)
			sel.Ops += p.Groups[gi].ops()
		}
	}
	if sel.NeedRest {
		sel.Ops += p.Rest.ops()
	}
	if len(sel.GroupIdx) == 0 && !sel.NeedRest {
		return sel, fmt.Errorf("core: wanted sectors %v are faulty but belong to no sub-decode (plan inconsistent)", wanted)
	}
	return sel, nil
}

// ExecutePartial runs only the selected sub-decodes. On return the
// wanted sectors hold recovered content; other faulty sectors may or
// may not have been recovered (those in executed groups were).
func ExecutePartial(p *Plan, st *stripe.Stripe, field gf.Field, threads int, stats *kernel.Stats, wanted []int) error {
	if p == nil {
		return fmt.Errorf("core: nil plan")
	}
	if p.Whole != nil {
		return runSubDecode(&p.Whole.SubDecode, st, field, stats)
	}
	sel, err := p.SelectPartial(wanted)
	if err != nil {
		return err
	}
	t := effectiveThreads(threads, len(sel.GroupIdx))
	if t <= 1 || len(sel.GroupIdx) <= 1 {
		for _, gi := range sel.GroupIdx {
			if err := runSubDecode(&p.Groups[gi], st, field, stats); err != nil {
				return err
			}
		}
	} else {
		// Stride the selected groups over t workers of the persistent
		// pool; the error from the lowest selected index wins.
		errs := make([]error, len(sel.GroupIdx))
		poolErr := kernel.DefaultWorkers().Run(t, func(w int) error {
			for i := w; i < len(sel.GroupIdx); i += t {
				if err := runSubDecode(&p.Groups[sel.GroupIdx[i]], st, field, stats); err != nil {
					errs[i] = err
					return err
				}
			}
			return nil
		})
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		if poolErr != nil {
			return poolErr
		}
	}
	if sel.NeedRest {
		return runSubDecode(p.Rest, st, field, stats)
	}
	return nil
}

// ExecutePartialRange runs a pre-selected sub-decode closure over the
// [lo, hi) byte sub-range of every sector — the range-restricted
// executor a degraded read of a sector sub-range uses. Views come from
// the pooled session arena and the matrices are pre-compiled, so the
// repeated path allocates nothing per call. lo and hi must be
// word-aligned (the kernels enforce region alignment).
func ExecutePartialRange(p *Plan, st *stripe.Stripe, field gf.Field, threads int, stats *kernel.Stats, sel *PartialSelection, lo, hi int) error {
	if p == nil {
		return fmt.Errorf("core: nil plan")
	}
	s := getSession()
	defer s.release()
	if p.Whole != nil {
		s.reserveViews(viewCount(p))
		in := s.sectorViews(st, p.Whole.SurvivorCols)
		out := s.sectorViews(st, p.Whole.FaultyCols)
		return applySubDecodeRange(&p.Whole.SubDecode, field, in, out, lo, hi, stats)
	}
	n := 0
	for _, gi := range sel.GroupIdx {
		n += len(p.Groups[gi].FaultyCols) + len(p.Groups[gi].SurvivorCols)
	}
	if sel.NeedRest {
		n += len(p.Rest.FaultyCols) + len(p.Rest.SurvivorCols)
	}
	s.reserveViews(n)
	t := effectiveThreads(threads, len(sel.GroupIdx))
	if t <= 1 || len(sel.GroupIdx) <= 1 {
		for _, gi := range sel.GroupIdx {
			g := &p.Groups[gi]
			in := s.sectorViews(st, g.SurvivorCols)
			out := s.sectorViews(st, g.FaultyCols)
			if err := applySubDecodeRange(g, field, in, out, lo, hi, stats); err != nil {
				return err
			}
		}
	} else {
		// Stride the selected groups over t workers of the persistent
		// pool; the error from the lowest selected index wins.
		s.reservePairs(len(sel.GroupIdx))
		for i, gi := range sel.GroupIdx {
			g := &p.Groups[gi]
			s.ins[i] = s.sectorViews(st, g.SurvivorCols)
			s.outs[i] = s.sectorViews(st, g.FaultyCols)
		}
		errs := s.errSlots(len(sel.GroupIdx))
		poolErr := kernel.DefaultWorkers().Run(t, func(w int) error {
			for i := w; i < len(sel.GroupIdx); i += t {
				if err := applySubDecodeRange(&p.Groups[sel.GroupIdx[i]], field, s.ins[i], s.outs[i], lo, hi, stats); err != nil {
					errs[i] = err
					return err
				}
			}
			return nil
		})
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		if poolErr != nil {
			return poolErr
		}
	}
	if sel.NeedRest {
		in := s.sectorViews(st, p.Rest.SurvivorCols)
		out := s.sectorViews(st, p.Rest.FaultyCols)
		return applySubDecodeRange(p.Rest, field, in, out, lo, hi, stats)
	}
	return nil
}

// partialCache is an LRU of computed partial selections keyed by
// failure pattern + wanted set, mirroring planCache: selections are
// immutable after SelectPartial, the cache itself is mutex-guarded,
// and byte-key lookups avoid allocating on the hit path.
type partialCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element
	lru      list.List // Front is most recently used; values are *partialEntry
}

type partialEntry struct {
	key string
	sel *PartialSelection
}

func newPartialCache(capacity int) *partialCache {
	return &partialCache{
		capacity: capacity,
		entries:  make(map[string]*list.Element, capacity),
	}
}

func (c *partialCache) get(key []byte) *PartialSelection {
	c.mu.Lock()
	defer c.mu.Unlock()
	if elem, ok := c.entries[string(key)]; ok {
		c.lru.MoveToFront(elem)
		return elem.Value.(*partialEntry).sel
	}
	return nil
}

func (c *partialCache) put(key []byte, sel *PartialSelection) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if elem, ok := c.entries[string(key)]; ok {
		elem.Value.(*partialEntry).sel = sel
		c.lru.MoveToFront(elem)
		return
	}
	for c.lru.Len() >= c.capacity {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*partialEntry).key)
	}
	k := string(key)
	c.entries[k] = c.lru.PushFront(&partialEntry{key: k, sel: sel})
}

// partialFor returns the selection for (scenario, wanted), consulting
// the selection cache when enabled. Distinct orderings of the same
// wanted set cache separately — harmless, callers pass stable lists.
func (d *Decoder) partialFor(plan *Plan, sc codes.Scenario, wanted []int) (*PartialSelection, error) {
	if d.partials == nil {
		sel, err := plan.SelectPartial(wanted)
		if err != nil {
			return nil, err
		}
		return &sel, nil
	}
	var arr [160]byte
	key := planKey(arr[:0], sc, d.strategy)
	key = append(key, '|')
	for _, w := range wanted {
		key = strconv.AppendInt(key, int64(w), 10)
		key = append(key, ',')
	}
	if sel := d.partials.get(key); sel != nil {
		return sel, nil
	}
	sel, err := plan.SelectPartial(wanted)
	if err != nil {
		return nil, err
	}
	d.partials.put(key, &sel)
	return &sel, nil
}

// DecodeSectors recovers only the listed sectors of the scenario — the
// degraded-read path. The remaining faulty sectors are left as they
// are unless their sub-decodes were needed anyway.
func (d *Decoder) DecodeSectors(st *stripe.Stripe, sc codes.Scenario, wanted []int) error {
	return d.DecodeSectorsRange(st, sc, wanted, 0, st.SectorSize())
}

// DecodeSectorsRange is DecodeSectors restricted to the [lo, hi) byte
// sub-range of every sector — a degraded read of part of a block reads
// and computes only that part. Plans and partial selections are both
// LRU-cached, so the repeated path allocates nothing per call.
func (d *Decoder) DecodeSectorsRange(st *stripe.Stripe, sc codes.Scenario, wanted []int, lo, hi int) error {
	if err := d.checkGeometry(st); err != nil {
		return err
	}
	wb := d.code.Field().WordBytes()
	if lo < 0 || hi > st.SectorSize() || lo >= hi {
		return fmt.Errorf("core: byte range [%d,%d) outside sector size %d", lo, hi, st.SectorSize())
	}
	if lo%wb != 0 || hi%wb != 0 {
		return fmt.Errorf("core: byte range [%d,%d) not aligned to the %d-byte GF word", lo, hi, wb)
	}
	plan, err := d.planFor(sc)
	if err != nil {
		return err
	}
	sel, err := d.partialFor(plan, sc, wanted)
	if err != nil {
		return err
	}
	return ExecutePartialRange(plan, st, d.code.Field(), d.threads, d.stats, sel, lo, hi)
}
