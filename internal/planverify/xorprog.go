package planverify

import (
	"fmt"
	"math/bits"

	"ppm/internal/gf"
	"ppm/internal/matrix"
	"ppm/internal/xorplan"
)

// The symbolic domain for XOR programs: each buffer (input region,
// arena slot, output row) is a coefficient vector over the program's
// cols inputs — out = vec means out[t] = Σ_j vec[j]·in[j][t] for every
// word position t. The three executor operations are linear, so the
// abstract transfer functions are exact, not approximations:
//
//	xtimes (one shift-and-reduce pass)  ⇒  multiply every coefficient
//	    by x (the field element 2: the polynomial-basis generator);
//	pair / XOR accumulate               ⇒  coefficient-wise XOR (GF
//	    addition);
//	derivative copy from an earlier row ⇒  start from that row's vector.
//
// A program is correct iff every output row's final vector equals the
// corresponding row of the source coefficient matrix — which is exactly
// what VerifyProgramView proves, with no input sampling.

const objXorProgram = "xorplan-program"

// xorProgState carries one verification walk.
type xorProgState struct {
	f        gf.Field
	m        *matrix.Matrix
	v        *xorplan.View
	findings []Finding

	slotVec [][]uint32 // nil = unwritten
	slotDef []int      // instr index of the live def, -1 none
	slotUse []bool     // live def has been read
	rowVec  [][]uint32 // nil = unwritten
}

func (st *xorProgState) reportf(pass string, op int, format string, args ...interface{}) {
	st.findings = append(st.findings, Finding{
		Object: objXorProgram, Pass: pass, OpIndex: op,
		Message: fmt.Sprintf(format, args...),
	})
}

// VerifyProgram proves a compiled program equal to its source matrix
// and additionally checks the executable's tile geometry against the
// arena bounds the runner will index. A nil return slice means the
// program is proven.
func VerifyProgram(f gf.Field, m *matrix.Matrix, p *xorplan.Program) []Finding {
	v := p.View()
	fs := VerifyProgramView(f, m, &v)
	// Tile/arena bounds: one run slices the pooled backing array into
	// Slots tiles of TileBytes each; the tile must stay word-aligned
	// (the kernels sweep 8-byte words) and inside the clamp range the
	// compiler promises, or the executor reads past its arena.
	tile := p.TileBytes()
	if tile <= 0 || tile%8 != 0 {
		fs = append(fs, Finding{Object: objXorProgram, Pass: "bounds", OpIndex: -1,
			Message: fmt.Sprintf("tile %d bytes is not a positive multiple of 8", tile)})
	}
	if tile < f.WordBytes() {
		fs = append(fs, Finding{Object: objXorProgram, Pass: "bounds", OpIndex: -1,
			Message: fmt.Sprintf("tile %d bytes cannot hold one %d-byte word", tile, f.WordBytes())})
	}
	if max := 32 << 10; tile > max {
		fs = append(fs, Finding{Object: objXorProgram, Pass: "bounds", OpIndex: -1,
			Message: fmt.Sprintf("tile %d bytes exceeds the %d-byte kernel tile cap", tile, max)})
	}
	return fs
}

// VerifyProgramView runs the symbolic and structural passes over an
// exported program view. The view may be a mutant (the mutation
// harness feeds corrupted copies); the walk never indexes out of range
// on malformed references — it reports them as bounds findings instead.
func VerifyProgramView(f gf.Field, m *matrix.Matrix, v *xorplan.View) []Finding {
	st := &xorProgState{f: f, m: m, v: v}
	if v.W != f.W() {
		st.reportf("structure", -1, "program word width %d does not match field %d", v.W, f.W())
	}
	if v.Rows != m.Rows() || v.Cols != m.Cols() {
		st.reportf("structure", -1, "program shape %dx%d does not match matrix %dx%d",
			v.Rows, v.Cols, m.Rows(), m.Cols())
		return st.findings // nothing sensible to interpret against
	}
	if v.Slots < 0 {
		st.reportf("bounds", -1, "negative slot count %d", v.Slots)
		return st.findings
	}
	st.slotVec = make([][]uint32, v.Slots)
	st.slotDef = make([]int, v.Slots)
	st.slotUse = make([]bool, v.Slots)
	for i := range st.slotDef {
		st.slotDef[i] = -1
	}
	st.rowVec = make([][]uint32, v.Rows)

	for i := range v.Instrs {
		st.instr(i)
	}
	for i := range v.Outs {
		st.out(i)
	}
	st.flushLiveness()
	st.checkStats()
	return st.findings
}

// readSrc resolves a source reference symbolically, reporting bounds
// and liveness violations. The returned vector is never nil.
func (st *xorProgState) readSrc(ref int32, op int, kind string) []uint32 {
	zero := make([]uint32, st.v.Cols)
	if ref < 0 {
		j := int(^ref)
		if j >= st.v.Cols {
			st.reportf("bounds", op, "%s references input %d of %d", kind, j, st.v.Cols)
			return zero
		}
		vec := zero
		vec[j] = 1
		return vec
	}
	s := int(ref)
	if s >= st.v.Slots {
		st.reportf("bounds", op, "%s references slot %d of %d", kind, s, st.v.Slots)
		return zero
	}
	if st.slotVec[s] == nil {
		st.reportf("liveness", op, "%s reads slot %d before any write (stale pooled-arena bytes)", kind, s)
		return zero
	}
	st.slotUse[s] = true
	return st.slotVec[s]
}

// instr interprets one temp-materialisation step.
func (st *xorProgState) instr(i int) {
	ins := st.v.Instrs[i]
	var vec []uint32
	if ins.Xtimes {
		a := st.readSrc(ins.A, i, "xtimes instr")
		vec = make([]uint32, st.v.Cols)
		for j, c := range a {
			vec[j] = st.f.Mul(c, 2) // one shift-and-reduce pass = multiply by x
		}
	} else {
		a := st.readSrc(ins.A, i, "pair instr")
		b := st.readSrc(ins.B, i, "pair instr")
		vec = make([]uint32, st.v.Cols)
		for j := range vec {
			vec[j] = a[j] ^ b[j]
		}
	}
	s := int(ins.Dst)
	if s < 0 || s >= st.v.Slots {
		st.reportf("bounds", i, "instr writes slot %d of %d", s, st.v.Slots)
		return
	}
	// Dead-store check: overwriting a live, never-read definition means
	// the allocator materialised a temp nothing consumes — a dropped use
	// somewhere downstream.
	if st.slotDef[s] >= 0 && !st.slotUse[s] {
		st.reportf("liveness", st.slotDef[s], "slot %d is overwritten by instr %d before its value is ever read", s, i)
	}
	st.slotVec[s] = vec
	st.slotDef[s] = i
	st.slotUse[s] = false
}

// out interprets one output op and compares the result against the
// matrix row.
func (st *xorProgState) out(i int) {
	op := st.v.Outs[i]
	opIdx := len(st.v.Instrs) + i
	dst := int(op.Dst)
	if dst < 0 || dst >= st.v.Rows {
		st.reportf("bounds", opIdx, "out op writes row %d of %d", dst, st.v.Rows)
		return
	}
	if st.rowVec[dst] != nil {
		st.reportf("structure", opIdx, "row %d is written twice", dst)
		return
	}
	vec := make([]uint32, st.v.Cols)
	if op.From != -1 {
		from := int(op.From)
		switch {
		case from < 0 || from >= st.v.Rows:
			st.reportf("bounds", opIdx, "out op derives from row %d of %d", from, st.v.Rows)
		case from == dst:
			// Unreachable while the write-twice check holds, but the alias
			// discipline deserves its own pass: copying from the
			// destination would read bytes the overwrite run never defined.
			st.reportf("alias", opIdx, "out op derives row %d from itself", dst)
		case st.rowVec[from] == nil:
			st.reportf("alias", opIdx, "out op derives from row %d before it is written", from)
		default:
			copy(vec, st.rowVec[from])
		}
	}
	for _, ref := range op.Srcs {
		src := st.readSrc(ref, opIdx, "out op")
		for j := range vec {
			vec[j] ^= src[j]
		}
	}
	st.rowVec[dst] = vec
	for j := 0; j < st.v.Cols; j++ {
		if vec[j] != st.m.At(dst, j) {
			st.reportf("symbolic", opIdx,
				"row %d computes coefficient %#x at column %d, matrix has %#x",
				dst, vec[j], j, st.m.At(dst, j))
			return // one mismatch per row keeps the diagnosis readable
		}
	}
}

// flushLiveness reports rows never written and temp definitions never
// consumed once the whole program has run.
func (st *xorProgState) flushLiveness() {
	for r, vec := range st.rowVec {
		if vec == nil {
			st.reportf("structure", -1, "row %d is never written", r)
		}
	}
	for s, used := range st.slotUse {
		if st.slotDef[s] >= 0 && !used {
			st.reportf("liveness", st.slotDef[s], "slot %d holds a value no instruction or output ever reads", s)
		}
		if st.slotDef[s] < 0 && st.v.Slots > 0 {
			// The linear-scan allocator only grows the arena when a value
			// is placed, so a never-written slot means Slots overstates the
			// arena one run will zero and sweep.
			st.reportf("liveness", -1, "arena slot %d is allocated but never written", s)
		}
	}
}

// checkStats recomputes the program's cost metrics from the ops it
// actually contains and compares them with the counters the kernel
// layer will feed into Stats.MultXORs accounting and the benchmarks.
func (st *xorProgState) checkStats() {
	pairs, outXORs, derivs := 0, 0, 0
	for _, ins := range st.v.Instrs {
		if !ins.Xtimes {
			pairs++
		}
	}
	for _, op := range st.v.Outs {
		outXORs += len(op.Srcs)
		if op.From >= 0 {
			derivs++
		}
	}
	// The bitmatrix schedule metric: 2 per CSE temp (copy + XOR),
	// |Srcs| per output op, +1 per derivative op for the parent copy.
	// Xtimes chain steps are derived-source materialisation, not
	// schedule XORs, and are deliberately outside the metric.
	if want := 2*pairs + outXORs + derivs; st.v.XORs != want {
		st.reportf("stats", -1, "program reports %d scheduled XORs, its ops perform %d", st.v.XORs, want)
	}
	ones := 0
	for i := 0; i < st.m.Rows(); i++ {
		for j := 0; j < st.m.Cols(); j++ {
			ones += bits.OnesCount32(st.m.At(i, j))
		}
	}
	if st.v.Ones != ones {
		st.reportf("stats", -1, "program reports %d expansion ones, the matrix has %d", st.v.Ones, ones)
	}
}

// interpretView executes a view concretely on one word per region — the
// ground-truth oracle the mutation harness and the fuzzer use to decide
// whether a mutant actually changed program semantics. Returns ok=false
// when the view is too malformed to run (out-of-range references).
func interpretView(f gf.Field, v *xorplan.View, in []uint32) (out []uint32, ok bool) {
	slots := make([]uint32, v.Slots)
	written := make([]bool, v.Slots)
	read := func(ref int32) (uint32, bool) {
		if ref < 0 {
			j := int(^ref)
			if j >= len(in) {
				return 0, false
			}
			return in[j], true
		}
		if int(ref) >= len(slots) || !written[ref] {
			return 0, false
		}
		return slots[ref], true
	}
	for _, ins := range v.Instrs {
		a, okA := read(ins.A)
		if !okA {
			return nil, false
		}
		var val uint32
		if ins.Xtimes {
			val = f.Mul(a, 2)
		} else {
			b, okB := read(ins.B)
			if !okB {
				return nil, false
			}
			val = a ^ b
		}
		if ins.Dst < 0 || int(ins.Dst) >= len(slots) {
			return nil, false
		}
		slots[ins.Dst] = val
		written[ins.Dst] = true
	}
	out = make([]uint32, v.Rows)
	done := make([]bool, v.Rows)
	for _, op := range v.Outs {
		if op.Dst < 0 || int(op.Dst) >= v.Rows {
			return nil, false
		}
		var val uint32
		if op.From >= 0 {
			if int(op.From) >= v.Rows || !done[op.From] {
				return nil, false
			}
			val = out[op.From]
		}
		for _, ref := range op.Srcs {
			s, okS := read(ref)
			if !okS {
				return nil, false
			}
			val ^= s
		}
		out[op.Dst] = val
		done[op.Dst] = true
	}
	return out, true
}
