package planverify

import (
	"testing"

	"ppm/internal/codes"
	"ppm/internal/core"
	"ppm/internal/kernel"
)

// TestSweepProvesZoo is the headline property: every compiled artifact
// of the standard zoo — decode plans, repair plans, XOR programs,
// bit-matrix schedules, updaters — verifies with zero findings.
func TestSweepProvesZoo(t *testing.T) {
	if testing.Short() {
		t.Skip("zoo sweep is seconds-long; skipped in -short")
	}
	zoo, err := StandardZoo()
	if err != nil {
		t.Fatal(err)
	}
	fs, stats := Sweep(zoo, 1, 2)
	for _, f := range fs {
		t.Errorf("%s", f)
	}
	if stats.Plans == 0 || stats.Repairs == 0 || stats.Programs == 0 || stats.Schedules == 0 || stats.Updaters == 0 {
		t.Fatalf("sweep proved nothing in some category: %+v", stats)
	}
	t.Logf("proved %+v", stats)
}

// TestSweepProvesZooForcedXorplan re-proves the zoo with the XOR
// program backend forced, so every repair step carries a program and
// the nested program verification runs.
func TestSweepProvesZooForcedXorplan(t *testing.T) {
	if testing.Short() {
		t.Skip("zoo sweep is seconds-long; skipped in -short")
	}
	defer kernel.SetXorplanMode(kernel.SetXorplanMode(kernel.XorplanOn))
	zoo, err := StandardZoo()
	if err != nil {
		t.Fatal(err)
	}
	fs, _ := Sweep(zoo, 2, 1)
	for _, f := range fs {
		t.Errorf("%s", f)
	}
}

// TestVerifyDecodePlanAllStrategies proves each strategy's plan shape
// on one published instance, including the whole-matrix baselines the
// zoo sweep does not build for every scenario.
func TestVerifyDecodePlanAllStrategies(t *testing.T) {
	c, err := codes.NewPublishedSD(1)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := codes.NewScenario(c, []int{0, 7, 13})
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []core.Strategy{
		core.StrategyAuto, core.StrategyPPM, core.StrategyPPMMatrixFirstRest,
		core.StrategyWholeNormal, core.StrategyWholeMatrixFirst,
	} {
		plan, err := core.BuildPlan(c, sc, strat)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		for _, f := range VerifyDecodePlan(c, plan) {
			t.Errorf("%v: %s", strat, f)
		}
	}
}

// TestVerifyDecodePlanCatchesCorruption flips one coefficient of a
// built plan and demands the row-space check notice.
func TestVerifyDecodePlanCatchesCorruption(t *testing.T) {
	c, err := codes.NewPublishedSD(0)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := codes.NewScenario(c, []int{3, 9})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.BuildPlan(c, sc, core.StrategyPPM)
	if err != nil {
		t.Fatal(err)
	}
	var m = effectiveMatrixOfFirstStage(plan)
	if m == nil {
		t.Fatal("plan has no stage matrix to corrupt")
	}
	old := m.At(0, 0)
	m.Set(0, 0, old^1)
	fs := VerifyDecodePlan(c, plan)
	m.Set(0, 0, old)
	symbolic := false
	for _, f := range fs {
		if f.Pass == "symbolic" || f.Pass == "structure" {
			symbolic = true
		}
	}
	if !symbolic {
		t.Fatalf("corrupted plan passed verification (findings: %v)", fs)
	}
}

func effectiveMatrixOfFirstStage(p *core.Plan) interface {
	At(i, j int) uint32
	Set(i, j int, v uint32)
} {
	if len(p.Groups) > 0 {
		if p.Groups[0].G != nil {
			return p.Groups[0].G
		}
	}
	if p.Rest != nil && p.Rest.Finv != nil {
		return p.Rest.Finv
	}
	if p.Whole != nil && p.Whole.Finv != nil {
		return p.Whole.Finv
	}
	return nil
}

// TestVerifyUpdaterCatchesCorruption is covered through the mutation
// harness for programs; for updaters the sweep itself plus this
// negative probe — an updater for code A verified against code B's
// parity check — pins that the codeword test has teeth.
func TestVerifyUpdaterWrongCode(t *testing.T) {
	a, err := codes.NewPublishedSD(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := codes.NewRS(10, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	u, err := core.NewUpdater(a)
	if err != nil {
		t.Fatal(err)
	}
	if fs := VerifyUpdater(b, u); len(fs) == 0 {
		t.Fatal("updater for a different code verified cleanly")
	}
}
