package planverify

import (
	"fmt"
	"sort"

	"ppm/internal/codes"
	"ppm/internal/kernel"
	"ppm/internal/matrix"
	"ppm/internal/repair"
)

const objRepairPlan = "repair-plan"

// reconstructMatrix rebuilds the coefficient matrix a compiled matrix
// was lowered from, via the per-row (column, multiplier) terms the
// small-write path uses. Every verification of a repair step therefore
// checks the lowering the executor actually runs, not the matrix the
// planner thought it compiled.
func reconstructMatrix(cm *kernel.CompiledMatrix, fieldOf codes.Code) *matrix.Matrix {
	m := matrix.New(fieldOf.Field(), cm.Rows(), cm.Cols())
	for i := 0; i < cm.Rows(); i++ {
		for _, t := range cm.RowTerms(i) {
			m.Set(i, t.Col, t.Mult.Coefficient())
		}
	}
	return m
}

// VerifyRepairPlan proves a minimal-read repair plan: every step's
// recovery expression is valid on every codeword (through the same
// row-space membership argument as decode plans), steps only consume
// survivors or outputs of strictly earlier steps, the plan recovers
// every wanted sector, ReadCols is exactly the survivors the steps
// read, and the cost counters recompute from the compiled matrices.
// When a step's compiled matrix carries an XOR program (the forced or
// no-GFNI backend), the program itself is re-proven against the
// reconstructed matrix, so the whole lowering chain is covered.
func VerifyRepairPlan(c codes.Code, p *repair.Plan) []Finding {
	var fs []Finding
	report := func(pass string, op int, format string, args ...interface{}) {
		fs = append(fs, Finding{Object: objRepairPlan, Pass: pass, OpIndex: op,
			Message: fmt.Sprintf(format, args...)})
	}
	f := c.Field()
	h := c.ParityCheck()
	total := codes.TotalSectors(c)
	faulty := p.Scenario.FaultySet()

	recovered := make(map[int][]uint32) // sector -> expression over original survivors
	readSet := make(map[int]bool)
	var ops int64
	for si := range p.Steps {
		step := &p.Steps[si]

		// Reconstruct the effective matrix of the step's sequence and
		// cross-check the compiled pieces and the Ops counter.
		var eff *matrix.Matrix
		switch step.Seq {
		case kernel.MatrixFirst:
			if step.G == nil {
				report("structure", si, "MatrixFirst step carries no compiled G")
				continue
			}
			eff = reconstructMatrix(step.G, c)
			if step.Ops != int64(step.G.NNZ()) {
				report("stats", si, "step predicts %d mult_XORs, its compiled G has %d nonzeros", step.Ops, step.G.NNZ())
			}
			if prog := step.G.XORProgram(); prog != nil {
				fs = append(fs, prefixOp(VerifyProgram(f, eff, prog), si)...)
			}
		case kernel.Normal:
			if step.Finv == nil || step.S == nil {
				report("structure", si, "Normal step is missing a compiled Finv or S")
				continue
			}
			finv := reconstructMatrix(step.Finv, c)
			s := reconstructMatrix(step.S, c)
			if finv.Cols() != s.Rows() {
				report("structure", si, "Normal step chains %dx%d Finv after %dx%d S", finv.Rows(), finv.Cols(), s.Rows(), s.Cols())
				continue
			}
			eff = finv.Mul(s)
			if step.Ops != int64(step.Finv.NNZ()+step.S.NNZ()) {
				report("stats", si, "step predicts %d mult_XORs, its compiled pair has %d",
					step.Ops, step.Finv.NNZ()+step.S.NNZ())
			}
			if prog := step.Finv.XORProgram(); prog != nil {
				fs = append(fs, prefixOp(VerifyProgram(f, finv, prog), si)...)
			}
			if prog := step.S.XORProgram(); prog != nil {
				fs = append(fs, prefixOp(VerifyProgram(f, s, prog), si)...)
			}
		default:
			report("structure", si, "step has unknown sequence %v", step.Seq)
			continue
		}
		if eff.Rows() != len(step.Out) || eff.Cols() != len(step.In) {
			report("structure", si, "step matrix is %dx%d for %d outputs and %d inputs",
				eff.Rows(), eff.Cols(), len(step.Out), len(step.In))
			continue
		}

		// Resolve inputs: original survivors are themselves; faulty
		// sectors must have been produced by a strictly earlier step
		// (the executor runs steps in order against one stripe).
		exprs := make([][]uint32, len(step.In))
		for j, s := range step.In {
			switch {
			case s < 0 || s >= total:
				report("bounds", si, "step reads sector %d outside the %d-sector stripe", s, total)
				exprs[j] = make([]uint32, total)
			case !faulty[s]:
				v := make([]uint32, total)
				v[s] = 1
				exprs[j] = v
				readSet[s] = true
			case recovered[s] != nil:
				exprs[j] = recovered[s]
			default:
				report("alias", si, "step reads faulty sector %d before any earlier step recovers it", s)
				exprs[j] = make([]uint32, total)
			}
		}

		for i, out := range step.Out {
			if out < 0 || out >= total {
				report("bounds", si, "step writes sector %d outside the %d-sector stripe", out, total)
				continue
			}
			if !faulty[out] {
				report("structure", si, "step recovers sector %d, which is not faulty", out)
				continue
			}
			if recovered[out] != nil {
				report("structure", si, "sector %d is recovered twice", out)
				continue
			}
			vec := make([]uint32, total)
			for j := range step.In {
				if a := eff.At(i, j); a != 0 {
					for t, e := range exprs[j] {
						if e != 0 {
							vec[t] ^= f.Mul(a, e)
						}
					}
				}
			}
			recovered[out] = vec
			residual := append([]uint32(nil), vec...)
			residual[out] ^= 1
			if !inRowSpace(h, residual) {
				report("symbolic", si,
					"sector %d's recovery expression does not lie in H's row space: it repairs wrongly on some codeword", out)
			}
		}

		if step.MinimizedRow >= 0 {
			switch {
			case step.MinimizedRow >= h.Rows():
				report("bounds", si, "step cites parity-check row %d of %d", step.MinimizedRow, h.Rows())
			case len(step.Out) != 1:
				report("structure", si, "single-row step recovers %d sectors", len(step.Out))
			case h.At(step.MinimizedRow, step.Out[0]) == 0:
				report("structure", si, "cited parity-check row %d does not touch sector %d", step.MinimizedRow, step.Out[0])
			}
		}
		ops += step.Ops
	}

	for _, w := range p.Wanted {
		if recovered[w] == nil {
			report("structure", -1, "wanted sector %d is never recovered by any step", w)
		}
	}

	// ReadCols must be exactly the survivors the steps read from the
	// array — an overstated set inflates repair bandwidth accounting, an
	// understated one starves the executor of inputs.
	want := make([]int, 0, len(readSet))
	for s := range readSet {
		want = append(want, s)
	}
	sort.Ints(want)
	if len(want) != len(p.ReadCols) {
		report("stats", -1, "plan lists %d read sectors, its steps read %d", len(p.ReadCols), len(want))
	} else {
		for i := range want {
			if want[i] != p.ReadCols[i] {
				report("stats", -1, "plan read set diverges at sector %d (plan lists %d)", want[i], p.ReadCols[i])
				break
			}
		}
	}
	if p.Cost.MultXORs != ops {
		report("stats", -1, "plan costs %d mult_XORs, its steps perform %d", p.Cost.MultXORs, ops)
	}
	if p.Cost.ReadSectors != len(p.ReadCols) {
		report("stats", -1, "plan costs %d read sectors, ReadCols has %d", p.Cost.ReadSectors, len(p.ReadCols))
	}
	return fs
}

// prefixOp re-homes nested xorplan findings under the repair step that
// owns the program, keeping the step index in the message.
func prefixOp(fs []Finding, step int) []Finding {
	for i := range fs {
		fs[i].Object = objRepairPlan
		fs[i].Message = fmt.Sprintf("step %d XOR program: %s", step, fs[i].Message)
	}
	return fs
}
