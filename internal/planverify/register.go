package planverify

import (
	"ppm/internal/codes"
	"ppm/internal/gf"
	"ppm/internal/matrix"
	"ppm/internal/repair"
	"ppm/internal/xorplan"
)

// The compile-time gate: importing this package installs the symbolic
// verifier into the xorplan compile cache and the repair planner. Both
// consult it only when PPM_VERIFY_PLANS=1 (or the SetVerifyPlans test
// seams) — and only on cache misses, so verification cost is confined
// to first-compile paths and cached hot paths stay allocation-free.
// The registration indirection keeps the import graph one-way: this
// package walks xorplan/repair artifacts, they never import it.
func init() {
	xorplan.RegisterVerifier(func(f gf.Field, m *matrix.Matrix, p *xorplan.Program) error {
		return Error(VerifyProgram(f, m, p))
	})
	repair.RegisterVerifier(func(c codes.Code, p *repair.Plan) error {
		return Error(VerifyRepairPlan(c, p))
	})
}
