// Package planverify is the symbolic plan verifier: an abstract
// interpreter that walks every kind of compiled artifact the repository
// ships — xorplan straight-line XOR programs, bitmatrix set schedules,
// core decode plans, repair plans and delta-update columns — and proves
// each one algebraically equal to its source coefficient matrix. No
// sampling: where the differential fuzzers compare outputs on random
// inputs, this package tracks every buffer and arena slot as a symbolic
// GF coefficient vector over the program's inputs and demands exact
// equality with the matrix row (or, for recovery plans, membership of
// the recovery residual in the parity-check row space — the statement
// "this expression recovers that sector on every codeword").
//
// The symbolic pass is complemented by structural passes over the same
// walk, because an optimiser bug can corrupt a program in ways the
// algebra alone reports poorly (Uezato, arXiv:2108.02692 — scheduling
// and CSE passes are exactly where XOR compilers break):
//
//   - liveness: no read of an unwritten (or recycled-and-stale) arena
//     slot, and no dead stores — every materialised temp is consumed;
//   - alias safety: derivative outputs copy only from rows already
//     written, never from their own destination;
//   - bounds: every slot, input, row and tile reference stays inside
//     the arenas the executor will index;
//   - stats accounting: the program's XOR metric and every plan's
//     mult_XORs cost recompute exactly from the ops it contains, so
//     Stats.MultXORs accounting can never drift from the code a plan
//     actually runs.
//
// Verification is wired in four places: an opt-in compile-time gate
// (PPM_VERIFY_PLANS=1 proves each program on cache miss before it is
// admitted to an LRU — see xorplan.RegisterVerifier and
// repair.RegisterVerifier, both installed by this package's init), the
// ppmverify CLI sweeping the standard code zoo, test-time hooks in the
// xorplan/repair/core suites, and a mutation harness that measures the
// verifier's own detection power against single-op program corruptions.
package planverify

import "fmt"

// A Finding is one verification failure, pinpointed to the op that
// breaks the proof. The zero OpIndex ambiguity is avoided by using -1
// for findings that are not op-specific.
type Finding struct {
	// Object names the artifact kind: "xorplan-program", "set-schedule",
	// "decode-plan", "repair-plan" or "updater".
	Object string `json:"object"`
	// Detail identifies the instance (code, scenario, backend) when the
	// finding comes from a sweep; empty for direct Verify* calls.
	Detail string `json:"detail,omitempty"`
	// Pass names the check that failed: "symbolic", "liveness", "alias",
	// "bounds", "structure" or "stats".
	Pass string `json:"pass"`
	// OpIndex pinpoints the offending op inside the artifact (the
	// instruction/output/step index the Message describes), -1 when the
	// finding is not op-specific.
	OpIndex int `json:"op_index"`
	// Message states what failed.
	Message string `json:"message"`
}

func (f Finding) String() string {
	where := ""
	if f.Detail != "" {
		where = f.Detail + ": "
	}
	if f.OpIndex >= 0 {
		return fmt.Sprintf("%s%s: %s: op %d: %s", where, f.Object, f.Pass, f.OpIndex, f.Message)
	}
	return fmt.Sprintf("%s%s: %s: %s", where, f.Object, f.Pass, f.Message)
}

// stamp labels findings with the sweep instance that produced them.
func stamp(fs []Finding, detail string) []Finding {
	for i := range fs {
		fs[i].Detail = detail
	}
	return fs
}

// Error folds findings into a single error, nil when there are none —
// the shape the compile-time verification hooks need.
func Error(fs []Finding) error {
	switch len(fs) {
	case 0:
		return nil
	case 1:
		return fmt.Errorf("%s", fs[0])
	default:
		return fmt.Errorf("%s (and %d more findings)", fs[0], len(fs)-1)
	}
}
