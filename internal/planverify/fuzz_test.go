package planverify

import (
	"math/rand"
	"testing"

	"ppm/internal/gf"
	"ppm/internal/matrix"
	"ppm/internal/xorplan"
)

// FuzzVerifierVsDifferential pins the verifier to the concrete scalar
// oracle from both directions:
//
//   - completeness: every program the compiler emits for a random
//     matrix must verify with zero findings, and the concrete
//     interpreter must agree with the matrix on random words;
//   - soundness: when a random single-op mutation is applied, a mutant
//     the verifier ACCEPTS must still agree with the matrix — the
//     verifier may over-reject a semantically-neutral mutant on
//     structural grounds (a dead store is a finding even when the
//     algebra survives), but it must never under-reject.
func FuzzVerifierVsDifferential(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(5), uint8(0), uint8(0))
	f.Add(int64(2), uint8(1), uint8(1), uint8(1), uint8(3))
	f.Add(int64(3), uint8(6), uint8(8), uint8(2), uint8(6))
	f.Add(int64(4), uint8(4), uint8(2), uint8(0), uint8(2))
	f.Add(int64(42), uint8(2), uint8(7), uint8(1), uint8(4))

	f.Fuzz(func(t *testing.T, seed int64, rows, cols, wsel, mutSel uint8) {
		w := []int{8, 16, 32}[int(wsel)%3]
		field, err := gf.ForWord(w)
		if err != nil {
			t.Fatal(err)
		}
		r := 1 + int(rows)%6
		c := 1 + int(cols)%8
		rng := rand.New(rand.NewSource(seed))
		mask := uint32(1)<<uint(w) - 1
		m := matrix.New(field, r, c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				m.Set(i, j, rng.Uint32()&mask)
			}
		}

		prog, err := xorplan.Compile(field, m)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		orig := prog.View()
		if fs := VerifyProgramView(field, m, &orig); len(fs) != 0 {
			t.Fatalf("verifier rejects a freshly compiled program: %v", fs)
		}
		if changed := semanticallyChanged(field, m, &orig, rng); changed {
			t.Fatal("concrete interpreter disagrees with the matrix on a pristine program")
		}

		mut := mutators[int(mutSel)%len(mutators)]
		v := copyView(orig)
		if !mut.fn(rng, &v) {
			return // mutator inapplicable to this program shape
		}
		accepted := len(VerifyProgramView(field, m, &v)) == 0
		changed := semanticallyChanged(field, m, &v, rng)
		if accepted && changed {
			t.Fatalf("verifier accepted a %s mutant the scalar oracle refutes", mut.name)
		}
	})
}
