package planverify

import (
	"fmt"
	"math/rand"

	"ppm/internal/bitmatrix"
	"ppm/internal/codes"
	"ppm/internal/core"
	"ppm/internal/matrix"
	"ppm/internal/repair"
	"ppm/internal/xorplan"
)

// The standard zoo: every code family the repository constructs, at
// the parameterisations the paper and the harnesses use. The sweep
// walks each code's failure scenarios, builds every plan shape the
// production paths build, and proves each compiled artifact — the
// ppmverify CLI and the CI verifier leg run exactly this.

// ZooCode pairs a code instance with its display name.
type ZooCode struct {
	Name string
	Code codes.Code
}

// StandardZoo instantiates the verification zoo: the two published SD
// instances, the harnesses' LRC and RS parameterisations.
func StandardZoo() ([]ZooCode, error) {
	var zoo []ZooCode
	for i := range codes.PublishedSD {
		c, err := codes.NewPublishedSD(i)
		if err != nil {
			return nil, err
		}
		zoo = append(zoo, ZooCode{Name: c.Name(), Code: c})
	}
	lrc, err := codes.NewLRC(12, 2, 2)
	if err != nil {
		return nil, err
	}
	zoo = append(zoo, ZooCode{Name: lrc.Name(), Code: lrc})
	rs, err := codes.NewRS(10, 1, 4)
	if err != nil {
		return nil, err
	}
	zoo = append(zoo, ZooCode{Name: rs.Name(), Code: rs})
	return zoo, nil
}

// Scenarios enumerates the failure scenarios verified per code: the
// encoding scenario, every decodable single- and double-sector failure,
// and extra seeded random scenarios at the code's maximum tolerance
// (as many erasures as H has rows).
func Scenarios(c codes.Code, seed int64, extra int) []codes.Scenario {
	total := codes.TotalSectors(c)
	out := []codes.Scenario{codes.EncodingScenario(c)}
	add := func(faulty ...int) {
		sc, err := codes.NewScenario(c, faulty)
		if err == nil && codes.Decodable(c, sc) {
			out = append(out, sc)
		}
	}
	for i := 0; i < total; i++ {
		add(i)
	}
	for i := 0; i < total; i++ {
		for j := i + 1; j < total; j++ {
			add(i, j)
		}
	}
	maxErasures := c.ParityCheck().Rows()
	if maxErasures > 2 && extra > 0 {
		rng := rand.New(rand.NewSource(seed))
		found := 0
		for attempt := 0; attempt < 64*extra && found < extra; attempt++ {
			perm := rng.Perm(total)[:maxErasures]
			sc, err := codes.NewScenario(c, perm)
			if err == nil && codes.Decodable(c, sc) {
				out = append(out, sc)
				found++
			}
		}
	}
	return out
}

// SweepStats counts the artifacts one sweep proved.
type SweepStats struct {
	Codes     int `json:"codes"`
	Scenarios int `json:"scenarios"`
	Plans     int `json:"plans"`
	Repairs   int `json:"repairs"`
	Programs  int `json:"programs"`
	Schedules int `json:"schedules"`
	Updaters  int `json:"updaters"`
}

// sweepMatrices collects the distinct coefficient matrices one core
// plan applies, so the sweep can prove their xorplan and bit-matrix
// lowerings too.
func sweepMatrices(p *core.Plan) []*matrix.Matrix {
	var ms []*matrix.Matrix
	addSub := func(sd *core.SubDecode) {
		if sd == nil {
			return
		}
		if sd.G != nil {
			ms = append(ms, sd.G)
		}
		if sd.Finv != nil && sd.S != nil {
			ms = append(ms, sd.Finv, sd.S)
		}
	}
	for i := range p.Groups {
		addSub(&p.Groups[i])
	}
	addSub(p.Rest)
	if p.Whole != nil {
		addSub(&p.Whole.SubDecode)
	}
	return ms
}

// Sweep proves every compiled artifact of the zoo: core decode plans
// (the PPM partition and, for the encoding scenario, the auto-resolved
// strategy), repair plans (full and single-sector wanted sets), the
// xorplan program and optimised bit-matrix schedule of every plan
// matrix, and each code's delta-parity updater. seed feeds the random
// max-tolerance scenarios.
func Sweep(zoo []ZooCode, seed int64, extra int) ([]Finding, SweepStats) {
	var fs []Finding
	var stats SweepStats
	for _, zc := range zoo {
		c := zc.Code
		f := c.Field()
		stats.Codes++

		if u, err := core.NewUpdater(c); err != nil {
			fs = append(fs, Finding{Object: objUpdater, Detail: zc.Name, Pass: "structure", OpIndex: -1,
				Message: fmt.Sprintf("building updater: %v", err)})
		} else {
			fs = append(fs, stamp(VerifyUpdater(c, u), zc.Name)...)
			stats.Updaters++
		}

		planner := repair.NewPlanner(c)
		for _, sc := range Scenarios(c, seed, extra) {
			detail := fmt.Sprintf("%s faulty=%v", zc.Name, sc.Faulty)
			stats.Scenarios++

			strategies := []core.Strategy{core.StrategyPPM}
			if len(sc.FailedDisks) == 0 && len(sc.Faulty) == len(c.ParityPositions()) {
				strategies = append(strategies, core.StrategyAuto)
			}
			for _, strat := range strategies {
				plan, err := core.BuildPlan(c, sc, strat)
				if err != nil {
					fs = append(fs, Finding{Object: objDecodePlan, Detail: detail, Pass: "structure", OpIndex: -1,
						Message: fmt.Sprintf("building %v plan: %v", strat, err)})
					continue
				}
				fs = append(fs, stamp(VerifyDecodePlan(c, plan), detail)...)
				stats.Plans++

				for _, m := range sweepMatrices(plan) {
					prog, err := xorplan.CompileCached(f, m)
					if err != nil {
						fs = append(fs, Finding{Object: objXorProgram, Detail: detail, Pass: "structure", OpIndex: -1,
							Message: fmt.Sprintf("compiling %s program: %v", m.Dims(), err)})
					} else {
						fs = append(fs, stamp(VerifyProgram(f, m, prog), detail)...)
						stats.Programs++
					}
					fs = append(fs, stamp(VerifySchedule(f, m, bitmatrix.Expand(f, m).Optimize()), detail)...)
					stats.Schedules++
				}
			}

			wantedSets := [][]int{nil}
			if len(sc.Faulty) > 1 {
				wantedSets = append(wantedSets, []int{sc.Faulty[0]})
			}
			for _, wanted := range wantedSets {
				rp, err := planner.Plan(sc, wanted)
				if err != nil {
					fs = append(fs, Finding{Object: objRepairPlan, Detail: detail, Pass: "structure", OpIndex: -1,
						Message: fmt.Sprintf("building repair plan (wanted=%v): %v", wanted, err)})
					continue
				}
				fs = append(fs, stamp(VerifyRepairPlan(c, rp), detail)...)
				stats.Repairs++
			}
		}
	}
	return fs, stats
}
