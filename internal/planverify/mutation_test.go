package planverify

import (
	"math/rand"
	"testing"

	"ppm/internal/codes"
	"ppm/internal/core"
	"ppm/internal/gf"
	"ppm/internal/matrix"
	"ppm/internal/xorplan"
)

// The mutation harness measures the verifier's detection power: corrupt
// one op of a proven program, decide independently (by running both the
// mutant and the matrix on random words) whether the corruption changed
// semantics, and demand the verifier reject every semantically-changed
// mutant. The concrete interpreter is the ground truth here precisely
// so the verifier is never asked to grade its own homework.

// copyView deep-copies a program view so mutators can edit freely.
func copyView(v xorplan.View) xorplan.View {
	out := v
	out.Instrs = append([]xorplan.ViewInstr(nil), v.Instrs...)
	out.Outs = make([]xorplan.ViewOut, len(v.Outs))
	for i, o := range v.Outs {
		out.Outs[i] = o
		out.Outs[i].Srcs = append([]int32(nil), o.Srcs...)
	}
	return out
}

// randRef picks a random reference: an arena slot or an input column.
func randRef(rng *rand.Rand, v *xorplan.View) int32 {
	if v.Slots > 0 && rng.Intn(2) == 0 {
		return int32(rng.Intn(v.Slots))
	}
	return ^int32(rng.Intn(v.Cols))
}

// mutators corrupt one op of a view copy. Each returns false when the
// view has no op it applies to, or the edit happened to be an identity.
var mutators = []struct {
	name string
	fn   func(rng *rand.Rand, v *xorplan.View) bool
}{
	{"swap-operand", func(rng *rand.Rand, v *xorplan.View) bool {
		if len(v.Instrs) == 0 {
			return false
		}
		i := rng.Intn(len(v.Instrs))
		old := v.Instrs[i].A
		v.Instrs[i].A = randRef(rng, v)
		return v.Instrs[i].A != old
	}},
	{"drop-xor-src", func(rng *rand.Rand, v *xorplan.View) bool {
		var cands []int
		for i, o := range v.Outs {
			if len(o.Srcs) > 0 {
				cands = append(cands, i)
			}
		}
		if len(cands) == 0 {
			return false
		}
		i := cands[rng.Intn(len(cands))]
		j := rng.Intn(len(v.Outs[i].Srcs))
		v.Outs[i].Srcs = append(v.Outs[i].Srcs[:j], v.Outs[i].Srcs[j+1:]...)
		return true
	}},
	{"slot-off-by-one", func(rng *rand.Rand, v *xorplan.View) bool {
		if len(v.Instrs) == 0 || v.Slots < 2 {
			return false
		}
		i := rng.Intn(len(v.Instrs))
		v.Instrs[i].Dst = (v.Instrs[i].Dst + 1) % int32(v.Slots)
		return true
	}},
	{"read-off-by-one", func(rng *rand.Rand, v *xorplan.View) bool {
		if v.Slots < 2 {
			return false
		}
		var cands []int
		for i, o := range v.Outs {
			for _, s := range o.Srcs {
				if s >= 0 {
					cands = append(cands, i)
					break
				}
			}
		}
		if len(cands) == 0 {
			return false
		}
		i := cands[rng.Intn(len(cands))]
		for j, s := range v.Outs[i].Srcs {
			if s >= 0 {
				v.Outs[i].Srcs[j] = (s + 1) % int32(v.Slots)
				return true
			}
		}
		return false
	}},
	{"kind-toggle", func(rng *rand.Rand, v *xorplan.View) bool {
		if len(v.Instrs) == 0 {
			return false
		}
		i := rng.Intn(len(v.Instrs))
		if v.Instrs[i].Xtimes {
			v.Instrs[i].Xtimes = false
			v.Instrs[i].B = v.Instrs[i].A // x·a becomes a^a = 0
		} else {
			v.Instrs[i].Xtimes = true
		}
		return true
	}},
	{"derive-change", func(rng *rand.Rand, v *xorplan.View) bool {
		if len(v.Outs) == 0 {
			return false
		}
		i := rng.Intn(len(v.Outs))
		if v.Outs[i].From >= 0 {
			v.Outs[i].From = -1
			return true
		}
		if int32(i) == v.Outs[0].Dst || len(v.Outs) < 2 {
			return false
		}
		v.Outs[i].From = v.Outs[0].Dst
		return true
	}},
	{"drop-instr", func(rng *rand.Rand, v *xorplan.View) bool {
		if len(v.Instrs) == 0 {
			return false
		}
		i := rng.Intn(len(v.Instrs))
		v.Instrs = append(v.Instrs[:i], v.Instrs[i+1:]...)
		return true
	}},
}

// semanticallyChanged runs the mutant and the matrix oracle on random
// word vectors; a divergence (or a mutant too malformed to run) means
// the mutation changed program semantics.
func semanticallyChanged(f gf.Field, m *matrix.Matrix, v *xorplan.View, rng *rand.Rand) bool {
	mask := uint32(1)<<uint(f.W()) - 1
	for trial := 0; trial < 8; trial++ {
		in := make([]uint32, m.Cols())
		for j := range in {
			in[j] = rng.Uint32() & mask
		}
		got, ok := interpretView(f, v, in)
		if !ok {
			return true
		}
		for i := 0; i < m.Rows(); i++ {
			var want uint32
			for j := 0; j < m.Cols(); j++ {
				want ^= f.Mul(m.At(i, j), in[j])
			}
			if got[i] != want {
				return true
			}
		}
	}
	return false
}

// mutationMatrices collects a representative program population: every
// matrix of one SD decode plan plus dense random matrices per field.
func mutationMatrices(t *testing.T) []*matrix.Matrix {
	t.Helper()
	c, err := codes.NewPublishedSD(1)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := codes.NewScenario(c, []int{1, 8, 14, 20})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.BuildPlan(c, sc, core.StrategyPPM)
	if err != nil {
		t.Fatal(err)
	}
	ms := sweepMatrices(plan)
	rng := rand.New(rand.NewSource(7))
	for _, w := range []int{8, 16} {
		f, err := gf.ForWord(w)
		if err != nil {
			t.Fatal(err)
		}
		m := matrix.New(f, 4, 6)
		for i := 0; i < m.Rows(); i++ {
			for j := 0; j < m.Cols(); j++ {
				m.Set(i, j, rng.Uint32()&(1<<uint(w)-1))
			}
		}
		ms = append(ms, m)
	}
	return ms
}

// TestMutationKillRate is the verifier's teeth: across every mutator
// and program, at least 95% of semantically-changed single-op mutants
// must be rejected. The symbolic domain is exact, so the expected rate
// is 100% — the bar leaves slack only for future mutator additions.
func TestMutationKillRate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	type tally struct{ changed, killed, neutral int }
	table := make(map[string]*tally)
	totalChanged, totalKilled := 0, 0

	for _, m := range mutationMatrices(t) {
		f := m.Field()
		prog, err := xorplan.Compile(f, m)
		if err != nil {
			t.Fatalf("compiling %s: %v", m.Dims(), err)
		}
		orig := prog.View()
		if fs := VerifyProgramView(f, m, &orig); len(fs) != 0 {
			t.Fatalf("pristine program rejected: %v", fs)
		}
		for _, mut := range mutators {
			tl := table[mut.name]
			if tl == nil {
				tl = &tally{}
				table[mut.name] = tl
			}
			for attempt := 0; attempt < 25; attempt++ {
				v := copyView(orig)
				if !mut.fn(rng, &v) {
					continue
				}
				if !semanticallyChanged(f, m, &v, rng) {
					tl.neutral++
					continue
				}
				tl.changed++
				totalChanged++
				if len(VerifyProgramView(f, m, &v)) > 0 {
					tl.killed++
					totalKilled++
				}
			}
		}
	}

	for name, tl := range table {
		t.Logf("mutator %-16s changed=%3d killed=%3d neutral=%3d", name, tl.changed, tl.killed, tl.neutral)
		if tl.changed > 0 && tl.killed < tl.changed {
			t.Errorf("mutator %s: %d/%d semantically-changed mutants survived verification",
				name, tl.changed-tl.killed, tl.changed)
		}
	}
	if totalChanged == 0 {
		t.Fatal("no semantically-changed mutants generated")
	}
	if rate := float64(totalKilled) / float64(totalChanged); rate < 0.95 {
		t.Fatalf("mutation kill rate %.3f below 0.95 (%d/%d)", rate, totalKilled, totalChanged)
	} else {
		t.Logf("mutation kill rate %.3f (%d/%d)", rate, totalKilled, totalChanged)
	}
}

// TestMutantDiagnosisPinpointsOp spot-checks the diagnostic contract:
// a corrupted op is reported with a usable op index, not just "wrong".
func TestMutantDiagnosisPinpointsOp(t *testing.T) {
	f, err := gf.ForWord(8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	m := matrix.New(f, 3, 5)
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			m.Set(i, j, rng.Uint32()&0xff)
		}
	}
	prog, err := xorplan.Compile(f, m)
	if err != nil {
		t.Fatal(err)
	}
	v := prog.View()
	if len(v.Outs) == 0 || len(v.Outs[0].Srcs) == 0 {
		t.Skip("program shape too degenerate to corrupt an out op")
	}
	v.Outs[0].Srcs = v.Outs[0].Srcs[:len(v.Outs[0].Srcs)-1]
	fs := VerifyProgramView(f, m, &v)
	if len(fs) == 0 {
		t.Fatal("dropped XOR source went unreported")
	}
	found := false
	for _, fd := range fs {
		if fd.OpIndex >= 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no finding carries an op index: %v", fs)
	}
	t.Logf("diagnosis: %s", fs[0])
}
