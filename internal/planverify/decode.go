package planverify

import (
	"fmt"

	"ppm/internal/codes"
	"ppm/internal/core"
	"ppm/internal/gf"
	"ppm/internal/kernel"
	"ppm/internal/matrix"
)

// Decode plans and repair plans are proven through row-space
// membership, not matrix comparison, because many distinct recovery
// expressions are simultaneously correct (any basis of H's equations
// works). A plan recovers faulty sector c as a linear functional
//
//	c = Σ_s v[s] · sector_s        (s over the sectors it reads)
//
// and that expression is correct on EVERY codeword — not just sampled
// ones — iff the residual e_c + Σ v[s]·e_s is a GF-linear combination
// of H's rows: each parity-check row vanishes on codewords, so any
// row-space member does, and conversely a functional vanishing on the
// whole code lies in the row space (the code is exactly ker H). The
// rank test below is that statement made executable.

const (
	objDecodePlan = "decode-plan"
	objUpdater    = "updater"
)

// inRowSpace reports whether the residual vector lies in the row space
// of h: rank(h) must not grow when the residual is appended.
func inRowSpace(h *matrix.Matrix, residual []uint32) bool {
	rows := make([][]uint32, 0, h.Rows()+1)
	for i := 0; i < h.Rows(); i++ {
		rows = append(rows, h.Row(i))
	}
	base := matrix.FromRows(h.Field(), rows).Rank()
	rows = append(rows, residual)
	return matrix.FromRows(h.Field(), rows).Rank() == base
}

// decodeState accumulates the recovery expressions a plan builds up
// stage by stage: expr[c] is non-nil once sector c has been recovered,
// holding its coefficient vector over the originally surviving sectors.
type decodeState struct {
	f        gf.Field
	h        *matrix.Matrix
	total    int
	faulty   map[int]bool
	expr     map[int][]uint32
	findings []Finding
}

func (st *decodeState) reportf(pass string, op int, format string, args ...interface{}) {
	st.findings = append(st.findings, Finding{Object: objDecodePlan, Pass: pass, OpIndex: op,
		Message: fmt.Sprintf(format, args...)})
}

// available resolves a survivor reference at one plan stage: originally
// surviving sectors are themselves; faulty sectors are usable only when
// an earlier stage recovered them and the stage is allowed to consume
// recovered outputs (the merging H_rest stage is, parallel groups are
// not — they run concurrently and must not read each other's outputs).
func (st *decodeState) available(s, op int, allowRecovered bool) []uint32 {
	if s < 0 || s >= st.total {
		st.reportf("bounds", op, "survivor column %d outside the %d-sector stripe", s, st.total)
		return make([]uint32, st.total)
	}
	if !st.faulty[s] {
		v := make([]uint32, st.total)
		v[s] = 1
		return v
	}
	if e := st.expr[s]; e != nil {
		if !allowRecovered {
			st.reportf("alias", op, "parallel group reads faulty sector %d, recovered only by a concurrent stage", s)
		}
		return e
	}
	st.reportf("alias", op, "stage reads faulty sector %d before any stage recovers it", s)
	return make([]uint32, st.total)
}

// effectiveMatrix returns the recovery matrix one stage applies under
// its sequence: G for MatrixFirst, the Finv*S product for Normal.
func effectiveMatrix(sd *core.SubDecode) *matrix.Matrix {
	if sd.Seq == kernel.MatrixFirst {
		return sd.G
	}
	if sd.Finv != nil && sd.S != nil {
		return sd.Finv.Mul(sd.S)
	}
	return nil
}

// subDecode verifies one matrix-decoding stage of a plan. op indexes
// the stage for diagnostics (groups in order, then rest/whole).
func (st *decodeState) subDecode(sd *core.SubDecode, op int, allowRecovered bool) {
	r := effectiveMatrix(sd)
	if r == nil {
		st.reportf("structure", op, "stage carries no matrix for sequence %v", sd.Seq)
		return
	}
	if sd.G != nil && sd.Finv != nil && sd.S != nil && !sd.G.Equal(sd.Finv.Mul(sd.S)) {
		// The two sequences must compute the same algebra; a divergent G
		// means the MatrixFirst and Normal paths decode differently.
		st.reportf("structure", op, "stage's G is not Finv * S: the two sequences disagree")
	}
	if r.Rows() != len(sd.FaultyCols) || r.Cols() != len(sd.SurvivorCols) {
		st.reportf("structure", op, "stage matrix is %dx%d for %d faulty and %d survivor columns",
			r.Rows(), r.Cols(), len(sd.FaultyCols), len(sd.SurvivorCols))
		return
	}
	seen := make(map[int]bool, len(sd.SurvivorCols))
	exprs := make([][]uint32, len(sd.SurvivorCols))
	for j, s := range sd.SurvivorCols {
		if seen[s] {
			st.reportf("structure", op, "stage reads survivor column %d twice", s)
		}
		seen[s] = true
		exprs[j] = st.available(s, op, allowRecovered)
	}
	for i, c := range sd.FaultyCols {
		if c < 0 || c >= st.total {
			st.reportf("bounds", op, "faulty column %d outside the %d-sector stripe", c, st.total)
			continue
		}
		if !st.faulty[c] {
			st.reportf("structure", op, "stage recovers sector %d, which is not faulty", c)
			continue
		}
		if st.expr[c] != nil {
			st.reportf("structure", op, "sector %d is recovered twice", c)
			continue
		}
		vec := make([]uint32, st.total)
		for j := range sd.SurvivorCols {
			if a := r.At(i, j); a != 0 {
				for t, e := range exprs[j] {
					if e != 0 {
						vec[t] ^= st.f.Mul(a, e)
					}
				}
			}
		}
		st.expr[c] = vec
		residual := append([]uint32(nil), vec...)
		residual[c] ^= 1
		if !inRowSpace(st.h, residual) {
			st.reportf("symbolic", op,
				"sector %d's recovery expression does not lie in H's row space: it decodes wrongly on some codeword", c)
		}
	}
}

// stageCost recomputes one stage's mult_XORs from the matrices its
// sequence applies — the number Costs.Chosen and Stats.MultXORs
// accounting are built on.
func stageCost(sd *core.SubDecode) int64 {
	if sd.Seq == kernel.MatrixFirst {
		if sd.G != nil {
			return int64(sd.G.NNZ())
		}
		return 0
	}
	if sd.Finv != nil && sd.S != nil {
		return int64(sd.Finv.NNZ() + sd.S.NNZ())
	}
	return 0
}

// VerifyDecodePlan proves a built core plan: every stage's recovery
// expression is valid on every codeword, the stages together recover
// exactly the scenario's faulty sectors, parallel groups never read
// each other's outputs, and the plan's Chosen cost recomputes from the
// matrices it will actually apply.
func VerifyDecodePlan(c codes.Code, p *core.Plan) []Finding {
	st := &decodeState{
		f:      c.Field(),
		h:      c.ParityCheck(),
		total:  codes.TotalSectors(c),
		faulty: p.Scenario.FaultySet(),
		expr:   make(map[int][]uint32),
	}

	var cost int64
	stage := 0
	if p.Whole != nil {
		if len(p.Groups) > 0 || p.Rest != nil {
			st.reportf("structure", -1, "plan mixes a whole-matrix stage with PPM stages")
		}
		st.subDecode(&p.Whole.SubDecode, stage, false)
		cost += stageCost(&p.Whole.SubDecode)
	} else {
		for i := range p.Groups {
			st.subDecode(&p.Groups[i], stage, false)
			cost += stageCost(&p.Groups[i])
			stage++
		}
		if p.Rest != nil {
			st.subDecode(p.Rest, stage, true)
			cost += stageCost(p.Rest)
		}
	}

	for _, c := range p.Scenario.Faulty {
		if st.expr[c] == nil {
			st.reportf("structure", -1, "faulty sector %d is never recovered by any stage", c)
		}
	}
	if p.Costs.Chosen != cost {
		st.reportf("stats", -1, "plan predicts %d mult_XORs, its matrices perform %d", p.Costs.Chosen, cost)
	}
	return st.findings
}

// VerifyUpdater proves the delta-parity updater: patching data sector j
// by δ applies parity_p ^= Coeff·δ for each term, so the stripe's
// change vector is e_j + Σ Coeff·e_p, and the stripe stays a codeword
// for every δ iff H times that vector is zero.
func VerifyUpdater(c codes.Code, u *core.Updater) []Finding {
	var fs []Finding
	report := func(pass string, format string, args ...interface{}) {
		fs = append(fs, Finding{Object: objUpdater, Pass: pass, OpIndex: -1,
			Message: fmt.Sprintf(format, args...)})
	}
	h := c.ParityCheck()
	total := codes.TotalSectors(c)
	parity := make(map[int]bool, len(c.ParityPositions()))
	for _, p := range c.ParityPositions() {
		parity[p] = true
	}

	data := u.DataSectors()
	covered := make(map[int]bool, len(data))
	for _, j := range data {
		covered[j] = true
	}
	for _, j := range codes.DataPositions(c) {
		if !covered[j] {
			report("structure", "data sector %d has no delta-update column", j)
		}
	}

	for _, j := range data {
		if j < 0 || j >= total || parity[j] {
			report("bounds", "updater treats sector %d as data", j)
			continue
		}
		terms, err := u.Terms(j)
		if err != nil {
			report("structure", "terms for data sector %d: %v", j, err)
			continue
		}
		if nnz, err := u.UpdateCost(j); err != nil || nnz != len(terms) {
			report("stats", "data sector %d reports update cost %d for %d terms", j, nnz, len(terms))
		}
		change := make([]uint32, total)
		change[j] = 1
		seen := make(map[int]bool, len(terms))
		for _, t := range terms {
			switch {
			case t.Parity < 0 || t.Parity >= total:
				report("bounds", "data sector %d patches sector %d outside the stripe", j, t.Parity)
			case !parity[t.Parity]:
				report("structure", "data sector %d patches sector %d, which is not parity", j, t.Parity)
			case seen[t.Parity]:
				report("structure", "data sector %d patches parity %d twice", j, t.Parity)
			case t.Coeff == 0:
				report("structure", "data sector %d carries a zero-coefficient patch of parity %d", j, t.Parity)
			default:
				seen[t.Parity] = true
				change[t.Parity] ^= t.Coeff
			}
		}
		for i, hv := range h.MulVec(change) {
			if hv != 0 {
				report("symbolic",
					"updating data sector %d breaks parity-check row %d: the patched stripe is not a codeword", j, i)
				break
			}
		}
	}
	return fs
}
