package planverify

import (
	"fmt"

	"ppm/internal/bitmatrix"
	"ppm/internal/gf"
	"ppm/internal/matrix"
)

// Set schedules live over GF(2): every source (input packet or CSE
// temp) is a bitset over the InCount inputs, temps XOR two earlier
// sources, ops XOR sources into rows. The symbolic walk mirrors
// the xorplan one with []uint64 bitsets as the coefficient domain.

const objSetSchedule = "set-schedule"

type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << uint(i%64) }
func (b bitset) has(i int) bool { return b[i/64]>>uint(i%64)&1 == 1 }
func (b bitset) xor(o bitset) {
	for i := range b {
		b[i] ^= o[i]
	}
}
func (b bitset) clone() bitset { return append(bitset(nil), b...) }
func (b bitset) eq(o bitset) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

// firstDiff returns the lowest bit index where the two sets differ.
func (b bitset) firstDiff(o bitset) int {
	for i := range b {
		if d := b[i] ^ o[i]; d != 0 {
			for j := 0; j < 64; j++ {
				if d>>uint(j)&1 == 1 {
					return i*64 + j
				}
			}
		}
	}
	return -1
}

// VerifySchedule proves an optimised bit-matrix schedule equivalent to
// the plain expansion of its source coefficient matrix: every output
// bit-packet must XOR together exactly the input packets the
// unoptimised BitMatrix.Apply would.
func VerifySchedule(f gf.Field, m *matrix.Matrix, s *bitmatrix.Schedule) []Finding {
	bm := bitmatrix.Expand(f, m)
	truth := make([][]int, bm.BitRows())
	for i := range truth {
		truth[i] = bm.BitRow(i)
	}
	return VerifySetSchedule(s.Program(), truth)
}

// VerifySetSchedule proves a scheduled XOR program equal to its ground
// truth: truth[i] lists the input source ids (all < InCount) whose XOR
// row i must compute. Structural passes ride the same walk: temp
// ordering, dead temps, write-once rows, derivative alias discipline
// and the XORCount metric.
func VerifySetSchedule(p *bitmatrix.SetSchedule, truth [][]int) []Finding {
	var fs []Finding
	report := func(pass string, op int, format string, args ...interface{}) {
		fs = append(fs, Finding{Object: objSetSchedule, Pass: pass, OpIndex: op,
			Message: fmt.Sprintf(format, args...)})
	}
	if p.Rows != len(truth) {
		report("structure", -1, "schedule computes %d rows, ground truth has %d", p.Rows, len(truth))
		return fs
	}
	if p.InCount < 0 {
		report("structure", -1, "negative input count %d", p.InCount)
		return fs
	}

	// Materialise temp bitsets in order. A temp may reference inputs and
	// strictly earlier temps only — a forward reference reads a packet
	// the executor has not written yet (stale pooled memory at runtime).
	temps := make([]bitset, len(p.Temps))
	tempUsed := make([]bool, len(p.Temps))
	source := func(id, op int, kind string) bitset {
		switch {
		case id < 0 || id >= p.InCount+len(p.Temps):
			report("bounds", op, "%s references source %d, outside %d inputs and %d temps",
				kind, id, p.InCount, len(p.Temps))
		case id < p.InCount:
			b := newBitset(p.InCount)
			b.set(id)
			return b
		case temps[id-p.InCount] == nil:
			report("liveness", op, "%s reads temp %d before it is materialised", kind, id-p.InCount)
		default:
			tempUsed[id-p.InCount] = true
			return temps[id-p.InCount]
		}
		return newBitset(p.InCount)
	}
	for t, def := range p.Temps {
		b := source(def[0], -1, fmt.Sprintf("temp %d", t)).clone()
		b.xor(source(def[1], -1, fmt.Sprintf("temp %d", t)))
		temps[t] = b
	}

	rows := make([]bitset, p.Rows)
	for oi, op := range p.Ops {
		if op.Dst < 0 || op.Dst >= p.Rows {
			report("bounds", oi, "op writes row %d of %d", op.Dst, p.Rows)
			continue
		}
		if rows[op.Dst] != nil {
			report("structure", oi, "row %d is written twice", op.Dst)
			continue
		}
		b := newBitset(p.InCount)
		if op.From != -1 {
			switch {
			case op.From < 0 || op.From >= p.Rows:
				report("bounds", oi, "op derives from row %d of %d", op.From, p.Rows)
			case op.From == op.Dst:
				report("alias", oi, "op derives row %d from itself", op.Dst)
			case rows[op.From] == nil:
				report("alias", oi, "op derives from row %d before it is written", op.From)
			default:
				b = rows[op.From].clone()
			}
		}
		for _, s := range op.Srcs {
			b.xor(source(s, oi, "op"))
		}
		rows[op.Dst] = b

		want := newBitset(p.InCount)
		bad := false
		for _, c := range truth[op.Dst] {
			if c < 0 || c >= p.InCount {
				report("structure", oi, "ground truth for row %d references input %d of %d", op.Dst, c, p.InCount)
				bad = true
				break
			}
			want.set(c)
		}
		if !bad && !b.eq(want) {
			d := b.firstDiff(want)
			verb := "is missing"
			if b.has(d) {
				verb = "spuriously includes"
			}
			report("symbolic", oi, "row %d %s input packet %d", op.Dst, verb, d)
		}
	}
	for r, b := range rows {
		if b == nil {
			report("structure", -1, "row %d is never written", r)
		}
	}
	for t, used := range tempUsed {
		if temps[t] != nil && !used {
			report("liveness", -1, "temp %d is materialised but never read", t)
		}
	}

	// XORCount metric: 2 per temp (copy + XOR), |Srcs| per op, +1 per
	// derivative op for the parent copy — the number the xorplan cost
	// model and the schedule-quality benchmarks consume.
	want := 2 * len(p.Temps)
	for _, op := range p.Ops {
		want += len(op.Srcs)
		if op.From >= 0 {
			want++
		}
	}
	if p.XORCount != want {
		report("stats", -1, "schedule reports %d XORs, its ops perform %d", p.XORCount, want)
	}
	return fs
}
