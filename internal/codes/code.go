// Package codes defines the erasure codes the PPM paper studies as
// parity-check-matrix instances: the asymmetric-parity SD, PMDS and LRC
// codes that PPM accelerates, and the symmetric-parity RS baseline it is
// compared against (Figure 8).
//
// Every code is exposed the same way — a parity-check matrix H over
// GF(2^w) with one column per sector of the stripe (column i*n + j is
// the sector in stripe row i on disk j) plus the set of parity
// positions — so both the traditional decoder and PPM operate on any of
// them uniformly, exactly as §II-B describes.
package codes

import (
	"fmt"
	"sort"

	"ppm/internal/gf"
	"ppm/internal/matrix"
)

// Code is an erasure-code instance over one stripe.
type Code interface {
	// Name identifies the instance, e.g. "SD^{2,2}_{6,4}(8|1,42,26,61)".
	Name() string
	// Field is the Galois field the coefficients live in.
	Field() gf.Field
	// NumStrips returns n, the number of disks (strips) in the stripe.
	NumStrips() int
	// NumRows returns r, the number of sectors per strip. Codes defined
	// on whole blocks (LRC, and RS viewed per-block) may have r == 1.
	NumRows() int
	// ParityCheck returns H, with NumRows()*... — precisely RH rows and
	// NumStrips()*NumRows() columns. The returned matrix is shared;
	// callers must not modify it.
	ParityCheck() *matrix.Matrix
	// ParityPositions returns the sorted global sector indices that hold
	// redundancy. Encoding is decoding with exactly these as erasures.
	ParityPositions() []int
}

// TotalSectors returns the number of sectors (columns of H) in a stripe.
func TotalSectors(c Code) int { return c.NumStrips() * c.NumRows() }

// DataPositions returns the sorted global indices not in ParityPositions.
func DataPositions(c Code) []int {
	parity := make(map[int]bool, len(c.ParityPositions()))
	for _, p := range c.ParityPositions() {
		parity[p] = true
	}
	var data []int
	for i := 0; i < TotalSectors(c); i++ {
		if !parity[i] {
			data = append(data, i)
		}
	}
	return data
}

// Scenario is a failure pattern over one stripe: the set of unreadable
// sectors. FailedDisks and Z are informational (they describe how the
// pattern was generated, mirroring the paper's m faulty disks plus s
// faulty sectors confined to z rows).
type Scenario struct {
	// Faulty holds the global sector indices that were lost, sorted.
	Faulty []int
	// FailedDisks lists whole-disk failures contributing to Faulty.
	FailedDisks []int
	// Z is the number of distinct rows holding the additional sector
	// failures (0 if there are none).
	Z int
}

// NewScenario builds a scenario from an arbitrary set of faulty sector
// indices, validating them against the code's geometry.
func NewScenario(c Code, faulty []int) (Scenario, error) {
	total := TotalSectors(c)
	seen := make(map[int]bool, len(faulty))
	sorted := append([]int(nil), faulty...)
	sort.Ints(sorted)
	for _, idx := range sorted {
		if idx < 0 || idx >= total {
			return Scenario{}, fmt.Errorf("codes: faulty sector %d out of range [0,%d)", idx, total)
		}
		if seen[idx] {
			return Scenario{}, fmt.Errorf("codes: duplicate faulty sector %d", idx)
		}
		seen[idx] = true
	}
	return Scenario{Faulty: sorted}, nil
}

// FaultySet returns the scenario's faulty indices as a membership set.
func (sc Scenario) FaultySet() map[int]bool {
	set := make(map[int]bool, len(sc.Faulty))
	for _, i := range sc.Faulty {
		set[i] = true
	}
	return set
}

// EncodingScenario returns the scenario whose erasures are exactly the
// code's parity positions: solving it computes the parity content from
// the data content ("the encoding process of an erasure code is a
// special case of the decoding process", §II-B).
func EncodingScenario(c Code) Scenario {
	return Scenario{Faulty: append([]int(nil), c.ParityPositions()...)}
}

// Decodable reports whether the scenario is recoverable by this code
// instance: the faulty-column sub-matrix F must have full column rank
// (for square F, invertibility).
func Decodable(c Code, sc Scenario) bool {
	h := c.ParityCheck()
	if len(sc.Faulty) == 0 {
		return true
	}
	if len(sc.Faulty) > h.Rows() {
		return false
	}
	f := h.SelectColumns(sc.Faulty)
	return f.Rank() == len(sc.Faulty)
}

// Validate checks structural invariants common to all instances:
// H has the right shape, parity positions are in range and distinct,
// and the encoding scenario is solvable (its F sub-matrix has full
// column rank). Constructors call this before returning an instance.
func Validate(c Code) error {
	h := c.ParityCheck()
	total := TotalSectors(c)
	if h.Cols() != total {
		return fmt.Errorf("codes: %s: H has %d columns, want %d", c.Name(), h.Cols(), total)
	}
	pp := c.ParityPositions()
	if len(pp) != h.Rows() {
		return fmt.Errorf("codes: %s: %d parity positions but H has %d rows (encode would be over/under-determined)",
			c.Name(), len(pp), h.Rows())
	}
	seen := make(map[int]bool, len(pp))
	for _, p := range pp {
		if p < 0 || p >= total {
			return fmt.Errorf("codes: %s: parity position %d out of range", c.Name(), p)
		}
		if seen[p] {
			return fmt.Errorf("codes: %s: duplicate parity position %d", c.Name(), p)
		}
		seen[p] = true
	}
	if !Decodable(c, EncodingScenario(c)) {
		return fmt.Errorf("codes: %s: parity columns of H are singular; instance cannot encode", c.Name())
	}
	return nil
}

// sectorIndex converts (row, disk) to the global column index.
func sectorIndex(n, row, disk int) int { return row*n + disk }
