package codes

import (
	"fmt"
	"math/rand"
	"sort"

	"ppm/internal/gf"
	"ppm/internal/matrix"
)

// EVENODD is the classic RAID-6 code of Blaum, Brady, Bruck and Menon
// (IEEE ToC 1995), which the paper lists among the symmetric-parity
// codes PPM's asymmetric targets are contrasted with. It is included as
// an additional XOR-only baseline: every parity-check coefficient is 0
// or 1, so decoding exercises the kernel's pure-XOR fast path.
//
// Geometry: p must be prime; the stripe has n = p + 2 disks and
// r = p - 1 rows. Disk p holds row parity, disk p+1 holds diagonal
// parity. With the adjuster ("EVENODD") diagonal S folded in, the
// diagonal parity equations become, over GF(2):
//
//	D_d = S ⊕ ⊕_{i+j ≡ d (mod p)} b(i, j)     0 ≤ d < p-1, j < p
//	S   = ⊕_{i+j ≡ p-1 (mod p)} b(i, j)
//
// As parity-check rows this folds S into each diagonal equation, giving
// rows that cover diagonal d plus the whole adjuster diagonal p-1.
type EVENODD struct {
	p      int
	field  gf.Field
	h      *matrix.Matrix
	parity []int
}

var _ Code = (*EVENODD)(nil)

// NewEVENODD constructs the EVENODD instance for prime p >= 3.
func NewEVENODD(p int) (*EVENODD, error) {
	if p < 3 || !isPrime(p) {
		return nil, fmt.Errorf("codes: EVENODD needs a prime p >= 3, got %d", p)
	}
	e := &EVENODD{p: p, field: gf.GF8}
	e.h = e.buildParityCheck()
	n := p + 2
	for i := 0; i < p-1; i++ {
		e.parity = append(e.parity, sectorIndex(n, i, p), sectorIndex(n, i, p+1))
	}
	sort.Ints(e.parity)
	if err := Validate(e); err != nil {
		return nil, err
	}
	return e, nil
}

func isPrime(v int) bool {
	if v < 2 {
		return false
	}
	for d := 2; d*d <= v; d++ {
		if v%d == 0 {
			return false
		}
	}
	return true
}

func (e *EVENODD) buildParityCheck() *matrix.Matrix {
	p := e.p
	n := p + 2
	r := p - 1
	h := matrix.New(e.field, 2*r, n*r)

	// Row-parity equations: row i of the stripe XORs to zero across
	// data disks 0..p-1 and the row-parity disk p.
	for i := 0; i < r; i++ {
		for j := 0; j < p; j++ {
			h.Set(i, sectorIndex(n, i, j), 1)
		}
		h.Set(i, sectorIndex(n, i, p), 1)
	}

	// Diagonal-parity equations with the adjuster folded in. The
	// imaginary row p-1 is all zeros, so cells with i == p-1 are
	// skipped. XOR (GF(2) addition) makes double-counted cells cancel,
	// which matrix entries over GF(2^8)'s {0,1} reproduce by toggling.
	for d := 0; d < r; d++ {
		row := r + d
		toggle := func(i, j int) {
			col := sectorIndex(n, i, j)
			h.Set(row, col, h.At(row, col)^1)
		}
		for j := 0; j < p; j++ {
			if i := (d - j + p) % p; i < r {
				toggle(i, j) // diagonal d
			}
			if i := (p - 1 - j + p) % p; i < r {
				toggle(i, j) // the adjuster diagonal S
			}
		}
		toggle(d, p+1)
	}
	return h
}

// Name reports the instance, e.g. "EVENODD(p=5)".
func (e *EVENODD) Name() string { return fmt.Sprintf("EVENODD(p=%d)", e.p) }

func (e *EVENODD) Field() gf.Field             { return e.field }
func (e *EVENODD) NumStrips() int              { return e.p + 2 }
func (e *EVENODD) NumRows() int                { return e.p - 1 }
func (e *EVENODD) ParityCheck() *matrix.Matrix { return e.h }
func (e *EVENODD) ParityPositions() []int      { return append([]int(nil), e.parity...) }
func (e *EVENODD) P() int                      { return e.p }

// WorstCaseScenario fails two random disks — the failure class EVENODD
// is designed for.
func (e *EVENODD) WorstCaseScenario(rng *rand.Rand) (Scenario, error) {
	n := e.p + 2
	disks := rng.Perm(n)[:2]
	sort.Ints(disks)
	var faulty []int
	for i := 0; i < e.p-1; i++ {
		for _, d := range disks {
			faulty = append(faulty, sectorIndex(n, i, d))
		}
	}
	sort.Ints(faulty)
	sc := Scenario{Faulty: faulty, FailedDisks: disks}
	if !Decodable(e, sc) {
		return Scenario{}, fmt.Errorf("codes: %s: disks %v not decodable (construction bug)", e.Name(), disks)
	}
	return sc, nil
}
