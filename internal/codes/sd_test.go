package codes

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"ppm/internal/gf"
)

// paperSD returns the worked example SD^{1,1}_{4,4}(8|1,2) of Figure 2.
func paperSD(t *testing.T) *SD {
	t.Helper()
	sd, err := NewSDWithCoefficients(4, 4, 1, 1, gf.GF8, []uint32{1, 2})
	if err != nil {
		t.Fatalf("building paper example: %v", err)
	}
	return sd
}

// TestSDPaperExampleH pins H for SD^{1,1}_{4,4}(8|1,2) to the matrix
// printed in Figure 2: four disk-parity rows (ones over each stripe
// row's four sectors) plus the sector row 2^0 .. 2^15.
func TestSDPaperExampleH(t *testing.T) {
	sd := paperSD(t)
	h := sd.ParityCheck()
	if h.Rows() != 5 || h.Cols() != 16 {
		t.Fatalf("H is %s, want 5x16", h.Dims())
	}
	for i := 0; i < 4; i++ {
		for c := 0; c < 16; c++ {
			want := uint32(0)
			if c >= i*4 && c < (i+1)*4 {
				want = 1
			}
			if h.At(i, c) != want {
				t.Fatalf("H[%d][%d] = %d, want %d", i, c, h.At(i, c), want)
			}
		}
	}
	f := gf.GF8
	for c := 0; c < 16; c++ {
		if h.At(4, c) != f.Exp(2, c) {
			t.Fatalf("H[4][%d] = %d, want 2^%d = %d", c, h.At(4, c), c, f.Exp(2, c))
		}
	}
	// Spot-check the figure's literal powers of 2 over GF(2^8)/0x11D.
	if h.At(4, 8) != 29 { // 2^8 = 0x11D ^ 0x100 = 0x1D
		t.Fatalf("H[4][8] = %d, want 29", h.At(4, 8))
	}
}

func TestSDPaperExampleName(t *testing.T) {
	sd := paperSD(t)
	if got := sd.Name(); got != "SD^{1,1}_{4,4}(8|1,2)" {
		t.Fatalf("Name = %q", got)
	}
}

func TestSDParityPositions(t *testing.T) {
	sd := paperSD(t)
	// m=1: disk 3 in every row; s=1: last data sector = row 3, disk 2.
	want := []int{3, 7, 11, 14, 15}
	if got := sd.ParityPositions(); !reflect.DeepEqual(got, want) {
		t.Fatalf("parity positions = %v, want %v", got, want)
	}
	data := DataPositions(sd)
	if len(data) != 16-5 {
		t.Fatalf("data positions = %v", data)
	}
	for _, d := range data {
		for _, p := range want {
			if d == p {
				t.Fatalf("position %d is both data and parity", d)
			}
		}
	}
}

func TestSDParityPositionsSpillRows(t *testing.T) {
	// n=4, m=3 leaves one data disk; s=3 coding sectors must spill
	// across three rows of that disk.
	sd, err := NewSD(4, 4, 3, 3)
	if err != nil {
		t.Fatalf("NewSD: %v", err)
	}
	pp := sd.ParityPositions()
	if len(pp) != 3*4+3 {
		t.Fatalf("got %d parity positions, want 15", len(pp))
	}
	wantSectors := []int{sectorIndex(4, 3, 0), sectorIndex(4, 2, 0), sectorIndex(4, 1, 0)}
	sort.Ints(wantSectors)
	set := map[int]bool{}
	for _, p := range pp {
		set[p] = true
	}
	for _, w := range wantSectors {
		if !set[w] {
			t.Fatalf("coding sector %d missing from parity positions %v", w, pp)
		}
	}
}

func TestSDPaperFailureScenarioDecodable(t *testing.T) {
	sd := paperSD(t)
	// Figure 2's failure set.
	sc, err := NewScenario(sd, []int{2, 6, 10, 13, 14})
	if err != nil {
		t.Fatal(err)
	}
	if !Decodable(sd, sc) {
		t.Fatal("paper's failure scenario not decodable")
	}
}

func TestSDWorstCaseScenarioShape(t *testing.T) {
	sd := paperSD(t)
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		sc, err := sd.WorstCaseScenario(rng, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(sc.FailedDisks) != 1 {
			t.Fatalf("failed disks = %v", sc.FailedDisks)
		}
		if len(sc.Faulty) != sd.NumRows()+sd.S() {
			t.Fatalf("faulty count = %d, want %d", len(sc.Faulty), sd.NumRows()+sd.S())
		}
		// All of the failed disk's sectors must be in the set.
		set := sc.FaultySet()
		d := sc.FailedDisks[0]
		for i := 0; i < sd.NumRows(); i++ {
			if !set[sectorIndex(sd.NumStrips(), i, d)] {
				t.Fatalf("disk %d sector in row %d missing", d, i)
			}
		}
	}
}

func TestSDWorstCaseZSpread(t *testing.T) {
	sd, err := NewSD(8, 8, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(62))
	for z := 1; z <= 3; z++ {
		sc, err := sd.WorstCaseScenario(rng, z)
		if err != nil {
			t.Fatalf("z=%d: %v", z, err)
		}
		// Sector failures (not on failed disks) must span exactly z rows.
		failed := map[int]bool{}
		for _, d := range sc.FailedDisks {
			failed[d] = true
		}
		rows := map[int]bool{}
		for _, idx := range sc.Faulty {
			if !failed[idx%sd.NumStrips()] {
				rows[idx/sd.NumStrips()] = true
			}
		}
		if len(rows) != z {
			t.Fatalf("z=%d: sector failures span %d rows", z, len(rows))
		}
	}
}

func TestSDWorstCaseZValidation(t *testing.T) {
	sd := paperSD(t)
	rng := rand.New(rand.NewSource(63))
	for _, z := range []int{0, 2, 5} {
		if _, err := sd.WorstCaseScenario(rng, z); err == nil {
			t.Errorf("z=%d accepted for s=1", z)
		}
	}
}

func TestNewSDAutoFieldSwitch(t *testing.T) {
	// n*r = 64 fits GF(2^8); n*r = 16*16 = 256 needs GF(2^16).
	small, err := NewSD(8, 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if small.Field().W() != 8 {
		t.Fatalf("8x8 SD got w=%d, want 8", small.Field().W())
	}
	big, err := NewSD(16, 16, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if big.Field().W() != 16 {
		t.Fatalf("16x16 SD got w=%d, want 16", big.Field().W())
	}
}

func TestNewSDSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("coefficient search sweep")
	}
	rng := rand.New(rand.NewSource(64))
	for _, n := range []int{4, 6, 9} {
		for _, m := range []int{1, 2} {
			for _, s := range []int{1, 2} {
				sd, err := NewSD(n, 8, m, s)
				if err != nil {
					t.Fatalf("NewSD(%d,8,%d,%d): %v", n, m, s, err)
				}
				for z := 1; z <= s; z++ {
					if _, err := sd.WorstCaseScenario(rng, z); err != nil {
						t.Fatalf("%s z=%d: %v", sd.Name(), z, err)
					}
				}
			}
		}
	}
}

func TestSDParamValidation(t *testing.T) {
	cases := []struct{ n, r, m, s int }{
		{1, 4, 1, 1},  // n too small
		{4, 0, 1, 1},  // r too small
		{4, 4, 4, 1},  // m >= n
		{4, 4, -1, 1}, // negative m
		{4, 4, 1, -1}, // negative s
		{4, 4, 0, 0},  // no redundancy
		{4, 4, 1, 13}, // s exceeds data region
	}
	for _, c := range cases {
		if _, err := NewSD(c.n, c.r, c.m, c.s); err == nil {
			t.Errorf("NewSD(%d,%d,%d,%d) accepted", c.n, c.r, c.m, c.s)
		}
	}
}

func TestSDCoefficientValidation(t *testing.T) {
	if _, err := NewSDWithCoefficients(4, 4, 1, 1, gf.GF8, []uint32{1}); err == nil {
		t.Error("wrong coefficient count accepted")
	}
	if _, err := NewSDWithCoefficients(4, 4, 1, 1, gf.GF8, []uint32{0, 2}); err == nil {
		t.Error("zero coefficient accepted")
	}
	if _, err := NewSDWithCoefficients(4, 4, 1, 1, gf.GF8, []uint32{1, 300}); err == nil {
		t.Error("out-of-field coefficient accepted")
	}
	// Repeating powers: n*r = 300 > 255 nonzero elements of GF(2^8).
	if _, err := NewSDWithCoefficients(25, 12, 1, 1, gf.GF8, []uint32{1, 2}); err == nil {
		t.Error("n*r > 2^w - 1 accepted")
	}
	// Duplicate coefficients make disk-parity rows identical -> encode
	// scenario singular for m >= 2.
	if _, err := NewSDWithCoefficients(6, 4, 2, 1, gf.GF8, []uint32{1, 1, 3}); err == nil {
		t.Error("duplicate disk coefficients accepted")
	}
}

func TestSDCoefficientsAccessorCopies(t *testing.T) {
	sd := paperSD(t)
	c := sd.Coefficients()
	c[0] = 99
	if sd.Coefficients()[0] != 1 {
		t.Fatal("Coefficients leaks internal slice")
	}
	p := sd.ParityPositions()
	p[0] = -1
	if sd.ParityPositions()[0] == -1 {
		t.Fatal("ParityPositions leaks internal slice")
	}
}

func TestPMDSWrapsSD(t *testing.T) {
	p, err := NewPMDS(6, 4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumStrips() != 6 || p.NumRows() != 4 || p.M() != 2 || p.S() != 2 {
		t.Fatal("PMDS geometry wrong")
	}
	if got := p.Name(); got != "PMDS(2,2)_{6,4}(w=8)" {
		t.Fatalf("Name = %q", got)
	}
	if err := Validate(p); err != nil {
		t.Fatal(err)
	}
}

// TestPublishedSDInstances: the literature's coefficient tuples decode
// every drawn worst-case pattern under our H construction — the
// construction-fidelity check.
func TestPublishedSDInstances(t *testing.T) {
	for i := range PublishedSD {
		sd, err := NewPublishedSD(i)
		if err != nil {
			t.Fatalf("instance %d (%s): %v", i, PublishedSD[i].Source, err)
		}
		rng := rand.New(rand.NewSource(int64(300 + i)))
		for z := 1; z <= sd.S(); z++ {
			if sd.S() > z*(sd.NumStrips()-sd.M()) {
				continue
			}
			for trial := 0; trial < 15; trial++ {
				sc, err := sd.WorstCaseScenario(rng, z)
				if err != nil {
					t.Fatalf("instance %d z=%d: %v", i, z, err)
				}
				if !Decodable(sd, sc) {
					t.Fatalf("instance %d (%s): pattern %v not decodable", i, PublishedSD[i].Source, sc.Faulty)
				}
			}
		}
	}
	if _, err := NewPublishedSD(99); err == nil {
		t.Error("bogus index accepted")
	}
}

// TestQuickSDStructure: for random geometries, every SD instance
// satisfies the structural invariants of the construction — disk-parity
// rows confined to their stripe row with n nonzeros, sector rows with
// full support, parity positions exactly RH of them.
func TestQuickSDStructure(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(310))}
	prop := func(nRaw, rRaw, mRaw, sRaw uint8) bool {
		n := 4 + int(nRaw%6) // 4..9
		r := 2 + int(rRaw%7) // 2..8
		m := 1 + int(mRaw%2) // 1..2
		s := 1 + int(sRaw%2) // 1..2
		if m >= n || s > (n-m)*r {
			return true
		}
		sd, err := NewSD(n, r, m, s)
		if err != nil {
			// Some geometries legitimately have no good coefficients in
			// the candidate budget; that is a soft outcome, not a bug.
			return true
		}
		h := sd.ParityCheck()
		if h.Rows() != m*r+s || h.Cols() != n*r {
			return false
		}
		for i := 0; i < r; i++ {
			for tt := 0; tt < m; tt++ {
				row := i*m + tt
				count := 0
				for c := 0; c < n*r; c++ {
					v := h.At(row, c)
					inRow := c >= i*n && c < (i+1)*n
					if v != 0 && !inRow {
						return false // leaked outside its stripe row
					}
					if v != 0 {
						count++
					}
				}
				if count != n {
					return false
				}
			}
		}
		for q := 0; q < s; q++ {
			row := m*r + q
			for c := 0; c < n*r; c++ {
				if h.At(row, c) == 0 {
					return false // sector rows have full support
				}
			}
		}
		return len(sd.ParityPositions()) == m*r+s
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
