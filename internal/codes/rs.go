package codes

import (
	"fmt"
	"math/rand"
	"sort"

	"ppm/internal/gf"
	"ppm/internal/matrix"
)

// RS is the symmetric-parity Reed-Solomon baseline of Figure 8: an
// (n, k)-MDS code with m = n - k parity disks, applied row-wise to an
// n x r stripe. Its parity-check matrix is block-diagonal — every stripe
// row is an independent codeword with the same per-row structure
// [C | I_m], where C is a Cauchy matrix (every square sub-matrix of a
// Cauchy matrix is nonsingular, so the code is MDS by construction, the
// same guarantee Cauchy Reed-Solomon gives).
type RS struct {
	n, r, m int
	field   gf.Field
	h       *matrix.Matrix
	parity  []int
}

var _ Code = (*RS)(nil)

// NewRS constructs an (n, n-m) RS code over an automatically chosen
// field (n must fit the field's element count for the Cauchy points).
func NewRS(n, r, m int) (*RS, error) {
	f, err := gf.FieldFor(2 * n)
	if err != nil {
		return nil, err
	}
	return NewRSInField(n, r, m, f)
}

// NewRSInField is NewRS with an explicit field, used for the paper's
// RS w=8/16/32 comparison series.
func NewRSInField(n, r, m int, field gf.Field) (*RS, error) {
	switch {
	case n < 2 || r < 1:
		return nil, fmt.Errorf("codes: invalid RS geometry n=%d r=%d", n, r)
	case m < 1 || m >= n:
		return nil, fmt.Errorf("codes: RS m=%d out of range [1,%d)", m, n)
	case uint64(2*n) > field.Order():
		return nil, fmt.Errorf("codes: n=%d too large for Cauchy points in GF(2^%d)", n, field.W())
	}
	rs := &RS{n: n, r: r, m: m, field: field}
	rs.h = rs.buildParityCheck()
	for i := 0; i < r; i++ {
		for j := n - m; j < n; j++ {
			rs.parity = append(rs.parity, sectorIndex(n, i, j))
		}
	}
	sort.Ints(rs.parity)
	if err := Validate(rs); err != nil {
		return nil, err
	}
	return rs, nil
}

func (rs *RS) buildParityCheck() *matrix.Matrix {
	k := rs.n - rs.m
	h := matrix.New(rs.field, rs.m*rs.r, rs.n*rs.r)
	for i := 0; i < rs.r; i++ {
		for t := 0; t < rs.m; t++ {
			row := i*rs.m + t
			// Cauchy coefficients: x_t = t, y_j = m + j (disjoint sets).
			for j := 0; j < k; j++ {
				c := rs.field.Inv(uint32(t) ^ uint32(rs.m+j))
				h.Set(row, sectorIndex(rs.n, i, j), c)
			}
			h.Set(row, sectorIndex(rs.n, i, k+t), 1)
		}
	}
	return h
}

// Name reports the RS parameterisation, e.g. "RS(16,13)r16(w=8)".
func (rs *RS) Name() string {
	return fmt.Sprintf("RS(%d,%d)r%d(w=%d)", rs.n, rs.n-rs.m, rs.r, rs.field.W())
}

func (rs *RS) Field() gf.Field             { return rs.field }
func (rs *RS) NumStrips() int              { return rs.n }
func (rs *RS) NumRows() int                { return rs.r }
func (rs *RS) ParityCheck() *matrix.Matrix { return rs.h }
func (rs *RS) ParityPositions() []int      { return append([]int(nil), rs.parity...) }
func (rs *RS) M() int                      { return rs.m }

// WorstCaseScenario fails m random whole disks — the heaviest pattern an
// MDS code recovers, mirroring the paper's RS measurement.
func (rs *RS) WorstCaseScenario(rng *rand.Rand) (Scenario, error) {
	disks := rng.Perm(rs.n)[:rs.m]
	sort.Ints(disks)
	var faulty []int
	for i := 0; i < rs.r; i++ {
		for _, d := range disks {
			faulty = append(faulty, sectorIndex(rs.n, i, d))
		}
	}
	sort.Ints(faulty)
	sc := Scenario{Faulty: faulty, FailedDisks: disks}
	if !Decodable(rs, sc) {
		return Scenario{}, fmt.Errorf("codes: %s: MDS property violated for disks %v", rs.Name(), disks)
	}
	return sc, nil
}
