package codes

import (
	"math/rand"
	"testing"
)

func TestLRCLocalityConstruction(t *testing.T) {
	lrc, err := NewLRCLocality(12, 3, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 12 data + 3 groups x 2 local parities + 2 globals = 20 blocks.
	if lrc.NumStrips() != 20 {
		t.Fatalf("n = %d, want 20", lrc.NumStrips())
	}
	h := lrc.ParityCheck()
	if h.Rows() != 8 || h.Cols() != 20 {
		t.Fatalf("H is %s, want 8x20", h.Dims())
	}
	if lrc.Delta() != 3 || lrc.K() != 12 || lrc.L() != 3 || lrc.G() != 2 {
		t.Fatal("accessors wrong")
	}
	// Local rows touch only their group + their parity column.
	groups := lrc.Groups()
	for gi, group := range groups {
		inGroup := map[int]bool{}
		for _, b := range group {
			inGroup[b] = true
		}
		for tt := 0; tt < 2; tt++ {
			row := gi*2 + tt
			for col := 0; col < 12; col++ {
				if (h.At(row, col) != 0) != inGroup[col] {
					t.Fatalf("local row %d column %d coefficient inconsistent with group", row, col)
				}
			}
			if h.At(row, 12+gi*2+tt) != 1 {
				t.Fatalf("local row %d missing its parity column", row)
			}
		}
	}
}

func TestLRCLocalityReducesToPlainLRC(t *testing.T) {
	// δ = 2: one local parity per group, like the plain LRC.
	lrc, err := NewLRCLocality(12, 3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if lrc.NumStrips() != 12+3+2 {
		t.Fatalf("n = %d", lrc.NumStrips())
	}
}

func TestLRCLocalityValidation(t *testing.T) {
	cases := []struct{ k, l, delta, g int }{
		{1, 1, 2, 1},  // k too small
		{12, 0, 2, 2}, // l too small
		{12, 3, 1, 2}, // delta too small
		{12, 3, 2, -1},
		{4, 4, 3, 1}, // groups of 1 block cannot carry 2 local parities
	}
	for _, c := range cases {
		if _, err := NewLRCLocality(c.k, c.l, c.delta, c.g); err == nil {
			t.Errorf("NewLRCLocality(%+v) accepted", c)
		}
	}
}

// TestLRCLocalityLocalRepair: up to δ-1 failures inside one group are
// decodable, and (δ-1)+1 failures in one group still decode using the
// globals.
func TestLRCLocalityLocalRepair(t *testing.T) {
	lrc, err := NewLRCLocality(12, 3, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(171))
	for f := 1; f <= 2; f++ {
		for trial := 0; trial < 10; trial++ {
			sc, err := lrc.LocalScenario(rng, f)
			if err != nil {
				t.Fatal(err)
			}
			if !Decodable(lrc, sc) {
				t.Fatalf("f=%d local failures not decodable", f)
			}
		}
	}
	if _, err := lrc.LocalScenario(rng, 3); err == nil {
		t.Error("f beyond δ-1 accepted")
	}
	// 3 failures in one group: beyond locality, needs globals.
	group := lrc.Groups()[0]
	sc, err := NewScenario(lrc, group[:3])
	if err != nil {
		t.Fatal(err)
	}
	if !Decodable(lrc, sc) {
		t.Fatal("3-in-group failure should decode via globals")
	}
}

func TestLRCLocalityWorstCase(t *testing.T) {
	lrc, err := NewLRCLocality(12, 3, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(172))
	sc, err := lrc.WorstCaseScenario(rng)
	if err != nil {
		t.Fatal(err)
	}
	// δ-1 = 2 failures per group x 3 groups + 1 extra = 7.
	if len(sc.Faulty) != 7 {
		t.Fatalf("faulty = %v, want 7 failures", sc.Faulty)
	}
	if !Decodable(lrc, sc) {
		t.Fatal("worst case not decodable")
	}
}

func TestLRCLocalityScalarRoundTrip(t *testing.T) {
	lrc, err := NewLRCLocality(10, 2, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(173))
	words := randomCodeword(t, lrc, rng)
	sc, err := lrc.WorstCaseScenario(rng)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := append([]uint32(nil), words...)
	for _, idx := range sc.Faulty {
		corrupted[idx] = 1
	}
	recovered := scalarSolve(t, lrc, sc, corrupted)
	for i := range words {
		if recovered[i] != words[i] {
			t.Fatalf("word %d mismatch", i)
		}
	}
}

func TestLRCLocalityNoGlobalsWorstCase(t *testing.T) {
	lrc, err := NewLRCLocality(8, 2, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lrc.WorstCaseScenario(rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("worst case without globals accepted")
	}
}
