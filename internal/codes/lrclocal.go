package codes

import (
	"fmt"
	"math/rand"
	"sort"

	"ppm/internal/gf"
	"ppm/internal/matrix"
)

// LRCLocality is an LRC with (r, δ) locality (Prakash et al.): each of
// the l local groups carries δ-1 local parities forming a local MDS
// code, plus g global parities over all data. With δ = 2 it reduces to
// the plain LRC; with δ > 2 a group can lose up to δ-1 blocks and still
// repair locally.
//
// For PPM this family is the natural showcase of the log table's
// multi-row group rule (§III-A): a group with f <= δ-1 failures has
// exactly its δ-1 local rows sharing l_i, and f of them are extracted
// as an independent sub-matrix with f > 1 — the case the SD disk-parity
// rows exercise only when m > 1.
type LRCLocality struct {
	k, l, delta, g int
	groups         [][]int
	field          gf.Field
	h              *matrix.Matrix
	parity         []int
}

var _ Code = (*LRCLocality)(nil)

// NewLRCLocality constructs a (k, l, δ, g) locality LRC. Layout:
// columns 0..k-1 data, then (δ-1) local parities per group in group
// order, then g global parities.
func NewLRCLocality(k, l, delta, g int) (*LRCLocality, error) {
	switch {
	case k < 2:
		return nil, fmt.Errorf("codes: locality LRC k=%d too small", k)
	case l < 1 || l > k:
		return nil, fmt.Errorf("codes: locality LRC l=%d out of range [1,%d]", l, k)
	case delta < 2:
		return nil, fmt.Errorf("codes: locality δ=%d must be >= 2", delta)
	case g < 0:
		return nil, fmt.Errorf("codes: locality LRC g=%d negative", g)
	}
	n := k + l*(delta-1) + g
	field, err := gf.FieldFor(2 * n)
	if err != nil {
		return nil, err
	}
	lrc := &LRCLocality{k: k, l: l, delta: delta, g: g, field: field}
	lrc.groups = balancedGroups(k, l)
	for _, grp := range lrc.groups {
		if len(grp) < delta-1 {
			return nil, fmt.Errorf("codes: group of %d blocks cannot carry %d local parities", len(grp), delta-1)
		}
	}
	lrc.h = lrc.buildParityCheck()
	for p := k; p < n; p++ {
		lrc.parity = append(lrc.parity, p)
	}
	if err := Validate(lrc); err != nil {
		return nil, err
	}
	return lrc, nil
}

func (lrc *LRCLocality) buildParityCheck() *matrix.Matrix {
	n := lrc.NumStrips()
	rows := lrc.l*(lrc.delta-1) + lrc.g
	h := matrix.New(lrc.field, rows, n)

	// Local MDS rows: group gi, parity t. Cauchy points x_t = t,
	// y_pos = (δ-1) + pos keep the sets disjoint within a group.
	row := 0
	for gi, group := range lrc.groups {
		for t := 0; t < lrc.delta-1; t++ {
			for pos, b := range group {
				h.Set(row, b, lrc.field.Inv(uint32(t)^uint32(lrc.delta-1+pos)))
			}
			h.Set(row, lrc.k+gi*(lrc.delta-1)+t, 1)
			row++
		}
	}
	// Global rows over all data blocks.
	for q := 0; q < lrc.g; q++ {
		for b := 0; b < lrc.k; b++ {
			h.Set(row, b, lrc.field.Inv(uint32(lrc.delta-1+lrc.k+q)^uint32(b)))
		}
		h.Set(row, lrc.k+lrc.l*(lrc.delta-1)+q, 1)
		row++
	}
	return h
}

// Name reports the parameterisation, e.g. "LRC-loc(12,3,δ3,2)(w=8)".
func (lrc *LRCLocality) Name() string {
	return fmt.Sprintf("LRC-loc(%d,%d,δ%d,%d)(w=%d)", lrc.k, lrc.l, lrc.delta, lrc.g, lrc.field.W())
}

func (lrc *LRCLocality) Field() gf.Field { return lrc.field }
func (lrc *LRCLocality) NumStrips() int {
	return lrc.k + lrc.l*(lrc.delta-1) + lrc.g
}
func (lrc *LRCLocality) NumRows() int                { return 1 }
func (lrc *LRCLocality) ParityCheck() *matrix.Matrix { return lrc.h }
func (lrc *LRCLocality) ParityPositions() []int      { return append([]int(nil), lrc.parity...) }
func (lrc *LRCLocality) K() int                      { return lrc.k }
func (lrc *LRCLocality) L() int                      { return lrc.l }
func (lrc *LRCLocality) Delta() int                  { return lrc.delta }
func (lrc *LRCLocality) G() int                      { return lrc.g }

// Groups returns the data-block membership of each local group.
func (lrc *LRCLocality) Groups() [][]int {
	out := make([][]int, len(lrc.groups))
	for i, grp := range lrc.groups {
		out[i] = append([]int(nil), grp...)
	}
	return out
}

// WorstCaseScenario fails δ-1 data blocks in every local group (each
// group is then an independent f = δ-1 sub-matrix for PPM) plus one
// extra block in a random group, which needs the globals.
func (lrc *LRCLocality) WorstCaseScenario(rng *rand.Rand) (Scenario, error) {
	if lrc.g < 1 {
		return Scenario{}, fmt.Errorf("codes: %s has no global parity; worst case undefined", lrc.Name())
	}
	const maxAttempts = 200
	for attempt := 0; attempt < maxAttempts; attempt++ {
		faulty := make(map[int]bool)
		for _, group := range lrc.groups {
			perm := rng.Perm(len(group))
			for i := 0; i < lrc.delta-1; i++ {
				faulty[group[perm[i]]] = true
			}
		}
		var spare []int
		for b := 0; b < lrc.k; b++ {
			if !faulty[b] {
				spare = append(spare, b)
			}
		}
		if len(spare) == 0 {
			return Scenario{}, fmt.Errorf("codes: %s has no spare data block for the worst case", lrc.Name())
		}
		faulty[spare[rng.Intn(len(spare))]] = true
		all := make([]int, 0, len(faulty))
		for idx := range faulty {
			all = append(all, idx)
		}
		sort.Ints(all)
		sc := Scenario{Faulty: all}
		if Decodable(lrc, sc) {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("codes: %s: no decodable worst-case pattern found", lrc.Name())
}

// LocalScenario fails exactly f blocks inside one random group —
// recoverable purely locally when f <= δ-1.
func (lrc *LRCLocality) LocalScenario(rng *rand.Rand, f int) (Scenario, error) {
	if f < 1 || f > lrc.delta-1 {
		return Scenario{}, fmt.Errorf("codes: local scenario f=%d out of [1,%d]", f, lrc.delta-1)
	}
	group := lrc.groups[rng.Intn(lrc.l)]
	if f > len(group) {
		return Scenario{}, fmt.Errorf("codes: group too small for f=%d", f)
	}
	perm := rng.Perm(len(group))
	var faulty []int
	for i := 0; i < f; i++ {
		faulty = append(faulty, group[perm[i]])
	}
	sort.Ints(faulty)
	return Scenario{Faulty: faulty}, nil
}
