package codes

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"ppm/internal/gf"
	"ppm/internal/matrix"
)

// SD is a Sector-Disk code instance SD^{m,s}_{n,r}(w | a_0..a_{m+s-1})
// (Plank et al., FAST'13), the paper's primary evaluation target. The
// stripe has n disks and r rows; the last m disks are coding disks and
// an additional s sectors (the last s data-region sectors in row-major
// order) are coding sectors, so the code tolerates any m full-disk
// failures plus s additional sector failures anywhere.
//
// The parity-check matrix follows the construction the paper's worked
// example SD^{1,1}_{4,4}(8|1,2) pins down (Figure 2):
//
//	disk-parity row i*m + t:   H[i*m+t][i*n+j] = a_t^(i*n+j),  0 <= j < n
//	sector row   m*r + q:      H[m*r+q][c]     = a_(m+q)^c,    0 <= c < n*r
//
// With a_0 = 1 the first disk-parity row of each stripe row is all ones
// and with a_1 = 2 the sector row is 2^0 .. 2^(nr-1), matching the
// figure exactly.
type SD struct {
	n, r, m, s int
	coeffs     []uint32
	field      gf.Field
	h          *matrix.Matrix
	parity     []int
}

var _ Code = (*SD)(nil)

// NewSD constructs an SD instance, picking the word size automatically
// (the smallest w with n*r <= 2^w - 1, the paper's field-switching rule)
// and searching for coding coefficients that make the instance both
// encodable and decodable on a battery of worst-case scenarios.
func NewSD(n, r, m, s int) (*SD, error) {
	f, err := gf.FieldFor(n * r)
	if err != nil {
		return nil, err
	}
	return NewSDInField(n, r, m, s, f)
}

// NewSDInField is NewSD with an explicit field, used to reproduce the
// paper's per-field RS/SD comparisons.
func NewSDInField(n, r, m, s int, field gf.Field) (*SD, error) {
	coeffs, err := searchSDCoefficients(n, r, m, s, field)
	if err != nil {
		return nil, err
	}
	return NewSDWithCoefficients(n, r, m, s, field, coeffs)
}

// NewSDWithCoefficients constructs the instance from explicit coding
// coefficients a_0..a_{m+s-1}, e.g. the published SD^{2,2}_{6,4}
// coefficients (1, 42, 26, 61).
func NewSDWithCoefficients(n, r, m, s int, field gf.Field, coeffs []uint32) (*SD, error) {
	if err := checkSDParams(n, r, m, s); err != nil {
		return nil, err
	}
	if len(coeffs) != m+s {
		return nil, fmt.Errorf("codes: SD needs %d coefficients, got %d", m+s, len(coeffs))
	}
	if uint64(n*r) > field.Order()-1 {
		return nil, fmt.Errorf("codes: n*r = %d exceeds GF(2^%d) nonzero elements; powers would repeat", n*r, field.W())
	}
	for i, a := range coeffs {
		if a == 0 || uint64(a) >= field.Order() {
			return nil, fmt.Errorf("codes: coefficient a_%d = %d outside GF(2^%d)*", i, a, field.W())
		}
	}
	sd := &SD{
		n: n, r: r, m: m, s: s,
		coeffs: append([]uint32(nil), coeffs...),
		field:  field,
	}
	sd.h = sd.buildParityCheck()
	sd.parity = sd.buildParityPositions()
	if err := Validate(sd); err != nil {
		return nil, err
	}
	return sd, nil
}

func checkSDParams(n, r, m, s int) error {
	switch {
	case n < 2 || r < 1:
		return fmt.Errorf("codes: invalid SD geometry n=%d r=%d", n, r)
	case m < 0 || m >= n:
		return fmt.Errorf("codes: SD m=%d out of range [0,%d)", m, n)
	case s < 0 || s > (n-m)*r:
		return fmt.Errorf("codes: SD s=%d out of range", s)
	case m == 0 && s == 0:
		return fmt.Errorf("codes: SD with no redundancy")
	}
	return nil
}

func (sd *SD) buildParityCheck() *matrix.Matrix {
	h := matrix.New(sd.field, sd.m*sd.r+sd.s, sd.n*sd.r)
	// Disk-parity rows.
	for i := 0; i < sd.r; i++ {
		for t := 0; t < sd.m; t++ {
			row := i*sd.m + t
			for j := 0; j < sd.n; j++ {
				col := sectorIndex(sd.n, i, j)
				h.Set(row, col, sd.field.Exp(sd.coeffs[t], col))
			}
		}
	}
	// Sector rows span the whole stripe.
	for q := 0; q < sd.s; q++ {
		row := sd.m*sd.r + q
		for c := 0; c < sd.n*sd.r; c++ {
			h.Set(row, c, sd.field.Exp(sd.coeffs[sd.m+q], c))
		}
	}
	return h
}

// buildParityPositions marks all sectors on the last m disks plus the
// last s data-region sectors in row-major order (Figure 1(b): the s
// coding sectors sit at the bottom of the last data disk).
func (sd *SD) buildParityPositions() []int {
	var parity []int
	for i := 0; i < sd.r; i++ {
		for j := sd.n - sd.m; j < sd.n; j++ {
			parity = append(parity, sectorIndex(sd.n, i, j))
		}
	}
	// Walk the data region backwards for the s coding sectors.
	remaining := sd.s
	for i := sd.r - 1; i >= 0 && remaining > 0; i-- {
		for j := sd.n - sd.m - 1; j >= 0 && remaining > 0; j-- {
			parity = append(parity, sectorIndex(sd.n, i, j))
			remaining--
		}
	}
	sort.Ints(parity)
	return parity
}

// Name renders the paper's parameterisation, e.g. "SD^{2,2}_{6,4}(8|1,42,26,61)".
func (sd *SD) Name() string {
	parts := make([]string, len(sd.coeffs))
	for i, a := range sd.coeffs {
		parts[i] = fmt.Sprintf("%d", a)
	}
	return fmt.Sprintf("SD^{%d,%d}_{%d,%d}(%d|%s)", sd.m, sd.s, sd.n, sd.r, sd.field.W(), strings.Join(parts, ","))
}

func (sd *SD) Field() gf.Field             { return sd.field }
func (sd *SD) NumStrips() int              { return sd.n }
func (sd *SD) NumRows() int                { return sd.r }
func (sd *SD) ParityCheck() *matrix.Matrix { return sd.h }
func (sd *SD) ParityPositions() []int      { return append([]int(nil), sd.parity...) }
func (sd *SD) M() int                      { return sd.m }
func (sd *SD) S() int                      { return sd.s }
func (sd *SD) Coefficients() []uint32      { return append([]uint32(nil), sd.coeffs...) }

// WorstCaseScenario generates the paper's evaluation workload: exactly m
// whole-disk failures plus s additional sector failures confined to z
// distinct rows on the surviving disks (§IV: "we only test the worst
// case"). The scenario is drawn with the supplied RNG; patterns whose F
// sub-matrix happens to be singular are rejected and redrawn, matching
// how an operator would treat an unrecoverable pattern report.
func (sd *SD) WorstCaseScenario(rng *rand.Rand, z int) (Scenario, error) {
	if z < 1 || z > sd.s {
		if !(sd.s == 0 && z == 0) {
			return Scenario{}, fmt.Errorf("codes: z=%d out of range [1,%d]", z, sd.s)
		}
	}
	if z > sd.r {
		return Scenario{}, fmt.Errorf("codes: z=%d exceeds r=%d", z, sd.r)
	}
	const maxAttempts = 200
	for attempt := 0; attempt < maxAttempts; attempt++ {
		sc, err := sd.drawWorstCase(rng, z)
		if err != nil {
			return Scenario{}, err
		}
		if Decodable(sd, sc) {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("codes: %s: no decodable worst-case scenario found in %d draws (coefficients unsuitable)", sd.Name(), maxAttempts)
}

func (sd *SD) drawWorstCase(rng *rand.Rand, z int) (Scenario, error) {
	disks := rng.Perm(sd.n)[:sd.m]
	sort.Ints(disks)
	failedDisk := make(map[int]bool, sd.m)
	for _, d := range disks {
		failedDisk[d] = true
	}

	faulty := make(map[int]bool)
	for _, d := range disks {
		for i := 0; i < sd.r; i++ {
			faulty[sectorIndex(sd.n, i, d)] = true
		}
	}

	// Place the s sector failures on surviving disks within z rows,
	// at least one per chosen row.
	if sd.s > 0 {
		survivorsPerRow := sd.n - sd.m
		if sd.s > z*survivorsPerRow {
			return Scenario{}, fmt.Errorf("codes: cannot place %d sector failures in %d rows with %d survivors per row", sd.s, z, survivorsPerRow)
		}
		rows := rng.Perm(sd.r)[:z]
		var survivingDisks []int
		for j := 0; j < sd.n; j++ {
			if !failedDisk[j] {
				survivingDisks = append(survivingDisks, j)
			}
		}
		placed := 0
		// One failure in each selected row first, then spread the rest.
		for _, row := range rows {
			d := survivingDisks[rng.Intn(len(survivingDisks))]
			faulty[sectorIndex(sd.n, row, d)] = true
			placed++
		}
		for placed < sd.s {
			row := rows[rng.Intn(len(rows))]
			d := survivingDisks[rng.Intn(len(survivingDisks))]
			idx := sectorIndex(sd.n, row, d)
			if faulty[idx] {
				continue
			}
			faulty[idx] = true
			placed++
		}
	}

	all := make([]int, 0, len(faulty))
	for idx := range faulty {
		all = append(all, idx)
	}
	sort.Ints(all)
	return Scenario{Faulty: all, FailedDisks: disks, Z: z}, nil
}

// searchSDCoefficients finds a coefficient tuple whose instance encodes
// and survives a battery of random worst-case decodes. The candidate
// sequence is deterministic (a_0 = 1, then odd seeds) so a given
// geometry always resolves to the same instance — the published SD
// coefficient tables were found by exactly this kind of search.
func searchSDCoefficients(n, r, m, s int, field gf.Field) ([]uint32, error) {
	if err := checkSDParams(n, r, m, s); err != nil {
		return nil, err
	}
	mask := uint32((field.Order() - 1) & 0xFFFFFFFF)
	const candidates = 64
	for cand := 0; cand < candidates; cand++ {
		coeffs := candidateCoefficients(cand, m+s, mask)
		sd, err := NewSDWithCoefficients(n, r, m, s, field, coeffs)
		if err != nil {
			continue // encode-singular; try the next tuple
		}
		if sdSurvivesBattery(sd) {
			return coeffs, nil
		}
	}
	return nil, fmt.Errorf("codes: no SD coefficients found for n=%d r=%d m=%d s=%d over GF(2^%d)", n, r, m, s, field.W())
}

// candidateCoefficients yields tuple #cand: the first tuple is the
// natural (1, 2, 4, 8, ...) powers-of-two ladder, later ones are random
// distinct nonzero elements from a seeded PRNG.
func candidateCoefficients(cand, count int, mask uint32) []uint32 {
	coeffs := make([]uint32, count)
	if cand == 0 {
		v := uint32(1)
		for i := range coeffs {
			coeffs[i] = v
			v = (v << 1) & mask
			if v == 0 {
				v = 3
			}
		}
		return coeffs
	}
	rng := rand.New(rand.NewSource(int64(cand)*7919 + 13))
	seen := map[uint32]bool{}
	for i := range coeffs {
		for {
			v := (rng.Uint32() & mask)
			if v != 0 && !seen[v] {
				seen[v] = true
				coeffs[i] = v
				break
			}
		}
	}
	coeffs[0] = 1 // keep the all-ones first parity row, like every published instance
	return coeffs
}

// sdSurvivesBattery decodability-checks a deterministic sample of
// worst-case failure patterns (every z, several draws each).
func sdSurvivesBattery(sd *SD) bool {
	rng := rand.New(rand.NewSource(977))
	zMax := sd.s
	if zMax == 0 {
		sc, err := sd.drawWorstCase(rng, 0)
		return err == nil && Decodable(sd, sc)
	}
	for z := 1; z <= zMax; z++ {
		if z > sd.r {
			break
		}
		if sd.s > z*(sd.n-sd.m) {
			continue // s sector failures cannot fit in z surviving rows
		}
		for trial := 0; trial < 8; trial++ {
			sc, err := sd.drawWorstCase(rng, z)
			if err != nil {
				return false
			}
			if !Decodable(sd, sc) {
				return false
			}
		}
	}
	return true
}
