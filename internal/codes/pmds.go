package codes

import (
	"fmt"

	"ppm/internal/gf"
)

// PMDS wraps an SD instance under the PMDS name. The paper evaluates
// PMDS through SD: "Since PMDS code is a subset of SD code, the
// experimental results of SD code also reflect that of PMDS code" (§IV).
// A PMDS(m, s) code tolerates m erasures per row plus s more anywhere,
// which is a strictly stronger guarantee than SD's m whole disks plus s
// sectors; the parity-check geometry and the encode/decode pipeline are
// identical, so PPM applies unchanged. Blaum's original PMDS
// construction differs in how coefficients are derived; what matters for
// this reproduction is the shared matrix method, per the paper.
type PMDS struct {
	*SD
}

var _ Code = (*PMDS)(nil)

// NewPMDS constructs a PMDS(m, s) instance on an n x r stripe.
func NewPMDS(n, r, m, s int) (*PMDS, error) {
	sd, err := NewSD(n, r, m, s)
	if err != nil {
		return nil, err
	}
	return &PMDS{SD: sd}, nil
}

// NewPMDSInField is NewPMDS with an explicit field.
func NewPMDSInField(n, r, m, s int, field gf.Field) (*PMDS, error) {
	sd, err := NewSDInField(n, r, m, s, field)
	if err != nil {
		return nil, err
	}
	return &PMDS{SD: sd}, nil
}

// Name reports the PMDS parameterisation.
func (p *PMDS) Name() string {
	return fmt.Sprintf("PMDS(%d,%d)_{%d,%d}(w=%d)", p.m, p.s, p.n, p.r, p.field.W())
}
