package codes

import (
	"fmt"
	"math/rand"
	"sort"

	"ppm/internal/gf"
	"ppm/internal/matrix"
)

// LRC is a (k, l, g) Local Reconstruction Code in the Windows Azure
// Storage style the paper cites: k data blocks split into l local
// groups, each protected by one local parity (plain XOR of its group),
// plus g global parities computed from all k data blocks with Cauchy
// coefficients. Blocks are whole strips here, so r == 1 and n == k+l+g.
//
// The asymmetry is exactly the paper's motivating example: local parity
// rows touch k/l + 1 columns while global rows touch k + 1, so the
// parity-check matrix partitions naturally — a single failure inside a
// group is an independent faulty block recoverable from its local row
// alone (the degraded-read fast path), and PPM decodes multiple such
// groups in parallel.
type LRC struct {
	k, l, g int
	groups  [][]int // data block indices per local group
	field   gf.Field
	h       *matrix.Matrix
	parity  []int
}

var _ Code = (*LRC)(nil)

// NewLRC constructs a (k, l, g) LRC. Groups are balanced: the first
// k%l groups get ceil(k/l) data blocks, the rest floor(k/l).
func NewLRC(k, l, g int) (*LRC, error) {
	f, err := gf.FieldFor(2 * (k + l + g))
	if err != nil {
		return nil, err
	}
	return NewLRCInField(k, l, g, f)
}

// NewLRCInField is NewLRC with an explicit field.
func NewLRCInField(k, l, g int, field gf.Field) (*LRC, error) {
	switch {
	case k < 2:
		return nil, fmt.Errorf("codes: LRC k=%d too small", k)
	case l < 1 || l > k:
		return nil, fmt.Errorf("codes: LRC l=%d out of range [1,%d]", l, k)
	case g < 0:
		return nil, fmt.Errorf("codes: LRC g=%d negative", g)
	case uint64(2*(k+l+g)) > field.Order():
		return nil, fmt.Errorf("codes: LRC too large for GF(2^%d)", field.W())
	}
	lrc := &LRC{k: k, l: l, g: g, field: field}
	lrc.groups = balancedGroups(k, l)
	lrc.h = lrc.buildParityCheck()
	for p := k; p < k+l+g; p++ {
		lrc.parity = append(lrc.parity, p)
	}
	if err := Validate(lrc); err != nil {
		return nil, err
	}
	return lrc, nil
}

func balancedGroups(k, l int) [][]int {
	groups := make([][]int, l)
	next := 0
	for gi := 0; gi < l; gi++ {
		size := k / l
		if gi < k%l {
			size++
		}
		for b := 0; b < size; b++ {
			groups[gi] = append(groups[gi], next)
			next++
		}
	}
	return groups
}

// Block layout: columns 0..k-1 data, k..k+l-1 local parities (one per
// group in order), k+l..k+l+g-1 global parities.
func (lrc *LRC) buildParityCheck() *matrix.Matrix {
	n := lrc.k + lrc.l + lrc.g
	h := matrix.New(lrc.field, lrc.l+lrc.g, n)
	for gi, group := range lrc.groups {
		for _, b := range group {
			h.Set(gi, b, 1)
		}
		h.Set(gi, lrc.k+gi, 1)
	}
	for q := 0; q < lrc.g; q++ {
		row := lrc.l + q
		for b := 0; b < lrc.k; b++ {
			// Cauchy points x_q = q, y_b = g + b: disjoint, never zero.
			h.Set(row, b, lrc.field.Inv(uint32(q)^uint32(lrc.g+b)))
		}
		h.Set(row, lrc.k+lrc.l+q, 1)
	}
	return h
}

// Name reports the (k, l, g) parameterisation, e.g. "LRC(12,2,2)(w=8)".
func (lrc *LRC) Name() string {
	return fmt.Sprintf("LRC(%d,%d,%d)(w=%d)", lrc.k, lrc.l, lrc.g, lrc.field.W())
}

func (lrc *LRC) Field() gf.Field             { return lrc.field }
func (lrc *LRC) NumStrips() int              { return lrc.k + lrc.l + lrc.g }
func (lrc *LRC) NumRows() int                { return 1 }
func (lrc *LRC) ParityCheck() *matrix.Matrix { return lrc.h }
func (lrc *LRC) ParityPositions() []int      { return append([]int(nil), lrc.parity...) }
func (lrc *LRC) K() int                      { return lrc.k }
func (lrc *LRC) L() int                      { return lrc.l }
func (lrc *LRC) G() int                      { return lrc.g }

// Groups returns the data-block membership of each local group.
func (lrc *LRC) Groups() [][]int {
	out := make([][]int, len(lrc.groups))
	for i, grp := range lrc.groups {
		out[i] = append([]int(nil), grp...)
	}
	return out
}

// StorageCost returns n/k, the overhead metric Figure 11 sweeps.
func (lrc *LRC) StorageCost() float64 {
	return float64(lrc.k+lrc.l+lrc.g) / float64(lrc.k)
}

// DegradedReadScenario fails a single random data block — the transient
// unavailability event that motivates LRC (90% of data-center failure
// events, §I). The block is recoverable from its local group alone.
func (lrc *LRC) DegradedReadScenario(rng *rand.Rand) Scenario {
	return Scenario{Faulty: []int{rng.Intn(lrc.k)}}
}

// WorstCaseScenario fails one data block in every local group (each an
// independent faulty block, decoded in parallel by PPM) plus one more
// block in a random group, whose recovery needs the global parities —
// the deepest pattern that exercises both PPM phases. Requires g >= 1.
func (lrc *LRC) WorstCaseScenario(rng *rand.Rand) (Scenario, error) {
	if lrc.g < 1 {
		return Scenario{}, fmt.Errorf("codes: %s has no global parity; worst case undefined", lrc.Name())
	}
	const maxAttempts = 200
	for attempt := 0; attempt < maxAttempts; attempt++ {
		faulty := make(map[int]bool)
		for _, group := range lrc.groups {
			faulty[group[rng.Intn(len(group))]] = true
		}
		// One extra failure on any still-healthy data block.
		var spare []int
		for b := 0; b < lrc.k; b++ {
			if !faulty[b] {
				spare = append(spare, b)
			}
		}
		if len(spare) == 0 {
			return Scenario{}, fmt.Errorf("codes: %s: k == l leaves no spare data block for the worst case", lrc.Name())
		}
		faulty[spare[rng.Intn(len(spare))]] = true
		all := make([]int, 0, len(faulty))
		for idx := range faulty {
			all = append(all, idx)
		}
		sort.Ints(all)
		sc := Scenario{Faulty: all}
		if Decodable(lrc, sc) {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("codes: %s: no decodable worst-case pattern found", lrc.Name())
}
