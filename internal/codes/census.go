package codes

import (
	"fmt"
	"math/rand"
)

// CensusResult summarises a fault-tolerance census: of the patterns of
// exactly T simultaneous sector/block failures examined, how many are
// information-theoretically decodable by the instance.
type CensusResult struct {
	T         int
	Examined  int
	Decodable int
	// Exhaustive is true when every C(total, T) pattern was examined;
	// false when the census sampled.
	Exhaustive bool
}

// Fraction returns the decodable share.
func (r CensusResult) Fraction() float64 {
	if r.Examined == 0 {
		return 0
	}
	return float64(r.Decodable) / float64(r.Examined)
}

// String renders e.g. "4-failure census: 1725/1820 decodable (94.78%), exhaustive".
func (r CensusResult) String() string {
	mode := "sampled"
	if r.Exhaustive {
		mode = "exhaustive"
	}
	return fmt.Sprintf("%d-failure census: %d/%d decodable (%.2f%%), %s",
		r.T, r.Decodable, r.Examined, 100*r.Fraction(), mode)
}

// Census measures the fraction of T-failure patterns the instance can
// decode — the fault-tolerance profile used when codes are compared
// beyond their guaranteed tolerance (e.g. Azure's (12,2,2)-LRC decodes
// all 3-failure patterns but only 86% of 4-failure patterns). The
// census enumerates all C(total, T) patterns when that count is at most
// maxPatterns, and otherwise samples maxPatterns of them uniformly with
// the seeded RNG.
func Census(c Code, t, maxPatterns int, seed int64) (CensusResult, error) {
	total := TotalSectors(c)
	if t < 1 || t > total {
		return CensusResult{}, fmt.Errorf("codes: census T=%d out of range [1,%d]", t, total)
	}
	if maxPatterns < 1 {
		return CensusResult{}, fmt.Errorf("codes: census needs a positive pattern budget")
	}

	count := binomial(total, t)
	res := CensusResult{T: t}
	if count > 0 && count <= int64(maxPatterns) {
		res.Exhaustive = true
		pattern := make([]int, t)
		var walk func(start, depth int)
		walk = func(start, depth int) {
			if depth == t {
				res.Examined++
				if Decodable(c, Scenario{Faulty: append([]int(nil), pattern...)}) {
					res.Decodable++
				}
				return
			}
			for v := start; v <= total-(t-depth); v++ {
				pattern[depth] = v
				walk(v+1, depth+1)
			}
		}
		walk(0, 0)
		return res, nil
	}

	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < maxPatterns; i++ {
		pattern := rng.Perm(total)[:t]
		sc, err := NewScenario(c, pattern)
		if err != nil {
			return CensusResult{}, err
		}
		res.Examined++
		if Decodable(c, sc) {
			res.Decodable++
		}
	}
	return res, nil
}

// binomial returns C(n, k), saturating at a large sentinel on overflow.
func binomial(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	var r int64 = 1
	for i := 1; i <= k; i++ {
		// r * (n - k + i) may overflow; cap generously.
		next := r * int64(n-k+i) / int64(i)
		if next < r || next > 1<<40 {
			return 1 << 40
		}
		r = next
	}
	return r
}
