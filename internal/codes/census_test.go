package codes

import (
	"math"
	"testing"

	"ppm/internal/gf"
)

// TestCensusAzureLRC reproduces the fault-tolerance profile Microsoft
// published for the Azure (12,2,2)-LRC (cited by the paper as [17]):
// all 3-failure patterns decodable, and "86%" of 4-failure patterns —
// the exact maximally-recoverable fraction is 1557/1820 = 85.55%, which
// this census measures exhaustively.
func TestCensusAzureLRC(t *testing.T) {
	lrc, err := NewLRC(12, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	three, err := Census(lrc, 3, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !three.Exhaustive || three.Fraction() != 1.0 {
		t.Fatalf("3-failure census: %s", three)
	}
	four, err := Census(lrc, 4, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !four.Exhaustive {
		t.Fatalf("expected exhaustive 4-failure census, got %s", four)
	}
	if four.Decodable != 1557 || four.Examined != 1820 {
		t.Fatalf("4-failure census %d/%d, want the maximally-recoverable 1557/1820", four.Decodable, four.Examined)
	}
	if math.Abs(four.Fraction()-0.8555) > 0.001 {
		t.Fatalf("fraction %.4f, want 0.8555 (Azure's '86%%')", four.Fraction())
	}
	// Five failures exceed the 4 parity blocks: nothing is decodable.
	five, err := Census(lrc, 5, 5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if five.Decodable != 0 {
		t.Fatalf("5-failure census: %s", five)
	}
}

// TestCensusRSMDS: an MDS code decodes every pattern up to m failures
// and nothing beyond.
func TestCensusRSMDS(t *testing.T) {
	rs, err := NewRS(10, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 1; tt <= 3; tt++ {
		r, err := Census(rs, tt, 1000, 1)
		if err != nil {
			t.Fatal(err)
		}
		if r.Fraction() != 1.0 {
			t.Fatalf("T=%d: %s", tt, r)
		}
	}
	r, err := Census(rs, 4, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Decodable != 0 {
		t.Fatalf("T=4: %s", r)
	}
}

// TestCensusSDProfile: SD^{1,1}_{4,4} guarantees one disk plus one
// sector; arbitrary 5-sector patterns are mostly NOT decodable (only
// those aligning with the disk+sector structure are), while all
// 1-failure patterns are.
func TestCensusSDProfile(t *testing.T) {
	sd, err := NewSDWithCoefficients(4, 4, 1, 1, gf.GF8, []uint32{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	one, err := Census(sd, 1, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if one.Fraction() != 1.0 {
		t.Fatalf("1-failure: %s", one)
	}
	five, err := Census(sd, 5, 5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !five.Exhaustive { // C(16,5) = 4368
		t.Fatalf("expected exhaustive: %s", five)
	}
	if f := five.Fraction(); f <= 0 || f >= 0.5 {
		t.Fatalf("5-failure fraction %.4f; expected sparse decodability", f)
	}
}

func TestCensusSampledMode(t *testing.T) {
	lrc, err := NewLRC(20, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// C(26, 5) = 65780 > budget: sampling kicks in.
	r, err := Census(lrc, 5, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r.Exhaustive || r.Examined != 500 {
		t.Fatalf("expected 500 sampled patterns, got %s", r)
	}
	// Deterministic under the same seed.
	r2, err := Census(lrc, 5, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r.Decodable != r2.Decodable {
		t.Fatal("sampled census not reproducible")
	}
}

func TestCensusValidation(t *testing.T) {
	lrc, err := NewLRC(4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Census(lrc, 0, 100, 1); err == nil {
		t.Error("T=0 accepted")
	}
	if _, err := Census(lrc, 100, 100, 1); err == nil {
		t.Error("T>total accepted")
	}
	if _, err := Census(lrc, 2, 0, 1); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{16, 4, 1820}, {16, 3, 560}, {5, 0, 1}, {5, 5, 1}, {4, 5, 0}, {10, 2, 45},
	}
	for _, c := range cases {
		if got := binomial(c.n, c.k); got != c.want {
			t.Errorf("binomial(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
	// Saturation instead of overflow.
	if got := binomial(200, 100); got != 1<<40 {
		t.Errorf("binomial(200,100) = %d, want saturation", got)
	}
}
