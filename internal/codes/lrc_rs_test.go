package codes

import (
	"math"
	"math/rand"
	"testing"

	"ppm/internal/gf"
)

func TestLRCPaperExample(t *testing.T) {
	// The (4, 2, 2)-LRC of Figure 1(b): 4 data, 2 local, 2 global.
	lrc, err := NewLRC(4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if lrc.NumStrips() != 8 || lrc.NumRows() != 1 {
		t.Fatalf("geometry %dx%d", lrc.NumStrips(), lrc.NumRows())
	}
	h := lrc.ParityCheck()
	if h.Rows() != 4 || h.Cols() != 8 {
		t.Fatalf("H is %s, want 4x8", h.Dims())
	}
	// Local row 0 covers data {0,1} and local parity 4.
	wantRow0 := []uint32{1, 1, 0, 0, 1, 0, 0, 0}
	for j, w := range wantRow0 {
		if h.At(0, j) != w {
			t.Fatalf("H[0][%d] = %d, want %d", j, h.At(0, j), w)
		}
	}
	// Local row 1 covers data {2,3} and local parity 5.
	wantRow1 := []uint32{0, 0, 1, 1, 0, 1, 0, 0}
	for j, w := range wantRow1 {
		if h.At(1, j) != w {
			t.Fatalf("H[1][%d] = %d, want %d", j, h.At(1, j), w)
		}
	}
	// Global rows touch all 4 data blocks (each global parity is
	// calculated by k = 4 data blocks, the paper's asymmetry example)
	// plus their own parity column.
	for q := 0; q < 2; q++ {
		row := 2 + q
		for b := 0; b < 4; b++ {
			if h.At(row, b) == 0 {
				t.Fatalf("global row %d has zero at data block %d", row, b)
			}
		}
		if h.At(row, 6+q) != 1 {
			t.Fatalf("global row %d parity column wrong", row)
		}
		if h.At(row, 4) != 0 || h.At(row, 5) != 0 {
			t.Fatalf("global row %d touches local parities", row)
		}
	}
}

func TestLRCGroupsBalanced(t *testing.T) {
	lrc, err := NewLRC(10, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	groups := lrc.Groups()
	sizes := []int{len(groups[0]), len(groups[1]), len(groups[2])}
	if sizes[0] != 4 || sizes[1] != 3 || sizes[2] != 3 {
		t.Fatalf("group sizes = %v", sizes)
	}
	seen := map[int]bool{}
	for _, grp := range groups {
		for _, b := range grp {
			if seen[b] {
				t.Fatalf("block %d in two groups", b)
			}
			seen[b] = true
		}
	}
	if len(seen) != 10 {
		t.Fatalf("groups cover %d blocks, want 10", len(seen))
	}
}

func TestLRCStorageCost(t *testing.T) {
	lrc, err := NewLRC(12, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lrc.StorageCost()-16.0/12.0) > 1e-12 {
		t.Fatalf("storage cost = %f", lrc.StorageCost())
	}
}

func TestLRCDegradedRead(t *testing.T) {
	lrc, err := NewLRC(12, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 20; trial++ {
		sc := lrc.DegradedReadScenario(rng)
		if len(sc.Faulty) != 1 || sc.Faulty[0] >= lrc.K() {
			t.Fatalf("scenario = %+v", sc)
		}
		if !Decodable(lrc, sc) {
			t.Fatal("single data failure not decodable")
		}
	}
}

func TestLRCWorstCase(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for _, cfg := range []struct{ k, l, g int }{{12, 2, 2}, {12, 4, 2}, {9, 3, 2}} {
		lrc, err := NewLRC(cfg.k, cfg.l, cfg.g)
		if err != nil {
			t.Fatalf("NewLRC(%+v): %v", cfg, err)
		}
		sc, err := lrc.WorstCaseScenario(rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(sc.Faulty) != cfg.l+1 {
			t.Fatalf("faulty = %v, want %d failures", sc.Faulty, cfg.l+1)
		}
		if !Decodable(lrc, sc) {
			t.Fatal("worst case not decodable")
		}
	}
}

func TestLRCWorstCaseRequiresGlobals(t *testing.T) {
	lrc, err := NewLRC(6, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lrc.WorstCaseScenario(rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("worst case without globals accepted")
	}
}

func TestLRCParamValidation(t *testing.T) {
	cases := []struct{ k, l, g int }{
		{1, 1, 1},  // k too small
		{4, 0, 2},  // l too small
		{4, 5, 2},  // l > k
		{4, 2, -1}, // negative g
	}
	for _, c := range cases {
		if _, err := NewLRC(c.k, c.l, c.g); err == nil {
			t.Errorf("NewLRC(%d,%d,%d) accepted", c.k, c.l, c.g)
		}
	}
}

func TestRSMDSExhaustive(t *testing.T) {
	// Every combination of m failed disks must be decodable — the MDS
	// property the Cauchy construction guarantees.
	rs, err := NewRS(8, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	n := rs.NumStrips()
	var combo func(start int, picked []int)
	combo = func(start int, picked []int) {
		if len(picked) == rs.M() {
			var faulty []int
			for i := 0; i < rs.NumRows(); i++ {
				for _, d := range picked {
					faulty = append(faulty, sectorIndex(n, i, d))
				}
			}
			sc, err := NewScenario(rs, faulty)
			if err != nil {
				t.Fatal(err)
			}
			if !Decodable(rs, sc) {
				t.Fatalf("disks %v not decodable", picked)
			}
			return
		}
		for d := start; d < n; d++ {
			combo(d+1, append(picked, d))
		}
	}
	combo(0, nil)
}

func TestRSWorstCase(t *testing.T) {
	rs, err := NewRS(16, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(73))
	sc, err := rs.WorstCaseScenario(rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.FailedDisks) != 3 || len(sc.Faulty) != 3*4 {
		t.Fatalf("scenario %+v", sc)
	}
}

func TestRSInFieldW16W32(t *testing.T) {
	for _, f := range []gf.Field{gf.GF16, gf.GF32} {
		rs, err := NewRSInField(10, 2, 2, f)
		if err != nil {
			t.Fatalf("w=%d: %v", f.W(), err)
		}
		if rs.Field().W() != f.W() {
			t.Fatal("field not honoured")
		}
	}
}

func TestRSParamValidation(t *testing.T) {
	cases := []struct{ n, r, m int }{
		{1, 1, 1}, {4, 0, 1}, {4, 4, 0}, {4, 4, 4},
	}
	for _, c := range cases {
		if _, err := NewRS(c.n, c.r, c.m); err == nil {
			t.Errorf("NewRS(%d,%d,%d) accepted", c.n, c.r, c.m)
		}
	}
	// Too many Cauchy points for GF(2^8).
	if _, err := NewRSInField(200, 1, 2, gf.GF8); err == nil {
		t.Error("oversized RS accepted in GF(2^8)")
	}
}
