package codes

import (
	"fmt"
	"math/rand"
	"sort"

	"ppm/internal/gf"
	"ppm/internal/matrix"
)

// RDP is Row-Diagonal Parity (Corbett et al., FAST 2004), the other
// classic RAID-6 code the paper cites among symmetric-parity schemes.
// Like EVENODD it is XOR-only, so it exercises the kernel's {0,1}
// coefficient path; unlike EVENODD its diagonal parity covers the row
// parity disk, which removes the adjuster complication.
//
// Geometry for prime p: n = p + 1 disks (p - 1 data disks, disk p-1
// holds row parity, disk p holds diagonal parity) and r = p - 1 rows.
// Diagonal d (0 <= d < p-1) collects cells with i + j ≡ d (mod p) over
// disks 0..p-1; diagonal p-1 is the missing diagonal and is not stored.
type RDP struct {
	p      int
	field  gf.Field
	h      *matrix.Matrix
	parity []int
}

var _ Code = (*RDP)(nil)

// NewRDP constructs the RDP instance for prime p >= 3.
func NewRDP(p int) (*RDP, error) {
	if p < 3 || !isPrime(p) {
		return nil, fmt.Errorf("codes: RDP needs a prime p >= 3, got %d", p)
	}
	r := &RDP{p: p, field: gf.GF8}
	r.h = r.buildParityCheck()
	n := p + 1
	for i := 0; i < p-1; i++ {
		r.parity = append(r.parity, sectorIndex(n, i, p-1), sectorIndex(n, i, p))
	}
	sort.Ints(r.parity)
	if err := Validate(r); err != nil {
		return nil, err
	}
	return r, nil
}

func (c *RDP) buildParityCheck() *matrix.Matrix {
	p := c.p
	n := p + 1
	r := p - 1
	h := matrix.New(c.field, 2*r, n*r)

	// Row parity: disks 0..p-1 of each row XOR to zero (disk p-1 is the
	// row parity itself).
	for i := 0; i < r; i++ {
		for j := 0; j < p; j++ {
			h.Set(i, sectorIndex(n, i, j), 1)
		}
	}

	// Diagonal parity: diagonal d over disks 0..p-1 (row-parity disk
	// included), rows 0..p-2, plus the diagonal parity cell (d, p).
	for d := 0; d < r; d++ {
		row := r + d
		for j := 0; j < p; j++ {
			if i := (d - j + p) % p; i < r {
				h.Set(row, sectorIndex(n, i, j), 1)
			}
		}
		h.Set(row, sectorIndex(n, d, p), 1)
	}
	return h
}

// Name reports the instance, e.g. "RDP(p=5)".
func (c *RDP) Name() string { return fmt.Sprintf("RDP(p=%d)", c.p) }

func (c *RDP) Field() gf.Field             { return c.field }
func (c *RDP) NumStrips() int              { return c.p + 1 }
func (c *RDP) NumRows() int                { return c.p - 1 }
func (c *RDP) ParityCheck() *matrix.Matrix { return c.h }
func (c *RDP) ParityPositions() []int      { return append([]int(nil), c.parity...) }
func (c *RDP) P() int                      { return c.p }

// WorstCaseScenario fails two random disks.
func (c *RDP) WorstCaseScenario(rng *rand.Rand) (Scenario, error) {
	n := c.p + 1
	disks := rng.Perm(n)[:2]
	sort.Ints(disks)
	var faulty []int
	for i := 0; i < c.p-1; i++ {
		for _, d := range disks {
			faulty = append(faulty, sectorIndex(n, i, d))
		}
	}
	sort.Ints(faulty)
	sc := Scenario{Faulty: faulty, FailedDisks: disks}
	if !Decodable(c, sc) {
		return Scenario{}, fmt.Errorf("codes: %s: disks %v not decodable (construction bug)", c.Name(), disks)
	}
	return sc, nil
}
