package codes

import (
	"math/rand"
	"reflect"
	"testing"

	"ppm/internal/gf"
	"ppm/internal/matrix"
)

func TestNewScenarioValidation(t *testing.T) {
	sd := paperSD(t)
	if _, err := NewScenario(sd, []int{16}); err == nil {
		t.Error("out-of-range sector accepted")
	}
	if _, err := NewScenario(sd, []int{-1}); err == nil {
		t.Error("negative sector accepted")
	}
	if _, err := NewScenario(sd, []int{3, 3}); err == nil {
		t.Error("duplicate sector accepted")
	}
	sc, err := NewScenario(sd, []int{9, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc.Faulty, []int{2, 5, 9}) {
		t.Fatalf("faulty not sorted: %v", sc.Faulty)
	}
}

func TestEncodingScenario(t *testing.T) {
	sd := paperSD(t)
	sc := EncodingScenario(sd)
	if !reflect.DeepEqual(sc.Faulty, sd.ParityPositions()) {
		t.Fatalf("encoding scenario = %v", sc.Faulty)
	}
	if !Decodable(sd, sc) {
		t.Fatal("encoding scenario not decodable")
	}
}

func TestDecodableEdgeCases(t *testing.T) {
	sd := paperSD(t)
	if !Decodable(sd, Scenario{}) {
		t.Error("empty scenario should be trivially decodable")
	}
	// More erasures than parity-check rows can never be recovered.
	tooMany := Scenario{Faulty: []int{0, 1, 2, 4, 5, 6}}
	if Decodable(sd, tooMany) {
		t.Error("6 erasures decodable with 5 check rows")
	}
}

func TestFaultySet(t *testing.T) {
	sc := Scenario{Faulty: []int{1, 4, 7}}
	set := sc.FaultySet()
	if len(set) != 3 || !set[1] || !set[4] || !set[7] || set[2] {
		t.Fatalf("set = %v", set)
	}
}

// scalarSolve recovers faulty word values using the traditional method
// at scalar granularity: BF = F^-1 * S * BS. It is an independent
// reference implementation used to cross-check code constructions
// before the block-level kernel exists.
func scalarSolve(t *testing.T, c Code, sc Scenario, words []uint32) []uint32 {
	t.Helper()
	h := c.ParityCheck()
	faulty := sc.FaultySet()
	fM, sM, fCols, sCols := h.SplitColumns(func(col int) bool { return faulty[col] })
	if fM.Rows() > fM.Cols() {
		// Over-determined: keep a square invertible subset of equations.
		rows, err := fM.PivotRows()
		if err != nil {
			t.Fatalf("pivot rows: %v", err)
		}
		fM = fM.SelectRows(rows)
		sM = sM.SelectRows(rows)
	}
	inv, err := fM.Invert()
	if err != nil {
		t.Fatalf("invert F: %v", err)
	}
	bs := make([]uint32, len(sCols))
	for i, col := range sCols {
		bs[i] = words[col]
	}
	bf := inv.MulVec(sM.MulVec(bs))
	out := append([]uint32(nil), words...)
	for i, col := range fCols {
		out[col] = bf[i]
	}
	return out
}

// randomCodeword generates data words, derives parity by scalar solve,
// and verifies H * B == 0.
func randomCodeword(t *testing.T, c Code, rng *rand.Rand) []uint32 {
	t.Helper()
	mask := uint32((c.Field().Order() - 1) & 0xFFFFFFFF)
	words := make([]uint32, TotalSectors(c))
	for _, d := range DataPositions(c) {
		words[d] = rng.Uint32() & mask
	}
	words = scalarSolve(t, c, EncodingScenario(c), words)
	for i, v := range c.ParityCheck().MulVec(words) {
		if v != 0 {
			t.Fatalf("%s: H*B row %d = %d after encode", c.Name(), i, v)
		}
	}
	return words
}

// TestScalarRoundTrip encodes random data and re-derives erased words
// for every code family, confirming the parity-check constructions are
// self-consistent end to end.
func TestScalarRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(81))

	sd := paperSD(t)
	lrc, err := NewLRC(12, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewRS(8, 4, 2)
	if err != nil {
		t.Fatal(err)
	}

	for _, c := range []Code{sd, lrc, rs} {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			words := randomCodeword(t, c, rng)
			var sc Scenario
			switch v := c.(type) {
			case *SD:
				var err error
				sc, err = v.WorstCaseScenario(rng, 1)
				if err != nil {
					t.Fatal(err)
				}
			case *LRC:
				var err error
				sc, err = v.WorstCaseScenario(rng)
				if err != nil {
					t.Fatal(err)
				}
			case *RS:
				var err error
				sc, err = v.WorstCaseScenario(rng)
				if err != nil {
					t.Fatal(err)
				}
			}
			corrupted := append([]uint32(nil), words...)
			for _, idx := range sc.Faulty {
				corrupted[idx] = 0xDEAD & uint32((c.Field().Order()-1)&0xFFFFFFFF)
			}
			recovered := scalarSolve(t, c, sc, corrupted)
			for i := range words {
				if recovered[i] != words[i] {
					t.Fatalf("word %d: got %d want %d", i, recovered[i], words[i])
				}
			}
		})
	}
}

// TestValidateRejectsBrokenCode exercises the structural checks with a
// deliberately inconsistent implementation.
type brokenCode struct {
	h      *matrix.Matrix
	parity []int
}

func (b *brokenCode) Name() string                { return "broken" }
func (b *brokenCode) Field() gf.Field             { return gf.GF8 }
func (b *brokenCode) NumStrips() int              { return 4 }
func (b *brokenCode) NumRows() int                { return 1 }
func (b *brokenCode) ParityCheck() *matrix.Matrix { return b.h }
func (b *brokenCode) ParityPositions() []int      { return b.parity }

func TestValidateRejectsBrokenCode(t *testing.T) {
	// Wrong column count.
	bad := &brokenCode{h: matrix.New(gf.GF8, 1, 3), parity: []int{3}}
	if err := Validate(bad); err == nil {
		t.Error("wrong column count accepted")
	}
	// Parity count != rows.
	bad = &brokenCode{h: matrix.New(gf.GF8, 2, 4), parity: []int{3}}
	if err := Validate(bad); err == nil {
		t.Error("parity/row mismatch accepted")
	}
	// Out-of-range parity position.
	bad = &brokenCode{h: matrix.New(gf.GF8, 1, 4), parity: []int{4}}
	if err := Validate(bad); err == nil {
		t.Error("out-of-range parity accepted")
	}
	// Duplicate parity position.
	bad = &brokenCode{h: matrix.New(gf.GF8, 2, 4), parity: []int{3, 3}}
	if err := Validate(bad); err == nil {
		t.Error("duplicate parity accepted")
	}
	// Singular parity columns (all-zero H).
	bad = &brokenCode{h: matrix.New(gf.GF8, 1, 4), parity: []int{3}}
	if err := Validate(bad); err == nil {
		t.Error("singular encode accepted")
	}
}

func TestTotalSectors(t *testing.T) {
	sd := paperSD(t)
	if TotalSectors(sd) != 16 {
		t.Fatalf("TotalSectors = %d", TotalSectors(sd))
	}
}
