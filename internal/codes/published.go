package codes

import (
	"fmt"

	"ppm/internal/gf"
)

// PublishedSD lists SD instances whose coding coefficients appear in
// the literature (the PPM paper's two worked parameterisations). They
// double as construction-fidelity fixtures: if our H construction
// deviated from Plank's, these coefficients would stop decoding.
var PublishedSD = []struct {
	N, R, M, S int
	W          int
	Coeffs     []uint32
	Source     string
}{
	{4, 4, 1, 1, 8, []uint32{1, 2}, "PPM paper Figure 2 worked example"},
	{6, 4, 2, 2, 8, []uint32{1, 42, 26, 61}, "PPM paper Figure 1(b) / SD code paper"},
}

// NewPublishedSD instantiates entry i of PublishedSD.
func NewPublishedSD(i int) (*SD, error) {
	if i < 0 || i >= len(PublishedSD) {
		return nil, fmt.Errorf("codes: no published SD instance %d", i)
	}
	p := PublishedSD[i]
	f, err := gf.ForWord(p.W)
	if err != nil {
		return nil, err
	}
	return NewSDWithCoefficients(p.N, p.R, p.M, p.S, f, p.Coeffs)
}
