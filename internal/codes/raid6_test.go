package codes

import (
	"math/rand"
	"testing"
)

func TestEVENODDConstruction(t *testing.T) {
	e, err := NewEVENODD(5)
	if err != nil {
		t.Fatal(err)
	}
	if e.NumStrips() != 7 || e.NumRows() != 4 {
		t.Fatalf("geometry %dx%d, want 7x4", e.NumStrips(), e.NumRows())
	}
	h := e.ParityCheck()
	if h.Rows() != 8 || h.Cols() != 28 {
		t.Fatalf("H is %s, want 8x28", h.Dims())
	}
	// XOR-only: every coefficient is 0 or 1.
	for i := 0; i < h.Rows(); i++ {
		for j := 0; j < h.Cols(); j++ {
			if v := h.At(i, j); v > 1 {
				t.Fatalf("H[%d][%d] = %d; EVENODD must be XOR-only", i, j, v)
			}
		}
	}
	// Row-parity rows cover exactly p+1 cells.
	for i := 0; i < 4; i++ {
		count := 0
		for j := 0; j < h.Cols(); j++ {
			if h.At(i, j) != 0 {
				count++
			}
		}
		if count != 6 {
			t.Fatalf("row-parity row %d has %d cells, want 6", i, count)
		}
	}
}

func TestEVENODDPrimeValidation(t *testing.T) {
	for _, p := range []int{1, 2, 4, 6, 9} {
		if _, err := NewEVENODD(p); err == nil {
			t.Errorf("NewEVENODD(%d) accepted", p)
		}
	}
}

// TestEVENODDAllDoubleFailures: the RAID-6 guarantee — every pair of
// disk failures is decodable.
func TestEVENODDAllDoubleFailures(t *testing.T) {
	for _, p := range []int{3, 5, 7} {
		e, err := NewEVENODD(p)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		n := e.NumStrips()
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				var faulty []int
				for i := 0; i < e.NumRows(); i++ {
					faulty = append(faulty, sectorIndex(n, i, a), sectorIndex(n, i, b))
				}
				sc, err := NewScenario(e, faulty)
				if err != nil {
					t.Fatal(err)
				}
				if !Decodable(e, sc) {
					t.Fatalf("p=%d: disks (%d,%d) not decodable", p, a, b)
				}
			}
		}
	}
}

func TestEVENODDScalarRoundTrip(t *testing.T) {
	e, err := NewEVENODD(5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(121))
	words := randomCodeword(t, e, rng)
	sc, err := e.WorstCaseScenario(rng)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := append([]uint32(nil), words...)
	for _, idx := range sc.Faulty {
		corrupted[idx] = 0xAA
	}
	recovered := scalarSolve(t, e, sc, corrupted)
	for i := range words {
		if recovered[i] != words[i] {
			t.Fatalf("word %d mismatch", i)
		}
	}
}

func TestRDPConstruction(t *testing.T) {
	c, err := NewRDP(5)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumStrips() != 6 || c.NumRows() != 4 {
		t.Fatalf("geometry %dx%d, want 6x4", c.NumStrips(), c.NumRows())
	}
	h := c.ParityCheck()
	for i := 0; i < h.Rows(); i++ {
		for j := 0; j < h.Cols(); j++ {
			if v := h.At(i, j); v > 1 {
				t.Fatalf("H[%d][%d] = %d; RDP must be XOR-only", i, j, v)
			}
		}
	}
}

func TestRDPPrimeValidation(t *testing.T) {
	for _, p := range []int{0, 4, 8, 15} {
		if _, err := NewRDP(p); err == nil {
			t.Errorf("NewRDP(%d) accepted", p)
		}
	}
}

func TestRDPAllDoubleFailures(t *testing.T) {
	for _, p := range []int{3, 5, 7} {
		c, err := NewRDP(p)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		n := c.NumStrips()
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				var faulty []int
				for i := 0; i < c.NumRows(); i++ {
					faulty = append(faulty, sectorIndex(n, i, a), sectorIndex(n, i, b))
				}
				sc, err := NewScenario(c, faulty)
				if err != nil {
					t.Fatal(err)
				}
				if !Decodable(c, sc) {
					t.Fatalf("p=%d: disks (%d,%d) not decodable", p, a, b)
				}
			}
		}
	}
}

func TestRDPScalarRoundTrip(t *testing.T) {
	c, err := NewRDP(7)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(122))
	words := randomCodeword(t, c, rng)
	sc, err := c.WorstCaseScenario(rng)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := append([]uint32(nil), words...)
	for _, idx := range sc.Faulty {
		corrupted[idx] = 0x55
	}
	recovered := scalarSolve(t, c, sc, corrupted)
	for i := range words {
		if recovered[i] != words[i] {
			t.Fatalf("word %d mismatch", i)
		}
	}
}
