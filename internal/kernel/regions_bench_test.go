package kernel

import (
	"fmt"
	"math/rand"
	"testing"

	"ppm/internal/gf"
)

// BenchmarkKernelRegions is the headline before/after pair for the
// fused+tiled kernel, the series `make bench-kernel` records in
// BENCH_kernel.json. Both arms apply the same representative decode
// matrix (4 outputs from 12 survivors — an SD/RS-shaped recovery) to
// the same regions:
//
//   - ref_*: the pre-PR sweep — one whole-region scalar table pass per
//     nonzero coefficient, destination loaded and stored once per term,
//     with the affine kernels forced off (the seed had none).
//   - tiled_*: the compiled path — fused affine row kernels over 32 KiB
//     tiles, with the >= 1 MiB regions additionally fanned across the
//     worker pool, exactly as production decodes run it.
//
// MB/s counts bytes actually touched (12 sources + 4 destinations per
// pass), identically in both arms, so the ratio is the real speedup.
func BenchmarkKernelRegions(b *testing.B) {
	rng := rand.New(rand.NewSource(420))
	for _, f := range []gf.Field{gf.GF8, gf.GF16, gf.GF32} {
		for _, sz := range []struct {
			name  string
			bytes int
		}{
			{"4KiB", 4 << 10},
			{"128KiB", 128 << 10},
			{"8MiB", 8 << 20},
		} {
			m := randMatrix(rng, f, 4, 12)
			in := randRegions(rng, 12, sz.bytes)
			out := AllocRegions(4, sz.bytes)
			cm := Compile(f, m)
			total := int64(16 * sz.bytes)
			b.Run(fmt.Sprintf("ref_gf%d_%s", f.W(), sz.name), func(b *testing.B) {
				defer gf.SetAffineKernels(gf.SetAffineKernels(false))
				b.SetBytes(total)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					refApply(f, m, in, out)
				}
			})
			b.Run(fmt.Sprintf("tiled_gf%d_%s", f.W(), sz.name), func(b *testing.B) {
				b.SetBytes(total)
				for i := 0; i < b.N; i++ {
					cm.Apply(in, out, nil)
				}
			})
		}
	}
}

// BenchmarkKernelXorplan is the no-GFNI before/after pair for the
// XOR-program backend, recorded as the xorplan_pairs series of
// BENCH_kernel.json. Both arms run with the affine kernels forced off
// — the hardware class the backend exists for — over the same
// SD/RS-shaped decode matrix and regions:
//
//   - portable_*: the compiled tiled path on the scalar table row
//     kernels, today's best no-GFNI path.
//   - xorplan_*: the same matrix compiled with the XOR program
//     attached — polynomial-ring lowering, CSE/Prim scheduling, fused
//     AVX2/AVX-512 XOR execution.
func BenchmarkKernelXorplan(b *testing.B) {
	rng := rand.New(rand.NewSource(422))
	defer gf.SetAffineKernels(gf.SetAffineKernels(false))
	for _, f := range []gf.Field{gf.GF8, gf.GF16, gf.GF32} {
		for _, sz := range []struct {
			name  string
			bytes int
		}{
			{"4KiB", 4 << 10},
			{"128KiB", 128 << 10},
			{"8MiB", 8 << 20},
		} {
			m := randMatrix(rng, f, 4, 12)
			in := randRegions(rng, 12, sz.bytes)
			out := AllocRegions(4, sz.bytes)
			cmOff, cmOn := compilePair(f, m)
			if cmOn.XORProgram() == nil {
				b.Fatal("forced compile carries no program")
			}
			total := int64(16 * sz.bytes)
			b.Run(fmt.Sprintf("portable_gf%d_%s", f.W(), sz.name), func(b *testing.B) {
				b.SetBytes(total)
				for i := 0; i < b.N; i++ {
					cmOff.Apply(in, out, nil)
				}
			})
			b.Run(fmt.Sprintf("xorplan_gf%d_%s", f.W(), sz.name), func(b *testing.B) {
				b.SetBytes(total)
				for i := 0; i < b.N; i++ {
					cmOn.Apply(in, out, nil)
				}
			})
		}
	}
}

// BenchmarkKernelProductChain isolates what tile-chaining buys the
// Normal sequence: the two-pass form materialises the full-size
// intermediate S*BS, the chained form streams it through tile-sized
// scratch that never leaves cache.
func BenchmarkKernelProductChain(b *testing.B) {
	rng := rand.New(rand.NewSource(421))
	f := gf.GF16
	const size = 1 << 20
	finv := randInvertible(rng, f, 4)
	s := randMatrix(rng, f, 4, 12)
	in := randRegions(rng, 12, size)
	out := AllocRegions(4, size)
	cFinv, cS := Compile(f, finv), Compile(f, s)
	total := int64(16 * size)
	b.Run("two-pass_full-intermediate", func(b *testing.B) {
		scratch := AllocRegions(4, size)
		b.SetBytes(total)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Zero(scratch)
			cS.applySpan(in, scratch, 0, size)
			Zero(out)
			cFinv.applySpan(scratch, out, 0, size)
		}
	})
	b.Run("tile-chained", func(b *testing.B) {
		b.SetBytes(total)
		for i := 0; i < b.N; i++ {
			CompiledProduct(cFinv, cS, nil, in, out, nil, Normal, nil)
		}
	})
}
