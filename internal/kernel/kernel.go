// Package kernel implements the matrix-times-block-regions engine shared
// by the traditional decoder and PPM: computing products like
// F^-1 * S * BS where the vector entries are whole sector buffers.
//
// Every nonzero matrix coefficient costs exactly one mult_XORs() region
// operation, the paper's unit of computational cost. The kernel counts
// those operations (atomically, because PPM runs several sub-decodes
// concurrently) so the measured cost of any decode can be compared
// against the analytic C1..C4 formulas — a property the test suite
// exploits heavily.
package kernel

import (
	"fmt"
	"sync/atomic"

	"ppm/internal/gf"
	"ppm/internal/matrix"
)

// Stats accumulates operation counts across one encode/decode. Safe for
// concurrent use.
type Stats struct {
	multXORs atomic.Int64
}

// AddMultXORs records n mult_XORs operations.
func (s *Stats) AddMultXORs(n int64) {
	if s != nil {
		s.multXORs.Add(n)
	}
}

// MultXORs returns the number of mult_XORs performed so far.
func (s *Stats) MultXORs() int64 {
	if s == nil {
		return 0
	}
	return s.multXORs.Load()
}

// Reset zeroes the counters.
func (s *Stats) Reset() {
	if s != nil {
		s.multXORs.Store(0)
	}
}

// Sequence selects the calculation order for F^-1 * S * BS (§II-B).
type Sequence int

const (
	// Normal multiplies S by the surviving blocks first, then F^-1 by
	// the intermediate blocks: cost u(F^-1) + u(S). This is the order
	// the open-source SD decoder uses.
	Normal Sequence = iota
	// MatrixFirst multiplies F^-1 * S at matrix level first (scalar
	// cost, ignored per the paper) and then applies the product to the
	// surviving blocks: cost u(F^-1 * S). This is the generator-matrix
	// method.
	MatrixFirst
)

// String names the sequence the way the paper does.
func (s Sequence) String() string {
	switch s {
	case Normal:
		return "normal"
	case MatrixFirst:
		return "matrix-first"
	default:
		return fmt.Sprintf("Sequence(%d)", int(s))
	}
}

// Apply computes out[i] ^= Σ_j M[i][j] * in[j] over block regions.
// Callers that need out = M * in must clear out first (Zero). One
// region operation is issued — and counted — per nonzero coefficient.
//
// Lookup tables are built once per distinct coefficient per call (the
// same amortisation the compiled path gets per plan), so the
// traditional baseline and PPM share identical region-op throughput —
// the paper's comparisons assume a common arithmetic back end.
func Apply(f gf.Field, m *matrix.Matrix, in, out [][]byte, stats *Stats) {
	if m.Rows() != len(out) || m.Cols() != len(in) {
		panic(fmt.Sprintf("kernel: matrix %s against %d inputs, %d outputs", m.Dims(), len(in), len(out)))
	}
	cache := make(map[uint32]gf.Multiplier)
	var ops int64
	for i := 0; i < m.Rows(); i++ {
		row := m.Row(i)
		dst := out[i]
		for j, a := range row {
			if a == 0 {
				continue
			}
			mult, ok := cache[a]
			if !ok {
				mult = gf.MultiplierFor(f, a)
				cache[a] = mult
			}
			mult.MultXOR(dst, in[j])
			ops++
		}
	}
	stats.AddMultXORs(ops)
}

// Zero clears the given regions.
func Zero(regions [][]byte) {
	for _, r := range regions {
		for i := range r {
			r[i] = 0
		}
	}
}

// Product computes out = F^-1 * S * BS into the out regions using the
// requested sequence, where finv is f x f, s is f x q, in holds the q
// surviving regions and out the f faulty regions. The scratch slice, if
// non-nil, must hold f regions of the same size and is used by the
// Normal sequence to hold the intermediate S * BS; pass nil to borrow
// pooled scratch for the duration of the call.
func Product(f gf.Field, finv, s *matrix.Matrix, in, out, scratch [][]byte, seq Sequence, stats *Stats) {
	if finv.Rows() != finv.Cols() || finv.Cols() != s.Rows() {
		panic(fmt.Sprintf("kernel: shape mismatch F^-1 %s vs S %s", finv.Dims(), s.Dims()))
	}
	switch seq {
	case MatrixFirst:
		g := finv.Mul(s) // scalar-level product; cost ignored per §II-B
		Zero(out)
		Apply(f, g, in, out, stats)
	case Normal:
		if scratch == nil {
			sb := GetScratch(len(out), regionLen(out))
			defer sb.Release()
			scratch = sb.Regions()
		}
		Zero(scratch)
		Apply(f, s, in, scratch, stats)
		Zero(out)
		Apply(f, finv, scratch, out, stats)
	default:
		panic(fmt.Sprintf("kernel: unknown sequence %d", int(seq)))
	}
}

// AllocRegions allocates count regions of size bytes backed by one
// contiguous buffer.
func AllocRegions(count, size int) [][]byte {
	backing := make([]byte, count*size)
	regions := make([][]byte, count)
	for i := range regions {
		regions[i] = backing[i*size : (i+1)*size : (i+1)*size]
	}
	return regions
}

func regionLen(regions [][]byte) int {
	if len(regions) == 0 {
		return 0
	}
	return len(regions[0])
}
