// Package kernel implements the matrix-times-block-regions engine shared
// by the traditional decoder and PPM: computing products like
// F^-1 * S * BS where the vector entries are whole sector buffers.
//
// Every nonzero matrix coefficient costs exactly one mult_XORs() region
// operation, the paper's unit of computational cost. The kernel counts
// those operations (atomically, because PPM runs several sub-decodes
// concurrently) so the measured cost of any decode can be compared
// against the analytic C1..C4 formulas — a property the test suite
// exploits heavily. Tiling and fusion change how the bytes are swept,
// never how many logical region operations are counted.
package kernel

import (
	"fmt"
	"sync/atomic"

	"ppm/internal/gf"
	"ppm/internal/matrix"
)

// Stats accumulates operation counts across one encode/decode. Safe for
// concurrent use.
type Stats struct {
	multXORs atomic.Int64
}

// AddMultXORs records n mult_XORs operations.
func (s *Stats) AddMultXORs(n int64) {
	if s != nil {
		s.multXORs.Add(n)
	}
}

// MultXORs returns the number of mult_XORs performed so far.
func (s *Stats) MultXORs() int64 {
	if s == nil {
		return 0
	}
	return s.multXORs.Load()
}

// Reset zeroes the counters.
func (s *Stats) Reset() {
	if s != nil {
		s.multXORs.Store(0)
	}
}

// Sequence selects the calculation order for F^-1 * S * BS (§II-B).
type Sequence int

const (
	// Normal multiplies S by the surviving blocks first, then F^-1 by
	// the intermediate blocks: cost u(F^-1) + u(S). This is the order
	// the open-source SD decoder uses.
	Normal Sequence = iota
	// MatrixFirst multiplies F^-1 * S at matrix level first (scalar
	// cost, ignored per the paper) and then applies the product to the
	// surviving blocks: cost u(F^-1 * S). This is the generator-matrix
	// method.
	MatrixFirst
)

// String names the sequence the way the paper does.
func (s Sequence) String() string {
	switch s {
	case Normal:
		return "normal"
	case MatrixFirst:
		return "matrix-first"
	default:
		return fmt.Sprintf("Sequence(%d)", int(s))
	}
}

// Apply computes out[i] ^= Σ_j M[i][j] * in[j] over block regions.
// Callers that need out = M * in must clear out first (Zero). Each
// nonzero coefficient counts as one region operation.
//
// The sweep is cache-blocked and fused: the whole matrix is applied to
// one tile of the byte range at a time (tile.go), and within a tile
// each row's terms are streamed through the destination in a single
// fused pass (gf.MultXORsMulti), so a tile's sources stay cache-hot
// across rows and each destination word is loaded and stored once per
// row instead of once per term. Lookup tables come from the per-field
// multiplier memos, so the traditional baseline and the compiled PPM
// path share identical region-op arithmetic — the paper's comparisons
// assume a common back end. Apply itself stays serial (and, with the
// memos warm, allocation-free); callers own any block-level
// parallelism.
func Apply(f gf.Field, m *matrix.Matrix, in, out [][]byte, stats *Stats) {
	if m.Rows() != len(out) || m.Cols() != len(in) {
		panic(fmt.Sprintf("kernel: matrix %s against %d inputs, %d outputs", m.Dims(), len(in), len(out)))
	}
	applyTiled(f, m, in, out, 0, regionLen(out))
	stats.AddMultXORs(int64(m.NNZ()))
}

// applyTiled is Apply's tiled inner driver over the [lo, hi) byte range.
//
//ppm:hotpath
//ppm:counted Apply accounts the full NNZ once per logical application
func applyTiled(f gf.Field, m *matrix.Matrix, in, out [][]byte, lo, hi int) {
	if lo >= hi || m.Rows() == 0 {
		return
	}
	arena := getViewArena(len(in))
	views := arena.take(len(in))
	tile := TileSize()
	for t := lo; t < hi; t += tile {
		te := t + tile
		if te > hi {
			te = hi
		}
		for j := range in {
			views[j] = in[j][t:te]
		}
		for i := 0; i < m.Rows(); i++ {
			f.MultXORsMulti(out[i][t:te], views, m.Row(i))
		}
	}
	arena.release()
}

// Zero clears the given regions.
func Zero(regions [][]byte) {
	for _, r := range regions {
		for i := range r {
			r[i] = 0
		}
	}
}

// Product computes out = F^-1 * S * BS into the out regions using the
// requested sequence, where finv is f x f, s is f x q, in holds the q
// surviving regions and out the f faulty regions. The scratch slice, if
// non-nil, must hold f regions of the same size and is used by the
// Normal sequence to hold the intermediate S * BS; pass nil to chain
// the two applications through pooled tile-sized scratch, which keeps
// the intermediate product cache-resident and never materialises it at
// full size.
func Product(f gf.Field, finv, s *matrix.Matrix, in, out, scratch [][]byte, seq Sequence, stats *Stats) {
	if finv.Rows() != finv.Cols() || finv.Cols() != s.Rows() {
		panic(fmt.Sprintf("kernel: shape mismatch F^-1 %s vs S %s", finv.Dims(), s.Dims()))
	}
	switch seq {
	case MatrixFirst:
		g := finv.Mul(s) // scalar-level product; cost ignored per §II-B
		Zero(out)
		Apply(f, g, in, out, stats)
	case Normal:
		if s.Cols() != len(in) || finv.Rows() != len(out) {
			panic(fmt.Sprintf("kernel: matrices %s,%s against %d inputs, %d outputs", finv.Dims(), s.Dims(), len(in), len(out)))
		}
		matChainSpan(f, finv, s, in, out, scratch, 0, regionLen(out))
		stats.AddMultXORs(int64(s.NNZ() + finv.NNZ()))
	default:
		panic(fmt.Sprintf("kernel: unknown sequence %d", int(seq)))
	}
}

// matChainSpan runs the Normal sequence over [lo, hi) tile by tile:
// per tile, S * BS lands in scratch and F^-1 consumes it immediately,
// so the intermediate stays cache-resident (word positions are
// independent, making per-tile chaining exact). With nil scratch the
// intermediate lives in pooled tile-sized buffers.
//
//ppm:hotpath
//ppm:counted Product accounts u(S)+u(F^-1) once per logical product
func matChainSpan(f gf.Field, finv, s *matrix.Matrix, in, out, scratch [][]byte, lo, hi int) {
	if lo >= hi {
		return
	}
	tile := TileSize()
	arena := getViewArena(len(in) + 2*len(out))
	views := arena.take(len(in))
	mid := arena.take(len(out))
	outs := arena.take(len(out))
	var sb *Scratch
	if scratch == nil {
		span := hi - lo
		if span > tile {
			span = tile
		}
		sb = GetScratch(len(out), span)
		scratch = sb.Regions()
	}
	for t := lo; t < hi; t += tile {
		te := t + tile
		if te > hi {
			te = hi
		}
		n := te - t
		for j := range in {
			views[j] = in[j][t:te]
		}
		for i := range out {
			if sb != nil {
				mid[i] = scratch[i][:n]
			} else {
				mid[i] = scratch[i][t:te]
			}
			outs[i] = out[i][t:te]
		}
		Zero(mid)
		for i := 0; i < s.Rows(); i++ {
			f.MultXORsMulti(mid[i], views, s.Row(i))
		}
		Zero(outs)
		for i := 0; i < finv.Rows(); i++ {
			f.MultXORsMulti(outs[i], mid, finv.Row(i))
		}
	}
	sb.Release()
	arena.release()
}

// AllocRegions allocates count regions of size bytes backed by one
// contiguous buffer.
func AllocRegions(count, size int) [][]byte {
	backing := make([]byte, count*size)
	regions := make([][]byte, count)
	for i := range regions {
		regions[i] = backing[i*size : (i+1)*size : (i+1)*size]
	}
	return regions
}

func regionLen(regions [][]byte) int {
	if len(regions) == 0 {
		return 0
	}
	return len(regions[0])
}
