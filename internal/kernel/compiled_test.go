package kernel

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"ppm/internal/gf"
)

// TestCompiledApplyMatchesApply: the lowered form computes exactly what
// the matrix form computes, with the same operation count.
func TestCompiledApplyMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	for _, f := range []gf.Field{gf.GF8, gf.GF16, gf.GF32} {
		f := f
		t.Run(fmt.Sprintf("GF%d", f.W()), func(t *testing.T) {
			m := randMatrix(rng, f, 4, 7)
			m.Set(1, 1, 0)
			m.Set(3, 6, 0)
			n := 32 * f.WordBytes()
			in := randRegions(rng, 7, n)

			plain := AllocRegions(4, n)
			var plainStats Stats
			Apply(f, m, in, plain, &plainStats)

			cm := Compile(f, m)
			if cm.Rows() != 4 || cm.Cols() != 7 {
				t.Fatalf("compiled dims %dx%d", cm.Rows(), cm.Cols())
			}
			if cm.NNZ() != m.NNZ() {
				t.Fatalf("compiled NNZ %d != %d", cm.NNZ(), m.NNZ())
			}
			compiled := AllocRegions(4, n)
			var compiledStats Stats
			cm.Apply(in, compiled, &compiledStats)

			for i := range plain {
				if !bytes.Equal(plain[i], compiled[i]) {
					t.Fatalf("row %d differs", i)
				}
			}
			if plainStats.MultXORs() != compiledStats.MultXORs() {
				t.Fatalf("op counts differ: %d vs %d", plainStats.MultXORs(), compiledStats.MultXORs())
			}
		})
	}
}

func TestCompiledProductBothSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(152))
	f := gf.GF16
	finv := randInvertible(rng, f, 3)
	s := randMatrix(rng, f, 3, 6)
	n := 64
	in := randRegions(rng, 6, n)

	ref := AllocRegions(3, n)
	Product(f, finv, s, in, ref, nil, Normal, nil)

	cFinv, cS, cG := Compile(f, finv), Compile(f, s), Compile(f, finv.Mul(s))
	for _, seq := range []Sequence{Normal, MatrixFirst} {
		out := AllocRegions(3, n)
		var stats Stats
		CompiledProduct(cFinv, cS, cG, in, out, nil, seq, &stats)
		for i := range out {
			if !bytes.Equal(out[i], ref[i]) {
				t.Fatalf("%v: row %d differs from reference", seq, i)
			}
		}
		want := int64(cG.NNZ())
		if seq == Normal {
			want = int64(cFinv.NNZ() + cS.NNZ())
		}
		if stats.MultXORs() != want {
			t.Fatalf("%v: ops %d, want %d", seq, stats.MultXORs(), want)
		}
	}
}

func TestCompiledApplyShapePanics(t *testing.T) {
	cm := Compile(gf.GF8, randMatrix(rand.New(rand.NewSource(153)), gf.GF8, 2, 3))
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	cm.Apply(AllocRegions(2, 8), AllocRegions(2, 8), nil)
}

// TestCompileSharesMultipliers: equal coefficients compile to one
// multiplier (pointer-shared), keeping table memory proportional to the
// number of distinct coefficients.
func TestCompileSharesMultipliers(t *testing.T) {
	f := gf.GF16
	m := randMatrix(rand.New(rand.NewSource(154)), f, 1, 1)
	m.Set(0, 0, 0x55)
	big := Compile(f, m)
	_ = big
	// Build a 3x3 all-0x55 matrix; all 9 entries must share a multiplier.
	mm := randMatrix(rand.New(rand.NewSource(155)), f, 3, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			mm.Set(i, j, 0x55)
		}
	}
	cm := Compile(f, mm)
	first := cm.RowTerms(0)[0].Mult
	for i := 0; i < cm.Rows(); i++ {
		for _, term := range cm.RowTerms(i) {
			if term.Mult != first {
				t.Fatal("equal coefficients got distinct multipliers")
			}
		}
	}
}

func BenchmarkCompiledVsPlainApply(b *testing.B) {
	rng := rand.New(rand.NewSource(156))
	f := gf.GF16
	m := randMatrix(rng, f, 8, 16)
	in := randRegions(rng, 16, 4096)
	out := AllocRegions(8, 4096)
	b.Run("plain", func(b *testing.B) {
		b.SetBytes(int64(16 * 4096))
		for i := 0; i < b.N; i++ {
			Apply(f, m, in, out, nil)
		}
	})
	b.Run("compiled", func(b *testing.B) {
		cm := Compile(f, m)
		b.SetBytes(int64(16 * 4096))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cm.Apply(in, out, nil)
		}
	})
}
