package kernel

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestScratchShape: pooled scratch delivers the requested geometry with
// capped, contiguous regions, across growing and shrinking requests.
func TestScratchShape(t *testing.T) {
	for _, dims := range [][2]int{{1, 8}, {4, 64}, {2, 16}, {7, 128}} {
		sb := GetScratch(dims[0], dims[1])
		regions := sb.Regions()
		if len(regions) != dims[0] {
			t.Fatalf("got %d regions, want %d", len(regions), dims[0])
		}
		for i, r := range regions {
			if len(r) != dims[1] || cap(r) != dims[1] {
				t.Fatalf("region %d: len %d cap %d, want %d", i, len(r), cap(r), dims[1])
			}
			for j := range r {
				r[j] = byte(i) // exclusive ownership: writes must not alias
			}
		}
		for i, r := range regions {
			for j, b := range r {
				if b != byte(i) {
					t.Fatalf("region %d byte %d overwritten: regions alias", i, j)
				}
			}
		}
		sb.Release()
	}
}

// TestScratchConcurrent: concurrent Get/Release never hands two holders
// the same buffer (fails under -race if it does).
func TestScratchConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sb := GetScratch(3, 256)
				for _, r := range sb.Regions() {
					for j := range r {
						r[j] = byte(w)
					}
				}
				sb.Release()
			}
		}()
	}
	wg.Wait()
}

// TestWorkersRunAll: every index runs exactly once.
func TestWorkersRunAll(t *testing.T) {
	w := DefaultWorkers()
	for _, n := range []int{0, 1, 2, 5, 64, 500} {
		counts := make([]atomic.Int32, n)
		if err := w.Run(n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("n=%d: index %d ran %d times", n, i, c)
			}
		}
	}
}

// TestWorkersLowestIndexError: with several failing tasks the error of
// the lowest index is returned, deterministically, run after run.
func TestWorkersLowestIndexError(t *testing.T) {
	w := DefaultWorkers()
	for trial := 0; trial < 50; trial++ {
		err := w.Run(16, func(i int) error {
			if i == 3 || i == 7 || i == 12 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 3 failed" {
			t.Fatalf("trial %d: got %v, want the lowest-index error (task 3)", trial, err)
		}
	}
}

// TestWorkersPanicBecomesError: a panicking task is reported as that
// task's error instead of crashing the process or being dropped.
func TestWorkersPanicBecomesError(t *testing.T) {
	w := DefaultWorkers()
	err := w.Run(8, func(i int) error {
		if i == 2 {
			panic("injected failure")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "injected failure") {
		t.Fatalf("panic not surfaced: %v", err)
	}
	// A panic and a plain error race for the lowest index: index 1's
	// error must win over index 4's panic.
	sentinel := errors.New("plain failure")
	err = w.Run(8, func(i int) error {
		if i == 4 {
			panic("later panic")
		}
		if i == 1 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want the lower-index plain error", err)
	}
}

// TestWorkersNested: Run inside Run must not deadlock even when the
// outer fan-out saturates the pool (inner tasks fall back to inline
// execution on the submitting worker).
func TestWorkersNested(t *testing.T) {
	w := DefaultWorkers()
	var total atomic.Int64
	err := w.Run(32, func(i int) error {
		return w.Run(32, func(j int) error {
			total.Add(1)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := total.Load(); got != 32*32 {
		t.Fatalf("ran %d inner tasks, want %d", got, 32*32)
	}
}

// TestWorkersNestedError: errors propagate through nested Runs.
func TestWorkersNestedError(t *testing.T) {
	w := DefaultWorkers()
	err := w.Run(4, func(i int) error {
		return w.Run(4, func(j int) error {
			if i == 1 && j == 2 {
				return fmt.Errorf("inner %d/%d", i, j)
			}
			return nil
		})
	})
	if err == nil || !strings.Contains(err.Error(), "inner 1/2") {
		t.Fatalf("nested error lost: %v", err)
	}
}
