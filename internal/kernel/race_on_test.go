//go:build race

package kernel

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
