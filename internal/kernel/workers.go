package kernel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers is a persistent pool of goroutines shared by every parallel
// executor in the repository (the PPM group fan-out, the hybrid
// executor's chunked serial phases, and the block-parallel baseline).
// It replaces per-decode goroutine spawning: under a whole-disk rebuild
// the executors dispatch thousands of times, and reusing a fixed set of
// workers keeps that path free of goroutine-creation overhead and
// per-call error plumbing.
//
// The error contract is the one the executors rely on: Run collects the
// outcome of every task and returns the error from the lowest task
// index, deterministically, regardless of scheduling order. Panics
// inside a task are recovered and reported as that task's error — a
// failing sub-decode can never take down the process or, worse, be
// silently dropped by a goroutine that nobody joins.
//
//ppm:nocopy
type Workers struct {
	tasks chan func()
}

// NewWorkers starts a pool of n persistent worker goroutines.
func NewWorkers(n int) *Workers {
	if n < 1 {
		n = 1
	}
	w := &Workers{tasks: make(chan func())}
	for i := 0; i < n; i++ {
		go func() {
			for task := range w.tasks {
				task()
			}
		}()
	}
	return w
}

var (
	defaultWorkers     *Workers
	defaultWorkersOnce sync.Once
)

// DefaultWorkers returns the process-wide pool, sized to the core
// count, started lazily on first use.
func DefaultWorkers() *Workers {
	defaultWorkersOnce.Do(func() {
		defaultWorkers = NewWorkers(runtime.NumCPU())
	})
	return defaultWorkers
}

// runState is the shared state of one Run call. Task indices are
// claimed atomically so a single task closure serves every submission.
type runState struct {
	fn   func(int) error
	next atomic.Int64
	wg   sync.WaitGroup

	mu  sync.Mutex
	idx int
	err error
}

func (st *runState) runOne() {
	defer st.wg.Done()
	i := int(st.next.Add(1)) - 1
	if err := callTask(st.fn, i); err != nil {
		st.mu.Lock()
		if st.idx < 0 || i < st.idx {
			st.idx, st.err = i, err
		}
		st.mu.Unlock()
	}
}

// Run executes fn(0) .. fn(n-1) across the pool and waits for all of
// them. It returns the error of the lowest failing index (nil if every
// task succeeded); a panicking task counts as failed with an error
// describing the panic. Tasks that cannot be handed to an idle worker
// immediately run inline on the calling goroutine, so Run never blocks
// on a busy pool and may be nested (a task may itself call Run).
func (w *Workers) Run(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return callTask(fn, 0)
	}
	st := &runState{fn: fn, idx: -1}
	st.wg.Add(n)
	task := st.runOne
	for i := 0; i < n; i++ {
		select {
		case w.tasks <- task:
		default:
			task()
		}
	}
	st.wg.Wait()
	return st.err
}

// callTask invokes fn(i), converting a panic into an error.
func callTask(fn func(int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("kernel: task %d panicked: %v", i, r)
		}
	}()
	return fn(i)
}
