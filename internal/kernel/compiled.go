package kernel

import (
	"fmt"

	"ppm/internal/gf"
	"ppm/internal/matrix"
)

// CompiledMatrix is a matrix pre-lowered into per-coefficient
// multipliers: applying it skips both the zero-coefficient scan and the
// per-call lookup-table construction that Field.MultXORs pays at
// w = 16/32. Plans compile their sub-matrices once at build time, so
// repeated decodes (the whole-disk-failure case: every stripe fails the
// same way) run at table-free speed.
//
// A CompiledMatrix is immutable after Compile and safe for concurrent
// use — the PPM executor applies different compiled groups from
// different worker goroutines.
type CompiledMatrix struct {
	rows, cols int
	entries    [][]compiledEntry
	nnz        int
}

type compiledEntry struct {
	col  int
	mult gf.Multiplier
}

// Compile lowers m over the field. Multipliers are shared between
// equal coefficients (SD's all-ones disk-parity rows compile to one
// XOR multiplier).
func Compile(f gf.Field, m *matrix.Matrix) *CompiledMatrix {
	cm := &CompiledMatrix{
		rows:    m.Rows(),
		cols:    m.Cols(),
		entries: make([][]compiledEntry, m.Rows()),
	}
	cache := make(map[uint32]gf.Multiplier)
	for i := 0; i < m.Rows(); i++ {
		row := m.Row(i)
		for j, a := range row {
			if a == 0 {
				continue
			}
			mult, ok := cache[a]
			if !ok {
				mult = gf.MultiplierFor(f, a)
				cache[a] = mult
			}
			cm.entries[i] = append(cm.entries[i], compiledEntry{col: j, mult: mult})
			cm.nnz++
		}
	}
	return cm
}

// Rows returns the compiled row count.
func (cm *CompiledMatrix) Rows() int { return cm.rows }

// Cols returns the compiled column count.
func (cm *CompiledMatrix) Cols() int { return cm.cols }

// NNZ returns the nonzero count, i.e. the mult_XORs cost of one Apply.
func (cm *CompiledMatrix) NNZ() int { return cm.nnz }

// Apply computes out[i] ^= Σ_j M[i][j] * in[j], like kernel.Apply but
// on the pre-lowered form.
func (cm *CompiledMatrix) Apply(in, out [][]byte, stats *Stats) {
	if cm.rows != len(out) || cm.cols != len(in) {
		panic(fmt.Sprintf("kernel: compiled %dx%d against %d inputs, %d outputs", cm.rows, cm.cols, len(in), len(out)))
	}
	var ops int64
	for i, row := range cm.entries {
		dst := out[i]
		for _, e := range row {
			e.mult.MultXOR(dst, in[e.col])
			ops++
		}
	}
	stats.AddMultXORs(ops)
}

// CompiledProduct mirrors Product for compiled matrices: out =
// F^-1 * S * BS under the given sequence, where g is the compiled
// MatrixFirst product and finv/s the compiled Normal-sequence pair.
// Only the matrices the sequence needs may be non-nil.
func CompiledProduct(finv, s, g *CompiledMatrix, in, out, scratch [][]byte, seq Sequence, stats *Stats) {
	switch seq {
	case MatrixFirst:
		Zero(out)
		g.Apply(in, out, stats)
	case Normal:
		if scratch == nil {
			sb := GetScratch(len(out), regionLen(out))
			defer sb.Release()
			scratch = sb.Regions()
		}
		Zero(scratch)
		s.Apply(in, scratch, stats)
		Zero(out)
		finv.Apply(scratch, out, stats)
	default:
		panic(fmt.Sprintf("kernel: unknown sequence %d", int(seq)))
	}
}

// ChunkRanges splits a region byte range [0, size) into at most parts
// word-aligned, non-empty half-open ranges — the byte-range splitting
// used by block-level parallel decoding and by the hybrid executor's
// chunked serial phases.
func ChunkRanges(size, parts, wordBytes int) [][2]int {
	words := size / wordBytes
	if parts > words {
		parts = words
	}
	if parts < 1 {
		parts = 1
	}
	var ranges [][2]int
	start := 0
	for i := 0; i < parts; i++ {
		w := words / parts
		if i < words%parts {
			w++
		}
		end := start + w*wordBytes
		if end > start {
			ranges = append(ranges, [2]int{start, end})
		}
		start = end
	}
	return ranges
}

// SliceRegions returns the [lo, hi) sub-slices of each region.
func SliceRegions(regions [][]byte, lo, hi int) [][]byte {
	out := make([][]byte, len(regions))
	for i, r := range regions {
		out[i] = r[lo:hi]
	}
	return out
}
