package kernel

import (
	"errors"
	"fmt"

	"ppm/internal/gf"
	"ppm/internal/matrix"
	"ppm/internal/xorplan"
)

// CompiledMatrix is a matrix pre-lowered into fused per-row kernels:
// every row's nonzero coefficients are bound to their lookup tables at
// compile time (gf.CompileRow), so applying the matrix pays no
// zero-coefficient scan, no per-call table construction, and — because
// the row kernel streams all of a row's terms through each destination
// word in one pass — one destination load/store per row instead of one
// per nonzero term.
//
// Application is cache-blocked: the tiled driver applies the whole
// matrix to one tile of the byte range before the next (see tile.go),
// and regions of FanoutMinBytes() and up fan their tile spans out
// across the persistent worker pool, composing with the executors'
// group-level parallelism.
//
// A CompiledMatrix is immutable after Compile and safe for concurrent
// use — the PPM executor applies different compiled groups from
// different worker goroutines.
type CompiledMatrix struct {
	rows, cols int
	kerns      []gf.RowKernel
	// mults holds the per-row (column, multiplier) pairs of the same
	// lowering, used by term-at-a-time consumers (the small-write path)
	// and by tests asserting multiplier sharing.
	mults [][]CompiledTerm
	nnz   int
	// prog, when non-nil, is the compiled XOR program (internal/xorplan)
	// backing the region-application paths instead of the row kernels —
	// attached by Compile when XorplanActive (GFNI absent, or forced).
	prog *xorplan.Program
}

// CompiledTerm is one nonzero coefficient of a compiled row.
type CompiledTerm struct {
	Col  int
	Mult gf.Multiplier
}

// Compile lowers m over the field. Multipliers are shared between
// equal coefficients (SD's all-ones disk-parity rows compile to one
// XOR multiplier), and each row is additionally fused into a
// gf.RowKernel.
func Compile(f gf.Field, m *matrix.Matrix) *CompiledMatrix {
	cm := &CompiledMatrix{
		rows:  m.Rows(),
		cols:  m.Cols(),
		kerns: make([]gf.RowKernel, m.Rows()),
		mults: make([][]CompiledTerm, m.Rows()),
	}
	cache := make(map[uint32]gf.Multiplier)
	for i := 0; i < m.Rows(); i++ {
		row := m.Row(i)
		cm.kerns[i] = gf.CompileRow(f, row)
		for j, a := range row {
			if a == 0 {
				continue
			}
			mult, ok := cache[a]
			if !ok {
				mult = gf.MultiplierFor(f, a)
				cache[a] = mult
			}
			cm.mults[i] = append(cm.mults[i], CompiledTerm{Col: j, Mult: mult})
			cm.nnz++
		}
	}
	if XorplanActive() {
		// Compiled programs are memoized process-wide, so recompiling the
		// same matrix (per-stripe decode plans, pooled engines) reuses one
		// schedule. A lowering failure just leaves the row kernels serving
		// — except a plan-verification rejection (PPM_VERIFY_PLANS=1),
		// which means the compiler emitted provably wrong code: falling
		// back would mask exactly the bug the gate exists to catch.
		if prog, err := xorplan.CompileCached(f, m); err == nil {
			cm.prog = prog
		} else if errors.Is(err, xorplan.ErrVerify) {
			panic(err)
		}
	}
	return cm
}

// Rows returns the compiled row count.
func (cm *CompiledMatrix) Rows() int { return cm.rows }

// Cols returns the compiled column count.
func (cm *CompiledMatrix) Cols() int { return cm.cols }

// NNZ returns the nonzero count, i.e. the mult_XORs cost of one Apply.
func (cm *CompiledMatrix) NNZ() int { return cm.nnz }

// RowTerms returns row i's nonzero terms in column order.
func (cm *CompiledMatrix) RowTerms(i int) []CompiledTerm { return cm.mults[i] }

// checkShape panics unless the in/out counts match the matrix.
func (cm *CompiledMatrix) checkShape(in, out [][]byte) {
	if cm.rows != len(out) || cm.cols != len(in) {
		panic(fmt.Sprintf("kernel: compiled %dx%d against %d inputs, %d outputs", cm.rows, cm.cols, len(in), len(out)))
	}
}

// Apply computes out[i] ^= Σ_j M[i][j] * in[j], like kernel.Apply but
// on the pre-lowered form: tiled, fused, and — for regions of
// FanoutMinBytes() and up — fanned out across the worker pool.
func (cm *CompiledMatrix) Apply(in, out [][]byte, stats *Stats) {
	cm.checkShape(in, out)
	size := regionLen(out)
	if spans := tileSpans(size, applyWorkers(), TileSize()); spans != nil && size >= FanoutMinBytes() {
		if err := DefaultWorkers().Run(len(spans), func(i int) error {
			cm.applySpan(in, out, spans[i][0], spans[i][1])
			return nil
		}); err != nil {
			panic(err)
		}
	} else {
		cm.applySpan(in, out, 0, size)
	}
	stats.AddMultXORs(int64(cm.nnz))
}

// ApplyRange applies the matrix to the [lo, hi) byte sub-range of every
// region, serially tiled — the building block byte-range executors
// (hybrid chunking, the block-parallel baseline) use to run one
// compiled matrix over worker-private chunks. Counts the full nnz as
// operations; callers splitting one logical apply across ranges pass
// nil stats and account once themselves.
func (cm *CompiledMatrix) ApplyRange(in, out [][]byte, lo, hi int, stats *Stats) {
	cm.checkShape(in, out)
	cm.applySpan(in, out, lo, hi)
	stats.AddMultXORs(int64(cm.nnz))
}

// applySpan is the tiled inner driver: whole matrix, one tile at a
// time, with pooled view headers presenting each tile of the sources
// to the fused row kernels.
//
//ppm:hotpath
//ppm:counted Apply/ApplyRange account the full NNZ once per logical application
func (cm *CompiledMatrix) applySpan(in, out [][]byte, lo, hi int) {
	if lo >= hi {
		return
	}
	if cm.prog != nil && !cm.prog.HasDerivative() {
		// The XOR program accumulates the same sum and does its own
		// arena-budget tiling (capped at this driver's tile, so the two
		// blockings compose). Derivative-scheduled programs copy between
		// output rows and only run in overwrite mode — see ApplyOverwrite.
		cm.prog.RunAccumulate(in, out, lo, hi)
		return
	}
	arena := getViewArena(len(in))
	views := arena.take(len(in))
	tile := TileSize()
	for t := lo; t < hi; t += tile {
		te := t + tile
		if te > hi {
			te = hi
		}
		for j := range in {
			views[j] = in[j][t:te]
		}
		for i, kern := range cm.kerns {
			kern.MultXOR(out[i][t:te], views)
		}
	}
	arena.release()
}

// ApplyOverwrite computes out[i] = Σ_j M[i][j] * in[j], fully
// overwriting out — Apply's contract minus the caller-side zeroing
// pass. With an XOR program attached the zeroing disappears entirely
// (overwrite runs seed each destination with its first fused XOR, and
// derivative-scheduled rows start from a sibling row instead of
// nothing); otherwise it zeroes and falls back to Apply.
func (cm *CompiledMatrix) ApplyOverwrite(in, out [][]byte, stats *Stats) {
	cm.checkShape(in, out)
	if cm.prog == nil {
		Zero(out)
		cm.Apply(in, out, stats)
		return
	}
	size := regionLen(out)
	if spans := tileSpans(size, applyWorkers(), TileSize()); spans != nil && size >= FanoutMinBytes() {
		if err := DefaultWorkers().Run(len(spans), func(i int) error {
			cm.prog.RunOverwrite(in, out, spans[i][0], spans[i][1])
			return nil
		}); err != nil {
			panic(err)
		}
	} else {
		cm.prog.RunOverwrite(in, out, 0, size)
	}
	stats.AddMultXORs(int64(cm.nnz))
}

// chainSpan runs the Normal sequence over [lo, hi) with the
// intermediate product tiled through cache: per tile, S * BS lands in
// a tile-sized scratch and F^-1 consumes it immediately, so the
// intermediate regions never materialise at full size (word positions
// are independent, which makes the per-tile chaining exact). scratch,
// if non-nil, provides caller-owned intermediate regions instead of
// pooled tile scratch.
//
//ppm:hotpath
//ppm:counted CompiledProduct accounts u(S)+u(F^-1) once per logical product
func chainSpan(finv, s *CompiledMatrix, in, out, scratch [][]byte, lo, hi int) {
	if lo >= hi {
		return
	}
	tile := TileSize()
	arena := getViewArena(len(in) + 2*len(out))
	views := arena.take(len(in))
	mid := arena.take(len(out))
	outs := arena.take(len(out))
	var sb *Scratch
	if scratch == nil {
		span := hi - lo
		if span > tile {
			span = tile
		}
		sb = GetScratch(len(out), span)
		scratch = sb.Regions() // tile-relative: sliced [:n] per tile below
	}
	for t := lo; t < hi; t += tile {
		te := t + tile
		if te > hi {
			te = hi
		}
		n := te - t
		for j := range in {
			views[j] = in[j][t:te]
		}
		for i := range out {
			if sb != nil {
				mid[i] = scratch[i][:n]
			} else {
				mid[i] = scratch[i][t:te]
			}
			outs[i] = out[i][t:te]
		}
		// Both stages fully overwrite their destinations, so when a stage
		// carries an XOR program its overwrite run replaces the zeroing
		// pass and the row kernels for that tile.
		if s.prog != nil {
			s.prog.RunOverwrite(views, mid, 0, n)
		} else {
			Zero(mid)
			for i, kern := range s.kerns {
				kern.MultXOR(mid[i], views)
			}
		}
		if finv.prog != nil {
			finv.prog.RunOverwrite(mid, outs, 0, n)
		} else {
			Zero(outs)
			for i, kern := range finv.kerns {
				kern.MultXOR(outs[i], mid)
			}
		}
	}
	sb.Release()
	arena.release()
}

// CompiledProduct mirrors Product for compiled matrices: out =
// F^-1 * S * BS under the given sequence, where g is the compiled
// MatrixFirst product and finv/s the compiled Normal-sequence pair.
// Only the matrices the sequence needs may be non-nil. The Normal
// sequence chains both applications tile-by-tile, so the intermediate
// S * BS stays cache-resident; large regions fan tile spans across the
// worker pool.
func CompiledProduct(finv, s, g *CompiledMatrix, in, out, scratch [][]byte, seq Sequence, stats *Stats) {
	switch seq {
	case MatrixFirst:
		g.ApplyOverwrite(in, out, stats)
	case Normal:
		s.checkShape(in, scratchOrOut(scratch, out))
		finv.checkShape(scratchOrOut(scratch, out), out)
		size := regionLen(out)
		if spans := tileSpans(size, applyWorkers(), TileSize()); spans != nil && size >= FanoutMinBytes() {
			if err := DefaultWorkers().Run(len(spans), func(i int) error {
				chainSpan(finv, s, in, out, scratch, spans[i][0], spans[i][1])
				return nil
			}); err != nil {
				panic(err)
			}
		} else {
			chainSpan(finv, s, in, out, scratch, 0, size)
		}
		stats.AddMultXORs(int64(s.nnz + finv.nnz))
	default:
		panic(fmt.Sprintf("kernel: unknown sequence %d", int(seq)))
	}
}

// CompiledProductRange is CompiledProduct restricted to the [lo, hi)
// byte sub-range and always serial — for byte-range executors
// (block-parallel decoding, hybrid chunk phases) that own their own
// fan-out and call this from per-chunk workers. Unlike CompiledProduct
// it also zeroes the output range itself for MatrixFirst, so one chunk
// worker never touches another's bytes. Counts the full matrix nnz;
// callers splitting one logical product across ranges pass nil stats
// and account once themselves.
func CompiledProductRange(finv, s, g *CompiledMatrix, in, out, scratch [][]byte, seq Sequence, lo, hi int, stats *Stats) {
	switch seq {
	case MatrixFirst:
		g.checkShape(in, out)
		if g.prog != nil {
			g.prog.RunOverwrite(in, out, lo, hi)
		} else {
			ZeroRange(out, lo, hi)
			g.applySpan(in, out, lo, hi)
		}
		stats.AddMultXORs(int64(g.nnz))
	case Normal:
		s.checkShape(in, scratchOrOut(scratch, out))
		finv.checkShape(scratchOrOut(scratch, out), out)
		chainSpan(finv, s, in, out, scratch, lo, hi)
		stats.AddMultXORs(int64(s.nnz + finv.nnz))
	default:
		panic(fmt.Sprintf("kernel: unknown sequence %d", int(seq)))
	}
}

// ZeroRange clears the [lo, hi) byte range of every region without
// allocating sub-slice headers.
func ZeroRange(regions [][]byte, lo, hi int) {
	for _, r := range regions {
		r := r[lo:hi]
		for i := range r {
			r[i] = 0
		}
	}
}

// scratchOrOut sizes shape checks for the Normal chain: the
// intermediate vector has one region per output row.
func scratchOrOut(scratch, out [][]byte) [][]byte {
	if scratch != nil {
		return scratch
	}
	return out
}

// ChunkRanges splits a region byte range [0, size) into at most parts
// word-aligned, non-empty half-open ranges — the byte-range splitting
// used by block-level parallel decoding and by the hybrid executor's
// chunked serial phases.
func ChunkRanges(size, parts, wordBytes int) [][2]int {
	words := size / wordBytes
	if parts > words {
		parts = words
	}
	if parts < 1 {
		parts = 1
	}
	var ranges [][2]int
	start := 0
	for i := 0; i < parts; i++ {
		w := words / parts
		if i < words%parts {
			w++
		}
		end := start + w*wordBytes
		if end > start {
			ranges = append(ranges, [2]int{start, end})
		}
		start = end
	}
	return ranges
}

// SliceRegions returns the [lo, hi) sub-slices of each region.
func SliceRegions(regions [][]byte, lo, hi int) [][]byte {
	out := make([][]byte, len(regions))
	for i, r := range regions {
		out[i] = r[lo:hi]
	}
	return out
}
