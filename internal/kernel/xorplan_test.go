package kernel

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"ppm/internal/gf"
	"ppm/internal/matrix"
)

// compilePair compiles m with the row-kernel backend and with the XOR
// program forced, for differential checks.
func compilePair(f gf.Field, m *matrix.Matrix) (off, on *CompiledMatrix) {
	defer SetXorplanMode(SetXorplanMode(XorplanOff))
	off = Compile(f, m)
	SetXorplanMode(XorplanOn)
	on = Compile(f, m)
	return off, on
}

func TestXorplanModeSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	m := randMatrix(rng, gf.GF8, 3, 5)
	defer SetXorplanMode(SetXorplanMode(XorplanOff))

	SetXorplanMode(XorplanOff)
	if Compile(gf.GF8, m).XORProgram() != nil {
		t.Error("XorplanOff still attached a program")
	}
	SetXorplanMode(XorplanOn)
	if Compile(gf.GF8, m).XORProgram() == nil {
		t.Error("XorplanOn did not attach a program")
	}
	SetXorplanMode(XorplanAuto)
	defer gf.SetAffineKernels(gf.SetAffineKernels(false))
	if !XorplanActive() {
		t.Error("Auto mode inactive with the affine kernels off")
	}
	if Compile(gf.GF8, m).XORProgram() == nil {
		t.Error("Auto mode did not attach a program with the affine kernels off")
	}
}

// TestXorplanByteIdentity runs every compiled application path with
// the XOR backend against the row-kernel backend (and GFNI when the
// host has it): the bytes must be identical. Run under -race this also
// exercises the pooled run arenas from the fanout workers.
func TestXorplanByteIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	defer SetFanoutMinBytes(0)
	SetFanoutMinBytes(4 << 10) // force the fanout path at test sizes
	for _, f := range []gf.Field{gf.GF8, gf.GF16, gf.GF32} {
		for _, size := range []int{512, 40960} {
			name := fmt.Sprintf("gf%d_%dB", f.W(), size)
			m := randMatrix(rng, f, 4, 8)
			cmOff, cmOn := compilePair(f, m)
			if cmOn.XORProgram() == nil {
				t.Fatalf("%s: forced compile carries no program", name)
			}
			in := randRegions(rng, 8, size)

			// Accumulate: Apply on identical pre-filled outputs.
			outA := randRegions(rng, 4, size)
			outB := make([][]byte, 4)
			for i := range outB {
				outB[i] = append([]byte(nil), outA[i]...)
			}
			var stA, stB Stats
			cmOff.Apply(in, outA, &stA)
			cmOn.Apply(in, outB, &stB)
			for i := range outA {
				if !bytes.Equal(outA[i], outB[i]) {
					t.Errorf("%s: Apply row %d diverges between backends", name, i)
				}
			}
			if stA.MultXORs() != stB.MultXORs() {
				t.Errorf("%s: Apply accounting diverges: %d vs %d mult_XORs", name, stA.MultXORs(), stB.MultXORs())
			}

			// Overwrite: stale garbage must be fully replaced.
			ovA := randRegions(rng, 4, size)
			ovB := randRegions(rng, 4, size)
			cmOff.ApplyOverwrite(in, ovA, &stA)
			cmOn.ApplyOverwrite(in, ovB, &stB)
			for i := range ovA {
				if !bytes.Equal(ovA[i], ovB[i]) {
					t.Errorf("%s: ApplyOverwrite row %d diverges between backends", name, i)
				}
			}

			// Range path (block-parallel decode shape), word-aligned window.
			lo, hi := 0, size
			if size > 1024 {
				lo, hi = 256, size-256
			}
			rgA := randRegions(rng, 4, size)
			rgB := make([][]byte, 4)
			for i := range rgB {
				rgB[i] = append([]byte(nil), rgA[i]...)
			}
			CompiledProductRange(nil, nil, cmOff, in, rgA, nil, MatrixFirst, lo, hi, &stA)
			CompiledProductRange(nil, nil, cmOn, in, rgB, nil, MatrixFirst, lo, hi, &stB)
			for i := range rgA {
				if !bytes.Equal(rgA[i], rgB[i]) {
					t.Errorf("%s: CompiledProductRange row %d diverges between backends", name, i)
				}
			}
		}
	}
}

// TestXorplanChainIdentity pins the Normal-sequence tile chain: both
// stages through the XOR backend against both through the row kernels.
func TestXorplanChainIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for _, f := range []gf.Field{gf.GF8, gf.GF16} {
		size := 24 << 10
		s := randMatrix(rng, f, 4, 8)
		finv := randMatrix(rng, f, 4, 4)
		sOff, sOn := compilePair(f, s)
		fOff, fOn := compilePair(f, finv)
		in := randRegions(rng, 8, size)
		outA := randRegions(rng, 4, size)
		outB := randRegions(rng, 4, size)
		var stA, stB Stats
		CompiledProduct(fOff, sOff, nil, in, outA, nil, Normal, &stA)
		CompiledProduct(fOn, sOn, nil, in, outB, nil, Normal, &stB)
		for i := range outA {
			if !bytes.Equal(outA[i], outB[i]) {
				t.Errorf("gf%d: Normal chain row %d diverges between backends", f.W(), i)
			}
		}
		if stA.MultXORs() != stB.MultXORs() {
			t.Errorf("gf%d: chain accounting diverges: %d vs %d", f.W(), stA.MultXORs(), stB.MultXORs())
		}
	}
}

// TestXorplanApplyZeroAllocs pins the steady-state allocation contract
// of the serial compiled path with the XOR backend attached.
func TestXorplanApplyZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector defeats sync.Pool reuse")
	}
	rng := rand.New(rand.NewSource(94))
	m := randMatrix(rng, gf.GF16, 4, 10)
	defer SetXorplanMode(SetXorplanMode(XorplanOn))
	cm := Compile(gf.GF16, m)
	if cm.XORProgram() == nil {
		t.Fatal("forced compile carries no program")
	}
	size := 64 << 10 // below FanoutMinBytes: the serial span path
	in := randRegions(rng, 10, size)
	out := randRegions(rng, 4, size)
	var stats Stats
	cm.Apply(in, out, &stats) // warm the pools
	cm.ApplyOverwrite(in, out, &stats)
	if avg := testing.AllocsPerRun(10, func() {
		cm.Apply(in, out, &stats)
	}); avg != 0 {
		t.Errorf("Apply with XOR backend allocates %v objects/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(10, func() {
		cm.ApplyOverwrite(in, out, &stats)
	}); avg != 0 {
		t.Errorf("ApplyOverwrite with XOR backend allocates %v objects/op, want 0", avg)
	}
}
