package kernel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Cache blocking. The kernel applies a decode matrix to whole-sector
// regions; at multi-megabyte sector sizes a row-at-a-time sweep streams
// every source region through the cache once per row. The tiled driver
// instead splits the byte range into tiles (default 32 KiB) and applies
// the *whole matrix* to one tile before moving to the next, so a tile's
// source data, loaded by the first row, is still cache-resident for
// every later row, and the Normal sequence's intermediate S*BS product
// never leaves cache at all (see chained product in compiled.go).
//
// Tile size is a process-wide tuning knob: 32 KiB keeps a typical
// decode working set (tile x survivor count) inside L2 while staying
// large enough that per-tile bookkeeping is noise. SetTileSize adjusts
// it for unusual cache hierarchies; the differential tests shrink it to
// force many-tile execution on small regions.

const (
	defaultTileBytes = 32 << 10
	// minTileBytes bounds the knob from below: tiles smaller than this
	// spend more time re-slicing views than multiplying.
	minTileBytes = 512
	// defaultFanoutMinBytes is the region size at which the compiled
	// apply fans tile spans out across the worker pool: below it the
	// fan-out dispatch costs more than it overlaps, and keeping small
	// regions serial preserves the allocation-free repeated-decode path.
	defaultFanoutMinBytes = 1 << 20
	// minFanoutBytes bounds the fan-out threshold from below: fanning
	// out sub-tile regions is pure dispatch overhead.
	minFanoutBytes = 4 << 10
)

var (
	tileBytes   atomic.Int64
	fanoutBytes atomic.Int64
)

func init() {
	tileBytes.Store(defaultTileBytes)
	fanoutBytes.Store(defaultFanoutMinBytes)
}

// TileSize returns the current cache-blocking tile size in bytes.
func TileSize() int { return int(tileBytes.Load()) }

// SetTileSize sets the cache-blocking tile size. n is rounded up to a
// multiple of 8 bytes (an exact multiple of every supported GF word
// size) and clamped below at 512; n <= 0 restores the 32 KiB default.
// Safe to call concurrently with running decodes — in-flight
// applications keep the size they started with.
func SetTileSize(n int) {
	if n <= 0 {
		n = defaultTileBytes
	}
	if n < minTileBytes {
		n = minTileBytes
	}
	tileBytes.Store(int64((n + 7) &^ 7))
}

// FanoutMinBytes returns the region size at which one compiled apply
// fans its tile spans out across the worker pool.
func FanoutMinBytes() int { return int(fanoutBytes.Load()) }

// SetFanoutMinBytes sets the worker fan-out threshold. n is clamped
// below at 4 KiB; n <= 0 restores the 1 MiB default. Like the tile
// size it is a process-wide knob the autotuner owns: safe to adjust
// concurrently with running decodes, which keep the threshold they
// started with.
func SetFanoutMinBytes(n int) {
	if n <= 0 {
		n = defaultFanoutMinBytes
	}
	if n < minFanoutBytes {
		n = minFanoutBytes
	}
	fanoutBytes.Store(int64(n))
}

// tileSpans splits [0, size) into at most `parts` spans of whole tiles
// (the last span absorbs the sub-tile remainder), for fanning the tile
// loop of one apply across workers. Returns nil when one span suffices.
func tileSpans(size, parts, tile int) [][2]int {
	if parts > size/tile {
		parts = size / tile
	}
	if parts <= 1 {
		return nil
	}
	tiles := size / tile
	spans := make([][2]int, 0, parts)
	start := 0
	for i := 0; i < parts; i++ {
		n := tiles / parts
		if i < tiles%parts {
			n++
		}
		end := start + n*tile
		if i == parts-1 {
			end = size
		}
		if end > start {
			spans = append(spans, [2]int{start, end})
		}
		start = end
	}
	return spans
}

// applyWorkers is the fan-out width for one large-region apply: the
// core count, the same budget the executors draw on. The worker pool's
// inline-fallback dispatch keeps nesting safe (an apply running inside
// a group worker hands tiles to idle workers or runs them itself).
func applyWorkers() int { return runtime.NumCPU() }

// viewArena is a pooled arena of region-view headers ([lo:hi] sub-slices
// of caller regions), the per-apply scratch the tiled driver needs to
// present one tile of every source to the fused row kernels. Pooled and
// cleared on release so the repeated-decode path allocates nothing and
// the pool never pins caller buffers.
//
//ppm:nocopy
type viewArena struct {
	views [][]byte
	used  int
}

var viewPool = sync.Pool{New: func() interface{} { return new(viewArena) }}

func getViewArena(capacity int) *viewArena {
	a := viewPool.Get().(*viewArena)
	if cap(a.views) < capacity {
		a.views = make([][]byte, capacity)
	}
	a.views = a.views[:capacity]
	a.used = 0
	return a
}

// take returns n cleared view slots from the arena.
func (a *viewArena) take(n int) [][]byte {
	v := a.views[a.used : a.used+n : a.used+n]
	a.used += n
	return v
}

func (a *viewArena) release() {
	for i := range a.views {
		a.views[i] = nil
	}
	viewPool.Put(a)
}

// ChunkRangesAligned is ChunkRanges with the boundaries additionally
// aligned to the current tile size when every part is at least two
// tiles long — byte-range executors (hybrid serial phases, the
// block-parallel baseline) use it so their chunk splits compose with
// the kernel's tiling instead of shearing tiles across workers. For
// smaller ranges it degrades to plain word alignment.
func ChunkRangesAligned(size, parts, wordBytes int) [][2]int {
	tile := TileSize()
	if parts > 1 && size >= 2*tile*parts {
		spans := tileSpans(size, parts, tile)
		if spans != nil {
			return spans
		}
	}
	return ChunkRanges(size, parts, wordBytes)
}
