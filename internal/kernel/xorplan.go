package kernel

import (
	"os"
	"sync/atomic"

	"ppm/internal/gf"
	"ppm/internal/xorplan"
)

// XorplanMode selects whether Compile attaches a compiled XOR program
// (internal/xorplan) to back the matrix-application paths. The XOR
// backend is byte-identical with the table and affine kernels; it
// exists to beat the portable table path when the GFNI affine kernels
// are unavailable, so Auto turns it on exactly then.
type XorplanMode int32

const (
	// XorplanAuto: on iff the GFNI affine kernels are off.
	XorplanAuto XorplanMode = iota
	// XorplanOn forces the XOR backend regardless of GFNI.
	XorplanOn
	// XorplanOff disables it; the row kernels serve every apply.
	XorplanOff
)

var xorplanMode atomic.Int32

// PPM_FORCE_XORPLAN=1 forces the XOR-program backend — the env-var
// mirror of SetXorplanMode(XorplanOn), used by the CI matrix legs and
// differential harnesses. PPM_FORCE_XORPLAN=0 forces it off.
func init() {
	switch os.Getenv("PPM_FORCE_XORPLAN") {
	case "1":
		xorplanMode.Store(int32(XorplanOn))
	case "0":
		xorplanMode.Store(int32(XorplanOff))
	}
}

// SetXorplanMode sets the backend-selection mode and returns the
// previous one (restore idiom:
// defer kernel.SetXorplanMode(kernel.SetXorplanMode(kernel.XorplanOn))).
// Affects matrices compiled afterwards; already-compiled matrices keep
// the backend they were compiled with.
func SetXorplanMode(m XorplanMode) (prev XorplanMode) {
	prev = XorplanMode(xorplanMode.Load())
	xorplanMode.Store(int32(m))
	return prev
}

// XorplanActive reports whether a matrix compiled right now would
// carry an XOR program.
func XorplanActive() bool {
	switch XorplanMode(xorplanMode.Load()) {
	case XorplanOn:
		return true
	case XorplanOff:
		return false
	}
	return !gf.AffineKernels()
}

// XORProgram returns the compiled XOR program backing this matrix, or
// nil when the row kernels serve it. Inspection seam for tests and the
// autotuner.
func (cm *CompiledMatrix) XORProgram() *xorplan.Program { return cm.prog }
