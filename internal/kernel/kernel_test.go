package kernel

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"ppm/internal/gf"
	"ppm/internal/matrix"
)

func randRegions(rng *rand.Rand, count, size int) [][]byte {
	regions := AllocRegions(count, size)
	for _, r := range regions {
		rng.Read(r)
	}
	return regions
}

func randMatrix(rng *rand.Rand, f gf.Field, rows, cols int) *matrix.Matrix {
	m := matrix.New(f, rows, cols)
	mask := uint32((f.Order() - 1) & 0xFFFFFFFF)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, rng.Uint32()&mask)
		}
	}
	return m
}

func randInvertible(rng *rand.Rand, f gf.Field, n int) *matrix.Matrix {
	for {
		m := randMatrix(rng, f, n, n)
		if m.Invertible() {
			return m
		}
	}
}

// TestApplyMatchesScalar checks the region-level product against the
// scalar MulVec word by word.
func TestApplyMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	f := gf.GF8
	m := randMatrix(rng, f, 3, 5)
	in := randRegions(rng, 5, 16)
	out := AllocRegions(3, 16)

	var stats Stats
	Apply(f, m, in, out, &stats)

	for byteIdx := 0; byteIdx < 16; byteIdx++ {
		vec := make([]uint32, 5)
		for j := range vec {
			vec[j] = uint32(in[j][byteIdx])
		}
		want := m.MulVec(vec)
		for i := range out {
			if uint32(out[i][byteIdx]) != want[i] {
				t.Fatalf("byte %d row %d: got %d want %d", byteIdx, i, out[i][byteIdx], want[i])
			}
		}
	}
}

// TestApplyCountsNonzeros: the stats counter equals u(M) exactly.
func TestApplyCountsNonzeros(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	f := gf.GF8
	m := randMatrix(rng, f, 4, 6)
	m.Set(0, 0, 0)
	m.Set(3, 5, 0)
	in := randRegions(rng, 6, 8)
	out := AllocRegions(4, 8)
	var stats Stats
	Apply(f, m, in, out, &stats)
	if got := stats.MultXORs(); got != int64(m.NNZ()) {
		t.Fatalf("stats = %d, u(M) = %d", got, m.NNZ())
	}
}

func TestApplyAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	f := gf.GF8
	m := randMatrix(rng, f, 2, 2)
	in := randRegions(rng, 2, 8)
	out := AllocRegions(2, 8)
	Apply(f, m, in, out, nil)
	snapshot := append([]byte(nil), out[0]...)
	// Applying again XORs on top: doubles cancel in characteristic 2.
	Apply(f, m, in, out, nil)
	if !bytes.Equal(out[0], make([]byte, 8)) {
		t.Fatal("second Apply did not cancel the first")
	}
	_ = snapshot
}

func TestApplyShapeMismatchPanics(t *testing.T) {
	f := gf.GF8
	m := matrix.New(f, 2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	Apply(f, m, AllocRegions(2, 8), AllocRegions(2, 8), nil)
}

// TestProductSequencesAgree: Normal and MatrixFirst produce identical
// recovered blocks — the paper's two calculation orders differ only in
// cost, never in result.
func TestProductSequencesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	for _, f := range []gf.Field{gf.GF8, gf.GF16, gf.GF32} {
		f := f
		t.Run(fmt.Sprintf("GF%d", f.W()), func(t *testing.T) {
			finv := randInvertible(rng, f, 3)
			s := randMatrix(rng, f, 3, 7)
			in := randRegions(rng, 7, 32)

			outNormal := AllocRegions(3, 32)
			outMF := AllocRegions(3, 32)
			var statsN, statsMF Stats
			Product(f, finv, s, in, outNormal, nil, Normal, &statsN)
			Product(f, finv, s, in, outMF, nil, MatrixFirst, &statsMF)

			for i := range outNormal {
				if !bytes.Equal(outNormal[i], outMF[i]) {
					t.Fatalf("sequences disagree on block %d", i)
				}
			}
			if statsN.MultXORs() != int64(finv.NNZ()+s.NNZ()) {
				t.Fatalf("normal cost = %d, want u(F^-1)+u(S) = %d",
					statsN.MultXORs(), finv.NNZ()+s.NNZ())
			}
			if statsMF.MultXORs() != int64(finv.Mul(s).NNZ()) {
				t.Fatalf("matrix-first cost = %d, want u(F^-1*S) = %d",
					statsMF.MultXORs(), finv.Mul(s).NNZ())
			}
		})
	}
}

func TestProductWithScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	f := gf.GF16
	finv := randInvertible(rng, f, 2)
	s := randMatrix(rng, f, 2, 4)
	in := randRegions(rng, 4, 16)
	out1 := AllocRegions(2, 16)
	out2 := AllocRegions(2, 16)
	scratch := AllocRegions(2, 16)
	rng.Read(scratch[0]) // dirty scratch must not leak into the result
	Product(f, finv, s, in, out1, scratch, Normal, nil)
	Product(f, finv, s, in, out2, nil, Normal, nil)
	for i := range out1 {
		if !bytes.Equal(out1[i], out2[i]) {
			t.Fatal("scratch reuse changed the result")
		}
	}
}

func TestProductOverwritesOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	f := gf.GF8
	finv := randInvertible(rng, f, 2)
	s := randMatrix(rng, f, 2, 3)
	in := randRegions(rng, 3, 8)
	clean := AllocRegions(2, 8)
	dirty := randRegions(rng, 2, 8)
	Product(f, finv, s, in, clean, nil, MatrixFirst, nil)
	Product(f, finv, s, in, dirty, nil, MatrixFirst, nil)
	for i := range clean {
		if !bytes.Equal(clean[i], dirty[i]) {
			t.Fatal("stale output contents leaked into the product")
		}
	}
}

func TestStatsConcurrent(t *testing.T) {
	var s Stats
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				s.AddMultXORs(1)
			}
		}()
	}
	wg.Wait()
	if s.MultXORs() != 8000 {
		t.Fatalf("stats = %d, want 8000", s.MultXORs())
	}
	s.Reset()
	if s.MultXORs() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestNilStatsSafe(t *testing.T) {
	var s *Stats
	s.AddMultXORs(5)
	if s.MultXORs() != 0 {
		t.Fatal("nil stats returned nonzero")
	}
	s.Reset()
}

func TestSequenceString(t *testing.T) {
	if Normal.String() != "normal" || MatrixFirst.String() != "matrix-first" {
		t.Fatal("sequence names wrong")
	}
	if Sequence(9).String() == "" {
		t.Fatal("unknown sequence renders empty")
	}
}

func TestAllocRegions(t *testing.T) {
	rs := AllocRegions(3, 8)
	if len(rs) != 3 || len(rs[0]) != 8 {
		t.Fatal("wrong shape")
	}
	rs[0][7] = 1
	if rs[1][0] != 0 {
		t.Fatal("regions overlap")
	}
	if rs := AllocRegions(0, 8); len(rs) != 0 {
		t.Fatal("empty alloc wrong")
	}
}

func TestProductUnknownSequencePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	f := gf.GF8
	finv := randInvertible(rng, f, 2)
	s := randMatrix(rng, f, 2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown sequence did not panic")
		}
	}()
	Product(f, finv, s, randRegions(rng, 3, 8), AllocRegions(2, 8), nil, Sequence(99), nil)
}

func TestProductShapeMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(98))
	f := gf.GF8
	finv := randInvertible(rng, f, 2)
	s := randMatrix(rng, f, 3, 3) // F^-1 cols != S rows
	defer func() {
		if recover() == nil {
			t.Fatal("F/S shape mismatch did not panic")
		}
	}()
	Product(f, finv, s, randRegions(rng, 3, 8), AllocRegions(2, 8), nil, Normal, nil)
}

func TestCompiledProductUnknownSequencePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := gf.GF8
	cm := Compile(f, randMatrix(rng, f, 2, 3))
	defer func() {
		if recover() == nil {
			t.Fatal("unknown sequence did not panic")
		}
	}()
	CompiledProduct(cm, cm, cm, randRegions(rng, 3, 8), AllocRegions(2, 8), nil, Sequence(99), nil)
}

func TestCompiledProductWithScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	f := gf.GF8
	finv := randInvertible(rng, f, 2)
	s := randMatrix(rng, f, 2, 4)
	in := randRegions(rng, 4, 16)
	cFinv, cS := Compile(f, finv), Compile(f, s)

	withScratch := AllocRegions(2, 16)
	scratch := randRegions(rng, 2, 16) // dirty scratch must not leak
	CompiledProduct(cFinv, cS, nil, in, withScratch, scratch, Normal, nil)

	fresh := AllocRegions(2, 16)
	CompiledProduct(cFinv, cS, nil, in, fresh, nil, Normal, nil)
	for i := range fresh {
		if !bytes.Equal(withScratch[i], fresh[i]) {
			t.Fatal("scratch reuse changed the result")
		}
	}
}

func TestChunkRangesDegenerate(t *testing.T) {
	if got := ChunkRanges(0, 4, 4); len(got) != 0 {
		t.Fatalf("empty size produced ranges %v", got)
	}
	if got := ChunkRanges(8, 0, 4); len(got) != 1 || got[0] != [2]int{0, 8} {
		t.Fatalf("zero parts = %v", got)
	}
}

func TestSliceRegions(t *testing.T) {
	rs := AllocRegions(2, 16)
	rs[0][5] = 7
	sub := SliceRegions(rs, 4, 8)
	if len(sub) != 2 || len(sub[0]) != 4 || sub[0][1] != 7 {
		t.Fatalf("SliceRegions wrong: %v", sub[0])
	}
}
