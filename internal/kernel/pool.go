package kernel

import "sync"

// Scratch is a pooled set of equally-sized regions backed by one
// contiguous buffer, used for the Normal sequence's intermediate
// S * BS product. Getting scratch from the pool instead of calling
// AllocRegions per product is what makes the repeated-decode path
// (one plan, thousands of stripes) allocation-free: after warm-up the
// same backing buffers circulate through sync.Pool.
//
// A Scratch is owned exclusively by its getter until Release; the
// contents are NOT zeroed on Get (Product and CompiledProduct always
// Zero their scratch before accumulating into it).
//
//ppm:nocopy
type Scratch struct {
	backing []byte
	regions [][]byte
}

var scratchPool = sync.Pool{New: func() interface{} { return new(Scratch) }}

// GetScratch returns count regions of size bytes each from the pool,
// growing the pooled backing buffer if needed.
func GetScratch(count, size int) *Scratch {
	s := scratchPool.Get().(*Scratch)
	need := count * size
	if cap(s.backing) < need {
		s.backing = make([]byte, need)
	}
	s.backing = s.backing[:need]
	if cap(s.regions) < count {
		s.regions = make([][]byte, count)
	}
	s.regions = s.regions[:count]
	for i := 0; i < count; i++ {
		s.regions[i] = s.backing[i*size : (i+1)*size : (i+1)*size]
	}
	return s
}

// Regions returns the scratch's region views.
func (s *Scratch) Regions() [][]byte { return s.regions }

// Release returns the scratch to the pool. The caller must not touch
// the regions afterwards.
func (s *Scratch) Release() {
	if s != nil {
		scratchPool.Put(s)
	}
}
