package kernel

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"ppm/internal/gf"
	"ppm/internal/matrix"
)

// refApply is the seed's term-at-a-time sweep — one whole-region
// MultXOR per nonzero coefficient — kept as the differential reference
// for the tiled/fused drivers.
func refApply(f gf.Field, m *matrix.Matrix, in, out [][]byte) {
	for i := 0; i < m.Rows(); i++ {
		for j, a := range m.Row(i) {
			if a == 0 {
				continue
			}
			gf.MultiplierFor(f, a).MultXOR(out[i], in[j])
		}
	}
}

func TestSetTileSizeClamps(t *testing.T) {
	defer SetTileSize(0)
	SetTileSize(1)
	if got := TileSize(); got != minTileBytes {
		t.Fatalf("TileSize after SetTileSize(1) = %d, want %d", got, minTileBytes)
	}
	SetTileSize(1000)
	if got := TileSize(); got != 1000+(8-1000%8)%8 && got%8 != 0 {
		t.Fatalf("TileSize after SetTileSize(1000) = %d, want multiple of 8 >= 1000", got)
	}
	SetTileSize(0)
	if got := TileSize(); got != defaultTileBytes {
		t.Fatalf("TileSize after SetTileSize(0) = %d, want default %d", got, defaultTileBytes)
	}
}

func TestTileSpansCoverRange(t *testing.T) {
	for _, tc := range []struct{ size, parts, tile int }{
		{0, 4, 512}, {511, 4, 512}, {512, 4, 512}, {1024, 4, 512},
		{4096, 4, 512}, {4100, 4, 512}, {1 << 20, 8, 32 << 10},
		{(1 << 20) + 8, 3, 32 << 10}, {5000, 100, 512},
	} {
		spans := tileSpans(tc.size, tc.parts, tc.tile)
		if spans == nil {
			// One span suffices; the serial caller covers [0, size).
			continue
		}
		if len(spans) > tc.parts {
			t.Fatalf("size=%d parts=%d tile=%d: %d spans", tc.size, tc.parts, tc.tile, len(spans))
		}
		prev := 0
		for i, sp := range spans {
			if sp[0] != prev || sp[1] <= sp[0] {
				t.Fatalf("size=%d: span %d = %v, prev end %d", tc.size, i, sp, prev)
			}
			if i < len(spans)-1 && (sp[1]-sp[0])%tc.tile != 0 {
				t.Fatalf("size=%d: interior span %d = %v not whole tiles", tc.size, i, sp)
			}
			prev = sp[1]
		}
		if prev != tc.size {
			t.Fatalf("size=%d: spans end at %d", tc.size, prev)
		}
	}
}

func TestChunkRangesAligned(t *testing.T) {
	defer SetTileSize(0)
	SetTileSize(512)
	// Large enough for tile alignment: interior boundaries on tile edges.
	ranges := ChunkRangesAligned(8192, 4, 2)
	if len(ranges) < 2 {
		t.Fatalf("got %d ranges", len(ranges))
	}
	prev := 0
	for i, r := range ranges {
		if r[0] != prev {
			t.Fatalf("range %d starts at %d, want %d", i, r[0], prev)
		}
		if i < len(ranges)-1 && r[1]%512 != 0 {
			t.Fatalf("interior boundary %d not tile-aligned", r[1])
		}
		prev = r[1]
	}
	if prev != 8192 {
		t.Fatalf("ranges end at %d", prev)
	}
	// Too small for tile alignment: degrades to word-aligned ChunkRanges.
	small := ChunkRangesAligned(100, 4, 4)
	want := ChunkRanges(100, 4, 4)
	if fmt.Sprint(small) != fmt.Sprint(want) {
		t.Fatalf("small range %v, want %v", small, want)
	}
}

// TestTiledApplyMatchesReference: with the tile shrunk to the minimum,
// region sizes straddling tile boundaries (±1 word) run through many
// tiles and must equal the term-at-a-time reference exactly — for the
// matrix path, the compiled path, and a range-split compiled apply.
func TestTiledApplyMatchesReference(t *testing.T) {
	defer SetTileSize(0)
	SetTileSize(minTileBytes)
	tile := TileSize()
	rng := rand.New(rand.NewSource(404))
	for _, f := range []gf.Field{gf.GF8, gf.GF16, gf.GF32} {
		wb := f.WordBytes()
		sizes := []int{wb, tile - wb, tile, tile + wb, 3*tile - wb, 3*tile + wb}
		for _, size := range sizes {
			m := randMatrix(rng, f, 4, 7)
			m.Set(0, 3, 0)
			m.Set(2, 2, 1)
			in := randRegions(rng, 7, size)

			want := AllocRegions(4, size)
			refApply(f, m, in, want)

			got := AllocRegions(4, size)
			var stats Stats
			Apply(f, m, in, got, &stats)
			for i := range want {
				if !bytes.Equal(want[i], got[i]) {
					t.Fatalf("GF%d size=%d: Apply row %d differs", f.W(), size, i)
				}
			}
			if stats.MultXORs() != int64(m.NNZ()) {
				t.Fatalf("GF%d size=%d: Apply counted %d ops, want %d", f.W(), size, stats.MultXORs(), m.NNZ())
			}

			cm := Compile(f, m)
			cgot := AllocRegions(4, size)
			cm.Apply(in, cgot, nil)
			for i := range want {
				if !bytes.Equal(want[i], cgot[i]) {
					t.Fatalf("GF%d size=%d: compiled Apply row %d differs", f.W(), size, i)
				}
			}

			// Range-split apply over uneven word-aligned cuts.
			rgot := AllocRegions(4, size)
			cuts := ChunkRanges(size, 3, wb)
			for _, ch := range cuts {
				cm.ApplyRange(in, rgot, ch[0], ch[1], nil)
			}
			for i := range want {
				if !bytes.Equal(want[i], rgot[i]) {
					t.Fatalf("GF%d size=%d: ApplyRange row %d differs", f.W(), size, i)
				}
			}
		}
	}
}

// TestTiledApplyPortableKernels: the tiled/fused drivers must stay
// correct with the affine kernels disabled — the path non-GFNI hosts
// take. (On such hosts this duplicates TestTiledApplyMatchesReference;
// on GFNI hosts it is the only coverage of the table kernels under the
// tiled drivers.)
func TestTiledApplyPortableKernels(t *testing.T) {
	defer gf.SetAffineKernels(gf.SetAffineKernels(false))
	defer SetTileSize(0)
	SetTileSize(minTileBytes)
	tile := TileSize()
	rng := rand.New(rand.NewSource(412))
	for _, f := range []gf.Field{gf.GF8, gf.GF16, gf.GF32} {
		wb := f.WordBytes()
		for _, size := range []int{tile - wb, 2*tile + wb} {
			m := randMatrix(rng, f, 3, 6)
			in := randRegions(rng, 6, size)
			want := AllocRegions(3, size)
			refApply(f, m, in, want)
			got := AllocRegions(3, size)
			Compile(f, m).Apply(in, got, nil)
			for i := range want {
				if !bytes.Equal(want[i], got[i]) {
					t.Fatalf("GF%d size=%d: portable-kernel apply row %d differs", f.W(), size, i)
				}
			}
		}
	}
}

// TestTiledProductMatchesReference: the tile-chained Normal sequence
// (matrix and compiled forms, pooled and caller scratch, range-split
// form) equals the two-pass reference.
func TestTiledProductMatchesReference(t *testing.T) {
	defer SetTileSize(0)
	SetTileSize(minTileBytes)
	tile := TileSize()
	rng := rand.New(rand.NewSource(405))
	f := gf.GF16
	finv := randInvertible(rng, f, 3)
	s := randMatrix(rng, f, 3, 6)
	for _, size := range []int{2, tile - 2, tile + 2, 2*tile + 10} {
		in := randRegions(rng, 6, size)

		// Reference: full-size intermediate, term-at-a-time passes.
		mid := AllocRegions(3, size)
		refApply(f, s, in, mid)
		want := AllocRegions(3, size)
		refApply(f, finv, mid, want)

		check := func(label string, got [][]byte) {
			t.Helper()
			for i := range want {
				if !bytes.Equal(want[i], got[i]) {
					t.Fatalf("size=%d %s: row %d differs", size, label, i)
				}
			}
		}

		out := AllocRegions(3, size)
		Product(f, finv, s, in, out, nil, Normal, nil)
		check("Product pooled scratch", out)

		out2 := AllocRegions(3, size)
		Product(f, finv, s, in, out2, AllocRegions(3, size), Normal, nil)
		check("Product caller scratch", out2)

		cFinv, cS := Compile(f, finv), Compile(f, s)
		out3 := AllocRegions(3, size)
		CompiledProduct(cFinv, cS, nil, in, out3, nil, Normal, nil)
		check("CompiledProduct", out3)

		out4 := AllocRegions(3, size)
		for _, ch := range ChunkRanges(size, 3, 2) {
			CompiledProductRange(cFinv, cS, nil, in, out4, nil, Normal, ch[0], ch[1], nil)
		}
		check("CompiledProductRange", out4)

		cG := Compile(f, finv.Mul(s))
		out5 := AllocRegions(3, size)
		for _, ch := range ChunkRanges(size, 2, 2) {
			CompiledProductRange(nil, nil, cG, in, out5, nil, MatrixFirst, ch[0], ch[1], nil)
		}
		check("CompiledProductRange matrix-first", out5)
	}
}

// TestCompiledApplyParallelPath: a region at/above FanoutMinBytes()
// takes the worker fan-out arm and must still match the serial
// reference bit for bit with the full operation count. Run under -race
// this also proves the fan-out is data-race-free.
func TestCompiledApplyParallelPath(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-MiB regions")
	}
	rng := rand.New(rand.NewSource(406))
	f := gf.GF16
	size := FanoutMinBytes() + 2*TileSize() + 2 // sub-tile, sub-word-8 tail
	m := randMatrix(rng, f, 3, 5)
	in := randRegions(rng, 5, size)

	want := AllocRegions(3, size)
	refApply(f, m, in, want)

	cm := Compile(f, m)
	got := AllocRegions(3, size)
	var stats Stats
	cm.Apply(in, got, &stats)
	for i := range want {
		if !bytes.Equal(want[i], got[i]) {
			t.Fatalf("parallel apply row %d differs", i)
		}
	}
	if stats.MultXORs() != int64(m.NNZ()) {
		t.Fatalf("parallel apply counted %d ops, want %d", stats.MultXORs(), m.NNZ())
	}

	// The Normal product takes the same fan-out arm.
	finv := randInvertible(rng, f, 3)
	mid := AllocRegions(3, size)
	refApply(f, m, in, mid)
	pwant := AllocRegions(3, size)
	refApply(f, finv, mid, pwant)
	pgot := AllocRegions(3, size)
	CompiledProduct(Compile(f, finv), cm, nil, in, pgot, nil, Normal, nil)
	for i := range pwant {
		if !bytes.Equal(pwant[i], pgot[i]) {
			t.Fatalf("parallel product row %d differs", i)
		}
	}
}

// TestCompiledApplyAllocationFree: the serial tiled path — the one
// repeated decodes sit on — must not allocate per call once compiled:
// view headers and Normal-sequence scratch all come from pools.
func TestCompiledApplyAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool deliberately drops items; alloc counts are meaningless")
	}
	rng := rand.New(rand.NewSource(407))
	f := gf.GF16
	size := 256 << 10 // large enough to tile, below the parallel cutoff
	m := randMatrix(rng, f, 4, 12)
	in := randRegions(rng, 12, size)
	out := AllocRegions(4, size)
	cm := Compile(f, m)
	var stats Stats

	if avg := testing.AllocsPerRun(10, func() {
		cm.Apply(in, out, &stats)
	}); avg != 0 {
		t.Fatalf("compiled Apply allocates %.1f/op on the serial path", avg)
	}

	finv := randInvertible(rng, f, 4)
	cFinv := Compile(f, finv)
	if avg := testing.AllocsPerRun(10, func() {
		CompiledProduct(cFinv, cm, nil, in, out, nil, Normal, &stats)
	}); avg != 0 {
		t.Fatalf("compiled Normal product allocates %.1f/op on the serial path", avg)
	}

	// The uncompiled sweep must also be allocation-free once the
	// field's multiplier memo is warm (it is, after the calls above).
	if avg := testing.AllocsPerRun(10, func() {
		Apply(f, m, in, out, &stats)
	}); avg != 0 {
		t.Fatalf("plain Apply allocates %.1f/op with warm multiplier memo", avg)
	}
}
