package pipeline

import (
	"errors"
	"fmt"
	"time"

	"ppm/internal/stripe"
)

// Fault handling at the fill/drain seams. A Source or Sink backed by
// real storage fails in three ways: transiently (a flaky read that
// clears on retry), permanently (a missing file), and by hanging (a
// dying device that never returns). The engine's RetryPolicy bounds
// all three: transient failures — any error that classifies itself via
// a `Transient() bool` method, the structural contract shared with
// internal/fault — are retried with jittered exponential backoff;
// permanent failures surface immediately; and with OpTimeout set, a
// hung call is abandoned at its deadline and fails the run instead of
// wedging it.
//
// The steady state stays allocation-free: with no policy configured
// the calls go straight through, and with one configured the fast path
// costs a few branches (plus, under OpTimeout, a channel round trip
// through a persistent runner goroutine and a reused timer). Only an
// actual fault allocates.
//
// Recovery from a *permanently* hung or corrupt strip is the storage
// layer's job (demote it to an erasure and let the decode heal it —
// see internal/fault's Healer); the pipeline's deadline is the
// last-resort bound that turns "hangs forever" into a clean error. A
// deadline expiry abandons the call while it may still be writing its
// slab, so it is not retried and the engine should be Closed rather
// than reused after one fires.

// RetryPolicy bounds Source.Next/Sink.Drain failures. The zero value
// disables everything (single attempt, no deadline).
type RetryPolicy struct {
	// MaxAttempts caps the total tries per op (first included);
	// <= 1 means no retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry, doubling each
	// further retry; <= 0 selects 1ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff; <= 0 selects 100ms.
	MaxDelay time.Duration
	// OpTimeout bounds one Next/Drain call; 0 leaves calls unbounded.
	// An expired call fails the run permanently (see above).
	OpTimeout time.Duration
	// Seed drives the jitter; runs with equal policies back off
	// identically, keeping chaos tests replayable.
	Seed int64
}

// active reports whether the policy changes anything.
func (p RetryPolicy) active() bool { return p.MaxAttempts > 1 || p.OpTimeout > 0 }

func (p RetryPolicy) base() time.Duration {
	if p.BaseDelay <= 0 {
		return time.Millisecond
	}
	return p.BaseDelay
}

func (p RetryPolicy) cap() time.Duration {
	if p.MaxDelay <= 0 {
		return 100 * time.Millisecond
	}
	return p.MaxDelay
}

// backoff returns the jittered delay before retry number r, advancing
// the xorshift state (no rand.Rand: the fault path shouldn't allocate
// a generator either).
func (p RetryPolicy) backoff(r int, state *uint64) time.Duration {
	d := p.base() << uint(r)
	if d <= 0 || d > p.cap() {
		d = p.cap()
	}
	s := *state
	if s == 0 {
		s = uint64(p.Seed)*2862933555777941757 + 3037000493
	}
	s ^= s << 13
	s ^= s >> 7
	s ^= s << 17
	*state = s
	half := uint64(d) / 2
	if half == 0 {
		return d
	}
	return time.Duration(half + s%(half+1))
}

// transienter is the structural classification contract: errors that
// implement it decide their own retryability.
type transienter interface{ Transient() bool }

func isTransient(err error) bool {
	var t transienter
	if errors.As(err, &t) {
		return t.Transient()
	}
	return false
}

// opTimeoutError is the permanent error an expired OpTimeout surfaces.
type opTimeoutError struct{}

func (opTimeoutError) Error() string { return "op deadline exceeded (hung Source/Sink call abandoned)" }

// ErrOpTimeout is returned (wrapped) when a Source.Next or Sink.Drain
// call outlives Config.Retry.OpTimeout.
var ErrOpTimeout error = opTimeoutError{}

// opCall/opResult cross the runner boundary; the res channel is reused
// until an abandonment discards it.
type opCall struct {
	idx int
	st  *stripe.Stripe
	res chan opResult
}

type opResult struct {
	st  *stripe.Stripe
	err error
}

// opGuard owns one guarded-op lane: a persistent runner goroutine
// executing the calls, a reusable result channel, and a reusable
// timer. Each guard is driven by exactly one goroutine (fill stage or
// Run/drain goroutine).
type opGuard struct {
	do    func(idx int, st *stripe.Stripe) (*stripe.Stripe, error)
	req   chan opCall
	res   chan opResult
	timer *time.Timer
}

func newOpGuard(do func(int, *stripe.Stripe) (*stripe.Stripe, error)) *opGuard {
	g := &opGuard{do: do, req: make(chan opCall), res: make(chan opResult, 1)}
	g.timer = time.NewTimer(time.Hour)
	if !g.timer.Stop() {
		<-g.timer.C
	}
	go runnerLoop(g.do, g.req)
	return g
}

// runnerLoop executes guarded calls until the req channel closes. It
// is deliberately free of engine state: an abandoned runner finishes
// its hung call, posts into its (discarded) result channel, sees the
// closed req channel and exits.
func runnerLoop(do func(int, *stripe.Stripe) (*stripe.Stripe, error), req chan opCall) {
	for c := range req {
		st, err := do(c.idx, c.st)
		c.res <- opResult{st, err}
	}
}

// call runs one guarded op with the deadline. The ok result is false
// when the call was abandoned (timeout or cancellation) — the guard
// has already replaced its runner and result channel, so the guard
// stays usable, but the abandoned call may still be running.
func (g *opGuard) call(idx int, st *stripe.Stripe, timeout time.Duration, cancel <-chan struct{}) (opResult, bool) {
	g.req <- opCall{idx: idx, st: st, res: g.res}
	g.timer.Reset(timeout)
	select {
	case r := <-g.res:
		if !g.timer.Stop() {
			<-g.timer.C
		}
		return r, true
	case <-g.timer.C:
		g.abandon()
		return opResult{}, false
	case <-cancel:
		if !g.timer.Stop() {
			<-g.timer.C
		}
		g.abandon()
		return opResult{}, false
	}
}

// abandon discards the in-flight call: the old runner drains into the
// old buffered result channel whenever it finally returns, then exits;
// a fresh runner and result channel take over.
func (g *opGuard) abandon() {
	close(g.req)
	g.req = make(chan opCall)
	g.res = make(chan opResult, 1)
	go runnerLoop(g.do, g.req)
}

// close shuts the guard's runner down (idempotent per guard lifetime;
// only called from Engine.Close).
func (g *opGuard) close() {
	close(g.req)
}

// srcNext is the fill stage's guarded Source.Next: retries transient
// failures under the policy and bounds each call by OpTimeout.
func (e *Engine) srcNext(idx int, slab *stripe.Stripe) (*stripe.Stripe, error) {
	p := &e.cfg.Retry
	if !p.active() {
		return e.src.Next(idx, slab)
	}
	done := e.ctx.Done()
	for attempt := 0; ; attempt++ {
		var r opResult
		if p.OpTimeout > 0 {
			var ok bool
			r, ok = e.fillGuard.call(idx, slab, p.OpTimeout, done)
			if !ok {
				if err := e.ctx.Err(); err != nil {
					return nil, err
				}
				return nil, fmt.Errorf("%w after %v (stripe %d fill)", ErrOpTimeout, p.OpTimeout, idx)
			}
		} else {
			r.st, r.err = e.src.Next(idx, slab)
		}
		if r.err == nil {
			return r.st, nil
		}
		if err := e.ctx.Err(); err != nil {
			return nil, err
		}
		if !isTransient(r.err) || attempt >= p.MaxAttempts-1 {
			if attempt > 0 {
				return nil, fmt.Errorf("fill failed after %d attempts: %w", attempt+1, r.err)
			}
			return nil, r.err
		}
		e.fillRetries.Add(1)
		if !e.sleep(p.backoff(attempt, &e.fillRng), done) {
			return nil, e.ctx.Err()
		}
	}
}

// sinkDrain is the drain stage's guarded Sink.Drain.
func (e *Engine) sinkDrain(dst Sink, idx int, st *stripe.Stripe) error {
	p := &e.cfg.Retry
	if !p.active() {
		return dst.Drain(idx, st)
	}
	done := e.ctx.Done()
	for attempt := 0; ; attempt++ {
		var err error
		if p.OpTimeout > 0 {
			r, ok := e.drainGuard.call(idx, st, p.OpTimeout, done)
			if !ok {
				if cerr := e.ctx.Err(); cerr != nil {
					return cerr
				}
				return fmt.Errorf("%w after %v (stripe %d drain)", ErrOpTimeout, p.OpTimeout, idx)
			}
			err = r.err
		} else {
			err = dst.Drain(idx, st)
		}
		if err == nil || errors.Is(err, Stop) {
			return err
		}
		if cerr := e.ctx.Err(); cerr != nil {
			return cerr
		}
		if !isTransient(err) || attempt >= p.MaxAttempts-1 {
			if attempt > 0 {
				return fmt.Errorf("drain failed after %d attempts: %w", attempt+1, err)
			}
			return err
		}
		e.drainRetries.Add(1)
		if !e.sleep(p.backoff(attempt, &e.drainRng), done) {
			return e.ctx.Err()
		}
	}
}

// sleep blocks for d or until cancellation; reports whether the full
// backoff elapsed. The timer is per-call (fault path only).
func (e *Engine) sleep(d time.Duration, cancel <-chan struct{}) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-cancel:
		return false
	}
}
