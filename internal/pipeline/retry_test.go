package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ppm/internal/codes"
	"ppm/internal/stripe"
)

// flakyErr is a transient failure (structural Transient() contract).
type flakyErr struct{ msg string }

func (e *flakyErr) Error() string   { return e.msg }
func (e *flakyErr) Transient() bool { return true }

// flakySource fails stripe idx transiently `fail[idx]` times before
// succeeding, counting every Next call.
type flakySource struct {
	batch []*stripe.Stripe
	fail  map[int]int
	calls atomic.Int64
}

func (s *flakySource) Next(idx int, _ *stripe.Stripe) (*stripe.Stripe, error) {
	s.calls.Add(1)
	if idx >= len(s.batch) {
		return nil, nil
	}
	if s.fail[idx] > 0 {
		s.fail[idx]--
		return nil, &flakyErr{msg: fmt.Sprintf("flaky read, stripe %d", idx)}
	}
	return s.batch[idx], nil
}

// flakySink fails stripe idx transiently fail[idx] times, recording the
// drained order.
type flakySink struct {
	fail  map[int]int
	order []int
}

func (k *flakySink) Drain(idx int, _ *stripe.Stripe) error {
	if k.fail[idx] > 0 {
		k.fail[idx]--
		return &flakyErr{msg: fmt.Sprintf("flaky write, stripe %d", idx)}
	}
	k.order = append(k.order, idx)
	return nil
}

func retryBatch(t *testing.T, sd *codes.SD, stripes, sector int) []*stripe.Stripe {
	t.Helper()
	batch := make([]*stripe.Stripe, stripes)
	for i := range batch {
		st, err := stripe.New(sd.NumStrips(), sd.NumRows(), sector)
		if err != nil {
			t.Fatal(err)
		}
		st.FillDataRandom(int64(i), codes.DataPositions(sd))
		batch[i] = st
	}
	return batch
}

// TestRetryTransientFillAndDrain pins the retry contract: transient
// Source/Sink failures are retried away invisibly (the stream completes,
// in order) and the retries surface in StageStats.
func TestRetryTransientFillAndDrain(t *testing.T) {
	sd := testSD(t)
	batch := retryBatch(t, sd, 6, 64)
	src := &flakySource{batch: batch, fail: map[int]int{1: 2, 4: 1}}
	snk := &flakySink{fail: map[int]int{2: 1}}

	e, err := New(sd, codes.EncodingScenario(sd), 0, Config{
		Depth: 4, Workers: 2,
		Retry: RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	n, err := e.Run(src, snk)
	if err != nil {
		t.Fatalf("run with transient faults: %v", err)
	}
	if n != len(batch) {
		t.Fatalf("drained %d stripes, want %d", n, len(batch))
	}
	for i, idx := range snk.order {
		if idx != i {
			t.Fatalf("out-of-order drain: position %d got stripe %d", i, idx)
		}
	}
	st := e.StageStats()
	if st.FillRetries != 3 {
		t.Errorf("FillRetries = %d, want 3", st.FillRetries)
	}
	if st.DrainRetries != 1 {
		t.Errorf("DrainRetries = %d, want 1", st.DrainRetries)
	}
}

// permErr is a permanent failure: Transient() false.
type permErr struct{}

func (permErr) Error() string   { return "disk gone" }
func (permErr) Transient() bool { return false }

type permSource struct {
	calls atomic.Int64
}

func (s *permSource) Next(idx int, slab *stripe.Stripe) (*stripe.Stripe, error) {
	s.calls.Add(1)
	return nil, permErr{}
}

// TestRetryPermanentFailsFast pins that a permanent error spends no
// retry budget: exactly one attempt, error surfaced.
func TestRetryPermanentFailsFast(t *testing.T) {
	sd := testSD(t)
	src := &permSource{}
	e, err := New(sd, codes.EncodingScenario(sd), 64, Config{
		Depth: 2, Retry: RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Run(src, NopSink{}); err == nil {
		t.Fatal("want permanent fill error, got nil")
	} else if !errors.Is(err, permErr{}) {
		t.Fatalf("error %v does not wrap the permanent failure", err)
	}
	if got := src.calls.Load(); got != 1 {
		t.Errorf("permanent error retried: %d Next calls, want 1", got)
	}
	if st := e.StageStats(); st.FillRetries != 0 {
		t.Errorf("FillRetries = %d, want 0", st.FillRetries)
	}
}

// TestRetryBudgetExhausted pins that a persistent transient failure
// stops after MaxAttempts and reports the attempt count.
func TestRetryBudgetExhausted(t *testing.T) {
	sd := testSD(t)
	src := &flakySource{batch: retryBatch(t, sd, 2, 64), fail: map[int]int{0: 100}}
	e, err := New(sd, codes.EncodingScenario(sd), 0, Config{
		Depth: 2, Retry: RetryPolicy{MaxAttempts: 3, BaseDelay: 50 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	_, err = e.Run(src, NopSink{})
	if err == nil {
		t.Fatal("want error after retry budget, got nil")
	}
	if want := "failed after 3 attempts"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not report %q", err, want)
	}
	if got := src.calls.Load(); got != 3 {
		t.Errorf("stripe 0 tried %d times, want 3", got)
	}
}

// hangSource blocks forever on stripe `at` until release is closed.
type hangSource struct {
	batch   []*stripe.Stripe
	at      int
	release chan struct{}
	hung    atomic.Bool
}

func (s *hangSource) Next(idx int, _ *stripe.Stripe) (*stripe.Stripe, error) {
	if idx == s.at {
		s.hung.Store(true)
		<-s.release
		return nil, &flakyErr{msg: "woken after abandonment"}
	}
	if idx >= len(s.batch) {
		return nil, nil
	}
	return s.batch[idx], nil
}

// TestHungSourceAbandonedAtDeadline pins the OpTimeout contract: a
// Source.Next that never returns fails the run within the deadline (not
// forever), with ErrOpTimeout, and the abandoned call is left to finish
// on its own.
func TestHungSourceAbandonedAtDeadline(t *testing.T) {
	sd := testSD(t)
	src := &hangSource{batch: retryBatch(t, sd, 6, 64), at: 2, release: make(chan struct{})}
	defer close(src.release) // let the abandoned runner exit

	e, err := New(sd, codes.EncodingScenario(sd), 0, Config{
		Depth: 2, Workers: 1,
		Retry: RetryPolicy{MaxAttempts: 2, OpTimeout: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	start := time.Now()
	_, err = e.Run(src, NopSink{})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("want timeout error, got nil")
	}
	if !errors.Is(err, ErrOpTimeout) {
		t.Fatalf("error %v does not wrap ErrOpTimeout", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("hung source stalled the run for %v; the deadline should bound it", elapsed)
	}
	if !src.hung.Load() {
		t.Fatal("test never reached the hanging stripe")
	}
}

// TestRetryRunCancellation pins that context cancellation cuts a retry
// loop short (during backoff) and surfaces ctx.Err.
func TestRetryRunCancellation(t *testing.T) {
	sd := testSD(t)
	src := &flakySource{batch: retryBatch(t, sd, 2, 64), fail: map[int]int{0: 1 << 30}}
	e, err := New(sd, codes.EncodingScenario(sd), 0, Config{
		Depth: 2,
		Retry: RetryPolicy{MaxAttempts: 1 << 20, BaseDelay: time.Hour, MaxDelay: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = e.RunContext(ctx, src, NopSink{})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v to cut the backoff short", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRetryConfiguredAllocationFree extends the steady-state contract
// to the guarded path: with a retry policy (including a per-op deadline)
// configured but no fault firing, the pipeline still performs zero heap
// allocations per run — the guard runners, result channels and timers
// are fixed at New.
func TestRetryConfiguredAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool deliberately drops items; alloc counts are meaningless")
	}
	sd, err := codes.NewSD(8, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	batch := retryBatch(t, sd, 8, 1024)
	e, err := New(sd, codes.EncodingScenario(sd), 0, Config{
		Depth: 4, Workers: 2,
		Retry: RetryPolicy{MaxAttempts: 4, OpTimeout: 30 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var src Source = SliceSource(batch)
	if _, err := e.Run(src, NopSink{}); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(10, func() {
		if _, err := e.Run(src, NopSink{}); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("guarded steady state allocates %.1f/op, want 0", avg)
	}
}

// TestPoolReplacesPoisonedEngine pins the self-healing checkout: a
// poisoned engine coming off the pool's free list is closed and replaced
// with a fresh build, so the stream that drew the poisoned slot still
// succeeds and the pool keeps its size.
func TestPoolReplacesPoisonedEngine(t *testing.T) {
	sd := testSD(t)
	p, err := NewPool(sd, codes.EncodingScenario(sd), 0, 2, Config{Depth: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Poison every engine while checked in.
	p.mu.Lock()
	victims := append([]*Engine(nil), p.all...)
	p.mu.Unlock()
	for _, e := range victims {
		e.shardErr.Store(errors.New("injected shard death"))
	}

	batch := retryBatch(t, sd, 4, 64)
	for i := 0; i < 2*p.Size(); i++ {
		if _, err := p.Run(SliceSource(batch), NopSink{}); err != nil {
			t.Fatalf("run %d through self-healing pool: %v", i, err)
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.all) != 2 {
		t.Fatalf("pool size drifted to %d", len(p.all))
	}
	for i, e := range p.all {
		for _, v := range victims {
			if e == v {
				t.Fatalf("engine %d is still a poisoned victim", i)
			}
		}
		if !e.Healthy() {
			t.Fatalf("engine %d unhealthy after replacement", i)
		}
	}
}

// TestPoolCheckoutRacesPoisoning is the -race regression for the
// checkout/poison window: engines are poisoned concurrently with
// checkouts, and every RunContext must either succeed (healthy engine)
// or fail with ErrEnginePoisoned (poisoned between checkout and run) —
// never hang or hand out a dead engine silently.
func TestPoolCheckoutRacesPoisoning(t *testing.T) {
	sd := testSD(t)
	p, err := NewPool(sd, codes.EncodingScenario(sd), 0, 2, Config{Depth: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// One batch per runner: SliceSource hands over caller-owned
	// stripes, so concurrent Runs must not share them — two checked-out
	// engines encoding the same stripe is a real data race.
	batch := retryBatch(t, sd, 2, 64)
	batches := make([][]*stripe.Stripe, 4)
	for g := range batches {
		batches[g] = retryBatch(t, sd, 2, 64)
	}
	stop := make(chan struct{})
	var poisoner sync.WaitGroup
	poisoner.Add(1)
	go func() {
		defer poisoner.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			p.mu.Lock()
			e := p.all[i%len(p.all)]
			p.mu.Unlock()
			e.shardErr.Store(errors.New("storm"))
			time.Sleep(200 * time.Microsecond)
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(batch []*stripe.Stripe) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				_, err := p.Run(SliceSource(batch), NopSink{})
				if err != nil && !errors.Is(err, ErrEnginePoisoned) {
					t.Errorf("unexpected checkout error under poisoning storm: %v", err)
					return
				}
			}
		}(batches[g])
	}
	wg.Wait()
	close(stop)
	poisoner.Wait()

	// The storm is over: the pool must recover within a bounded number
	// of checkouts (each one replaces at most one poisoned engine).
	var lastErr error
	for i := 0; i <= p.Size(); i++ {
		if _, lastErr = p.Run(SliceSource(batch), NopSink{}); lastErr == nil {
			return
		}
	}
	t.Fatalf("pool did not recover after the poisoning storm: %v", lastErr)
}
