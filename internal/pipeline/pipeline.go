// Package pipeline is the streaming multi-stripe engine: it compiles a
// code's decode (or encode) plan once and then drives an unbounded
// sequence of stripes through a bounded three-stage pipeline —
// fill → compute → drain — so that I/O for stripe i+1 overlaps the
// compute of stripe i and the plan/schedule cost is amortised across
// the whole stream.
//
// The stages are connected by fixed-capacity channels carrying a fixed
// set of pre-allocated jobs (stripe slabs plus bookkeeping), so the
// engine exerts backpressure instead of queueing without bound and the
// steady state performs zero heap allocations per stripe. Compute is
// sharded stripe-by-stripe across the persistent kernel.Workers pool;
// per-stripe scratch comes from the core executor's pools.
//
// Output is strictly in stripe order no matter how compute completes,
// and the error contract matches the executors': the failure with the
// lowest stripe index wins, deterministically, whether it came from the
// fill, compute or drain stage.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ppm/internal/codes"
	"ppm/internal/core"
	"ppm/internal/kernel"
	"ppm/internal/repair"
	"ppm/internal/stripe"
)

// Source produces the stripes the engine processes, in index order.
// Next either fills slab (the engine's pre-allocated buffer) and
// returns it, or returns a caller-owned stripe to process in place
// (the batch path; slab is nil when the engine was built without
// slabs). Returning (nil, nil) ends the stream. Next runs on the
// engine's fill goroutine, never concurrently with itself.
type Source interface {
	Next(idx int, slab *stripe.Stripe) (*stripe.Stripe, error)
}

// Sink consumes processed stripes. Drain is called exactly once per
// successful stripe, in strictly increasing index order, from the
// goroutine that called Run — never concurrently with itself.
type Sink interface {
	Drain(idx int, st *stripe.Stripe) error
}

// DefaultDepth is the default number of in-flight stripes.
const DefaultDepth = 4

// Stop is the sentinel a Sink returns from Drain to end the stream
// early without an error: the stripe that returned it still counts as
// drained, intake stops at the next stripe boundary, everything in
// flight is recycled without further Drain calls, and Run returns nil.
// DecodeStream's payload-trimming sink uses it to stop decoding once
// the requested payload is satisfied instead of burning compute on
// stripes whose output would be trimmed entirely.
var Stop = errors.New("pipeline: stop")

// Config tunes an Engine.
type Config struct {
	// Depth bounds the number of stripes in flight (and the number of
	// stripe slabs the engine allocates). Depth 1 degenerates to a
	// serial loop with the plan still amortised; <= 0 selects
	// max(DefaultDepth, Workers) — queue depth must cover the compute
	// shards or they starve, but it is otherwise an independent knob
	// (how much I/O to keep in flight, not how many cores to use).
	Depth int
	// Workers is the number of compute shards pulling stripes off the
	// fill stage; <= 0 selects NumCPU. Each shard occupies one
	// kernel.Workers slot for the engine's lifetime.
	Workers int
	// Threads is the per-stripe worker count for the plan's parallel
	// phase; <= 0 selects 1 (the pipeline parallelises across stripes,
	// not within them).
	Threads int
	// Strategy selects the planning policy (default StrategyPPM).
	Strategy core.Strategy
	// Stats, when non-nil, accumulates mult_XORs across the stream.
	Stats *kernel.Stats
	// Retry bounds Source.Next/Sink.Drain failures: transient errors
	// (per the structural Transient() bool contract) are retried with
	// jittered exponential backoff, and OpTimeout abandons hung calls.
	// The zero value keeps the historical behaviour: one attempt, no
	// deadline, no extra goroutines. See RetryPolicy.
	Retry RetryPolicy
	// Auto fills the unset knobs (Depth, Workers, and the process-wide
	// kernel tile size / fan-out threshold) from the host's calibrated
	// autotune profile. The resolver is registered by importing
	// internal/tune (the root ppm package does); without a registered
	// resolver Auto is a no-op and the static defaults above apply.
	Auto bool
	// Wanted switches the compute stage to the minimal-read repair
	// plan that materialises just these sectors of the scenario — the
	// partial-read fill path: a degraded read of specific blocks runs
	// only their survivor closure, and Engine.ReadColumns reports
	// which sectors the Source must fill (survivor slices outside it
	// are never touched). Nil keeps the full-stripe decode.
	Wanted []int
}

// job is one in-flight stripe. The engine pre-allocates Depth jobs and
// recycles them through the free list; nothing per-stripe is allocated
// after New.
type job struct {
	idx  int
	slab *stripe.Stripe // engine-owned buffer (nil in slab-less engines)
	st   *stripe.Stripe // the stripe being processed (slab or caller's)
	done chan error     // compute/fill outcome, capacity 1
}

// Engine is a reusable streaming pipeline bound to one code instance
// and one failure scenario. Build it once, Run it over any number of
// streams, Close it when finished. An Engine is not safe for concurrent
// Runs; distinct Engines are independent.
//
//ppm:nocopy
type Engine struct {
	code  codes.Code
	sc    codes.Scenario
	dec   *core.Decoder
	plan  *core.Plan   // nil for the empty scenario: a pure passthrough
	rplan *repair.Plan // partial-read repair plan when Config.Wanted is set
	cfg   Config

	free  chan *job     // recycled jobs (capacity Depth)
	work  chan *job     // fill → compute (capacity Depth)
	order chan *job     // fill → drain, in index order (capacity Depth+1)
	start chan struct{} // Run → fill stage wake-up

	sentinel *job // end-of-stream marker on order

	// Per-run state, published to the fill goroutine via the start
	// channel send (happens-before its receive). dst is only read by the
	// Run goroutine itself and the drain guard's runner (happens-before
	// via the guard's request channel).
	src  Source
	dst  Sink
	ctx  context.Context
	stop atomic.Bool

	// Guarded-op lanes for Config.Retry.OpTimeout (nil without one).
	// fillGuard is driven by the fill goroutine, drainGuard by the Run
	// goroutine; each owns a persistent runner so the steady state costs
	// a channel round trip, not a goroutine spawn, per op.
	fillGuard  *opGuard
	drainGuard *opGuard
	fillRng    uint64 // jitter state, fill goroutine only
	drainRng   uint64 // jitter state, Run goroutine only

	// shardErr records a compute-shard failure that escaped the per-job
	// path (a pool-level panic outside compute). It poisons the engine:
	// the next RunContext surfaces it instead of running with fewer
	// shards than configured.
	shardErr atomic.Value // error

	closeOnce sync.Once
	closed    atomic.Bool

	// Stage stall accounting (see StageStats): cumulative nanoseconds
	// each stage spent blocked waiting on its upstream/downstream, plus
	// the stripes drained. running/runStart let the compute shards
	// exclude between-run idle time from their stall count.
	fillStall    atomic.Int64
	computeStall atomic.Int64
	drainStall   atomic.Int64
	stripes      atomic.Int64
	running      atomic.Bool
	runStart     atomic.Int64 // UnixNano of the active run's start

	// Fault accounting (see StageStats): transient fill/drain failures
	// that were retried away, and corruptions the storage layer detected
	// and healed while feeding this engine (RecordCorruption).
	fillRetries  atomic.Int64
	drainRetries atomic.Int64
	corruptions  atomic.Int64

	// Test hooks (same-package tests only): testDelay stalls a stripe's
	// compute to force out-of-order completion; testFail injects a
	// compute error for chosen indices.
	testDelay func(idx int)
	testFail  func(idx int) error
}

// New builds an engine for one code + scenario pair, compiling the plan
// once. sectorSize > 0 allocates Depth stripe slabs of that geometry
// for sources that fill buffers; sectorSize == 0 builds a slab-less
// engine for sources that hand over caller-owned stripes (the batch
// path). The scenario may be empty, in which case the compute stage is
// a passthrough (useful for overlapped read/extract with no repair).
func New(c codes.Code, sc codes.Scenario, sectorSize int, cfg Config) (*Engine, error) {
	cfg = resolveAuto(cfg)
	// Depth (queue) and Workers (parallelism) are distinct knobs with
	// independent defaults: workers follow the core count, depth covers
	// the shards plus I/O headroom. The old min(Depth, NumCPU) coupling
	// silently capped compute at DefaultDepth shards on many-core hosts.
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.Depth <= 0 {
		cfg.Depth = DefaultDepth
		if cfg.Depth < cfg.Workers {
			cfg.Depth = cfg.Workers
		}
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if sectorSize > 0 && sectorSize%c.Field().WordBytes() != 0 {
		return nil, fmt.Errorf("pipeline: sector size %d not a multiple of GF(2^%d) words",
			sectorSize, c.Field().W())
	}

	e := &Engine{
		code:     c,
		sc:       sc,
		cfg:      cfg,
		free:     make(chan *job, cfg.Depth),
		work:     make(chan *job, cfg.Depth),
		order:    make(chan *job, cfg.Depth+1),
		start:    make(chan struct{}),
		sentinel: &job{},
	}
	e.dec = core.NewDecoder(c,
		core.WithThreads(cfg.Threads),
		core.WithStrategy(cfg.Strategy),
		core.WithStats(cfg.Stats))
	if len(sc.Faulty) > 0 {
		if len(cfg.Wanted) > 0 {
			rp, err := repair.NewPlanner(c).Plan(sc, cfg.Wanted)
			if err != nil {
				return nil, fmt.Errorf("pipeline: %w", err)
			}
			e.rplan = rp
		} else {
			plan, err := core.BuildPlan(c, sc, cfg.Strategy)
			if err != nil {
				return nil, fmt.Errorf("pipeline: %w", err)
			}
			e.plan = plan
		}
	}
	for i := 0; i < cfg.Depth; i++ {
		j := &job{done: make(chan error, 1)}
		if sectorSize > 0 {
			slab, err := stripe.New(c.NumStrips(), c.NumRows(), sectorSize)
			if err != nil {
				return nil, err
			}
			j.slab = slab
		}
		e.free <- j
	}
	if cfg.Retry.OpTimeout > 0 {
		// The guards' closures read e.src/e.dst at call time; both are
		// published before the first guarded call crosses the request
		// channel.
		e.fillGuard = newOpGuard(func(idx int, st *stripe.Stripe) (*stripe.Stripe, error) {
			return e.src.Next(idx, st)
		})
		e.drainGuard = newOpGuard(func(idx int, st *stripe.Stripe) (*stripe.Stripe, error) {
			return nil, e.dst.Drain(idx, st)
		})
	}

	go e.fillLoop()
	// The compute shards ride the persistent kernel pool: each shard
	// claims one pool worker (falling back to the launcher goroutine
	// when the pool is saturated — Run never deadlocks on a busy pool)
	// and serves stripes until Close.
	go func() {
		if err := kernel.DefaultWorkers().Run(cfg.Workers, func(int) error {
			e.computeLoop()
			return nil
		}); err != nil {
			e.shardErr.Store(err)
		}
	}()
	return e, nil
}

// ErrEnginePoisoned marks an engine whose compute shards died outside
// the per-job path: RunContext wraps it, Healthy reports it, and Pool
// replaces the engine on its next checkout.
var ErrEnginePoisoned = errors.New("pipeline: engine poisoned")

// Plan returns the compiled plan (nil for the empty scenario), for
// inspection and cost analysis.
func (e *Engine) Plan() *core.Plan { return e.plan }

// Healthy reports whether the engine can still serve runs: not closed
// and not poisoned by a shard-level failure. Safe to call concurrently.
func (e *Engine) Healthy() bool {
	if e.closed.Load() {
		return false
	}
	err, _ := e.shardErr.Load().(error)
	return err == nil
}

// RecordCorruption adds n detected-and-handled corruptions (checksum
// mismatches demoted to erasures, torn strips a scrub rebuilt) to the
// engine's fault counters. The storage layer that feeds the engine
// calls it; the count surfaces through StageStats.
func (e *Engine) RecordCorruption(n int) {
	if n > 0 {
		e.corruptions.Add(int64(n))
	}
}

// Config returns the engine's configuration with every default (and,
// under Auto, every autotuned knob) resolved.
func (e *Engine) Config() Config { return e.cfg }

// Close shuts the engine's stage goroutines down and releases its pool
// slots. Close must not be called while a Run is in progress; it is
// idempotent and safe to call from several goroutines at once (two
// deferred Closes racing must not double-close the stage channels).
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		e.closed.Store(true)
		close(e.start)
		close(e.work)
		if e.fillGuard != nil {
			e.fillGuard.close()
			e.drainGuard.close()
		}
	})
}

// Run drives one stream through the pipeline and reports the number of
// stripes drained. See RunContext.
func (e *Engine) Run(src Source, dst Sink) (int, error) {
	return e.RunContext(context.Background(), src, dst)
}

// RunContext drives one stream through the pipeline: Source stripes are
// filled Depth ahead, computed across the worker shards, and drained
// strictly in stripe order. The first failure (lowest stripe index,
// whether from fill, compute or drain) stops intake, drains everything
// in flight, and is returned with the stripe index attached. Cancelling
// the context stops intake at the next stripe boundary and drains
// cleanly; ctx.Err() is returned unless an earlier-indexed stage
// failure takes precedence. After Run returns — error or not — the
// engine is reusable.
func (e *Engine) RunContext(ctx context.Context, src Source, dst Sink) (int, error) {
	if e.closed.Load() {
		return 0, fmt.Errorf("pipeline: engine is closed")
	}
	if err, _ := e.shardErr.Load().(error); err != nil {
		return 0, fmt.Errorf("pipeline: %w: compute shard failed: %w", ErrEnginePoisoned, err)
	}
	e.src = src
	e.dst = dst
	e.ctx = ctx
	e.stop.Store(false)
	e.runStart.Store(time.Now().UnixNano())
	e.running.Store(true)
	defer e.running.Store(false)
	e.start <- struct{}{}

	var firstErr error
	done := ctx.Done()
	drained := 0
	stopped := false // a Sink returned Stop: finish draining, no error
	for {
		var j *job
		select {
		case j = <-e.order:
		default:
			t0 := time.Now()
			j = <-e.order
			e.drainStall.Add(int64(time.Since(t0)))
		}
		if j == e.sentinel {
			break
		}
		var err error
		select {
		case err = <-j.done:
		default:
			t0 := time.Now()
			err = <-j.done
			e.drainStall.Add(int64(time.Since(t0)))
		}
		if firstErr == nil && !stopped && err != nil {
			firstErr = fmt.Errorf("pipeline: stripe %d: %w", j.idx, err)
			e.stop.Store(true)
		}
		if firstErr == nil && !stopped {
			select {
			case <-done:
				firstErr = ctx.Err()
				e.stop.Store(true)
			default:
			}
		}
		if firstErr == nil && !stopped {
			switch derr := e.sinkDrain(dst, j.idx, j.st); {
			case derr == nil:
				drained++
				e.stripes.Add(1)
			case errors.Is(derr, Stop):
				// The sink is satisfied: this stripe still counts, the
				// rest of the stream is skipped without error.
				drained++
				e.stripes.Add(1)
				stopped = true
				e.stop.Store(true)
			default:
				firstErr = fmt.Errorf("pipeline: stripe %d: %w", j.idx, derr)
				e.stop.Store(true)
			}
		}
		j.st = nil // do not pin caller stripes across runs
		e.free <- j
	}
	if firstErr == nil && !stopped {
		// The fill stage may have stopped on cancellation before any
		// stripe reached the drain stage.
		select {
		case <-done:
			firstErr = ctx.Err()
		default:
		}
	}
	return drained, firstErr
}

// fillLoop is the persistent fill stage: one iteration per Run.
func (e *Engine) fillLoop() {
	for range e.start {
		e.fillOne()
	}
}

// fillOne pulls free jobs, asks the Source for stripes in index order,
// and hands them to compute and (in order) to the drain stage. It stops
// on end-of-stream, source error, context cancellation, or the stop
// flag (set by the drain stage on failure), then posts the sentinel.
//
//ppm:hotpath
func (e *Engine) fillOne() {
	done := e.ctx.Done()
	for idx := 0; ; idx++ {
		if e.stop.Load() {
			break
		}
		var j *job
		select {
		case j = <-e.free:
		case <-done:
			// Cancelled while every slab is in flight; the drain stage
			// observes ctx itself.
			j = nil
		default:
			// Blocking on the free list means compute + drain hold every
			// slab: the fill stage is stalled by its downstream.
			t0 := time.Now()
			select {
			case j = <-e.free:
			case <-done:
				j = nil
			}
			e.fillStall.Add(int64(time.Since(t0)))
		}
		if j == nil {
			break
		}
		st, err := e.srcNext(idx, j.slab)
		if err != nil {
			// A fill failure takes the job's error slot straight to the
			// drain stage; compute never sees it.
			j.idx, j.st = idx, nil
			j.done <- err
			e.order <- j
			break
		}
		if st == nil {
			e.free <- j // unused
			break
		}
		j.idx, j.st = idx, st
		e.work <- j
		e.order <- j
	}
	e.order <- e.sentinel
}

// computeLoop is one compute shard: it applies the compiled plan to
// stripes until Close. Once a run is stopping (error or cancellation),
// remaining stripes pass through unprocessed — the drain stage discards
// their results anyway.
//
//ppm:hotpath
func (e *Engine) computeLoop() {
	for {
		var j *job
		var ok bool
		select {
		case j, ok = <-e.work:
		default:
			// Blocking on work while a run is active means the fill
			// stage (I/O) cannot keep the shards fed. Between-run idle
			// is excluded: stall time is clipped to the current run's
			// start, and not counted at all while no run is active.
			t0 := time.Now().UnixNano()
			j, ok = <-e.work
			if e.running.Load() {
				start := e.runStart.Load()
				if t0 > start {
					start = t0
				}
				if d := time.Now().UnixNano() - start; d > 0 {
					e.computeStall.Add(d)
				}
			}
		}
		if !ok {
			return
		}
		if e.stop.Load() {
			j.done <- nil
			continue
		}
		j.done <- e.computeSafe(j)
	}
}

// computeSafe converts a compute panic into the job's error, so the
// drain stage always receives an outcome for every in-flight stripe —
// a panicking stripe can fail its Run but never wedge it.
func (e *Engine) computeSafe(j *job) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("compute stripe %d panicked: %v", j.idx, r)
		}
	}()
	return e.compute(j)
}

func (e *Engine) compute(j *job) error {
	if e.testDelay != nil {
		e.testDelay(j.idx)
	}
	if e.testFail != nil {
		if err := e.testFail(j.idx); err != nil {
			return err
		}
	}
	if e.rplan != nil {
		return e.rplan.Execute(j.st, e.cfg.Stats)
	}
	if e.plan == nil {
		return nil
	}
	return e.dec.DecodeWithPlan(e.plan, j.st)
}

// ReadColumns reports which sectors a fill Source must materialise
// per stripe: with Config.Wanted set, the repair plan's survivor
// columns plus the wanted live sectors, sorted; nil means every
// sector (full-stripe decode or passthrough).
func (e *Engine) ReadColumns() []int {
	if e.rplan == nil {
		return nil
	}
	faulty := e.sc.FaultySet()
	cols := make(map[int]bool, len(e.rplan.ReadCols)+len(e.cfg.Wanted))
	for _, c := range e.rplan.ReadCols {
		cols[c] = true
	}
	for _, w := range e.cfg.Wanted {
		if !faulty[w] {
			cols[w] = true
		}
	}
	out := make([]int, 0, len(cols))
	for c := range cols {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// Serial is the fixed serial per-stripe loop the pipeline is compared
// against: one slab, one decoder, the plan compiled once — but fill,
// compute and drain strictly in sequence on the calling goroutine with
// no overlap. It is the honest single-goroutine baseline for the
// throughput benchmark (and a convenient fallback where goroutines are
// unwelcome). The stripe count and Source/Sink contracts match Run's.
func Serial(c codes.Code, sc codes.Scenario, sectorSize int, cfg Config, src Source, dst Sink) (int, error) {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	dec := core.NewDecoder(c,
		core.WithThreads(cfg.Threads),
		core.WithStrategy(cfg.Strategy),
		core.WithStats(cfg.Stats))
	var plan *core.Plan
	var rplan *repair.Plan
	if len(sc.Faulty) > 0 {
		if len(cfg.Wanted) > 0 {
			rp, err := repair.NewPlanner(c).Plan(sc, cfg.Wanted)
			if err != nil {
				return 0, fmt.Errorf("pipeline: %w", err)
			}
			rplan = rp
		} else {
			p, err := core.BuildPlan(c, sc, cfg.Strategy)
			if err != nil {
				return 0, fmt.Errorf("pipeline: %w", err)
			}
			plan = p
		}
	}
	var slab *stripe.Stripe
	if sectorSize > 0 {
		s, err := stripe.New(c.NumStrips(), c.NumRows(), sectorSize)
		if err != nil {
			return 0, err
		}
		slab = s
	}
	for idx := 0; ; idx++ {
		st, err := src.Next(idx, slab)
		if err != nil {
			return idx, fmt.Errorf("pipeline: stripe %d: %w", idx, err)
		}
		if st == nil {
			return idx, nil
		}
		if rplan != nil {
			if err := rplan.Execute(st, cfg.Stats); err != nil {
				return idx, fmt.Errorf("pipeline: stripe %d: %w", idx, err)
			}
		} else if plan != nil {
			if err := dec.DecodeWithPlan(plan, st); err != nil {
				return idx, fmt.Errorf("pipeline: stripe %d: %w", idx, err)
			}
		}
		if err := dst.Drain(idx, st); err != nil {
			if errors.Is(err, Stop) {
				return idx + 1, nil
			}
			return idx, fmt.Errorf("pipeline: stripe %d: %w", idx, err)
		}
	}
}
