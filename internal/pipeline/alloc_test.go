package pipeline

import (
	"testing"

	"ppm/internal/codes"
	"ppm/internal/stripe"
)

// TestBatchEncodeAllocationFree pins the pipeline's steady-state
// contract: after one warm-up run, encoding a multi-stripe batch
// through a reused engine performs zero heap allocations per run — the
// jobs, slabs and channel plumbing are fixed at New, the plan is
// compiled once, and the per-stripe compute draws its scratch from the
// executor pools.
func TestBatchEncodeAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool deliberately drops items; alloc counts are meaningless")
	}
	sd, err := codes.NewSD(8, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	const sector = 4096
	const stripes = 16
	batch := make([]*stripe.Stripe, stripes)
	for i := range batch {
		st, err := stripe.New(sd.NumStrips(), sd.NumRows(), sector)
		if err != nil {
			t.Fatal(err)
		}
		st.FillDataRandom(int64(i), codes.DataPositions(sd))
		batch[i] = st
	}

	e, err := New(sd, codes.EncodingScenario(sd), 0, Config{Depth: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// Box the source interface once: a SliceSource is a slice header, so
	// converting it to Source at every call would itself allocate.
	var src Source = SliceSource(batch)

	// Warm up: first run populates the executor's session/scratch pools.
	if _, err := e.Run(src, NopSink{}); err != nil {
		t.Fatal(err)
	}

	if avg := testing.AllocsPerRun(10, func() {
		if _, err := e.Run(src, NopSink{}); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("steady-state batch encode allocates %.1f/op, want 0", avg)
	}
}
