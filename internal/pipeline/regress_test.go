package pipeline

import (
	"bytes"
	"io"
	"runtime"
	"sync"
	"testing"

	"ppm/internal/codes"
	"ppm/internal/stripe"
)

// Regression tests for the three pipeline scaling defects: the
// unsynchronized double-Close, the Workers-capped-by-Depth defaulting,
// and DecodeStream decoding past the requested payload.

// TestConcurrentClose: Close is documented idempotent and is commonly
// deferred from more than one goroutine; racing Closes must not
// double-close the stage channels (a panic before the sync.Once fix).
// Run under -race this also pins the memory ordering.
func TestConcurrentClose(t *testing.T) {
	sd := testSD(t)
	for round := 0; round < 4; round++ {
		e, err := New(sd, codes.EncodingScenario(sd), 64, Config{Depth: 2})
		if err != nil {
			t.Fatal(err)
		}
		// One short run so the stage goroutines are demonstrably live.
		if _, err := e.Run(&constSource{count: 3}, &recordSink{}); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				e.Close()
			}()
		}
		close(start)
		wg.Wait()
		if _, err := e.Run(&constSource{count: 1}, &recordSink{}); err == nil {
			t.Fatal("Run on a closed engine succeeded")
		}
	}
}

// TestWorkersDecoupledFromDepth: queue depth and compute parallelism
// are distinct knobs. Defaulted Workers must follow the core count —
// not min(Depth, NumCPU), which silently capped compute shards at
// DefaultDepth on many-core hosts — and a defaulted Depth must still
// cover the shards.
func TestWorkersDecoupledFromDepth(t *testing.T) {
	sd := testSD(t)
	ncpu := runtime.NumCPU()

	cases := []struct {
		name        string
		cfg         Config
		wantWorkers int
		wantDepth   int
	}{
		// The defaulted config: workers from the host, depth covering them.
		{"all-default", Config{}, ncpu, maxInt(DefaultDepth, ncpu)},
		// A shallow explicit queue must not throttle the compute shards.
		{"depth-2", Config{Depth: 2}, ncpu, 2},
		// An explicit worker count below DefaultDepth keeps the default queue.
		{"workers-explicit", Config{Workers: 3}, 3, maxInt(DefaultDepth, 3)},
		// Wide explicit workers pull the defaulted depth up with them.
		{"workers-wide", Config{Workers: 2 * DefaultDepth}, 2 * DefaultDepth, 2 * DefaultDepth},
	}
	for _, tc := range cases {
		e, err := New(sd, codes.EncodingScenario(sd), 64, tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := e.Config()
		e.Close()
		if got.Workers != tc.wantWorkers {
			t.Errorf("%s: Workers=%d, want %d", tc.name, got.Workers, tc.wantWorkers)
		}
		if got.Depth != tc.wantDepth {
			t.Errorf("%s: Depth=%d, want %d", tc.name, got.Depth, tc.wantDepth)
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// countingReader hands out stripe images and records how many the
// engine actually consumed.
type countingReader struct {
	images []byte
	off    int
	reads  int // stripe images fully consumed
	stripe int
}

func (r *countingReader) Read(p []byte) (int, error) {
	if r.off >= len(r.images) {
		return 0, io.EOF
	}
	n := copy(p, r.images[r.off:])
	before := r.off / r.stripe
	r.off += n
	r.reads += r.off/r.stripe - before
	return n, nil
}

// TestDecodeStreamEarlyStop: a short payload over a long stream must
// decode only ⌈payload/stripe⌉ stripes — intake stops once the payload
// is satisfied instead of filling, decoding and draining stripes whose
// output is fully trimmed.
func TestDecodeStreamEarlyStop(t *testing.T) {
	sd := testSD(t)
	const sector = 128
	const totalStripes = 64
	perStripe := len(codes.DataPositions(sd)) * sector
	data := payload(perStripe * totalStripes)
	images := encodeSerialImages(t, sd, data, sector)
	stripeBytes := sd.NumStrips() * sd.NumRows() * sector

	// 2.5 stripes of payload over a 64-stripe stream.
	want := perStripe*2 + perStripe/2
	const wantStripes = 3 // ceil(2.5)

	const depth = 2
	src := &countingReader{images: images, stripe: stripeBytes}
	var out bytes.Buffer
	res, err := DecodeStream(sd, &out, src, codes.Scenario{}, int64(want), sector, Config{Depth: depth, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stripes != wantStripes {
		t.Errorf("decoded %d stripes for a %d-stripe payload over a %d-stripe stream", res.Stripes, wantStripes, totalStripes)
	}
	if !bytes.Equal(out.Bytes(), data[:want]) {
		t.Fatal("early-stopped decode produced the wrong payload")
	}
	// Intake may legitimately run Depth stripes ahead of the drain
	// stage, but no further: the old behaviour read all 64.
	if maxReads := wantStripes + depth + 1; src.reads > maxReads {
		t.Errorf("engine consumed %d stripe images, want <= %d", src.reads, maxReads)
	}

	// The Serial loop honours Stop identically.
	src2 := &countingReader{images: images, stripe: stripeBytes}
	var out2 bytes.Buffer
	ds := &dataSink{w: &out2, data: codes.DataPositions(sd), remaining: int64(want)}
	n, err := Serial(sd, codes.Scenario{}, sector, Config{}, &imageSource{r: src2}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if n != wantStripes {
		t.Errorf("serial loop decoded %d stripes, want %d", n, wantStripes)
	}
	if !bytes.Equal(out2.Bytes(), data[:want]) {
		t.Fatal("serial early-stopped decode produced the wrong payload")
	}
}

// TestDecodeStreamEarlyStopWithRepair: early stop composes with a real
// repair scenario — the decoded prefix is still byte-exact.
func TestDecodeStreamEarlyStopWithRepair(t *testing.T) {
	sd := testSD(t)
	const sector = 128
	const totalStripes = 16
	perStripe := len(codes.DataPositions(sd)) * sector
	data := payload(perStripe * totalStripes)
	images := encodeSerialImages(t, sd, data, sector)

	var faulty []int
	for row := 0; row < sd.NumRows(); row++ {
		for _, d := range []int{1, 4} {
			faulty = append(faulty, row*sd.NumStrips()+d)
		}
	}
	stripeBytes := sd.NumStrips() * sd.NumRows() * sector
	for off := 0; off < len(images); off += stripeBytes {
		for _, f := range faulty {
			for i := off + f*sector; i < off+(f+1)*sector; i++ {
				images[i] ^= 0xA5
			}
		}
	}
	sc, err := codes.NewScenario(sd, faulty)
	if err != nil {
		t.Fatal(err)
	}

	want := perStripe*3 + 17 // a ragged 4-stripe payload
	var out bytes.Buffer
	res, err := DecodeStream(sd, &out, bytes.NewReader(images), sc, int64(want), sector, Config{Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stripes != 4 {
		t.Errorf("decoded %d stripes, want 4", res.Stripes)
	}
	if !bytes.Equal(out.Bytes(), data[:want]) {
		t.Fatal("early-stopped repair decode produced the wrong payload")
	}
}

// TestStopFromCustomSink: the Stop sentinel is part of the Sink
// contract, not a dataSink private: any sink can end a stream early
// without an error, and the stopping stripe counts as drained.
func TestStopFromCustomSink(t *testing.T) {
	sd := testSD(t)
	e, err := New(sd, codes.EncodingScenario(sd), 64, Config{Depth: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	stopAt := 5
	sink := &stopSink{at: stopAt}
	n, err := e.Run(&constSource{count: 1 << 30}, sink)
	if err != nil {
		t.Fatalf("Stop surfaced as an error: %v", err)
	}
	if n != stopAt+1 {
		t.Fatalf("drained %d stripes, want %d", n, stopAt+1)
	}
	// The engine is reusable after an early stop.
	rec := &recordSink{}
	n, err = e.Run(&constSource{count: 4}, rec)
	if err != nil || n != 4 {
		t.Fatalf("post-stop run: n=%d err=%v", n, err)
	}
}

type stopSink struct{ at, n int }

func (s *stopSink) Drain(idx int, _ *stripe.Stripe) error {
	s.n++
	if idx >= s.at {
		return Stop
	}
	return nil
}
