package pipeline

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"ppm/internal/codes"
	"ppm/internal/decode"
	"ppm/internal/stripe"
)

func testSD(t *testing.T) *codes.SD {
	t.Helper()
	sd, err := codes.NewSD(6, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	return sd
}

// payload returns size deterministic pseudo-random bytes.
func payload(size int) []byte {
	data := make([]byte, size)
	rand.New(rand.NewSource(7)).Read(data)
	return data
}

// encodeSerialImages encodes data with the fixed serial loop and
// returns the stream image bytes — the reference the pipeline's output
// must match byte for byte.
func encodeSerialImages(t *testing.T, c codes.Code, data []byte, sectorSize int) []byte {
	t.Helper()
	var buf bytes.Buffer
	src := &readerSource{r: bytes.NewReader(data), data: codes.DataPositions(c)}
	if _, err := Serial(c, codes.EncodingScenario(c), sectorSize, Config{}, src, &imageSink{w: &buf}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStreamRoundTrip pins the full streaming path: EncodeStream's
// output is byte-identical to the serial loop's, and after scribbling
// over two whole disks' bytes in the stream, DecodeStream recovers the
// exact payload — including a non-stripe-aligned tail.
func TestStreamRoundTrip(t *testing.T) {
	sd := testSD(t)
	const sector = 256
	// 11.5 stripes of payload: the tail exercises zero-padding and trim.
	perStripe := len(codes.DataPositions(sd)) * sector
	data := payload(perStripe*11 + perStripe/2)

	want := encodeSerialImages(t, sd, data, sector)

	var enc bytes.Buffer
	res, err := EncodeStream(sd, &enc, bytes.NewReader(data), sector, Config{Depth: 4, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != int64(len(data)) {
		t.Fatalf("consumed %d bytes, want %d", res.Bytes, len(data))
	}
	if !bytes.Equal(enc.Bytes(), want) {
		t.Fatal("pipeline encode output differs from the serial loop's")
	}

	// Lose disks 1 and 4: scribble their bytes in every stripe image.
	images := append([]byte(nil), enc.Bytes()...)
	var faulty []int
	for row := 0; row < sd.NumRows(); row++ {
		for _, d := range []int{1, 4} {
			faulty = append(faulty, row*sd.NumStrips()+d)
		}
	}
	stripeBytes := sd.NumStrips() * sd.NumRows() * sector
	for off := 0; off < len(images); off += stripeBytes {
		for _, f := range faulty {
			rand.New(rand.NewSource(int64(off + f))).Read(images[off+f*sector : off+(f+1)*sector])
		}
	}
	sc, err := codes.NewScenario(sd, faulty)
	if err != nil {
		t.Fatal(err)
	}

	var dec bytes.Buffer
	dres, err := DecodeStream(sd, &dec, bytes.NewReader(images), sc, int64(len(data)), sector, Config{Depth: 4, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if dres.Stripes != res.Stripes {
		t.Fatalf("decoded %d stripes, encoded %d", dres.Stripes, res.Stripes)
	}
	if !bytes.Equal(dec.Bytes(), data) {
		t.Fatal("decoded payload differs from the original")
	}
}

// TestDecodeStreamPassthrough: the empty scenario extracts an intact
// stream with no compute.
func TestDecodeStreamPassthrough(t *testing.T) {
	sd := testSD(t)
	const sector = 128
	data := payload(3000)
	images := encodeSerialImages(t, sd, data, sector)
	var out bytes.Buffer
	if _, err := DecodeStream(sd, &out, bytes.NewReader(images), codes.Scenario{}, int64(len(data)), sector, Config{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("passthrough extract corrupted the payload")
	}
}

// recordSink records the drain order.
type recordSink struct {
	mu   sync.Mutex
	idxs []int
}

func (s *recordSink) Drain(idx int, _ *stripe.Stripe) error {
	s.mu.Lock()
	s.idxs = append(s.idxs, idx)
	s.mu.Unlock()
	return nil
}

// constSource produces count stripes without touching the slab.
type constSource struct{ count int }

func (s *constSource) Next(idx int, slab *stripe.Stripe) (*stripe.Stripe, error) {
	if idx >= s.count {
		return nil, nil
	}
	return slab, nil
}

// TestInOrderUnderOutOfOrderCompletion forces compute completion in
// roughly reverse index order (earlier stripes stall longer across 4
// shards) and checks the sink still sees strictly increasing indices.
func TestInOrderUnderOutOfOrderCompletion(t *testing.T) {
	sd := testSD(t)
	const stripes = 12
	e, err := New(sd, codes.EncodingScenario(sd), 64, Config{Depth: 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	var mu sync.Mutex
	var completed []int
	e.testDelay = func(idx int) {
		if idx < 8 {
			time.Sleep(time.Duration(8-idx) * 5 * time.Millisecond)
		}
		mu.Lock()
		completed = append(completed, idx)
		mu.Unlock()
	}

	sink := &recordSink{}
	n, err := e.Run(&constSource{count: stripes}, sink)
	if err != nil {
		t.Fatal(err)
	}
	if n != stripes {
		t.Fatalf("drained %d stripes, want %d", n, stripes)
	}
	for i, idx := range sink.idxs {
		if idx != i {
			t.Fatalf("drain order %v is not the stripe order", sink.idxs)
		}
	}
	// Sanity: the schedule above really did complete out of order
	// (stripe 1 must finish before stripe 0 given 4 concurrent shards
	// and a 35ms spread).
	mu.Lock()
	defer mu.Unlock()
	inOrder := true
	for i := 1; i < len(completed); i++ {
		if completed[i] < completed[i-1] {
			inOrder = false
		}
	}
	if inOrder {
		t.Log("warning: compute completed in order; reordering not exercised this run")
	}
}

// TestLowestIndexComputeErrorWins injects compute failures at stripes 2
// and 5, with 5 completing first; the reported error must carry stripe
// 2, and only stripes 0 and 1 may drain.
func TestLowestIndexComputeErrorWins(t *testing.T) {
	sd := testSD(t)
	e, err := New(sd, codes.EncodingScenario(sd), 64, Config{Depth: 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	boom2, boom5 := errors.New("boom at 2"), errors.New("boom at 5")
	e.testDelay = func(idx int) {
		if idx == 2 {
			time.Sleep(20 * time.Millisecond) // let stripe 5 fail first
		}
	}
	e.testFail = func(idx int) error {
		switch idx {
		case 2:
			return boom2
		case 5:
			return boom5
		}
		return nil
	}

	sink := &recordSink{}
	n, err := e.Run(&constSource{count: 10}, sink)
	if err == nil {
		t.Fatal("injected failures, Run returned nil")
	}
	if !errors.Is(err, boom2) {
		t.Fatalf("got %v, want the stripe-2 error", err)
	}
	if !strings.Contains(err.Error(), "stripe 2") {
		t.Fatalf("error %q does not name stripe 2", err)
	}
	if n != 2 {
		t.Fatalf("drained %d stripes after a stripe-2 failure, want 2", n)
	}
}

// failSource errors at a chosen index.
type failSource struct {
	at  int
	err error
}

func (s *failSource) Next(idx int, slab *stripe.Stripe) (*stripe.Stripe, error) {
	if idx == s.at {
		return nil, s.err
	}
	return slab, nil
}

// TestFillErrorPropagates: a source failure carries its stripe index
// and stops intake after draining the preceding stripes.
func TestFillErrorPropagates(t *testing.T) {
	sd := testSD(t)
	e, err := New(sd, codes.EncodingScenario(sd), 64, Config{Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	boom := errors.New("read failed")
	sink := &recordSink{}
	n, err := e.Run(&failSource{at: 3, err: boom}, sink)
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the injected read error", err)
	}
	if !strings.Contains(err.Error(), "stripe 3") {
		t.Fatalf("error %q does not name stripe 3", err)
	}
	if n != 3 {
		t.Fatalf("drained %d stripes, want 3", n)
	}
}

// errSink fails at a chosen index.
type errSink struct {
	at  int
	err error
	n   int
}

func (s *errSink) Drain(idx int, _ *stripe.Stripe) error {
	if idx == s.at {
		return s.err
	}
	s.n++
	return nil
}

// TestDrainErrorStops: a sink failure carries its stripe index too.
func TestDrainErrorStops(t *testing.T) {
	sd := testSD(t)
	e, err := New(sd, codes.EncodingScenario(sd), 64, Config{Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	boom := errors.New("write failed")
	sink := &errSink{at: 2, err: boom}
	n, err := e.Run(&constSource{count: 8}, sink)
	if !errors.Is(err, boom) || !strings.Contains(err.Error(), "stripe 2") {
		t.Fatalf("got %v, want the stripe-2 write error", err)
	}
	if n != 2 {
		t.Fatalf("drained %d stripes, want 2", n)
	}
}

// slowSink paces the drain stage so a cancellation lands mid-stream.
type slowSink struct {
	after   int
	cancel  context.CancelFunc
	drained int
}

func (s *slowSink) Drain(idx int, _ *stripe.Stripe) error {
	s.drained++
	if s.drained == s.after {
		s.cancel()
	}
	return nil
}

// TestCancellationDrainsCleanly cancels mid-stream and checks the run
// stops with ctx.Err(), every job returns to the free list, and the
// engine stays usable.
func TestCancellationDrainsCleanly(t *testing.T) {
	sd := testSD(t)
	e, err := New(sd, codes.EncodingScenario(sd), 64, Config{Depth: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink := &slowSink{after: 5, cancel: cancel}
	n, err := e.RunContext(ctx, &constSource{count: 1 << 30}, sink) // effectively unbounded
	_ = n
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if got := len(e.free); got != e.cfg.Depth {
		t.Fatalf("%d of %d jobs returned to the free list", got, e.cfg.Depth)
	}

	// The engine is reusable after cancellation.
	sink2 := &recordSink{}
	n, err = e.Run(&constSource{count: 6}, sink2)
	if err != nil || n != 6 {
		t.Fatalf("post-cancel run: n=%d err=%v, want 6 stripes clean", n, err)
	}
	if got := len(e.free); got != e.cfg.Depth {
		t.Fatalf("%d of %d jobs returned to the free list after reuse", got, e.cfg.Depth)
	}
}

// TestRunContextPreCancelled: a context cancelled before Run drains
// nothing but still returns cleanly.
func TestRunContextPreCancelled(t *testing.T) {
	sd := testSD(t)
	e, err := New(sd, codes.EncodingScenario(sd), 64, Config{Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.RunContext(ctx, &constSource{count: 100}, &recordSink{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if got := len(e.free); got != e.cfg.Depth {
		t.Fatalf("%d of %d jobs returned to the free list", got, e.cfg.Depth)
	}
}

// TestEngineReuseAfterError: a failed run leaves the engine consistent.
func TestEngineReuseAfterError(t *testing.T) {
	sd := testSD(t)
	e, err := New(sd, codes.EncodingScenario(sd), 64, Config{Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	if _, err := e.Run(&failSource{at: 1, err: errors.New("x")}, &recordSink{}); err == nil {
		t.Fatal("injected failure not reported")
	}
	sink := &recordSink{}
	n, err := e.Run(&constSource{count: 5}, sink)
	if err != nil || n != 5 {
		t.Fatalf("post-error run: n=%d err=%v", n, err)
	}
}

// TestClosedEngineRejectsRun: Run after Close errors instead of
// deadlocking or panicking.
func TestClosedEngineRejectsRun(t *testing.T) {
	sd := testSD(t)
	e, err := New(sd, codes.EncodingScenario(sd), 64, Config{})
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close() // idempotent
	if _, err := e.Run(&constSource{count: 1}, &recordSink{}); err == nil {
		t.Fatal("Run on a closed engine succeeded")
	}
}

// TestBatchEncodeDecode: Batch encodes a set of stripes identically to
// the traditional encoder and decodes a two-disk loss back to the
// original content, in place.
func TestBatchEncodeDecode(t *testing.T) {
	sd := testSD(t)
	const sector = 512
	const stripes = 9

	batch := make([]*stripe.Stripe, stripes)
	want := make([]*stripe.Stripe, stripes)
	for i := range batch {
		st, err := stripe.New(sd.NumStrips(), sd.NumRows(), sector)
		if err != nil {
			t.Fatal(err)
		}
		st.FillDataRandom(int64(i), codes.DataPositions(sd))
		batch[i] = st
		ref := st.Clone()
		if err := decode.Encode(sd, ref, decode.Options{}); err != nil {
			t.Fatal(err)
		}
		want[i] = ref
	}

	if err := Batch(sd, codes.EncodingScenario(sd), batch, Config{Depth: 4, Workers: 3}); err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		if !batch[i].Equal(want[i]) {
			t.Fatalf("batch-encoded stripe %d differs from the traditional encoder", i)
		}
	}

	// Lose two disks across the whole batch and repair it in place.
	var faulty []int
	for row := 0; row < sd.NumRows(); row++ {
		for _, d := range []int{0, 3} {
			faulty = append(faulty, row*sd.NumStrips()+d)
		}
	}
	sc, err := codes.NewScenario(sd, faulty)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range batch {
		st.Scribble(int64(100+i), faulty)
	}
	if err := Batch(sd, sc, batch, Config{Depth: 4, Workers: 3}); err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		if !batch[i].Equal(want[i]) {
			t.Fatalf("batch-decoded stripe %d differs from the original", i)
		}
	}
}

// TestBatchGeometryMismatch: a stripe that does not match the code
// geometry is reported with its index, not executed.
func TestBatchGeometryMismatch(t *testing.T) {
	sd := testSD(t)
	good, err := stripe.New(sd.NumStrips(), sd.NumRows(), 64)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := stripe.New(sd.NumStrips()+1, sd.NumRows(), 64)
	if err != nil {
		t.Fatal(err)
	}
	err = Batch(sd, codes.EncodingScenario(sd), []*stripe.Stripe{good, bad}, Config{})
	if err == nil || !strings.Contains(err.Error(), "stripe 1") {
		t.Fatalf("got %v, want a stripe-1 geometry error", err)
	}
}

// TestConcurrentEngines runs several engines over the shared worker
// pool at once — the -race check for the concurrency layer.
func TestConcurrentEngines(t *testing.T) {
	sd := testSD(t)
	const sector = 128
	data := payload(len(codes.DataPositions(sd)) * sector * 6)
	want := encodeSerialImages(t, sd, data, sector)

	var wg sync.WaitGroup
	errs := make([]error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var buf bytes.Buffer
			if _, err := EncodeStream(sd, &buf, bytes.NewReader(data), sector, Config{Depth: 3, Workers: 2}); err != nil {
				errs[g] = err
				return
			}
			if !bytes.Equal(buf.Bytes(), want) {
				errs[g] = fmt.Errorf("goroutine %d: stream output differs", g)
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
