package pipeline

import (
	"fmt"
	"io"

	"ppm/internal/codes"
	"ppm/internal/stripe"
)

// Result summarises one stream run.
type Result struct {
	// Stripes is the number of stripes drained to the sink.
	Stripes int
	// Bytes is the payload moved: bytes consumed from the reader on
	// encode, bytes written to the writer on decode.
	Bytes int64
}

// The stream wire format is the obvious one: each stripe is written as
// its n*r sectors in row-major (global index) order, so a stream is a
// sequence of fixed-size stripe images. Encode consumes raw payload
// bytes and emits images (data laid into the data positions in index
// order, zero-padded tail); decode consumes images and emits the
// payload back.

// readerSource lays payload bytes from r into the data sectors of the
// slab, zero-padding the final partial stripe.
type readerSource struct {
	r    io.Reader
	data []int
	eof  bool
	n    int64
}

func (s *readerSource) Next(idx int, slab *stripe.Stripe) (*stripe.Stripe, error) {
	if s.eof {
		return nil, nil
	}
	filled := 0
	for _, pos := range s.data {
		sec := slab.Sector(pos)
		if s.eof {
			clear(sec)
			continue
		}
		n, err := io.ReadFull(s.r, sec)
		s.n += int64(n)
		filled += n
		switch err {
		case nil:
		case io.EOF, io.ErrUnexpectedEOF:
			s.eof = true
			clear(sec[n:])
		default:
			return nil, err
		}
	}
	if filled == 0 {
		return nil, nil // the stream ended exactly on a stripe boundary
	}
	return slab, nil
}

// imageSink writes full stripe images.
type imageSink struct {
	w io.Writer
}

func (k *imageSink) Drain(_ int, st *stripe.Stripe) error {
	for i := 0; i < st.TotalSectors(); i++ {
		if _, err := k.w.Write(st.Sector(i)); err != nil {
			return err
		}
	}
	return nil
}

// imageSource reads full stripe images; a clean EOF on an image
// boundary ends the stream.
type imageSource struct {
	r io.Reader
}

func (s *imageSource) Next(idx int, slab *stripe.Stripe) (*stripe.Stripe, error) {
	for i := 0; i < slab.TotalSectors(); i++ {
		n, err := io.ReadFull(s.r, slab.Sector(i))
		switch {
		case err == nil:
		case i == 0 && n == 0 && err == io.EOF:
			return nil, nil
		default:
			return nil, fmt.Errorf("truncated stripe image: %w", err)
		}
	}
	return slab, nil
}

// dataSink writes the data sectors back out, trimmed to the remaining
// payload size (remaining < 0 writes every data byte, padding
// included). Once the payload is satisfied it returns Stop, so the
// engine stops filling and decoding stripes whose output would be
// trimmed entirely — a short payload over a long stream decodes only
// ⌈payload/stripe⌉ stripes instead of the whole stream.
type dataSink struct {
	w         io.Writer
	data      []int
	remaining int64
	n         int64
}

func (k *dataSink) Drain(_ int, st *stripe.Stripe) error {
	for _, pos := range k.data {
		if k.remaining == 0 {
			return Stop
		}
		sec := st.Sector(pos)
		if k.remaining > 0 && int64(len(sec)) > k.remaining {
			sec = sec[:k.remaining]
		}
		n, err := k.w.Write(sec)
		k.n += int64(n)
		if k.remaining > 0 {
			k.remaining -= int64(n)
		}
		if err != nil {
			return err
		}
	}
	if k.remaining == 0 {
		return Stop
	}
	return nil
}

// EncodeStream reads payload bytes from src, encodes them stripe by
// stripe through the pipeline (plan compiled once, Depth stripes in
// flight), and writes full stripe images to dst. The final stripe is
// zero-padded; Result.Bytes reports the payload consumed, which the
// caller needs to trim the padding after a later DecodeStream.
func EncodeStream(c codes.Code, dst io.Writer, src io.Reader, sectorSize int, cfg Config) (Result, error) {
	e, err := New(c, codes.EncodingScenario(c), sectorSize, cfg)
	if err != nil {
		return Result{}, err
	}
	defer e.Close()
	rs := &readerSource{r: src, data: codes.DataPositions(c)}
	n, err := e.Run(rs, &imageSink{w: dst})
	return Result{Stripes: n, Bytes: rs.n}, err
}

// DecodeStream reads stripe images from src, recovers the scenario's
// faulty sectors in each (bytes at faulty positions in the stream are
// ignored and reconstructed), and writes the payload's data bytes to
// dst. payload is the original byte count from the matching
// EncodeStream, used to trim the final stripe's zero padding; pass a
// negative payload to emit every data byte, padding included. Decoding
// stops once the payload is satisfied: a short payload over a long
// stream reads and decodes only ⌈payload/stripe payload⌉ stripes. An
// empty scenario turns DecodeStream into an overlapped extract of an
// intact stream.
func DecodeStream(c codes.Code, dst io.Writer, src io.Reader, sc codes.Scenario, payload int64, sectorSize int, cfg Config) (Result, error) {
	e, err := New(c, sc, sectorSize, cfg)
	if err != nil {
		return Result{}, err
	}
	defer e.Close()
	ds := &dataSink{w: dst, data: codes.DataPositions(c), remaining: payload}
	n, err := e.Run(&imageSource{r: src}, ds)
	if err == nil && payload > 0 && ds.remaining > 0 {
		return Result{Stripes: n, Bytes: ds.n},
			fmt.Errorf("pipeline: stream ended %d bytes short of the %d-byte payload", ds.remaining, payload)
	}
	return Result{Stripes: n, Bytes: ds.n}, err
}
