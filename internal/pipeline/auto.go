package pipeline

import "sync/atomic"

// The autotune seam. internal/tune owns calibration (it measures this
// package, so this package cannot import it); it registers resolvers
// here at init, and Config.Auto / NewPool consult them. Without a
// registered resolver Auto degrades to the static defaults.

var (
	autoTuner    atomic.Value // func(Config) Config
	autoPoolFunc atomic.Value // func() int
)

// RegisterAutoTuner installs the resolver Config.Auto consults: it
// receives the caller's config and returns it with unset knobs filled
// from the host profile (applying process-wide kernel knobs as a side
// effect). Registered by internal/tune's init.
func RegisterAutoTuner(fn func(Config) Config) { autoTuner.Store(fn) }

// RegisterAutoPoolSize installs the resolver NewPool consults for a
// default pool size under Config.Auto.
func RegisterAutoPoolSize(fn func() int) { autoPoolFunc.Store(fn) }

// resolveAuto applies the registered tuner to an Auto config. The Auto
// flag is cleared so a config resolved once (e.g. by NewPool for all
// its engines) is not re-resolved by each New.
func resolveAuto(cfg Config) Config {
	if !cfg.Auto {
		return cfg
	}
	cfg.Auto = false
	if fn, ok := autoTuner.Load().(func(Config) Config); ok && fn != nil {
		cfg = fn(cfg)
		cfg.Auto = false
	}
	return cfg
}

// resolveAutoPoolSize returns the registered pool-size default, or 0
// when none is registered.
func resolveAutoPoolSize() int {
	if fn, ok := autoPoolFunc.Load().(func() int); ok && fn != nil {
		return fn()
	}
	return 0
}
