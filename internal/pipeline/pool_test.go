package pipeline

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"ppm/internal/codes"
	"ppm/internal/stripe"
)

// TestPoolConcurrentStreams drives more concurrent encode streams than
// the pool has engines and checks every stream's output byte-for-byte
// against the serial loop. Under -race this also pins the checkout
// protocol.
func TestPoolConcurrentStreams(t *testing.T) {
	sd := testSD(t)
	const sector = 128
	const streams = 8
	perStripe := len(codes.DataPositions(sd)) * sector

	// Distinct payloads (ragged tails included) and their serial images,
	// prepared before the goroutines launch so helpers may t.Fatal.
	datas := make([][]byte, streams)
	wants := make([][]byte, streams)
	for i := range datas {
		data := make([]byte, perStripe*3+i*37)
		rand.New(rand.NewSource(int64(100 + i))).Read(data)
		datas[i] = data
		wants[i] = encodeSerialImages(t, sd, data, sector)
	}

	p, err := NewPool(sd, codes.EncodingScenario(sd), sector, 3, Config{Depth: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Size() != 3 {
		t.Fatalf("pool size %d, want 3", p.Size())
	}

	var wg sync.WaitGroup
	outs := make([]bytes.Buffer, streams)
	errs := make([]error, streams)
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src := &readerSource{r: bytes.NewReader(datas[i]), data: codes.DataPositions(sd)}
			_, errs[i] = p.Run(src, &imageSink{w: &outs[i]})
		}(i)
	}
	wg.Wait()
	for i := 0; i < streams; i++ {
		if errs[i] != nil {
			t.Fatalf("stream %d: %v", i, errs[i])
		}
		if !bytes.Equal(outs[i].Bytes(), wants[i]) {
			t.Fatalf("stream %d: pool output differs from the serial loop's", i)
		}
	}

	stats := p.StageStats()
	var wantStripes int64
	for i := range datas {
		wantStripes += int64((len(datas[i]) + perStripe - 1) / perStripe)
	}
	if stats.Stripes != wantStripes {
		t.Errorf("pool drained %d stripes, want %d", stats.Stripes, wantStripes)
	}
}

// TestPoolWorkerBudget: with Workers unset the per-engine shards divide
// the host budget across the pool instead of each engine claiming the
// full core count.
func TestPoolWorkerBudget(t *testing.T) {
	sd := testSD(t)
	p, err := NewPool(sd, codes.EncodingScenario(sd), 64, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	got := p.Config().Workers
	if got < 1 {
		t.Fatalf("pool engine workers %d, want >= 1", got)
	}
	if want := maxInt(1, runtime.NumCPU()/2); got != want {
		t.Errorf("pool engine workers %d, want budget/size = %d", got, want)
	}

	// An explicit Workers value is honoured verbatim.
	p2, err := NewPool(sd, codes.EncodingScenario(sd), 64, 2, Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := p2.Config().Workers; got != 3 {
		t.Errorf("explicit workers: got %d, want 3", got)
	}
}

// TestPoolAdmission: when every engine is busy, RunContext waits under
// the caller's context and honours cancellation without leaking an
// engine checkout.
func TestPoolAdmission(t *testing.T) {
	sd := testSD(t)
	p, err := NewPool(sd, codes.EncodingScenario(sd), 64, 1, Config{Depth: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	gate := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		src := &gatedSource{count: 2, started: started, gate: gate}
		if _, err := p.Run(src, &recordSink{}); err != nil {
			t.Errorf("gated stream: %v", err)
		}
	}()
	<-started // the single engine is now checked out and mid-stream

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := p.RunContext(ctx, &constSource{count: 1}, &recordSink{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("busy-pool RunContext err = %v, want DeadlineExceeded", err)
	}

	close(gate)
	wg.Wait()

	// The engine came back: the pool serves again.
	if _, err := p.Run(&constSource{count: 1}, &recordSink{}); err != nil {
		t.Fatalf("post-admission run: %v", err)
	}
}

// gatedSource signals started on the first Next and then blocks until
// gate closes.
type gatedSource struct {
	count   int
	started chan struct{}
	gate    chan struct{}
	once    sync.Once
}

func (s *gatedSource) Next(idx int, slab *stripe.Stripe) (*stripe.Stripe, error) {
	s.once.Do(func() { close(s.started) })
	<-s.gate
	if idx >= s.count {
		return nil, nil
	}
	return slab, nil
}

// TestPoolClose: Close is idempotent and a closed pool rejects new
// streams instead of hanging.
func TestPoolClose(t *testing.T) {
	sd := testSD(t)
	p, err := NewPool(sd, codes.EncodingScenario(sd), 64, 2, Config{Depth: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close()
	if _, err := p.Run(&constSource{count: 1}, &recordSink{}); !errors.Is(err, errPoolClosed) {
		t.Fatalf("run on closed pool err = %v, want errPoolClosed", err)
	}
}
