package pipeline

import (
	"bytes"
	"testing"

	"ppm/internal/codes"
	"ppm/internal/core"
	"ppm/internal/stripe"
)

// partialSource fills only the columns the engine declared it needs,
// scribbling every other survivor — proving the partial plan never
// consumes an unfilled sector.
type partialSource struct {
	stripes []*stripe.Stripe
	cols    []int
	skip    []int
}

func (s *partialSource) Next(idx int, slab *stripe.Stripe) (*stripe.Stripe, error) {
	if idx >= len(s.stripes) {
		return nil, nil
	}
	src := s.stripes[idx]
	for i := 0; i < slab.TotalSectors(); i++ {
		clear(slab.Sector(i))
	}
	for _, c := range s.cols {
		copy(slab.Sector(c), src.Sector(c))
	}
	slab.Scribble(int64(idx)+101, s.skip)
	return slab, nil
}

type collectSink struct{ got []*stripe.Stripe }

func (s *collectSink) Drain(idx int, st *stripe.Stripe) error {
	s.got = append(s.got, st.Clone())
	return nil
}

// TestPartialReadFillPath: with Config.Wanted set, the engine runs the
// minimal repair plan, ReadColumns names the only sectors the Source
// must fill, and the wanted output is byte-identical to the original.
func TestPartialReadFillPath(t *testing.T) {
	lrc, err := codes.NewLRC(12, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	const sector, stripes = 64, 5
	sc, err := codes.NewScenario(lrc, []int{3})
	if err != nil {
		t.Fatal(err)
	}

	var origs []*stripe.Stripe
	for i := 0; i < stripes; i++ {
		st, err := stripe.New(lrc.NumStrips(), lrc.NumRows(), sector)
		if err != nil {
			t.Fatal(err)
		}
		st.FillDataRandom(int64(i)+7, codes.DataPositions(lrc))
		if err := core.NewDecoder(lrc).Encode(st); err != nil {
			t.Fatal(err)
		}
		origs = append(origs, st)
	}

	eng, err := New(lrc, sc, sector, Config{Depth: 2, Workers: 2, Wanted: []int{3}})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	cols := eng.ReadColumns()
	if len(cols) == 0 || len(cols) >= codes.TotalSectors(lrc)-1 {
		t.Fatalf("ReadColumns = %v, want a strict subset of the survivors", cols)
	}
	// Sectors neither wanted nor read: scribbled by the source.
	colSet := make(map[int]bool, len(cols))
	for _, c := range cols {
		colSet[c] = true
	}
	var skip []int
	for i := 0; i < codes.TotalSectors(lrc); i++ {
		if !colSet[i] && i != 3 {
			skip = append(skip, i)
		}
	}

	src := &partialSource{stripes: origs, cols: cols, skip: skip}
	sink := &collectSink{}
	n, err := eng.Run(src, sink)
	if err != nil {
		t.Fatal(err)
	}
	if n != stripes {
		t.Fatalf("processed %d stripes, want %d", n, stripes)
	}
	for i, got := range sink.got {
		if !bytes.Equal(got.Sector(3), origs[i].Sector(3)) {
			t.Fatalf("stripe %d: wanted sector differs from original", i)
		}
	}

	// Full-stripe engines report no restriction.
	full, err := New(lrc, sc, sector, Config{Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	if full.ReadColumns() != nil {
		t.Fatalf("full engine ReadColumns = %v, want nil", full.ReadColumns())
	}
}

// TestSerialPartialMatchesEngine: the Serial baseline honours Wanted
// identically.
func TestSerialPartialMatchesEngine(t *testing.T) {
	lrc, err := codes.NewLRC(8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	const sector = 64
	sc, err := codes.NewScenario(lrc, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	st, err := stripe.New(lrc.NumStrips(), lrc.NumRows(), sector)
	if err != nil {
		t.Fatal(err)
	}
	st.FillDataRandom(3, codes.DataPositions(lrc))
	if err := core.NewDecoder(lrc).Encode(st); err != nil {
		t.Fatal(err)
	}
	orig := st.Clone()
	st.Scribble(9, sc.Faulty)

	src := &partialSource{stripes: []*stripe.Stripe{st}}
	// Serial path: fill everything (cols = all survivors).
	for i := 0; i < st.TotalSectors(); i++ {
		if i != 2 {
			src.cols = append(src.cols, i)
		}
	}
	sink := &collectSink{}
	n, err := Serial(lrc, sc, sector, Config{Wanted: []int{2}}, src, sink)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("processed %d stripes, want 1", n)
	}
	if !bytes.Equal(sink.got[0].Sector(2), orig.Sector(2)) {
		t.Fatal("serial partial decode differs from original")
	}
}
