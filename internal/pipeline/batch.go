package pipeline

import (
	"ppm/internal/codes"
	"ppm/internal/stripe"
)

// SliceSource feeds an in-memory batch of stripes through the engine,
// zero-copy: each stripe is processed in place.
type SliceSource []*stripe.Stripe

// Next implements Source.
func (s SliceSource) Next(idx int, _ *stripe.Stripe) (*stripe.Stripe, error) {
	if idx >= len(s) {
		return nil, nil
	}
	return s[idx], nil
}

// NopSink discards drain notifications; batch stripes are modified in
// place, so there is nothing to move.
type NopSink struct{}

// Drain implements Sink.
func (NopSink) Drain(int, *stripe.Stripe) error { return nil }

// Batch runs one scenario over an in-memory batch of stripes: the plan
// is compiled once and the stripes are decoded in place, sharded across
// the worker pool with Depth of them in flight. Encoding is the batch
// whose scenario is codes.EncodingScenario(c).
//
// Callers with many batches should build an Engine once (sectorSize 0:
// the batch path needs no slabs) and Run it with a SliceSource per
// batch instead, amortising engine construction too.
func Batch(c codes.Code, sc codes.Scenario, stripes []*stripe.Stripe, cfg Config) error {
	if len(stripes) == 0 {
		return nil
	}
	e, err := New(c, sc, 0, cfg)
	if err != nil {
		return err
	}
	defer e.Close()
	_, err = e.Run(SliceSource(stripes), NopSink{})
	return err
}
