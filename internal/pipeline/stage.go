package pipeline

// Stage observability. Each engine keeps three cumulative stall
// counters, one per stage, measuring the nanoseconds the stage spent
// blocked on the rest of the pipeline:
//
//   - fill stall: the fill goroutine waiting for a free slab — compute
//     and drain hold every job, so intake is throttled by downstream
//     (a healthy sign under backpressure, a sink/compute bottleneck
//     otherwise).
//   - compute stall: shards waiting for filled stripes while a run is
//     active — the Source (read I/O) cannot keep the cores fed.
//   - drain stall: the Run goroutine waiting for the next in-order
//     stripe's completion — head-of-line compute (or fill) latency.
//
// The counters are sampled only when a stage would actually block
// (channel fast paths add nothing), accumulate across runs, and cost
// two time.Now calls per blocking event. They answer the capacity
// question the traffic harness and the future blob-store daemon need:
// which stage to widen when a host saturates.

// StageStats is a snapshot of an engine's (or pool's) cumulative stage
// stall times and drained stripe count. Durations are nanoseconds.
type StageStats struct {
	// FillStallNs is time the fill stage spent waiting for a free slab.
	FillStallNs int64 `json:"fill_stall_ns"`
	// ComputeStallNs is time compute shards spent starved for filled
	// stripes while a run was active.
	ComputeStallNs int64 `json:"compute_stall_ns"`
	// DrainStallNs is time the drain stage spent waiting for the next
	// in-order stripe to finish compute.
	DrainStallNs int64 `json:"drain_stall_ns"`
	// Stripes is the number of stripes drained.
	Stripes int64 `json:"stripes"`
	// FillRetries counts transient Source.Next failures that were
	// retried away under Config.Retry. Zero on a healthy store.
	FillRetries int64 `json:"fill_retries"`
	// DrainRetries counts transient Sink.Drain failures retried away.
	DrainRetries int64 `json:"drain_retries"`
	// Corruptions counts detected-and-handled corruptions the storage
	// layer reported via RecordCorruption (checksum mismatches demoted
	// to erasures and re-decoded, torn strips a scrub rebuilt).
	Corruptions int64 `json:"corruptions"`
}

// Add accumulates o into s, for aggregating engines into a pool view.
func (s *StageStats) Add(o StageStats) {
	s.FillStallNs += o.FillStallNs
	s.ComputeStallNs += o.ComputeStallNs
	s.DrainStallNs += o.DrainStallNs
	s.Stripes += o.Stripes
	s.FillRetries += o.FillRetries
	s.DrainRetries += o.DrainRetries
	s.Corruptions += o.Corruptions
}

// StageStats returns a snapshot of the engine's cumulative stage stall
// counters. Safe to call concurrently with a Run; the counters only
// reset with the engine.
func (e *Engine) StageStats() StageStats {
	return StageStats{
		FillStallNs:    e.fillStall.Load(),
		ComputeStallNs: e.computeStall.Load(),
		DrainStallNs:   e.drainStall.Load(),
		Stripes:        e.stripes.Load(),
		FillRetries:    e.fillRetries.Load(),
		DrainRetries:   e.drainRetries.Load(),
		Corruptions:    e.corruptions.Load(),
	}
}
