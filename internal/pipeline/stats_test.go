package pipeline

import (
	"testing"
	"time"

	"ppm/internal/codes"
	"ppm/internal/stripe"
)

// sleepSource sleeps per stripe before handing the slab out — a slow
// store on the fill edge.
type sleepSource struct {
	count int
	d     time.Duration
}

func (s *sleepSource) Next(idx int, slab *stripe.Stripe) (*stripe.Stripe, error) {
	if idx >= s.count {
		return nil, nil
	}
	time.Sleep(s.d)
	return slab, nil
}

// sleepSink sleeps per stripe — a slow store on the drain edge, which
// also starves the free list.
type sleepSink struct{ d time.Duration }

func (k *sleepSink) Drain(int, *stripe.Stripe) error {
	time.Sleep(k.d)
	return nil
}

// TestStageStatsAttribution: each stall counter moves when — and only
// plausibly when — its stage is the bottleneck. The assertions are
// loose (>0 on the expected counter) because scheduling jitter makes
// exact stall accounting untestable.
func TestStageStatsAttribution(t *testing.T) {
	sd := testSD(t)
	const stripes = 6
	const lat = 3 * time.Millisecond

	// Slow sink: the drain stage holds slabs, so fill starves on the
	// free list.
	e, err := New(sd, codes.EncodingScenario(sd), 64, Config{Depth: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(&constSource{count: stripes}, &sleepSink{d: lat}); err != nil {
		t.Fatal(err)
	}
	s := e.StageStats()
	e.Close()
	if s.FillStallNs <= 0 {
		t.Errorf("slow sink: FillStallNs = %d, want > 0", s.FillStallNs)
	}
	if s.Stripes != stripes {
		t.Errorf("slow sink: Stripes = %d, want %d", s.Stripes, stripes)
	}

	// Slow source: compute shards idle waiting for work.
	e2, err := New(sd, codes.EncodingScenario(sd), 64, Config{Depth: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Run(&sleepSource{count: stripes, d: lat}, &recordSink{}); err != nil {
		t.Fatal(err)
	}
	s2 := e2.StageStats()
	e2.Close()
	if s2.ComputeStallNs <= 0 {
		t.Errorf("slow source: ComputeStallNs = %d, want > 0", s2.ComputeStallNs)
	}

	// Slow compute: the in-order drain waits on stripe completion.
	e3, err := New(sd, codes.EncodingScenario(sd), 64, Config{Depth: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	e3.testDelay = func(int) { time.Sleep(lat) }
	if _, err := e3.Run(&constSource{count: stripes}, &recordSink{}); err != nil {
		t.Fatal(err)
	}
	s3 := e3.StageStats()
	e3.Close()
	if s3.DrainStallNs <= 0 {
		t.Errorf("slow compute: DrainStallNs = %d, want > 0", s3.DrainStallNs)
	}
}

// TestStageStatsAccumulate: counters accumulate across runs and the
// snapshot Add helper sums component-wise.
func TestStageStatsAccumulate(t *testing.T) {
	sd := testSD(t)
	e, err := New(sd, codes.EncodingScenario(sd), 64, Config{Depth: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < 3; i++ {
		if _, err := e.Run(&constSource{count: 4}, &recordSink{}); err != nil {
			t.Fatal(err)
		}
	}
	if s := e.StageStats(); s.Stripes != 12 {
		t.Errorf("Stripes = %d after 3 runs of 4, want 12", s.Stripes)
	}

	a := StageStats{FillStallNs: 1, ComputeStallNs: 2, DrainStallNs: 3, Stripes: 4}
	a.Add(StageStats{FillStallNs: 10, ComputeStallNs: 20, DrainStallNs: 30, Stripes: 40})
	if a != (StageStats{FillStallNs: 11, ComputeStallNs: 22, DrainStallNs: 33, Stripes: 44}) {
		t.Errorf("Add produced %+v", a)
	}
}
