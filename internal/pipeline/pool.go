package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"ppm/internal/codes"
)

var errPoolClosed = errors.New("pipeline: pool is closed")

// Pool is a fixed set of independent engines for the same code +
// scenario pair, serving many concurrent streams: each RunContext
// checks an engine out, drives one stream, and returns it. One Engine
// serialises its runs, so concurrent request serving through a single
// engine queues head-to-tail; a pool overlaps up to Size streams —
// their store I/O always, and their compute too once the host has the
// cores (each engine keeps its own compute shards). The plan is still
// compiled once per engine, at construction, never per stream.
//
// A Pool is safe for concurrent RunContext calls. Close must not be
// called while streams are running (the Engine contract), and is
// idempotent.
//
//ppm:nocopy
type Pool struct {
	engines   chan *Engine
	closeOnce sync.Once

	// Build parameters, kept so a poisoned engine (shard death — see
	// ErrEnginePoisoned) can be replaced with a fresh one at its next
	// checkout instead of failing every stream routed to its slot.
	code       codes.Code
	sc         codes.Scenario
	sectorSize int
	cfg        Config

	// mu guards all and retired: checkout-time replacement swaps
	// engines while StageStats may be iterating.
	mu      sync.Mutex
	all     []*Engine
	retired StageStats // accumulated stats of replaced engines
}

// NewPool builds size engines (size <= 0 selects the autotune
// profile's pool size under cfg.Auto, else max(2, NumCPU)) sharing one
// config. When the caller leaves cfg.Workers unset, the per-engine
// compute shards divide the host budget (NumCPU, or the profile's
// worker count under cfg.Auto) across the pool instead of letting the
// first engine claim every kernel pool slot for its lifetime.
func NewPool(c codes.Code, sc codes.Scenario, sectorSize, size int, cfg Config) (*Pool, error) {
	wasAuto := cfg.Auto
	callerWorkers := cfg.Workers
	cfg = resolveAuto(cfg)
	if size <= 0 {
		if wasAuto {
			size = resolveAutoPoolSize()
		}
		if size <= 0 {
			size = runtime.NumCPU()
			if size < 2 {
				size = 2
			}
		}
	}
	if callerWorkers <= 0 {
		budget := cfg.Workers
		if budget <= 0 {
			budget = runtime.NumCPU()
		}
		cfg.Workers = budget / size
		if cfg.Workers < 1 {
			cfg.Workers = 1
		}
	}
	p := &Pool{
		engines:    make(chan *Engine, size),
		all:        make([]*Engine, 0, size),
		code:       c,
		sc:         sc,
		sectorSize: sectorSize,
		cfg:        cfg,
	}
	for i := 0; i < size; i++ {
		e, err := New(c, sc, sectorSize, cfg)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("pipeline: pool engine %d: %w", i, err)
		}
		p.all = append(p.all, e)
		p.engines <- e
	}
	// Keep the fully resolved per-engine config (New fills the remaining
	// defaults) both for Config() and for rebuilding replacement engines
	// identically.
	p.cfg = p.all[0].cfg
	return p, nil
}

// Size returns the number of engines in the pool.
func (p *Pool) Size() int { return len(p.all) }

// Config returns the per-engine configuration the pool resolved at
// construction (after autotune and worker-budget division).
func (p *Pool) Config() Config { return p.cfg }

// get checks an engine out, honouring ctx while every engine is busy.
// A poisoned or closed engine coming off the channel is replaced with a
// fresh build before it is handed out: a shard death costs one stream
// an error (the Run that observed it), never the slot.
//
//ppm:hotpath
func (p *Pool) get(ctx context.Context) (*Engine, error) {
	select {
	case e, ok := <-p.engines:
		if !ok {
			return nil, errPoolClosed
		}
		if e.Healthy() {
			return e, nil
		}
		return p.replace(e)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// replace retires a dead engine and builds its successor. On build
// failure the dead engine goes back on the channel — keeping the pool's
// capacity invariant (Size engines always circulating) — and the error
// surfaces to the caller; the next checkout retries the replacement.
func (p *Pool) replace(dead *Engine) (*Engine, error) {
	dead.Close()
	fresh, err := New(p.code, p.sc, p.sectorSize, p.cfg)
	if err != nil {
		p.engines <- dead
		return nil, fmt.Errorf("pipeline: pool engine replacement: %w", err)
	}
	p.mu.Lock()
	for i, e := range p.all {
		if e == dead {
			p.all[i] = fresh
			break
		}
	}
	p.retired.Add(dead.StageStats())
	p.mu.Unlock()
	return fresh, nil
}

// put returns a checked-out engine.
//
//ppm:hotpath
func (p *Pool) put(e *Engine) {
	p.engines <- e
}

// Run drives one stream through a checked-out engine. See RunContext.
func (p *Pool) Run(src Source, dst Sink) (int, error) {
	return p.RunContext(context.Background(), src, dst)
}

// RunContext checks an engine out (waiting, under ctx, while all Size
// engines are busy — the pool's admission bound), drives one stream
// through it with the Engine.RunContext contract, and returns the
// engine for the next stream.
func (p *Pool) RunContext(ctx context.Context, src Source, dst Sink) (int, error) {
	e, err := p.get(ctx)
	if err != nil {
		return 0, err
	}
	defer p.put(e)
	return e.RunContext(ctx, src, dst)
}

// StageStats aggregates the stall counters of every engine in the
// pool — the serving-level view: compute stall rising with stream
// count means the host is out of cores, fill/drain stall means the
// store is the bottleneck.
func (p *Pool) StageStats() StageStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.retired
	for _, e := range p.all {
		s.Add(e.StageStats())
	}
	return s
}

// Close closes every engine. Idempotent; must not race a RunContext.
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		p.mu.Lock()
		for _, e := range p.all {
			e.Close()
		}
		p.mu.Unlock()
		close(p.engines)
		// Drain the checked-in engines so a later get() sees the closed,
		// empty channel instead of checking out a dead engine.
		for range p.engines {
		}
	})
}
