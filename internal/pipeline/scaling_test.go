package pipeline

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"ppm/internal/codes"
)

// TestPoolScalingAcrossGOMAXPROCS is the multi-core scaling regression:
// aggregate pool throughput over latency-modelled streams must be
// monotone non-decreasing (within tolerance) as GOMAXPROCS grows
// through 1, 2 and NumCPU. The streams sleep per stripe on both edges,
// so even a single P overlaps store waits across engines; adding Ps
// must never make the aggregate slower. The 25% tolerance absorbs
// scheduler jitter — the defect this pins (workers silently capped by
// depth, pools serialising on one engine) loses far more than 25%.
func TestPoolScalingAcrossGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling matrix is wall-clock bound")
	}
	sd := testSD(t)

	levels := []int{1, 2, runtime.NumCPU()}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	const (
		streams    = 4
		perStream  = 12
		lat        = 1 * time.Millisecond
		iowait     = 2 * perStream * int64(lat) // serial store time per stream
		poolSize   = 4
		tolerance  = 0.75 // later level must reach 75% of earlier
		levelIters = 3    // best-of to shed scheduler noise
	)

	seen := map[int]bool{}
	var lastProcs int
	var lastThr float64
	for _, procs := range levels {
		if procs < 1 || seen[procs] {
			continue
		}
		seen[procs] = true
		runtime.GOMAXPROCS(procs)

		p, err := NewPool(sd, codes.EncodingScenario(sd), 512, poolSize, Config{Depth: 4, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		var best time.Duration
		for iter := 0; iter < levelIters; iter++ {
			start := time.Now()
			var wg sync.WaitGroup
			for s := 0; s < streams; s++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					src := &sleepSource{count: perStream, d: lat}
					if _, err := p.Run(src, &sleepSink{d: lat}); err != nil {
						t.Errorf("stream: %v", err)
					}
				}()
			}
			wg.Wait()
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		p.Close()
		if t.Failed() {
			t.Fatal("stream errors above")
		}

		thr := float64(streams*perStream) / best.Seconds()
		t.Logf("GOMAXPROCS=%d: %.0f stripes/s (best of %d, serial store floor %.0f)",
			procs, thr, levelIters, float64(streams*perStream)/(float64(streams)*float64(iowait)/1e9))
		if lastThr > 0 && thr < lastThr*tolerance {
			t.Errorf("throughput regressed with more cores: GOMAXPROCS=%d got %.0f stripes/s, GOMAXPROCS=%d had %.0f",
				procs, thr, lastProcs, lastThr)
		}
		lastProcs, lastThr = procs, thr
	}
}
