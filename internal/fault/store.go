package fault

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"ppm/internal/stripe"
)

// Store is the strip-granular storage seam the fault layer wraps and
// the healer reads through: stripe idx's strip on disk j is the
// contiguous r*sectorSize bytes holding that disk's sectors for that
// stripe. cmd/ppmfile's diskStore implements it over per-disk files;
// MemStore implements it in memory for tests and the chaos harness.
type Store interface {
	// Disks returns the number of strips per stripe (the code's n).
	Disks() int
	// StripBytes returns the strip size in bytes (r * sectorSize).
	StripBytes() int
	// ReadStrip fills dst (len StripBytes) with stripe idx's strip on
	// disk j.
	ReadStrip(idx, disk int, dst []byte) error
	// WriteStrip persists stripe idx's strip on disk j from src.
	WriteStrip(idx, disk int, src []byte) error
}

// MemStore is an in-memory Store: one growable byte slab per disk.
// A nil disk slab simulates a missing disk (reads fail permanently).
type MemStore struct {
	stripBytes int
	disks      [][]byte
}

// NewMemStore builds an empty in-memory store.
func NewMemStore(disks, stripBytes int) *MemStore {
	return &MemStore{stripBytes: stripBytes, disks: make([][]byte, disks)}
}

// Disks returns the disk count.
func (m *MemStore) Disks() int { return len(m.disks) }

// StripBytes returns the per-stripe strip size.
func (m *MemStore) StripBytes() int { return m.stripBytes }

// Lose drops disk j's data: subsequent reads fail permanently, the way
// an unplugged device does.
func (m *MemStore) Lose(disk int) { m.disks[disk] = nil }

// ReadStrip copies stripe idx's strip on disk j into dst.
func (m *MemStore) ReadStrip(idx, disk int, dst []byte) error {
	if disk < 0 || disk >= len(m.disks) {
		return fmt.Errorf("memstore: disk %d out of range", disk)
	}
	d := m.disks[disk]
	off := idx * m.stripBytes
	if d == nil || off+m.stripBytes > len(d) {
		return fmt.Errorf("memstore: disk %d stripe %d missing", disk, idx)
	}
	copy(dst, d[off:off+m.stripBytes])
	return nil
}

// WriteStrip stores stripe idx's strip on disk j, growing the slab.
func (m *MemStore) WriteStrip(idx, disk int, src []byte) error {
	if disk < 0 || disk >= len(m.disks) {
		return fmt.Errorf("memstore: disk %d out of range", disk)
	}
	if len(src) != m.stripBytes {
		return fmt.Errorf("memstore: strip is %d bytes, want %d", len(src), m.stripBytes)
	}
	off := idx * m.stripBytes
	if need := off + m.stripBytes; need > len(m.disks[disk]) {
		grown := make([]byte, need)
		copy(grown, m.disks[disk])
		m.disks[disk] = grown
	}
	copy(m.disks[disk][off:], src)
	return nil
}

// FaultyStore wraps a Store with a fault schedule: scheduled events
// fire as their (stripe, disk) strip is read or written. Read errors
// surface as transient *InjectedError; latency and hangs delay the op;
// bit flips corrupt the returned bytes silently; torn writes persist a
// prefix of the strip plus garbage and report success — the write
// *looks* clean and only a checksummed read or scrub catches it.
//
// A FaultyStore is not safe for concurrent use (the schedule counts
// firings); give each goroutine its own Clone of the schedule.
type FaultyStore struct {
	inner Store
	sched *Schedule
	mu    sync.Mutex // guards rng: abandoned hung ops overlap live ones
	rng   *rand.Rand
	// Release, when non-nil, unblocks in-flight Hang events early —
	// tests use it to avoid waiting out hour-long hangs after the op
	// has already been abandoned by its deadline.
	Release chan struct{}
}

// NewFaultyStore wraps inner with the schedule's faults.
func NewFaultyStore(inner Store, sched *Schedule) *FaultyStore {
	return &FaultyStore{inner: inner, sched: sched, rng: rand.New(rand.NewSource(sched.seed ^ 0x5deece66d))}
}

// Disks returns the wrapped store's disk count.
func (fs *FaultyStore) Disks() int { return fs.inner.Disks() }

// StripBytes returns the wrapped store's strip size.
func (fs *FaultyStore) StripBytes() int { return fs.inner.StripBytes() }

// Schedule returns the live schedule (for Fired counts in reports).
func (fs *FaultyStore) Schedule() *Schedule { return fs.sched }

func (fs *FaultyStore) delay(d time.Duration) { delayOrRelease(d, fs.Release) }

// delayOrRelease sleeps for d, or until release (when non-nil) is
// closed or signalled — how tests cut hour-long hangs short once the
// op has been abandoned.
func delayOrRelease(d time.Duration, release chan struct{}) {
	t := time.NewTimer(d)
	defer t.Stop()
	if release == nil {
		<-t.C
		return
	}
	select {
	case <-t.C:
	case <-release:
	}
}

// ReadStrip reads through the wrapped store, firing scheduled read
// faults.
func (fs *FaultyStore) ReadStrip(idx, disk int, dst []byte) error {
	if ev := fs.sched.take(idx, disk, Latency, Hang); ev != nil {
		fs.delay(ev.Delay)
	}
	if ev := fs.sched.take(idx, disk, ReadError); ev != nil {
		return &InjectedError{Event: *ev}
	}
	if err := fs.inner.ReadStrip(idx, disk, dst); err != nil {
		return err
	}
	if ev := fs.sched.take(idx, disk, BitFlip); ev != nil {
		fs.mu.Lock()
		FlipByte(dst, fs.rng)
		fs.mu.Unlock()
	}
	return nil
}

// WriteStrip writes through the wrapped store, firing scheduled write
// faults.
func (fs *FaultyStore) WriteStrip(idx, disk int, src []byte) error {
	if ev := fs.sched.take(idx, disk, Latency, Hang); ev != nil {
		fs.delay(ev.Delay)
	}
	if ev := fs.sched.take(idx, disk, WriteError); ev != nil {
		return &InjectedError{Event: *ev}
	}
	if ev := fs.sched.take(idx, disk, TornWrite); ev != nil {
		// Persist a torn image: intact prefix, garbage tail. The
		// caller's buffer stays untouched and the op reports success —
		// silent on-disk damage for the scrub to find.
		torn := make([]byte, len(src))
		copy(torn, src)
		tail := torn[len(torn)/2:]
		fs.mu.Lock()
		fs.rng.Read(tail)
		fs.mu.Unlock()
		if len(tail) > 0 && bytes.Equal(tail, src[len(torn)/2:]) {
			tail[0] ^= 0xFF // the rng must not reproduce the original tail
		}
		return fs.inner.WriteStrip(idx, disk, torn)
	}
	return fs.inner.WriteStrip(idx, disk, src)
}

// StoreStripe writes every strip of stripe idx from st into s — the
// plain (non-pipelined) encode-side helper tests and the chaos harness
// use to populate a store.
func StoreStripe(s Store, idx int, st *stripe.Stripe) error {
	buf := make([]byte, s.StripBytes())
	sector := st.SectorSize()
	for j := 0; j < st.N(); j++ {
		for i := 0; i < st.R(); i++ {
			copy(buf[i*sector:(i+1)*sector], st.SectorAt(i, j))
		}
		if err := s.WriteStrip(idx, j, buf); err != nil {
			return err
		}
	}
	return nil
}

// LoadStripe reads every strip of stripe idx into st, with no retries
// and no checksum verification — the raw counterpart of
// Healer.ReadStripe.
func LoadStripe(s Store, idx int, st *stripe.Stripe) error {
	buf := make([]byte, s.StripBytes())
	sector := st.SectorSize()
	for j := 0; j < st.N(); j++ {
		if err := s.ReadStrip(idx, j, buf); err != nil {
			return err
		}
		for i := 0; i < st.R(); i++ {
			copy(st.SectorAt(i, j), buf[i*sector:(i+1)*sector])
		}
	}
	return nil
}

// FlipByte XORs one random byte of b with a random nonzero mask — a
// guaranteed-visible single-sector corruption.
func FlipByte(b []byte, rng *rand.Rand) {
	if len(b) == 0 {
		return
	}
	mask := byte(1 + rng.Intn(255))
	b[rng.Intn(len(b))] ^= mask
}
