// Package fault is the repository's fault model: a deterministic,
// seeded injection substrate plus the machinery the rest of the system
// uses to survive what it injects.
//
// Injection. A Schedule maps (stripe, disk) coordinates to fault
// Events — transient read/write errors, latency spikes, hung I/O,
// short (torn) writes, and silent bit-flip corruption — generated
// reproducibly from a seed and a Rates mix, or parsed from a compact
// spec string (the ppmfile -faults flag, the harness chaos experiment
// and the CI chaos job all print the schedule so a failing run is
// replayable). FaultyStore, FaultySource and FaultySink wrap the
// storage and pipeline seams and fire the scheduled events.
//
// Survival. Classification (IsTransient), the jittered-exponential
// Retry policy with per-attempt deadlines (Do), CRC-32C sector
// checksums (SectorChecksums/VerifyStripe) and the checksummed
// degraded-read Healer turn injected faults into recoveries: transient
// errors are retried, hung ops are abandoned at their deadline, and
// corrupt or unreadable strips are demoted to erasures and re-decoded.
//
// Nothing in this package may be referenced from a //ppm:hotpath
// region — the faultfree analyzer in internal/lint enforces that the
// injection substrate stays off the steady-state paths.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// ReadError fails a read with a transient I/O error.
	ReadError Kind = iota
	// WriteError fails a write with a transient I/O error.
	WriteError
	// Latency delays an op by the event's Delay, then lets it through.
	Latency
	// Hang blocks an op for the event's Delay (default: effectively
	// forever) — the way a dying disk stalls instead of failing.
	Hang
	// TornWrite persists only a prefix of the strip being written and
	// fails the op: the on-disk state is silently inconsistent.
	TornWrite
	// BitFlip lets the op through but flips bits in the strip's bytes:
	// silent corruption, no error anywhere.
	BitFlip
)

var kindNames = map[Kind]string{
	ReadError:  "read-error",
	WriteError: "write-error",
	Latency:    "latency",
	Hang:       "hang",
	TornWrite:  "torn-write",
	BitFlip:    "bit-flip",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one scheduled fault at a (stripe, disk) coordinate.
type Event struct {
	// Stripe and Disk locate the strip the event fires on.
	Stripe, Disk int
	// Kind is the fault class.
	Kind Kind
	// Count is how many times the event fires before clearing; a
	// transient read error with Count 2 fails the first two attempts
	// and lets the third through. Count <= 0 means fire forever
	// (a permanent fault).
	Count int
	// Delay sizes Latency and Hang events.
	Delay time.Duration

	initial int // Count as scheduled, for Clone
}

func (ev Event) String() string {
	s := fmt.Sprintf("%s@%d.%d", ev.Kind, ev.Stripe, ev.Disk)
	if ev.Count != 1 {
		s += fmt.Sprintf("x%d", ev.Count)
	}
	if ev.Delay > 0 {
		s += fmt.Sprintf("/%s", ev.Delay)
	}
	return s
}

// Rates is the per-strip-visit probability mix a generated Schedule
// draws from. Each field is the chance, per (stripe, disk) strip, of
// scheduling that event; they need not sum to 1.
type Rates struct {
	ReadError float64
	Latency   float64
	Hang      float64
	TornWrite float64
	BitFlip   float64
}

// Schedule is a deterministic fault plan over a stripes x disks grid.
// Lookups consume event counts, so a Schedule is single-use state;
// clone one per run with Clone when replaying. Lookups are mutex-
// guarded: an op abandoned at its deadline can fire events concurrently
// with the attempt that replaced it.
type Schedule struct {
	mu     sync.Mutex
	seed   int64
	events map[[2]int][]*Event
	fired  int
}

// NewSchedule builds an empty schedule (seed is recorded for String).
func NewSchedule(seed int64) *Schedule {
	return &Schedule{seed: seed, events: make(map[[2]int][]*Event)}
}

// Add appends an event to the schedule. Count <= 0 is normalised to
// -1 (permanent: the event fires on every visit).
func (s *Schedule) Add(ev Event) *Schedule {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := [2]int{ev.Stripe, ev.Disk}
	e := ev
	if e.Count <= 0 {
		e.Count = -1
	}
	e.initial = e.Count
	s.events[key] = append(s.events[key], &e)
	return s
}

// Generate builds a seeded schedule over a stripes x disks grid from a
// Rates mix. The same (seed, geometry, rates) always yields the same
// schedule, so a chaos run is replayable from its printed plan.
func Generate(seed int64, stripes, disks int, r Rates) *Schedule {
	s := NewSchedule(seed)
	rng := rand.New(rand.NewSource(seed))
	for st := 0; st < stripes; st++ {
		for d := 0; d < disks; d++ {
			roll := rng.Float64()
			switch {
			case roll < r.ReadError:
				s.Add(Event{Stripe: st, Disk: d, Kind: ReadError, Count: 1 + rng.Intn(2)})
			case roll < r.ReadError+r.Latency:
				s.Add(Event{Stripe: st, Disk: d, Kind: Latency, Count: 1,
					Delay: time.Duration(1+rng.Intn(5)) * time.Millisecond})
			case roll < r.ReadError+r.Latency+r.Hang:
				s.Add(Event{Stripe: st, Disk: d, Kind: Hang, Count: 1, Delay: time.Hour})
			case roll < r.ReadError+r.Latency+r.Hang+r.TornWrite:
				s.Add(Event{Stripe: st, Disk: d, Kind: TornWrite, Count: 1})
			case roll < r.ReadError+r.Latency+r.Hang+r.TornWrite+r.BitFlip:
				s.Add(Event{Stripe: st, Disk: d, Kind: BitFlip, Count: 1})
			}
		}
	}
	return s
}

// Clone returns a fresh schedule with every event's count reset, for
// replaying the same plan across runs.
func (s *Schedule) Clone() *Schedule {
	c := NewSchedule(s.seed)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, evs := range s.events {
		for _, ev := range evs {
			fresh := *ev
			fresh.Count = ev.initial
			c.Add(fresh)
		}
	}
	return c
}

// Seed returns the seed the schedule was generated from.
func (s *Schedule) Seed() int64 { return s.seed }

// Len returns the number of scheduled events (fired or not).
func (s *Schedule) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, evs := range s.events {
		n += len(evs)
	}
	return n
}

// Fired returns how many event firings the schedule has delivered.
func (s *Schedule) Fired() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fired
}

// take returns the next live event of the given kinds at (stripe,
// disk), consuming one firing, or nil. Count > 0 decrements toward
// exhaustion at 0; Count -1 (permanent) fires on every visit.
func (s *Schedule) take(stripe, disk int, kinds ...Kind) *Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	evs := s.events[[2]int{stripe, disk}]
	for _, ev := range evs {
		if ev.Count == 0 {
			continue // exhausted
		}
		for _, k := range kinds {
			if ev.Kind == k {
				if ev.Count > 0 {
					ev.Count--
				}
				s.fired++
				return ev
			}
		}
	}
	return nil
}

// String lists every event in deterministic order — the replayable
// fault plan chaos runs publish in their logs.
func (s *Schedule) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var parts []string
	for _, evs := range s.events {
		for _, ev := range evs {
			parts = append(parts, ev.String())
		}
	}
	sort.Strings(parts)
	return fmt.Sprintf("fault schedule seed=%d events=%d [%s]", s.seed, len(parts), strings.Join(parts, " "))
}

// ParseSpec parses the compact schedule spec used by the ppmfile
// -faults flag. The spec is comma-separated directives:
//
//	seed=N                     seed for generated events and flip masks
//	read@S.D[xC]               transient read error at stripe S, disk D
//	                           (fails C attempts, default 1)
//	flip@S.D                   silent bit-flip corruption of that strip
//	hang@S.D[/DUR]             hung read (default blocks for 1h)
//	lat@S.D/DUR                latency spike of DUR
//	torn@S.D                   torn (short) write of that strip
//
// Example: "seed=7,flip@2.4,read@3.2x2,hang@1.0/1h".
func ParseSpec(spec string) (*Schedule, error) {
	var seed int64 = 1
	var evs []Event
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if v, ok := strings.CutPrefix(part, "seed="); ok {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed in %q: %v", part, err)
			}
			seed = n
			continue
		}
		name, rest, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("fault: directive %q is not name@stripe.disk", part)
		}
		var kind Kind
		switch name {
		case "read":
			kind = ReadError
		case "write":
			kind = WriteError
		case "flip":
			kind = BitFlip
		case "hang":
			kind = Hang
		case "lat":
			kind = Latency
		case "torn":
			kind = TornWrite
		default:
			return nil, fmt.Errorf("fault: unknown fault %q in %q", name, part)
		}
		delay := time.Duration(0)
		if kind == Hang {
			delay = time.Hour
		}
		if coord, d, ok := strings.Cut(rest, "/"); ok {
			dur, err := time.ParseDuration(d)
			if err != nil {
				return nil, fmt.Errorf("fault: bad duration in %q: %v", part, err)
			}
			delay, rest = dur, coord
		}
		count := 1
		if coord, c, ok := strings.Cut(rest, "x"); ok {
			n, err := strconv.Atoi(c)
			if err != nil {
				return nil, fmt.Errorf("fault: bad count in %q: %v", part, err)
			}
			count, rest = n, coord
		}
		sstr, dstr, ok := strings.Cut(rest, ".")
		if !ok {
			return nil, fmt.Errorf("fault: coordinate %q is not stripe.disk", rest)
		}
		stripe, err1 := strconv.Atoi(sstr)
		disk, err2 := strconv.Atoi(dstr)
		if err1 != nil || err2 != nil || stripe < 0 || disk < 0 {
			return nil, fmt.Errorf("fault: bad coordinate %q", rest)
		}
		evs = append(evs, Event{Stripe: stripe, Disk: disk, Kind: kind, Count: count, Delay: delay})
	}
	s := NewSchedule(seed)
	for _, ev := range evs {
		s.Add(ev)
	}
	return s, nil
}
