package fault

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"ppm/internal/codes"
	"ppm/internal/core"
	"ppm/internal/decode"
	"ppm/internal/stripe"
)

func TestScheduleDeterministic(t *testing.T) {
	a := Generate(7, 16, 8, Rates{ReadError: 0.1, BitFlip: 0.1, Hang: 0.02})
	b := Generate(7, 16, 8, Rates{ReadError: 0.1, BitFlip: 0.1, Hang: 0.02})
	if a.String() != b.String() {
		t.Fatalf("same seed produced different schedules:\n%s\n%s", a, b)
	}
	c := Generate(8, 16, 8, Rates{ReadError: 0.1, BitFlip: 0.1, Hang: 0.02})
	if a.String() == c.String() {
		t.Fatal("different seeds produced identical schedules")
	}
	if a.Len() == 0 {
		t.Fatal("schedule with 10% rates over 128 strips scheduled nothing")
	}
}

func TestScheduleCountsAndClone(t *testing.T) {
	s := NewSchedule(1)
	s.Add(Event{Stripe: 3, Disk: 2, Kind: ReadError, Count: 2})
	for i := 0; i < 2; i++ {
		if ev := s.take(3, 2, ReadError); ev == nil {
			t.Fatalf("firing %d missing", i)
		}
	}
	if ev := s.take(3, 2, ReadError); ev != nil {
		t.Fatal("count-2 event fired a third time")
	}
	if s.Fired() != 2 {
		t.Fatalf("Fired = %d, want 2", s.Fired())
	}
	// Clone resets counts, including consumed ones.
	c := s.Clone()
	if ev := c.take(3, 2, ReadError); ev == nil {
		t.Fatal("clone lost the consumed event")
	}
	// Permanent events keep firing.
	p := NewSchedule(1)
	p.Add(Event{Stripe: 0, Disk: 0, Kind: BitFlip, Count: -1})
	for i := 0; i < 5; i++ {
		if ev := p.take(0, 0, BitFlip); ev == nil {
			t.Fatalf("permanent event stopped at firing %d", i)
		}
	}
}

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec("seed=9, flip@2.4, read@3.2x2, hang@1.0/50ms, lat@0.1/2ms, torn@5.6")
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed() != 9 || s.Len() != 5 {
		t.Fatalf("seed=%d len=%d, want 9, 5", s.Seed(), s.Len())
	}
	if ev := s.take(3, 2, ReadError); ev == nil || ev.Count != 1 {
		t.Fatalf("read@3.2x2 not parsed: %+v", ev)
	}
	if ev := s.take(1, 0, Hang); ev == nil || ev.Delay != 50*time.Millisecond {
		t.Fatalf("hang@1.0/50ms not parsed: %+v", ev)
	}
	for _, bad := range []string{"seed=x", "zap@1.2", "read@12", "read@a.b", "read@1.2/zz"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestClassification(t *testing.T) {
	if IsTransient(nil) {
		t.Error("nil transient")
	}
	if !IsTransient(Transient(errors.New("x"))) {
		t.Error("Transient() wrapper not transient")
	}
	if !IsTransient(fmt.Errorf("wrapped: %w", Transient(errors.New("x")))) {
		t.Error("wrapped transient not detected")
	}
	if IsTransient(errors.New("plain")) {
		t.Error("plain error transient")
	}
	if IsTransient(context.Canceled) || IsTransient(context.DeadlineExceeded) {
		t.Error("context errors must not be transient")
	}
	if !IsTransient(ErrOpTimeout) {
		t.Error("op timeout must be transient (retryable)")
	}
	if !IsTransient(&InjectedError{Event: Event{Kind: ReadError}}) {
		t.Error("injected read error must be transient")
	}
	if IsTransient(&InjectedError{Event: Event{Kind: TornWrite}}) {
		t.Error("torn write must be permanent")
	}
}

func TestDoRetriesTransient(t *testing.T) {
	calls := 0
	err := Do(context.Background(), "op", Policy{MaxAttempts: 4, BaseDelay: time.Microsecond}, func() error {
		calls++
		if calls < 3 {
			return Transient(errors.New("flaky"))
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want nil, 3", err, calls)
	}
}

func TestDoPermanentFailsFast(t *testing.T) {
	calls := 0
	perm := errors.New("gone")
	err := Do(context.Background(), "op", Policy{MaxAttempts: 5, BaseDelay: time.Microsecond}, func() error {
		calls++
		return perm
	})
	if calls != 1 {
		t.Fatalf("permanent error retried %d times", calls)
	}
	var oe *OpError
	if !errors.As(err, &oe) || !errors.Is(err, perm) || oe.Attempts != 1 {
		t.Fatalf("error context lost: %v", err)
	}
}

func TestDoExhaustsBudget(t *testing.T) {
	calls := 0
	err := Do(context.Background(), "op", Policy{MaxAttempts: 3, BaseDelay: time.Microsecond}, func() error {
		calls++
		return Transient(errors.New("always"))
	})
	if calls != 3 {
		t.Fatalf("calls=%d, want 3", calls)
	}
	var oe *OpError
	if !errors.As(err, &oe) || oe.Attempts != 3 {
		t.Fatalf("attempts not reported: %v", err)
	}
}

func TestDoAbandonsHungOp(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	start := time.Now()
	err := Do(context.Background(), "hung", Policy{MaxAttempts: 2, BaseDelay: time.Microsecond, OpTimeout: 20 * time.Millisecond}, func() error {
		<-release
		return nil
	})
	if err == nil {
		t.Fatal("hung op reported success")
	}
	if !errors.Is(err, ErrOpTimeout) {
		t.Fatalf("want ErrOpTimeout, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline not enforced: took %v", elapsed)
	}
}

func TestDoHonoursContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Do(ctx, "op", DefaultPolicy(), func() error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	p := Policy{BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond, Jitter: 0}
	var prev time.Duration
	for i := 0; i < 6; i++ {
		d := p.Backoff(i, nil)
		if d < prev {
			t.Fatalf("backoff shrank at retry %d: %v < %v", i, d, prev)
		}
		if d > p.MaxDelay {
			t.Fatalf("backoff exceeded cap: %v", d)
		}
		prev = d
	}
	if prev != p.MaxDelay {
		t.Fatalf("backoff never reached the cap: %v", prev)
	}
}

func TestMemStoreRoundTrip(t *testing.T) {
	sd, err := codes.NewSD(6, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := stripe.New(sd.NumStrips(), sd.NumRows(), 64)
	if err != nil {
		t.Fatal(err)
	}
	st.FillRandom(3)
	ms := NewMemStore(st.N(), st.R()*st.SectorSize())
	if err := StoreStripe(ms, 0, st); err != nil {
		t.Fatal(err)
	}
	got := st.Clone()
	got.FillRandom(99)
	if err := LoadStripe(ms, 0, got); err != nil {
		t.Fatal(err)
	}
	if !st.Equal(got) {
		t.Fatal("round trip corrupted the stripe")
	}
	ms.Lose(2)
	if err := ms.ReadStrip(0, 2, make([]byte, ms.StripBytes())); err == nil {
		t.Fatal("lost disk still readable")
	}
}

func TestFaultyStoreInjection(t *testing.T) {
	ms := NewMemStore(4, 256)
	strip := make([]byte, 256)
	for i := range strip {
		strip[i] = byte(i)
	}
	for j := 0; j < 4; j++ {
		if err := ms.WriteStrip(0, j, strip); err != nil {
			t.Fatal(err)
		}
	}
	sched := NewSchedule(5)
	sched.Add(Event{Stripe: 0, Disk: 1, Kind: ReadError, Count: 2})
	sched.Add(Event{Stripe: 0, Disk: 2, Kind: BitFlip, Count: 1})
	sched.Add(Event{Stripe: 0, Disk: 3, Kind: TornWrite, Count: 1})
	fs := NewFaultyStore(ms, sched)

	buf := make([]byte, 256)
	// Disk 1: two transient failures, then clean.
	for i := 0; i < 2; i++ {
		err := fs.ReadStrip(0, 1, buf)
		if err == nil {
			t.Fatalf("attempt %d should fail", i)
		}
		if !IsTransient(err) {
			t.Fatalf("injected read error not transient: %v", err)
		}
	}
	if err := fs.ReadStrip(0, 1, buf); err != nil {
		t.Fatalf("event did not clear: %v", err)
	}
	// Disk 2: silent corruption — no error, wrong bytes.
	if err := fs.ReadStrip(0, 2, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) == string(strip) {
		t.Fatal("bit flip did not change the bytes")
	}
	// Disk 3: torn write reports success but persists damage.
	if err := fs.WriteStrip(0, 3, strip); err != nil {
		t.Fatalf("torn write must be silent: %v", err)
	}
	if err := ms.ReadStrip(0, 3, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) == string(strip) {
		t.Fatal("torn write left the strip intact")
	}
	if string(buf[:128]) != string(strip[:128]) {
		t.Fatal("torn write damaged the prefix too")
	}
}

// encodeToStore encodes `stripes` random stripes of the code into a
// MemStore and returns the originals plus per-stripe checksums.
func encodeToStore(t *testing.T, c codes.Code, stripes, sectorSize int, seed int64) (*MemStore, []*stripe.Stripe, [][]uint32) {
	t.Helper()
	ms := NewMemStore(c.NumStrips(), c.NumRows()*sectorSize)
	var origs []*stripe.Stripe
	var sums [][]uint32
	for idx := 0; idx < stripes; idx++ {
		st, err := stripe.New(c.NumStrips(), c.NumRows(), sectorSize)
		if err != nil {
			t.Fatal(err)
		}
		st.FillDataRandom(seed+int64(idx), codes.DataPositions(c))
		if err := decode.Encode(c, st, decode.Options{}); err != nil {
			t.Fatal(err)
		}
		if err := StoreStripe(ms, idx, st); err != nil {
			t.Fatal(err)
		}
		origs = append(origs, st.Clone())
		sums = append(sums, SectorChecksums(st))
	}
	return ms, origs, sums
}

func TestHealerRecoversStorm(t *testing.T) {
	sd, err := codes.NewSD(8, 4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	const stripes, sector = 6, 64
	ms, origs, sums := encodeToStore(t, sd, stripes, sector, 11)

	// The acceptance storm: one silent corruption, one transient read
	// error, one hung strip — plus a torn write healed from checksums.
	sched := NewSchedule(3)
	sched.Add(Event{Stripe: 1, Disk: 4, Kind: BitFlip, Count: 1})
	sched.Add(Event{Stripe: 2, Disk: 0, Kind: ReadError, Count: 1})
	sched.Add(Event{Stripe: 3, Disk: 5, Kind: Hang, Count: 1, Delay: time.Hour})
	release := make(chan struct{})
	defer close(release)
	fs := NewFaultyStore(ms, sched)
	fs.Release = release

	h := &Healer{
		Code:   sd,
		Store:  fs,
		Sums:   sums,
		Policy: Policy{MaxAttempts: 3, BaseDelay: time.Microsecond, OpTimeout: 30 * time.Millisecond},
	}
	got, err := stripe.New(sd.NumStrips(), sd.NumRows(), sector)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for idx := 0; idx < stripes; idx++ {
		if err := h.ReadStripe(context.Background(), idx, got); err != nil {
			t.Fatalf("stripe %d: %v", idx, err)
		}
		if !origs[idx].Equal(got) {
			t.Fatalf("stripe %d not byte-identical after healing", idx)
		}
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("storm read did not complete within deadlines: %v", elapsed)
	}
	if h.Stats.CorruptSectors != 1 {
		t.Errorf("CorruptSectors = %d, want 1", h.Stats.CorruptSectors)
	}
	if h.Stats.Retries < 1 {
		t.Errorf("Retries = %d, want >= 1", h.Stats.Retries)
	}
	// The hung strip exhausted its attempts (each one re-hung... no:
	// Count 1 hang fires once; the retry reads clean). Either way the
	// stripe healed; demotion only happens if every attempt failed.
	if h.Stats.Healed < 1 {
		t.Errorf("Healed = %d, want >= 1", h.Stats.Healed)
	}
}

func TestHealerBaselinePlusCorruption(t *testing.T) {
	sd, err := codes.NewSD(8, 4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	const stripes, sector = 3, 64
	ms, origs, sums := encodeToStore(t, sd, stripes, sector, 23)
	ms.Lose(3) // whole-disk loss: the baseline erasure

	var faulty []int
	for i := 0; i < sd.NumRows(); i++ {
		faulty = append(faulty, i*sd.NumStrips()+3)
	}
	baseline, err := codes.NewScenario(sd, faulty)
	if err != nil {
		t.Fatal(err)
	}

	sched := NewSchedule(4)
	sched.Add(Event{Stripe: 1, Disk: 6, Kind: BitFlip, Count: 1}) // corruption on top of the lost disk
	fs := NewFaultyStore(ms, sched)

	h := &Healer{Code: sd, Store: fs, Sums: sums, Baseline: baseline,
		Policy: Policy{MaxAttempts: 2, BaseDelay: time.Microsecond}}
	got, err := stripe.New(sd.NumStrips(), sd.NumRows(), sector)
	if err != nil {
		t.Fatal(err)
	}
	dec := core.NewDecoder(sd)
	for idx := 0; idx < stripes; idx++ {
		if err := h.ReadStripe(context.Background(), idx, got); err != nil {
			t.Fatalf("stripe %d: %v", idx, err)
		}
		// The baseline is the downstream consumer's job: run it, then
		// compare — the full contract of a degraded read.
		if err := dec.Decode(got, baseline); err != nil {
			t.Fatalf("stripe %d baseline decode: %v", idx, err)
		}
		if !origs[idx].Equal(got) {
			t.Fatalf("stripe %d not byte-identical (baseline + corruption)", idx)
		}
	}
	if h.Stats.CorruptSectors != 1 || h.Stats.Healed != 1 {
		t.Errorf("stats = %+v, want 1 corrupt, 1 healed", h.Stats)
	}
}

func TestHealerUnrecoverableReported(t *testing.T) {
	sd, err := codes.NewSD(6, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	ms, _, sums := encodeToStore(t, sd, 1, 64, 31)
	// Three whole strips gone exceeds m=2 disk tolerance.
	sched := NewSchedule(1)
	for _, d := range []int{0, 1, 2} {
		sched.Add(Event{Stripe: 0, Disk: d, Kind: ReadError, Count: -1})
	}
	h := &Healer{Code: sd, Store: NewFaultyStore(ms, sched), Sums: sums,
		Policy: Policy{MaxAttempts: 2, BaseDelay: time.Microsecond}}
	st, _ := stripe.New(sd.NumStrips(), sd.NumRows(), 64)
	if err := h.ReadStripe(context.Background(), 0, st); err == nil {
		t.Fatal("unrecoverable stripe read reported success")
	}
}
