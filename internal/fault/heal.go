package fault

import (
	"context"
	"fmt"
	"hash/crc32"

	"ppm/internal/codes"
	"ppm/internal/core"
	"ppm/internal/stripe"
)

// Checksummed degraded reads. Erasure decode only protects against
// *declared* losses: a sector that reads back wrong bytes without an
// I/O error flows straight through the decoder and "verifies" as
// garbage. Per-sector CRC-32C checksums recorded at encode time close
// the gap — a mismatching sector is *demoted to an erasure* and
// re-decoded from the survivors, turning silent corruption into the
// erasure problem the code already solves.

// castagnoli is the CRC-32C table (the polynomial storage systems use;
// SSE4.2 hosts compute it in hardware via the stdlib).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ChecksumSector returns the CRC-32C of one sector.
func ChecksumSector(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// SectorChecksums returns the CRC-32C of every sector of a stripe, in
// global (row-major) sector order — the per-stripe checksum row the
// ppmfile manifest records.
func SectorChecksums(st *stripe.Stripe) []uint32 {
	sums := make([]uint32, st.TotalSectors())
	for i := range sums {
		sums[i] = ChecksumSector(st.Sector(i))
	}
	return sums
}

// VerifyStripe compares every sector of st against the expected
// checksum row and returns the global indices that mismatch (nil when
// clean). skip, when non-nil, marks sectors excluded from verification
// (already-declared erasures whose buffers hold no data).
func VerifyStripe(st *stripe.Stripe, sums []uint32, skip map[int]bool) []int {
	var bad []int
	for i := 0; i < st.TotalSectors() && i < len(sums); i++ {
		if skip[i] {
			continue
		}
		if ChecksumSector(st.Sector(i)) != sums[i] {
			bad = append(bad, i)
		}
	}
	return bad
}

// HealStats counts what a Healer saw and did across stripes.
type HealStats struct {
	// Stripes is the number of stripes read.
	Stripes int64 `json:"stripes"`
	// Retries is the number of extra read attempts transient faults
	// cost.
	Retries int64 `json:"retries"`
	// DemotedStrips counts strips demoted to erasures after exhausting
	// their read attempts (I/O errors, hangs past the deadline).
	DemotedStrips int64 `json:"demoted_strips"`
	// CorruptSectors counts sectors whose checksum exposed silent
	// corruption.
	CorruptSectors int64 `json:"corrupt_sectors"`
	// Healed counts stripes the healer re-decoded beyond the baseline
	// scenario.
	Healed int64 `json:"healed"`
}

// Add accumulates o into s.
func (s *HealStats) Add(o HealStats) {
	s.Stripes += o.Stripes
	s.Retries += o.Retries
	s.DemotedStrips += o.DemotedStrips
	s.CorruptSectors += o.CorruptSectors
	s.Healed += o.Healed
}

// Healer performs checksummed degraded stripe reads over a Store: each
// strip is read under the retry policy, surviving sectors are verified
// against the recorded checksums, and any strip or sector that cannot
// be read clean is demoted to an erasure and recovered with a decode
// over the survivors. A Healer is not safe for concurrent use; build
// one per goroutine (they share nothing but the store).
type Healer struct {
	// Code is the stripe's erasure code.
	Code codes.Code
	// Store supplies the strips.
	Store Store
	// Sums[idx] is stripe idx's expected per-sector checksum row; a nil
	// Sums (or short row) skips checksum verification for the missing
	// entries — pre-checksum archives still get retry and erasure
	// demotion, just not silent-corruption detection.
	Sums [][]uint32
	// Baseline lists faulty sectors a downstream consumer already
	// repairs (ppmfile's pipeline decodes the missing disks with its
	// once-compiled plan). The healer re-decodes a stripe itself only
	// when damage *beyond* the baseline appears; baseline sectors are
	// zeroed and left to the consumer.
	Baseline codes.Scenario
	// Policy is the per-strip read retry policy.
	Policy Policy
	// Logf, when non-nil, receives one line per demotion/heal — the
	// degraded-read log.
	Logf func(format string, args ...any)

	// Stats accumulates across ReadStripe calls.
	Stats HealStats

	dec     *core.Decoder
	baseSet map[int]bool
	buf     []byte
}

// init lazily builds the decoder (plan-cached: repeated demotion
// patterns reuse their compiled plans) and scratch.
func (h *Healer) init() {
	if h.dec == nil {
		h.dec = core.NewDecoder(h.Code)
		h.baseSet = h.Baseline.FaultySet()
		h.buf = make([]byte, h.Store.StripBytes())
	}
}

func (h *Healer) logf(format string, args ...any) {
	if h.Logf != nil {
		h.Logf(format, args...)
	}
}

// ReadStripe fills st with stripe idx, degraded-reading around
// transient faults, hung strips and silent corruption. On return the
// stripe holds correct bytes everywhere except the Baseline sectors
// (left zeroed for the downstream decode) — unless the damage exceeded
// the code's tolerance, which is the returned error.
func (h *Healer) ReadStripe(ctx context.Context, idx int, st *stripe.Stripe) error {
	h.init()
	h.Stats.Stripes++
	n, r := st.N(), st.R()
	sector := st.SectorSize()
	demoted := make(map[int]bool)

	for j := 0; j < n; j++ {
		baseMissing := true
		for i := 0; i < r; i++ {
			if !h.baseSet[i*n+j] {
				baseMissing = false
				break
			}
		}
		if baseMissing {
			// The whole strip is already declared faulty; zero it for
			// the downstream decode and skip the read.
			for i := 0; i < r; i++ {
				clear(st.SectorAt(i, j))
			}
			continue
		}
		// Under an op deadline each attempt gets a private buffer: an
		// abandoned hung read finishing late must not scribble scratch
		// the healer is already reusing for the next strip.
		buf, attempts, err := DoVal(ctx, fmt.Sprintf("read stripe %d disk %d", idx, j), h.Policy,
			func() ([]byte, error) {
				b := h.buf
				if h.Policy.OpTimeout > 0 {
					b = make([]byte, h.Store.StripBytes())
				}
				if err := h.Store.ReadStrip(idx, j, b); err != nil {
					return nil, err
				}
				return b, nil
			})
		h.Stats.Retries += int64(attempts - 1)
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return ctxErr
			}
			h.Stats.DemotedStrips++
			h.logf("stripe %d disk %d: demoting strip to erasure: %v", idx, j, err)
			for i := 0; i < r; i++ {
				clear(st.SectorAt(i, j))
				demoted[i*n+j] = true
			}
			continue
		}
		for i := 0; i < r; i++ {
			copy(st.SectorAt(i, j), buf[i*sector:(i+1)*sector])
		}
	}

	// Checksum the survivors; mismatches join the demoted set.
	if idx < len(h.Sums) && h.Sums[idx] != nil {
		skip := demoted
		if len(h.baseSet) > 0 {
			skip = make(map[int]bool, len(demoted)+len(h.baseSet))
			for s := range demoted {
				skip[s] = true
			}
			for s := range h.baseSet {
				skip[s] = true
			}
		}
		for _, s := range VerifyStripe(st, h.Sums[idx], skip) {
			h.Stats.CorruptSectors++
			h.logf("stripe %d sector %d (row %d, disk %d): checksum mismatch, demoting to erasure",
				idx, s, s/n, s%n)
			clear(st.Sector(s))
			demoted[s] = true
		}
	}

	if len(demoted) == 0 {
		return nil
	}

	// Damage beyond the baseline: decode baseline ∪ demoted here, so
	// the stripe leaves fully healed (a downstream baseline decode is
	// then a no-op recomputation of already-correct sectors).
	faulty := make([]int, 0, len(demoted)+len(h.baseSet))
	for s := range demoted {
		faulty = append(faulty, s)
	}
	for s := range h.baseSet {
		if !demoted[s] {
			faulty = append(faulty, s)
		}
	}
	sc, err := codes.NewScenario(h.Code, faulty)
	if err != nil {
		return fmt.Errorf("fault: stripe %d: %w", idx, err)
	}
	if !codes.Decodable(h.Code, sc) {
		return fmt.Errorf("fault: stripe %d: %d failures exceed %s's tolerance (unrecoverable)",
			idx, len(faulty), h.Code.Name())
	}
	if err := h.dec.Decode(st, sc); err != nil {
		return fmt.Errorf("fault: stripe %d: healing decode: %w", idx, err)
	}
	h.Stats.Healed++
	h.logf("stripe %d: healed %d demoted sector(s) by re-decode", idx, len(demoted))
	return nil
}
