package fault

import (
	"context"
	"fmt"
	"hash/crc32"
	"sort"

	"ppm/internal/codes"
	"ppm/internal/repair"
	"ppm/internal/stripe"
)

// Checksummed degraded reads. Erasure decode only protects against
// *declared* losses: a sector that reads back wrong bytes without an
// I/O error flows straight through the decoder and "verifies" as
// garbage. Per-sector CRC-32C checksums recorded at encode time close
// the gap — a mismatching sector is *demoted to an erasure* and
// re-decoded from the survivors, turning silent corruption into the
// erasure problem the code already solves.

// castagnoli is the CRC-32C table (the polynomial storage systems use;
// SSE4.2 hosts compute it in hardware via the stdlib).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ChecksumSector returns the CRC-32C of one sector.
func ChecksumSector(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// SectorChecksums returns the CRC-32C of every sector of a stripe, in
// global (row-major) sector order — the per-stripe checksum row the
// ppmfile manifest records.
func SectorChecksums(st *stripe.Stripe) []uint32 {
	sums := make([]uint32, st.TotalSectors())
	for i := range sums {
		sums[i] = ChecksumSector(st.Sector(i))
	}
	return sums
}

// VerifyStripe compares every sector of st against the expected
// checksum row and returns the global indices that mismatch (nil when
// clean). skip, when non-nil, marks sectors excluded from verification
// (already-declared erasures whose buffers hold no data).
func VerifyStripe(st *stripe.Stripe, sums []uint32, skip map[int]bool) []int {
	var bad []int
	for i := 0; i < st.TotalSectors() && i < len(sums); i++ {
		if skip[i] {
			continue
		}
		if ChecksumSector(st.Sector(i)) != sums[i] {
			bad = append(bad, i)
		}
	}
	return bad
}

// HealStats counts what a Healer saw and did across stripes.
type HealStats struct {
	// Stripes is the number of stripes read.
	Stripes int64 `json:"stripes"`
	// Retries is the number of extra read attempts transient faults
	// cost.
	Retries int64 `json:"retries"`
	// DemotedStrips counts strips demoted to erasures after exhausting
	// their read attempts (I/O errors, hangs past the deadline).
	DemotedStrips int64 `json:"demoted_strips"`
	// CorruptSectors counts sectors whose checksum exposed silent
	// corruption.
	CorruptSectors int64 `json:"corrupt_sectors"`
	// Healed counts stripes the healer re-decoded beyond the baseline
	// scenario.
	Healed int64 `json:"healed"`
	// StripsRead counts strips fetched from the store by the
	// minimal-read path (ReadSectors); ReadStripe reads every live
	// strip and does not tick this.
	StripsRead int64 `json:"strips_read"`
	// Replans counts ReadSectors iterations that widened the survivor
	// set after an unreadable or corrupt strip invalidated the plan.
	Replans int64 `json:"replans"`
}

// Add accumulates o into s.
func (s *HealStats) Add(o HealStats) {
	s.Stripes += o.Stripes
	s.Retries += o.Retries
	s.DemotedStrips += o.DemotedStrips
	s.CorruptSectors += o.CorruptSectors
	s.Healed += o.Healed
	s.StripsRead += o.StripsRead
	s.Replans += o.Replans
}

// Healer performs checksummed degraded stripe reads over a Store: each
// strip is read under the retry policy, surviving sectors are verified
// against the recorded checksums, and any strip or sector that cannot
// be read clean is demoted to an erasure and recovered with a decode
// over the survivors. A Healer is not safe for concurrent use; build
// one per goroutine (they share nothing but the store).
type Healer struct {
	// Code is the stripe's erasure code.
	Code codes.Code
	// Store supplies the strips.
	Store Store
	// Sums[idx] is stripe idx's expected per-sector checksum row; a nil
	// Sums (or short row) skips checksum verification for the missing
	// entries — pre-checksum archives still get retry and erasure
	// demotion, just not silent-corruption detection.
	Sums [][]uint32
	// Baseline lists faulty sectors a downstream consumer already
	// repairs (ppmfile's pipeline decodes the missing disks with its
	// once-compiled plan). The healer re-decodes a stripe itself only
	// when damage *beyond* the baseline appears; baseline sectors are
	// zeroed and left to the consumer.
	Baseline codes.Scenario
	// Policy is the per-strip read retry policy.
	Policy Policy
	// Logf, when non-nil, receives one line per demotion/heal — the
	// degraded-read log.
	Logf func(format string, args ...any)

	// Stats accumulates across ReadStripe calls.
	Stats HealStats

	planner *repair.Planner
	baseSet map[int]bool
	buf     []byte
}

// init lazily builds the repair planner (LRU-cached: repeated demotion
// patterns reuse their compiled plans) and scratch.
func (h *Healer) init() {
	if h.planner == nil {
		h.planner = repair.NewPlanner(h.Code)
		h.baseSet = h.Baseline.FaultySet()
		h.buf = make([]byte, h.Store.StripBytes())
	}
}

func (h *Healer) logf(format string, args ...any) {
	if h.Logf != nil {
		h.Logf(format, args...)
	}
}

// ReadStripe fills st with stripe idx, degraded-reading around
// transient faults, hung strips and silent corruption. On return the
// stripe holds correct bytes everywhere except the Baseline sectors
// (left zeroed for the downstream decode) — unless the damage exceeded
// the code's tolerance, which is the returned error.
func (h *Healer) ReadStripe(ctx context.Context, idx int, st *stripe.Stripe) error {
	h.init()
	h.Stats.Stripes++
	n, r := st.N(), st.R()
	demoted := make(map[int]bool)

	for j := 0; j < n; j++ {
		baseMissing := true
		for i := 0; i < r; i++ {
			if !h.baseSet[i*n+j] {
				baseMissing = false
				break
			}
		}
		if baseMissing {
			// The whole strip is already declared faulty; zero it for
			// the downstream decode and skip the read.
			for i := 0; i < r; i++ {
				clear(st.SectorAt(i, j))
			}
			continue
		}
		if err := h.readStrip(ctx, idx, j, st); err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return ctxErr
			}
			h.Stats.DemotedStrips++
			h.logf("stripe %d disk %d: demoting strip to erasure: %v", idx, j, err)
			for i := 0; i < r; i++ {
				clear(st.SectorAt(i, j))
				demoted[i*n+j] = true
			}
		}
	}

	// Checksum the survivors; mismatches join the demoted set.
	if idx < len(h.Sums) && h.Sums[idx] != nil {
		skip := demoted
		if len(h.baseSet) > 0 {
			skip = make(map[int]bool, len(demoted)+len(h.baseSet))
			for s := range demoted {
				skip[s] = true
			}
			for s := range h.baseSet {
				skip[s] = true
			}
		}
		for _, s := range VerifyStripe(st, h.Sums[idx], skip) {
			h.Stats.CorruptSectors++
			h.logf("stripe %d sector %d (row %d, disk %d): checksum mismatch, demoting to erasure",
				idx, s, s/n, s%n)
			clear(st.Sector(s))
			demoted[s] = true
		}
	}

	if len(demoted) == 0 {
		return nil
	}

	// Damage beyond the baseline: repair-plan exactly the demoted
	// sectors over the scenario baseline ∪ demoted. The plan's minimal
	// survivor set skips whole sub-decodes an unrelated failure would
	// have dragged in; baseline sectors stay zeroed for the downstream
	// consumer's once-compiled decode (its plan recovers them anyway).
	faulty := make([]int, 0, len(demoted)+len(h.baseSet))
	wanted := make([]int, 0, len(demoted))
	for s := range demoted {
		faulty = append(faulty, s)
		wanted = append(wanted, s)
	}
	sort.Ints(wanted)
	for s := range h.baseSet {
		if !demoted[s] {
			faulty = append(faulty, s)
		}
	}
	sc, err := codes.NewScenario(h.Code, faulty)
	if err != nil {
		return fmt.Errorf("fault: stripe %d: %w", idx, err)
	}
	if !codes.Decodable(h.Code, sc) {
		return fmt.Errorf("fault: stripe %d: %d failures exceed %s's tolerance (unrecoverable)",
			idx, len(faulty), h.Code.Name())
	}
	plan, err := h.planner.Plan(sc, wanted)
	if err != nil {
		return fmt.Errorf("fault: stripe %d: repair planning: %w", idx, err)
	}
	if err := plan.Execute(st, nil); err != nil {
		return fmt.Errorf("fault: stripe %d: healing repair: %w", idx, err)
	}
	h.Stats.Healed++
	h.logf("stripe %d: healed %d demoted sector(s) via repair plan (%d survivors)",
		idx, len(demoted), len(plan.ReadCols))
	return nil
}

// readStrip fetches strip j of stripe idx into st under the retry
// policy, returning an error when every attempt failed.
func (h *Healer) readStrip(ctx context.Context, idx, j int, st *stripe.Stripe) error {
	sector := st.SectorSize()
	buf, attempts, err := DoVal(ctx, fmt.Sprintf("read stripe %d disk %d", idx, j), h.Policy,
		func() ([]byte, error) {
			b := h.buf
			if h.Policy.OpTimeout > 0 {
				// An abandoned hung read finishing late must not
				// scribble scratch the healer is already reusing.
				b = make([]byte, h.Store.StripBytes())
			}
			if err := h.Store.ReadStrip(idx, j, b); err != nil {
				return nil, err
			}
			return b, nil
		})
	h.Stats.Retries += int64(attempts - 1)
	if err != nil {
		return err
	}
	for i := 0; i < st.R(); i++ {
		copy(st.SectorAt(i, j), buf[i*sector:(i+1)*sector])
	}
	return nil
}

// ReadSectors materialises only the wanted sectors of stripe idx into
// st — the minimal-read degraded path. It plans the smallest survivor
// set for the baseline failures, reads only the strips holding it
// (plus the wanted live sectors), checksum-verifies what it read, and
// on any unreadable or corrupt strip demotes the damage to erasures
// and replans over a wider survivor set, until the wanted sectors are
// recovered or the damage exceeds the code's tolerance. Sectors
// outside the plan are left untouched — the caller must only consume
// the wanted ones.
func (h *Healer) ReadSectors(ctx context.Context, idx int, st *stripe.Stripe, wanted []int) error {
	h.init()
	h.Stats.Stripes++
	n, r := st.N(), st.R()
	faulty := make(map[int]bool, len(h.baseSet))
	for s := range h.baseSet {
		faulty[s] = true
	}
	read := make(map[int]bool, n)
	faultyList := make([]int, 0, len(faulty))

	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			h.Stats.Replans++
		}
		faultyList = faultyList[:0]
		for s := range faulty {
			faultyList = append(faultyList, s)
		}
		sort.Ints(faultyList)
		sc, err := codes.NewScenario(h.Code, faultyList)
		if err != nil {
			return fmt.Errorf("fault: stripe %d: %w", idx, err)
		}
		if !codes.Decodable(h.Code, sc) {
			return fmt.Errorf("fault: stripe %d: %d failures exceed %s's tolerance (unrecoverable)",
				idx, len(faultyList), h.Code.Name())
		}
		plan, err := h.planner.Plan(sc, wanted)
		if err != nil {
			return fmt.Errorf("fault: stripe %d: repair planning: %w", idx, err)
		}

		// Strips to fetch: the plan's survivor strips plus any strip
		// holding a wanted, still-live sector.
		need := make(map[int]bool, n)
		for _, d := range plan.ReadDisks() {
			need[d] = true
		}
		for _, w := range wanted {
			if !faulty[w] {
				need[w%n] = true
			}
		}

		widened := false
		for j := 0; j < n; j++ {
			if !need[j] || read[j] {
				continue
			}
			if err := h.readStrip(ctx, idx, j, st); err != nil {
				if ctxErr := ctx.Err(); ctxErr != nil {
					return ctxErr
				}
				h.Stats.DemotedStrips++
				h.logf("stripe %d disk %d: demoting strip to erasure: %v", idx, j, err)
				for i := 0; i < r; i++ {
					clear(st.SectorAt(i, j))
					faulty[i*n+j] = true
				}
				widened = true
				continue
			}
			read[j] = true
			h.Stats.StripsRead++
			if idx < len(h.Sums) && h.Sums[idx] != nil {
				sums := h.Sums[idx]
				for i := 0; i < r; i++ {
					s := i*n + j
					if faulty[s] || s >= len(sums) {
						continue
					}
					if ChecksumSector(st.SectorAt(i, j)) != sums[s] {
						h.Stats.CorruptSectors++
						h.logf("stripe %d sector %d (row %d, disk %d): checksum mismatch, demoting to erasure",
							idx, s, i, j)
						clear(st.SectorAt(i, j))
						faulty[s] = true
						widened = true
					}
				}
			}
		}
		if widened {
			// New damage invalidated the plan: replan over the wider
			// erasure set (already-read strips are not re-fetched).
			continue
		}
		if err := plan.Execute(st, nil); err != nil {
			return fmt.Errorf("fault: stripe %d: repair execute: %w", idx, err)
		}
		if len(faulty) > len(h.baseSet) {
			h.Stats.Healed++
		}
		return nil
	}
}
