package fault

import (
	"context"
	"errors"
	"fmt"
	"syscall"
	"time"
)

// Transient vs permanent classification. A transient error is worth
// retrying (a flaky read, a momentary timeout); a permanent one is not
// (a missing file, a failed decode). The contract is structural so any
// package can participate without importing this one: an error that
// implements `Transient() bool` classifies itself, and wrapped errors
// are searched with errors.As.

// transienter is the structural self-classification interface.
type transienter interface{ Transient() bool }

// IsTransient reports whether err is worth retrying: it (or an error
// it wraps) classifies itself transient via a Transient() bool method,
// or is one of the classically-transient syscall errnos. Context
// cancellation and deadline expiry are never transient — the caller's
// clock, not the operation, ended those.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var t transienter
	if errors.As(err, &t) {
		return t.Transient()
	}
	for _, errno := range []syscall.Errno{syscall.EINTR, syscall.EAGAIN, syscall.EBUSY, syscall.ETIMEDOUT} {
		if errors.Is(err, errno) {
			return true
		}
	}
	return false
}

// Transient wraps err so IsTransient reports true for it (and for
// anything that wraps the result). Wrapping nil returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err}
}

type transientError struct{ err error }

func (e *transientError) Error() string   { return e.err.Error() }
func (e *transientError) Unwrap() error   { return e.err }
func (e *transientError) Transient() bool { return true }

// InjectedError is the error a fired fault event surfaces. It
// classifies itself: injected read/write errors are transient (they
// clear when the event's count exhausts), torn writes are permanent
// (the data is already inconsistent; retrying the same write would
// tear again).
type InjectedError struct {
	Event Event
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("fault: injected %s", e.Event)
}

func (e *InjectedError) Transient() bool {
	switch e.Event.Kind {
	case ReadError, WriteError:
		return true
	}
	return false
}

// ErrOpTimeout is wrapped by per-attempt deadline expiries from Do. It
// classifies itself transient: a hung op may be a transient stall, and
// a permanently hung one exhausts the attempt budget and surfaces as a
// deadline failure instead of hanging the run.
var ErrOpTimeout = Transient(errors.New("fault: op deadline exceeded"))

// OpError attaches retry-relevant context (which op, how many attempts
// were spent, whether the failure was classified transient) to the
// final error Do returns.
type OpError struct {
	Op       string
	Attempts int
	Err      error
}

func (e *OpError) Error() string {
	return fmt.Sprintf("%s: %v (after %d attempt(s))", e.Op, e.Err, e.Attempts)
}

func (e *OpError) Unwrap() error { return e.Err }

// sleepCtx sleeps for d unless ctx ends first; reports whether the
// sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	if ctx == nil {
		time.Sleep(d)
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
